// Package scenario exposes the FChain paper's simulated evaluation
// testbed: the three benchmark applications (RUBiS, IBM System S, Hadoop)
// as discrete-time simulations, the paper's fault catalog, and the
// experiment harness that regenerates every table and figure of §III.
//
// The simulations stand in for the paper's Xen/VCL deployment: they produce
// the same six per-VM metric streams FChain consumes, shaped by realistic
// workload traces, queueing, and back-pressure, and they support the
// per-component resource scaling that online pinpointing validation needs.
package scenario

import (
	"fmt"
	"math/rand"
	"os"

	"fchain/internal/apps"
	"fchain/internal/cloudsim"
	"fchain/internal/eval"
	"fchain/internal/faultlib"
	"fchain/internal/meshgen"
	"fchain/internal/workload"
)

// System is a running simulation of one benchmark application.
type System = cloudsim.Sim

// AppSpec describes a simulated application; build custom ones with the
// component and edge types below.
type AppSpec = cloudsim.AppSpec

// ComponentSpec describes one simulated component (guest VM).
type ComponentSpec = cloudsim.ComponentSpec

// Edge links a component to a downstream component.
type Edge = cloudsim.Edge

// Edge kinds.
const (
	EdgeBalanced = cloudsim.EdgeBalanced
	EdgeAll      = cloudsim.EdgeAll
)

// Traffic styles (determine whether dependency discovery can see flows).
const (
	RequestReply = cloudsim.RequestReply
	Streaming    = cloudsim.Streaming
)

// SLOSpec configures the application's service level objective.
type SLOSpec = cloudsim.SLOSpec

// SLO kinds.
const (
	SLOLatency  = cloudsim.SLOLatency
	SLOProgress = cloudsim.SLOProgress
)

// Fault is an injectable fault.
type Fault = cloudsim.Fault

// Trace supplies per-second workload intensity.
type Trace = workload.Trace

// New builds a simulation from a custom application spec.
func New(spec AppSpec, seed int64) (*System, error) { return cloudsim.New(spec, seed) }

// ConstantTrace returns a fixed-rate workload trace.
func ConstantTrace(rate float64) Trace { return workload.Constant(rate) }

// NASATrace and ClarkNetTrace realize the built-in synthetic equivalents of
// the paper's IRCache workload traces over the given horizon (seconds).
func NASATrace(horizon int, seed int64) Trace {
	return workload.NewSynthetic(workload.NASA(), horizon, seed)
}

// ClarkNetTrace is the ClarkNet-like counterpart of NASATrace.
func ClarkNetTrace(horizon int, seed int64) Trace {
	return workload.NewSynthetic(workload.ClarkNet(), horizon, seed)
}

// LoadTraceCSV reads a replay trace: one per-second arrival rate per line
// (optionally "timestamp,rate"; '#' comments allowed). Use it to drive the
// simulations with real measured workloads — e.g. the actual NASA/ClarkNet
// IRCache traces the paper used, when available.
func LoadTraceCSV(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: open trace: %w", err)
	}
	defer f.Close()
	return workload.LoadCSV(f)
}

// RUBiS returns the three-tier online auction benchmark (web → two app
// servers → database), modulated by a NASA-'95-like trace; SLO: 100 ms mean
// response time.
func RUBiS(seed int64) (*System, error) { return cloudsim.New(apps.RUBiS(seed), seed) }

// SystemS returns the IBM System S stream benchmark (seven PEs with a join
// at PE6), modulated by a ClarkNet-'95-like trace; SLO: 20 ms mean
// per-tuple time. Its continuous traffic defeats dependency discovery.
func SystemS(seed int64) (*System, error) { return cloudsim.New(apps.SystemS(seed), seed) }

// Hadoop returns the Hadoop sorting benchmark (three map nodes, six reduce
// nodes, wave-style shuffle); SLO: job progress stall.
func Hadoop(seed int64) (*System, error) { return cloudsim.New(apps.Hadoop(seed), seed) }

// GeneratedMesh is a generated microservice mesh: a layered topology of
// components with derived per-component capacities, a host placement, and a
// latency SLO calibrated to the mesh's analytic baseline. See ParseMesh.
type GeneratedMesh = meshgen.Mesh

// MeshExternalSpread is the external-factor onset spread (seconds) tuned for
// generated meshes: deep topologies stretch how long a mesh-wide workload
// shift takes to manifest everywhere, so the paper's 6 s (calibrated on 4-9
// component apps) is widened to 12 s.
const MeshExternalSpread = faultlib.MeshExternalSpread

// MeshMinRelMagnitude is the relative-magnitude selection floor
// (Config.MinRelMagnitude) tuned for generated meshes: with hundreds of
// monitored components, operationally meaningless shifts would otherwise
// pollute every propagation chain. Genuine template faults sit far above it.
const MeshMinRelMagnitude = faultlib.MeshMinRelMagnitude

// ParseMesh generates a microservice mesh from a parameter string like
// "n=200,fanout=3,depth=5,seed=7" (keys: n/components, fanout, depth, cycle,
// hosts, seed, rate, util; empty string = defaults). The same string always
// yields the same mesh.
func ParseMesh(spec string) (*GeneratedMesh, error) {
	p, err := meshgen.ParseParams(spec)
	if err != nil {
		return nil, err
	}
	return meshgen.Generate(p)
}

// Mesh generates a mesh from the parameter string and builds a running
// simulation of it, realizing the workload trace with the given seed (the
// topology depends only on the parameter string; the trace only on seed).
func Mesh(spec string, seed int64) (*GeneratedMesh, *System, error) {
	m, err := ParseMesh(spec)
	if err != nil {
		return nil, nil, err
	}
	sys, err := cloudsim.New(m.SpecWithTrace(seed), seed)
	if err != nil {
		return nil, nil, err
	}
	return m, sys, nil
}

// FaultTemplates lists the fault-template library's names, usable with
// MeshFault (gray failures, cascades, noisy neighbors, false-alarm traps).
func FaultTemplates() []string { return faultlib.Names() }

// MeshFault instantiates a named fault template against a generated mesh at
// the given injection time. Target selection draws from the seed, so the
// same (template, mesh, seed) triple always picks the same components.
func MeshFault(name string, inject int64, m *GeneratedMesh, seed int64) (Fault, error) {
	tpl, ok := faultlib.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown fault template %q (want one of %v)", name, faultlib.Names())
	}
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	return tpl.Make(inject, m, rng), nil
}

// MeshFaultLookBack returns the FChain look-back window a template requires
// (0 = the 100 s default; slow leaks need 500 s).
func MeshFaultLookBack(name string) int {
	if tpl, ok := faultlib.Lookup(name); ok {
		return tpl.LookBack
	}
	return 0
}

// Fault constructors (paper §III-A fault injection).
var (
	// NewMemLeak injects a memory leak of rateMB MB/s.
	NewMemLeak = cloudsim.NewMemLeak
	// NewCPUHog injects a CPU-bound competitor consuming the given cores.
	NewCPUHog = cloudsim.NewCPUHog
	// NewNetHog floods the target's inbound network.
	NewNetHog = cloudsim.NewNetHog
	// NewDiskHog steals disk bandwidth, ramping up slowly.
	NewDiskHog = cloudsim.NewDiskHog
	// NewBottleneck caps the target's CPU.
	NewBottleneck = cloudsim.NewBottleneck
	// NewLBBug skews a balancer's dispatch weights (mod_jk 1.2.30).
	NewLBBug = cloudsim.NewLBBug
	// NewOffloadBug models JBoss JBAS-1442 (failed EJB offloading).
	NewOffloadBug = cloudsim.NewOffloadBug
)

// Component name constants for the built-in scenarios.
var (
	RUBiSComponents   = []string{apps.Web, apps.App1, apps.App2, apps.DB}
	SystemSComponents = append([]string(nil), apps.SystemSPEs...)
	HadoopComponents  = append(append([]string(nil), apps.HadoopMaps...), apps.HadoopReduces...)
)

// Experiment identifiers for Run.
const (
	Figure2  = "fig2"
	Figure3  = "fig3"
	Figure4  = "fig4"
	Figure5  = "fig5"
	Figure6  = "fig6"
	Figure7  = "fig7"
	Figure8  = "fig8"
	Figure9  = "fig9"
	Figure10 = "fig10"
	Figure11 = "fig11"
	Figure12 = "fig12"
	TableI   = "table1"
	TableII  = "table2"
	// Ablation is an extension beyond the paper: it quantifies the
	// contribution of each FChain design choice.
	Ablation = "ablation"
	// Matrix is an extension beyond the paper: the (topology × fault)
	// accuracy matrix over generated microservice meshes — the committed
	// results_matrix.txt artifact. Runs <= 0 defaults to 2 seeds per cell.
	Matrix = "matrix"
)

// Experiments lists every reproducible table/figure identifier in paper
// order.
func Experiments() []string {
	return []string{
		Figure2, Figure3, Figure4, Figure5, Figure6, Figure7, Figure8,
		Figure9, Figure10, Figure11, Figure12, TableI, TableII,
	}
}

// RunOptions tunes how an experiment is regenerated.
type RunOptions struct {
	// Runs is the number of fault-injection runs per fault for the accuracy
	// experiments (the paper uses 30-40; 10-20 gives stable shapes much
	// faster); it is ignored by the walk-through figures. <=0 means 10.
	Runs int
	// Workers bounds how many fault-injection runs execute concurrently:
	// 0 uses all cores, 1 forces serial execution. The report text is
	// identical at any worker count — runs are independently seeded and
	// results assembled in seed order.
	Workers int
	// OmitTiming drops wall-clock measurement lines so the report is
	// byte-stable across machines and worker counts.
	OmitTiming bool
}

// Run regenerates one of the paper's tables or figures and returns its
// textual report, using all cores. runs is the number of fault-injection
// runs per fault for the accuracy experiments; see RunOptions.Runs.
func Run(id string, runs int) (string, error) {
	return RunWith(id, RunOptions{Runs: runs})
}

// RunWith is Run with explicit concurrency and output options.
func RunWith(id string, opts RunOptions) (string, error) {
	runs := opts.Runs
	if runs <= 0 {
		runs = 10
	}
	cfg := eval.RunConfig{Workers: opts.Workers, OmitTiming: opts.OmitTiming}
	switch id {
	case Figure2:
		return eval.Figure2(2)
	case Figure3:
		return eval.Figure3(1)
	case Figure4:
		return eval.Figure4(1)
	case Figure5:
		return eval.Figure5(1)
	case Figure6:
		return eval.Figure6(runs, cfg)
	case Figure7:
		return eval.Figure7(runs, cfg)
	case Figure8:
		return eval.Figure8(runs, cfg)
	case Figure9:
		return eval.Figure9(runs, cfg)
	case Figure10:
		return eval.Figure10(runs, cfg)
	case Figure11:
		return eval.Figure11(runs, cfg)
	case Figure12:
		return eval.Figure12(runs, cfg)
	case TableI:
		return eval.Table1(runs, cfg)
	case TableII:
		return eval.Table2()
	case Ablation:
		return eval.AblationTable(runs, cfg)
	case Matrix:
		// The matrix has its own default (2 runs per cell), so pass the
		// caller's raw value rather than the 10-run accuracy default.
		return eval.MatrixReport(opts.Runs, cfg)
	default:
		return "", fmt.Errorf("scenario: unknown experiment %q (want one of %v)", id, Experiments())
	}
}
