package scenario_test

import (
	"testing"

	"fchain/scenario"
)

// TestRunWithParallelEquivalence is the end-to-end determinism contract of
// the parallel campaign engine: regenerating any figure with four workers
// must produce a report byte-identical to the serial one. OmitTiming is
// set on both sides — wall-clock lines are the one intentionally
// machine-dependent part of a report.
func TestRunWithParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates eleven figures twice; skipped in -short")
	}
	ids := []string{
		scenario.Figure2, scenario.Figure3, scenario.Figure4, scenario.Figure5,
		scenario.Figure6, scenario.Figure7, scenario.Figure8, scenario.Figure9,
		scenario.Figure10, scenario.Figure11, scenario.Figure12,
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial, err := scenario.RunWith(id, scenario.RunOptions{Runs: 2, Workers: 1, OmitTiming: true})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := scenario.RunWith(id, scenario.RunOptions{Runs: 2, Workers: 4, OmitTiming: true})
			if err != nil {
				t.Fatal(err)
			}
			if serial != parallel {
				t.Errorf("parallel report differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
			}
			if len(serial) == 0 {
				t.Error("empty report")
			}
		})
	}
}
