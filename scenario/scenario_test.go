package scenario_test

import (
	"os"
	"strings"
	"testing"

	"fchain/scenario"
)

func TestConstructors(t *testing.T) {
	tests := []struct {
		name  string
		build func(int64) (*scenario.System, error)
		comps []string
	}{
		{"rubis", scenario.RUBiS, scenario.RUBiSComponents},
		{"systems", scenario.SystemS, scenario.SystemSComponents},
		{"hadoop", scenario.Hadoop, scenario.HadoopComponents},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sys, err := tt.build(1)
			if err != nil {
				t.Fatal(err)
			}
			got := sys.Components()
			if len(got) != len(tt.comps) {
				t.Fatalf("components = %v, want %d of %v", got, len(tt.comps), tt.comps)
			}
			sys.Step(50)
			if sys.Now() != 50 {
				t.Errorf("Now = %d, want 50", sys.Now())
			}
		})
	}
}

func TestFaultConstructorsInjectable(t *testing.T) {
	sys, err := scenario.RUBiS(1)
	if err != nil {
		t.Fatal(err)
	}
	faults := []scenario.Fault{
		scenario.NewMemLeak(10, 20, "db"),
		scenario.NewCPUHog(10, 1.5, "db"),
		scenario.NewNetHog(10, 90, "web"),
		scenario.NewDiskHog(10, 50, 100, "db"),
		scenario.NewBottleneck(10, 0.2, "app1"),
		scenario.NewLBBug(10, "web", map[string]float64{"app1": 0.9, "app2": 0.1}, 2),
		scenario.NewOffloadBug(10, "app1", "app2", 0.05),
	}
	for _, f := range faults {
		if err := sys.Inject(f); err != nil {
			t.Errorf("%s: %v", f.Name(), err)
		}
	}
}

func TestRunTable2(t *testing.T) {
	out, err := scenario.Run(scenario.TableII, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table II") {
		t.Errorf("unexpected report:\n%s", out)
	}
}

func TestRunFigureSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	out, err := scenario.Run(scenario.Figure12, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fchain", "fixed(t="} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 12 report missing %q:\n%s", want, out)
		}
	}
}

func TestRunWalkthroughs(t *testing.T) {
	for _, id := range []string{scenario.Figure2, scenario.Figure3, scenario.Figure4, scenario.Figure5} {
		out, err := scenario.Run(id, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "Figure") {
			t.Errorf("%s output malformed:\n%s", id, out)
		}
	}
}

func TestRunAblationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	out, err := scenario.Run(scenario.Ablation, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no-predictability-filter") {
		t.Errorf("ablation output malformed:\n%s", out)
	}
}

func TestRunCampaignExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments")
	}
	for _, id := range []string{
		scenario.Figure6, scenario.Figure7, scenario.Figure8, scenario.Figure9,
		scenario.Figure10, scenario.Figure11, scenario.TableI,
	} {
		out, err := scenario.Run(id, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "fchain") && !strings.Contains(out, "W=") {
			t.Errorf("%s output malformed:\n%s", id, out)
		}
	}
}

func TestTraceHelpers(t *testing.T) {
	if got := scenario.ConstantTrace(42).Rate(5); got != 42 {
		t.Errorf("ConstantTrace = %v", got)
	}
	nasa := scenario.NASATrace(100, 1)
	clark := scenario.ClarkNetTrace(100, 1)
	if nasa.Rate(10) <= 0 || clark.Rate(10) <= 0 {
		t.Error("synthetic traces should be positive")
	}
	path := t.TempDir() + "/trace.csv"
	if err := os.WriteFile(path, []byte("10\n20\n30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := scenario.LoadTraceCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rate(1) != 20 {
		t.Errorf("replayed rate = %v, want 20", tr.Rate(1))
	}
	if _, err := scenario.LoadTraceCSV(path + ".missing"); err == nil {
		t.Error("missing trace file should error")
	}
}
