package fchain_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"fchain"
	"fchain/internal/golden"
	"fchain/internal/obs"
	"fchain/scenario"
)

// buildScenario replays one golden scenario up to its SLO violation and
// returns the simulated system, the violation time, the discovered
// dependency graph, and the monitoring config the scenario calls for (mesh
// scenarios analyze under the mesh profile) — the shared inputs both
// cluster topologies feed from.
func buildScenario(t *testing.T, sc goldenScenario) (*scenario.System, int64, *fchain.DependencyGraph, fchain.Config) {
	t.Helper()
	cfg := fchain.DefaultConfig()
	depTraceSec := 600
	var (
		sys   *scenario.System
		fault scenario.Fault
	)
	if sc.meshSpec != "" {
		m, msys, err := scenario.Mesh(sc.meshSpec, sc.seed)
		if err != nil {
			t.Fatal(err)
		}
		sys = msys
		fault, err = scenario.MeshFault(sc.faultTpl, sc.inject, m, sc.seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ExternalSpread = scenario.MeshExternalSpread
		cfg.MinRelMagnitude = scenario.MeshMinRelMagnitude
		if lb := scenario.MeshFaultLookBack(sc.faultTpl); lb > 0 {
			cfg.LookBack = lb
		}
		depTraceSec = 2400
	} else {
		var err error
		sys, err = sc.build(sc.seed)
		if err != nil {
			t.Fatal(err)
		}
		fault = sc.fault(sc.inject)
	}
	if err := sys.Inject(fault); err != nil {
		t.Fatal(err)
	}
	sys.RunUntil(sc.inject + 1100)
	tv, found := sys.FirstViolation(sc.inject, sc.sustain)
	if !found {
		t.Fatalf("%s: no SLO violation within the horizon", sc.name)
	}
	deps := fchain.DiscoverDependencies(sys.DependencyTrace(depTraceSec, sc.seed), fchain.DiscoverConfig{})
	return sys, tv, deps, cfg
}

// clusterDiagnosis localizes the scenario through a cluster: one slave per
// component, flat (nAggs == 0) or fanned out through aggregators, and
// returns the diagnosis rendered as canonical JSON.
func clusterDiagnosis(t *testing.T, sys *scenario.System, tv int64, deps *fchain.DependencyGraph, cfg fchain.Config, nAggs int) []byte {
	t.Helper()
	master := fchain.NewMaster(cfg, deps)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })

	sink := &fchain.ObservabilitySink{Metrics: obs.NewRegistry()}
	aggs := make([]*fchain.Aggregator, nAggs)
	for i := range aggs {
		agg := fchain.NewAggregator("agg-"+string(rune('a'+i)), fchain.WithAggregatorObs(sink))
		if err := agg.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		if err := agg.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { agg.Close() })
		aggs[i] = agg
	}

	comps := sys.Components()
	for i, comp := range comps {
		var opts []fchain.SlaveOption
		if nAggs > 0 {
			opts = append(opts, fchain.WithVia("agg-"+string(rune('a'+i%nAggs))))
		}
		sl := fchain.NewSlave("host-"+comp, []string{comp}, cfg, opts...)
		for _, k := range fchain.Kinds() {
			s, err := sys.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < s.Len() && s.TimeAt(j) <= tv; j++ {
				if err := sl.Observe(comp, s.TimeAt(j), k, s.At(j)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sl.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		if nAggs > 0 {
			if err := sl.Connect(aggs[i%nAggs].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		t.Cleanup(func() { sl.Close() })
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(master.Slaves()) < len(comps) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d slaves registered", len(master.Slaves()), len(comps))
		}
		time.Sleep(5 * time.Millisecond)
	}

	res, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 {
		t.Fatalf("coverage %.3f (missing %v), want 1", res.Coverage(), res.MissingComponents)
	}
	if nAggs > 0 {
		if got := sink.Registry().Counter("fchain_subtree_analyze_total", "").Value(); got < 1 {
			t.Errorf("subtree analyze count = %d; aggregator tier silently unused", got)
		}
	}
	raw, err := json.Marshal(res.Diagnosis)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestTopologyDiagnosisParity pins the aggregator tier against the committed
// goldens: for every canonical fault scenario, a flat master/slave cluster
// and a two-aggregator tree must produce byte-identical diagnoses, and both
// must name exactly the culprits the golden report pinned.
func TestTopologyDiagnosisParity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full fault-injection simulations")
	}
	for _, sc := range goldenScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			sys, tv, deps, cfg := buildScenario(t, sc)
			flat := clusterDiagnosis(t, sys, tv, deps, cfg, 0)
			tree := clusterDiagnosis(t, sys, tv, deps, cfg, 2)
			if !bytes.Equal(flat, tree) {
				t.Errorf("tree diagnosis differs from flat:\n flat: %s\n tree: %s", flat, tree)
			}

			raw, err := os.ReadFile(golden.Path(sc.name + ".json"))
			if err != nil {
				t.Fatal(err)
			}
			var want struct {
				Culprits []string `json:"culprits"`
			}
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatal(err)
			}
			var got fchain.Diagnosis
			if err := json.Unmarshal(flat, &got); err != nil {
				t.Fatal(err)
			}
			if names := got.CulpritNames(); !equalStrings(names, want.Culprits) {
				t.Errorf("cluster culprits = %v, golden pinned %v", names, want.Culprits)
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
