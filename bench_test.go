package fchain_test

// One benchmark per table and figure of the FChain paper's evaluation
// (§III): each regenerates the corresponding experiment on the simulated
// testbed via the public scenario API. Run them with
//
//	go test -bench=. -benchmem
//
// The per-op time of a BenchmarkFig*/BenchmarkTable* is the cost of
// regenerating that artifact (bench runs use a reduced run count per fault;
// use cmd/fchain-bench -runs 30 for paper-scale campaigns). The
// BenchmarkModule* group mirrors Table II's per-module overhead
// measurements on the real pipeline primitives.

import (
	"testing"

	"fchain"
	"fchain/internal/timeseries"
	"fchain/scenario"
)

// benchRuns is the fault-injection runs per fault inside benchmark bodies —
// enough to exercise every code path while keeping -bench runs minutes, not
// hours.
const benchRuns = 2

func benchScenario(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := scenario.Run(id, benchRuns)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkFig2PropagationSystemS regenerates Fig. 2: the abnormal change
// propagation walk-through (PE3 → PE6 → PE2) in System S.
func BenchmarkFig2PropagationSystemS(b *testing.B) { benchScenario(b, scenario.Figure2) }

// BenchmarkFig3ChangePointSelection regenerates Fig. 3: raw CUSUM change
// points versus FChain's abnormal change point selection on Hadoop.
func BenchmarkFig3ChangePointSelection(b *testing.B) { benchScenario(b, scenario.Figure3) }

// BenchmarkFig4ExpectedPredictionError regenerates Fig. 4: the
// burstiness-adaptive expected prediction error tracking a CPU series.
func BenchmarkFig4ExpectedPredictionError(b *testing.B) { benchScenario(b, scenario.Figure4) }

// BenchmarkFig5RUBiSPinpointing regenerates Fig. 5: the RUBiS pinpointing
// walk-through with dependency-based spurious-propagation filtering.
func BenchmarkFig5RUBiSPinpointing(b *testing.B) { benchScenario(b, scenario.Figure5) }

// BenchmarkFig6RUBiSSingle regenerates Fig. 6: single-component fault
// accuracy on RUBiS across all schemes.
func BenchmarkFig6RUBiSSingle(b *testing.B) { benchScenario(b, scenario.Figure6) }

// BenchmarkFig7SystemSSingle regenerates Fig. 7: single-component fault
// accuracy on System S (dependency discovery unavailable).
func BenchmarkFig7SystemSSingle(b *testing.B) { benchScenario(b, scenario.Figure7) }

// BenchmarkFig8RUBiSMulti regenerates Fig. 8: multi-component fault
// accuracy on RUBiS (OffloadBug, LBBug).
func BenchmarkFig8RUBiSMulti(b *testing.B) { benchScenario(b, scenario.Figure8) }

// BenchmarkFig9SystemSMulti regenerates Fig. 9: multi-component concurrent
// fault accuracy on System S.
func BenchmarkFig9SystemSMulti(b *testing.B) { benchScenario(b, scenario.Figure9) }

// BenchmarkFig10HadoopMulti regenerates Fig. 10: multi-component concurrent
// fault accuracy on Hadoop.
func BenchmarkFig10HadoopMulti(b *testing.B) { benchScenario(b, scenario.Figure10) }

// BenchmarkFig11OnlineValidation regenerates Fig. 11: online pinpointing
// validation on the two hardest System S faults.
func BenchmarkFig11OnlineValidation(b *testing.B) { benchScenario(b, scenario.Figure11) }

// BenchmarkFig12FixedFiltering regenerates Fig. 12: the Fixed-Filtering
// threshold sweep against adaptive FChain.
func BenchmarkFig12FixedFiltering(b *testing.B) { benchScenario(b, scenario.Figure12) }

// BenchmarkTable1Sensitivity regenerates Table I: sensitivity to the
// look-back window and concurrency threshold.
func BenchmarkTable1Sensitivity(b *testing.B) { benchScenario(b, scenario.TableI) }

// BenchmarkTable2Overhead regenerates Table II's per-module cost report.
func BenchmarkTable2Overhead(b *testing.B) { benchScenario(b, scenario.TableII) }

// --- Table II per-module micro-benchmarks on the real pipeline ---

// BenchmarkModuleMonitoring measures feeding one 6-metric sample vector
// into a component's online models (Table II: "VM monitoring, 6
// attributes").
func BenchmarkModuleMonitoring(b *testing.B) {
	loc := fchain.NewLocalizer(fchain.DefaultConfig(), []string{"c"})
	kinds := fchain.Kinds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := int64(i)
		for _, k := range kinds {
			if err := loc.Observe("c", t, k, float64(50+i%17)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkModuleModeling1000 measures normal fluctuation modeling over
// 1000 samples (Table II: "normal fluctuation modeling, 1000 samples").
func BenchmarkModuleModeling1000(b *testing.B) {
	kinds := fchain.Kinds()
	for i := 0; i < b.N; i++ {
		loc := fchain.NewLocalizer(fchain.DefaultConfig(), []string{"c"})
		for t := int64(0); t < 1000; t++ {
			for _, k := range kinds {
				if err := loc.Observe("c", t, k, float64(40+t%23)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkModuleSelection measures abnormal change point selection over a
// 100-second look-back window (Table II: "abnormal change point selection,
// 100 samples").
func BenchmarkModuleSelection(b *testing.B) {
	loc := fchain.NewLocalizer(fchain.DefaultConfig(), []string{"c"})
	kinds := fchain.Kinds()
	for t := int64(0); t < 2000; t++ {
		for _, k := range kinds {
			if err := loc.Observe("c", t, k, float64(40+t%23)+float64(t%7)); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Steady state: a long-running daemon reuses the report buffer, so the
	// whole selection pass — smoothing, CUSUM bootstrap, FFT burst
	// extraction — must run allocation-free out of the pooled arenas.
	var reports []fchain.ComponentReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports = loc.AnalyzeInto(reports, 1999)
	}
}

// BenchmarkModuleSelectionStreaming measures selection in the streaming
// engine's operating mode: one fresh second observed, then a full analysis
// at the new stream head, so every iteration pays the honest incremental
// cost (the memoized verdict never answers at an advancing head). Compare
// with BenchmarkModuleSelection for what the per-violation burst costs when
// the whole look-back context must be processed at tv-time.
func BenchmarkModuleSelectionStreaming(b *testing.B) {
	cfg := fchain.DefaultConfig()
	cfg.Streaming = true
	loc := fchain.NewLocalizer(cfg, []string{"c"})
	kinds := fchain.Kinds()
	for t := int64(0); t < 2000; t++ {
		for _, k := range kinds {
			if err := loc.Observe("c", t, k, float64(40+t%23)+float64(t%7)); err != nil {
				b.Fatal(err)
			}
		}
	}
	var reports []fchain.ComponentReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := int64(2000 + i)
		for _, k := range kinds {
			if err := loc.Observe("c", ts, k, float64(40+ts%23)+float64(ts%7)); err != nil {
				b.Fatal(err)
			}
		}
		reports = loc.AnalyzeInto(reports, ts)
	}
}

// BenchmarkModuleDiagnosis measures the integrated fault diagnosis over a
// seven-component report set (Table II: "integrated fault diagnosis").
func BenchmarkModuleDiagnosis(b *testing.B) {
	reports := make([]fchain.ComponentReport, 7)
	for i := range reports {
		reports[i] = fchain.ComponentReport{Component: string(rune('a' + i))}
	}
	reports[2].Changes = []fchain.AbnormalChange{{
		Component: "c", Metric: fchain.CPU, ChangeAt: 95, Onset: 90,
		PredErr: 10, Expected: 1, Magnitude: 12,
	}}
	reports[2].Onset = 90
	deps := fchain.NewDependencyGraph()
	deps.AddEdge("a", "b", 1)
	deps.AddEdge("b", "c", 1)
	cfg := fchain.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fchain.Diagnose(reports, len(reports), deps, cfg)
	}
}

// BenchmarkModuleValidation measures online pinpointing validation of one
// culprit against a cloned simulation (Table II: "online validation,
// per component" — dominated by the 30 simulated seconds of observation).
func BenchmarkModuleValidation(b *testing.B) {
	sys, err := scenario.RUBiS(1)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Inject(scenario.NewCPUHog(1500, 1.7, "db")); err != nil {
		b.Fatal(err)
	}
	sys.RunUntil(1600)
	diag := fchain.Diagnosis{Culprits: []fchain.Culprit{{
		Component: "db", Metrics: []fchain.Kind{fchain.CPU},
	}}}
	cfg := fchain.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fchain.Validate(func() (fchain.Adjuster, error) {
			return sys.Clone(), nil
		}, diag, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModuleWindowView measures the zero-copy window extraction the
// per-violation analysis hot path runs per metric (WindowView + ValuesView
// over a materialized ring). It allocates nothing; run with -benchmem and
// compare against BenchmarkModuleWindowCopy to see what the view variants
// buy.
func BenchmarkModuleWindowView(b *testing.B) {
	s := timeseries.FromFunc(0, 2000, func(i int) float64 { return float64(40 + i%23) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := s.WindowView(1880, 2000)
		if len(w.ValuesView()) != 120 {
			b.Fatal("bad window")
		}
	}
}

// BenchmarkModuleWindowCopy is the copying baseline for
// BenchmarkModuleWindowView: the pre-view Window path, which clones the
// samples on every call.
func BenchmarkModuleWindowCopy(b *testing.B) {
	s := timeseries.FromFunc(0, 2000, func(i int) float64 { return float64(40 + i%23) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := s.Window(1880, 2000)
		if len(w.Values()) != 120 {
			b.Fatal("bad window")
		}
	}
}

// BenchmarkModuleSeriesInto measures materializing a full ring into a
// reused scratch series — the once-per-metric cost that lets every window
// afterwards be a view. Steady state allocates nothing.
func BenchmarkModuleSeriesInto(b *testing.B) {
	r := timeseries.NewRing(1024)
	for t := int64(0); t < 4096; t++ {
		r.Push(t, float64(t%97))
	}
	scratch := &timeseries.Series{}
	r.SeriesInto(scratch) // warm the scratch capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.SeriesInto(scratch).Len() != 1024 {
			b.Fatal("bad materialization")
		}
	}
}

// BenchmarkSimulationSecond measures one simulated second of the RUBiS
// testbed (contextualizes the cost of campaign generation).
func BenchmarkSimulationSecond(b *testing.B) {
	sys, err := scenario.RUBiS(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(1)
	}
}

// BenchmarkAblation regenerates the design-choice ablation study (an
// extension beyond the paper's figures).
func BenchmarkAblation(b *testing.B) { benchScenario(b, scenario.Ablation) }
