package fchain_test

import (
	"context"
	"testing"
	"time"

	"fchain"
	"fchain/scenario"
)

// runRUBiSCpuHog builds the RUBiS benchmark, injects a CPU hog at the
// database, and returns the running system plus the violation time.
func runRUBiSCpuHog(t *testing.T, seed int64) (*scenario.System, int64) {
	t.Helper()
	sys, err := scenario.RUBiS(seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(scenario.NewCPUHog(1700, 1.7, "db")); err != nil {
		t.Fatal(err)
	}
	sys.RunUntil(2400)
	tv, found := sys.FirstViolation(1700, 8)
	if !found {
		t.Fatal("no SLO violation")
	}
	return sys, tv
}

// feed pushes every recorded sample up to tv into the localizer.
func feed(t *testing.T, sys *scenario.System, loc *fchain.Localizer, tv int64) {
	t.Helper()
	for _, comp := range sys.Components() {
		for _, k := range fchain.Kinds() {
			s, err := sys.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < s.Len() && s.TimeAt(i) <= tv; i++ {
				if err := loc.Observe(comp, s.TimeAt(i), k, s.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestPublicPipeline(t *testing.T) {
	sys, tv := runRUBiSCpuHog(t, 1)
	deps := fchain.DiscoverDependencies(sys.DependencyTrace(600, 1), fchain.DiscoverConfig{})
	if deps.Empty() {
		t.Fatal("expected discovered dependencies for RUBiS")
	}
	loc := fchain.NewLocalizer(fchain.DefaultConfig(), sys.Components())
	feed(t, sys, loc, tv)
	diag := loc.Localize(tv, deps)
	names := diag.CulpritNames()
	if len(names) == 0 || names[0] != "db" {
		t.Errorf("culprits = %v, want db first", names)
	}
}

func TestPublicValidation(t *testing.T) {
	sys, tv := runRUBiSCpuHog(t, 1)
	loc := fchain.NewLocalizer(fchain.DefaultConfig(), sys.Components())
	feed(t, sys, loc, tv)
	diag := loc.Localize(tv, nil)
	if len(diag.Culprits) == 0 {
		t.Fatal("no culprits to validate")
	}
	results, err := fchain.Validate(func() (fchain.Adjuster, error) {
		return sys.Clone(), nil
	}, diag, loc.Config())
	if err != nil {
		t.Fatal(err)
	}
	validated := fchain.ApplyValidation(diag, results)
	found := false
	for _, c := range validated.Culprits {
		if c.Component == "db" {
			found = true
			if !c.Validated {
				t.Error("surviving culprit should be marked validated")
			}
		}
	}
	if !found {
		t.Errorf("validation dropped the true culprit: %v", validated.CulpritNames())
	}
}

func TestPublicDistributed(t *testing.T) {
	sys, tv := runRUBiSCpuHog(t, 1)
	deps := fchain.DiscoverDependencies(sys.DependencyTrace(600, 1), fchain.DiscoverConfig{})
	master := fchain.NewMaster(fchain.DefaultConfig(), deps)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	for _, comp := range sys.Components() {
		slave := fchain.NewSlave("host-"+comp, []string{comp}, fchain.DefaultConfig())
		for _, k := range fchain.Kinds() {
			s, err := sys.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < s.Len() && s.TimeAt(i) <= tv; i++ {
				if err := slave.Observe(comp, s.TimeAt(i), k, s.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := slave.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		defer slave.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(master.Slaves()) < len(sys.Components()) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	res, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Errorf("full cluster localize reported degraded coverage: %+v", res)
	}
	names := res.Diagnosis.CulpritNames()
	if len(names) == 0 || names[0] != "db" {
		t.Errorf("distributed culprits = %v, want db first", names)
	}
}

func TestScenarioRunUnknown(t *testing.T) {
	if _, err := scenario.Run("fig99", 1); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestScenarioExperimentsComplete(t *testing.T) {
	ids := scenario.Experiments()
	if len(ids) != 13 {
		t.Errorf("experiments = %d, want 13 (11 figures + 2 tables)", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate experiment id %s", id)
		}
		seen[id] = true
	}
}

func TestScenarioWalkthroughExperiments(t *testing.T) {
	// The four walk-through figures must run end to end via the public API.
	for _, id := range []string{scenario.Figure2, scenario.Figure3, scenario.Figure4, scenario.Figure5} {
		out, err := scenario.Run(id, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

func TestKindsExposed(t *testing.T) {
	if got := len(fchain.Kinds()); got != 6 {
		t.Errorf("Kinds = %d, want 6", got)
	}
	if fchain.CPU.String() != "cpu" || fchain.DiskWrite.String() != "disk_write" {
		t.Error("kind constants wrong")
	}
}

func TestCustomScenario(t *testing.T) {
	// A downstream user can define their own application spec.
	spec := scenario.AppSpec{
		Name: "custom",
		Components: []scenario.ComponentSpec{
			{Name: "front", CPUCostPerReq: 0.002, NetInPerReq: 0.01,
				Downstream: []scenario.Edge{{To: "back", Kind: scenario.EdgeBalanced}}},
			{Name: "back", CPUCostPerReq: 0.004},
		},
		Entries: []string{"front"},
		Style:   scenario.RequestReply,
		SLO:     scenario.SLOSpec{Kind: scenario.SLOLatency, Threshold: 0.1},
		Trace:   constantTrace(50),
	}
	sys, err := scenario.New(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys.Step(100)
	if sys.Now() != 100 {
		t.Errorf("Now = %d", sys.Now())
	}
}

type constantTrace float64

func (c constantTrace) Rate(int64) float64 { return float64(c) }

func TestDependencyPersistenceFacade(t *testing.T) {
	g := fchain.NewDependencyGraph()
	g.AddEdge("web", "app", 0.9)
	path := t.TempDir() + "/deps.json"
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := fchain.LoadDependencies(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.HasEdge("web", "app") {
		t.Error("loaded graph lost its edge")
	}
	if _, err := fchain.LoadDependencies(path + ".missing"); err == nil {
		t.Error("loading a missing file should error")
	}
}

func TestDiagnoseFacade(t *testing.T) {
	reports := []fchain.ComponentReport{
		{Component: "db", Onset: 100, Changes: []fchain.AbnormalChange{{
			Component: "db", Metric: fchain.CPU, ChangeAt: 105, Onset: 100,
			PredErr: 10, Expected: 1, Magnitude: 20,
		}}},
		{Component: "web"},
	}
	diag := fchain.Diagnose(reports, 2, nil, fchain.DefaultConfig())
	if names := diag.CulpritNames(); len(names) != 1 || names[0] != "db" {
		t.Errorf("Diagnose = %v, want [db]", names)
	}
}

func TestParseKindFacade(t *testing.T) {
	k, err := fchain.ParseKind("disk_read")
	if err != nil || k != fchain.DiskRead {
		t.Errorf("ParseKind = %v, %v", k, err)
	}
	if _, err := fchain.ParseKind("nope"); err == nil {
		t.Error("bad kind should error")
	}
}
