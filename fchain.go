// Package fchain is a black-box online fault localization library for
// distributed cloud applications, reproducing "FChain: Toward Black-box
// Online Fault Localization for Cloud Systems" (Nguyen, Shen, Tan, Gu —
// ICDCS 2013).
//
// FChain pinpoints the faulty components of a distributed application
// immediately after a performance anomaly (SLO violation) is detected,
// using nothing but per-component system-level metrics (CPU, memory,
// network in/out, disk read/write) sampled once per second. It needs no
// application instrumentation, no topology knowledge, and no training data
// for anomalies, so it diagnoses previously unseen faults.
//
// # Pipeline
//
// Feed every metric sample into a Localizer as it is collected; the
// per-metric online Markov models continuously learn each metric's normal
// fluctuation. When your anomaly detector reports an SLO violation at time
// tv, call Localize: each component's look-back window is scanned for
// abnormal change points (CUSUM+bootstrap change points, filtered by a
// burstiness-adaptive predictability test), the abnormal components are
// sorted into a propagation chain by manifestation onset, and the chain's
// source — plus concurrent faults and dependency-isolated independents —
// is pinpointed.
//
//	loc := fchain.NewLocalizer(fchain.DefaultConfig(), []string{"web", "app", "db"})
//	for sample := range samples {
//	    loc.Observe(sample.Component, sample.Time, sample.Kind, sample.Value)
//	}
//	// ... SLO violation detected at tv ...
//	diag := loc.Localize(tv, deps) // deps from DiscoverDependencies, may be nil
//	fmt.Println(diag.CulpritNames())
//
// Optionally run online pinpointing validation (Validate/ApplyValidation)
// against a system that supports per-component resource scaling, and use
// the cluster types (NewMaster/NewSlave) for the distributed master/slave
// deployment of the paper's Fig. 1.
//
// The sibling package fchain/scenario provides the paper's three simulated
// benchmark systems (RUBiS, IBM System S, Hadoop) and regenerates every
// table and figure of its evaluation.
package fchain

import (
	"time"

	"fchain/internal/cluster"
	"fchain/internal/core"
	"fchain/internal/depgraph"
	"fchain/internal/faultlib"
	"fchain/internal/ingest"
	"fchain/internal/metric"
	"fchain/internal/obs"
	"fchain/internal/tenant"
)

// Kind identifies one of the six monitored system metrics.
type Kind = metric.Kind

// The six system-level metrics FChain monitors (paper §III-A).
const (
	CPU       = metric.CPU
	Memory    = metric.Memory
	NetIn     = metric.NetIn
	NetOut    = metric.NetOut
	DiskRead  = metric.DiskRead
	DiskWrite = metric.DiskWrite
)

// ParseKind returns the Kind named by s ("cpu", "memory", "net_in",
// "net_out", "disk_read", "disk_write").
func ParseKind(s string) (Kind, error) { return metric.ParseKind(s) }

// Kinds lists every monitored metric in canonical order.
func Kinds() []Kind {
	out := make([]Kind, len(metric.Kinds))
	copy(out, metric.Kinds)
	return out
}

// Config holds FChain's tuning knobs; the zero value takes the paper's
// defaults (W=100s look-back, 2s concurrency threshold, Q=20s burst
// window, top 90% frequencies, 90th-percentile burst magnitude).
type Config = core.Config

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config { return core.DefaultConfig() }

// MeshConfig returns the default parameters with the generated-mesh
// monitoring profile applied: a wider external-factor onset spread (deep
// topologies stretch how long a mesh-wide shift takes to manifest
// everywhere) and the relative-magnitude selection floor (hundreds of
// monitored components compound the per-metric false-selection rate on
// operationally meaningless shifts). Use it when monitoring scenario-factory
// meshes; the paper applications keep DefaultConfig.
func MeshConfig() Config {
	cfg := core.DefaultConfig()
	cfg.ExternalSpread = faultlib.MeshExternalSpread
	cfg.MinRelMagnitude = faultlib.MeshMinRelMagnitude
	return cfg
}

// Diagnosis is the output of fault localization: the pinpointed culprits,
// the abnormal-change propagation chain, and the external-factor verdict.
type Diagnosis = core.Diagnosis

// Culprit is one pinpointed faulty component.
type Culprit = core.Culprit

// ComponentReport is one component's abnormal change point report.
type ComponentReport = core.ComponentReport

// AbnormalChange describes one selected abnormal change point.
type AbnormalChange = core.AbnormalChange

// DataQuality summarizes how clean a component's metric streams were: a
// score in [0, 1] plus the sanitizer counters behind it. The zero value
// means "no quality information" and scores full confidence.
type DataQuality = core.DataQuality

// IngestStats are the per-stream sanitizer counters (accepted, dropped,
// clamped, reordered, interpolated, long gaps) behind a DataQuality.
type IngestStats = ingest.Stats

// PoolStats reports how the analysis engine spent its time on one call:
// worker pool shape plus per-phase latency histograms.
type PoolStats = core.PoolStats

// LatencyHist is the log2-bucketed nanosecond histogram inside PoolStats.
type LatencyHist = core.LatencyHist

// Sentinel errors returned by the strict Observe path. Use errors.Is to
// test for them; both wrap details about the offending sample.
var (
	// ErrBadSample marks a NaN or infinite metric value.
	ErrBadSample = core.ErrBadSample
	// ErrTimeRegression marks a sample whose timestamp does not strictly
	// advance its metric's clock.
	ErrTimeRegression = core.ErrTimeRegression
)

// Localizer is the whole FChain pipeline behind two calls: Observe for
// every metric sample, Localize when a performance anomaly is detected.
// Monitor state is sharded per (component, metric), so concurrent Observe
// calls and a concurrent Analyze/Localize are safe; analysis itself fans
// out over a bounded worker pool sized by Config.Parallelism.
type Localizer struct {
	inner *core.Localizer
}

// NewLocalizer creates a localizer monitoring the given components.
func NewLocalizer(cfg Config, components []string) *Localizer {
	return &Localizer{inner: core.NewLocalizer(cfg, components)}
}

// Components returns the monitored component names, sorted.
func (l *Localizer) Components() []string { return l.inner.Components() }

// Config returns the effective configuration after defaulting.
func (l *Localizer) Config() Config { return l.inner.Config() }

// Observe feeds one sample: component, sample time (seconds), metric kind,
// and value. This is the strict path: NaN/Inf values fail with ErrBadSample
// and timestamps must strictly advance per metric (ErrTimeRegression
// otherwise). Use Ingest for feeds that cannot make those guarantees.
func (l *Localizer) Observe(component string, t int64, k Kind, v float64) error {
	return l.inner.Observe(component, t, k, v)
}

// Ingest feeds one sample through the sanitizing path: out-of-order
// samples are buffered and reordered, duplicates and non-finite values
// dropped, magnitude outliers clamped, short gaps interpolated and long
// gaps marked so stale model state is discarded. Every repair is counted
// and surfaced as the component's DataQuality.
func (l *Localizer) Ingest(component string, t int64, k Kind, v float64) error {
	return l.inner.Ingest(component, t, k, v)
}

// Quality returns each component's accumulated data quality over the
// sanitizing ingest path. Components fed only via Observe score 1.
func (l *Localizer) Quality() map[string]DataQuality { return l.inner.Quality() }

// Analyze returns every component's abnormal change point report for the
// look-back window ending at tv, without running the diagnosis step.
func (l *Localizer) Analyze(tv int64) []ComponentReport { return l.inner.Analyze(tv) }

// AnalyzeInto is Analyze appending into dst (reset to length 0 first);
// reusing the slice across calls keeps the steady-state analysis path
// allocation-free.
func (l *Localizer) AnalyzeInto(dst []ComponentReport, tv int64) []ComponentReport {
	return l.inner.AnalyzeInto(dst, tv)
}

// AnalyzeStats is Analyze also returning the analysis engine's worker-pool
// shape and per-phase latency histograms.
func (l *Localizer) AnalyzeStats(tv int64) ([]ComponentReport, PoolStats) {
	return l.inner.AnalyzeStats(tv)
}

// StreamingStats is the aggregated telemetry of the streaming selection
// engine (Config.Streaming): live stream count, resident state bytes, warm
// streams whose accumulator already sees a confident change, and the cold
// fallback / state reset / memo hit counters. All zero when streaming is off.
type StreamingStats = core.StreamingStats

// StreamingStats aggregates streaming-selection telemetry across all
// monitored components.
func (l *Localizer) StreamingStats() StreamingStats { return l.inner.StreamingStats() }

// Localize runs the full pipeline at SLO-violation time tv. deps is the
// inter-component dependency graph from offline discovery and may be nil
// or empty (FChain then relies on propagation order alone, as it must for
// continuous stream-processing systems).
func (l *Localizer) Localize(tv int64, deps *DependencyGraph) Diagnosis {
	return l.inner.Localize(tv, deps)
}

// LocalizeStats is Localize also returning the analysis engine's timing
// counters (selection task latencies plus per-pass diagnosis latency).
func (l *Localizer) LocalizeStats(tv int64, deps *DependencyGraph) (Diagnosis, PoolStats) {
	return l.inner.LocalizeStats(tv, deps)
}

// Trace is the span tree recorded for one traced localization: per-phase
// spans (analyze, diagnose) over per-component spans over per-metric
// selection spans, each carrying the evidence behind the verdict (candidate
// change points, filter decisions, rollback onsets). Normalize strips
// wall-clock timings for golden comparison.
type Trace = obs.Trace

// Span is one timed operation inside a Trace.
type Span = obs.Span

// LocalizeTraced is LocalizeStats also recording the full evidence trace:
// why each (component, metric) pair was or was not selected, and how the
// propagation chain was assembled. The span tree is deterministic — it is
// bit-identical (after Normalize) at any Config.Parallelism.
func (l *Localizer) LocalizeTraced(tv int64, deps *DependencyGraph) (Diagnosis, PoolStats, *Trace) {
	return l.inner.LocalizeTraced(tv, deps)
}

// ObservabilitySink bundles the observability outputs a daemon threads
// through its layers: a leveled logger, a metrics registry, a ring of
// recent traces, and a JSONL event journal. Any field may be nil; nil
// components discard their input at negligible cost.
type ObservabilitySink = obs.Sink

// Diagnose runs only the master-side integrated diagnosis over
// already-computed component reports (as the distributed master does).
// totalComponents is the application's component count.
func Diagnose(reports []ComponentReport, totalComponents int, deps *DependencyGraph, cfg Config) Diagnosis {
	return core.Diagnose(reports, totalComponents, deps, cfg)
}

// DependencyGraph is a directed inter-component dependency graph.
type DependencyGraph = depgraph.Graph

// NewDependencyGraph returns an empty graph; add edges with AddEdge.
func NewDependencyGraph() *DependencyGraph { return depgraph.NewGraph() }

// Packet is one passively captured network packet, the input to black-box
// dependency discovery.
type Packet = depgraph.Packet

// DiscoverConfig controls black-box dependency discovery.
type DiscoverConfig = depgraph.DiscoverConfig

// DiscoverDependencies infers the inter-component dependency graph from a
// passive packet capture (Sherlock-style). Continuous streaming traffic
// yields an empty graph — pass it to Localize anyway; FChain falls back to
// propagation-order-only localization.
func DiscoverDependencies(packets []Packet, cfg DiscoverConfig) *DependencyGraph {
	return depgraph.Discover(packets, cfg)
}

// LoadDependencies reads a dependency graph previously stored with its Save
// method. The paper runs discovery offline and caches the result in a file,
// since application dependencies rarely change at runtime (§II-C).
func LoadDependencies(path string) (*DependencyGraph, error) {
	return depgraph.Load(path)
}

// Adjuster is the resource-scaling surface that online pinpointing
// validation drives: scale a culprit's implicated resource, run, and watch
// the SLO.
type Adjuster = core.Adjuster

// ValidationResult records the outcome of validating one culprit.
type ValidationResult = core.ValidationResult

// Validate runs online pinpointing validation on every culprit: mk must
// return a fresh trial system (in simulation, a clone; in production, the
// live system with later rollback).
func Validate(mk func() (Adjuster, error), diag Diagnosis, cfg Config) ([]ValidationResult, error) {
	return core.Validate(mk, diag, cfg)
}

// ApplyValidation retains only confirmed culprits (FChain+VAL, Fig. 11).
func ApplyValidation(diag Diagnosis, results []ValidationResult) Diagnosis {
	return core.ApplyValidation(diag, results)
}

// Master is the distributed master daemon (paper Fig. 1): it accepts slave
// registrations and runs the integrated diagnosis over their reports. It is
// built for degraded conditions: heartbeat probing evicts dead slaves, a
// per-slave circuit breaker skips repeat offenders, and Localize retries
// unanswered slaves within its deadline before reporting coverage.
type Master = cluster.Master

// MasterOption configures a Master.
type MasterOption = cluster.MasterOption

// WithHeartbeat enables periodic slave liveness probing: a slave missing
// maxMisses consecutive pongs is evicted.
func WithHeartbeat(interval time.Duration, maxMisses int) MasterOption {
	return cluster.WithHeartbeat(interval, maxMisses)
}

// WithLocalizeRetries sets how many extra attempts Localize spends per
// unanswered slave inside its deadline (default 1).
func WithLocalizeRetries(n int) MasterOption { return cluster.WithLocalizeRetries(n) }

// WithLocalizeTimeout sets the overall Localize deadline used when the
// caller's context has none (default 30s).
func WithLocalizeTimeout(d time.Duration) MasterOption { return cluster.WithLocalizeTimeout(d) }

// WithBreaker tunes the per-slave circuit breaker: after threshold
// consecutive analyze failures a slave is skipped until cooldown elapses.
func WithBreaker(threshold int, cooldown time.Duration) MasterOption {
	return cluster.WithBreaker(threshold, cooldown)
}

// WithQuorum sets the slave answer quorum as a fraction in (0, 1]: Localize
// diagnoses as soon as that fraction of slaves answered (stragglers are
// charged to coverage, not latency) and refuses with ErrQuorumNotMet when
// fewer answer before the deadline. 0 (the default) disables both: the
// master waits for every slave within the deadline and diagnoses
// best-effort.
func WithQuorum(frac float64) MasterOption { return cluster.WithQuorum(frac) }

// WithAdmission bounds concurrent Localize calls on the master: at most
// limit run at once, at most queue more wait (LIFO, newest first; overflow
// sheds the oldest waiter). Shed calls fail fast with ErrOverloaded.
func WithAdmission(limit, queue int) MasterOption { return cluster.WithAdmission(limit, queue) }

// WithSlaveInflight caps concurrent analyze requests outstanding to any one
// slave across overlapping Localize calls (default 8; <= 0 removes the cap).
func WithSlaveInflight(n int) MasterOption { return cluster.WithSlaveInflight(n) }

// Sentinel errors surfaced by the overload-resilient control plane. Use
// errors.Is to test for them.
var (
	// ErrOverloaded: the request was shed by admission control before any
	// analysis ran.
	ErrOverloaded = cluster.ErrOverloaded
	// ErrQuorumNotMet: fewer slaves answered before the deadline than the
	// configured quorum requires, so no diagnosis was produced.
	ErrQuorumNotMet = cluster.ErrQuorumNotMet
)

// OverloadedError is the concrete error behind ErrOverloaded sheds: it
// carries the RetryAfter backoff hint derived from the admission queue depth
// at shed time, reconstructed on the client side of the wire. Match with
// errors.Is(err, ErrOverloaded) and extract with errors.As.
type OverloadedError = cluster.OverloadedError

// WithSharding puts the master in charge of component placement: components
// registered with RegisterComponents are assigned to slaves by a
// consistent-hash ring with the given number of virtual nodes per member
// (<= 0 takes the default 128), ownership is enforced at Observe and
// Analyze, and membership changes trigger checkpoint-handoff rebalancing.
func WithSharding(vnodes int) MasterOption { return cluster.WithSharding(vnodes) }

// WithHandoffTimeout bounds each per-component checkpoint handoff
// (export -> restore -> ack) during a rebalance (default 5s); a handoff that
// cannot finish in time falls back to a cold start on the new owner.
func WithHandoffTimeout(d time.Duration) MasterOption { return cluster.WithHandoffTimeout(d) }

// WithHandoffRetries sets how many extra attempts a failed checkpoint
// handoff gets before the new owner cold-starts (default 1).
func WithHandoffRetries(n int) MasterOption { return cluster.WithHandoffRetries(n) }

// WithAutoRebalance toggles automatic rebalancing on membership change
// (default on when sharding is enabled); off, placement changes only when
// Rebalance is called.
func WithAutoRebalance(on bool) MasterOption { return cluster.WithAutoRebalance(on) }

// WithStandby gives every placed component a warm standby owner (sharded
// mode only): the ring assigns a second, distinct slave per component,
// primaries stream state deltas to it (enable WithReplication on the
// slaves), and when a primary dies rebalancing promotes the caught-up
// standby in place — no checkpoint read, no handoff round-trip.
func WithStandby(on bool) MasterOption { return cluster.WithStandby(on) }

// WithReplMaxLag bounds how stale a standby may be and still be promoted
// warm: a standby whose last clean replication tick is older than d falls
// back to a cold start instead (<= 0, the default, disables the bound).
func WithReplMaxLag(d time.Duration) MasterOption { return cluster.WithReplMaxLag(d) }

// Aggregator is the optional middle tier of the master/slave topology: it
// registers with the master as the upstream of a slave subtree, fans the
// master's analyze requests out to its subtree, and merges the answers into
// one reply. A dead aggregator costs nothing but the tree: the master falls
// back to the slaves' direct connections mid-localization.
type Aggregator = cluster.Aggregator

// AggregatorOption configures an Aggregator.
type AggregatorOption = cluster.AggregatorOption

// WithSubtreeQuorum sets the aggregator's subtree answer quorum as a
// fraction in (0, 1]; <= 0 (the default) waits for every requested slave
// within the budget.
func WithSubtreeQuorum(frac float64) AggregatorOption { return cluster.WithSubtreeQuorum(frac) }

// WithAggregatorBackoff overrides the aggregator's master-reconnect backoff
// bounds.
func WithAggregatorBackoff(initial, max time.Duration) AggregatorOption {
	return cluster.WithAggregatorBackoff(initial, max)
}

// WithAggregatorObs attaches an observability sink to the aggregator.
func WithAggregatorObs(sink *ObservabilitySink) AggregatorOption {
	return cluster.WithAggregatorObs(sink)
}

// NewAggregator creates an aggregator; call Start to listen for subtree
// slaves and Connect to register with the master.
func NewAggregator(name string, opts ...AggregatorOption) *Aggregator {
	return cluster.NewAggregator(name, opts...)
}

// WithMasterObs attaches an observability sink to the master: every
// Localize records a trace into the ring, updates the metrics registry,
// and journals its verdict; slave lifecycle events are logged.
func WithMasterObs(sink *ObservabilitySink) MasterOption {
	return cluster.WithMasterObs(sink)
}

// NewMaster creates a master with the given configuration and dependency
// graph; call Start to listen.
func NewMaster(cfg Config, deps *DependencyGraph, opts ...MasterOption) *Master {
	return cluster.NewMaster(cfg, deps, opts...)
}

// LocalizeResult is a distributed diagnosis plus coverage metadata: how many
// slaves answered, how many components the diagnosis saw, and whether the
// view was Degraded (partial).
type LocalizeResult = core.LocalizeResult

// HealthState classifies a slave's liveness ("healthy", "degraded", "dead").
type HealthState = cluster.HealthState

// Slave liveness states reported by Master.Health.
const (
	Healthy  = cluster.Healthy
	Degraded = cluster.Degraded
	Dead     = cluster.Dead
)

// SlaveHealth is one slave's liveness snapshot from Master.Health.
type SlaveHealth = cluster.SlaveHealth

// Slave is the per-host slave daemon: it models normal fluctuation for its
// components and answers the master's analyze requests. A dropped master
// connection is re-dialed with capped exponential backoff while local
// collection continues, so an outage costs only the time it lasted.
type Slave = cluster.Slave

// SlaveOption configures a Slave.
type SlaveOption = cluster.SlaveOption

// WithClockSkew simulates a clock offset (seconds) on the slave's samples,
// for testing FChain's tolerance to imperfect time synchronization.
func WithClockSkew(seconds int64) SlaveOption { return cluster.WithClockSkew(seconds) }

// WithBackoff overrides the slave's reconnect backoff bounds (first retry
// ~initial, doubling to max, jittered ±50%).
func WithBackoff(initial, max time.Duration) SlaveOption { return cluster.WithBackoff(initial, max) }

// WithReconnect toggles the slave's automatic reconnection (default on).
func WithReconnect(on bool) SlaveOption { return cluster.WithReconnect(on) }

// WithReplication enables warm-standby replication: every interval the
// slave ships each owned component's state delta (new samples since the
// last acked ship, or a full snapshot after a gap) upstream for relay to
// the component's standby (<= 0 disables; pair with the master's
// WithStandby).
func WithReplication(interval time.Duration) SlaveOption {
	return cluster.WithReplication(interval)
}

// WithCheckpointDir enables crash-safe persistence: the slave checkpoints
// every component's models and ring tails to dir (periodically and on
// Close) and restores whatever usable checkpoints the directory holds when
// it is constructed, so a restarted slave resumes with warm models.
func WithCheckpointDir(dir string) SlaveOption { return cluster.WithCheckpointDir(dir) }

// WithCheckpointInterval sets the periodic checkpoint cadence used with
// WithCheckpointDir (default 30s).
func WithCheckpointInterval(d time.Duration) SlaveOption {
	return cluster.WithCheckpointInterval(d)
}

// ConnState describes the slave's link to the master.
type ConnState = cluster.ConnState

// Slave connection states reported through WithStateCallback.
const (
	StateConnected    = cluster.StateConnected
	StateDisconnected = cluster.StateDisconnected
	StateReconnecting = cluster.StateReconnecting
	StateClosed       = cluster.StateClosed
)

// WithVia names the aggregator this slave reports through: the slave
// registers the name with the master (which then routes analyze requests for
// it via that aggregator) and should additionally Connect to the
// aggregator's own address.
func WithVia(aggregator string) SlaveOption { return cluster.WithVia(aggregator) }

// WithStateCallback registers a connection-state observer on the slave.
func WithStateCallback(fn func(state ConnState, err error)) SlaveOption {
	return cluster.WithStateCallback(fn)
}

// WithSlaveAdmission bounds concurrent analyze work on the slave: at most
// limit requests analyze at once, at most queue more wait (LIFO); shed or
// deadline-expired requests are answered with a structured "overloaded"
// error frame so the master fails fast.
func WithSlaveAdmission(limit, queue int) SlaveOption {
	return cluster.WithSlaveAdmission(limit, queue)
}

// WithSlaveObs attaches an observability sink to the slave: ingest and
// analyze counters, per-request selection latency histograms, analysis
// traces into the ring, and connection-state logging.
func WithSlaveObs(sink *ObservabilitySink) SlaveOption {
	return cluster.WithSlaveObs(sink)
}

// NewSlave creates a slave monitoring the given components; call Connect
// to register with a master.
func NewSlave(name string, components []string, cfg Config, opts ...SlaveOption) *Slave {
	return cluster.NewSlave(name, components, cfg, opts...)
}

// DiagnosisRecord is one remembered localization in Master.History,
// tenant/app-tagged when it was produced by the service-mode intake.
type DiagnosisRecord = cluster.DiagnosisRecord

// Service is the durable multi-tenant violation intake over a Master: it
// accepts a stream of SLO-violation events tagged (tenant, app, tv) — over
// the wire via violate frames or in process via Submit — applies per-tenant
// namespaces and token-bucket quotas, coalesces concurrent same-app
// violations into one localization, re-serves recent verdicts from an LRU
// cache, and write-ahead journals every accepted violation so Replay can
// recover after a crash: served verdicts are re-served byte-identically and
// accepted-but-unserved violations are re-run.
type Service = cluster.Service

// ServiceConfig tunes a Service (tenant namespace, quotas, coalesce window,
// verdict cache); zero values take the documented defaults.
type ServiceConfig = cluster.ServiceConfig

// Verdict is one served localization verdict; its Diagnosis field is the
// canonical JSON kept raw so cached and replayed verdicts are byte-identical
// to the original.
type Verdict = cluster.Verdict

// ReplayStats summarizes one Service.Replay pass over the journal.
type ReplayStats = cluster.ReplayStats

// NewService builds the service layer over master and attaches it, routing
// violate frames from the master's listener into it.
func NewService(m *Master, cfg ServiceConfig) *Service { return cluster.NewService(m, cfg) }

// ServiceClient is the wire client for the service-mode intake: dial the
// master once, then stream violations with Violate (safe concurrently).
type ServiceClient = cluster.ServiceClient

// DialService connects a violation client to a master running a Service.
func DialService(addr string) (*ServiceClient, error) { return cluster.DialService(addr) }

// Sentinel errors surfaced by the service-mode intake. Use errors.Is.
var (
	// ErrUnknownTenant: the violation named a tenant outside the service's
	// namespace (or no tenant at all).
	ErrUnknownTenant = tenant.ErrUnknown
	// ErrTenantQuota: the tenant's token-bucket violation quota is spent;
	// the violation was shed without consuming any localization capacity.
	ErrTenantQuota = tenant.ErrQuota
	// ErrServiceDraining: the service is shutting down and no longer admits
	// violations.
	ErrServiceDraining = cluster.ErrDraining
)
