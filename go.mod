module fchain

go 1.22
