module fchain

go 1.24
