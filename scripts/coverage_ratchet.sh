#!/usr/bin/env bash
# Coverage ratchet: fail if total test coverage drops more than 0.5
# percentage points below the committed baseline in
# .github/coverage-ratchet.txt. After intentionally adding or removing
# tested code, refresh the baseline with: scripts/coverage_ratchet.sh update
set -eu
cd "$(dirname "$0")/.."

mode="${1:-check}"
ratchet_file=".github/coverage-ratchet.txt"
profile="$(mktemp)"
trap 'rm -f "$profile"' EXIT

go test -count=1 -coverprofile="$profile" ./... >/dev/null
total="$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')"

if [ "$mode" = update ]; then
  echo "$total" >"$ratchet_file"
  echo "coverage ratchet updated to ${total}%"
  exit 0
fi

baseline="$(cat "$ratchet_file")"
echo "total coverage ${total}% (baseline ${baseline}%, tolerance 0.5)"
if [ "$(awk -v t="$total" -v b="$baseline" 'BEGIN { print (t + 0.5 >= b) ? "ok" : "drop" }')" != ok ]; then
  echo "coverage dropped more than 0.5 points below the baseline" >&2
  echo "if the drop is intentional, refresh with: scripts/coverage_ratchet.sh update" >&2
  exit 1
fi
