package fchain_test

import (
	"bytes"
	"testing"

	"fchain/internal/eval"
	"fchain/internal/faultlib"
	"fchain/internal/golden"
	"fchain/internal/meshgen"
)

func meshParams(n, fanout, depth int, seed int64) meshgen.Params {
	return meshgen.Params{Components: n, FanOut: fanout, Depth: depth, CycleProb: 0.05, Seed: seed}
}

func smokeTemplates() []faultlib.Template {
	return []faultlib.Template{
		faultlib.MustLookup("gray-disk"),
		faultlib.MustLookup("retry-storm"),
		faultlib.MustLookup("workload-surge"),
	}
}

// TestResultsMatrixArtifact regenerates the committed (topology × fault)
// accuracy matrix — three generated mesh sizes × the full fault-template
// library — and compares it byte-for-byte against results_matrix.txt at the
// repository root. Regenerate with `go test ./... -update` after an
// intentional change to the generator, the template library, or the
// localizer.
//
// Beyond byte stability, the matrix must satisfy the library's accuracy
// contract on every cell: each genuine fault template is localized with
// non-zero recall on every topology size, and the false-alarm traps are
// never blamed on any component.
func TestResultsMatrixArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fault-injection matrix")
	}
	res, err := eval.MatrixCampaign(eval.MatrixConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Meshes) < 3 {
		t.Fatalf("matrix has %d mesh sizes, want >= 3", len(res.Meshes))
	}
	templates := make(map[string]bool)
	for _, c := range res.Cells {
		templates[c.Template] = true
		if c.Trap {
			if c.FalseAlarms != 0 || c.Outcome.FP != 0 {
				t.Errorf("%s/%s: trap blamed culprits (false-alarms=%d, fp=%d)",
					c.Mesh, c.Template, c.FalseAlarms, c.Outcome.FP)
			}
			continue
		}
		if c.Trials == 0 {
			t.Errorf("%s/%s: no trial produced an SLO violation", c.Mesh, c.Template)
			continue
		}
		if c.Outcome.Recall() <= 0 {
			t.Errorf("%s/%s: recall = %.2f, want > 0 (tp=%d fn=%d)",
				c.Mesh, c.Template, c.Outcome.Recall(), c.Outcome.TP, c.Outcome.FN)
		}
	}
	if len(templates) < 6 {
		t.Errorf("matrix covers %d fault templates, want >= 6", len(templates))
	}
	golden.Assert(t, "results_matrix.txt", []byte(res.Render()))
}

// smokeMatrixConfig is the reduced 2×3 matrix CI's matrix-smoke job runs
// under -race: two small topologies against a gray failure, a cascade, and a
// false-alarm trap.
func smokeMatrixConfig(workers int) eval.MatrixConfig {
	cfg := eval.MatrixConfig{
		Meshes: []eval.MeshCase{
			{Name: "smoke-n60", Params: meshParams(60, 3, 4, 14)},
			{Name: "smoke-n100", Params: meshParams(100, 3, 5, 15)},
		},
		Runs: 1,
	}
	cfg.Run.Workers = workers
	cfg.Templates = smokeTemplates()
	return cfg
}

// TestMatrixSmoke checks the matrix pipeline's determinism contract on the
// reduced CI matrix: a serial run (one campaign worker) and a parallel run
// must render byte-identical text, and the cells must meet the same accuracy
// contract as the full artifact.
func TestMatrixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fault-injection simulations")
	}
	serialRes, err := eval.MatrixCampaign(smokeMatrixConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	serial := []byte(serialRes.Render())
	parallelRes, err := eval.MatrixCampaign(smokeMatrixConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if parallel := []byte(parallelRes.Render()); !bytes.Equal(serial, parallel) {
		t.Fatalf("matrix differs between 1 and 4 campaign workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	for _, c := range serialRes.Cells {
		if c.Trap {
			if c.FalseAlarms != 0 {
				t.Errorf("%s/%s: trap blamed culprits", c.Mesh, c.Template)
			}
			continue
		}
		if c.Trials > 0 && c.Outcome.Recall() <= 0 {
			t.Errorf("%s/%s: recall = %.2f, want > 0", c.Mesh, c.Template, c.Outcome.Recall())
		}
	}
}
