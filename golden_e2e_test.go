package fchain_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"fchain"
	"fchain/internal/golden"
	"fchain/scenario"
)

// goldenScenario is one canonical fault-injection run whose end-to-end
// localization — verdict, propagation chain, and full evidence trace — is
// pinned by a committed golden report under testdata/golden/.
type goldenScenario struct {
	name    string
	app     string
	build   func(seed int64) (*scenario.System, error)
	fault   func(inject int64) scenario.Fault
	seed    int64
	inject  int64
	sustain int // consecutive violating seconds before the SLO alarm fires

	// meshSpec switches the scenario to a generated mesh (ParseMesh
	// grammar); faultTpl then names the fault-template to draw. Mesh
	// scenarios run under the mesh monitoring profile (wider
	// external-factor spread, relative-magnitude floor, longer dependency
	// capture) and pin the evidence trace by digest instead of full JSON —
	// a 200-component trace would dwarf every other golden combined.
	meshSpec string
	faultTpl string
}

// Fault parameters are fixed constants (no RNG draw, unlike fchain-sim's
// jittered magnitudes) so the entire run is a pure function of (app, seed).
var goldenScenarios = []goldenScenario{
	{
		name: "rubis-cpuhog-db", app: "rubis", build: scenario.RUBiS,
		fault:   func(inject int64) scenario.Fault { return scenario.NewCPUHog(inject, 1.8, "db") },
		seed:    1,
		inject:  1700,
		sustain: 8,
	},
	{
		name: "rubis-memleak-app1", app: "rubis", build: scenario.RUBiS,
		fault:   func(inject int64) scenario.Fault { return scenario.NewMemLeak(inject, 30, "app1") },
		seed:    2,
		inject:  1500,
		sustain: 8,
	},
	{
		name: "systems-cpuhog-pe3", app: "systems", build: scenario.SystemS,
		fault:   func(inject int64) scenario.Fault { return scenario.NewCPUHog(inject, 1.8, "pe3") },
		seed:    1,
		inject:  1500,
		sustain: 8,
	},
	{
		// The concurrent DiskHog on all map nodes is the paper's Hadoop
		// headline fault: it manifests slowly, so the alarm uses a short
		// sustain window (as the eval harness does for this scenario).
		name: "hadoop-diskhog-maps", app: "hadoop", build: scenario.Hadoop,
		fault: func(inject int64) scenario.Fault {
			return scenario.NewDiskHog(inject, 59.4, 300, "map1", "map2", "map3")
		},
		seed:    1,
		inject:  1400,
		sustain: 3,
	},
	{
		// A generated 200-component mesh under a gray disk failure: the
		// scenario-factory path (meshgen topology, faultlib template, mesh
		// monitoring profile) pinned end to end alongside the paper apps.
		name: "mesh200-gray-disk", app: "mesh",
		meshSpec: "n=200,fanout=3,depth=5,seed=21",
		faultTpl: "gray-disk",
		seed:     7,
		inject:   2000,
		sustain:  8,
	},
}

// goldenReport is the committed JSON shape: the scenario's identity, the
// localization verdict, and the normalized evidence trace.
type goldenReport struct {
	Scenario string        `json:"scenario"`
	App      string        `json:"app"`
	Fault    string        `json:"fault"`
	Seed     int64         `json:"seed"`
	Inject   int64         `json:"inject"`
	TV       int64         `json:"tv"`
	Verdict  string        `json:"verdict"`
	Culprits []string      `json:"culprits"`
	External bool          `json:"external"`
	Chain    []chainEntry  `json:"chain"`
	Trace    *fchain.Trace `json:"trace,omitempty"`
	// Mesh scenarios pin the normalized trace by size and digest.
	TraceSpans  int    `json:"trace_spans,omitempty"`
	TraceSHA256 string `json:"trace_sha256,omitempty"`
}

type chainEntry struct {
	Component string   `json:"component"`
	Onset     int64    `json:"onset"`
	Metrics   []string `json:"metrics"`
}

// runGoldenScenario replays one scenario end to end — simulate, detect the
// SLO violation, discover dependencies, feed the localizer, localize with
// tracing — and renders the report bytes compared against the golden.
func runGoldenScenario(t *testing.T, sc goldenScenario, parallelism int, streaming bool) []byte {
	t.Helper()
	cfg := fchain.DefaultConfig()
	depTraceSec := 600
	var (
		sys   *scenario.System
		fault scenario.Fault
	)
	if sc.meshSpec != "" {
		m, msys, err := scenario.Mesh(sc.meshSpec, sc.seed)
		if err != nil {
			t.Fatal(err)
		}
		sys = msys
		fault, err = scenario.MeshFault(sc.faultTpl, sc.inject, m, sc.seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ExternalSpread = scenario.MeshExternalSpread
		cfg.MinRelMagnitude = scenario.MeshMinRelMagnitude
		if lb := scenario.MeshFaultLookBack(sc.faultTpl); lb > 0 {
			cfg.LookBack = lb
		}
		depTraceSec = 2400
	} else {
		var err error
		sys, err = sc.build(sc.seed)
		if err != nil {
			t.Fatal(err)
		}
		fault = sc.fault(sc.inject)
	}
	if err := sys.Inject(fault); err != nil {
		t.Fatal(err)
	}
	sys.RunUntil(sc.inject + 1100)
	tv, found := sys.FirstViolation(sc.inject, sc.sustain)
	if !found {
		t.Fatalf("%s: no SLO violation within the horizon", sc.name)
	}
	deps := fchain.DiscoverDependencies(sys.DependencyTrace(depTraceSec, sc.seed), fchain.DiscoverConfig{})

	cfg.Parallelism = parallelism
	cfg.Streaming = streaming
	loc := fchain.NewLocalizer(cfg, sys.Components())
	for _, comp := range sys.Components() {
		for _, k := range fchain.Kinds() {
			s, err := sys.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < s.Len() && s.TimeAt(i) <= tv; i++ {
				if err := loc.Observe(comp, s.TimeAt(i), k, s.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	diag, _, trace := loc.LocalizeTraced(tv, deps)
	if trace.SpanCount() == 0 {
		t.Fatal("LocalizeTraced returned an empty trace")
	}

	report := goldenReport{
		Scenario: sc.name,
		App:      sc.app,
		Fault:    fault.Name(),
		Seed:     sc.seed,
		Inject:   sc.inject,
		TV:       tv,
		Verdict:  diag.String(),
		Culprits: diag.CulpritNames(),
		External: diag.ExternalFactor,
	}
	if sc.meshSpec != "" {
		norm, err := json.Marshal(trace.Normalize())
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(norm)
		report.TraceSpans = trace.SpanCount()
		report.TraceSHA256 = hex.EncodeToString(sum[:])
	} else {
		report.Trace = trace.Normalize()
	}
	for _, r := range diag.Chain {
		entry := chainEntry{Component: r.Component, Onset: r.Onset}
		for _, k := range r.AbnormalMetrics() {
			entry.Metrics = append(entry.Metrics, k.String())
		}
		report.Chain = append(report.Chain, entry)
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, '\n')
}

// TestGoldenEndToEnd pins the pipeline's end-to-end behavior: each
// canonical fault scenario must reproduce its committed verdict and
// evidence trace exactly, across the full execution matrix — serial and
// 4-way-parallel analysis, batch and streaming selection — all four
// producing byte-identical reports. Regenerate with
// `go test ./... -update` after an intentional pipeline change.
func TestGoldenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full fault-injection simulations")
	}
	for _, sc := range goldenScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			serial := runGoldenScenario(t, sc, 1, false)
			for _, v := range []struct {
				name        string
				parallelism int
				streaming   bool
			}{
				{"parallel", 4, false},
				{"streaming-serial", 1, true},
				{"streaming-parallel", 4, true},
			} {
				if got := runGoldenScenario(t, sc, v.parallelism, v.streaming); !bytes.Equal(serial, got) {
					t.Fatalf("%s report differs from serial batch: determinism contract broken", v.name)
				}
			}
			golden.Assert(t, golden.Path(sc.name+".json"), serial)
		})
	}
}
