package fchain_test

import (
	"fmt"
	"math"

	"fchain"
)

// Example demonstrates the whole pipeline on a hand-built metric stream:
// three components with learned periodic behaviour, one of which develops a
// sustained CPU anomaly shortly before the SLO violation at tv=899.
func Example() {
	components := []string{"app", "db", "web"}
	loc := fchain.NewLocalizer(fchain.DefaultConfig(), components)

	// Feed 900 seconds of 1 Hz samples. Every component carries the same
	// periodic workload signature; "db" gains a +40% CPU step at t=850.
	for t := int64(0); t < 900; t++ {
		for _, comp := range components {
			base := 30 + 10*math.Sin(2*math.Pi*float64(t)/60)
			cpu := base
			if comp == "db" && t >= 850 {
				cpu += 40
			}
			if err := loc.Observe(comp, t, fchain.CPU, cpu); err != nil {
				fmt.Println("observe:", err)
				return
			}
			// The remaining metrics stay quiet.
			for _, k := range []fchain.Kind{fchain.Memory, fchain.NetIn, fchain.NetOut, fchain.DiskRead, fchain.DiskWrite} {
				if err := loc.Observe(comp, t, k, 100); err != nil {
					fmt.Println("observe:", err)
					return
				}
			}
		}
	}

	// The dependency graph from offline discovery: web -> app -> db.
	deps := fchain.NewDependencyGraph()
	deps.AddEdge("web", "app", 1)
	deps.AddEdge("app", "db", 1)

	diag := loc.Localize(899, deps)
	fmt.Println(diag)
	// Output:
	// culprits: db(onset=850,source)
}
