// Trace replay: drive a custom application with a workload trace loaded
// from a CSV file — the hook for plugging in the real NASA/ClarkNet IRCache
// traces the paper used. The example writes a small trace file, builds a
// two-tier application around it, injects a CPU hog, and localizes.
//
//	go run ./examples/replay
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"fchain"
	"fchain/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Write a demo trace: a diurnal-ish curve, one rate per second.
	// Replace this file with a real per-second request-count export.
	dir, err := os.MkdirTemp("", "fchain-replay")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "# demo workload: requests per second")
	for t := 0; t < 2400; t++ {
		rate := 60 + 20*math.Sin(2*math.Pi*float64(t)/600)
		fmt.Fprintf(f, "%.2f\n", rate)
	}
	if err := f.Close(); err != nil {
		return err
	}

	trace, err := scenario.LoadTraceCSV(path)
	if err != nil {
		return err
	}
	fmt.Println("loaded replay trace from", path)

	// 2. A custom two-tier application driven by the replayed trace.
	spec := scenario.AppSpec{
		Name: "replay-demo",
		Components: []scenario.ComponentSpec{
			{
				Name: "frontend", CPUCostPerReq: 0.004, MemPerReq: 0.5,
				NetInPerReq: 0.02, NetOutPerReq: 0.01, BaseMemMB: 300,
				ServiceTime: 0.004, QueueCap: 400,
				Downstream: []scenario.Edge{{To: "backend", Kind: scenario.EdgeBalanced}},
			},
			{
				Name: "backend", CPUCostPerReq: 0.01, MemPerReq: 1,
				NetInPerReq: 0.01, NetOutPerReq: 0.01, BaseMemMB: 600,
				ServiceTime: 0.02, QueueCap: 400,
			},
		},
		Entries: []string{"frontend"},
		Style:   scenario.RequestReply,
		SLO:     scenario.SLOSpec{Kind: scenario.SLOLatency, Threshold: 0.1},
		Trace:   trace,
	}
	sys, err := scenario.New(spec, 7)
	if err != nil {
		return err
	}

	// 3. Fault, violation, localization.
	const inject = 1500
	if err := sys.Inject(scenario.NewCPUHog(inject, 1.8, "backend")); err != nil {
		return err
	}
	sys.RunUntil(inject + 600)
	tv, found := sys.FirstViolation(inject, 8)
	if !found {
		return fmt.Errorf("no SLO violation")
	}
	loc := fchain.NewLocalizer(fchain.DefaultConfig(), sys.Components())
	for _, comp := range sys.Components() {
		for _, kind := range fchain.Kinds() {
			series, err := sys.Series(comp, kind)
			if err != nil {
				return err
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := loc.Observe(comp, series.TimeAt(i), kind, series.At(i)); err != nil {
					return err
				}
			}
		}
	}
	fmt.Printf("SLO violated at t=%d; diagnosis: %s\n", tv, loc.Localize(tv, nil))
	return nil
}
