// Distributed deployment: the paper's Fig. 1 architecture on localhost.
// One fchain master and one slave per simulated host talk over TCP; the
// slaves run the per-component online models, the master triggers them and
// runs the integrated diagnosis when the SLO violation is detected.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fchain"
	"fchain/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The monitored application: RUBiS with a CPU hog at the database.
	sys, err := scenario.RUBiS(1)
	if err != nil {
		return err
	}
	const inject = 1500
	if err := sys.Inject(scenario.NewCPUHog(inject, 1.7, "db")); err != nil {
		return err
	}
	sys.RunUntil(inject + 700)
	tv, found := sys.FirstViolation(inject, 8)
	if !found {
		return fmt.Errorf("no SLO violation")
	}

	// Master with the offline-discovered dependency graph.
	deps := fchain.DiscoverDependencies(sys.DependencyTrace(600, 1), fchain.DiscoverConfig{})
	master := fchain.NewMaster(fchain.DefaultConfig(), deps)
	if err := master.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer master.Close()
	fmt.Println("master listening on", master.Addr())

	// One slave per host (here: one component per host), each with a small
	// simulated clock skew to show FChain's NTP-tolerance.
	skews := map[string]int64{"web": 1, "app2": -1}
	var slaves []*fchain.Slave
	for _, comp := range sys.Components() {
		var opts []fchain.SlaveOption
		if skew := skews[comp]; skew != 0 {
			opts = append(opts, fchain.WithClockSkew(skew))
		}
		slave := fchain.NewSlave("host-"+comp, []string{comp}, fchain.DefaultConfig(), opts...)
		// Feed the host's collected metrics (in production: libvirt stats).
		for _, kind := range fchain.Kinds() {
			series, err := sys.Series(comp, kind)
			if err != nil {
				return err
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := slave.Observe(comp, series.TimeAt(i), kind, series.At(i)); err != nil {
					return err
				}
			}
		}
		if err := slave.Connect(master.Addr()); err != nil {
			return err
		}
		slaves = append(slaves, slave)
		fmt.Println("slave registered:", slave.Name())
	}
	defer func() {
		for _, s := range slaves {
			s.Close()
		}
	}()

	// Wait for registrations, then trigger localization for the violation.
	deadline := time.Now().Add(2 * time.Second)
	for len(master.Slaves()) < len(slaves) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("SLO violation at t=%d — triggering distributed localization\n", tv)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := master.Localize(ctx, tv)
	if err != nil {
		return err
	}
	fmt.Println("diagnosis:", res)
	return nil
}
