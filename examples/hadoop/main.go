// Hadoop diagnosis with online validation: inject the paper's concurrent
// CpuHog (an infinite-loop bug in every map task), localize all three map
// nodes from the progress-stall SLO violation, then run online pinpointing
// validation — scaling each culprit's implicated resource on a cloned
// system and watching whether the SLO clears (paper §II-A, Fig. 11).
//
//	go run ./examples/hadoop
package main

import (
	"fmt"
	"log"

	"fchain"
	"fchain/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := scenario.Hadoop(2)
	if err != nil {
		return err
	}

	// Concurrent fault: the infinite-loop bug hits all three map tasks.
	const inject = 1500
	maps := []string{"map1", "map2", "map3"}
	if err := sys.Inject(scenario.NewCPUHog(inject, 1.97, maps...)); err != nil {
		return err
	}
	sys.RunUntil(inject + 600)
	tv, found := sys.FirstViolation(inject, 1)
	if !found {
		return fmt.Errorf("no progress stall detected")
	}
	fmt.Printf("job progress stalled; violation flagged at t=%d (fault at t=%d)\n", tv, inject)

	loc := fchain.NewLocalizer(fchain.DefaultConfig(), sys.Components())
	for _, comp := range sys.Components() {
		for _, kind := range fchain.Kinds() {
			series, err := sys.Series(comp, kind)
			if err != nil {
				return err
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := loc.Observe(comp, series.TimeAt(i), kind, series.At(i)); err != nil {
					return err
				}
			}
		}
	}
	deps := fchain.DiscoverDependencies(sys.DependencyTrace(600, 3), fchain.DiscoverConfig{})
	diag := loc.Localize(tv, deps)
	fmt.Println("diagnosis:", diag)

	// Online pinpointing validation: scale each culprit's implicated
	// resources on a clone and watch the SLO. True culprits confirm;
	// false alarms don't.
	results, err := fchain.Validate(func() (fchain.Adjuster, error) {
		return sys.Clone(), nil
	}, diag, loc.Config())
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("  validate %-6s implicated=%v confirmed=%v (SLO metric %.3f when omitted)\n",
			r.Culprit.Component, r.Culprit.Metrics, r.Confirmed, r.Metric)
	}
	fmt.Println("after validation:", fchain.ApplyValidation(diag, results))
	return nil
}
