// Quickstart: localize a memory leak in a three-tier web application.
//
// This is the smallest end-to-end FChain run: build the RUBiS benchmark
// simulation, inject a memory leak into the database VM, wait for the SLO
// violation, feed the collected metrics into a Localizer, and print the
// diagnosis.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fchain"
	"fchain/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A distributed application: web -> {app1, app2} -> db, driven by a
	// realistic (diurnal + bursty) workload trace.
	sys, err := scenario.RUBiS(42)
	if err != nil {
		return err
	}

	// 2. Inject a memory-leak bug into the database VM at t=1500s.
	const inject = 1500
	if err := sys.Inject(scenario.NewMemLeak(inject, 30, "db")); err != nil {
		return err
	}

	// 3. Run until the mean response time exceeds the 100ms SLO.
	sys.RunUntil(inject + 1000)
	tv, found := sys.FirstViolation(inject, 8)
	if !found {
		return fmt.Errorf("no SLO violation — unexpected for this scenario")
	}
	fmt.Printf("SLO violated at t=%d (leak injected at t=%d)\n", tv, inject)

	// 4. Feed every metric sample (6 metrics x 4 components x 1Hz) into
	// FChain. In production this loop is your metrics collector.
	loc := fchain.NewLocalizer(fchain.DefaultConfig(), sys.Components())
	for _, comp := range sys.Components() {
		for _, kind := range fchain.Kinds() {
			series, err := sys.Series(comp, kind)
			if err != nil {
				return err
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := loc.Observe(comp, series.TimeAt(i), kind, series.At(i)); err != nil {
					return err
				}
			}
		}
	}

	// 5. Discover inter-component dependencies from a passive packet trace
	// (offline, cached in real deployments).
	deps := fchain.DiscoverDependencies(sys.DependencyTrace(600, 42), fchain.DiscoverConfig{})
	fmt.Println("discovered dependencies:", deps)

	// 6. Localize.
	diag := loc.Localize(tv, deps)
	fmt.Println("propagation chain (component @ manifestation onset):")
	for _, r := range diag.Chain {
		fmt.Printf("  %-6s @ t=%d  (abnormal metrics: %v)\n", r.Component, r.Onset, r.AbnormalMetrics())
	}
	fmt.Println("diagnosis:", diag)
	return nil
}
