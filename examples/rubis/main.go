// RUBiS campaign: run every RUBiS fault from the paper's catalog
// (single-component MemLeak/CpuHog/NetHog and multi-component
// OffloadBug/LBBug) across several seeds and report FChain's precision and
// recall per fault — a miniature of the paper's Figs. 6 and 8.
//
//	go run ./examples/rubis [-runs 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"fchain"
	"fchain/scenario"
)

// faultCase names one injectable fault with its ground truth.
type faultCase struct {
	name  string
	truth []string
	make  func(start int64, rng *rand.Rand) scenario.Fault
}

func catalog() []faultCase {
	return []faultCase{
		{"memleak@db", []string{"db"}, func(start int64, rng *rand.Rand) scenario.Fault {
			return scenario.NewMemLeak(start, 28+4*rng.Float64(), "db")
		}},
		{"cpuhog@db", []string{"db"}, func(start int64, rng *rand.Rand) scenario.Fault {
			return scenario.NewCPUHog(start, 1.6+0.2*rng.Float64(), "db")
		}},
		{"nethog@web", []string{"web"}, func(start int64, rng *rand.Rand) scenario.Fault {
			return scenario.NewNetHog(start, 98.4+0.9*rng.Float64(), "web")
		}},
		{"offloadbug", []string{"app1", "app2"}, func(start int64, rng *rand.Rand) scenario.Fault {
			return scenario.NewOffloadBug(start, "app1", "app2", 0.06+0.01*rng.Float64())
		}},
		{"lbbug", []string{"app1", "app2"}, func(start int64, rng *rand.Rand) scenario.Fault {
			return scenario.NewLBBug(start, "web", map[string]float64{"app1": 0.97, "app2": 0.03}, 2.5)
		}},
	}
}

func main() {
	runs := flag.Int("runs", 5, "fault-injection runs per fault")
	flag.Parse()
	if err := run(*runs); err != nil {
		log.Fatal(err)
	}
}

func run(runs int) error {
	fmt.Printf("RUBiS fault localization campaign, %d runs per fault\n\n", runs)
	for _, fc := range catalog() {
		var tp, fp, fn, skipped int
		for seed := int64(1); seed <= int64(runs); seed++ {
			hit, miss, alarm, ok, err := trial(fc, seed)
			if err != nil {
				return err
			}
			if !ok {
				skipped++
				continue
			}
			tp += hit
			fn += miss
			fp += alarm
		}
		precision, recall := 0.0, 0.0
		if tp+fp > 0 {
			precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			recall = float64(tp) / float64(tp+fn)
		}
		fmt.Printf("%-12s precision=%.2f recall=%.2f (tp=%d fp=%d fn=%d, %d runs without violation)\n",
			fc.name, precision, recall, tp, fp, fn, skipped)
	}
	return nil
}

// trial runs one fault injection and scores FChain's diagnosis.
func trial(fc faultCase, seed int64) (tp, fn, fp int, ok bool, err error) {
	sys, err := scenario.RUBiS(seed)
	if err != nil {
		return 0, 0, 0, false, err
	}
	rng := rand.New(rand.NewSource(seed))
	inject := int64(1200 + rng.Intn(1200))
	if err := sys.Inject(fc.make(inject, rng)); err != nil {
		return 0, 0, 0, false, err
	}
	sys.RunUntil(inject + 1100)
	tv, found := sys.FirstViolation(inject, 8)
	if !found {
		return 0, 0, 0, false, nil
	}
	loc := fchain.NewLocalizer(fchain.DefaultConfig(), sys.Components())
	for _, comp := range sys.Components() {
		for _, kind := range fchain.Kinds() {
			series, err := sys.Series(comp, kind)
			if err != nil {
				return 0, 0, 0, false, err
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := loc.Observe(comp, series.TimeAt(i), kind, series.At(i)); err != nil {
					return 0, 0, 0, false, err
				}
			}
		}
	}
	deps := fchain.DiscoverDependencies(sys.DependencyTrace(600, seed), fchain.DiscoverConfig{})
	diag := loc.Localize(tv, deps)
	pinned := make(map[string]bool)
	for _, c := range diag.CulpritNames() {
		pinned[c] = true
	}
	truth := make(map[string]bool)
	for _, c := range fc.truth {
		truth[c] = true
	}
	for c := range pinned {
		if truth[c] {
			tp++
		} else {
			fp++
		}
	}
	for c := range truth {
		if !pinned[c] {
			fn++
		}
	}
	return tp, fn, fp, true, nil
}
