// Stream-processing diagnosis: localize a fault in the IBM System S
// benchmark, where black-box dependency discovery finds *nothing* (the
// continuous tuple traffic has no inter-packet gaps to delimit flows) and
// FChain must rely on abnormal-change propagation order alone — including
// the paper's Fig. 2 back-pressure path PE3 → PE6 → PE2 through the join.
//
//	go run ./examples/streams
package main

import (
	"fmt"
	"log"

	"fchain"
	"fchain/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := scenario.SystemS(2)
	if err != nil {
		return err
	}

	// A memory leak in PE3 — the Fig. 2 scenario. PE6 joins the PE3 and
	// PE2 streams, so starving its PE3 input back-pressures PE2.
	const inject = 1400
	if err := sys.Inject(scenario.NewMemLeak(inject, 30, "pe3")); err != nil {
		return err
	}
	sys.RunUntil(inject + 600)
	tv, found := sys.FirstViolation(inject, 8)
	if !found {
		return fmt.Errorf("no SLO violation")
	}
	fmt.Printf("per-tuple processing SLO violated at t=%d\n", tv)

	// Dependency discovery fails on streams: demonstrate it.
	deps := fchain.DiscoverDependencies(sys.DependencyTrace(300, 2), fchain.DiscoverConfig{})
	fmt.Printf("dependency discovery: %d edges (continuous tuple traffic defeats flow extraction)\n", deps.Edges())

	loc := fchain.NewLocalizer(fchain.DefaultConfig(), sys.Components())
	for _, comp := range sys.Components() {
		for _, kind := range fchain.Kinds() {
			series, err := sys.Series(comp, kind)
			if err != nil {
				return err
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := loc.Observe(comp, series.TimeAt(i), kind, series.At(i)); err != nil {
					return err
				}
			}
		}
	}
	diag := loc.Localize(tv, deps) // empty graph: propagation order only
	fmt.Println("diagnosis at detection time:", diag)

	// The full Fig. 2 propagation picture needs the cascade to complete;
	// re-analyze two minutes later with a wider window to watch the
	// anomaly travel PE3 -> PE6 -> PE2 (back-pressure through the join).
	sys.RunUntil(tv + 120)
	wide := fchain.Config{LookBack: 300}
	loc2 := fchain.NewLocalizer(wide, sys.Components())
	for _, comp := range sys.Components() {
		for _, kind := range fchain.Kinds() {
			series, err := sys.Series(comp, kind)
			if err != nil {
				return err
			}
			for i := 0; i < series.Len(); i++ {
				if err := loc2.Observe(comp, series.TimeAt(i), kind, series.At(i)); err != nil {
					return err
				}
			}
		}
	}
	later := loc2.Localize(tv+120, deps)
	fmt.Println("propagation chain two minutes in:")
	for _, r := range later.Chain {
		fmt.Printf("  %-4s @ t=%d\n", r.Component, r.Onset)
	}
	fmt.Println("final diagnosis:", later)
	return nil
}
