// Command fchain-sim runs a single fault-injection scenario on one of the
// simulated benchmark applications and prints FChain's diagnosis.
//
// Usage:
//
//	fchain-sim -app rubis -fault cpuhog -seed 7
//	fchain-sim -app systems -fault memleak -target pe3
//	fchain-sim -app hadoop -fault diskhog -validate
//
// Instead of a benchmark application, -mesh runs the scenario on a generated
// microservice mesh with a fault drawn from the template library:
//
//	fchain-sim -mesh "n=200,fanout=3,depth=5,seed=7" -fault gray-disk
//	fchain-sim -mesh "n=100,cycle=0.1" -fault workload-surge
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"encoding/json"

	"fchain"
	"fchain/internal/obs"
	"fchain/scenario"
)

func main() {
	var (
		app       = flag.String("app", "rubis", "benchmark application: rubis, systems, hadoop")
		mesh      = flag.String("mesh", "", `generated mesh parameters, e.g. "n=200,fanout=3,depth=5,seed=7" (overrides -app; -fault names a template)`)
		fault     = flag.String("fault", "", "fault: memleak, cpuhog, nethog, diskhog, bottleneck, lbbug, offloadbug (default cpuhog); with -mesh, a template name (default gray-disk)")
		target    = flag.String("target", "", "faulty component (default: the paper's usual target)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		inject    = flag.Int64("inject", 0, "fault injection time (seconds; default 1500, or 2000 with -mesh)")
		validate  = flag.Bool("validate", false, "run online pinpointing validation")
		saveDeps  = flag.String("save-deps", "", "write the discovered dependency graph to this file")
		emitCSV   = flag.String("emit-csv", "", "write the collected metric samples (component,time,metric,value) to this file — feedable to fchain-slave")
		parallel  = flag.Int("parallel", 0, "analysis workers (0 = all cores, 1 = serial; the diagnosis is identical either way)")
		traceOut  = flag.String("trace-out", "", "write the localization's full evidence trace (JSON span tree) to this file")
		streaming = flag.Bool("streaming", false, "maintain streaming selection state on every sample (localization output is bit-identical either way)")
	)
	flag.Parse()
	if *fault == "" {
		if *mesh != "" {
			*fault = "gray-disk"
		} else {
			*fault = "cpuhog"
		}
	}
	if *inject == 0 {
		if *mesh != "" {
			// Generated-mesh workloads carry an 1800 s diurnal cycle; the
			// localizer's context calibration must see one full period
			// before injection.
			*inject = 2000
		} else {
			*inject = 1500
		}
	}
	if err := run(*app, *mesh, *fault, *target, *seed, *inject, *validate, *saveDeps, *emitCSV, *parallel, *traceOut, *streaming); err != nil {
		fmt.Fprintln(os.Stderr, "fchain-sim:", err)
		os.Exit(1)
	}
}

// dumpCSV writes every recorded sample up to tv in the CSV form that
// cmd/fchain-slave consumes.
func dumpCSV(sys *scenario.System, tv int64, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, comp := range sys.Components() {
		for _, k := range fchain.Kinds() {
			s, err := sys.Series(comp, k)
			if err != nil {
				f.Close()
				return err
			}
			for i := 0; i < s.Len() && s.TimeAt(i) <= tv; i++ {
				fmt.Fprintf(w, "%s,%d,%s,%.6f\n", comp, s.TimeAt(i), k, s.At(i))
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildSystem(app string, seed int64) (*scenario.System, string, bool, error) {
	switch app {
	case "rubis":
		sys, err := scenario.RUBiS(seed)
		return sys, "db", true, err
	case "systems":
		sys, err := scenario.SystemS(seed)
		return sys, "pe3", false, err
	case "hadoop":
		sys, err := scenario.Hadoop(seed)
		return sys, "map1", true, err
	default:
		return nil, "", false, fmt.Errorf("unknown app %q", app)
	}
}

func buildFault(name, target string, inject int64, rng *rand.Rand) (scenario.Fault, error) {
	switch name {
	case "memleak":
		return scenario.NewMemLeak(inject, 28+4*rng.Float64(), target), nil
	case "cpuhog":
		return scenario.NewCPUHog(inject, 1.7+0.2*rng.Float64(), target), nil
	case "nethog":
		return scenario.NewNetHog(inject, 98.5, target), nil
	case "diskhog":
		return scenario.NewDiskHog(inject, 59.4, 300, target), nil
	case "bottleneck":
		return scenario.NewBottleneck(inject, 0.1, target), nil
	case "lbbug":
		return scenario.NewLBBug(inject, "web", map[string]float64{"app1": 0.97, "app2": 0.03}, 2.5), nil
	case "offloadbug":
		return scenario.NewOffloadBug(inject, "app1", "app2", 0.065), nil
	default:
		return nil, fmt.Errorf("unknown fault %q", name)
	}
}

func run(app, mesh, faultName, target string, seed, inject int64, validate bool, saveDeps, emitCSV string, parallel int, traceOut string, streaming bool) error {
	var (
		sys          *scenario.System
		fault        scenario.Fault
		discoverable = true
		depTraceSec  = 600
	)
	cfg := fchain.DefaultConfig()
	if mesh != "" {
		m, msys, err := scenario.Mesh(mesh, seed)
		if err != nil {
			return err
		}
		sys = msys
		fmt.Printf("generated mesh: %s\n", m)
		fault, err = scenario.MeshFault(faultName, inject, m, seed)
		if err != nil {
			return err
		}
		// The mesh monitoring profile: wider external-factor spread for
		// deep topologies, a relative-magnitude selection floor against
		// per-component false positives at scale, and the template's
		// declared look-back window.
		cfg.ExternalSpread = scenario.MeshExternalSpread
		cfg.MinRelMagnitude = scenario.MeshMinRelMagnitude
		if lb := scenario.MeshFaultLookBack(faultName); lb > 0 {
			cfg.LookBack = lb
		}
		// Discovery samples ~1 request journey per 1.3 s and wants ~10
		// inbound flows per component before trusting edges; meshes have
		// far more components than the paper apps.
		depTraceSec = 2400
		app = "mesh"
	} else {
		var defaultTarget string
		var err error
		sys, defaultTarget, discoverable, err = buildSystem(app, seed)
		if err != nil {
			return err
		}
		if target == "" {
			target = defaultTarget
		}
		rng := rand.New(rand.NewSource(seed))
		fault, err = buildFault(faultName, target, inject, rng)
		if err != nil {
			return err
		}
	}
	if err := sys.Inject(fault); err != nil {
		return err
	}
	fmt.Printf("injecting %s into %v at t=%d (app %s, seed %d)\n",
		fault.Name(), fault.Targets(), inject, app, seed)

	sys.RunUntil(inject + 1100)
	tv, found := sys.FirstViolation(inject, 8)
	if !found {
		return fmt.Errorf("no SLO violation within the horizon — try a different seed or fault")
	}
	fmt.Printf("SLO violation detected at t=%d (%.0fs after injection)\n", tv, float64(tv-inject))

	deps := fchain.DiscoverDependencies(sys.DependencyTrace(depTraceSec, seed), fchain.DiscoverConfig{})
	if discoverable {
		fmt.Printf("discovered dependencies: %s\n", deps)
	} else {
		fmt.Println("dependency discovery found nothing (continuous stream traffic); " +
			"falling back to propagation-order localization")
	}
	if saveDeps != "" {
		if err := deps.Save(saveDeps); err != nil {
			return err
		}
		fmt.Println("dependency graph written to", saveDeps)
	}
	if emitCSV != "" {
		if err := dumpCSV(sys, tv, emitCSV); err != nil {
			return err
		}
		fmt.Println("metric samples written to", emitCSV)
	}

	cfg.Parallelism = parallel
	cfg.Streaming = streaming
	loc := fchain.NewLocalizer(cfg, sys.Components())
	for _, comp := range sys.Components() {
		for _, k := range fchain.Kinds() {
			s, err := sys.Series(comp, k)
			if err != nil {
				return err
			}
			for i := 0; i < s.Len() && s.TimeAt(i) <= tv; i++ {
				if err := loc.Observe(comp, s.TimeAt(i), k, s.At(i)); err != nil {
					return err
				}
			}
		}
	}
	diag, stats, trace := loc.LocalizeTraced(tv, deps)
	fmt.Println("propagation chain:")
	for _, r := range diag.Chain {
		fmt.Printf("  %-10s onset=%d metrics=%v\n", r.Component, r.Onset, r.AbnormalMetrics())
	}
	fmt.Println("diagnosis:", diag)
	fmt.Println("analysis:", stats)
	fmt.Printf("trace: %d spans recorded\n", trace.SpanCount())
	if traceOut != "" {
		raw, err := json.MarshalIndent(trace, "", "  ")
		if err != nil {
			return err
		}
		if err := obs.WriteFileAtomic(traceOut, append(raw, '\n')); err != nil {
			return err
		}
		fmt.Println("evidence trace written to", traceOut)
	}

	if validate && len(diag.Culprits) > 0 {
		results, err := fchain.Validate(func() (fchain.Adjuster, error) {
			return sys.Clone(), nil
		}, diag, loc.Config())
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Printf("validation %-10s confirmed=%v (SLO metric %.3f when omitted)\n",
				r.Culprit.Component, r.Confirmed, r.Metric)
		}
		fmt.Println("after validation:", fchain.ApplyValidation(diag, results))
	}
	return nil
}
