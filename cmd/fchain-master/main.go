// Command fchain-master runs the FChain master daemon: it accepts slave
// registrations over TCP, probes them with heartbeats, and triggers fault
// localization on demand — either interactively from the console, or as a
// long-lived multi-tenant service consuming SLO-violation events.
//
// Usage:
//
//	fchain-master -listen 0.0.0.0:7070
//
// Commands are read from stdin, one per line:
//
//	slaves                      print registered slaves
//	health                      print per-slave liveness (healthy/degraded/dead)
//	localize <tv>               run fault localization for violation time tv
//	violate <tenant> <app> <tv> submit one SLO violation through the service
//	replay                      re-run journal replay (e.g. after slaves re-registered)
//	history                     print past localizations (tenant/app-tagged)
//	quit                        shut down
//
// Sharded placement: with -vnodes N the master owns component placement —
// slaves connect empty (fchain-slave -sharded), components are announced
// with the `register` console command, and a consistent-hash ring with N
// virtual nodes per slave assigns each component an owner. Membership
// changes trigger checkpoint-handoff rebalancing (bounded by
// -handoff-timeout/-handoff-retries, automatic unless -auto-rebalance=false);
// `rebalance` and `assignments` drive and inspect placement manually.
//
// Service mode: the master always runs the multi-tenant violation intake
// (violate frames over the listener, `violate` on the console). -tenants
// closes the namespace, -tenant-quota/-tenant-burst set per-tenant token
// buckets, -coalesce-window merges concurrent same-app violations into one
// localization, and -verdict-cache/-verdict-ttl bound the result cache.
// With -journal set, accepted violations and served verdicts are write-ahead
// journaled; -replay restores them on the next start (verdicts re-served
// byte-identically, accepted-but-unserved violations re-run). -journal-max-bytes
// and -journal-keep rotate the journal so it cannot grow without bound.
//
// SIGINT/SIGTERM shut the daemon down gracefully: the service stops
// admitting violations, in-flight localizations drain under -drain, the
// journal is flushed and closed, and the process exits 0.
//
// Observability: -debug-addr starts an HTTP introspection server
// (Prometheus /metrics, /healthz with per-slave liveness, /history,
// /trace/last, pprof), -journal appends machine-readable JSONL pipeline
// events, and -log-level tunes the structured key=value log on stderr.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fchain"
	"fchain/internal/obs"
)

// config bundles every flag so run stays callable without a parameter
// avalanche.
type config struct {
	listen    string
	timeout   time.Duration
	retries   int
	heartbeat time.Duration
	hbMisses  int
	quorum    float64
	inflight  int
	admitQ    int
	depsPath  string
	debugAddr string
	logLevel  string

	journalPath     string
	journalMaxBytes int64
	journalKeep     int

	tenants        string
	tenantQuota    float64
	tenantBurst    float64
	coalesceWindow int64
	verdictCache   int
	verdictTTL     time.Duration
	replay         bool
	drain          time.Duration

	vnodes         int
	handoffTimeout time.Duration
	handoffRetries int
	autoRebalance  bool
	standby        bool
	replMaxLag     time.Duration
	meshProfile    bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:7070", "listen address")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "overall per-localization deadline")
	flag.IntVar(&cfg.retries, "retries", 1, "extra analyze attempts per unanswered slave within the deadline")
	flag.DurationVar(&cfg.heartbeat, "heartbeat", 10*time.Second, "slave liveness probe interval (0 disables)")
	flag.IntVar(&cfg.hbMisses, "heartbeat-misses", 3, "consecutive missed heartbeats before a slave is evicted")
	flag.Float64Var(&cfg.quorum, "quorum", 0, "slave answer quorum as a fraction in (0,1]: diagnose once met, refuse below it (0 waits for all, best-effort)")
	flag.IntVar(&cfg.inflight, "max-inflight", 0, "max concurrent localizations (0 = unlimited)")
	flag.IntVar(&cfg.admitQ, "admit-queue", 0, "localize admission queue depth beyond -max-inflight (LIFO; overflow sheds the oldest waiter)")
	flag.StringVar(&cfg.depsPath, "deps", "", "dependency graph file from offline discovery (optional)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "HTTP debug server address serving /metrics, /healthz, /history, /trace/last and pprof (empty disables)")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "stderr log level: debug, info, warn, error")
	flag.StringVar(&cfg.journalPath, "journal", "", "append machine-readable JSONL pipeline events to this file (empty disables; required for -replay durability)")
	flag.Int64Var(&cfg.journalMaxBytes, "journal-max-bytes", 0, "rotate the journal once it exceeds this many bytes (0 = never)")
	flag.IntVar(&cfg.journalKeep, "journal-keep", 3, "rotated journal generations retained")
	flag.StringVar(&cfg.tenants, "tenants", "", "comma-separated tenant namespace for service mode (empty admits any tenant name)")
	flag.Float64Var(&cfg.tenantQuota, "tenant-quota", 0, "per-tenant violation quota, violations/minute token bucket (0 = unlimited)")
	flag.Float64Var(&cfg.tenantBurst, "tenant-burst", 0, "per-tenant violation burst capacity (0 = same as -tenant-quota)")
	flag.Int64Var(&cfg.coalesceWindow, "coalesce-window", 30, "tv window (seconds) within which concurrent same-app violations share one localization")
	flag.IntVar(&cfg.verdictCache, "verdict-cache", 256, "verdict LRU cache entries (negative disables caching)")
	flag.DurationVar(&cfg.verdictTTL, "verdict-ttl", 5*time.Minute, "how long a cached verdict stays servable")
	flag.BoolVar(&cfg.replay, "replay", false, "replay the journal at startup: restore the verdict cache and history, re-run accepted-but-unserved violations")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful-shutdown drain deadline for in-flight localizations")
	flag.IntVar(&cfg.vnodes, "vnodes", 0, "enable master-driven component placement over a consistent-hash ring with this many virtual nodes per slave (0 disables sharding; slaves then bring their own component lists)")
	flag.DurationVar(&cfg.handoffTimeout, "handoff-timeout", 5*time.Second, "per-component checkpoint handoff deadline during a rebalance; an expired handoff cold-starts on the new owner")
	flag.IntVar(&cfg.handoffRetries, "handoff-retries", 1, "extra attempts a failed checkpoint handoff gets before the new owner cold-starts")
	flag.BoolVar(&cfg.meshProfile, "mesh-profile", false, "apply the generated-mesh monitoring profile (wider external-factor spread, relative-magnitude selection floor) instead of the paper defaults")
	flag.BoolVar(&cfg.autoRebalance, "auto-rebalance", true, "with -vnodes: rebalance automatically on slave join/leave/eviction (off, placement changes only on the rebalance command)")
	flag.BoolVar(&cfg.standby, "standby", false, "with -vnodes: assign every component a warm standby slave and promote it in place when the primary dies (pair with the slaves' -repl-interval)")
	flag.DurationVar(&cfg.replMaxLag, "repl-max-lag", 0, "with -standby: maximum standby replication lag still promotable warm; a staler standby cold-starts instead (0 = no bound)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "fchain-master:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	sink, err := obs.NewSinkRotating(os.Stderr, cfg.logLevel, cfg.journalPath, cfg.journalMaxBytes, cfg.journalKeep)
	if err != nil {
		return err
	}
	defer sink.EventJournal().Close()
	log := sink.Logger()

	var deps *fchain.DependencyGraph
	if cfg.depsPath != "" {
		g, err := fchain.LoadDependencies(cfg.depsPath)
		if err != nil {
			return err
		}
		deps = g
		fmt.Printf("loaded dependency graph: %s\n", deps)
	}
	masterOpts := []fchain.MasterOption{
		fchain.WithHeartbeat(cfg.heartbeat, cfg.hbMisses),
		fchain.WithLocalizeRetries(cfg.retries),
		fchain.WithLocalizeTimeout(cfg.timeout),
		fchain.WithQuorum(cfg.quorum),
		fchain.WithAdmission(cfg.inflight, cfg.admitQ),
		fchain.WithMasterObs(sink),
	}
	if cfg.vnodes > 0 {
		masterOpts = append(masterOpts,
			fchain.WithSharding(cfg.vnodes),
			fchain.WithHandoffTimeout(cfg.handoffTimeout),
			fchain.WithHandoffRetries(cfg.handoffRetries),
			fchain.WithAutoRebalance(cfg.autoRebalance))
		if cfg.standby {
			masterOpts = append(masterOpts,
				fchain.WithStandby(true),
				fchain.WithReplMaxLag(cfg.replMaxLag))
		}
	}
	coreCfg := fchain.DefaultConfig()
	if cfg.meshProfile {
		coreCfg = fchain.MeshConfig()
	}
	master := fchain.NewMaster(coreCfg, deps, masterOpts...)
	var tenants []string
	if cfg.tenants != "" {
		for _, t := range strings.Split(cfg.tenants, ",") {
			if t = strings.TrimSpace(t); t != "" {
				tenants = append(tenants, t)
			}
		}
	}
	svc := fchain.NewService(master, fchain.ServiceConfig{
		Tenants:        tenants,
		QuotaPerMinute: cfg.tenantQuota,
		QuotaBurst:     cfg.tenantBurst,
		CoalesceWindow: cfg.coalesceWindow,
		CacheSize:      cfg.verdictCache,
		CacheTTL:       cfg.verdictTTL,
	})
	if err := master.Start(cfg.listen); err != nil {
		return err
	}
	defer master.Close()
	if cfg.replay {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
		stats, err := svc.Replay(ctx)
		cancel()
		if err != nil {
			log.Warn("journal replay failed", "err", err)
		} else {
			fmt.Printf("replayed journal: %d events, %d verdicts cached, %d history records, %d re-run (%d failed)\n",
				stats.Events, stats.CacheRestored, stats.HistoryRestored, stats.Rerun, stats.RerunFailed)
		}
	}
	if cfg.debugAddr != "" {
		dbg, err := obs.StartDebug(cfg.debugAddr, obs.DebugConfig{
			Registry: sink.Registry(),
			Traces:   sink.TraceRing(),
			Health:   func() any { return master.Health() },
			History:  func() any { return master.History() },
		})
		if err != nil {
			return err
		}
		defer dbg.Close()
		log.Info("debug server listening", "addr", dbg.Addr())
	}
	fmt.Printf("fchain-master listening on %s\n", master.Addr())
	fmt.Println("commands: slaves | health | localize <tv> | violate <tenant> <app> <tv> | replay | history | register <comp,...> | rebalance | assignments | quit")

	// Console lines and termination signals merge into one loop so
	// SIGINT/SIGTERM can interrupt a blocked stdin read and drain cleanly.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	lines := make(chan string)
	scanErr := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			lines <- sc.Text()
		}
		scanErr <- sc.Err()
	}()

	shutdown := func(reason string) {
		log.Info("shutting down", "reason", reason, "drain", cfg.drain.String())
		if left := svc.Drain(cfg.drain); left > 0 {
			log.Warn("drain deadline expired", "inflight", left)
		}
		fmt.Println("fchain-master: graceful shutdown complete")
	}
	for {
		var text string
		select {
		case sig := <-sigCh:
			shutdown(sig.String())
			return nil
		case err := <-scanErr:
			shutdown("stdin closed")
			return err
		case text = <-lines:
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "slaves":
			for _, s := range master.Slaves() {
				fmt.Println(" ", s)
			}
			fmt.Printf("  (%d components total)\n", len(master.Components()))
		case "health":
			health := master.Health()
			for _, name := range sortedKeys(health) {
				h := health[name]
				extra := ""
				if h.Misses > 0 {
					extra += fmt.Sprintf(" misses=%d", h.Misses)
				}
				if h.BreakerOpen {
					extra += " breaker=open"
				}
				fmt.Printf("  %s %s%s\n", name, h.State, extra)
			}
		case "localize":
			if len(fields) != 2 {
				fmt.Println("usage: localize <tv>")
				continue
			}
			tv, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				fmt.Println("bad tv:", err)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
			res, err := master.Localize(ctx, tv)
			cancel()
			if err != nil {
				fmt.Println("localize failed:", err)
				continue
			}
			printResult(res)
		case "violate":
			if len(fields) != 4 {
				fmt.Println("usage: violate <tenant> <app> <tv>")
				continue
			}
			tv, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				fmt.Println("bad tv:", err)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
			v, err := svc.Submit(ctx, fields[1], fields[2], tv)
			cancel()
			if err != nil {
				fmt.Println("violate failed:", err)
				continue
			}
			fmt.Println(" ", v)
		case "replay":
			ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
			stats, err := svc.Replay(ctx)
			cancel()
			if err != nil {
				fmt.Println("replay failed:", err)
				continue
			}
			fmt.Printf("  replayed %d events: %d verdicts cached, %d history records, %d re-run (%d failed)\n",
				stats.Events, stats.CacheRestored, stats.HistoryRestored, stats.Rerun, stats.RerunFailed)
		case "history":
			for _, rec := range master.History() {
				tag := ""
				if rec.Tenant != "" || rec.App != "" {
					tag = fmt.Sprintf(" [%s/%s]", rec.Tenant, rec.App)
				}
				mark := ""
				if rec.Degraded {
					mark = " (degraded)"
				}
				fmt.Printf("  tv=%d%s %s%s\n", rec.TV, tag, rec.Diagnosis, mark)
			}
		case "register":
			if cfg.vnodes <= 0 {
				fmt.Println("register requires sharded placement (-vnodes > 0)")
				continue
			}
			if len(fields) != 2 {
				fmt.Println("usage: register <comp[,comp...]>")
				continue
			}
			var comps []string
			for _, c := range strings.Split(fields[1], ",") {
				if c = strings.TrimSpace(c); c != "" {
					comps = append(comps, c)
				}
			}
			master.RegisterComponents(comps...)
			fmt.Printf("  registered %d components (%d total); run `rebalance` to place them\n",
				len(comps), master.RegisteredComponents())
		case "rebalance":
			if cfg.vnodes <= 0 {
				fmt.Println("rebalance requires sharded placement (-vnodes > 0)")
				continue
			}
			moved, err := master.Rebalance()
			if err != nil {
				fmt.Println("rebalance failed:", err)
				continue
			}
			fmt.Printf("  rebalanced: %d components moved\n", moved)
		case "assignments":
			if cfg.vnodes <= 0 {
				fmt.Println("assignments requires sharded placement (-vnodes > 0)")
				continue
			}
			asn := master.Assignments()
			for _, owner := range sortedKeys(asn) {
				fmt.Printf("  %s: %d components %v\n", owner, len(asn[owner]), asn[owner])
			}
		case "quit", "exit":
			shutdown("quit command")
			return nil
		default:
			fmt.Printf("unknown command %q\n", fields[0])
		}
	}
}

// printResult renders one localization; map-keyed sections are printed in
// sorted order so console output is reproducible run to run.
func printResult(res fchain.LocalizeResult) {
	fmt.Println(res)
	for _, comp := range sortedKeys(res.Quality) {
		if q := res.Quality[comp]; q.Confidence() < 1 {
			fmt.Printf("  %s: %s\n", comp, q)
		}
	}
	if mq := res.MinQuality(); mq < 1 {
		fmt.Printf("  min quality confidence: %.3f\n", mq)
	}
	for _, slave := range sortedKeys(res.ClockOffsets) {
		fmt.Printf("  clock offset %s: %+ds\n", slave, res.ClockOffsets[slave])
	}
	if len(res.MissingComponents) > 0 {
		fmt.Printf("  missing components: %s\n", strings.Join(res.MissingComponents, ", "))
	}
	if res.Truncated {
		fmt.Println("  truncated: deadline budget cut some component analyses short")
	}
	for _, comp := range sortedKeys(res.Quarantined) {
		fmt.Printf("  quarantined streams %s: %s\n", comp, strings.Join(res.Quarantined[comp], ", "))
	}
	if res.Stats.Tasks > 0 {
		fmt.Printf("  analysis: %s\n", res.Stats)
	}
	if res.Trace != nil {
		fmt.Printf("  trace: %d spans recorded (see /trace/last with -debug-addr)\n", res.Trace.SpanCount())
	}
	for _, e := range res.Errors {
		fmt.Println("  slave error:", e)
	}
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
