// Command fchain-master runs the FChain master daemon: it accepts slave
// registrations over TCP, probes them with heartbeats, and triggers fault
// localization on demand.
//
// Usage:
//
//	fchain-master -listen 0.0.0.0:7070
//
// Commands are read from stdin, one per line:
//
//	slaves            print registered slaves
//	health            print per-slave liveness (healthy/degraded/dead)
//	localize <tv>     run fault localization for violation time tv
//	history           print past localizations
//	quit              shut down
//
// Observability: -debug-addr starts an HTTP introspection server
// (Prometheus /metrics, /healthz with per-slave liveness, /trace/last,
// pprof), -journal appends machine-readable JSONL pipeline events, and
// -log-level tunes the structured key=value log on stderr.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"fchain"
	"fchain/internal/obs"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7070", "listen address")
		timeout   = flag.Duration("timeout", 30*time.Second, "overall per-localization deadline")
		retries   = flag.Int("retries", 1, "extra analyze attempts per unanswered slave within the deadline")
		heartbeat = flag.Duration("heartbeat", 10*time.Second, "slave liveness probe interval (0 disables)")
		hbMisses  = flag.Int("heartbeat-misses", 3, "consecutive missed heartbeats before a slave is evicted")
		quorum    = flag.Float64("quorum", 0, "slave answer quorum as a fraction in (0,1]: diagnose once met, refuse below it (0 waits for all, best-effort)")
		inflight  = flag.Int("max-inflight", 0, "max concurrent localizations (0 = unlimited)")
		admitQ    = flag.Int("admit-queue", 0, "localize admission queue depth beyond -max-inflight (LIFO; overflow sheds the oldest waiter)")
		deps      = flag.String("deps", "", "dependency graph file from offline discovery (optional)")
		debugAddr = flag.String("debug-addr", "", "HTTP debug server address serving /metrics, /healthz, /trace/last and pprof (empty disables)")
		journal   = flag.String("journal", "", "append machine-readable JSONL pipeline events to this file (empty disables)")
		logLevel  = flag.String("log-level", "info", "stderr log level: debug, info, warn, error")
	)
	flag.Parse()
	if err := run(*listen, *timeout, *retries, *heartbeat, *hbMisses, *quorum, *inflight, *admitQ, *deps, *debugAddr, *journal, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "fchain-master:", err)
		os.Exit(1)
	}
}

func run(listen string, timeout time.Duration, retries int, heartbeat time.Duration, hbMisses int, quorum float64, inflight, admitQ int, depsPath, debugAddr, journalPath, logLevel string) error {
	sink, err := obs.NewSink(os.Stderr, logLevel, journalPath)
	if err != nil {
		return err
	}
	defer sink.EventJournal().Close()
	log := sink.Logger()

	var deps *fchain.DependencyGraph
	if depsPath != "" {
		g, err := fchain.LoadDependencies(depsPath)
		if err != nil {
			return err
		}
		deps = g
		fmt.Printf("loaded dependency graph: %s\n", deps)
	}
	master := fchain.NewMaster(fchain.DefaultConfig(), deps,
		fchain.WithHeartbeat(heartbeat, hbMisses),
		fchain.WithLocalizeRetries(retries),
		fchain.WithLocalizeTimeout(timeout),
		fchain.WithQuorum(quorum),
		fchain.WithAdmission(inflight, admitQ),
		fchain.WithMasterObs(sink))
	if err := master.Start(listen); err != nil {
		return err
	}
	defer master.Close()
	if debugAddr != "" {
		dbg, err := obs.StartDebug(debugAddr, obs.DebugConfig{
			Registry: sink.Registry(),
			Traces:   sink.TraceRing(),
			Health:   func() any { return master.Health() },
		})
		if err != nil {
			return err
		}
		defer dbg.Close()
		log.Info("debug server listening", "addr", dbg.Addr())
	}
	fmt.Printf("fchain-master listening on %s\n", master.Addr())
	fmt.Println("commands: slaves | health | localize <tv> | history | quit")

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "slaves":
			for _, s := range master.Slaves() {
				fmt.Println(" ", s)
			}
			fmt.Printf("  (%d components total)\n", len(master.Components()))
		case "health":
			health := master.Health()
			for _, name := range sortedKeys(health) {
				h := health[name]
				extra := ""
				if h.Misses > 0 {
					extra += fmt.Sprintf(" misses=%d", h.Misses)
				}
				if h.BreakerOpen {
					extra += " breaker=open"
				}
				fmt.Printf("  %s %s%s\n", name, h.State, extra)
			}
		case "localize":
			if len(fields) != 2 {
				fmt.Println("usage: localize <tv>")
				continue
			}
			tv, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				fmt.Println("bad tv:", err)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			res, err := master.Localize(ctx, tv)
			cancel()
			if err != nil {
				fmt.Println("localize failed:", err)
				continue
			}
			printResult(res)
		case "history":
			for _, rec := range master.History() {
				mark := ""
				if rec.Degraded {
					mark = " (degraded)"
				}
				fmt.Printf("  tv=%d %s%s\n", rec.TV, rec.Diagnosis, mark)
			}
		case "quit", "exit":
			return nil
		default:
			fmt.Printf("unknown command %q\n", fields[0])
		}
	}
	return sc.Err()
}

// printResult renders one localization; map-keyed sections are printed in
// sorted order so console output is reproducible run to run.
func printResult(res fchain.LocalizeResult) {
	fmt.Println(res)
	for _, comp := range sortedKeys(res.Quality) {
		if q := res.Quality[comp]; q.Confidence() < 1 {
			fmt.Printf("  %s: %s\n", comp, q)
		}
	}
	if mq := res.MinQuality(); mq < 1 {
		fmt.Printf("  min quality confidence: %.3f\n", mq)
	}
	for _, slave := range sortedKeys(res.ClockOffsets) {
		fmt.Printf("  clock offset %s: %+ds\n", slave, res.ClockOffsets[slave])
	}
	if len(res.MissingComponents) > 0 {
		fmt.Printf("  missing components: %s\n", strings.Join(res.MissingComponents, ", "))
	}
	if res.Truncated {
		fmt.Println("  truncated: deadline budget cut some component analyses short")
	}
	for _, comp := range sortedKeys(res.Quarantined) {
		fmt.Printf("  quarantined streams %s: %s\n", comp, strings.Join(res.Quarantined[comp], ", "))
	}
	if res.Stats.Tasks > 0 {
		fmt.Printf("  analysis: %s\n", res.Stats)
	}
	if res.Trace != nil {
		fmt.Printf("  trace: %d spans recorded (see /trace/last with -debug-addr)\n", res.Trace.SpanCount())
	}
	for _, e := range res.Errors {
		fmt.Println("  slave error:", e)
	}
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
