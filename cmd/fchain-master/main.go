// Command fchain-master runs the FChain master daemon: it accepts slave
// registrations over TCP and triggers fault localization on demand.
//
// Usage:
//
//	fchain-master -listen 0.0.0.0:7070
//
// Commands are read from stdin, one per line:
//
//	slaves            print registered slaves
//	localize <tv>     run fault localization for violation time tv
//	quit              shut down
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fchain"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7070", "listen address")
		timeout = flag.Duration("timeout", 30*time.Second, "per-localization slave timeout")
		deps    = flag.String("deps", "", "dependency graph file from offline discovery (optional)")
	)
	flag.Parse()
	if err := run(*listen, *timeout, *deps); err != nil {
		fmt.Fprintln(os.Stderr, "fchain-master:", err)
		os.Exit(1)
	}
}

func run(listen string, timeout time.Duration, depsPath string) error {
	var deps *fchain.DependencyGraph
	if depsPath != "" {
		g, err := fchain.LoadDependencies(depsPath)
		if err != nil {
			return err
		}
		deps = g
		fmt.Printf("loaded dependency graph: %s\n", deps)
	}
	master := fchain.NewMaster(fchain.DefaultConfig(), deps)
	if err := master.Start(listen); err != nil {
		return err
	}
	defer master.Close()
	fmt.Printf("fchain-master listening on %s\n", master.Addr())
	fmt.Println("commands: slaves | localize <tv> | history | quit")

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "slaves":
			for _, s := range master.Slaves() {
				fmt.Println(" ", s)
			}
			fmt.Printf("  (%d components total)\n", len(master.Components()))
		case "localize":
			if len(fields) != 2 {
				fmt.Println("usage: localize <tv>")
				continue
			}
			tv, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				fmt.Println("bad tv:", err)
				continue
			}
			diag, err := master.Localize(tv, timeout)
			if err != nil {
				fmt.Println("localize failed:", err)
				continue
			}
			fmt.Println(diag)
		case "history":
			for _, rec := range master.History() {
				fmt.Printf("  tv=%d %s\n", rec.TV, rec.Diagnosis)
			}
		case "quit", "exit":
			return nil
		default:
			fmt.Printf("unknown command %q\n", fields[0])
		}
	}
	return sc.Err()
}
