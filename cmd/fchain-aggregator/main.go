// Command fchain-aggregator runs the optional middle tier of the FChain
// master/slave topology: it registers with the master as the upstream of a
// slave subtree, fans the master's analyze requests out to the slaves
// connected to it, and merges their reports into one reply — cutting the
// master's fan-out from every slave to one connection per subtree.
//
// Slaves join the subtree by running with -via NAME -aggregator ADDR, where
// NAME is this daemon's -name and ADDR its -listen address. An aggregator is
// an optimization, never a dependency: if it dies mid-localization the
// master re-asks its subtree over the slaves' direct connections.
//
// Usage:
//
//	fchain-aggregator -name agg-a -listen 0.0.0.0:7071 -master 10.0.0.1:7070
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fchain"
	"fchain/internal/obs"
)

func main() {
	var (
		name       = flag.String("name", "", "aggregator name; slaves reference it with -via (default: hostname)")
		listen     = flag.String("listen", "127.0.0.1:7071", "listen address for subtree slaves")
		master     = flag.String("master", "127.0.0.1:7070", "master address")
		quorum     = flag.Float64("subtree-quorum", 0, "subtree answer quorum as a fraction in (0,1]: answer upstream once met, charging stragglers as errors (0 waits for every requested slave)")
		backoff    = flag.Duration("backoff", 500*time.Millisecond, "initial reconnect backoff after a dropped master connection")
		backoffMax = flag.Duration("backoff-max", 15*time.Second, "reconnect backoff cap")
		debugAddr  = flag.String("debug-addr", "", "HTTP debug server address serving /metrics, /healthz and pprof (empty disables)")
		logLevel   = flag.String("log-level", "info", "stderr log level: debug, info, warn, error")
	)
	flag.Parse()
	if err := run(*name, *listen, *master, *quorum, *backoff, *backoffMax, *debugAddr, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "fchain-aggregator:", err)
		os.Exit(1)
	}
}

func run(name, listen, master string, quorum float64, backoff, backoffMax time.Duration, debugAddr, logLevel string) error {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			return fmt.Errorf("no -name and no hostname: %w", err)
		}
		name = host
	}
	sink, err := obs.NewSink(os.Stderr, logLevel, "")
	if err != nil {
		return err
	}
	log := sink.Logger()

	agg := fchain.NewAggregator(name,
		fchain.WithSubtreeQuorum(quorum),
		fchain.WithAggregatorBackoff(backoff, backoffMax),
		fchain.WithAggregatorObs(sink))
	if err := agg.Start(listen); err != nil {
		return err
	}
	defer agg.Close()
	if err := agg.Connect(master); err != nil {
		return err
	}
	if debugAddr != "" {
		dbg, err := obs.StartDebug(debugAddr, obs.DebugConfig{Registry: sink.Registry()})
		if err != nil {
			return err
		}
		defer dbg.Close()
		log.Info("debug server listening", "addr", dbg.Addr())
	}
	fmt.Printf("fchain-aggregator %s listening on %s, registered with %s\n", name, agg.Addr(), master)
	fmt.Printf("point subtree slaves at it with: fchain-slave -via %s -aggregator %s ...\n", name, agg.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	sig := <-sigCh
	log.Info("shutting down", "reason", sig.String())
	fmt.Println("fchain-aggregator: graceful shutdown complete")
	return nil
}
