// Command fchain-slave runs the FChain slave daemon for one host: it feeds
// metric samples into the per-component online models and answers the
// master's analyze requests.
//
// Samples are read from stdin as CSV lines:
//
//	component,time,metric,value
//	db,1041,cpu,37.2
//
// where metric is one of cpu, memory, net_in, net_out, disk_read,
// disk_write. A production deployment would replace the stdin feed with a
// libvirt/libxenstat collector, which is exactly the boundary the paper's
// slave daemon sits at.
//
// The feed goes through the sanitizing ingest path: out-of-order samples
// are reordered within -reorder-window seconds, duplicates and NaN/Inf
// values are dropped, short gaps are interpolated, and every repair is
// counted against the component's data quality, which the master surfaces
// with each diagnosis. With -checkpoint-dir set, the daemon periodically
// checkpoints its learned models (and ring tails) and restores them on the
// next start, so a crash costs only the samples since the last checkpoint.
//
// Usage:
//
//	some-collector | fchain-slave -name host1 -components web,app1 -master 10.0.0.1:7070
//
// Topology: with -sharded the slave starts empty and the master (running
// with -vnodes) assigns it components over the consistent-hash ring, moving
// model state along on rebalances. With -via NAME -aggregator ADDR the slave
// reports through an aggregator tier: it registers the aggregator's name
// with the master and additionally connects to the aggregator, which fans
// the master's analyze requests out over that second connection.
//
// Observability: -debug-addr starts an HTTP introspection server
// (Prometheus /metrics with ingest/analyze counters, /healthz, the most
// recent analysis traces, pprof), -journal appends JSONL events (analyze
// requests, connection state changes), and -log-level tunes the structured
// key=value log on stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fchain"
	"fchain/internal/obs"
)

func main() {
	var (
		name        = flag.String("name", "", "slave name (default: hostname)")
		components  = flag.String("components", "", "comma-separated component names monitored by this host")
		master      = flag.String("master", "127.0.0.1:7070", "master address")
		skew        = flag.Int64("skew", 0, "simulated clock skew in seconds (testing)")
		backoff     = flag.Duration("backoff", 500*time.Millisecond, "initial reconnect backoff after a dropped master connection")
		backoffMax  = flag.Duration("backoff-max", 15*time.Second, "reconnect backoff cap")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for crash-safe model checkpoints (empty disables)")
		ckptEvery   = flag.Duration("checkpoint-interval", 30*time.Second, "periodic checkpoint interval")
		reorder     = flag.Int("reorder-window", 5, "seconds a sample may arrive out of order before it is dropped (-1 disables reordering)")
		parallel    = flag.Int("parallel", 0, "analysis workers per analyze request (0 = all cores, 1 = serial)")
		inflight    = flag.Int("max-inflight", 0, "max concurrent analyze requests (0 = unlimited)")
		admitQ      = flag.Int("admit-queue", 0, "analyze admission queue depth beyond -max-inflight (LIFO; overflow sheds the oldest waiter)")
		quarCool    = flag.Duration("quarantine-cooldown", 30*time.Second, "how long a panicked metric stream stays quarantined before one probe re-admission")
		debugAddr   = flag.String("debug-addr", "", "HTTP debug server address serving /metrics, /healthz, /trace/last and pprof (empty disables)")
		journal     = flag.String("journal", "", "append machine-readable JSONL events to this file (empty disables)")
		logLevel    = flag.String("log-level", "info", "stderr log level: debug, info, warn, error")
		sharded     = flag.Bool("sharded", false, "start with no components of your own: the master assigns them over its consistent-hash ring (requires a master started with -vnodes)")
		via         = flag.String("via", "", "aggregator name this slave reports through (tree topology)")
		aggAddr     = flag.String("aggregator", "", "aggregator address to also connect to (required with -via)")
		streaming   = flag.Bool("streaming", false, "maintain streaming selection state on every sample so analyze answers in ~O(diagnose); falls back to the batch kernel (bit-identically) whenever the state is cold")
		replEvery   = flag.Duration("repl-interval", 0, "ship owned components' state deltas to their warm standbys every interval (0 disables; requires a master started with -standby)")
		meshProfile = flag.Bool("mesh-profile", false, "apply the generated-mesh monitoring profile (wider external-factor spread, relative-magnitude selection floor) instead of the paper defaults")
	)
	flag.Parse()
	if err := run(*name, *components, *master, *skew, *backoff, *backoffMax, *ckptDir, *ckptEvery, *reorder, *parallel, *inflight, *admitQ, *quarCool, *debugAddr, *journal, *logLevel, *sharded, *via, *aggAddr, *streaming, *meshProfile, *replEvery); err != nil {
		fmt.Fprintln(os.Stderr, "fchain-slave:", err)
		os.Exit(1)
	}
}

func run(name, components, master string, skew int64, backoff, backoffMax time.Duration, ckptDir string, ckptEvery time.Duration, reorder, parallel, inflight, admitQ int, quarCool time.Duration, debugAddr, journalPath, logLevel string, sharded bool, via, aggAddr string, streaming, meshProfile bool, replEvery time.Duration) error {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			return fmt.Errorf("no -name and no hostname: %w", err)
		}
		name = host
	}
	var comps []string
	if components != "" {
		comps = strings.Split(components, ",")
	}
	if len(comps) == 0 && !sharded {
		return fmt.Errorf("-components is required (or pass -sharded to let the master assign them)")
	}
	if len(comps) > 0 && sharded {
		return fmt.Errorf("-sharded and -components are mutually exclusive: the master owns placement")
	}
	if (via == "") != (aggAddr == "") {
		return fmt.Errorf("-via and -aggregator must be set together")
	}
	sink, err := obs.NewSink(os.Stderr, logLevel, journalPath)
	if err != nil {
		return err
	}
	defer sink.EventJournal().Close()
	log := sink.Logger()
	// Collection is local, so master outages only cost their own duration;
	// the sink's logger records every link-state transition.
	opts := []fchain.SlaveOption{
		fchain.WithBackoff(backoff, backoffMax),
		fchain.WithSlaveObs(sink),
	}
	if skew != 0 {
		opts = append(opts, fchain.WithClockSkew(skew))
	}
	if ckptDir != "" {
		opts = append(opts,
			fchain.WithCheckpointDir(ckptDir),
			fchain.WithCheckpointInterval(ckptEvery))
	}
	if inflight > 0 {
		opts = append(opts, fchain.WithSlaveAdmission(inflight, admitQ))
	}
	if via != "" {
		opts = append(opts, fchain.WithVia(via))
	}
	if replEvery > 0 {
		opts = append(opts, fchain.WithReplication(replEvery))
	}
	cfg := fchain.DefaultConfig()
	if meshProfile {
		cfg = fchain.MeshConfig()
	}
	cfg.ReorderWindow = reorder
	cfg.Parallelism = parallel
	cfg.QuarantineCooldown = quarCool
	cfg.Streaming = streaming
	slave := fchain.NewSlave(name, comps, cfg, opts...)
	if restored := slave.RestoredComponents(); len(restored) > 0 {
		fmt.Printf("restored checkpointed models for %v\n", restored)
	}
	if err := slave.Connect(master); err != nil {
		return err
	}
	defer slave.Close()
	if aggAddr != "" {
		// Second registration: the subtree connection the aggregator fans
		// analyze requests out over (the master routes via the -via name).
		if err := slave.Connect(aggAddr); err != nil {
			return err
		}
	}
	if debugAddr != "" {
		dbg, err := obs.StartDebug(debugAddr, obs.DebugConfig{
			Registry: sink.Registry(),
			Traces:   sink.TraceRing(),
		})
		if err != nil {
			return err
		}
		defer dbg.Close()
		log.Info("debug server listening", "addr", dbg.Addr())
	}
	fmt.Printf("fchain-slave %s registered with %s, monitoring %v\n", name, master, comps)

	// The sample feed runs on its own goroutine so SIGINT/SIGTERM can
	// interrupt a blocked stdin read: on a signal the daemon exits 0 through
	// the deferred slave.Close(), which writes a final model checkpoint —
	// a kill-and-restart costs only the samples since that checkpoint.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	feedDone := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(os.Stdin)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				continue
			}
			comp, t, kind, value, err := parseSample(text)
			if err != nil {
				log.Warn("bad sample line", "line", line, "err", err)
				continue
			}
			// Ingest, not Observe: real collectors hiccup, so the feed goes
			// through the sanitizer (reordering, dedup, gap fill) and dirt is
			// counted against the component's data quality instead of being a
			// per-line error.
			if err := slave.Ingest(comp, t, kind, value); err != nil {
				log.Warn("ingest rejected sample", "line", line, "err", err)
			}
		}
		feedDone <- sc.Err()
	}()
	for {
		select {
		case sig := <-sigCh:
			log.Info("shutting down", "reason", sig.String())
			fmt.Println("fchain-slave: graceful shutdown complete")
			return nil
		case err := <-feedDone:
			if err != nil {
				return err
			}
			// The sample feed ended, but the daemon keeps serving the
			// master's analyze requests until it is terminated.
			fmt.Println("sample feed drained; continuing to serve analyze requests")
			feedDone = nil // only announce once; keep waiting for a signal
		}
	}
}

// parseSample parses "component,time,metric,value".
func parseSample(text string) (string, int64, fchain.Kind, float64, error) {
	parts := strings.Split(text, ",")
	if len(parts) != 4 {
		return "", 0, 0, 0, fmt.Errorf("want component,time,metric,value, got %q", text)
	}
	t, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return "", 0, 0, 0, fmt.Errorf("bad time: %w", err)
	}
	kind, err := fchain.ParseKind(strings.TrimSpace(parts[2]))
	if err != nil {
		return "", 0, 0, 0, err
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
	if err != nil {
		return "", 0, 0, 0, fmt.Errorf("bad value: %w", err)
	}
	return strings.TrimSpace(parts[0]), t, kind, v, nil
}
