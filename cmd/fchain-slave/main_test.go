package main

import (
	"testing"

	"fchain"
)

func TestParseSample(t *testing.T) {
	comp, ts, kind, v, err := parseSample("db, 1041 , cpu , 37.2")
	if err != nil {
		t.Fatal(err)
	}
	if comp != "db" || ts != 1041 || kind != fchain.CPU || v != 37.2 {
		t.Errorf("parsed %q %d %v %v", comp, ts, kind, v)
	}
}

func TestParseSampleErrors(t *testing.T) {
	tests := []string{
		"db,1041,cpu",         // missing field
		"db,notanumber,cpu,1", // bad time
		"db,1,bogus,1",        // bad metric
		"db,1,cpu,notafloat",  // bad value
	}
	for _, give := range tests {
		if _, _, _, _, err := parseSample(give); err == nil {
			t.Errorf("parseSample(%q) should error", give)
		}
	}
}
