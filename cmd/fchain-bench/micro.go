package main

// The micro-benchmark harness behind -bench/-json/-check: a self-contained
// equivalent of `go test -bench '^BenchmarkModule'` that needs no testing
// binary, so the CI smoke job and operators get machine-readable numbers
// from the shipped command. Allocation counts come from the monotonic
// runtime counters (Mallocs/TotalAlloc), so a GC mid-run does not skew
// them.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"fchain"
	"fchain/internal/benchjson"
	"fchain/internal/core"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
	"fchain/scenario"
)

// benchMinTime is how long each timed measurement must run; calibration
// grows the iteration count until a run lasts at least this long.
const benchMinTime = 200 * time.Millisecond

// measure times fn(n) with increasing n until one run lasts benchMinTime.
func measure(name string, fn func(n int)) benchjson.Result {
	n := 1
	for {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		fn(n)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if elapsed >= benchMinTime {
			return benchjson.Result{
				Name:        name,
				Iterations:  n,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
				AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
				BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
			}
		}
		// Aim 20% past the target like testing.B, bounded to [2x, 100x].
		next := int(1.2 * float64(n) * float64(benchMinTime) / float64(elapsed+1))
		if next < 2*n {
			next = 2 * n
		}
		if next > 100*n {
			next = 100 * n
		}
		n = next
	}
}

// moduleBenchmarks mirrors the BenchmarkModule* group in bench_test.go:
// Table II's per-module overhead measurements on the real pipeline.
func moduleBenchmarks() []benchjson.Result {
	kinds := fchain.Kinds()
	var out []benchjson.Result

	out = append(out, measure("ModuleMonitoring", func(n int) {
		loc := fchain.NewLocalizer(fchain.DefaultConfig(), []string{"c"})
		for i := 0; i < n; i++ {
			t := int64(i)
			for _, k := range kinds {
				if err := loc.Observe("c", t, k, float64(50+i%17)); err != nil {
					panic(err)
				}
			}
		}
	}))

	out = append(out, measure("ModuleModeling1000", func(n int) {
		for i := 0; i < n; i++ {
			loc := fchain.NewLocalizer(fchain.DefaultConfig(), []string{"c"})
			for t := int64(0); t < 1000; t++ {
				for _, k := range kinds {
					if err := loc.Observe("c", t, k, float64(40+t%23)); err != nil {
						panic(err)
					}
				}
			}
		}
	}))

	// Selection setup happens once, outside the timed region: steady state
	// is a warm daemon reusing the report buffer and pooled arenas.
	selLoc := fchain.NewLocalizer(fchain.DefaultConfig(), []string{"c"})
	for t := int64(0); t < 2000; t++ {
		for _, k := range kinds {
			if err := selLoc.Observe("c", t, k, float64(40+t%23)+float64(t%7)); err != nil {
				panic(err)
			}
		}
	}
	var reports []fchain.ComponentReport
	out = append(out, measure("ModuleSelection", func(n int) {
		for i := 0; i < n; i++ {
			reports = selLoc.AnalyzeInto(reports, 1999)
		}
	}))

	// Streaming selection in its operating mode: every iteration observes
	// one fresh second and analyzes at the new stream head, so the memoized
	// verdict never answers and the measurement is the honest incremental
	// cost (observe amortization + warm-state assembly), not a cache hit.
	streamCfg := fchain.DefaultConfig()
	streamCfg.Streaming = true
	strLoc := fchain.NewLocalizer(streamCfg, []string{"c"})
	for t := int64(0); t < 2000; t++ {
		for _, k := range kinds {
			if err := strLoc.Observe("c", t, k, float64(40+t%23)+float64(t%7)); err != nil {
				panic(err)
			}
		}
	}
	ts := int64(2000)
	out = append(out, measure("ModuleSelectionStreaming", func(n int) {
		for i := 0; i < n; i++ {
			for _, k := range kinds {
				if err := strLoc.Observe("c", ts, k, float64(40+ts%23)+float64(ts%7)); err != nil {
					panic(err)
				}
			}
			reports = strLoc.AnalyzeInto(reports, ts)
			ts++
		}
	}))

	diagReports := make([]fchain.ComponentReport, 7)
	for i := range diagReports {
		diagReports[i] = fchain.ComponentReport{Component: string(rune('a' + i))}
	}
	diagReports[2].Changes = []fchain.AbnormalChange{{
		Component: "c", Metric: fchain.CPU, ChangeAt: 95, Onset: 90,
		PredErr: 10, Expected: 1, Magnitude: 12,
	}}
	diagReports[2].Onset = 90
	deps := fchain.NewDependencyGraph()
	deps.AddEdge("a", "b", 1)
	deps.AddEdge("b", "c", 1)
	cfg := fchain.DefaultConfig()
	out = append(out, measure("ModuleDiagnosis", func(n int) {
		for i := 0; i < n; i++ {
			_ = fchain.Diagnose(diagReports, len(diagReports), deps, cfg)
		}
	}))

	view := timeseries.FromFunc(0, 2000, func(i int) float64 { return float64(40 + i%23) })
	out = append(out, measure("ModuleWindowView", func(n int) {
		for i := 0; i < n; i++ {
			w := view.WindowView(1880, 2000)
			if len(w.ValuesView()) != 120 {
				panic("bad window")
			}
		}
	}))

	ring := timeseries.NewRing(1024)
	for t := int64(0); t < 4096; t++ {
		ring.Push(t, float64(t%97))
	}
	scratch := &timeseries.Series{}
	ring.SeriesInto(scratch) // warm the scratch capacity
	out = append(out, measure("ModuleSeriesInto", func(n int) {
		for i := 0; i < n; i++ {
			if ring.SeriesInto(scratch).Len() != 1024 {
				panic("bad materialization")
			}
		}
	}))

	return out
}

// scenarioBenchmarks times full figure regeneration serially and with four
// workers, asserting along the way that the two reports are byte-identical
// (the parallel engine's determinism contract). Each configuration runs
// once — these are seconds-scale campaigns.
func scenarioBenchmarks(runs int) ([]benchjson.Result, []string, error) {
	timeRun := func(name, id string, workers int) (benchjson.Result, string, error) {
		start := time.Now()
		out, err := scenario.RunWith(id, scenario.RunOptions{Runs: runs, Workers: workers, OmitTiming: true})
		if err != nil {
			return benchjson.Result{}, "", fmt.Errorf("%s: %w", id, err)
		}
		elapsed := time.Since(start)
		return benchjson.Result{Name: name, Iterations: 1, NsPerOp: float64(elapsed.Nanoseconds())}, out, nil
	}
	var results []benchjson.Result
	var notes []string
	for _, id := range []string{scenario.Figure6, scenario.Figure9} {
		serial, serialOut, err := timeRun("Scenario/"+id+"/serial", id, 1)
		if err != nil {
			return nil, nil, err
		}
		par, parOut, err := timeRun("Scenario/"+id+"/workers4", id, 4)
		if err != nil {
			return nil, nil, err
		}
		if serialOut != parOut {
			return nil, nil, fmt.Errorf("%s: parallel report differs from serial report", id)
		}
		results = append(results, serial, par)
		notes = append(notes, fmt.Sprintf("%s runs=%d: serial %.2fs, 4 workers %.2fs (%.2fx, on %d CPU(s)); outputs byte-identical",
			id, runs, serial.NsPerOp/1e9, par.NsPerOp/1e9, serial.NsPerOp/par.NsPerOp, runtime.NumCPU()))
	}
	return results, notes, nil
}

// runBench executes the benchmark suite and optionally writes the JSON
// report. withScenarios also times full figure regeneration (seconds per
// entry; skipped by -check, which needs to stay fast and noise-free).
func runBench(jsonPath string, benchRuns int, withScenarios bool) (*benchjson.Report, error) {
	report := &benchjson.Report{
		Date:       time.Now().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	report.Results = moduleBenchmarks()
	if withScenarios {
		scen, notes, err := scenarioBenchmarks(benchRuns)
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, scen...)
		report.Notes = append(report.Notes, notes...)
	}
	report.Sort()
	for _, r := range report.Results {
		fmt.Printf("%-28s %12.0f ns/op %10.0f B/op %8.1f allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	for _, n := range report.Notes {
		fmt.Println("#", n)
	}
	if jsonPath != "" {
		if err := benchjson.Write(jsonPath, report); err != nil {
			return nil, err
		}
		fmt.Println("benchmark report written to", jsonPath)
	}
	return report, nil
}

// runCheck re-measures the module benchmarks and fails if any regressed
// past the threshold against the committed baseline. Scenario wall times
// are informational (full campaigns on shared CI machines are too noisy to
// gate on) and are not compared.
func runCheck(baselinePath string, threshold float64) error {
	baseline, err := benchjson.Read(baselinePath)
	if err != nil {
		return err
	}
	modules := &benchjson.Report{}
	for _, r := range baseline.Results {
		if len(r.Name) >= 6 && r.Name[:6] == "Module" {
			modules.Results = append(modules.Results, r)
		}
	}
	if len(modules.Results) == 0 {
		return fmt.Errorf("baseline %s has no Module* benchmarks to check against", baselinePath)
	}
	current, err := runBench("", 0, false)
	if err != nil {
		return err
	}
	regressions, missing := benchjson.Compare(modules, current, threshold)
	for _, name := range missing {
		fmt.Printf("MISSING %s: benchmark in baseline but not measured\n", name)
	}
	for _, g := range regressions {
		fmt.Println("REGRESSION", g)
	}
	if len(regressions) > 0 || len(missing) > 0 {
		return fmt.Errorf("%d regression(s), %d missing benchmark(s) vs %s (threshold %.0f%%)",
			len(regressions), len(missing), baselinePath, threshold*100)
	}
	fmt.Printf("benchmarks within %.0f%% of %s\n", threshold*100, baselinePath)
	if err := streamingSpeedupCheck(current); err != nil {
		return err
	}
	if err := slaveAnswerCheck(); err != nil {
		return err
	}
	if err := idleOverheadCheck(idleOverheadLimit); err != nil {
		return err
	}
	return replOverheadCheck(replOverheadLimit)
}

// streamingSpeedupRatio is the floor on how much faster the streaming
// selection path must be than the pre-streaming batch burst.
const streamingSpeedupRatio = 10.0

// preStreamingBurstNS pins the batch tv-time burst as it was measured before
// the streaming engine and its precomputed threshold tables landed
// (BENCH_2026-08-05.json, ModuleSelection on this reference machine). The
// guard compares against this constant rather than the rolling baseline's
// ModuleSelection because the rolling batch number now benefits from the
// same threshold tables — comparing tables-vs-tables would misstate the
// claim, which is that the burst the streaming engine amortizes is gone.
const preStreamingBurstNS = 1.465e6

// streamingSpeedupCheck enforces the streaming engine's headline claim: an
// analysis at the stream head (including the observes that keep the state
// warm) beats the pre-streaming batch burst by at least
// streamingSpeedupRatio. Skipped when the streaming benchmark was not
// measured.
func streamingSpeedupCheck(current *benchjson.Report) error {
	var stream *benchjson.Result
	for i := range current.Results {
		if current.Results[i].Name == "ModuleSelectionStreaming" {
			stream = &current.Results[i]
		}
	}
	if stream == nil || stream.NsPerOp <= 0 {
		return nil
	}
	ratio := preStreamingBurstNS / stream.NsPerOp
	fmt.Printf("streaming selection: %.0f ns/op vs pre-streaming burst %.0f ns/op (%.1fx, floor %.0fx)\n",
		stream.NsPerOp, preStreamingBurstNS, ratio, streamingSpeedupRatio)
	if ratio < streamingSpeedupRatio {
		return fmt.Errorf("streaming selection is only %.1fx faster than the pre-streaming burst (floor %.0fx)",
			ratio, streamingSpeedupRatio)
	}
	return nil
}

// slaveAnswerLimit caps the 99th-percentile latency of a warm streaming
// slave's analyze answer.
const slaveAnswerLimit = time.Millisecond

// slaveAnswerCheck drives a warm streaming monitor the way a slave answers
// the master — one fresh second observed, then a full analyze at the new
// stream head — and requires the answer p99 to stay under slaveAnswerLimit.
func slaveAnswerCheck() error {
	cfg := core.DefaultConfig()
	cfg.Streaming = true
	mon := core.NewMonitor("c", cfg)
	for t := int64(0); t < 2000; t++ {
		for _, k := range metric.Kinds {
			if err := mon.Observe(t, k, float64(40+t%23)+float64(t%7)); err != nil {
				return err
			}
		}
	}
	monitors := []*core.Monitor{mon}
	const rounds = 300
	lat := make([]time.Duration, 0, rounds)
	for ts := int64(2000); ts < 2000+rounds; ts++ {
		for _, k := range metric.Kinds {
			if err := mon.Observe(ts, k, float64(40+ts%23)+float64(ts%7)); err != nil {
				return err
			}
		}
		start := time.Now()
		core.AnalyzeMonitors(monitors, ts, 0, 1)
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	fmt.Printf("slave answer latency: p50 %v, p99 %v (limit %v)\n", lat[len(lat)/2], p99, slaveAnswerLimit)
	if p99 > slaveAnswerLimit {
		return fmt.Errorf("warm streaming slave answer p99 %v exceeds %v", p99, slaveAnswerLimit)
	}
	return nil
}

// idleOverheadLimit caps how much the deadline/admission plumbing may slow
// the selection hot path when no deadline pressure exists.
const idleOverheadLimit = 0.02

// idleOverheadCheck verifies the overload machinery is free when idle:
// selection with a far-future deadline must track plain selection within
// idleOverheadLimit on the same warm models. Both sides are measured
// in-process as interleaved best-of-three pairs, so machine speed cancels
// out — unlike the baseline-file comparison, this guard cannot be fooled by
// CI hardware drift.
func idleOverheadCheck(maxOverhead float64) error {
	mon := core.NewMonitor("c", core.DefaultConfig())
	for t := int64(0); t < 2000; t++ {
		for _, k := range metric.Kinds {
			if err := mon.Observe(t, k, float64(40+t%23)+float64(t%7)); err != nil {
				return err
			}
		}
	}
	monitors := []*core.Monitor{mon}
	plainRun := func(n int) {
		for i := 0; i < n; i++ {
			core.AnalyzeMonitors(monitors, 1999, 0, 1)
		}
	}
	budgetRun := func(n int) {
		for i := 0; i < n; i++ {
			core.AnalyzeMonitorsDeadline(monitors, 1999, 0, 1, time.Now().Add(time.Hour))
		}
	}
	// One discarded warm-up pair: the first timed pass pays for cold caches
	// and pool fills, which a 2% gate cannot absorb.
	measure("warmup", plainRun)
	measure("warmup", budgetRun)
	// Best-of-five interleaved pairs: the minimum of five 200ms+ passes is
	// stable to well under the 2% gate even on a single-CPU CI worker.
	plain, budgeted := math.Inf(1), math.Inf(1)
	for round := 0; round < 5; round++ {
		plain = math.Min(plain, measure("IdleSelectionPlain", plainRun).NsPerOp)
		budgeted = math.Min(budgeted, measure("IdleSelectionBudgeted", budgetRun).NsPerOp)
	}
	overhead := budgeted/plain - 1
	fmt.Printf("idle admission overhead: plain %.0f ns/op, budgeted %.0f ns/op (%+.2f%%, limit %.0f%%)\n",
		plain, budgeted, overhead*100, maxOverhead*100)
	if overhead > maxOverhead {
		return fmt.Errorf("deadline-budgeted selection is %.2f%% slower than plain when idle (limit %.0f%%)",
			overhead*100, maxOverhead*100)
	}
	return nil
}

// replOverheadLimit caps how much warm-standby replication may slow the
// Observe hot path: ingestion against a live replicator ticking on the same
// monitor must track ingestion on an unreplicated monitor within this
// fraction.
const replOverheadLimit = 0.05

// replWindowSeconds is how many seconds of samples each replicator tick
// extracts in replOverheadCheck: one 30-second replication interval's worth
// against 1 Hz samples, the shape a deployed delta actually has. The
// benchmark loop ingests millions of samples per wall second, so extraction
// is window-pinned rather than floor-chasing — letting the replicator chase
// the real head would hand it megabytes per tick, a workload no deployment
// produces, and on a single-CPU worker the timed loop would be billed for
// it.
const replWindowSeconds = 30

// replOverheadCheck verifies replication is free where it matters. Delta
// extraction runs on the slave's replication goroutine, not inside Observe
// — the only cost the ingestion hot path can see is contention on the shard
// locks DeltaInto holds while it extracts. So the replicated side times the
// same Observe loop as the plain side while a background replicator pulls a
// deployment-shaped delta (replWindowSeconds behind the live head) from the
// same monitor every millisecond — 100x denser than the tightest cadence
// the tests ship with — and the interleaved best-of-five gap (machine speed
// cancels out) must stay under replOverheadLimit.
func replOverheadCheck(maxOverhead float64) error {
	mkMonitor := func() *core.Monitor {
		mon := core.NewMonitor("c", core.DefaultConfig())
		for t := int64(0); t < 2000; t++ {
			for _, k := range metric.Kinds {
				if err := mon.Observe(t, k, float64(40+t%23)+float64(t%7)); err != nil {
					panic(err)
				}
			}
		}
		return mon
	}
	plainMon, replMon := mkMonitor(), mkMonitor()
	var plainTS, replTS atomic.Int64
	plainTS.Store(2000)
	replTS.Store(2000)
	observeRun := func(mon *core.Monitor, ts *atomic.Int64) func(n int) {
		return func(n int) {
			for i := 0; i < n; i++ {
				t := ts.Load()
				for _, k := range metric.Kinds {
					if err := mon.Observe(t, k, float64(40+t%23)); err != nil {
						panic(err)
					}
				}
				ts.Store(t + 1)
			}
		}
	}
	plainRun, replRun := observeRun(plainMon, &plainTS), observeRun(replMon, &replTS)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var delta core.ReplDelta
		floors := make(map[string]int64, len(metric.Kinds))
		ticker := time.NewTicker(time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			// Published samples end at head-1, and the window floor sits far
			// inside the retention ring — but if this goroutine is preempted
			// mid-extraction, the timed loop can wrap the ring past the now
			// stale floor and DeltaInto reports the gap (ok=false), exactly as
			// it would to a real replicator. The tick just retries with a
			// fresh head, the cheap analogue of the slave's full resend.
			head := replTS.Load()
			for _, k := range metric.Kinds {
				floors[k.String()] = head - replWindowSeconds
			}
			replMon.DeltaInto(&delta, floors)
		}
	}()
	measure("warmup", plainRun)
	measure("warmup", replRun)
	// An op here is ~400ns — far below the timing noise of a shared or
	// virtualized worker, where CPU-frequency phases and hypervisor steal
	// swing whole 200ms passes by more than the gate. So instead of timing
	// the two sides in separate passes, alternate them in ~2ms chunks inside
	// one long run and compare the summed times: any noise envelope slower
	// than a chunk pair lands on both sides equally and cancels, and faster
	// jitter averages out over the ~1600 chunks.
	// ABBA ordering: alternating which side goes first in each pair cancels
	// any systematic second-chunk effect (scheduler wakeups, boost decay).
	const chunkIters = 5000
	const chunks = 800
	var plainNS, replNS int64
	var iters int64
	timed := func(fn func(n int)) int64 {
		start := time.Now()
		fn(chunkIters)
		return time.Since(start).Nanoseconds()
	}
	for c := 0; c < chunks; c++ {
		if c%2 == 0 {
			plainNS += timed(plainRun)
			replNS += timed(replRun)
		} else {
			replNS += timed(replRun)
			plainNS += timed(plainRun)
		}
		iters += chunkIters
	}
	close(stop)
	<-done
	plain := float64(plainNS) / float64(iters)
	replicated := float64(replNS) / float64(iters)
	overhead := replicated/plain - 1
	fmt.Printf("replication observe overhead: plain %.0f ns/op, replicated %.0f ns/op (%+.2f%%, limit %.0f%%)\n",
		plain, replicated, overhead*100, maxOverhead*100)
	if overhead > maxOverhead {
		return fmt.Errorf("observe against a 1ms replicator is %.2f%% slower than plain (limit %.0f%%)",
			overhead*100, maxOverhead*100)
	}
	return nil
}
