// Command fchain-bench regenerates the tables and figures of the FChain
// paper's evaluation (ICDCS 2013, §III) on the simulated testbed, and
// doubles as the performance-regression harness: it measures the Table II
// module micro-benchmarks, emits machine-readable BENCH_<date>.json
// reports, and checks a fresh run against a committed baseline.
//
// Usage:
//
//	fchain-bench -all                 # every table and figure
//	fchain-bench -exp fig6 -runs 30   # one experiment, 30 runs per fault
//	fchain-bench -exp fig6 -parallel 4 # four campaign workers (same output)
//	fchain-bench -list                # list experiment identifiers
//	fchain-bench -bench -json BENCH_2026-08-05.json  # measure + save report
//	fchain-bench -check BENCH_2026-08-05.json        # fail on >30% regression
//
// Beyond the paper, -exp matrix runs the (topology × fault) accuracy matrix
// over generated microservice meshes; `-exp matrix -runs 2 -omit-timing`
// reproduces the committed results_matrix.txt byte for byte.
//
// The paper uses 30-40 runs per fault; the shapes stabilize from ~10.
// Campaign runs are independently seeded and reassembled in seed order, so
// -parallel never changes a report, only how fast it is produced.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fchain/scenario"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment to run (fig2..fig12, table1, table2, ablation, matrix)")
		runs       = flag.Int("runs", 10, "fault-injection runs per fault for accuracy experiments")
		all        = flag.Bool("all", false, "run every experiment")
		list       = flag.Bool("list", false, "list experiment identifiers")
		parallel   = flag.Int("parallel", 0, "campaign workers (0 = all cores, 1 = serial; output is identical)")
		omitTiming = flag.Bool("omit-timing", false, "drop wall-clock lines so reports diff cleanly across machines")
		bench      = flag.Bool("bench", false, "run the module micro-benchmarks and scenario timing suite")
		jsonOut    = flag.String("json", "", "with -bench: write the machine-readable report to this file")
		benchRuns  = flag.Int("bench-runs", 4, "with -bench: runs per fault for the scenario speedup timings")
		check      = flag.String("check", "", "re-measure module benchmarks and fail on regression vs this baseline JSON")
		threshold  = flag.Float64("threshold", 0.30, "with -check: fractional ns/op slowdown tolerated")
	)
	flag.Parse()
	opts := scenario.RunOptions{Workers: *parallel, OmitTiming: *omitTiming}
	if err := run(*exp, *runs, *all, *list, opts, *bench, *jsonOut, *benchRuns, *check, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "fchain-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, runs int, all, list bool, opts scenario.RunOptions, bench bool, jsonOut string, benchRuns int, check string, threshold float64) error {
	switch {
	case check != "":
		return runCheck(check, threshold)
	case bench:
		_, err := runBench(jsonOut, benchRuns, true)
		return err
	case list:
		for _, id := range scenario.Experiments() {
			fmt.Println(id)
		}
		return nil
	case all:
		for _, id := range scenario.Experiments() {
			if err := runOne(id, runs, opts); err != nil {
				return err
			}
		}
		return nil
	case exp != "":
		return runOne(exp, runs, opts)
	default:
		return fmt.Errorf("nothing to do: pass -exp <id>, -all, -bench, -check <baseline>, or -list")
	}
}

func runOne(id string, runs int, opts scenario.RunOptions) error {
	opts.Runs = runs
	start := time.Now()
	out, err := scenario.RunWith(id, opts)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	fmt.Print(out)
	if !opts.OmitTiming {
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
