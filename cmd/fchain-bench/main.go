// Command fchain-bench regenerates the tables and figures of the FChain
// paper's evaluation (ICDCS 2013, §III) on the simulated testbed.
//
// Usage:
//
//	fchain-bench -all                 # every table and figure
//	fchain-bench -exp fig6 -runs 30   # one experiment, 30 runs per fault
//	fchain-bench -list                # list experiment identifiers
//
// The paper uses 30-40 runs per fault; the shapes stabilize from ~10.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fchain/scenario"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment to run (fig2..fig12, table1, table2)")
		runs = flag.Int("runs", 10, "fault-injection runs per fault for accuracy experiments")
		all  = flag.Bool("all", false, "run every experiment")
		list = flag.Bool("list", false, "list experiment identifiers")
	)
	flag.Parse()
	if err := run(*exp, *runs, *all, *list); err != nil {
		fmt.Fprintln(os.Stderr, "fchain-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, runs int, all, list bool) error {
	switch {
	case list:
		for _, id := range scenario.Experiments() {
			fmt.Println(id)
		}
		return nil
	case all:
		for _, id := range scenario.Experiments() {
			if err := runOne(id, runs); err != nil {
				return err
			}
		}
		return nil
	case exp != "":
		return runOne(exp, runs)
	default:
		return fmt.Errorf("nothing to do: pass -exp <id>, -all, or -list")
	}
}

func runOne(id string, runs int) error {
	start := time.Now()
	out, err := scenario.Run(id, runs)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	fmt.Print(out)
	fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}
