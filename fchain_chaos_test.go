package fchain_test

import (
	"testing"

	"fchain"
	"fchain/internal/ingest"
	"fchain/scenario"
)

// feedCorrupted replays the scenario trace through a seeded corruptor into
// the localizer's sanitizing ingest path: samples are dropped, duplicated,
// NaN-ed, spiked, and delivered slightly out of order — the failure modes
// of a real collection pipeline.
func feedCorrupted(t *testing.T, sys *scenario.System, loc *fchain.Localizer, tv int64, cfg ingest.CorruptConfig) {
	t.Helper()
	for _, comp := range sys.Components() {
		for _, k := range fchain.Kinds() {
			s, err := sys.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			clean := make([]ingest.Sample, 0, s.Len())
			for i := 0; i < s.Len() && s.TimeAt(i) <= tv; i++ {
				clean = append(clean, ingest.Sample{T: s.TimeAt(i), V: s.At(i)})
			}
			// Vary the seed per stream so every stream is degraded
			// differently, as independent collectors would be.
			cfg.Seed = cfg.Seed*31 + int64(k)
			for _, smp := range ingest.Corrupt(clean, cfg) {
				if err := loc.Ingest(comp, smp.T, k, smp.V); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestChaosIngestDegradesGracefully is the headline resilience test: a
// corrupted replay of the RUBiS CPU-hog trace must not panic, must still
// run end to end, and must surface its degraded data quality — lowered
// per-component scores and a culprit confidence below 1 — instead of
// presenting a verdict from dirty data as if it were pristine.
func TestChaosIngestDegradesGracefully(t *testing.T) {
	sys, tv := runRUBiSCpuHog(t, 3)
	deps := fchain.DiscoverDependencies(sys.DependencyTrace(600, 1), fchain.DiscoverConfig{})

	loc := fchain.NewLocalizer(fchain.DefaultConfig(), sys.Components())
	feedCorrupted(t, sys, loc, tv, ingest.CorruptConfig{
		Seed:      7,
		DropRate:  0.02,
		DupRate:   0.02,
		NaNRate:   0.01,
		SpikeRate: 0.005,
		JitterMax: 3,
	})

	diag := loc.Localize(tv, deps)
	names := diag.CulpritNames()
	if len(names) == 0 || names[0] != "db" {
		t.Errorf("corrupted-trace culprits = %v, want db first", names)
	}

	quality := loc.Quality()
	if len(quality) != len(sys.Components()) {
		t.Fatalf("quality for %d components, want %d", len(quality), len(sys.Components()))
	}
	for comp, q := range quality {
		if q.Score >= 1 || q.Score <= 0 {
			t.Errorf("component %s quality = %v, want strictly inside (0,1) for a corrupted stream", comp, q.Score)
		}
		if q.Stats.Dropped() == 0 {
			t.Errorf("component %s counted no dropped samples despite corruption: %s", comp, q.Stats)
		}
	}
	for _, c := range diag.Culprits {
		if c.Confidence >= 1 {
			t.Errorf("culprit %s confidence = %v, want < 1 under corrupted data", c.Component, c.Confidence)
		}
		if c.Confidence <= 0 {
			t.Errorf("culprit %s confidence = %v, want > 0 (moderate corruption)", c.Component, c.Confidence)
		}
	}
}

// TestChaosHeavyCorruptionNeverPanics cranks the corruptor far past
// plausible deployment conditions: half the samples gone, a quarter
// duplicated, heavy NaN and spike pollution, aggressive reordering. The
// pipeline owes no particular verdict here — only survival and honest
// accounting.
func TestChaosHeavyCorruptionNeverPanics(t *testing.T) {
	sys, tv := runRUBiSCpuHog(t, 4)
	loc := fchain.NewLocalizer(fchain.DefaultConfig(), sys.Components())
	feedCorrupted(t, sys, loc, tv, ingest.CorruptConfig{
		Seed:      11,
		DropRate:  0.5,
		DupRate:   0.25,
		NaNRate:   0.2,
		SpikeRate: 0.1,
		JitterMax: 20,
	})

	diag := loc.Localize(tv, nil)
	for comp, q := range loc.Quality() {
		if q.Score > 0.9 {
			t.Errorf("component %s quality = %v under heavy corruption, want <= 0.9", comp, q.Score)
		}
	}
	for _, c := range diag.Culprits {
		if c.Confidence > 0.9 {
			t.Errorf("culprit %s confidence = %v under heavy corruption, want <= 0.9", c.Component, c.Confidence)
		}
	}
}
