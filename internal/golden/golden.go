// Package golden manages committed golden files: expected outputs checked
// into testdata/ that pin the pipeline's end-to-end behavior. Tests compare
// against them with Assert and regenerate them with `go test ./... -update`.
//
// The -update flag is registered exactly once per test binary by importing
// this package. Because `go test ./... -update` hands the flag to every
// test binary in the module, every package with tests must blank-import
// this package (a one-line update_flag_test.go), or the run fails with
// "flag provided but not defined".
package golden

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update is registered at package init; read it through Update().
var update = flag.Bool("update", false, "rewrite golden files with current test output")

// Update reports whether the test run was asked to regenerate golden files.
func Update() bool { return *update }

// Path returns the conventional location of a golden file: testdata/golden/
// under the calling package, with the given name.
func Path(name string) string { return filepath.Join("testdata", "golden", name) }

// Assert compares got against the golden file at path. Under -update it
// (re)writes the file instead — atomically, so two consecutive -update runs
// on unchanged code produce byte-identical files and no torn state is ever
// committed. Without -update, a missing golden file is a fatal error that
// names the regeneration command.
func Assert(t *testing.T, path string, got []byte) {
	t.Helper()
	if Update() {
		if err := write(path, got); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s — run `go test ./... -update` to create it (%v)", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// write creates the golden file via the same temp-and-rename pattern the
// checkpoint and journal writers use.
func write(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("golden: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("golden: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("golden: write %s: %w", path, err)
	}
	return nil
}
