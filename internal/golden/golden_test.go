package golden_test

import (
	"os"
	"path/filepath"
	"testing"

	"fchain/internal/golden"
)

func TestAssertMatchesCommittedFile(t *testing.T) {
	if golden.Update() {
		t.Skip("self-test is meaningless under -update")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sample.golden")
	if err := os.WriteFile(path, []byte("expected\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	golden.Assert(t, path, []byte("expected\n"))
}

func TestPathConvention(t *testing.T) {
	want := filepath.Join("testdata", "golden", "x.json")
	if got := golden.Path("x.json"); got != want {
		t.Errorf("Path = %q, want %q", got, want)
	}
}
