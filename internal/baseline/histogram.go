package baseline

import (
	"fmt"
	"math"
	"sort"

	"fchain/internal/metric"
)

// Histogram is the KL-divergence anomaly-score scheme (paper baseline 1,
// following Oliner et al. [10]): for each metric it compares the histogram
// of the look-back window against the histogram of the whole history and
// pinpoints components whose largest divergence exceeds the threshold.
//
// Its characteristic weakness (paper §III-B): fast-manifesting faults
// (CpuHog, NetHog) have contributed too few samples to the recent histogram
// by the time the anomaly is detected, so the divergence is still small.
type Histogram struct {
	// Threshold is the anomaly-score cutoff; the ROC sweeps vary it.
	Threshold float64
	// Bins is the histogram resolution (default 20).
	Bins int
}

var _ Scheme = (*Histogram)(nil)

// Name implements Scheme.
func (h *Histogram) Name() string { return fmt.Sprintf("histogram(t=%.2f)", h.Threshold) }

// Localize implements Scheme.
func (h *Histogram) Localize(tr *Trial) ([]string, error) {
	bins := h.Bins
	if bins <= 0 {
		bins = 20
	}
	var out []string
	for _, comp := range tr.Components {
		score := 0.0
		for _, k := range metric.Kinds {
			full := tr.SeriesOf(comp, k)
			recent := tr.Window(comp, k)
			if full == nil || recent == nil || full.Len() < bins || recent.Len() < 4 {
				continue
			}
			d := klDivergence(recent.Values(), full.Values(), bins)
			if d > score {
				score = d
			}
		}
		if score > h.Threshold {
			out = append(out, comp)
		}
	}
	sort.Strings(out)
	return out, nil
}

// klDivergence computes KL(P‖Q) where P is the histogram of recent and Q of
// full, over shared bin edges spanning the full history's range, with
// additive smoothing to keep the divergence finite.
func klDivergence(recent, full []float64, bins int) float64 {
	lo, hi := full[0], full[0]
	for _, v := range full {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	for _, v := range recent {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		return 0
	}
	hist := func(vals []float64) []float64 {
		counts := make([]float64, bins)
		for _, v := range vals {
			idx := int((v - lo) / (hi - lo) * float64(bins))
			if idx >= bins {
				idx = bins - 1
			}
			if idx < 0 {
				idx = 0
			}
			counts[idx]++
		}
		// Additive smoothing.
		total := float64(len(vals)) + float64(bins)*0.5
		for i := range counts {
			counts[i] = (counts[i] + 0.5) / total
		}
		return counts
	}
	p := hist(recent)
	q := hist(full)
	var kl float64
	for i := range p {
		kl += p[i] * math.Log(p[i]/q[i])
	}
	if kl < 0 {
		kl = 0
	}
	return kl
}

// HistogramSweep returns Histogram schemes across the given thresholds, for
// ROC construction.
func HistogramSweep(thresholds []float64) []Scheme {
	out := make([]Scheme, len(thresholds))
	for i, t := range thresholds {
		out[i] = &Histogram{Threshold: t}
	}
	return out
}
