package baseline

import (
	"sort"

	"fchain/internal/depgraph"
)

// Topology is baseline 3: PAL-style outlier change point detection plus
// ground-truth topology knowledge. Anomalies are assumed to propagate
// downstream along request edges, so among the abnormal components it
// blames the most-upstream ones (those with no abnormal component upstream
// of them). Its characteristic failure is back-pressure (paper §III-B):
// a faulty downstream tier (the RUBiS database) drives its *upstream*
// callers abnormal, and this scheme then blames the upstream tier.
type Topology struct {
	Detector *palDetector
}

var _ Scheme = (*Topology)(nil)

// Name implements Scheme.
func (s *Topology) Name() string { return "topology" }

// Localize implements Scheme.
func (s *Topology) Localize(tr *Trial) ([]string, error) {
	return blameUpstream(tr, tr.Topology, s.Detector), nil
}

// Dependency is baseline 4: identical detection, but using the black-box
// *discovered* dependency graph instead of assumed topology. When discovery
// found no dependencies (continuous stream systems), the scheme outputs
// every abnormal component — the paper's explanation for its low precision
// on System S.
type Dependency struct {
	Detector *palDetector
}

var _ Scheme = (*Dependency)(nil)

// Name implements Scheme.
func (s *Dependency) Name() string { return "dependency" }

// Localize implements Scheme.
func (s *Dependency) Localize(tr *Trial) ([]string, error) {
	det := defaultPALDetector()
	if s.Detector != nil {
		det = *s.Detector
	}
	if tr.Deps == nil || tr.Deps.Empty() {
		_, abnormal := det.detect(tr)
		out := make([]string, 0, len(abnormal))
		for _, a := range abnormal {
			out = append(out, a.Component)
		}
		sort.Strings(out)
		return out, nil
	}
	return blameUpstream(tr, tr.Deps, s.Detector), nil
}

// blameUpstream runs PAL-style detection and pinpoints abnormal components
// with no abnormal upstream in the graph (anomaly flows downstream with the
// requests).
func blameUpstream(tr *Trial, g *depgraph.Graph, detector *palDetector) []string {
	det := defaultPALDetector()
	if detector != nil {
		det = *detector
	}
	_, abnormal := det.detect(tr)
	var out []string
	for _, a := range abnormal {
		explained := false
		for _, b := range abnormal {
			if a.Component == b.Component {
				continue
			}
			if g != nil && g.HasDirectedPath(b.Component, a.Component) {
				explained = true
				break
			}
		}
		if !explained {
			out = append(out, a.Component)
		}
	}
	sort.Strings(out)
	return out
}

// PAL is baseline 5: the authors' earlier propagation-aware localizer. It
// sorts abnormal components by their earliest *outlier* change point time
// (no predictability-based selection, no tangent rollback, no dependency
// information) and pinpoints the earliest plus any component within the
// concurrency threshold.
type PAL struct {
	Detector             *palDetector
	ConcurrencyThreshold int64
}

var _ Scheme = (*PAL)(nil)

// Name implements Scheme.
func (s *PAL) Name() string { return "pal" }

// Localize implements Scheme.
func (s *PAL) Localize(tr *Trial) ([]string, error) {
	det := defaultPALDetector()
	if s.Detector != nil {
		det = *s.Detector
	}
	thr := s.ConcurrencyThreshold
	if thr <= 0 {
		thr = 2
	}
	_, abnormal := det.detect(tr)
	if len(abnormal) == 0 {
		return nil, nil
	}
	out := []string{abnormal[0].Component}
	last := abnormal[0].Earliest
	for _, a := range abnormal[1:] {
		if a.Earliest-last <= thr {
			out = append(out, a.Component)
			last = a.Earliest
		}
	}
	sort.Strings(out)
	return out, nil
}
