// Package baseline implements the black-box fault localization schemes the
// FChain paper compares against (§III-A), plus scheme adapters for FChain
// itself, behind one common interface:
//
//   - Histogram: Kullback-Leibler divergence between the look-back window's
//     histogram and the full-history histogram, thresholded anomaly scores
//     (Oliner et al. style [10]).
//   - NetMedic [9]: topology-aware impact ranking from historical state
//     similarity, with the characteristic 0.8 default impact for
//     previously unseen states.
//   - Topology: PAL-style outlier change point detection + ground-truth
//     topology; blames the most-upstream abnormal component.
//   - Dependency: same detection + the *discovered* dependency graph; when
//     discovery found nothing (stream systems) it outputs every abnormal
//     component.
//   - PAL [13]: abnormal change propagation ordering without predictability
//     filtering or dependency information.
//   - Fixed-Filtering: the FChain pipeline with a fixed prediction-error
//     threshold instead of the burstiness-adaptive one.
//   - FChain / FChain+VAL: the real pipeline (core package), optionally
//     with online pinpointing validation.
package baseline

import (
	"fchain/internal/cloudsim"
	"fchain/internal/depgraph"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// Trial is everything a localization scheme may consume for one fault run.
// All schemes see identical data; what they do with it differs.
type Trial struct {
	// Components lists the application's component names.
	Components []string
	// Series holds each component's metric history from run start through
	// the SLO violation time TV.
	Series map[string]map[metric.Kind]*timeseries.Series
	// TV is the time the performance anomaly was detected.
	TV int64
	// LookBack is the W to use for this fault (paper: 100, or 500 for the
	// Hadoop DiskHog).
	LookBack int
	// Topology is the ground-truth application topology (only the
	// Topology scheme and NetMedic may use it — FChain never does).
	Topology *depgraph.Graph
	// Deps is the black-box discovered dependency graph (may be empty).
	Deps *depgraph.Graph
	// Sim is the live simulation positioned at TV; only FChain+VAL uses it
	// (for online validation clones). May be nil for schemes that do not
	// validate.
	Sim *cloudsim.Sim
}

// SeriesOf returns one component metric history (nil when absent).
func (tr *Trial) SeriesOf(component string, k metric.Kind) *timeseries.Series {
	m, ok := tr.Series[component]
	if !ok {
		return nil
	}
	return m[k]
}

// Window returns the look-back window [TV-LookBack, TV] of one metric.
func (tr *Trial) Window(component string, k metric.Kind) *timeseries.Series {
	s := tr.SeriesOf(component, k)
	if s == nil {
		return nil
	}
	return s.Window(tr.TV-int64(tr.LookBack), tr.TV+1)
}

// Scheme is a black-box fault localization algorithm: given a trial it
// names the components it believes faulty.
type Scheme interface {
	// Name identifies the scheme (and its threshold, for swept schemes).
	Name() string
	// Localize returns the pinpointed faulty components.
	Localize(tr *Trial) ([]string, error)
}
