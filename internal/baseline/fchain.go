package baseline

import (
	"fmt"

	"fchain/internal/core"
	"fchain/internal/metric"
)

// FChain adapts the real FChain pipeline (internal/core) to the Scheme
// interface so the evaluation harness can run it side by side with the
// baselines. When Validate is set, online pinpointing validation runs on
// the trial's live simulation (the FChain+VAL configuration of Fig. 11).
type FChain struct {
	// Config overrides FChain parameters; zero fields take the paper's
	// defaults. Trial.LookBack always overrides the window.
	Config core.Config
	// Validate enables online pinpointing validation.
	Validate bool
}

var _ Scheme = (*FChain)(nil)

// Name implements Scheme.
func (f *FChain) Name() string {
	if f.Validate {
		return "fchain+val"
	}
	return "fchain"
}

// Localize implements Scheme.
func (f *FChain) Localize(tr *Trial) ([]string, error) {
	diag, err := f.Diagnose(tr)
	if err != nil {
		return nil, err
	}
	return diag.CulpritNames(), nil
}

// Diagnose runs the pipeline and returns the full diagnosis (used by the
// figure-level reporting, which needs onsets and reasons, not just names).
func (f *FChain) Diagnose(tr *Trial) (core.Diagnosis, error) {
	cfg := f.Config
	cfg.LookBack = tr.LookBack
	loc := core.NewLocalizer(cfg, tr.Components)
	for _, comp := range tr.Components {
		for _, k := range metric.Kinds {
			s := tr.SeriesOf(comp, k)
			if s == nil {
				continue
			}
			for i := 0; i < s.Len() && s.TimeAt(i) <= tr.TV; i++ {
				if err := loc.Observe(comp, s.TimeAt(i), k, s.At(i)); err != nil {
					return core.Diagnosis{}, fmt.Errorf("baseline: feed %s/%s: %w", comp, k, err)
				}
			}
		}
	}
	diag := loc.Localize(tr.TV, tr.Deps)
	if !f.Validate || len(diag.Culprits) == 0 {
		return diag, nil
	}
	if tr.Sim == nil {
		return core.Diagnosis{}, fmt.Errorf("baseline: fchain+val needs a live simulation in the trial")
	}
	results, err := core.Validate(func() (core.Adjuster, error) {
		return tr.Sim.Clone(), nil
	}, diag, loc.Config())
	if err != nil {
		return core.Diagnosis{}, fmt.Errorf("baseline: validation: %w", err)
	}
	return core.ApplyValidation(diag, results), nil
}

// FixedFilter is baseline 6: FChain's pipeline with a fixed prediction
// error filtering threshold instead of the burstiness-adaptive expected
// error. A single absolute threshold cannot fit metrics of different scales
// and burstiness at once, which is what Fig. 12 demonstrates.
type FixedFilter struct {
	Threshold float64
	Config    core.Config
}

var _ Scheme = (*FixedFilter)(nil)

// Name implements Scheme.
func (f *FixedFilter) Name() string { return fmt.Sprintf("fixed(t=%.2f)", f.Threshold) }

// Localize implements Scheme.
func (f *FixedFilter) Localize(tr *Trial) ([]string, error) {
	cfg := f.Config
	cfg.FixedThreshold = f.Threshold
	inner := &FChain{Config: cfg}
	return inner.Localize(tr)
}

// FixedFilterSweep returns FixedFilter schemes across thresholds.
func FixedFilterSweep(thresholds []float64) []Scheme {
	out := make([]Scheme, len(thresholds))
	for i, t := range thresholds {
		out[i] = &FixedFilter{Threshold: t}
	}
	return out
}
