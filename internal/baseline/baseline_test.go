package baseline

import (
	"math"
	"math/rand"
	"testing"

	"fchain/internal/depgraph"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// synthTrial fabricates a four-component trial (web -> {app1, app2} -> db)
// with fully controllable metric series. fault injects a CPU step into the
// named components at stepAt.
func synthTrial(t *testing.T, stepAt int64, faulty ...string) *Trial {
	t.Helper()
	comps := []string{"app1", "app2", "db", "web"}
	isFaulty := make(map[string]bool)
	for _, f := range faulty {
		isFaulty[f] = true
	}
	rng := rand.New(rand.NewSource(7))
	const n = 1800
	series := make(map[string]map[metric.Kind]*timeseries.Series, len(comps))
	for _, comp := range comps {
		series[comp] = make(map[metric.Kind]*timeseries.Series)
		for _, k := range metric.Kinds {
			vals := make([]float64, n)
			base := 20 + 5*float64(k)
			for i := range vals {
				v := base + 0.3*math.Sin(2*math.Pi*float64(i)/120) + 0.6*rng.NormFloat64()
				if isFaulty[comp] && k == metric.CPU && int64(i) >= stepAt {
					v += 60
				}
				vals[i] = v
			}
			series[comp][k] = timeseries.New(0, vals)
		}
	}
	topo := depgraph.NewGraph()
	topo.AddEdge("web", "app1", 1)
	topo.AddEdge("web", "app2", 1)
	topo.AddEdge("app1", "db", 1)
	topo.AddEdge("app2", "db", 1)
	return &Trial{
		Components: comps,
		Series:     series,
		TV:         n - 1,
		LookBack:   100,
		Topology:   topo,
		Deps:       topo.Clone(),
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func TestTrialWindow(t *testing.T) {
	tr := synthTrial(t, 1750, "db")
	w := tr.Window("db", metric.CPU)
	if w.Len() != 101 || w.End() != tr.TV+1 {
		t.Errorf("window len=%d end=%d, want the inclusive [tv-W, tv] window", w.Len(), w.End())
	}
	if tr.Window("ghost", metric.CPU) != nil {
		t.Error("unknown component window should be nil")
	}
	if tr.SeriesOf("db", metric.Kind(99)) != nil {
		t.Error("unknown kind should be nil")
	}
}

func TestHistogramFindsGradualFault(t *testing.T) {
	// Step at 1500: by tv=1799 the recent histogram diverges strongly.
	tr := synthTrial(t, 1500, "db")
	h := &Histogram{Threshold: 0.5}
	got, err := h.Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(got, "db") {
		t.Errorf("histogram missed db: %v", got)
	}
}

func TestHistogramMissesFastFault(t *testing.T) {
	// Step 10s before tv: only 10 of 100 window samples shifted, so the
	// KL divergence is still small — the paper's CpuHog/NetHog weakness.
	tr := synthTrial(t, 1790, "db")
	h := &Histogram{Threshold: 0.5}
	got, err := h.Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if contains(got, "db") {
		t.Errorf("histogram should miss a fast-manifesting fault at threshold 0.5: %v", got)
	}
	// With a permissive threshold it fires on everything instead.
	h = &Histogram{Threshold: 0.0001}
	got, err = h.Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Errorf("permissive histogram should over-fire: %v", got)
	}
}

func TestHistogramThresholdMonotone(t *testing.T) {
	tr := synthTrial(t, 1600, "db")
	prev := len(tr.Components) + 1
	for _, thr := range []float64{0.01, 0.1, 0.5, 2, 10} {
		h := &Histogram{Threshold: thr}
		got, err := h.Localize(tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) > prev {
			t.Errorf("pinpointed set should shrink with threshold: %d > %d at %v", len(got), prev, thr)
		}
		prev = len(got)
	}
}

func TestTopologyBlamesUpstream(t *testing.T) {
	// db and app1 both abnormal; app1 is upstream of db, so Topology
	// blames app1 — right when the fault is at app1, wrong under
	// back-pressure from db.
	tr := synthTrial(t, 1700, "db", "app1")
	s := &Topology{}
	got, err := s.Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(got, "app1") || contains(got, "db") {
		t.Errorf("topology should blame the most-upstream abnormal component: %v", got)
	}
}

func TestDependencyFallsBackToAllAbnormal(t *testing.T) {
	tr := synthTrial(t, 1700, "db", "app1")
	tr.Deps = depgraph.NewGraph() // discovery failed (stream system)
	s := &Dependency{}
	got, err := s.Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(got, "db") || !contains(got, "app1") {
		t.Errorf("empty graph should output all abnormal components: %v", got)
	}
}

func TestDependencyUsesDiscoveredGraph(t *testing.T) {
	tr := synthTrial(t, 1700, "db", "app1")
	s := &Dependency{}
	got, err := s.Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(got, "app1") || contains(got, "db") {
		t.Errorf("dependency scheme with a graph should blame upstream: %v", got)
	}
}

func TestPALPinpointsEarliest(t *testing.T) {
	tr := synthTrial(t, 1700, "db")
	// Give app1 a later step so PAL must order them.
	vals := tr.Series["app1"][metric.CPU].Values()
	for i := 1760; i < len(vals); i++ {
		vals[i] += 60
	}
	tr.Series["app1"][metric.CPU] = timeseries.New(0, vals)
	s := &PAL{}
	got, err := s.Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(got, "db") {
		t.Errorf("PAL should pinpoint the earliest abnormal component: %v", got)
	}
	if contains(got, "app1") {
		t.Errorf("PAL should not pinpoint the later victim: %v", got)
	}
}

func TestNetMedicRanksFaulty(t *testing.T) {
	tr := synthTrial(t, 1650, "db")
	s := &NetMedic{Delta: 0.05}
	got, err := s.Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(got, "db") {
		t.Errorf("netmedic should rank the deviating component on top: %v", got)
	}
}

func TestNetMedicDeltaWidensSet(t *testing.T) {
	tr := synthTrial(t, 1650, "db")
	narrow, err := (&NetMedic{Delta: 0.01}).Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := (&NetMedic{Delta: 0.95}).Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(wide) < len(narrow) {
		t.Errorf("larger delta should pinpoint at least as many: %d vs %d", len(wide), len(narrow))
	}
}

func TestFChainSchemeOnSynthTrial(t *testing.T) {
	tr := synthTrial(t, 1750, "db")
	s := &FChain{}
	got, err := s.Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "db" {
		t.Errorf("fchain = %v, want [db]", got)
	}
	if s.Name() != "fchain" {
		t.Errorf("Name = %q", s.Name())
	}
	if (&FChain{Validate: true}).Name() != "fchain+val" {
		t.Error("fchain+val name wrong")
	}
}

func TestFChainValRequiresSim(t *testing.T) {
	tr := synthTrial(t, 1750, "db")
	s := &FChain{Validate: true}
	if _, err := s.Localize(tr); err == nil {
		t.Error("fchain+val without a live sim should error")
	}
}

func TestFixedFilterExtremes(t *testing.T) {
	tr := synthTrial(t, 1750, "db")
	// An absurdly high threshold filters everything.
	high, err := (&FixedFilter{Threshold: 1e9}).Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(high) != 0 {
		t.Errorf("huge threshold should pinpoint nothing, got %v", high)
	}
	// A sane mid threshold finds the fault.
	mid, err := (&FixedFilter{Threshold: 10}).Localize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(mid, "db") {
		t.Errorf("mid threshold should find db: %v", mid)
	}
}

func TestSweepConstructors(t *testing.T) {
	if got := HistogramSweep([]float64{1, 2, 3}); len(got) != 3 {
		t.Errorf("HistogramSweep len = %d", len(got))
	}
	if got := NetMedicSweep([]float64{0.1}); len(got) != 1 {
		t.Errorf("NetMedicSweep len = %d", len(got))
	}
	if got := FixedFilterSweep([]float64{1, 2}); len(got) != 2 {
		t.Errorf("FixedFilterSweep len = %d", len(got))
	}
	// Names must encode the threshold for ROC labelling.
	a := (&Histogram{Threshold: 0.5}).Name()
	b := (&Histogram{Threshold: 1.5}).Name()
	if a == b {
		t.Error("histogram names should differ by threshold")
	}
}
