package baseline

import (
	"fmt"
	"math"
	"sort"

	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// NetMedic reimplements the behaviour of Kandula et al.'s NetMedic [9] that
// the paper compares against: application-agnostic multi-metric diagnosis
// that assumes topology knowledge and estimates inter-component impact from
// historical state similarity. For each component pair the current source
// state is matched against history; when no similar historical state exists
// (a previously *unseen* state — common during fault injection), NetMedic
// assigns a default high impact of 0.8, which is the behaviour the paper
// identifies as its weakness (§III-B fn. 5).
//
// The scheme emits a ranked list; the top component plus every component
// whose normalized score is within Delta of the top are pinpointed, and the
// ROC sweeps vary Delta.
type NetMedic struct {
	// Delta is the normalized score difference from the top-ranked
	// component within which additional components are pinpointed.
	Delta float64
	// HistorySec is how much history the impact estimation uses
	// (default 1800 s, as configured in the paper).
	HistorySec int
	// ChunkSec is the state-vector granularity (default 30 s).
	ChunkSec int
	// SimilarityThreshold is the maximum state distance for a historical
	// chunk to count as "similar"; beyond it the state is unseen and the
	// default impact applies (default 1.0).
	SimilarityThreshold float64
	// DefaultImpact is the impact assigned on unseen states (0.8 in the
	// paper).
	DefaultImpact float64
}

var _ Scheme = (*NetMedic)(nil)

// Name implements Scheme.
func (n *NetMedic) Name() string { return fmt.Sprintf("netmedic(d=%.2f)", n.Delta) }

func (n *NetMedic) withDefaults() NetMedic {
	out := *n
	if out.HistorySec <= 0 {
		out.HistorySec = 1800
	}
	if out.ChunkSec <= 0 {
		out.ChunkSec = 30
	}
	if out.SimilarityThreshold <= 0 {
		out.SimilarityThreshold = 1.0
	}
	if out.DefaultImpact <= 0 {
		out.DefaultImpact = 0.8
	}
	return out
}

// state is a normalized per-component metric vector over one chunk.
type nmState [metric.NumKinds]float64

func nmDistance(a, b nmState) float64 {
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a)))
}

// Localize implements Scheme.
func (n *NetMedic) Localize(tr *Trial) ([]string, error) {
	cfg := n.withDefaults()
	from := tr.TV - int64(cfg.HistorySec)
	if from < 0 {
		from = 0
	}

	// Build normalized chunk states per component.
	chunks := make(map[string][]nmState, len(tr.Components)) // historical
	current := make(map[string]nmState, len(tr.Components))
	abnormality := make(map[string]float64, len(tr.Components))
	for _, comp := range tr.Components {
		var mean, std [metric.NumKinds]float64
		// Normalization statistics from the history.
		for i, k := range metric.Kinds {
			s := tr.SeriesOf(comp, k)
			if s == nil {
				continue
			}
			hist := s.Window(from, tr.TV+1).Values()
			mean[i] = timeseries.Mean(hist)
			std[i] = timeseries.Std(hist)
			if std[i] == 0 {
				std[i] = 1
			}
		}
		normChunk := func(lo, hi int64) nmState {
			var st nmState
			for i, k := range metric.Kinds {
				s := tr.SeriesOf(comp, k)
				if s == nil {
					continue
				}
				w := s.Window(lo, hi)
				if w.Len() == 0 {
					continue
				}
				st[i] = (timeseries.Mean(w.Values()) - mean[i]) / std[i]
			}
			return st
		}
		for lo := from; lo+int64(cfg.ChunkSec) <= tr.TV-int64(cfg.ChunkSec); lo += int64(cfg.ChunkSec) {
			chunks[comp] = append(chunks[comp], normChunk(lo, lo+int64(cfg.ChunkSec)))
		}
		cur := normChunk(tr.TV-int64(cfg.ChunkSec), tr.TV+1)
		current[comp] = cur
		var norm float64
		for _, v := range cur {
			norm += v * v
		}
		abnormality[comp] = math.Sqrt(norm / float64(metric.NumKinds))
	}

	// Impact over topology edges (both directions: NetMedic's dependency
	// graph is built from observed communication).
	neighbors := make(map[string]map[string]bool, len(tr.Components))
	addNeighbor := func(a, b string) {
		if neighbors[a] == nil {
			neighbors[a] = make(map[string]bool)
		}
		neighbors[a][b] = true
	}
	if tr.Topology != nil {
		for _, a := range tr.Topology.Nodes() {
			for _, b := range tr.Topology.Successors(a) {
				addNeighbor(a, b)
				addNeighbor(b, a)
			}
		}
	}
	impact := func(src, dst string) float64 {
		// Find historical chunks where src looked like it does now.
		var best []int
		for i, st := range chunks[src] {
			if nmDistance(st, current[src]) <= cfg.SimilarityThreshold {
				best = append(best, i)
			}
		}
		if len(best) == 0 {
			// Previously unseen state: NetMedic's default high impact.
			return cfg.DefaultImpact
		}
		// Impact = how closely dst's state tracked src's similar states:
		// high similarity of dst's historical state to its current state
		// means dst's condition is explainable by src's condition.
		var sum float64
		for _, i := range best {
			if i < len(chunks[dst]) {
				d := nmDistance(chunks[dst][i], current[dst])
				sum += math.Max(0, 1-d/2)
			}
		}
		return sum / float64(len(best))
	}

	// Global blame score.
	scores := make(map[string]float64, len(tr.Components))
	for _, comp := range tr.Components {
		s := abnormality[comp]
		var influence float64
		for other := range neighbors[comp] {
			influence += impact(comp, other) * abnormality[other]
		}
		scores[comp] = s * (1 + influence)
	}

	ranked := append([]string(nil), tr.Components...)
	sort.Slice(ranked, func(i, j int) bool {
		if scores[ranked[i]] != scores[ranked[j]] {
			return scores[ranked[i]] > scores[ranked[j]]
		}
		return ranked[i] < ranked[j]
	})
	if len(ranked) == 0 || scores[ranked[0]] == 0 {
		return nil, nil
	}
	top := scores[ranked[0]]
	out := []string{ranked[0]}
	for _, comp := range ranked[1:] {
		if (top-scores[comp])/top <= cfg.Delta {
			out = append(out, comp)
		}
	}
	sort.Strings(out)
	return out, nil
}

// NetMedicSweep returns NetMedic schemes across the given deltas.
func NetMedicSweep(deltas []float64) []Scheme {
	out := make([]Scheme, len(deltas))
	for i, d := range deltas {
		out[i] = &NetMedic{Delta: d}
	}
	return out
}
