package baseline

import (
	"math/rand"
	"sort"

	"fchain/internal/changepoint"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// palDetector is the outlier change point detector from PAL that the
// Topology, Dependency, and PAL baselines share: smoothing, CUSUM +
// bootstrap change points, magnitude-outlier selection, and a fixed
// relative-significance filter. It has no predictability filtering, which
// is precisely what FChain adds on top.
type palDetector struct {
	SmoothWindow int
	OutlierSigma float64
	Bootstraps   int
	Confidence   float64
	// RelMagThreshold is the fixed significance filter: an outlier change
	// point counts only when its magnitude exceeds RelMagThreshold × the
	// window's standard deviation.
	RelMagThreshold float64
}

func defaultPALDetector() palDetector {
	return palDetector{
		SmoothWindow:    5,
		OutlierSigma:    1.5,
		Bootstraps:      200,
		Confidence:      0.95,
		RelMagThreshold: 1.2,
	}
}

// detection is a per-component result of PAL-style detection.
type detection struct {
	Component string
	Abnormal  bool
	// Earliest is the earliest significant outlier change point time.
	Earliest int64
}

// detect runs the detector over every component of the trial and returns
// per-component results keyed by name, plus the abnormal components sorted
// by earliest change time.
func (d palDetector) detect(tr *Trial) (map[string]detection, []detection) {
	byName := make(map[string]detection, len(tr.Components))
	var abnormal []detection
	for _, comp := range tr.Components {
		det := detection{Component: comp}
		for _, k := range metric.Kinds {
			w := tr.Window(comp, k)
			if w == nil || w.Len() < d.SmoothWindow*3 {
				continue
			}
			raw := w.Values()
			smoothed := timeseries.Smooth(raw, d.SmoothWindow)
			// Significance is judged against the raw window's variability;
			// smoothing shrinks the standard deviation and would make the
			// fixed filter overly permissive.
			sd := timeseries.Std(raw)
			points := changepoint.Detect(smoothed, changepoint.Config{
				Bootstraps: d.Bootstraps,
				Confidence: d.Confidence,
				Rand:       rand.New(rand.NewSource(palSeed(comp, int64(k), tr.TV))),
			})
			if len(points) == 0 {
				continue
			}
			for _, p := range changepoint.SelectOutliers(points, d.OutlierSigma) {
				if sd > 0 && p.Magnitude < d.RelMagThreshold*sd {
					continue
				}
				t := w.TimeAt(p.Index)
				if !det.Abnormal || t < det.Earliest {
					det.Earliest = t
				}
				det.Abnormal = true
			}
		}
		byName[comp] = det
		if det.Abnormal {
			abnormal = append(abnormal, det)
		}
	}
	sort.Slice(abnormal, func(i, j int) bool {
		if abnormal[i].Earliest != abnormal[j].Earliest {
			return abnormal[i].Earliest < abnormal[j].Earliest
		}
		return abnormal[i].Component < abnormal[j].Component
	})
	return byName, abnormal
}

func palSeed(s string, a, b int64) int64 {
	h := int64(99991)
	for _, c := range s {
		h = h*31 + int64(c)
	}
	h = h*31 + a
	h = h*31 + b
	if h < 0 {
		h = -h
	}
	return h
}
