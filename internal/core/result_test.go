package core

import (
	"strings"
	"testing"
)

func TestLocalizeResultCoverage(t *testing.T) {
	r := LocalizeResult{ComponentsReported: 3, ComponentsKnown: 4}
	if got := r.Coverage(); got != 0.75 {
		t.Errorf("Coverage() = %v, want 0.75", got)
	}
	if (LocalizeResult{}).Coverage() != 0 {
		t.Error("zero-value coverage should be 0")
	}
}

func TestLocalizeResultString(t *testing.T) {
	r := LocalizeResult{
		Diagnosis:          Diagnosis{Culprits: []Culprit{{Component: "db", Onset: 17, Reason: "source"}}},
		SlavesAnswered:     2,
		SlavesTotal:        3,
		ComponentsReported: 2,
		ComponentsKnown:    4,
		Degraded:           true,
	}
	s := r.String()
	for _, want := range []string{"db(", "2/3 slaves", "2/4 components", "DEGRADED"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	full := LocalizeResult{SlavesAnswered: 1, SlavesTotal: 1, ComponentsReported: 1, ComponentsKnown: 1}
	if strings.Contains(full.String(), "DEGRADED") {
		t.Errorf("full-coverage result marked degraded: %q", full.String())
	}
}
