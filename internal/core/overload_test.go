package core

import (
	"reflect"
	"testing"
	"time"

	"fchain/internal/metric"
)

// TestBudgeterTiers exercises the tier ladder directly: no budgeter means
// full, an expired deadline means skipped, and a tightening budget walks
// full → reduced → trend as the per-task share shrinks below the measured
// full-tier cost.
func TestBudgeterTiers(t *testing.T) {
	var nilBD *budgeter
	if got := nilBD.tier(); got != TierFull {
		t.Errorf("nil budgeter tier = %q, want full", got)
	}
	if bd := newBudgeter(time.Time{}, 10); bd != nil {
		t.Error("zero deadline should disable budgeting")
	}

	expired := newBudgeter(time.Now().Add(-time.Second), 10)
	if got := expired.tier(); got != TierSkipped {
		t.Errorf("expired deadline tier = %q, want skipped", got)
	}

	bd := newBudgeter(time.Now().Add(time.Hour), 4)
	if got := bd.tier(); got != TierFull {
		t.Errorf("first task tier = %q, want full (no estimate yet)", got)
	}
	// Report an absurd full-tier cost: an hour of budget across 3 remaining
	// tasks is far below half the mean, so the ladder drops to trend.
	bd.observe((10 * time.Hour).Nanoseconds(), TierFull)
	if got := bd.tier(); got != TierTrend {
		t.Errorf("starved budget tier = %q, want trend", got)
	}

	// A mean comfortably below the per-task share keeps the full tier.
	rich := newBudgeter(time.Now().Add(time.Hour), 4)
	rich.tier()
	rich.observe(int64(time.Millisecond), TierFull)
	if got := rich.tier(); got != TierFull {
		t.Errorf("rich budget tier = %q, want full", got)
	}
}

func TestReducedCfg(t *testing.T) {
	cfg := DefaultConfig()
	r := reducedCfg(cfg)
	if r.LookBack >= cfg.LookBack {
		t.Errorf("reduced LookBack = %d, want < %d", r.LookBack, cfg.LookBack)
	}
	if floor := 3*cfg.SmoothWindow + 8; r.LookBack < floor {
		t.Errorf("reduced LookBack = %d, below floor %d", r.LookBack, floor)
	}
	if r.Bootstraps > 50 {
		t.Errorf("reduced Bootstraps = %d, want <= 50", r.Bootstraps)
	}
	// A window already at the floor must not grow.
	tiny := cfg
	tiny.LookBack = 10
	if r := reducedCfg(tiny); r.LookBack != 10 {
		t.Errorf("reduced tiny LookBack = %d, want unchanged 10", r.LookBack)
	}
}

// TestExpiredDeadlineDeterministic: a deadline already in the past yields a
// fully-skipped, Truncated analysis — and that degenerate output is still
// bit-identical between the serial and parallel paths, which is what the
// deadline-truncated golden relies on.
func TestExpiredDeadlineDeterministic(t *testing.T) {
	const horizon = 600
	monitors, _ := feedMonitors(t, 6, horizon)
	deadline := time.Now().Add(-time.Second)
	serial, _ := AnalyzeMonitorsDeadline(monitors, horizon-1, 0, 1, deadline)
	for _, rep := range serial {
		if !rep.Truncated || rep.Tier != TierSkipped {
			t.Fatalf("component %s: Tier=%q Truncated=%v, want skipped+truncated", rep.Component, rep.Tier, rep.Truncated)
		}
		if len(rep.Changes) != 0 {
			t.Fatalf("component %s: %d changes from a skipped analysis", rep.Component, len(rep.Changes))
		}
	}
	for _, workers := range []int{2, 4} {
		par, _ := AnalyzeMonitorsDeadline(monitors, horizon-1, 0, workers, deadline)
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: skipped-analysis reports differ from serial", workers)
		}
	}
}

// TestGenerousDeadlineMatchesUnbudgeted: with ample budget the budgeted path
// must not perturb the analysis — same reports as the no-deadline engine.
func TestGenerousDeadlineMatchesUnbudgeted(t *testing.T) {
	const horizon = 600
	monitors, _ := feedMonitors(t, 4, horizon)
	plain, _ := AnalyzeMonitors(monitors, horizon-1, 0, 1)
	budgeted, _ := AnalyzeMonitorsDeadline(monitors, horizon-1, 0, 1, time.Now().Add(time.Hour))
	if !reflect.DeepEqual(plain, budgeted) {
		t.Error("generous deadline changed the analysis output")
	}
	for _, rep := range budgeted {
		if rep.Truncated {
			t.Errorf("component %s truncated under a one-hour budget", rep.Component)
		}
	}
}

// TestPanicQuarantine injects a panic into one (component, metric) selection
// kernel and checks the blast radius: that stream is quarantined and flagged,
// every other stream still analyzes, nothing unwinds, and after the cooldown
// the stream is probed and re-admitted.
func TestPanicQuarantine(t *testing.T) {
	const horizon = 600
	// The cooldown must outlive the first two analysis passes even under the
	// race detector's slowdown, or the mid-quarantine check below races the
	// probe re-admission.
	cfg := Config{LookBack: 100, QuarantineCooldown: 2 * time.Second}
	mon := NewMonitor("c0", cfg)
	other := NewMonitor("c1", cfg)
	for ts := int64(0); ts < horizon; ts++ {
		for _, k := range metric.Kinds {
			v := float64(40 + ts%23 + int64(k))
			if ts >= horizon-40 {
				v += 35
			}
			if err := mon.Observe(ts, k, v); err != nil {
				t.Fatal(err)
			}
			if err := other.Observe(ts, k, v); err != nil {
				t.Fatal(err)
			}
		}
	}

	SetAnalyzeHook(func(component string, k metric.Kind) {
		if component == "c0" && k == metric.CPU {
			panic("injected kernel fault")
		}
	})
	defer SetAnalyzeHook(nil)

	reports, stats := AnalyzeMonitors([]*Monitor{mon, other}, horizon-1, 0, 1)
	if stats.Panics != 1 {
		t.Errorf("Panics = %d, want 1", stats.Panics)
	}
	if got := reports[0].Quarantined; len(got) != 1 || got[0] != metric.CPU.String() {
		t.Errorf("c0 Quarantined = %v, want [cpu]", got)
	}
	if len(reports[1].Quarantined) != 0 {
		t.Errorf("c1 Quarantined = %v, want none", reports[1].Quarantined)
	}
	if len(reports[1].Changes) == 0 {
		t.Error("c1 produced no changes; the panic leaked past its stream")
	}
	qm := mon.QuarantinedMetrics()
	if qm[metric.CPU.String()] != "injected kernel fault" {
		t.Errorf("QuarantinedMetrics = %v, want cpu: injected kernel fault", qm)
	}

	// While quarantined, the stream is skipped without re-running the hook
	// (no new panic) and keeps its quality flag.
	SetAnalyzeHook(nil)
	reports, stats = AnalyzeMonitors([]*Monitor{mon}, horizon-1, 0, 1)
	if stats.Panics != 0 {
		t.Errorf("quarantined re-analysis Panics = %d, want 0", stats.Panics)
	}
	if got := reports[0].Quarantined; len(got) != 1 || got[0] != metric.CPU.String() {
		t.Errorf("quarantined re-analysis Quarantined = %v, want [cpu]", got)
	}

	// After the cooldown the stream is probed; with the fault gone it
	// re-admits cleanly.
	time.Sleep(2100 * time.Millisecond)
	reports, stats = AnalyzeMonitors([]*Monitor{mon}, horizon-1, 0, 1)
	if len(reports[0].Quarantined) != 0 || stats.Panics != 0 {
		t.Errorf("post-cooldown Quarantined = %v Panics = %d, want clean re-admission", reports[0].Quarantined, stats.Panics)
	}
	if len(mon.QuarantinedMetrics()) != 0 {
		t.Errorf("QuarantinedMetrics after re-admission = %v, want empty", mon.QuarantinedMetrics())
	}
}

// TestQuarantineReTrip: a probe that panics again re-trips the quarantine.
func TestQuarantineReTrip(t *testing.T) {
	cfg := Config{LookBack: 100, QuarantineCooldown: 30 * time.Millisecond}
	mon := NewMonitor("c0", cfg)
	for ts := int64(0); ts < 400; ts++ {
		for _, k := range metric.Kinds {
			if err := mon.Observe(ts, k, float64(40+ts%23)); err != nil {
				t.Fatal(err)
			}
		}
	}
	SetAnalyzeHook(func(component string, k metric.Kind) {
		if k == metric.Memory {
			panic("still broken")
		}
	})
	defer SetAnalyzeHook(nil)

	_, stats := AnalyzeMonitors([]*Monitor{mon}, 399, 0, 1)
	if stats.Panics != 1 {
		t.Fatalf("first pass Panics = %d, want 1", stats.Panics)
	}
	time.Sleep(40 * time.Millisecond)
	_, stats = AnalyzeMonitors([]*Monitor{mon}, 399, 0, 1)
	if stats.Panics != 1 {
		t.Errorf("probe pass Panics = %d, want 1 (re-trip)", stats.Panics)
	}
	if len(mon.QuarantinedMetrics()) != 1 {
		t.Errorf("stream not re-quarantined after failing probe: %v", mon.QuarantinedMetrics())
	}
}

// TestTrendMetricDetectsShift checks the TierTrend kernel end to end through
// analyzeMetric: a clear level shift is reported with a plausible onset, and
// the report is marked as trend-tier output by the caller.
func TestTrendMetricDetectsShift(t *testing.T) {
	cfg := Config{LookBack: 100}
	mon := NewMonitor("c0", cfg)
	const horizon = 600
	for ts := int64(0); ts < horizon; ts++ {
		v := 40 + float64(ts%7) // low-variance baseline
		if ts >= horizon-30 {
			v += 200 // unmistakable shift inside the look-back window
		}
		if err := mon.Observe(ts, metric.CPU, v); err != nil {
			t.Fatal(err)
		}
	}
	a := getArena()
	defer putArena(a)
	ch, ok, st := mon.analyzeMetric(horizon-1, metric.CPU, mon.cfg, a, nil, -1, TierTrend)
	if st != metricOK {
		t.Fatalf("status = %d, want ok", st)
	}
	if !ok {
		t.Fatal("trend kernel missed a 200-point level shift")
	}
	if ch.Onset < horizon-40 || ch.Onset > horizon {
		t.Errorf("trend onset = %d, want near %d", ch.Onset, horizon-30)
	}
	if ch.Magnitude <= 0 || ch.Expected <= 0 {
		t.Errorf("trend change missing magnitude/band: %+v", ch)
	}
}
