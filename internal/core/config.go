// Package core implements FChain's fault localization pipeline — the
// paper's primary contribution:
//
//   - normal fluctuation modeling (slave side): an online Markov-chain
//     predictor per (component, metric) learns normal workload-driven
//     fluctuation (model.go);
//   - abnormal change point selection (slave side): CUSUM+bootstrap change
//     points, magnitude-outlier filtering, predictability filtering with a
//     burstiness-adaptive FFT threshold, and tangent-based rollback to the
//     manifestation onset (select.go);
//   - integrated fault diagnosis (master side): sorting components into an
//     abnormal-change propagation chain, concurrent-fault grouping,
//     external-factor (workload change) detection, and dependency-based
//     filtering of spurious propagation paths (diagnose.go);
//   - online pinpointing validation: scaling the implicated resource on
//     each pinpointed component and watching the SLO (validate.go).
package core

import (
	"runtime"
	"time"

	"fchain/internal/ingest"
)

// Config holds every FChain tuning knob, with defaults matching the paper's
// §III-A configuration.
type Config struct {
	// LookBack is W, the look-back window in seconds examined before the
	// SLO violation time tv (default 100; the paper uses 500 for the
	// slow-manifesting Hadoop DiskHog).
	LookBack int
	// ConcurrencyThreshold is the maximum difference (seconds) between two
	// components' abnormal-change onsets for them to be treated as
	// concurrent faults (default 2).
	ConcurrencyThreshold int64
	// BurstWindow is Q, the half-window in seconds around a change point
	// used for FFT burst extraction (default 20).
	BurstWindow int
	// TopFreqFrac is the fraction of the frequency spectrum treated as
	// high frequencies when synthesizing the burst signal (default 0.9).
	TopFreqFrac float64
	// BurstPercentile is the percentile of the burst magnitude used as the
	// expected prediction error (default 90).
	BurstPercentile float64
	// TangentTol is the relative tangent difference below which adjacent
	// change points are considered part of the same manifestation during
	// rollback (default 0.1).
	TangentTol float64
	// SmoothWindow is the moving-average width applied before change point
	// detection (default 5).
	SmoothWindow int
	// OutlierSigma is the magnitude-outlier threshold in standard
	// deviations for PAL-style filtering (default 1.5).
	OutlierSigma float64
	// Bootstraps and CPConfidence configure CUSUM+bootstrap change point
	// detection (defaults 200 and 0.95).
	Bootstraps   int
	CPConfidence float64
	// MarkovBins and MarkovDecay configure the online prediction model
	// (defaults 40 and 0.999).
	MarkovBins  int
	MarkovDecay float64
	// RingCapacity bounds the per-metric sample history kept by a slave
	// (default LookBack + 2*BurstWindow + 1300: the extra history lets the
	// selection stage calibrate against fluctuation patterns the model has
	// already seen — it must span several workload burst cycles or a burst
	// after a calm stretch reads as abnormal).
	RingCapacity int
	// TrendNoiseFrac controls external-factor trend classification
	// (default 0.5 standard deviations).
	TrendNoiseFrac float64
	// SelfCalibration scales the recent-history prediction-error
	// percentile that augments the FFT expected error: a metric whose
	// model was already erring badly before the look-back window gets a
	// proportionally higher selection bar (default 2.0).
	SelfCalibration float64
	// ContextMaxFactor scales the largest prediction error seen in the
	// pre-window context into a selection floor: a change whose error
	// stays below the error ceiling the model already exhibited on this
	// metric matches fluctuation that was "seen before" (the paper's
	// predictability intuition) and is not abnormal (default 1.05).
	ContextMaxFactor float64
	// SelectionMargin is the factor by which the prediction error must
	// exceed the expected error for a change point to be selected; it
	// suppresses threshold-kissing selections on ordinary workload
	// fluctuations (default 1.3).
	SelectionMargin float64
	// MagnitudeFactor admits a change point whose mean-shift magnitude
	// exceeds MagnitudeFactor × the FFT expected error even when its
	// per-step prediction error does not, provided the shift persists to
	// the end of the window: gradual manifestations (memory leaks,
	// bottleneck queue growth) move the metric far beyond anything the
	// model predicted while keeping each one-second step small, whereas a
	// transient workload burst has reverted by the time the anomaly is
	// analyzed (default 2.5).
	MagnitudeFactor float64
	// PersistFraction is the fraction of the mean shift that must remain
	// at the window's final sample for the magnitude bypass to apply
	// (default 0.8).
	PersistFraction float64
	// EscapeDwell is the number of trailing seconds the (smoothed) metric
	// must dwell above its historical 99th percentile for the range-escape
	// selection path to fire. Workload bursts visit extreme levels only
	// briefly; a fault that pins a metric at a level the model almost
	// never saw, for several times any burst duration, is abnormal even
	// when each one-second step looks unremarkable (default 10).
	EscapeDwell int
	// ValueStdFactor additionally requires the bypassing shift to exceed
	// ValueStdFactor × the metric's historical value variability, so that
	// ordinary periodic swings (whose low-frequency energy the burst
	// signal deliberately excludes) never qualify (default 1.4).
	ValueStdFactor float64

	// MinRelMagnitude, when positive, discards candidate change points whose
	// mean-shift magnitude is below MinRelMagnitude × the metric's mean
	// absolute level over the pre-window context. Per-component monitoring
	// at mesh scale needs it: with hundreds of monitored components, even a
	// tiny per-metric false-selection rate on operationally meaningless
	// shifts (a few percent of an idle metric's level) plants spurious
	// onsets in the propagation chain every single run, and the earliest
	// spurious onset steals the chain's source slot from the real fault.
	// Zero (the default) disables the floor, preserving the paper
	// configuration for the small benchmark applications.
	MinRelMagnitude float64

	// FixedThreshold, when positive, replaces the burstiness-adaptive
	// expected prediction error with a fixed absolute threshold. It exists
	// solely to realize the paper's Fixed-Filtering comparison scheme
	// (§III-A, Fig. 12) and should stay zero in normal use.
	FixedThreshold float64

	// ExternalSpread is the maximum spread (seconds) between the earliest
	// and latest component onsets for an all-components-same-trend anomaly
	// to be attributed to an external factor: a workload surge reaches
	// every tier within a few seconds, while a back-pressure cascade takes
	// tens of seconds per hop (default 6).
	ExternalSpread int64

	// AdaptiveSmoothing chooses the smoothing width per metric from the
	// metric's own noise character instead of using the fixed SmoothWindow
	// — the adaptive smoothing the paper lists as ongoing work after
	// observing that fixed smoothing can distort the change point times of
	// affected components under concurrent faults (§III-C). Noisy metrics
	// (sample-to-sample changes comparable to the overall variation) get a
	// wider window; smooth metrics keep a narrow one.
	AdaptiveSmoothing bool

	// DisableRollback turns off tangent-based onset rollback, reporting
	// each abnormal change point's own time as the onset. It exists for
	// ablation studies; production use should keep rollback on.
	DisableRollback bool

	// AdaptiveLookBack enables the adaptive look-back window scheme the
	// paper lists as ongoing work (§III-F): when the configured window
	// yields no abnormal component at all despite a confirmed SLO
	// violation, the manifestation is slower than the window (the Hadoop
	// DiskHog case) and the analysis retries with progressively longer
	// windows up to MaxLookBack.
	AdaptiveLookBack bool
	// MaxLookBack bounds the adaptive growth (default 500, the paper's
	// largest evaluated window).
	MaxLookBack int

	// ValidationScale is the resource scale-up factor applied during
	// online validation (default 3).
	ValidationScale float64
	// ValidationObserve is how long (seconds) validation watches the SLO
	// after scaling (default 30, matching Table II's ~30 s per component).
	ValidationObserve int
	// ValidationSignificance is the minimum relative improvement of the
	// SLO metric (vs the unscaled control trial) that scaling a culprit
	// alone must achieve for the culprit to be confirmed (default 0.25).
	ValidationSignificance float64

	// ReorderWindow is how many seconds the ingest sanitizer buffers
	// samples to reabsorb out-of-order delivery before releasing them to
	// the model (default 5; negative disables reordering). Only the
	// sanitizing Ingest path uses it; the strict Observe path rejects any
	// time regression outright.
	ReorderWindow int
	// MaxFillGap is the longest collection gap (seconds) the sanitizer
	// repairs by linear interpolation; longer gaps sever the metric's
	// dense history instead (default 10; negative disables filling).
	MaxFillGap int
	// ClampSigma bounds accepted sample magnitudes to
	// mean ± ClampSigma·stddev of the stream seen so far — a last-resort
	// guard against corrupted readings (default 16; negative disables).
	// The default is deliberately generous: genuine fault signatures are a
	// few sigma and must pass untouched.
	ClampSigma float64
	// ClampMinSamples is how many samples the clamp needs before engaging
	// (default 64).
	ClampMinSamples int

	// QuarantineCooldown is how long a metric stream whose selection
	// kernel panicked stays quarantined (skipped with a quality flag)
	// before the engine probes it for re-admission (default 30s). A clean
	// probe re-admits the stream; another panic re-trips the quarantine.
	QuarantineCooldown time.Duration

	// Streaming enables always-on streaming selection (stream.go): every
	// Observe pays a small constant extra cost to keep per-metric sorted
	// context multisets, an incremental CUSUM accumulator, and FFT/kernel
	// memos warm, and Localize at the stream head then runs in roughly the
	// cost of diagnosis alone. Output is bit-identical with the flag on or
	// off — the fast paths substitute provably equal arithmetic and fall
	// back to the batch kernel whenever the state is cold (after a restore,
	// a collection gap, a look-back override, or an analysis at a
	// historical tv). Off by default: pure-batch deployments that localize
	// rarely keep the cheapest possible Observe.
	Streaming bool

	// Parallelism bounds the analysis worker pool that fans abnormal change
	// point selection out per component and, within a component, per metric:
	// 0 (the default) resolves to runtime.GOMAXPROCS(0) at analysis time, 1
	// forces the serial path, and larger values cap the pool. The setting
	// never changes results — every selection task is deterministic per
	// (component, metric, tv), so parallel output is bit-identical to
	// serial. It stays 0 in withDefaults so configurations serialized on one
	// machine do not pin another machine to the wrong core count.
	Parallelism int
}

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config {
	return Config{}.withDefaults()
}

func (c Config) withDefaults() Config {
	if c.LookBack <= 0 {
		c.LookBack = 100
	}
	if c.ConcurrencyThreshold <= 0 {
		c.ConcurrencyThreshold = 2
	}
	if c.BurstWindow <= 0 {
		c.BurstWindow = 20
	}
	if c.TopFreqFrac <= 0 || c.TopFreqFrac > 1 {
		c.TopFreqFrac = 0.9
	}
	if c.BurstPercentile <= 0 || c.BurstPercentile > 100 {
		c.BurstPercentile = 90
	}
	if c.TangentTol <= 0 {
		c.TangentTol = 0.1
	}
	if c.SmoothWindow <= 0 {
		c.SmoothWindow = 5
	}
	if c.OutlierSigma <= 0 {
		c.OutlierSigma = 1.5
	}
	if c.Bootstraps <= 0 {
		c.Bootstraps = 200
	}
	if c.CPConfidence <= 0 || c.CPConfidence > 1 {
		c.CPConfidence = 0.95
	}
	if c.MarkovBins <= 0 {
		c.MarkovBins = 40
	}
	if c.MarkovDecay <= 0 || c.MarkovDecay > 1 {
		c.MarkovDecay = 0.999
	}
	if c.RingCapacity <= 0 {
		c.RingCapacity = c.LookBack + 2*c.BurstWindow + 1300
	}
	if c.TrendNoiseFrac <= 0 {
		c.TrendNoiseFrac = 0.5
	}
	if c.SelfCalibration <= 0 {
		c.SelfCalibration = 2.0
	}
	if c.ContextMaxFactor <= 0 {
		c.ContextMaxFactor = 1.05
	}
	if c.SelectionMargin <= 0 {
		c.SelectionMargin = 1.3
	}
	if c.MagnitudeFactor <= 0 {
		c.MagnitudeFactor = 2.5
	}
	if c.PersistFraction <= 0 {
		c.PersistFraction = 0.8
	}
	if c.ValueStdFactor <= 0 {
		c.ValueStdFactor = 1.4
	}
	if c.EscapeDwell <= 0 {
		c.EscapeDwell = 10
	}
	if c.ExternalSpread <= 0 {
		c.ExternalSpread = 6
	}
	if c.MaxLookBack <= 0 {
		c.MaxLookBack = 500
	}
	if c.MaxLookBack < c.LookBack {
		c.MaxLookBack = c.LookBack
	}
	if c.ValidationScale <= 0 {
		c.ValidationScale = 3
	}
	if c.ValidationObserve <= 0 {
		c.ValidationObserve = 30
	}
	if c.ValidationSignificance <= 0 {
		c.ValidationSignificance = 0.25
	}
	if c.ReorderWindow == 0 {
		c.ReorderWindow = ingest.DefaultReorderWindow
	}
	if c.MaxFillGap == 0 {
		c.MaxFillGap = ingest.DefaultMaxFillGap
	}
	if c.ClampSigma == 0 {
		c.ClampSigma = ingest.DefaultClampSigma
	}
	if c.ClampMinSamples == 0 {
		c.ClampMinSamples = ingest.DefaultClampMinSamples
	}
	if c.QuarantineCooldown <= 0 {
		c.QuarantineCooldown = defaultQuarantineCooldown
	}
	return c
}

// workers resolves the Parallelism knob against the machine: 0 means
// GOMAXPROCS, anything below 1 is clamped to the serial path.
func (c Config) workers() int {
	if c.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if c.Parallelism < 1 {
		return 1
	}
	return c.Parallelism
}

// ingestConfig maps the data-quality knobs onto the sanitizer's own config.
func (c Config) ingestConfig() ingest.Config {
	return ingest.Config{
		ReorderWindow:   c.ReorderWindow,
		MaxFillGap:      c.MaxFillGap,
		ClampSigma:      c.ClampSigma,
		ClampMinSamples: c.ClampMinSamples,
	}
}
