package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"fchain/internal/metric"
)

// feedAll observes one sample per metric kind at time t, derived
// deterministically from (t, kind) so different feeds agree.
func feedAll(t *testing.T, m *Monitor, ts int64) {
	t.Helper()
	for _, k := range metric.Kinds {
		v := float64((ts*int64(k)*7)%13) + 0.25*float64(int(k))
		if err := m.Observe(ts, k, v); err != nil {
			t.Fatal(err)
		}
	}
}

// monitorJSON snapshots m and marshals it: two monitors with equal bytes here
// hold byte-identical model, history, and streaming state.
func monitorJSON(t *testing.T, m *Monitor) []byte {
	t.Helper()
	raw, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// advanceFloors mimics the primary slave's bookkeeping: after a delta is
// shipped, each metric's floor moves to its last shipped sample.
func advanceFloors(floors map[string]int64, d *ReplDelta) {
	for name, samples := range d.Samples {
		if len(samples) > 0 {
			floors[name] = samples[len(samples)-1].T
		}
	}
}

// TestReplDeltaRoundTrip drives the full replication cycle — full snapshot,
// then repeated incremental deltas across a JSON wire trip — and requires the
// shadow monitor to match the primary byte-identically after every apply.
// This is the property warm promotion rests on: a promoted shadow must answer
// analyze exactly as the dead primary would have.
func TestReplDeltaRoundTrip(t *testing.T) {
	cfg := Config{}
	primary := NewMonitor("c", cfg)
	shadow := NewMonitor("c", cfg)

	ts := int64(1)
	for ; ts <= 50; ts++ {
		feedAll(t, primary, ts)
	}
	snap := primary.Snapshot()
	if err := shadow.ApplyDelta(&ReplDelta{Component: "c", Full: snap}); err != nil {
		t.Fatalf("full apply: %v", err)
	}
	if a, b := monitorJSON(t, primary), monitorJSON(t, shadow); !bytes.Equal(a, b) {
		t.Fatal("shadow differs from primary after full snapshot apply")
	}
	floors := make(map[string]int64, len(snap.LastT))
	for name, last := range snap.LastT {
		floors[name] = last
	}

	var d ReplDelta
	for round := 0; round < 3; round++ {
		for end := ts + 20; ts < end; ts++ {
			feedAll(t, primary, ts)
		}
		changed, ok := primary.DeltaInto(&d, floors)
		if !ok || !changed {
			t.Fatalf("round %d: DeltaInto = (changed=%v, ok=%v), want incremental delta", round, changed, ok)
		}
		// Wire trip: the standby applies what JSON decoding reconstructs, not
		// the primary's in-memory buffers.
		raw, err := json.Marshal(&d)
		if err != nil {
			t.Fatal(err)
		}
		var wire ReplDelta
		if err := json.Unmarshal(raw, &wire); err != nil {
			t.Fatal(err)
		}
		if err := shadow.ApplyDelta(&wire); err != nil {
			t.Fatalf("round %d: incremental apply: %v", round, err)
		}
		advanceFloors(floors, &d)
		if a, b := monitorJSON(t, primary), monitorJSON(t, shadow); !bytes.Equal(a, b) {
			t.Fatalf("round %d: shadow diverged from primary after incremental apply", round)
		}
	}

	// A tick with no new samples extracts nothing but stays on the
	// incremental path.
	if changed, ok := primary.DeltaInto(&d, floors); changed || !ok {
		t.Fatalf("quiet tick: DeltaInto = (changed=%v, ok=%v), want (false, true)", changed, ok)
	}
}

// TestReplDeltaFullFallbacks enumerates the conditions under which the
// incremental path must refuse (ok=false) and force a full-snapshot ship.
func TestReplDeltaFullFallbacks(t *testing.T) {
	cfg := Config{RingCapacity: 8}

	t.Run("nil floors", func(t *testing.T) {
		m := NewMonitor("c", cfg)
		feedAll(t, m, 1)
		var d ReplDelta
		if _, ok := m.DeltaInto(&d, nil); ok {
			t.Fatal("nil floors must force a full ship")
		}
	})

	t.Run("first samples since last ship", func(t *testing.T) {
		m := NewMonitor("c", cfg)
		floors := map[string]int64{} // shipped while the monitor was empty
		feedAll(t, m, 1)
		var d ReplDelta
		if _, ok := m.DeltaInto(&d, floors); ok {
			t.Fatal("a metric's first samples must force a full ship")
		}
	})

	t.Run("eviction past the floor", func(t *testing.T) {
		m := NewMonitor("c", cfg)
		feedAll(t, m, 1)
		floors := make(map[string]int64)
		for _, k := range metric.Kinds {
			floors[k.String()] = 1
		}
		// RingCapacity is 8: twenty more samples evict t=2, the first sample
		// past the floor.
		for ts := int64(2); ts <= 21; ts++ {
			feedAll(t, m, ts)
		}
		var d ReplDelta
		if _, ok := m.DeltaInto(&d, floors); ok {
			t.Fatal("eviction past the floor must force a full ship")
		}
	})

	t.Run("floor ahead of the monitor", func(t *testing.T) {
		m := NewMonitor("c", cfg)
		feedAll(t, m, 5)
		floors := make(map[string]int64)
		for _, k := range metric.Kinds {
			floors[k.String()] = 9 // claims a ship the monitor never saw
		}
		var d ReplDelta
		if _, ok := m.DeltaInto(&d, floors); ok {
			t.Fatal("a floor ahead of the monitor's history must force a full ship")
		}
	})
}

// TestReplDeltaApplyRejectsGaps pins the standby-side safety net: a delta
// whose Base precondition does not match the shadow's state is refused with
// ErrReplGap before any mutation, so a NAK-and-full-resend always recovers.
func TestReplDeltaApplyRejectsGaps(t *testing.T) {
	cfg := Config{}

	build := func(upTo int64) *Monitor {
		m := NewMonitor("c", cfg)
		for ts := int64(1); ts <= upTo; ts++ {
			feedAll(t, m, ts)
		}
		return m
	}
	baseAt := func(ts int64) map[string]int64 {
		out := make(map[string]int64)
		for _, k := range metric.Kinds {
			out[k.String()] = ts
		}
		return out
	}

	t.Run("empty shadow, incremental delta", func(t *testing.T) {
		shadow := NewMonitor("c", cfg)
		err := shadow.ApplyDelta(&ReplDelta{Component: "c", Base: baseAt(10),
			Samples: map[string][]ReplSample{"cpu": {{T: 11, V: 1}}}})
		if !errors.Is(err, ErrReplGap) {
			t.Fatalf("err = %v, want ErrReplGap", err)
		}
	})

	t.Run("base behind the shadow", func(t *testing.T) {
		shadow := build(10)
		before := monitorJSON(t, shadow)
		err := shadow.ApplyDelta(&ReplDelta{Component: "c", Base: baseAt(5),
			Samples: map[string][]ReplSample{"cpu": {{T: 6, V: 1}}}})
		if !errors.Is(err, ErrReplGap) {
			t.Fatalf("err = %v, want ErrReplGap", err)
		}
		if !bytes.Equal(before, monitorJSON(t, shadow)) {
			t.Fatal("rejected delta mutated the shadow")
		}
	})

	t.Run("base ahead of the shadow", func(t *testing.T) {
		shadow := build(10)
		err := shadow.ApplyDelta(&ReplDelta{Component: "c", Base: baseAt(20)})
		if !errors.Is(err, ErrReplGap) {
			t.Fatalf("err = %v, want ErrReplGap", err)
		}
	})

	t.Run("wrong component", func(t *testing.T) {
		shadow := build(3)
		err := shadow.ApplyDelta(&ReplDelta{Component: "other", Base: baseAt(3)})
		if err == nil || errors.Is(err, ErrReplGap) {
			t.Fatalf("err = %v, want a non-gap component mismatch", err)
		}
	})
}

// TestReplDeltaSteadyStateAllocs is the perf ratchet on the extraction path:
// once d's buffers are sized, re-extracting a delta must not allocate, so a
// replication tick's cost on a quiet component is a few ring reads — nothing
// the Observe hot path ever contends with.
func TestReplDeltaSteadyStateAllocs(t *testing.T) {
	m := NewMonitor("c", Config{})
	for ts := int64(1); ts <= 100; ts++ {
		feedAll(t, m, ts)
	}
	floors := make(map[string]int64)
	for _, k := range metric.Kinds {
		floors[k.String()] = 60 // every tick re-extracts the same 40-sample tail
	}
	var d ReplDelta
	if changed, ok := m.DeltaInto(&d, floors); !changed || !ok {
		t.Fatalf("warm-up DeltaInto = (%v, %v), want (true, true)", changed, ok)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if changed, ok := m.DeltaInto(&d, floors); !changed || !ok {
			t.Fatal("steady-state extraction fell off the incremental path")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state DeltaInto allocates %.1f times per run, want 0", allocs)
	}
}
