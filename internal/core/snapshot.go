package core

import (
	"fmt"

	"fchain/internal/markov"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// MonitorSnapshot is the complete serializable state of a Monitor: the
// learned prediction model, the retained sample and prediction-error tails,
// and the last accepted timestamp per metric. A slave checkpoints these so
// a crashed-and-restarted daemon resumes localization-ready instead of
// spending the whole self-calibration history relearning normal fluctuation.
//
// Maps are keyed by metric.Kind.String() so checkpoints stay readable and
// stable across reorderings of the Kind constants.
type MonitorSnapshot struct {
	Component string                             `json:"component"`
	Models    map[string]*markov.Snapshot        `json:"models"`
	Samples   map[string]timeseries.RingSnapshot `json:"samples"`
	Errs      map[string]timeseries.RingSnapshot `json:"errs"`
	LastT     map[string]int64                   `json:"last_t,omitempty"`
}

// Snapshot captures the monitor's current state. The snapshot shares no
// storage with the monitor.
func (m *Monitor) Snapshot() *MonitorSnapshot {
	s := &MonitorSnapshot{
		Component: m.component,
		Models:    make(map[string]*markov.Snapshot, metric.NumKinds),
		Samples:   make(map[string]timeseries.RingSnapshot, metric.NumKinds),
		Errs:      make(map[string]timeseries.RingSnapshot, metric.NumKinds),
		LastT:     make(map[string]int64, metric.NumKinds),
	}
	for _, k := range metric.Kinds {
		name := k.String()
		sh := &m.shards[k]
		sh.mu.Lock()
		s.Models[name] = sh.model.Snapshot()
		s.Samples[name] = sh.samples.Snapshot()
		s.Errs[name] = sh.errs.Snapshot()
		if sh.hasLast {
			s.LastT[name] = sh.lastT
		}
		sh.mu.Unlock()
	}
	return s
}

// Restore replaces the monitor's per-metric state with the snapshot's,
// validating every piece; on error the monitor is left unchanged. Metrics
// absent from the snapshot keep their fresh state. Ring capacities follow
// the monitor's current configuration, not the snapshot's: a restart with a
// smaller RingCapacity keeps only the newest retained samples.
func (m *Monitor) Restore(s *MonitorSnapshot) error {
	if s == nil {
		return fmt.Errorf("core: nil monitor snapshot")
	}
	if s.Component != m.component {
		return fmt.Errorf("core: snapshot is for component %q, monitor is %q", s.Component, m.component)
	}
	models := make(map[metric.Kind]*markov.Predictor, len(s.Models))
	for name, snap := range s.Models {
		k, err := metric.ParseKind(name)
		if err != nil {
			return fmt.Errorf("core: snapshot model: %w", err)
		}
		p, err := markov.FromSnapshot(snap)
		if err != nil {
			return fmt.Errorf("core: snapshot model %s: %w", name, err)
		}
		models[k] = p
	}
	restoreRings := func(src map[string]timeseries.RingSnapshot, what string) (map[metric.Kind]*timeseries.Ring, error) {
		out := make(map[metric.Kind]*timeseries.Ring, len(src))
		for name, snap := range src {
			k, err := metric.ParseKind(name)
			if err != nil {
				return nil, fmt.Errorf("core: snapshot %s ring: %w", what, err)
			}
			snap.Cap = m.cfg.RingCapacity
			r, err := timeseries.RingFromSnapshot(snap)
			if err != nil {
				return nil, fmt.Errorf("core: snapshot %s ring %s: %w", what, name, err)
			}
			out[k] = r
		}
		return out, nil
	}
	samples, err := restoreRings(s.Samples, "sample")
	if err != nil {
		return err
	}
	errRings, err := restoreRings(s.Errs, "error")
	if err != nil {
		return err
	}
	lastT := make(map[metric.Kind]int64, len(s.LastT))
	for name, t := range s.LastT {
		k, err := metric.ParseKind(name)
		if err != nil {
			return fmt.Errorf("core: snapshot last_t: %w", err)
		}
		lastT[k] = t
	}
	for k, p := range models {
		sh := &m.shards[k]
		sh.mu.Lock()
		sh.model = p
		sh.mu.Unlock()
	}
	for k, r := range samples {
		sh := &m.shards[k]
		sh.mu.Lock()
		sh.samples = r
		sh.mu.Unlock()
	}
	for k, r := range errRings {
		sh := &m.shards[k]
		sh.mu.Lock()
		sh.errs = r
		sh.mu.Unlock()
	}
	for k, t := range lastT {
		sh := &m.shards[k]
		sh.mu.Lock()
		sh.lastT = t
		sh.hasLast = true
		sh.mu.Unlock()
	}
	// Rebuild streaming state from the restored rings. The rebuild is a pure
	// function of the retained samples, so a restarted daemon's streaming
	// state — and therefore its analysis output — matches what any other
	// process restoring the same checkpoint computes.
	for _, k := range metric.Kinds {
		sh := &m.shards[k]
		sh.mu.Lock()
		if sh.stream != nil {
			sh.stream.rebuild(sh)
		}
		sh.mu.Unlock()
	}
	return nil
}
