package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"fchain/internal/metric"
)

// feedMonitors builds n warmed-up monitors with per-component signal
// shapes; components past the midpoint get a level shift near the end so
// some reports carry abnormal changes and some do not.
func feedMonitors(t *testing.T, n int, horizon int64) ([]*Monitor, []Config) {
	t.Helper()
	monitors := make([]*Monitor, n)
	cfgs := make([]Config, n)
	for i := range monitors {
		cfg := Config{LookBack: 100}
		mon := NewMonitor(fmt.Sprintf("c%d", i), cfg)
		for ts := int64(0); ts < horizon; ts++ {
			for _, k := range metric.Kinds {
				v := float64(40+(ts+int64(i)*7)%23) + float64(int64(k))
				if i >= n/2 && ts >= horizon-40 {
					v += 35 // injected level shift
				}
				if err := mon.Observe(ts, k, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		monitors[i] = mon
		cfgs[i] = cfg
	}
	return monitors, cfgs
}

// TestAnalyzeMonitorsMatchesSerial is the determinism contract of the
// parallel engine: the same monitors analyzed at any worker count must
// produce identical reports in identical order.
func TestAnalyzeMonitorsMatchesSerial(t *testing.T) {
	const horizon = 600
	monitors, _ := feedMonitors(t, 6, horizon)
	serial, serialStats := AnalyzeMonitors(monitors, horizon-1, 0, 1)
	if serialStats.Tasks != 6*metric.NumKinds {
		t.Errorf("serial Tasks = %d, want %d", serialStats.Tasks, 6*metric.NumKinds)
	}
	abnormal := 0
	for _, r := range serial {
		if len(r.Changes) > 0 {
			abnormal++
		}
	}
	if abnormal == 0 {
		t.Fatal("test signal produced no abnormal components; the equality check would be vacuous")
	}
	for _, workers := range []int{2, 4, 7} {
		par, stats := AnalyzeMonitors(monitors, horizon-1, 0, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: reports differ from serial\nserial: %+v\nparallel: %+v", workers, serial, par)
		}
		if stats.Tasks != serialStats.Tasks {
			t.Errorf("workers=%d: Tasks = %d, want %d", workers, stats.Tasks, serialStats.Tasks)
		}
		if stats.Select.Count == 0 {
			t.Errorf("workers=%d: no selection latencies recorded", workers)
		}
	}
}

// TestMonitorConcurrentObserveAnalyze drives collection and analysis into
// one Monitor from many goroutines at once — exactly the slave daemon's
// shape, where the ingest loop and the master's analyze requests overlap.
// Run under -race this checks the per-metric shard locking; the assertions
// check that analysis still sees coherent, non-empty state.
func TestMonitorConcurrentObserveAnalyze(t *testing.T) {
	cfg := Config{LookBack: 100}
	mon := NewMonitor("c", cfg)
	const warm = 500
	for ts := int64(0); ts < warm; ts++ {
		for _, k := range metric.Kinds {
			if err := mon.Observe(ts, k, float64(40+ts%23)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var wg sync.WaitGroup
	// One writer per metric: Observe requires per-metric monotone time, and
	// a real collector feeds each attribute stream independently.
	for _, k := range metric.Kinds {
		wg.Add(1)
		go func(k metric.Kind) {
			defer wg.Done()
			for ts := int64(warm); ts < warm+2000; ts++ {
				var err error
				// Exercise both ingest paths: the direct one and the
				// sanitizing one.
				if k%2 == 0 {
					err = mon.Ingest(ts, k, float64(40+ts%23))
				} else {
					err = mon.Observe(ts, k, float64(40+ts%23))
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(k)
	}
	// Concurrent analyzers and a quality poller racing the writers.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				report := mon.Analyze(warm - 1)
				if report.Component != "c" {
					t.Errorf("report for %q, want c", report.Component)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 200; j++ {
			mon.Quality()
		}
	}()
	wg.Wait()

	// The monitor must still be fully functional after the storm.
	if report := mon.Analyze(warm + 1999); report.Component != "c" {
		t.Errorf("post-storm report for %q, want c", report.Component)
	}
}

// TestLocalizerConcurrentObserveAnalyze stresses the public facade the way
// a daemon uses it: per-component feeders racing whole-system Analyze
// calls.
func TestLocalizerConcurrentObserveAnalyze(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	loc := NewLocalizer(Config{LookBack: 100}, names)
	const warm = 400
	for ts := int64(0); ts < warm; ts++ {
		for _, c := range names {
			for _, k := range metric.Kinds {
				if err := loc.Observe(c, ts, k, float64(30+ts%17)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	var wg sync.WaitGroup
	for _, c := range names {
		wg.Add(1)
		go func(c string) {
			defer wg.Done()
			for ts := int64(warm); ts < warm+800; ts++ {
				for _, k := range metric.Kinds {
					if err := loc.Observe(c, ts, k, float64(30+ts%17)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(c)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var reports []ComponentReport
			for j := 0; j < 25; j++ {
				reports = loc.AnalyzeInto(reports[:0], warm-1)
				if len(reports) != len(names) {
					t.Errorf("got %d reports, want %d", len(reports), len(names))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestLatencyHist checks the log2 bucketing, merge, and quantile edges the
// pool statistics rely on.
func TestLatencyHist(t *testing.T) {
	var h LatencyHist
	for _, ns := range []int64{100, 200, 1000, 1_000_000} {
		h.Observe(ns)
	}
	if h.Count != 4 {
		t.Fatalf("Count = %d, want 4", h.Count)
	}
	if h.MaxNS != 1_000_000 {
		t.Errorf("MaxNS = %d, want 1000000", h.MaxNS)
	}
	if mean := h.MeanNS(); mean != (100+200+1000+1_000_000)/4 {
		t.Errorf("MeanNS = %d", mean)
	}
	// The p50 upper edge must cover the second-smallest observation but be
	// far below the max.
	if q := h.QuantileNS(0.5); q < 200 || q > 100_000 {
		t.Errorf("QuantileNS(0.5) = %d out of range", q)
	}
	if q := h.QuantileNS(1); q < 1_000_000 {
		t.Errorf("QuantileNS(1) = %d, want >= max", q)
	}
	var other LatencyHist
	other.Observe(50)
	other.Merge(h)
	if other.Count != 5 || other.MaxNS != 1_000_000 {
		t.Errorf("after merge: Count=%d MaxNS=%d", other.Count, other.MaxNS)
	}
	if s := other.String(); s == "" {
		t.Error("String() empty")
	}
	var zero LatencyHist
	if got := zero.QuantileNS(0.99); got != 0 {
		t.Errorf("zero QuantileNS = %d, want 0", got)
	}
}
