package core

import (
	"sort"
	"sync/atomic"
	"time"

	"fchain/internal/metric"
)

// This file implements the engine's overload model: deadline-budgeted
// degradation tiers for the selection tasks and panic quarantine for
// poisoned metric streams.
//
// Deadline budgeting: a master under a tight Localize deadline forwards the
// remaining budget to each slave, and the slave analyzes against it instead
// of blowing through it. Each (component, metric) task picks a tier from the
// time left and the observed cost of the tasks before it: the full pipeline
// while the budget is comfortable, a reduced look-back window when it gets
// tight, a model-trend-only heuristic when it is nearly gone, and a skip
// once it is spent. A degraded report marked Truncated still feeds the
// diagnosis — the paper's online goal is a verdict seconds after the
// violation, and a partial answer on time beats a complete one too late.
//
// Panic quarantine: every selection kernel runs under recover(). A stream
// whose kernel panics (corrupted history, pathological input) is
// quarantined: skipped with a quality flag for QuarantineCooldown, then
// auto-probed once — a clean probe re-admits it, another panic re-trips the
// quarantine. One poisoned series therefore costs its own stream, never the
// daemon.

// AnalysisTier labels how much of the selection pipeline a task ran under
// deadline budgeting. The zero value (TierFull) is the full pipeline and is
// omitted from serialized reports.
type AnalysisTier string

const (
	// TierFull: the complete selection pipeline over the configured window.
	TierFull AnalysisTier = ""
	// TierReduced: a halved look-back window and a lighter bootstrap.
	TierReduced AnalysisTier = "reduced"
	// TierTrend: the model-trend-only heuristic — a sustained level shift
	// check against the pre-window context, no change point detection.
	TierTrend AnalysisTier = "trend"
	// TierSkipped: the budget was spent before the task ran; no analysis.
	TierSkipped AnalysisTier = "skipped"
)

// rank orders tiers from full (0) to skipped (3) so reports can carry the
// weakest tier their metrics were analyzed at.
func (t AnalysisTier) rank() int {
	switch t {
	case TierReduced:
		return 1
	case TierTrend:
		return 2
	case TierSkipped:
		return 3
	default:
		return 0
	}
}

// budgeter assigns each remaining selection task a degradation tier from
// the time left until the deadline and the observed cost of the full-tier
// tasks already finished. It is shared by the serial path and the parallel
// workers; all state is atomic. A nil budgeter (no deadline) always yields
// TierFull at zero cost.
type budgeter struct {
	deadline  time.Time
	tasksLeft atomic.Int64
	fullNS    atomic.Int64 // total cost of completed full-tier tasks
	fullN     atomic.Int64
}

// newBudgeter returns a budgeter for n tasks, or nil when there is no
// deadline to budget against.
func newBudgeter(deadline time.Time, n int) *budgeter {
	if deadline.IsZero() {
		return nil
	}
	b := &budgeter{deadline: deadline}
	b.tasksLeft.Store(int64(n))
	return b
}

// tier claims the next task and picks its tier: the per-task share of the
// remaining budget against the mean cost of the full-tier tasks so far.
// The first task has no estimate and runs full — optimistically, since a
// deadline generous enough for zero tasks is indistinguishable from one
// generous enough for all of them until something has been measured.
func (b *budgeter) tier() AnalysisTier {
	if b == nil {
		return TierFull
	}
	left := b.tasksLeft.Add(-1) + 1 // include the task being claimed
	if left < 1 {
		left = 1
	}
	rem := time.Until(b.deadline)
	if rem <= 0 {
		return TierSkipped
	}
	n := b.fullN.Load()
	if n == 0 {
		return TierFull
	}
	mean := b.fullNS.Load() / n
	if mean <= 0 {
		return TierFull
	}
	perTask := rem.Nanoseconds() / left
	switch {
	case perTask >= 2*mean: // 2x headroom: no reason to degrade
		return TierFull
	case perTask >= mean/2: // a halved window roughly halves the cost
		return TierReduced
	default:
		return TierTrend
	}
}

// observe feeds a completed task's cost into the estimate; only full-tier
// samples calibrate the full-tier cost.
func (b *budgeter) observe(ns int64, tier AnalysisTier) {
	if b == nil || tier != TierFull {
		return
	}
	b.fullNS.Add(ns)
	b.fullN.Add(1)
}

// reducedCfg derives the TierReduced configuration: half the look-back
// window (floored so smoothing still has material to work with) and a
// lighter bootstrap, which dominates the kernel's cost.
func reducedCfg(cfg Config) Config {
	w := cfg.LookBack / 2
	if floor := 3*cfg.SmoothWindow + 8; w < floor {
		w = floor
	}
	if w < cfg.LookBack {
		cfg.LookBack = w
	}
	if cfg.Bootstraps > 50 {
		cfg.Bootstraps = 50
	}
	return cfg
}

// defaultQuarantineCooldown is how long a panicked stream stays quarantined
// before the engine probes it for re-admission (Config.QuarantineCooldown
// overrides it).
const defaultQuarantineCooldown = 30 * time.Second

// tripQuarantine marks metric k's stream quarantined after a selection
// panic. The stream is skipped until the cooldown elapses, then probed.
func (m *Monitor) tripQuarantine(k metric.Kind, msg string) {
	sh := m.shard(k)
	if sh == nil {
		return
	}
	sh.mu.Lock()
	sh.quarantined = true
	sh.quarantinedAt = time.Now()
	sh.panicMsg = msg
	sh.mu.Unlock()
}

// quarantineBlocked reports whether metric k's stream should be skipped.
// Once the cooldown has elapsed the quarantine half-opens: the flag clears
// and the caller runs the stream as a probe — a clean pass re-admits it for
// good, another panic re-trips the quarantine.
func (m *Monitor) quarantineBlocked(k metric.Kind, cooldown time.Duration) bool {
	sh := m.shard(k)
	if sh == nil {
		return false
	}
	if cooldown <= 0 {
		cooldown = defaultQuarantineCooldown
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.quarantined {
		return false
	}
	if time.Since(sh.quarantinedAt) >= cooldown {
		sh.quarantined = false // half-open: this analysis probes the stream
		return false
	}
	return true
}

// QuarantinedMetrics returns the metrics currently under panic quarantine,
// sorted, with the panic message that tripped each.
func (m *Monitor) QuarantinedMetrics() map[string]string {
	out := make(map[string]string)
	for _, k := range metric.Kinds {
		sh := &m.shards[k]
		sh.mu.Lock()
		if sh.quarantined {
			out[k.String()] = sh.panicMsg
		}
		sh.mu.Unlock()
	}
	return out
}

// sortedKeys is a tiny helper for deterministic iteration in reports.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// analyzeHook, when set, runs at the start of every selection task. It
// exists for fault-injection tests: a hook that panics for a chosen
// (component, metric) exercises the quarantine machinery end to end.
var analyzeHook atomic.Pointer[func(component string, k metric.Kind)]

// SetAnalyzeHook installs (or, with nil, removes) the selection task hook.
// Test-only fault injection; the idle cost is one atomic load per task.
func SetAnalyzeHook(fn func(component string, k metric.Kind)) {
	if fn == nil {
		analyzeHook.Store(nil)
		return
	}
	analyzeHook.Store(&fn)
}
