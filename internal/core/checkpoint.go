package core

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// CheckpointVersion is the on-disk checkpoint format version. Load rejects
// any other version instead of guessing: a model restored from a
// misinterpreted checkpoint silently corrupts every later diagnosis, which
// is strictly worse than a cold start.
const CheckpointVersion = 1

// checkpointFile is the on-disk envelope: a version, a CRC32 of the payload
// so torn or bit-rotted files are detected, and the payload itself.
type checkpointFile struct {
	Version  int             `json:"version"`
	SavedAt  int64           `json:"saved_at"` // unix seconds, informational
	Checksum uint32          `json:"checksum"` // IEEE CRC32 of Payload
	Payload  json.RawMessage `json:"payload"`
}

// SaveCheckpoint atomically writes v as a versioned, checksummed checkpoint
// at path: the file is written to a temporary name in the same directory,
// synced, then renamed over the destination, so a crash mid-write leaves
// either the previous checkpoint or none — never a torn one.
func SaveCheckpoint(path string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("core: marshal checkpoint: %w", err)
	}
	raw, err := json.Marshal(checkpointFile{
		Version:  CheckpointVersion,
		SavedAt:  time.Now().Unix(),
		Checksum: crc32.ChecksumIEEE(payload),
		Payload:  payload,
	})
	if err != nil {
		return fmt.Errorf("core: marshal checkpoint envelope: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: write checkpoint %s: %w", path, err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint into v,
// verifying the format version and the payload checksum first. Callers
// should treat any error as "no usable checkpoint" and cold-start.
func LoadCheckpoint(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("core: parse checkpoint %s: %w", path, err)
	}
	if f.Version != CheckpointVersion {
		return fmt.Errorf("core: checkpoint %s has version %d, want %d", path, f.Version, CheckpointVersion)
	}
	if sum := crc32.ChecksumIEEE(f.Payload); sum != f.Checksum {
		return fmt.Errorf("core: checkpoint %s checksum mismatch: payload %08x, recorded %08x", path, sum, f.Checksum)
	}
	if err := json.Unmarshal(f.Payload, v); err != nil {
		return fmt.Errorf("core: decode checkpoint %s payload: %w", path, err)
	}
	return nil
}
