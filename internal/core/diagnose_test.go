package core

import (
	"testing"

	"fchain/internal/depgraph"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

func report(comp string, onset int64, dir timeseries.Trend) ComponentReport {
	before, after := 10.0, 20.0
	if dir == timeseries.TrendDown {
		before, after = 20, 10
	}
	_ = before
	_ = after
	ch := AbnormalChange{
		Component: comp,
		Metric:    metric.CPU,
		ChangeAt:  onset + 3,
		Onset:     onset,
		PredErr:   10,
		Expected:  1,
		Magnitude: 10,
		Direction: dir,
	}
	return ComponentReport{Component: comp, Changes: []AbnormalChange{ch}, Onset: onset}
}

func normalReport(comp string) ComponentReport {
	return ComponentReport{Component: comp}
}

func TestDiagnoseEmpty(t *testing.T) {
	d := Diagnose(nil, 4, nil, DefaultConfig())
	if len(d.Culprits) != 0 || d.ExternalFactor {
		t.Errorf("empty reports should produce empty diagnosis: %+v", d)
	}
	d = Diagnose([]ComponentReport{normalReport("a"), normalReport("b")}, 2, nil, DefaultConfig())
	if len(d.Culprits) != 0 {
		t.Errorf("all-normal reports should produce no culprits: %+v", d)
	}
}

func TestDiagnoseEarliestIsSource(t *testing.T) {
	reports := []ComponentReport{
		report("web", 210, timeseries.TrendUp),
		report("db", 200, timeseries.TrendUp),
		normalReport("app1"),
		normalReport("app2"),
	}
	d := Diagnose(reports, 4, nil, DefaultConfig())
	if len(d.Culprits) != 1 || d.Culprits[0].Component != "db" {
		t.Fatalf("culprits = %v, want [db]", d.CulpritNames())
	}
	if d.Culprits[0].Reason != "source" {
		t.Errorf("reason = %q, want source", d.Culprits[0].Reason)
	}
	if len(d.Chain) != 2 || d.Chain[0].Component != "db" {
		t.Errorf("chain wrong: %+v", d.Chain)
	}
}

func TestDiagnoseConcurrentFaults(t *testing.T) {
	reports := []ComponentReport{
		report("pe1", 100, timeseries.TrendUp),
		report("pe2", 101, timeseries.TrendUp),
		report("pe3", 110, timeseries.TrendUp), // propagation victim
	}
	d := Diagnose(reports, 7, nil, DefaultConfig())
	names := d.CulpritNames()
	if len(names) != 2 || names[0] != "pe1" || names[1] != "pe2" {
		t.Fatalf("culprits = %v, want [pe1 pe2]", names)
	}
	if d.Culprits[1].Reason != "concurrent" {
		t.Errorf("reason = %q, want concurrent", d.Culprits[1].Reason)
	}
}

func TestDiagnoseConcurrencyChains(t *testing.T) {
	// Onsets 0, 1.5→(rounded to)1, 3: with a 2s threshold and chaining off
	// the last pinpointed component, all three are concurrent.
	reports := []ComponentReport{
		report("a", 100, timeseries.TrendUp),
		report("b", 102, timeseries.TrendUp),
		report("c", 104, timeseries.TrendUp),
		normalReport("d"),
	}
	d := Diagnose(reports, 4, nil, DefaultConfig())
	if len(d.Culprits) != 3 {
		t.Errorf("culprits = %v, want all three (chained concurrency)", d.CulpritNames())
	}
}

func TestDiagnoseExternalFactorWorkloadSurge(t *testing.T) {
	// All components abnormal with a shared upward trend: a workload surge,
	// not an application fault (paper §II-C).
	reports := []ComponentReport{
		report("web", 100, timeseries.TrendUp),
		report("app1", 103, timeseries.TrendUp),
		report("app2", 104, timeseries.TrendUp),
		report("db", 106, timeseries.TrendUp),
	}
	d := Diagnose(reports, 4, nil, DefaultConfig())
	if !d.ExternalFactor {
		t.Fatal("shared upward trend across all components should be external")
	}
	if len(d.Culprits) != 0 {
		t.Errorf("external factor must pinpoint nothing, got %v", d.CulpritNames())
	}
	if d.Trend != timeseries.TrendUp {
		t.Errorf("trend = %v, want up", d.Trend)
	}
}

func TestDiagnoseExternalFactorDownward(t *testing.T) {
	reports := []ComponentReport{
		report("a", 100, timeseries.TrendDown),
		report("b", 105, timeseries.TrendDown),
	}
	d := Diagnose(reports, 2, nil, DefaultConfig())
	if !d.ExternalFactor || d.Trend != timeseries.TrendDown {
		t.Errorf("shared downward trend should be external (NFS-style): %+v", d)
	}
}

func TestDiagnoseMixedTrendNotExternal(t *testing.T) {
	reports := []ComponentReport{
		report("a", 100, timeseries.TrendUp),
		report("b", 110, timeseries.TrendDown),
	}
	d := Diagnose(reports, 2, nil, DefaultConfig())
	if d.ExternalFactor {
		t.Error("mixed trends must not be classified external")
	}
	if len(d.Culprits) == 0 || d.Culprits[0].Component != "a" {
		t.Errorf("culprits = %v, want [a]", d.CulpritNames())
	}
}

func TestDiagnoseNotAllAbnormalNotExternal(t *testing.T) {
	reports := []ComponentReport{
		report("a", 100, timeseries.TrendUp),
		report("b", 110, timeseries.TrendUp),
		normalReport("c"),
	}
	d := Diagnose(reports, 3, nil, DefaultConfig())
	if d.ExternalFactor {
		t.Error("external factor requires ALL components abnormal")
	}
}

func TestDiagnoseDependencyIndependentFault(t *testing.T) {
	// Fig. 5's spurious propagation: app1 (t=200) and app2 (t=205) are both
	// abnormal, but there is no dependency path between them, so app2's
	// anomaly cannot be propagation from app1 — it is an independent fault.
	deps := depgraph.NewGraph()
	deps.AddEdge("web", "app1", 1)
	deps.AddEdge("web", "app2", 1)
	deps.AddEdge("app1", "db", 1)
	deps.AddEdge("app2", "db", 1)
	// NOTE: app1 and app2 ARE connected via web/db in the interaction
	// graph, so with the full RUBiS graph the propagation is plausible.
	// Make app2 isolated to model the independent case.
	iso := depgraph.NewGraph()
	iso.AddEdge("web", "app1", 1)
	iso.AddEdge("app1", "db", 1)
	iso.AddNode("app2")

	reports := []ComponentReport{
		report("app1", 200, timeseries.TrendUp),
		report("app2", 205, timeseries.TrendUp),
		normalReport("web"),
		normalReport("db"),
	}
	d := Diagnose(reports, 4, iso, DefaultConfig())
	names := d.CulpritNames()
	if len(names) != 2 {
		t.Fatalf("culprits = %v, want app1 + independent app2", names)
	}
	var foundIndep bool
	for _, c := range d.Culprits {
		if c.Component == "app2" && c.Reason == "independent" {
			foundIndep = true
		}
	}
	if !foundIndep {
		t.Errorf("app2 should be pinpointed as independent: %+v", d.Culprits)
	}

	// With the connected graph, app2's anomaly is explainable as
	// propagation, so only app1 is pinpointed.
	d = Diagnose(reports, 4, deps, DefaultConfig())
	if len(d.CulpritNames()) != 1 || d.CulpritNames()[0] != "app1" {
		t.Errorf("connected graph: culprits = %v, want [app1]", d.CulpritNames())
	}
}

func TestDiagnoseEmptyDependencySkipsFiltering(t *testing.T) {
	// Stream systems: discovery fails, deps empty — FChain falls back to
	// pure propagation order (and does not pinpoint everything).
	reports := []ComponentReport{
		report("pe3", 100, timeseries.TrendUp),
		report("pe6", 108, timeseries.TrendUp),
		report("pe2", 115, timeseries.TrendUp),
		normalReport("pe1"),
	}
	d := Diagnose(reports, 7, depgraph.NewGraph(), DefaultConfig())
	if len(d.CulpritNames()) != 1 || d.CulpritNames()[0] != "pe3" {
		t.Errorf("culprits = %v, want [pe3]", d.CulpritNames())
	}
}

func TestDiagnoseString(t *testing.T) {
	d := Diagnose(nil, 2, nil, DefaultConfig())
	if d.String() != "no faulty components pinpointed" {
		t.Errorf("String = %q", d.String())
	}
	d = Diagnose([]ComponentReport{report("a", 1, timeseries.TrendUp)}, 2, nil, DefaultConfig())
	if d.String() == "" {
		t.Error("String should describe culprits")
	}
	d = Diagnose([]ComponentReport{
		report("a", 1, timeseries.TrendUp),
		report("b", 2, timeseries.TrendUp),
	}, 2, nil, DefaultConfig())
	if !d.ExternalFactor {
		t.Skip("setup produced non-external diagnosis")
	}
	if d.String() == "" {
		t.Error("external String empty")
	}
}

func TestLocalizerBasics(t *testing.T) {
	l := NewLocalizer(Config{}, []string{"b", "a"})
	got := l.Components()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Components = %v", got)
	}
	if err := l.Observe("ghost", 0, metric.CPU, 1); err == nil {
		t.Error("unknown component should error")
	}
	if err := l.Observe("a", 0, metric.CPU, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Monitor("a"); !ok {
		t.Error("Monitor(a) not found")
	}
	if _, ok := l.Monitor("ghost"); ok {
		t.Error("Monitor(ghost) should not exist")
	}
	if l.Config().LookBack != 100 {
		t.Errorf("default LookBack = %d", l.Config().LookBack)
	}
}
