package core

import (
	"encoding/json"
	"math/rand"
	"testing"

	"fchain/internal/metric"
)

// streamPair is a streaming monitor and a batch monitor fed identical
// samples, for byte-equality differential tests.
type streamPair struct {
	stream *Monitor
	batch  *Monitor
}

func newStreamPair(cfg Config) streamPair {
	scfg := cfg
	scfg.Streaming = true
	bcfg := cfg
	bcfg.Streaming = false
	return streamPair{
		stream: NewMonitor("comp", scfg),
		batch:  NewMonitor("comp", bcfg),
	}
}

func (p streamPair) observe(t *testing.T, ts int64, k metric.Kind, v float64) {
	t.Helper()
	if err := p.stream.Observe(ts, k, v); err != nil {
		t.Fatal(err)
	}
	if err := p.batch.Observe(ts, k, v); err != nil {
		t.Fatal(err)
	}
}

// compare asserts the two monitors' reports at tv are byte-identical.
func (p streamPair) compare(t *testing.T, tv int64, what string) ComponentReport {
	t.Helper()
	rs := p.stream.Analyze(tv)
	rb := p.batch.Analyze(tv)
	js, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(rb)
	if err != nil {
		t.Fatal(err)
	}
	if string(js) != string(jb) {
		t.Fatalf("%s (tv=%d): streaming report differs from batch\nstreaming: %s\nbatch:     %s", what, tv, js, jb)
	}
	return rs
}

// signalAt synthesizes one metric sample: workload-looking fluctuation, with
// a fault-like sustained shift on cpu and memory after the inject time.
func signalAt(k metric.Kind, ts, inject int64, rng *rand.Rand) float64 {
	base := float64(40+ts%23) + float64(ts%7) + rng.NormFloat64()*0.3
	if ts >= inject {
		switch k {
		case metric.CPU:
			base += 45
		case metric.Memory:
			base += float64(ts-inject) * 1.5 // gradual leak-style ramp
		}
	}
	return base
}

// TestStreamingMatchesBatchEveryStep is the headline equality property:
// analyses at every advancing stream head — warm fast path, FFT memo hits,
// and all — marshal to exactly the bytes the batch kernel produces.
func TestStreamingMatchesBatchEveryStep(t *testing.T) {
	cfg := DefaultConfig()
	p := newStreamPair(cfg)
	rng := rand.New(rand.NewSource(42))
	const inject = 520
	sawAbnormal := false
	for ts := int64(1); ts <= 600; ts++ {
		for _, k := range metric.Kinds {
			krng := rand.New(rand.NewSource(int64(k)*1000 + ts))
			_ = rng
			p.observe(t, ts, k, signalAt(k, ts, inject, krng))
		}
		if ts >= 400 && ts%7 == 0 || ts >= inject {
			r := p.compare(t, ts, "advancing head")
			if r.Abnormal() {
				sawAbnormal = true
			}
		}
	}
	if !sawAbnormal {
		t.Fatal("scenario never produced an abnormal report; equality test is vacuous")
	}
	st := p.stream.StreamingStats()
	if st.Streams != len(metric.Kinds) {
		t.Fatalf("Streams = %d, want %d", st.Streams, len(metric.Kinds))
	}
	if st.Bytes <= 0 {
		t.Fatal("streaming state reports zero bytes")
	}
}

// TestStreamingColdFallbacks: historical tv and overridden look-back windows
// must take the batch path (cold counter moves) and still match batch bytes.
func TestStreamingColdFallbacks(t *testing.T) {
	cfg := DefaultConfig()
	p := newStreamPair(cfg)
	for ts := int64(1); ts <= 500; ts++ {
		for _, k := range metric.Kinds {
			krng := rand.New(rand.NewSource(int64(k)*1000 + ts))
			p.observe(t, ts, k, signalAt(k, ts, 420, krng))
		}
	}
	before := p.stream.StreamingStats().Colds

	// Historical tv: the multisets track the stream head, not tv=450.
	rs := p.stream.AnalyzeWindow(450, 0)
	rb := p.batch.AnalyzeWindow(450, 0)
	js, _ := json.Marshal(rs)
	jb, _ := json.Marshal(rb)
	if string(js) != string(jb) {
		t.Fatalf("historical tv: streaming %s != batch %s", js, jb)
	}

	// Overridden look-back: boundary arithmetic no longer matches the state.
	rs = p.stream.AnalyzeWindow(500, cfg.LookBack*2)
	rb = p.batch.AnalyzeWindow(500, cfg.LookBack*2)
	js, _ = json.Marshal(rs)
	jb, _ = json.Marshal(rb)
	if string(js) != string(jb) {
		t.Fatalf("window override: streaming %s != batch %s", js, jb)
	}

	if after := p.stream.StreamingStats().Colds; after <= before {
		t.Fatalf("cold fallbacks not counted: %d -> %d", before, after)
	}
}

// TestStreamingMemo: re-localizing an unchanged stream at the same tv serves
// the memoized verdict; one new sample invalidates it.
func TestStreamingMemo(t *testing.T) {
	cfg := DefaultConfig()
	p := newStreamPair(cfg)
	for ts := int64(1); ts <= 500; ts++ {
		for _, k := range metric.Kinds {
			krng := rand.New(rand.NewSource(int64(k)*1000 + ts))
			p.observe(t, ts, k, signalAt(k, ts, 430, krng))
		}
	}
	p.compare(t, 500, "first analysis")
	hits0 := p.stream.StreamingStats().MemoHits
	p.compare(t, 500, "repeat analysis")
	hits1 := p.stream.StreamingStats().MemoHits
	if hits1 < hits0+uint64(len(metric.Kinds)) {
		t.Fatalf("repeat analysis at same tv should hit every metric memo: %d -> %d", hits0, hits1)
	}
	for _, k := range metric.Kinds {
		krng := rand.New(rand.NewSource(int64(k)*1000 + 501))
		p.observe(t, 501, k, signalAt(k, 501, 430, krng))
	}
	p.compare(t, 501, "after invalidation")
}

// TestStreamingRestoreMatchesBatch is the kill-and-restart drill: a monitor
// rebuilt from a checkpoint mid-fault must report the exact onset the batch
// kernel (and the uninterrupted streaming monitor) reports.
func TestStreamingRestoreMatchesBatch(t *testing.T) {
	cfg := DefaultConfig()
	scfg := cfg
	scfg.Streaming = true
	p := newStreamPair(cfg)
	const inject = 520
	feed := func(m *Monitor, from, to int64) {
		for ts := from; ts <= to; ts++ {
			for _, k := range metric.Kinds {
				krng := rand.New(rand.NewSource(int64(k)*1000 + ts))
				if err := m.Observe(ts, k, signalAt(k, ts, inject, krng)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	feed(p.stream, 1, 530)
	feed(p.batch, 1, 530)

	// Kill: checkpoint the streaming monitor mid-manifestation; restart: a
	// fresh streaming monitor restores it and the feed resumes.
	snap := p.stream.Snapshot()
	restored := NewMonitor("comp", scfg)
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := restored.StreamingStats().Resets; got == 0 {
		t.Fatal("restore did not rebuild streaming state")
	}
	feed(p.stream, 531, 560)
	feed(p.batch, 531, 560)
	feed(restored, 531, 560)

	want := p.batch.Analyze(560)
	for name, m := range map[string]*Monitor{"uninterrupted": p.stream, "restored": restored} {
		got := m.Analyze(560)
		jw, _ := json.Marshal(want)
		jg, _ := json.Marshal(got)
		if string(jw) != string(jg) {
			t.Fatalf("%s streaming monitor differs from batch after restart\ngot:  %s\nwant: %s", name, jg, jw)
		}
		if !got.Abnormal() {
			t.Fatalf("%s: fault not detected post-restart", name)
		}
		if got.Onset != want.Onset {
			t.Fatalf("%s: onset %d, batch onset %d", name, got.Onset, want.Onset)
		}
	}
}

// TestStreamingGapResetsState is the chaos drill: a collection gap long
// enough to sever the dense history (Ring.Clear + Predictor.Break) must
// reset the streaming state, and post-gap analyses must still match batch.
func TestStreamingGapResetsState(t *testing.T) {
	cfg := DefaultConfig()
	p := newStreamPair(cfg)
	ingestBoth := func(ts int64) {
		for _, k := range metric.Kinds {
			krng := rand.New(rand.NewSource(int64(k)*1000 + ts))
			v := signalAt(k, ts, 1<<40, krng)
			if err := p.stream.Ingest(ts, k, v); err != nil {
				t.Fatal(err)
			}
			if err := p.batch.Ingest(ts, k, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for ts := int64(1); ts <= 300; ts++ {
		ingestBoth(ts)
	}
	resets0 := p.stream.StreamingStats().Resets
	// Jump far past MaxFillGap: the sanitizer severs the history.
	for ts := int64(400); ts <= 700; ts++ {
		ingestBoth(ts)
	}
	if resets1 := p.stream.StreamingStats().Resets; resets1 <= resets0 {
		t.Fatalf("collection gap did not reset streaming state: %d -> %d", resets0, resets1)
	}
	p.compare(t, 700, "post-gap")
}

// TestStreamingSerialMatchesParallel: the engine property extended to
// streaming monitors — worker count never changes bytes.
func TestStreamingSerialMatchesParallel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Streaming = true
	serial := cfg
	serial.Parallelism = 1
	par := cfg
	par.Parallelism = 4
	mkMonitors := func(c Config) []*Monitor {
		ms := make([]*Monitor, 3)
		for i := range ms {
			ms[i] = NewMonitor(string(rune('a'+i)), c)
		}
		return ms
	}
	feed := func(ms []*Monitor) {
		for ts := int64(1); ts <= 520; ts++ {
			for i, m := range ms {
				for _, k := range metric.Kinds {
					krng := rand.New(rand.NewSource(int64(i+1)*100000 + int64(k)*1000 + ts))
					inject := int64(1 << 40)
					if i == 1 {
						inject = 470
					}
					if err := m.Observe(ts, k, signalAt(k, ts, inject, krng)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	ms1, ms4 := mkMonitors(serial), mkMonitors(par)
	feed(ms1)
	feed(ms4)
	r1, _ := AnalyzeMonitors(ms1, 520, 0, 1)
	r4, _ := AnalyzeMonitors(ms4, 520, 0, 4)
	j1, _ := json.Marshal(r1)
	j4, _ := json.Marshal(r4)
	if string(j1) != string(j4) {
		t.Fatalf("streaming serial != parallel\nserial:   %s\nparallel: %s", j1, j4)
	}
}
