package core

import (
	"testing"

	"fchain/internal/apps"
	"fchain/internal/cloudsim"
	"fchain/internal/depgraph"
	"fchain/internal/metric"
)

// runPipeline injects the fault at inject, waits for the SLO violation,
// feeds every recorded sample into a localizer, and returns the diagnosis
// together with the sim (positioned at tv) for validation tests.
func runPipeline(t *testing.T, spec cloudsim.AppSpec, fault cloudsim.Fault, cfg Config, deps *depgraph.Graph, seed int64) (Diagnosis, *cloudsim.Sim, int64) {
	t.Helper()
	sim, err := cloudsim.New(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(fault); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(fault.Start() + 1000)
	tv, found := sim.FirstViolation(fault.Start(), 8)
	if !found {
		t.Fatalf("fault %s did not violate the SLO", fault.Name())
	}
	l := NewLocalizer(cfg, sim.Components())
	for _, comp := range sim.Components() {
		for _, k := range metric.Kinds {
			s, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < s.Len() && s.TimeAt(i) <= tv; i++ {
				if err := l.Observe(comp, s.TimeAt(i), k, s.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return l.Localize(tv, deps), sim, tv
}

func sameSet(got []string, want ...string) bool {
	if len(got) != len(want) {
		return false
	}
	m := make(map[string]bool, len(got))
	for _, g := range got {
		m[g] = true
	}
	for _, w := range want {
		if !m[w] {
			return false
		}
	}
	return true
}

func rubisDeps(t *testing.T, seed int64) *depgraph.Graph {
	t.Helper()
	sim, err := cloudsim.New(apps.RUBiS(seed), seed)
	if err != nil {
		t.Fatal(err)
	}
	return depgraph.Discover(sim.DependencyTrace(600, seed), depgraph.DiscoverConfig{})
}

func TestEndToEndRUBiSCpuHogAtDB(t *testing.T) {
	// The back-pressure scenario: the hog at the db drives the app tier
	// abnormal; FChain must still blame the db (earliest onset).
	deps := rubisDeps(t, 1)
	hits := 0
	for seed := int64(1); seed <= 3; seed++ {
		fault := cloudsim.NewCPUHog(1400, 1.7, apps.DB)
		diag, _, _ := runPipeline(t, apps.RUBiS(seed), fault, DefaultConfig(), deps, seed)
		if sameSet(diag.CulpritNames(), apps.DB) {
			hits++
		} else {
			t.Logf("seed %d: %s", seed, diag)
		}
	}
	if hits < 2 {
		t.Errorf("db pinpointed in only %d/3 runs", hits)
	}
}

func TestEndToEndRUBiSMemLeakAtDB(t *testing.T) {
	deps := rubisDeps(t, 2)
	hits := 0
	for seed := int64(1); seed <= 3; seed++ {
		fault := cloudsim.NewMemLeak(1400, 30, apps.DB)
		diag, _, _ := runPipeline(t, apps.RUBiS(seed), fault, DefaultConfig(), deps, seed)
		if sameSet(diag.CulpritNames(), apps.DB) {
			hits++
		} else {
			t.Logf("seed %d: %s", seed, diag)
		}
	}
	if hits < 2 {
		t.Errorf("db pinpointed in only %d/3 runs", hits)
	}
}

func TestEndToEndRUBiSNetHogAtWeb(t *testing.T) {
	deps := rubisDeps(t, 3)
	hits := 0
	for seed := int64(1); seed <= 3; seed++ {
		fault := cloudsim.NewNetHog(1400, 98.5, apps.Web)
		diag, _, _ := runPipeline(t, apps.RUBiS(seed), fault, DefaultConfig(), deps, seed)
		if sameSet(diag.CulpritNames(), apps.Web) {
			hits++
		} else {
			t.Logf("seed %d: %s", seed, diag)
		}
	}
	if hits < 2 {
		t.Errorf("web pinpointed in only %d/3 runs", hits)
	}
}

func TestEndToEndSystemSMemLeak(t *testing.T) {
	// No dependency graph for System S (discovery fails): propagation
	// order alone must localize the leaking PE.
	hits := 0
	for seed := int64(1); seed <= 3; seed++ {
		fault := cloudsim.NewMemLeak(1400, 28, "pe3")
		diag, _, _ := runPipeline(t, apps.SystemS(seed), fault, DefaultConfig(), depgraph.NewGraph(), seed)
		if sameSet(diag.CulpritNames(), "pe3") {
			hits++
		} else {
			t.Logf("seed %d: %s", seed, diag)
		}
	}
	if hits < 2 {
		t.Errorf("pe3 pinpointed in only %d/3 runs", hits)
	}
}

func TestEndToEndSystemSConcurrentCpuHog(t *testing.T) {
	// The paper reports that this exact fault is FChain's hardest System S
	// case: propagation is so fast that downstream victims look concurrent
	// (§III-C), and online validation is the remedy (§III-D). The test
	// therefore requires both true culprits to be found with a bounded
	// number of concurrent false alarms.
	hits := 0
	for seed := int64(1); seed <= 3; seed++ {
		fault := cloudsim.NewCPUHog(1400, 1.85, "pe3", "pe5")
		diag, _, _ := runPipeline(t, apps.SystemS(seed), fault, DefaultConfig(), depgraph.NewGraph(), seed)
		got := diag.CulpritNames()
		found := map[string]bool{}
		for _, c := range got {
			found[c] = true
		}
		if found["pe3"] && found["pe5"] && len(got) <= 4 {
			hits++
		} else {
			t.Logf("seed %d: %v", seed, diag)
		}
	}
	if hits < 2 {
		t.Errorf("concurrent culprits found in only %d/3 runs", hits)
	}
}

func TestEndToEndHadoopConcurrentCpuHog(t *testing.T) {
	hits := 0
	for seed := int64(1); seed <= 3; seed++ {
		fault := cloudsim.NewCPUHog(1400, 1.97, apps.HadoopMaps...)
		diag, _, _ := runPipeline(t, apps.Hadoop(seed), fault, DefaultConfig(), nil, seed)
		if sameSet(diag.CulpritNames(), apps.HadoopMaps...) {
			hits++
		} else {
			t.Logf("seed %d: %s", seed, diag)
		}
	}
	if hits < 2 {
		t.Errorf("all maps pinpointed in only %d/3 runs", hits)
	}
}

func TestEndToEndWorkloadSurgeIsExternal(t *testing.T) {
	// A pure workload surge (no fault) that violates the SLO should be
	// classified as an external factor, pinpointing nothing.
	spec := apps.RUBiS(4)
	spec.Trace = &workloadSurge{inner: spec.Trace, factor: 3.2, from: 600}
	sim, err := cloudsim.New(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(1400)
	tv, found := sim.FirstViolation(600, 3)
	if !found {
		t.Skip("surge did not violate the SLO under this sizing")
	}
	l := NewLocalizer(DefaultConfig(), sim.Components())
	for _, comp := range sim.Components() {
		for _, k := range metric.Kinds {
			s, _ := sim.Series(comp, k)
			for i := 0; i < s.Len() && s.TimeAt(i) <= tv; i++ {
				if err := l.Observe(comp, s.TimeAt(i), k, s.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	diag := l.Localize(tv, rubisDeps(t, 4))
	if len(diag.Culprits) > 0 && !diag.ExternalFactor {
		t.Errorf("workload surge misdiagnosed as component fault: %s", diag)
	}
}

// workloadSurge scales the wrapped trace by factor from time `from`.
type workloadSurge struct {
	inner  interface{ Rate(int64) float64 }
	factor float64
	from   int64
}

func (w *workloadSurge) Rate(t int64) float64 {
	r := w.inner.Rate(t)
	if t >= w.from {
		return r * w.factor
	}
	return r
}

func TestEndToEndValidationRemovesFalseAlarm(t *testing.T) {
	// Force a diagnosis containing a false alarm and verify online
	// validation removes it while confirming the true culprit.
	fault := cloudsim.NewCPUHog(1400, 1.7, apps.DB)
	diag, sim, _ := runPipeline(t, apps.RUBiS(5), fault, DefaultConfig(), rubisDeps(t, 5), 5)
	if len(diag.Culprits) == 0 {
		t.Fatal("no culprits to validate")
	}
	// Add a fabricated false alarm.
	diag.Culprits = append(diag.Culprits, Culprit{
		Component: apps.Web,
		Metrics:   []metric.Kind{metric.CPU},
		Reason:    "concurrent",
	})
	results, err := Validate(func() (Adjuster, error) { return sim.Clone(), nil }, diag, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	filtered := ApplyValidation(diag, results)
	names := filtered.CulpritNames()
	for _, n := range names {
		if n == apps.Web {
			t.Errorf("validation failed to remove the fabricated false alarm: %v", names)
		}
	}
	foundDB := false
	for _, n := range names {
		if n == apps.DB {
			foundDB = true
		}
	}
	if !foundDB {
		t.Errorf("validation wrongly removed the true culprit: %v", names)
	}
}

// Guard: cloudsim.Sim must satisfy the Adjuster interface.
var _ Adjuster = (*cloudsim.Sim)(nil)

func TestAdaptiveLookBackFindsSlowFault(t *testing.T) {
	// The Hadoop DiskHog manifests over minutes; with W=100 fixed the
	// look-back often contains no abnormal change. The adaptive scheme
	// widens the window until one appears (paper §III-F ongoing work).
	found := 0
	foundFixed := 0
	for seed := int64(1); seed <= 3; seed++ {
		sim, err := cloudsim.New(apps.Hadoop(seed), seed)
		if err != nil {
			t.Fatal(err)
		}
		fault := cloudsim.NewDiskHog(1500, 59.4, 300, apps.HadoopMaps...)
		if err := sim.Inject(fault); err != nil {
			t.Fatal(err)
		}
		sim.RunUntil(1500 + 1100)
		tv, ok := sim.FirstViolation(1500, 3)
		if !ok {
			t.Fatal("diskhog should stall the job")
		}
		run := func(cfg Config) Diagnosis {
			l := NewLocalizer(cfg, sim.Components())
			for _, comp := range sim.Components() {
				for _, k := range metric.Kinds {
					s, _ := sim.Series(comp, k)
					for i := 0; i < s.Len() && s.TimeAt(i) <= tv; i++ {
						if err := l.Observe(comp, s.TimeAt(i), k, s.At(i)); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			return l.Localize(tv, nil)
		}
		fixed := run(Config{LookBack: 100})
		adaptive := run(Config{LookBack: 100, AdaptiveLookBack: true})
		if len(fixed.Culprits) > 0 {
			foundFixed++
		}
		if len(adaptive.Culprits) > 0 {
			found++
		}
		// Adaptive must never do worse than fixed on the same data.
		if len(adaptive.Chain) < len(fixed.Chain) {
			t.Errorf("seed %d: adaptive chain smaller than fixed", seed)
		}
	}
	if found < foundFixed {
		t.Errorf("adaptive look-back found culprits in %d runs, fixed in %d", found, foundFixed)
	}
	if found == 0 {
		t.Error("adaptive look-back never localized the slow fault")
	}
}
