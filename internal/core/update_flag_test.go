// Registers the module-wide -update golden-file flag in this package's
// test binary; `go test ./... -update` fails on any test binary that
// does not define it. See fchain/internal/golden.
package core_test

import _ "fchain/internal/golden"
