package core

import (
	"fmt"

	"fchain/internal/ingest"
)

// DataQuality summarizes how trustworthy the metric streams behind a
// component's report were. FChain's selection stage assumes dense,
// in-order, finite samples; the ingest sanitizer repairs what it can and
// counts what it couldn't, and this summary carries those counters to the
// master so a diagnosis built on degraded data is flagged instead of being
// presented with full confidence.
type DataQuality struct {
	// Score is the clean fraction of the streams, in [0, 1]; 1 means no
	// sample was dropped, clamped, interpolated, or lost to a gap.
	Score float64 `json:"score"`
	// Stats breaks the score down into the sanitizer's counters.
	Stats ingest.Stats `json:"stats,omitzero"`
}

// qualityOf folds sanitizer statistics into a report-ready summary.
func qualityOf(st ingest.Stats) DataQuality {
	return DataQuality{Score: st.Score(), Stats: st}
}

// Confidence maps the quality onto a culprit confidence in (0, 1]. A
// zero-valued DataQuality (reports predating quality tracking, or monitors
// fed through the strict Observe path only) counts as fully clean.
func (q DataQuality) Confidence() float64 {
	if q == (DataQuality{}) {
		return 1
	}
	return q.Score
}

// String renders e.g. "quality 0.93 (dropped 12, filled 5, gaps 41s)".
func (q DataQuality) String() string {
	return fmt.Sprintf("quality %.2f (%s)", q.Confidence(), q.Stats.String())
}
