package core

import (
	"errors"
	"fmt"
	"math"

	"fchain/internal/ingest"
	"fchain/internal/markov"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// Typed ingestion errors. Callers that feed monitors from untrusted
// collection paths match these with errors.Is to decide between dropping the
// sample and surfacing a collection-pipeline fault.
var (
	// ErrBadSample rejects a non-finite (NaN or ±Inf) metric value.
	ErrBadSample = errors.New("core: bad sample")
	// ErrTimeRegression rejects a sample whose timestamp does not advance
	// past the last accepted one for the same metric. The dense ring
	// indexing assumes one sample per second; an equal or earlier timestamp
	// would silently misalign every later window query.
	ErrTimeRegression = errors.New("core: time regression")
)

// Monitor is the slave-side state for one monitored component: an online
// prediction model per metric plus bounded sample and prediction-error
// histories. It implements the "normal fluctuation modeling" module of
// Fig. 1: the model continuously learns each metric's evolving value
// pattern, so that change points caused by already-seen workload behaviour
// predict well while fault-induced changes do not (paper §II-A).
//
// Samples enter through one of two paths. Observe is strict: it rejects
// non-finite values and non-advancing timestamps with typed errors and is
// meant for callers that control their collection loop. Ingest tolerates
// dirty real-world streams: a per-metric sanitizer reorders slightly late
// samples, drops garbage, interpolates short collection gaps, and severs the
// dense history across long ones, accumulating quality counters that
// propagate into every report.
//
// Monitor is not safe for concurrent use; FChain runs one collection
// goroutine per host.
type Monitor struct {
	component  string
	cfg        Config
	models     map[metric.Kind]*markov.Predictor
	samples    map[metric.Kind]*timeseries.Ring
	errs       map[metric.Kind]*timeseries.Ring
	sanitizers map[metric.Kind]*ingest.Sanitizer
	lastT      map[metric.Kind]int64

	// Scratch series backing the zero-copy analysis path: each analyzeMetric
	// call rematerializes the rings into these and takes views. Safe because
	// the monitor is single-goroutine and metrics are analyzed sequentially.
	scratchVals *timeseries.Series
	scratchErrs *timeseries.Series
}

// NewMonitor returns a monitor for the named component.
func NewMonitor(component string, cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		component:   component,
		cfg:         cfg,
		models:      make(map[metric.Kind]*markov.Predictor, metric.NumKinds),
		samples:     make(map[metric.Kind]*timeseries.Ring, metric.NumKinds),
		errs:        make(map[metric.Kind]*timeseries.Ring, metric.NumKinds),
		sanitizers:  make(map[metric.Kind]*ingest.Sanitizer, metric.NumKinds),
		lastT:       make(map[metric.Kind]int64, metric.NumKinds),
		scratchVals: &timeseries.Series{},
		scratchErrs: &timeseries.Series{},
	}
	for _, k := range metric.Kinds {
		m.models[k] = markov.New(cfg.MarkovBins, cfg.MarkovDecay)
		m.samples[k] = timeseries.NewRing(cfg.RingCapacity)
		m.errs[k] = timeseries.NewRing(cfg.RingCapacity)
		m.sanitizers[k] = ingest.NewSanitizer(cfg.ingestConfig())
	}
	return m
}

// Component returns the monitored component's name.
func (m *Monitor) Component() string { return m.component }

// Observe feeds one metric sample (taken at time t) into the model and the
// bounded history. It is the strict path: values must be finite
// (ErrBadSample otherwise) and timestamps must strictly advance per metric
// (ErrTimeRegression otherwise). Collection paths that cannot guarantee
// either should use Ingest instead.
func (m *Monitor) Observe(t int64, k metric.Kind, v float64) error {
	if _, ok := m.models[k]; !ok {
		return fmt.Errorf("core: invalid metric kind %v", k)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: %s=%v at t=%d", ErrBadSample, k, v, t)
	}
	if last, seen := m.lastT[k]; seen && t <= last {
		return fmt.Errorf("%w: %s sample at t=%d, already observed t=%d", ErrTimeRegression, k, t, last)
	}
	m.push(t, k, v)
	return nil
}

// push commits one validated sample to the model and histories.
func (m *Monitor) push(t int64, k metric.Kind, v float64) {
	predErr, _ := m.models[k].Observe(v)
	m.samples[k].Push(t, v)
	m.errs[k].Push(t, predErr)
	m.lastT[k] = t
}

// Ingest feeds one possibly-dirty metric sample through the per-metric
// sanitizer: non-finite values are dropped, corrupted magnitudes clamped,
// slightly out-of-order arrivals buffered and reordered, short collection
// gaps interpolated, and long gaps marked so the dense history is severed.
// The error reports only an invalid metric kind; data problems are absorbed
// into the quality counters rather than returned.
func (m *Monitor) Ingest(t int64, k metric.Kind, v float64) error {
	san, ok := m.sanitizers[k]
	if !ok {
		return fmt.Errorf("core: invalid metric kind %v", k)
	}
	for _, s := range san.Push(t, v) {
		m.apply(k, s)
	}
	return nil
}

// IngestVector feeds a full possibly-dirty metric vector at time t.
func (m *Monitor) IngestVector(t int64, vec *metric.Vector) error {
	for _, k := range metric.Kinds {
		if err := m.Ingest(t, k, vec.Get(k)); err != nil {
			return err
		}
	}
	return nil
}

// FlushIngest releases every sample still buffered in the reorder windows
// with timestamp <= upTo. Analyze calls it with tv so an analysis never runs
// behind samples the sanitizer is still holding.
func (m *Monitor) FlushIngest(upTo int64) {
	for _, k := range metric.Kinds {
		for _, s := range m.sanitizers[k].Flush(upTo) {
			m.apply(k, s)
		}
	}
}

// apply commits one sanitized sample, severing the metric's dense history
// first when the sanitizer marked a long collection gap: the pre-gap samples
// would misalign the dense window indexing, and predicting the first
// post-gap sample from the last pre-gap state would charge the model a
// phantom transition across the outage.
func (m *Monitor) apply(k metric.Kind, s ingest.Sample) {
	if s.GapBefore > 0 {
		m.samples[k].Clear()
		m.errs[k].Clear()
		m.models[k].Break()
	}
	m.push(s.T, k, s.V)
}

// Quality aggregates the sanitizer statistics across all metrics of the
// component. Monitors fed exclusively through the strict Observe path
// report zero counters, which score as perfectly clean.
func (m *Monitor) Quality() ingest.Stats {
	var st ingest.Stats
	for _, k := range metric.Kinds {
		st.Merge(m.sanitizers[k].Stats())
	}
	return st
}

// ObserveVector feeds a full metric vector at time t through the strict
// path.
func (m *Monitor) ObserveVector(t int64, vec *metric.Vector) error {
	for _, k := range metric.Kinds {
		if err := m.Observe(t, k, vec.Get(k)); err != nil {
			return err
		}
	}
	return nil
}

// materialize snapshots metric k's retained samples and prediction errors
// into the monitor's scratch series, returning both. All window and context
// queries of one analysis pass take zero-copy views of these; the views are
// invalidated by the next materialize call.
func (m *Monitor) materialize(k metric.Kind) (sv, se *timeseries.Series) {
	sv = m.samples[k].SeriesInto(m.scratchVals)
	se = m.errs[k].SeriesInto(m.scratchErrs)
	return sv, se
}

// viewBefore returns a zero-copy view of up to w samples with timestamps in
// (end-w, end] — the look-back window query.
func viewBefore(s *timeseries.Series, end int64, w int) *timeseries.Series {
	return s.WindowView(end-int64(w)+1, end+1)
}
