package core

import (
	"fmt"

	"fchain/internal/markov"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// Monitor is the slave-side state for one monitored component: an online
// prediction model per metric plus bounded sample and prediction-error
// histories. It implements the "normal fluctuation modeling" module of
// Fig. 1: the model continuously learns each metric's evolving value
// pattern, so that change points caused by already-seen workload behaviour
// predict well while fault-induced changes do not (paper §II-A).
//
// Monitor is not safe for concurrent use; FChain runs one collection
// goroutine per host.
type Monitor struct {
	component string
	cfg       Config
	models    map[metric.Kind]*markov.Predictor
	samples   map[metric.Kind]*timeseries.Ring
	errs      map[metric.Kind]*timeseries.Ring
}

// NewMonitor returns a monitor for the named component.
func NewMonitor(component string, cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		component: component,
		cfg:       cfg,
		models:    make(map[metric.Kind]*markov.Predictor, metric.NumKinds),
		samples:   make(map[metric.Kind]*timeseries.Ring, metric.NumKinds),
		errs:      make(map[metric.Kind]*timeseries.Ring, metric.NumKinds),
	}
	for _, k := range metric.Kinds {
		m.models[k] = markov.New(cfg.MarkovBins, cfg.MarkovDecay)
		m.samples[k] = timeseries.NewRing(cfg.RingCapacity)
		m.errs[k] = timeseries.NewRing(cfg.RingCapacity)
	}
	return m
}

// Component returns the monitored component's name.
func (m *Monitor) Component() string { return m.component }

// Observe feeds one metric sample (taken at time t) into the model and the
// bounded history. Samples must arrive in nondecreasing time order per
// metric.
func (m *Monitor) Observe(t int64, k metric.Kind, v float64) error {
	model, ok := m.models[k]
	if !ok {
		return fmt.Errorf("core: invalid metric kind %v", k)
	}
	predErr, _ := model.Observe(v)
	m.samples[k].Push(t, v)
	m.errs[k].Push(t, predErr)
	return nil
}

// ObserveVector feeds a full metric vector at time t.
func (m *Monitor) ObserveVector(t int64, vec *metric.Vector) error {
	for _, k := range metric.Kinds {
		if err := m.Observe(t, k, vec.Get(k)); err != nil {
			return err
		}
	}
	return nil
}

// windowWith returns the samples and aligned prediction errors covering
// [tv-W-Q, tv] for metric k under the given configuration.
func (m *Monitor) windowWith(tv int64, k metric.Kind, cfg Config) (vals, errs *timeseries.Series) {
	span := cfg.LookBack + cfg.BurstWindow
	vals = m.samples[k].WindowBefore(tv, span)
	errs = m.errs[k].WindowBefore(tv, span)
	return vals, errs
}

// contextErrors returns the prediction errors recorded before time t — the
// history preceding the look-back window, used for self-calibration.
func (m *Monitor) contextErrors(t int64, k metric.Kind) []float64 {
	s := m.errs[k].Series()
	w := s.Window(s.Start(), t)
	return w.Values()
}

// contextValues returns the raw samples recorded before time t.
func (m *Monitor) contextValues(t int64, k metric.Kind) []float64 {
	s := m.samples[k].Series()
	w := s.Window(s.Start(), t)
	return w.Values()
}
