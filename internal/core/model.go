package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"fchain/internal/ingest"
	"fchain/internal/markov"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// Typed ingestion errors. Callers that feed monitors from untrusted
// collection paths match these with errors.Is to decide between dropping the
// sample and surfacing a collection-pipeline fault.
var (
	// ErrBadSample rejects a non-finite (NaN or ±Inf) metric value.
	ErrBadSample = errors.New("core: bad sample")
	// ErrTimeRegression rejects a sample whose timestamp does not advance
	// past the last accepted one for the same metric. The dense ring
	// indexing assumes one sample per second; an equal or earlier timestamp
	// would silently misalign every later window query.
	ErrTimeRegression = errors.New("core: time regression")
)

// metricShard bundles everything the monitor keeps for one metric — the
// online prediction model, the bounded sample and prediction-error
// histories, the ingest sanitizer, and the last accepted timestamp — behind
// its own mutex. Sharding by metric is what lets the collection goroutine
// keep observing one metric while analysis workers snapshot the others:
// the two paths only ever contend on the single shard they both touch, and
// the analyze path holds that shard's lock just long enough to copy the
// retained history into its private arena.
type metricShard struct {
	mu        sync.Mutex
	model     *markov.Predictor
	samples   *timeseries.Ring
	errs      *timeseries.Ring
	sanitizer *ingest.Sanitizer
	lastT     int64
	hasLast   bool

	// stream is the per-metric streaming-selection state (stream.go), nil
	// unless Config.Streaming is on.
	stream *streamState

	// Panic quarantine (overload.go): a stream whose selection kernel
	// panicked is skipped until the cooldown elapses, then probed once.
	quarantined   bool
	quarantinedAt time.Time
	panicMsg      string
}

// push commits one validated sample to the shard's model and histories, and
// advances the streaming state when one is attached. The caller holds the
// shard's lock.
func (sh *metricShard) push(t int64, v float64) {
	predErr, _ := sh.model.Observe(v)
	prevLast, prevHas := sh.lastT, sh.hasLast
	if sh.stream != nil {
		sh.stream.beforePush(sh)
	}
	sh.samples.Push(t, v)
	sh.errs.Push(t, predErr)
	sh.lastT = t
	sh.hasLast = true
	if sh.stream != nil {
		sh.stream.afterPush(sh, v, prevLast, prevHas)
	}
}

// apply commits one sanitized sample, severing the metric's dense history
// first when the sanitizer marked a long collection gap: the pre-gap samples
// would misalign the dense window indexing, and predicting the first
// post-gap sample from the last pre-gap state would charge the model a
// phantom transition across the outage. The caller holds the shard's lock.
func (sh *metricShard) apply(s ingest.Sample) {
	if s.GapBefore > 0 {
		sh.samples.Clear()
		sh.errs.Clear()
		sh.model.Break()
		if sh.stream != nil {
			// Everything the streaming state accumulated describes the
			// severed pre-gap history; restart cold.
			sh.stream.resetState()
		}
	}
	sh.push(s.T, s.V)
}

// Monitor is the slave-side state for one monitored component: an online
// prediction model per metric plus bounded sample and prediction-error
// histories. It implements the "normal fluctuation modeling" module of
// Fig. 1: the model continuously learns each metric's evolving value
// pattern, so that change points caused by already-seen workload behaviour
// predict well while fault-induced changes do not (paper §II-A).
//
// Samples enter through one of two paths. Observe is strict: it rejects
// non-finite values and non-advancing timestamps with typed errors and is
// meant for callers that control their collection loop. Ingest tolerates
// dirty real-world streams: a per-metric sanitizer reorders slightly late
// samples, drops garbage, interpolates short collection gaps, and severs the
// dense history across long ones, accumulating quality counters that
// propagate into every report.
//
// Monitor is safe for concurrent use: state is sharded per metric, so the
// collection path (Observe/Ingest) and the analysis path contend only when
// they touch the same metric, and then only for the duration of a history
// copy. Analysis runs on a point-in-time copy of each shard taken under the
// shard lock.
type Monitor struct {
	component string
	cfg       Config
	// shards is indexed directly by metric.Kind (kinds start at 1; index 0
	// is unused), trading one unused slot for branch-free lookup.
	shards [metric.NumKinds + 1]metricShard
}

// NewMonitor returns a monitor for the named component.
func NewMonitor(component string, cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{component: component, cfg: cfg}
	for _, k := range metric.Kinds {
		sh := &m.shards[k]
		sh.model = markov.New(cfg.MarkovBins, cfg.MarkovDecay)
		sh.samples = timeseries.NewRing(cfg.RingCapacity)
		sh.errs = timeseries.NewRing(cfg.RingCapacity)
		sh.sanitizer = ingest.NewSanitizer(cfg.ingestConfig())
		if cfg.Streaming {
			sh.stream = newStreamState(cfg)
		}
	}
	return m
}

// Component returns the monitored component's name.
func (m *Monitor) Component() string { return m.component }

// shard returns metric k's shard, or nil for an invalid kind.
func (m *Monitor) shard(k metric.Kind) *metricShard {
	if k < 1 || int(k) >= len(m.shards) {
		return nil
	}
	return &m.shards[k]
}

// Observe feeds one metric sample (taken at time t) into the model and the
// bounded history. It is the strict path: values must be finite
// (ErrBadSample otherwise) and timestamps must strictly advance per metric
// (ErrTimeRegression otherwise). Collection paths that cannot guarantee
// either should use Ingest instead.
func (m *Monitor) Observe(t int64, k metric.Kind, v float64) error {
	sh := m.shard(k)
	if sh == nil {
		return fmt.Errorf("core: invalid metric kind %v", k)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: %s=%v at t=%d", ErrBadSample, k, v, t)
	}
	sh.mu.Lock()
	if sh.hasLast && t <= sh.lastT {
		last := sh.lastT
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s sample at t=%d, already observed t=%d", ErrTimeRegression, k, t, last)
	}
	sh.push(t, v)
	sh.mu.Unlock()
	return nil
}

// Ingest feeds one possibly-dirty metric sample through the per-metric
// sanitizer: non-finite values are dropped, corrupted magnitudes clamped,
// slightly out-of-order arrivals buffered and reordered, short collection
// gaps interpolated, and long gaps marked so the dense history is severed.
// The error reports only an invalid metric kind; data problems are absorbed
// into the quality counters rather than returned.
func (m *Monitor) Ingest(t int64, k metric.Kind, v float64) error {
	sh := m.shard(k)
	if sh == nil {
		return fmt.Errorf("core: invalid metric kind %v", k)
	}
	sh.mu.Lock()
	for _, s := range sh.sanitizer.Push(t, v) {
		sh.apply(s)
	}
	sh.mu.Unlock()
	return nil
}

// IngestVector feeds a full possibly-dirty metric vector at time t.
func (m *Monitor) IngestVector(t int64, vec *metric.Vector) error {
	for _, k := range metric.Kinds {
		if err := m.Ingest(t, k, vec.Get(k)); err != nil {
			return err
		}
	}
	return nil
}

// FlushIngest releases every sample still buffered in the reorder windows
// with timestamp <= upTo. Analyze calls it with tv so an analysis never runs
// behind samples the sanitizer is still holding.
func (m *Monitor) FlushIngest(upTo int64) {
	for _, k := range metric.Kinds {
		sh := &m.shards[k]
		sh.mu.Lock()
		for _, s := range sh.sanitizer.Flush(upTo) {
			sh.apply(s)
		}
		sh.mu.Unlock()
	}
}

// Quality aggregates the sanitizer statistics across all metrics of the
// component. Monitors fed exclusively through the strict Observe path
// report zero counters, which score as perfectly clean.
func (m *Monitor) Quality() ingest.Stats {
	var st ingest.Stats
	for _, k := range metric.Kinds {
		sh := &m.shards[k]
		sh.mu.Lock()
		st.Merge(sh.sanitizer.Stats())
		sh.mu.Unlock()
	}
	return st
}

// ObserveVector feeds a full metric vector at time t through the strict
// path.
func (m *Monitor) ObserveVector(t int64, vec *metric.Vector) error {
	for _, k := range metric.Kinds {
		if err := m.Observe(t, k, vec.Get(k)); err != nil {
			return err
		}
	}
	return nil
}

// TrendHints reports each metric model's precomputed short-horizon drift
// tier (markov.Predictor.TrendHint): metric name → +1 rising / -1 falling,
// with flat metrics omitted. It is O(metrics) — the models refresh the hint
// on every Observe — so status endpoints can poll it freely between
// localizations.
func (m *Monitor) TrendHints() map[string]int {
	out := make(map[string]int, metric.NumKinds)
	for _, k := range metric.Kinds {
		sh := &m.shards[k]
		sh.mu.Lock()
		h := sh.model.TrendHint()
		sh.mu.Unlock()
		if h != 0 {
			out[k.String()] = h
		}
	}
	return out
}

// materialize snapshots metric k's retained samples and prediction errors
// into the arena's series under the shard lock, returning both. All window
// and context queries of one analysis pass take zero-copy views of these;
// the views are invalidated by the arena's next materialize. Once the copy
// is out, analysis proceeds without blocking the collection path.
func (m *Monitor) materialize(k metric.Kind, a *arena) (sv, se *timeseries.Series) {
	sh := &m.shards[k]
	sh.mu.Lock()
	sv = sh.samples.SeriesInto(&a.vals)
	se = sh.errs.SeriesInto(&a.errs)
	sh.mu.Unlock()
	return sv, se
}
