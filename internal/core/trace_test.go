package core

import (
	"encoding/json"
	"fmt"
	"testing"

	"fchain/internal/metric"
	"fchain/internal/obs"
)

// tracedLocalizer builds a warmed-up multi-component localizer with an
// injected level shift on the latter half of its components.
func tracedLocalizer(t *testing.T, parallelism int) (*Localizer, int64) {
	t.Helper()
	const n, horizon = 4, 600
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
	}
	loc := NewLocalizer(Config{LookBack: 100, Parallelism: parallelism}, names)
	for i, name := range names {
		for ts := int64(0); ts < horizon; ts++ {
			for _, k := range metric.Kinds {
				v := float64(40+(ts+int64(i)*7)%23) + float64(int64(k))
				if i >= n/2 && ts >= horizon-40 {
					v += 35
				}
				if err := loc.Observe(name, ts, k, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return loc, horizon - 1
}

// TestLocalizeTracedPopulatesSpans is the acceptance criterion: every
// Localize must yield an attachable trace with at least one span per
// analyzed (component, metric) pair, plus the pipeline-phase spans.
func TestLocalizeTracedPopulatesSpans(t *testing.T) {
	loc, tv := tracedLocalizer(t, 1)
	diag, stats, tr := loc.LocalizeTraced(tv, nil)
	if tr == nil {
		t.Fatal("LocalizeTraced returned a nil trace")
	}
	if stats.Tasks != len(loc.Components())*metric.NumKinds {
		t.Errorf("stats.Tasks = %d, want %d", stats.Tasks, len(loc.Components())*metric.NumKinds)
	}
	if len(diag.Chain) == 0 {
		t.Fatal("test signal produced no abnormal components")
	}
	if tr.Find("localize") == nil || tr.Find("analyze") == nil || tr.Find("diagnose") == nil {
		t.Fatalf("missing pipeline-phase spans in %s", tr)
	}
	for _, name := range loc.Components() {
		comp := tr.Find("component:" + name)
		if comp == nil {
			t.Fatalf("no span for component %s", name)
		}
		for _, k := range metric.Kinds {
			found := false
			for _, s := range tr.FindAll("select:" + k.String()) {
				if s.Parent == comp.ID {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("no select span for (%s, %s)", name, k)
			}
		}
	}
	// Abnormal components must expose their selection evidence.
	for _, r := range diag.Chain {
		comp := tr.Find("component:" + r.Component)
		if v, ok := comp.Attr("changes"); !ok || v == "0" {
			t.Errorf("component %s span changes attr = %q, want > 0", r.Component, v)
		}
	}
	dg := tr.Find("diagnose")
	if v, ok := dg.Attr("chain"); !ok || v == "0" {
		t.Errorf("diagnose span chain attr = %q", v)
	}
	if _, ok := tr.Find("localize").Attr("verdict"); !ok {
		t.Error("localize span has no verdict attr")
	}
	// The trace must contain detect/filter evidence beneath the selections.
	if len(tr.FindAll("detect")) == 0 {
		t.Error("no detect spans recorded")
	}
}

// TestLocalizeTracedDeterministicAcrossWorkers extends the engine's
// determinism contract to traces: the normalized span tree must be
// bit-identical at any worker count.
func TestLocalizeTracedDeterministicAcrossWorkers(t *testing.T) {
	serialLoc, tv := tracedLocalizer(t, 1)
	serialDiag, _, serialTr := serialLoc.LocalizeTraced(tv, nil)
	serialJSON, err := json.Marshal(serialTr.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		loc, _ := tracedLocalizer(t, workers)
		diag, _, tr := loc.LocalizeTraced(tv, nil)
		if diag.String() != serialDiag.String() {
			t.Errorf("workers=%d: diagnosis differs: %s vs %s", workers, diag, serialDiag)
		}
		parJSON, err := json.Marshal(tr.Normalize())
		if err != nil {
			t.Fatal(err)
		}
		if string(parJSON) != string(serialJSON) {
			t.Errorf("workers=%d: normalized trace differs from serial\nserial:   %s\nparallel: %s",
				workers, serialJSON, parJSON)
		}
	}
}

// TestAnalyzeMonitorsTracedMatchesUntraced checks that tracing does not
// perturb results and that the slave-side traced entry point records the
// same structure.
func TestAnalyzeMonitorsTracedMatchesUntraced(t *testing.T) {
	const horizon = 600
	monitors, _ := feedMonitors(t, 4, horizon)
	plain, _ := AnalyzeMonitors(monitors, horizon-1, 0, 1)
	traced, _, tr := AnalyzeMonitorsTraced(monitors, horizon-1, 0, 4)
	if len(plain) != len(traced) {
		t.Fatalf("report counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i].Component != traced[i].Component || plain[i].Onset != traced[i].Onset ||
			len(plain[i].Changes) != len(traced[i].Changes) {
			t.Errorf("report %d differs: %+v vs %+v", i, plain[i], traced[i])
		}
	}
	if tr == nil || tr.Find("analyze") == nil {
		t.Fatalf("traced analyze missing root span: %s", tr)
	}
	if got := len(tr.FindAll("component:c0")); got != 1 {
		t.Errorf("component:c0 spans = %d, want 1", got)
	}
	var nilTr *obs.Trace
	if nilTr.SpanCount() != 0 {
		t.Error("nil trace sanity check failed")
	}
}
