package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fchain/internal/metric"
)

// trainedMonitor feeds a learned periodic signal with a fault step into
// every metric.
func trainedMonitor(t *testing.T, stepAt int) *Monitor {
	t.Helper()
	m := NewMonitor("db", DefaultConfig())
	for _, k := range metric.Kinds {
		feedSeries(t, m, k, periodicWithStep(900, stepAt, 40, 0.5, int64(k)))
	}
	return m
}

func TestMonitorSnapshotRoundTrip(t *testing.T) {
	m := trainedMonitor(t, 850)
	snap := m.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded MonitorSnapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	fresh := NewMonitor("db", DefaultConfig())
	if err := fresh.Restore(&decoded); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// The restored monitor must produce the same analysis verdict.
	want := m.Analyze(899)
	got := fresh.Analyze(899)
	if !want.Abnormal() {
		t.Fatal("control analysis found nothing; test signal broken")
	}
	if !got.Abnormal() || got.Onset != want.Onset {
		t.Errorf("restored analysis = %+v, want onset %d", got, want.Onset)
	}
	// And its ingestion clock must carry over.
	if err := fresh.Observe(899, metric.CPU, 1); err == nil {
		t.Error("restored monitor accepted a replayed timestamp")
	}
	if err := fresh.Observe(900, metric.CPU, 1); err != nil {
		t.Errorf("restored monitor rejected an advancing sample: %v", err)
	}
}

func TestMonitorRestoreRejectsMismatch(t *testing.T) {
	m := trainedMonitor(t, -1)
	if err := NewMonitor("web", DefaultConfig()).Restore(m.Snapshot()); err == nil {
		t.Error("component mismatch accepted")
	}
	bad := m.Snapshot()
	bad.Models["bogus_metric"] = bad.Models[metric.CPU.String()]
	if err := NewMonitor("db", DefaultConfig()).Restore(bad); err == nil {
		t.Error("unknown metric name accepted")
	}
	if err := m.Restore(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.ckpt")
	m := trainedMonitor(t, 850)
	if err := SaveCheckpoint(path, m.Snapshot()); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	var snap MonitorSnapshot
	if err := LoadCheckpoint(path, &snap); err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	fresh := NewMonitor("db", DefaultConfig())
	if err := fresh.Restore(&snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !fresh.Analyze(899).Abnormal() {
		t.Error("checkpointed state lost the fault signature")
	}
	// No temp files may linger after a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir holds %d files, want 1", len(entries))
	}
}

func TestLoadCheckpointDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.ckpt")
	if err := SaveCheckpoint(path, trainedMonitor(t, -1).Snapshot()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Digit flip inside the payload region (after the "payload" key, so the
	// envelope's own fields stay intact): JSON stays valid, only the
	// checksum can tell.
	flipped := append([]byte(nil), raw...)
	start := bytes.Index(flipped, []byte(`"payload"`))
	if start < 0 {
		t.Fatal("no payload field in checkpoint file")
	}
	mutated := false
	for i := start; i < len(flipped); i++ {
		if flipped[i] == '7' {
			flipped[i] = '9'
			mutated = true
			break
		}
	}
	if !mutated {
		t.Fatal("no digit to flip in payload")
	}
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	var snap MonitorSnapshot
	if err := LoadCheckpoint(path, &snap); err == nil {
		t.Error("corrupted checkpoint accepted")
	}

	// Truncated file.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := LoadCheckpoint(path, &snap); err == nil {
		t.Error("truncated checkpoint accepted")
	}

	// Wrong version.
	var f map[string]any
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	f["version"] = CheckpointVersion + 1
	bumped, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bumped, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := LoadCheckpoint(path, &snap); err == nil {
		t.Error("future-version checkpoint accepted")
	}

	// Missing file surfaces an error for the caller's cold-start fallback.
	if err := LoadCheckpoint(filepath.Join(dir, "absent.ckpt"), &snap); err == nil {
		t.Error("missing checkpoint accepted")
	}
}
