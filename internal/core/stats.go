package core

import (
	"fmt"
	"math/bits"
	"strings"
)

// latencyBuckets is the number of log2 histogram buckets: bucket i counts
// durations in [2^i, 2^(i+1)) ns, so 40 buckets span 1 ns to ~18 minutes.
const latencyBuckets = 40

// LatencyHist is a fixed-size log2-bucketed nanosecond histogram. It is a
// plain value (no pointers, no locks): workers accumulate into private
// copies and Merge them, so recording on the hot path costs one increment
// and no allocation.
type LatencyHist struct {
	Buckets [latencyBuckets]int64 `json:"buckets"`
	Count   int64                 `json:"count"`
	SumNS   int64                 `json:"sum_ns"`
	MaxNS   int64                 `json:"max_ns"`
}

// Observe records one duration in nanoseconds.
func (h *LatencyHist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b > 0 {
		b-- // bits.Len64(1<<i) == i+1; bucket index is i
	}
	if b >= latencyBuckets {
		b = latencyBuckets - 1
	}
	h.Buckets[b]++
	h.Count++
	h.SumNS += ns
	if ns > h.MaxNS {
		h.MaxNS = ns
	}
}

// Merge folds another histogram into h.
func (h *LatencyHist) Merge(o LatencyHist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.SumNS += o.SumNS
	if o.MaxNS > h.MaxNS {
		h.MaxNS = o.MaxNS
	}
}

// MeanNS returns the mean recorded duration in nanoseconds (0 when empty).
func (h LatencyHist) MeanNS() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumNS / h.Count
}

// QuantileNS returns an upper bound on the q-quantile (q in [0,1]) of the
// recorded durations: the top edge of the bucket holding the q-th
// observation. Log2 buckets bound the estimate within 2x of the true value.
func (h LatencyHist) QuantileNS(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.Count-1))
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen > rank {
			edge := int64(1)<<(i+1) - 1
			// The recorded maximum is always a valid upper bound and is
			// tighter whenever the bucket edge overshoots it — and for the
			// overflow bucket, whose nominal edge can sit *below* the
			// largest observation, it is the only correct answer.
			if i == latencyBuckets-1 || edge > h.MaxNS {
				edge = h.MaxNS
			}
			return edge
		}
	}
	return h.MaxNS
}

// String renders a compact "n=12 mean=1.2ms p99<=4.1ms max=3.9ms" summary.
func (h LatencyHist) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%s p99<=%s max=%s",
		h.Count, fmtNS(h.MeanNS()), fmtNS(h.QuantileNS(0.99)), fmtNS(h.MaxNS))
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// PoolStats reports how the analysis engine spent its time on one localize
// call: the worker pool shape plus per-phase latency histograms. Select
// observations are per (component, metric) analysis task; Diagnose
// observations cover each integrated-diagnosis pass (adaptive look-back
// retries record one observation per pass).
type PoolStats struct {
	// Workers is the worker pool size the analysis ran with (1 = serial).
	Workers int `json:"workers"`
	// Tasks is the number of per-metric selection tasks executed.
	Tasks int `json:"tasks"`
	// Select is the latency histogram of the abnormal change point
	// selection tasks.
	Select LatencyHist `json:"select,omitzero"`
	// Diagnose is the latency histogram of the integrated diagnosis passes.
	Diagnose LatencyHist `json:"diagnose,omitzero"`
	// Panics counts selection tasks whose kernel panicked and whose
	// stream was quarantined instead of taking the process down.
	Panics int `json:"panics,omitempty"`
}

// Merge folds another PoolStats into s, keeping the larger pool shape.
func (s *PoolStats) Merge(o PoolStats) {
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Tasks += o.Tasks
	s.Select.Merge(o.Select)
	s.Diagnose.Merge(o.Diagnose)
	s.Panics += o.Panics
}

// String renders a compact summary for CLI status lines.
func (s PoolStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workers=%d tasks=%d", s.Workers, s.Tasks)
	if s.Select.Count > 0 {
		fmt.Fprintf(&b, " select[%s]", s.Select)
	}
	if s.Diagnose.Count > 0 {
		fmt.Fprintf(&b, " diagnose[%s]", s.Diagnose)
	}
	if s.Panics > 0 {
		fmt.Fprintf(&b, " panics=%d", s.Panics)
	}
	return b.String()
}
