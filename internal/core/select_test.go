package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// feedSeries pushes a full value series into one metric of a monitor.
func feedSeries(t *testing.T, m *Monitor, k metric.Kind, vals []float64) {
	t.Helper()
	for i, v := range vals {
		if err := m.Observe(int64(i), k, v); err != nil {
			t.Fatal(err)
		}
	}
}

// periodicWithStep builds a learned periodic signal with an optional fault
// step at stepAt.
func periodicWithStep(n int, stepAt int, stepHeight float64, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		v := 50 + 10*math.Sin(2*math.Pi*float64(i)/60) + noise*rng.NormFloat64()
		if stepAt >= 0 && i >= stepAt {
			v += stepHeight
		}
		vals[i] = v
	}
	return vals
}

func TestObserveInvalidKind(t *testing.T) {
	m := NewMonitor("c", DefaultConfig())
	if err := m.Observe(0, metric.Kind(99), 1); err == nil {
		t.Error("invalid kind should error")
	}
}

func TestObserveRejectsBadSamples(t *testing.T) {
	m := NewMonitor("c", DefaultConfig())
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := m.Observe(0, metric.CPU, v)
		if !errors.Is(err, ErrBadSample) {
			t.Errorf("Observe(%v) = %v, want ErrBadSample", v, err)
		}
	}
	// Rejected samples must leave no trace in the history.
	if _, _, ok := m.shards[metric.CPU].samples.Last(); ok {
		t.Error("rejected sample was recorded")
	}
	if err := m.Observe(0, metric.CPU, 1); err != nil {
		t.Errorf("valid sample after rejections: %v", err)
	}
}

func TestObserveRejectsTimeRegression(t *testing.T) {
	m := NewMonitor("c", DefaultConfig())
	if err := m.Observe(10, metric.CPU, 1); err != nil {
		t.Fatal(err)
	}
	for _, tt := range []int64{9, 10} { // earlier and equal both regress
		err := m.Observe(tt, metric.CPU, 2)
		if !errors.Is(err, ErrTimeRegression) {
			t.Errorf("Observe(t=%d) = %v, want ErrTimeRegression", tt, err)
		}
	}
	// Other metrics keep independent clocks.
	if err := m.Observe(5, metric.Memory, 1); err != nil {
		t.Errorf("independent metric rejected: %v", err)
	}
	if err := m.Observe(11, metric.CPU, 2); err != nil {
		t.Errorf("advancing sample rejected: %v", err)
	}
	if m.shards[metric.CPU].samples.Len() != 2 {
		t.Errorf("history holds %d samples, want 2", m.shards[metric.CPU].samples.Len())
	}
}

func TestIngestAbsorbsDirtWithQuality(t *testing.T) {
	m := NewMonitor("c", DefaultConfig())
	if err := m.Ingest(0, metric.CPU, 50); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest(1, metric.CPU, math.NaN()); err != nil {
		t.Fatalf("Ingest must absorb NaN, got %v", err)
	}
	for ti := int64(2); ti < 40; ti++ {
		if err := m.Ingest(ti, metric.CPU, 50); err != nil {
			t.Fatal(err)
		}
	}
	m.FlushIngest(100)
	st := m.Quality()
	if st.DroppedInvalid != 1 || st.Filled != 1 {
		t.Errorf("stats = %v, want the NaN dropped and its slot interpolated", st)
	}
	if q := qualityOf(st); q.Confidence() >= 1 || q.Confidence() <= 0 {
		t.Errorf("confidence = %v, want degraded in (0,1)", q.Confidence())
	}
	rep := m.Analyze(90)
	if rep.Quality.Stats.DroppedInvalid != 1 {
		t.Errorf("report quality missing: %+v", rep.Quality)
	}
}

func TestIngestLongGapSeversHistory(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFillGap = 5
	cfg.ReorderWindow = 1
	m := NewMonitor("c", cfg)
	for ti := int64(0); ti < 100; ti++ {
		if err := m.Ingest(ti, metric.CPU, 50); err != nil {
			t.Fatal(err)
		}
	}
	// 900-second outage, far beyond MaxFillGap.
	for ti := int64(1000); ti < 1050; ti++ {
		if err := m.Ingest(ti, metric.CPU, 50); err != nil {
			t.Fatal(err)
		}
	}
	m.FlushIngest(2000)
	s := m.shards[metric.CPU].samples.Series()
	if s.Start() < 1000 {
		t.Errorf("pre-gap history survived: series starts at %d", s.Start())
	}
	if s.Len() != 50 {
		t.Errorf("post-gap history holds %d samples, want 50", s.Len())
	}
	if st := m.Quality(); st.LongGaps != 1 || st.GapSeconds == 0 {
		t.Errorf("gap not counted: %v", st)
	}
}

func TestObserveVector(t *testing.T) {
	m := NewMonitor("c", DefaultConfig())
	var vec metric.Vector
	vec.Set(metric.CPU, 42)
	if err := m.ObserveVector(0, &vec); err != nil {
		t.Fatal(err)
	}
	if _, v, ok := m.shards[metric.CPU].samples.Last(); !ok || v != 42 {
		t.Errorf("sample not recorded: %v %v", v, ok)
	}
}

func TestAnalyzeCleanSignalNoAbnormal(t *testing.T) {
	// A learned periodic signal with mild noise must produce no abnormal
	// change points: its change points are predictable.
	m := NewMonitor("c", DefaultConfig())
	vals := periodicWithStep(900, -1, 0, 0.5, 1)
	feedSeries(t, m, metric.CPU, vals)
	report := m.Analyze(899)
	for _, ch := range report.Changes {
		if ch.Metric == metric.CPU {
			t.Errorf("clean periodic signal flagged abnormal: %+v", ch)
		}
	}
}

func TestAnalyzeDetectsUnseenStep(t *testing.T) {
	// A step the model never saw must be selected, with the onset near the
	// true injection time.
	m := NewMonitor("c", DefaultConfig())
	const stepAt = 850
	vals := periodicWithStep(900, stepAt, 40, 0.5, 2)
	feedSeries(t, m, metric.CPU, vals)
	report := m.Analyze(899)
	if !report.Abnormal() {
		t.Fatal("unseen step not flagged")
	}
	found := false
	for _, ch := range report.Changes {
		if ch.Metric != metric.CPU {
			continue
		}
		found = true
		if ch.Onset < stepAt-6 || ch.Onset > stepAt+6 {
			t.Errorf("onset = %d, want near %d", ch.Onset, stepAt)
		}
		if ch.Direction != timeseries.TrendUp {
			t.Errorf("direction = %v, want up", ch.Direction)
		}
		if ch.PredErr <= ch.Expected {
			t.Errorf("selected point must exceed expected error: %v <= %v", ch.PredErr, ch.Expected)
		}
	}
	if !found {
		t.Error("no CPU change in report")
	}
}

func TestAnalyzeDownwardStep(t *testing.T) {
	m := NewMonitor("c", DefaultConfig())
	vals := periodicWithStep(900, 860, -35, 0.5, 3)
	feedSeries(t, m, metric.CPU, vals)
	report := m.Analyze(899)
	if !report.Abnormal() {
		t.Fatal("downward step not flagged")
	}
	if report.Direction() != timeseries.TrendDown {
		t.Errorf("direction = %v, want down", report.Direction())
	}
}

func TestAnalyzeBurstyMetricNotFlagged(t *testing.T) {
	// Fig. 3's reduce-node scenario: a very bursty but stationary metric
	// produces outlier change points, yet the adaptive expected error is
	// high, so none survive the predictability filter.
	m := NewMonitor("c", DefaultConfig())
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 900)
	for i := range vals {
		vals[i] = 30 + 12*rng.NormFloat64()
		if rng.Float64() < 0.05 {
			vals[i] += 40 * rng.Float64() // random peaks
		}
	}
	feedSeries(t, m, metric.DiskWrite, vals)
	report := m.Analyze(899)
	for _, ch := range report.Changes {
		if ch.Metric == metric.DiskWrite {
			t.Errorf("bursty stationary metric flagged abnormal: %+v", ch)
		}
	}
}

func TestAnalyzeBurstyVsFaultySelection(t *testing.T) {
	// The Fig. 3 pair: the faulty node's disk-write ramp is selected while
	// the normal node's bursty CPU is filtered.
	cfg := DefaultConfig()
	faulty := NewMonitor("map", cfg)
	normal := NewMonitor("reduce", cfg)
	rng := rand.New(rand.NewSource(5))
	const n, fault = 900, 840
	for i := 0; i < n; i++ {
		fv := 20 + 5*math.Sin(2*math.Pi*float64(i)/45) + rng.NormFloat64()
		if i >= fault {
			fv += float64(i-fault) * 1.5 // fault ramp
		}
		if err := faulty.Observe(int64(i), metric.DiskWrite, fv); err != nil {
			t.Fatal(err)
		}
		nv := 40 + 15*rng.NormFloat64()
		if rng.Float64() < 0.04 {
			nv += 50
		}
		if err := normal.Observe(int64(i), metric.CPU, nv); err != nil {
			t.Fatal(err)
		}
	}
	fr := faulty.Analyze(n - 1)
	nr := normal.Analyze(n - 1)
	if !fr.Abnormal() {
		t.Error("faulty map node's ramp not selected")
	}
	if nr.Abnormal() {
		t.Errorf("normal reduce node's bursty CPU wrongly selected: %+v", nr.Changes)
	}
}

func TestRollbackFindsRampStart(t *testing.T) {
	// Gradual manifestation: the selected change point may sit mid-ramp;
	// rollback must walk to the ramp start.
	m := NewMonitor("c", DefaultConfig())
	rng := rand.New(rand.NewSource(6))
	const n, fault = 900, 820
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 100 + 2*rng.NormFloat64()
		if i >= fault {
			vals[i] += float64(i-fault) * 2
		}
	}
	feedSeries(t, m, metric.Memory, vals)
	report := m.Analyze(n - 1)
	if !report.Abnormal() {
		t.Fatal("ramp not detected")
	}
	if report.Onset < fault-8 || report.Onset > fault+10 {
		t.Errorf("onset = %d, want near ramp start %d", report.Onset, fault)
	}
}

func TestAnalyzeEarliestOnsetAcrossMetrics(t *testing.T) {
	m := NewMonitor("c", DefaultConfig())
	cpu := periodicWithStep(900, 870, 40, 0.5, 7)
	mem := periodicWithStep(900, 845, 40, 0.5, 8)
	for i := 0; i < 900; i++ {
		if err := m.Observe(int64(i), metric.CPU, cpu[i]); err != nil {
			t.Fatal(err)
		}
		if err := m.Observe(int64(i), metric.Memory, mem[i]); err != nil {
			t.Fatal(err)
		}
	}
	report := m.Analyze(899)
	if !report.Abnormal() {
		t.Fatal("nothing detected")
	}
	if report.Onset > 852 {
		t.Errorf("component onset = %d, want the earlier memory onset (~845)", report.Onset)
	}
	kinds := report.AbnormalMetrics()
	if len(kinds) < 1 {
		t.Fatal("no abnormal metrics listed")
	}
}

func TestAnalyzeShortHistory(t *testing.T) {
	m := NewMonitor("c", DefaultConfig())
	for i := 0; i < 5; i++ {
		if err := m.Observe(int64(i), metric.CPU, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	report := m.Analyze(4)
	if report.Abnormal() {
		t.Error("too-short history should not produce abnormal changes")
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	build := func() ComponentReport {
		m := NewMonitor("c", DefaultConfig())
		feedSeries(t, m, metric.CPU, periodicWithStep(900, 850, 40, 0.5, 9))
		return m.Analyze(899)
	}
	a, b := build(), build()
	if len(a.Changes) != len(b.Changes) || a.Onset != b.Onset {
		t.Errorf("analysis not deterministic: %+v vs %+v", a, b)
	}
}

func TestAdaptiveSmoothWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// White noise: wide window.
	noisy := make([]float64, 200)
	for i := range noisy {
		noisy[i] = rng.NormFloat64()
	}
	if got := adaptiveSmoothWidth(noisy, 5, &arena{}); got != 11 {
		t.Errorf("white-noise width = %d, want 11", got)
	}
	// Slow sine: keep the default.
	smooth := make([]float64, 200)
	for i := range smooth {
		smooth[i] = math.Sin(2 * math.Pi * float64(i) / 100)
	}
	if got := adaptiveSmoothWidth(smooth, 5, &arena{}); got != 5 {
		t.Errorf("smooth-signal width = %d, want 5", got)
	}
	// Too little context: keep the default.
	if got := adaptiveSmoothWidth(noisy[:8], 5, &arena{}); got != 5 {
		t.Errorf("short-context width = %d, want 5", got)
	}
	// Constant signal: keep the default.
	if got := adaptiveSmoothWidth(make([]float64, 50), 5, &arena{}); got != 5 {
		t.Errorf("constant-signal width = %d, want 5", got)
	}
}

func TestAdaptiveSmoothingSelectionStillWorks(t *testing.T) {
	cfg := Config{AdaptiveSmoothing: true}
	m := NewMonitor("c", cfg)
	vals := periodicWithStep(900, 850, 40, 0.5, 12)
	feedSeries(t, m, metric.CPU, vals)
	report := m.Analyze(899)
	if !report.Abnormal() {
		t.Fatal("step not detected with adaptive smoothing")
	}
}
