package core

import (
	"fmt"
	"strings"

	"fchain/internal/obs"
)

// LocalizeResult is a diagnosis plus the coverage metadata a caller needs to
// judge how much of the application the diagnosis actually saw. A master
// operating through a partition or with crashed slaves still produces a
// diagnosis from whatever reports arrive, but a partial view weakens both
// the propagation chain and the external-factor check; Degraded tells the
// caller to treat the verdict accordingly (e.g. delay auto-remediation,
// re-run once coverage recovers).
type LocalizeResult struct {
	Diagnosis Diagnosis `json:"diagnosis"`

	// SlavesAnswered / SlavesTotal count the slaves that returned reports
	// versus those the request fanned out to.
	SlavesAnswered int `json:"slaves_answered"`
	SlavesTotal    int `json:"slaves_total"`

	// ComponentsReported / ComponentsKnown count the components covered by
	// the received reports versus every component ever registered (the
	// application size used by the external-factor check).
	ComponentsReported int `json:"components_reported"`
	ComponentsKnown    int `json:"components_known"`

	// Retries is the number of extra per-slave attempts spent beyond the
	// first round.
	Retries int `json:"retries,omitempty"`

	// Degraded is set when any slave or component was missing from the
	// view the diagnosis ran over.
	Degraded bool `json:"degraded"`

	// Errors summarizes per-slave failures (timeouts, disconnects, open
	// circuit breakers), one entry per unanswered slave.
	Errors []string `json:"errors,omitempty"`

	// MissingComponents lists, sorted, the registered components no received
	// report covered — the concrete gap behind a Degraded verdict.
	MissingComponents []string `json:"missing_components,omitempty"`

	// Truncated is set when any component's analysis was cut short by the
	// deadline budget (its report carries a non-full Tier).
	Truncated bool `json:"truncated,omitempty"`

	// Overloaded is set when the request was shed by admission control
	// before any analysis ran.
	Overloaded bool `json:"overloaded,omitempty"`

	// RetryAfterMS is the backoff hint attached to an overload shed (0
	// otherwise): how long the caller should wait before retrying, derived
	// from the admission queue depth at shed time.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`

	// Quarantined maps components to the metric streams skipped because a
	// previous selection kernel panic quarantined them.
	Quarantined map[string][]string `json:"quarantined_streams,omitempty"`

	// Quality maps each reporting component to the data quality of the
	// streams its report was derived from. Components fed clean, in-order
	// data score 1; the map lets a caller tell "db is the culprit" derived
	// from pristine data apart from the same verdict derived from a stream
	// that lost half its samples.
	Quality map[string]DataQuality `json:"quality,omitempty"`

	// ClockOffsets records the estimated clock offset (seconds, slave
	// clock minus master clock) of each slave whose reports needed onset
	// normalization; slaves in sync with the master are absent.
	ClockOffsets map[string]int64 `json:"clock_offsets,omitempty"`

	// Stats carries the analysis engine's timing counters for this call:
	// in-process localizers report per-metric selection task latencies,
	// the cluster master reports per-slave answer latencies, and both time
	// the integrated diagnosis — the latency the cluster CLI surfaces
	// alongside quality and coverage.
	Stats PoolStats `json:"stats,omitzero"`

	// Trace is the pipeline trace for this call — one span per phase, per
	// component, per metric selection, with candidate change points and
	// filter decisions as attributes. nil unless the caller enabled
	// tracing.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// MinQuality returns the lowest per-component quality confidence in the
// view (1 when no quality information was reported).
func (r LocalizeResult) MinQuality() float64 {
	min := 1.0
	for _, q := range r.Quality {
		if c := q.Confidence(); c < min {
			min = c
		}
	}
	return min
}

// Coverage returns the fraction of known components the diagnosis saw, in
// [0, 1]; a full view returns 1.
func (r LocalizeResult) Coverage() float64 {
	if r.ComponentsKnown == 0 {
		return 0
	}
	return float64(r.ComponentsReported) / float64(r.ComponentsKnown)
}

// String renders the diagnosis with its coverage, e.g.
// "culprits: db(onset=1702,source) [4/4 slaves, 4/4 components]" or a
// degraded "... [2/3 slaves, 2/4 components, DEGRADED]".
func (r LocalizeResult) String() string {
	var b strings.Builder
	b.WriteString(r.Diagnosis.String())
	fmt.Fprintf(&b, " [%d/%d slaves, %d/%d components",
		r.SlavesAnswered, r.SlavesTotal, r.ComponentsReported, r.ComponentsKnown)
	if r.Degraded {
		b.WriteString(", DEGRADED")
	}
	if r.Truncated {
		b.WriteString(", TRUNCATED")
	}
	b.WriteString("]")
	return b.String()
}
