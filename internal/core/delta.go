package core

// Replication deltas for warm-standby owners. A primary slave ships each
// component's state to its standby on a batched interval; rather than
// re-serializing the full MonitorSnapshot every tick, the steady-state frame
// carries only the samples observed since the previous ship, and the standby
// replays them through its shadow monitor's strict Observe path. Monitor
// state is a pure function of the observed sample sequence plus the config
// (the same invariant the checkpoint-restore and handoff paths already rely
// on), so replay reproduces the primary's model, ring, and streaming state
// byte-identically — there is no separate "apply a model diff" code path to
// keep in sync with Observe.
//
// The incremental path is only sound while the primary's bounded ring still
// retains every sample past the shipped floor. Eviction past the floor, a
// gap sever (Clear), or a brand-new metric all force a full-snapshot frame;
// the standby likewise rejects any delta whose Base precondition does not
// match its shadow state (ErrReplGap), and the primary answers a rejection
// by resending the full snapshot. Either endpoint can therefore lose state
// at any time and the channel self-heals on the next tick.

import (
	"errors"
	"fmt"

	"fchain/internal/metric"
)

// ErrReplGap rejects a replication delta whose Base precondition does not
// match the shadow monitor's state: samples are missing between the two, so
// replay would silently diverge. The primary resolves it by shipping a full
// snapshot.
var ErrReplGap = errors.New("core: replication gap")

// ReplSample is one (timestamp, value) observation inside a delta.
type ReplSample struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// ReplDelta is one replication frame's payload. Exactly one of two shapes is
// meaningful: Full carries a complete MonitorSnapshot (first ship, or
// recovery after a gap), or Base+Samples carry an incremental sample replay.
// Base records, per metric name, the primary's last-shipped timestamp — the
// precondition the standby's shadow must match before replaying Samples;
// metrics the primary has never observed are absent from Base.
type ReplDelta struct {
	Component string                  `json:"component"`
	Full      *MonitorSnapshot        `json:"full,omitempty"`
	Base      map[string]int64        `json:"base,omitempty"`
	Samples   map[string][]ReplSample `json:"samples,omitempty"`
}

// DeltaInto fills d with the samples observed since floors (metric name →
// last shipped timestamp, as maintained by the caller from previous deltas)
// and reports whether anything new was extracted. ok=false means the
// incremental path is unsound — nil floors (nothing shipped yet), a metric
// that gained its first samples since the last ship, a gap sever, or ring
// eviction past the floor — and the caller must ship a full Snapshot
// instead. d's maps and slices are reused across calls, so steady-state
// extraction allocates nothing (see the alloc guard test).
//
// DeltaInto does not advance floors; the caller advances them only after the
// frame is handed to the transport, so a failed send re-extracts the same
// samples next tick.
func (m *Monitor) DeltaInto(d *ReplDelta, floors map[string]int64) (changed, ok bool) {
	if floors == nil {
		return false, false
	}
	d.Component = m.component
	d.Full = nil
	if d.Base == nil {
		d.Base = make(map[string]int64, metric.NumKinds)
	}
	if d.Samples == nil {
		d.Samples = make(map[string][]ReplSample, metric.NumKinds)
	}
	for _, k := range metric.Kinds {
		name := k.String()
		sh := &m.shards[k]
		sh.mu.Lock()
		floor, haveFloor := floors[name]
		if !sh.hasLast {
			sh.mu.Unlock()
			if haveFloor {
				// The shadow holds samples for a metric we no longer have any
				// state for; only a full snapshot can reconcile that.
				return false, false
			}
			delete(d.Base, name)
			d.Samples[name] = d.Samples[name][:0]
			continue
		}
		if !haveFloor || sh.lastT < floor {
			sh.mu.Unlock()
			return false, false
		}
		if sh.lastT == floor {
			d.Base[name] = floor
			d.Samples[name] = d.Samples[name][:0]
			sh.mu.Unlock()
			continue
		}
		ring := sh.samples
		n := ring.Len()
		oldest := int64(0)
		if n > 0 {
			oldest, _ = ring.At(0)
		}
		if n == 0 || oldest > floor {
			// Eviction or a gap sever dropped samples past the floor; the
			// replay sequence is broken.
			sh.mu.Unlock()
			return false, false
		}
		// Binary search for the first retained sample newer than the floor
		// (timestamps are strictly ascending within a ring).
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if t, _ := ring.At(mid); t <= floor {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		buf := d.Samples[name][:0]
		for i := lo; i < n; i++ {
			t, v := ring.At(i)
			buf = append(buf, ReplSample{T: t, V: v})
		}
		d.Samples[name] = buf
		d.Base[name] = floor
		changed = true
		sh.mu.Unlock()
	}
	return changed, true
}

// ApplyDelta applies one replication frame to this (shadow) monitor. A Full
// frame replaces the state wholesale via Restore. An incremental frame first
// verifies every metric's Base precondition against the shadow's last
// accepted timestamps — any mismatch returns ErrReplGap without mutating
// anything — then replays the samples through the strict Observe path,
// which reproduces the primary's post-ship state exactly.
//
// Concurrent ApplyDelta calls for the same monitor are the caller's problem:
// the replication channel delivers one component's frames in order.
func (m *Monitor) ApplyDelta(d *ReplDelta) error {
	if d == nil {
		return fmt.Errorf("core: nil replication delta")
	}
	if d.Full != nil {
		return m.Restore(d.Full)
	}
	if d.Component != m.component {
		return fmt.Errorf("core: delta is for component %q, monitor is %q", d.Component, m.component)
	}
	for _, k := range metric.Kinds {
		name := k.String()
		sh := &m.shards[k]
		sh.mu.Lock()
		has, last := sh.hasLast, sh.lastT
		sh.mu.Unlock()
		base, haveBase := d.Base[name]
		if haveBase != has || (haveBase && base != last) {
			return fmt.Errorf("%w: %s shadow at t=%d (present=%v), delta base t=%d (present=%v)",
				ErrReplGap, name, last, has, base, haveBase)
		}
	}
	for _, k := range metric.Kinds {
		for _, s := range d.Samples[k.String()] {
			if err := m.Observe(s.T, k, s.V); err != nil {
				return fmt.Errorf("%w: replay %s: %v", ErrReplGap, k, err)
			}
		}
	}
	return nil
}
