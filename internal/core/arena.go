package core

import (
	"sync"

	"fchain/internal/changepoint"
	"fchain/internal/timeseries"
)

// arena is the scratch memory one analysis worker owns while it runs: the
// materialized sample/error series the zero-copy window views point into,
// the smoothing/detrending/percentile buffers, and the change-point
// detector's scratch. Pooling arenas is what
// keeps the hot localize path allocation-free once the buffers have grown to
// the workload's window sizes.
//
// Ownership rule: an arena belongs to exactly one goroutine between getArena
// and putArena, and everything analyzeMetric returns by value is copied out
// of it before the next metric reuses the buffers.
type arena struct {
	vals timeseries.Series // materialized samples; views alias its storage
	errs timeseries.Series // materialized prediction errors

	smooth  []float64 // smoothed window
	detrend []float64 // detrended FFT input
	diffs   []float64 // sample-to-sample differences (adaptive smoothing)
	pctile  []float64 // percentile sort buffer

	cp changepoint.Scratch
}

var arenaPool = sync.Pool{New: func() any { return &arena{} }}

func getArena() *arena  { return arenaPool.Get().(*arena) }
func putArena(a *arena) { arenaPool.Put(a) }

// reset discards the arena's scratch in place. A panicking kernel can leave
// buffers and the change-point scratch mid-update; resetting costs the
// grown buffers but guarantees the next task starts from a clean state.
func (a *arena) reset() {
	*a = arena{}
}
