package core

import (
	"reflect"
	"testing"

	"fchain/internal/depgraph"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// abnormalReport builds a minimal abnormal ComponentReport with one CPU
// change at the given onset and trend.
func abnormalReport(name string, onset int64, dir timeseries.Trend) ComponentReport {
	return ComponentReport{
		Component: name,
		Onset:     onset,
		Changes: []AbnormalChange{{
			Component: name,
			Metric:    metric.CPU,
			ChangeAt:  onset + 3,
			Onset:     onset,
			Direction: dir,
		}},
	}
}

func TestDiagnoseEdgeCases(t *testing.T) {
	up, down := timeseries.TrendUp, timeseries.TrendDown
	cfg := Config{}.withDefaults() // ConcurrencyThreshold=2, ExternalSpread=6

	deps := depgraph.NewGraph()
	deps.AddEdge("web", "app", 1)
	deps.AddEdge("app", "db", 1)

	tests := []struct {
		name         string
		reports      []ComponentReport
		total        int
		deps         *depgraph.Graph
		wantCulprits []string
		wantReasons  []string
		wantExternal bool
	}{
		{
			name:    "empty chain pinpoints nothing",
			reports: nil,
			total:   3,
		},
		{
			name: "no abnormal reports pinpoints nothing",
			reports: []ComponentReport{
				{Component: "web"}, {Component: "db"},
			},
			total: 2,
		},
		{
			name: "single-component chain pinpoints the source",
			reports: []ComponentReport{
				abnormalReport("db", 100, up),
				{Component: "web"},
			},
			total:        3,
			wantCulprits: []string{"db"},
			wantReasons:  []string{"source"},
		},
		{
			name: "onset exactly at the concurrency threshold is concurrent",
			reports: []ComponentReport{
				abnormalReport("db", 100, up),
				abnormalReport("app", 102, up), // 102-100 == threshold: concurrent
			},
			total:        3,
			wantCulprits: []string{"db", "app"},
			wantReasons:  []string{"source", "concurrent"},
		},
		{
			name: "onset one past the threshold is propagation, not concurrent",
			reports: []ComponentReport{
				abnormalReport("db", 100, up),
				abnormalReport("app", 103, up), // 3 > threshold: propagated
			},
			total:        3,
			wantCulprits: []string{"db"},
			wantReasons:  []string{"source"},
		},
		{
			name: "threshold chains through each newly pinned onset",
			reports: []ComponentReport{
				abnormalReport("db", 100, up),
				abnormalReport("app", 102, up), // within 2 of db
				abnormalReport("web", 104, up), // within 2 of app, 4 from db
			},
			total:        4, // not all components abnormal: no external check
			wantCulprits: []string{"db", "app", "web"},
			wantReasons:  []string{"source", "concurrent", "concurrent"},
		},
		{
			name: "all components abnormal with one trend is an external factor",
			reports: []ComponentReport{
				abnormalReport("web", 100, up),
				abnormalReport("app", 101, up),
				abnormalReport("db", 102, up),
			},
			total:        3,
			wantExternal: true,
		},
		{
			name: "all abnormal but trends differ stays a fault",
			reports: []ComponentReport{
				abnormalReport("web", 100, up),
				abnormalReport("app", 101, down),
				abnormalReport("db", 102, up),
			},
			total:        3,
			wantCulprits: []string{"web", "app", "db"}, // each onset within threshold of the last pinned
			wantReasons:  []string{"source", "concurrent", "concurrent"},
		},
		{
			name: "all abnormal same trend but spread beyond ExternalSpread stays a fault",
			reports: []ComponentReport{
				abnormalReport("web", 100, up),
				abnormalReport("db", 107, up), // spread 7 > 6
			},
			total:        2,
			wantCulprits: []string{"web"},
			wantReasons:  []string{"source"},
		},
		{
			name: "single monitored component never triggers the external check",
			reports: []ComponentReport{
				abnormalReport("db", 100, up),
			},
			total:        1,
			wantCulprits: []string{"db"},
			wantReasons:  []string{"source"},
		},
		{
			name: "unreachable abnormal component is an independent fault",
			reports: []ComponentReport{
				abnormalReport("app", 100, up),
				abnormalReport("db", 105, up),    // past threshold, but an app-db interaction path exists: propagation
				abnormalReport("cache", 110, up), // not in the graph: cannot be propagation
			},
			total:        4,
			deps:         deps,
			wantCulprits: []string{"app", "cache"},
			wantReasons:  []string{"source", "independent"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			diag := Diagnose(tc.reports, tc.total, tc.deps, cfg)
			if diag.ExternalFactor != tc.wantExternal {
				t.Fatalf("ExternalFactor = %v, want %v (diag: %s)", diag.ExternalFactor, tc.wantExternal, diag)
			}
			if tc.wantExternal {
				if len(diag.Culprits) != 0 {
					t.Fatalf("external verdict pinpointed culprits: %s", diag)
				}
				if diag.Trend == timeseries.TrendFlat {
					t.Fatal("external verdict carries no trend")
				}
				return
			}
			if got := diag.CulpritNames(); !reflect.DeepEqual(got, namesOrEmpty(tc.wantCulprits)) {
				t.Fatalf("culprits = %v, want %v", got, tc.wantCulprits)
			}
			for i, c := range diag.Culprits {
				if c.Reason != tc.wantReasons[i] {
					t.Errorf("culprit %s reason = %q, want %q", c.Component, c.Reason, tc.wantReasons[i])
				}
			}
		})
	}
}

// namesOrEmpty normalizes a nil expectation to CulpritNames's empty-slice
// return.
func namesOrEmpty(names []string) []string {
	if names == nil {
		return []string{}
	}
	return names
}

// TestDiagnoseChainSorted pins the chain ordering contract: abnormal
// components sorted by onset, ties broken by name.
func TestDiagnoseChainSorted(t *testing.T) {
	up := timeseries.TrendUp
	reports := []ComponentReport{
		abnormalReport("zeta", 105, up),
		abnormalReport("beta", 100, up),
		abnormalReport("alpha", 100, up),
	}
	diag := Diagnose(reports, 5, nil, Config{})
	want := []string{"alpha", "beta", "zeta"}
	for i, r := range diag.Chain {
		if r.Component != want[i] {
			t.Fatalf("chain[%d] = %s, want %s (chain: %v)", i, r.Component, want[i], diag.Chain)
		}
	}
}
