package core

import (
	"strings"
	"testing"
)

func TestLatencyHistEmpty(t *testing.T) {
	var h LatencyHist
	if got := h.MeanNS(); got != 0 {
		t.Errorf("empty MeanNS = %d, want 0", got)
	}
	if got := h.QuantileNS(0.99); got != 0 {
		t.Errorf("empty QuantileNS = %d, want 0", got)
	}
	if got := h.String(); got != "n=0" {
		t.Errorf("empty String = %q, want n=0", got)
	}
}

func TestLatencyHistSingleBucket(t *testing.T) {
	var h LatencyHist
	// All observations in bucket 9: [512, 1024).
	for _, ns := range []int64{600, 700, 1000} {
		h.Observe(ns)
	}
	if h.Count != 3 || h.Buckets[9] != 3 {
		t.Fatalf("count=%d bucket9=%d, want 3/3", h.Count, h.Buckets[9])
	}
	if got := h.MeanNS(); got != (600+700+1000)/3 {
		t.Errorf("MeanNS = %d", got)
	}
	if h.MaxNS != 1000 {
		t.Errorf("MaxNS = %d, want 1000", h.MaxNS)
	}
	// Every quantile lands in the one bucket; its edge (1023) overshoots
	// the recorded max, so the tighter MaxNS bound wins.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.QuantileNS(q); got != 1000 {
			t.Errorf("QuantileNS(%g) = %d, want 1000", q, got)
		}
	}
	// Out-of-range q is clamped.
	if h.QuantileNS(-1) != h.QuantileNS(0) || h.QuantileNS(2) != h.QuantileNS(1) {
		t.Error("QuantileNS did not clamp q")
	}
}

func TestLatencyHistQuantileIsUpperBound(t *testing.T) {
	var h LatencyHist
	for _, ns := range []int64{1, 100, 5_000, 250_000, 9_000_000} {
		h.Observe(ns)
	}
	// The p100 bound must cover the largest observation.
	if got := h.QuantileNS(1); got < 9_000_000 {
		t.Errorf("QuantileNS(1) = %d, below max observation", got)
	}
	// A mid quantile bound must cover its own bucket's observations.
	if got := h.QuantileNS(0.5); got < 5_000 {
		t.Errorf("QuantileNS(0.5) = %d, below the median observation", got)
	}
}

func TestLatencyHistOverflowBucket(t *testing.T) {
	var h LatencyHist
	huge := int64(1) << 45 // far beyond the last bucket's nominal edge
	h.Observe(huge)
	if h.Buckets[latencyBuckets-1] != 1 {
		t.Fatalf("overflow observation not in last bucket: %+v", h.Buckets)
	}
	if h.MaxNS != huge {
		t.Fatalf("MaxNS = %d, want %d", h.MaxNS, huge)
	}
	// Regression: the overflow bucket's nominal edge (2^40-1) is smaller
	// than the observation; QuantileNS must still return an upper bound.
	if got := h.QuantileNS(0.99); got != huge {
		t.Errorf("QuantileNS(0.99) = %d, want %d (the recorded max)", got, huge)
	}
	// Negative durations clamp to zero and land in bucket 0.
	h.Observe(-17)
	if h.Buckets[0] != 1 || h.SumNS != huge {
		t.Errorf("negative observation mishandled: b0=%d sum=%d", h.Buckets[0], h.SumNS)
	}
}

func TestLatencyHistMerge(t *testing.T) {
	var a, b LatencyHist
	a.Observe(100)
	a.Observe(200)
	b.Observe(1 << 20)
	b.Observe(3)
	a.Merge(b)
	if a.Count != 4 {
		t.Errorf("merged Count = %d, want 4", a.Count)
	}
	if a.SumNS != 100+200+(1<<20)+3 {
		t.Errorf("merged SumNS = %d", a.SumNS)
	}
	if a.MaxNS != 1<<20 {
		t.Errorf("merged MaxNS = %d, want %d", a.MaxNS, 1<<20)
	}
	var total int64
	for _, c := range a.Buckets {
		total += c
	}
	if total != a.Count {
		t.Errorf("bucket total %d != count %d", total, a.Count)
	}
	// Merging an empty histogram changes nothing.
	before := a
	a.Merge(LatencyHist{})
	if a != before {
		t.Error("merging empty histogram changed state")
	}
}

func TestLatencyHistString(t *testing.T) {
	var h LatencyHist
	h.Observe(1_500_000) // 1.5ms
	s := h.String()
	for _, want := range []string{"n=1", "mean=1.5ms", "max=1.5ms", "p99<=1.5ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String = %q, missing %q", s, want)
		}
	}
}

func TestPoolStatsMergeAndString(t *testing.T) {
	var a, b PoolStats
	a.Workers, a.Tasks = 1, 6
	a.Select.Observe(1000)
	b.Workers, b.Tasks = 4, 24
	b.Select.Observe(2000)
	b.Diagnose.Observe(500)
	a.Merge(b)
	if a.Workers != 4 || a.Tasks != 30 {
		t.Errorf("merged shape = workers=%d tasks=%d", a.Workers, a.Tasks)
	}
	if a.Select.Count != 2 || a.Diagnose.Count != 1 {
		t.Errorf("merged hist counts = %d/%d", a.Select.Count, a.Diagnose.Count)
	}
	s := a.String()
	if !strings.Contains(s, "workers=4 tasks=30") || !strings.Contains(s, "select[") || !strings.Contains(s, "diagnose[") {
		t.Errorf("String = %q", s)
	}
}
