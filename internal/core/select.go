package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"fchain/internal/changepoint"
	"fchain/internal/fftpkg"
	"fchain/internal/metric"
	"fchain/internal/obs"
	"fchain/internal/timeseries"
)

// AbnormalChange describes one selected abnormal change point on one metric
// of a component.
type AbnormalChange struct {
	Component string           `json:"component"`
	Metric    metric.Kind      `json:"metric"`
	ChangeAt  int64            `json:"change_at"` // selected abnormal change point time
	Onset     int64            `json:"onset"`     // manifestation start after tangent rollback
	PredErr   float64          `json:"pred_err"`
	Expected  float64          `json:"expected_err"`
	Magnitude float64          `json:"magnitude"`
	Direction timeseries.Trend `json:"direction"` // up/down of the change
}

// ComponentReport is a slave's answer to the master's "analyze [tv-W, tv]"
// request: whether the component exhibits abnormal changes and when the
// earliest one began.
type ComponentReport struct {
	Component string           `json:"component"`
	Changes   []AbnormalChange `json:"changes,omitempty"`
	// Onset is the earliest abnormal change start across metrics; only
	// meaningful when Abnormal reports true.
	Onset int64 `json:"onset"`
	// Quality summarizes how clean the metric streams behind this report
	// were; the master folds it into per-culprit confidence.
	Quality DataQuality `json:"quality,omitzero"`
	// Tier is the weakest degradation tier deadline budgeting applied to
	// any of this component's metrics (empty = the full pipeline ran for
	// all of them); see AnalysisTier.
	Tier AnalysisTier `json:"tier,omitempty"`
	// Truncated marks a report produced under deadline pressure: at least
	// one metric was analyzed below the full tier (or skipped outright),
	// so an absent change is weaker evidence of normality than usual.
	Truncated bool `json:"truncated,omitempty"`
	// Quarantined lists metrics skipped under panic quarantine, in metric
	// order: their selection kernel panicked (now or within the cooldown)
	// and the stream was isolated instead of taking the daemon down.
	Quarantined []string `json:"quarantined,omitempty"`
}

// Abnormal reports whether any abnormal change point was selected.
func (r ComponentReport) Abnormal() bool { return len(r.Changes) > 0 }

// Direction returns the direction of the report's earliest abnormal change
// (TrendFlat when no change was selected).
func (r ComponentReport) Direction() timeseries.Trend {
	if len(r.Changes) == 0 {
		return timeseries.TrendFlat
	}
	best := r.Changes[0]
	for _, ch := range r.Changes[1:] {
		if ch.Onset < best.Onset {
			best = ch
		}
	}
	return best.Direction
}

// AbnormalMetrics returns the distinct metrics implicated in the report,
// most significant (largest magnitude relative to expected error) first.
func (r ComponentReport) AbnormalMetrics() []metric.Kind {
	type scored struct {
		k     metric.Kind
		score float64
	}
	best := make(map[metric.Kind]float64)
	for _, ch := range r.Changes {
		score := ch.PredErr
		if ch.Expected > 0 {
			score = ch.PredErr / ch.Expected
		}
		if score > best[ch.Metric] {
			best[ch.Metric] = score
		}
	}
	list := make([]scored, 0, len(best))
	for k, s := range best {
		list = append(list, scored{k, s})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].score != list[j].score {
			return list[i].score > list[j].score
		}
		return list[i].k < list[j].k
	})
	out := make([]metric.Kind, len(list))
	for i, s := range list {
		out[i] = s.k
	}
	return out
}

// Analyze runs abnormal change point selection (paper §II-B) over the
// look-back window [tv-W, tv] for every metric of the component:
//
//  1. smooth the raw samples (noise removal);
//  2. detect change points with CUSUM + bootstrap;
//  3. keep magnitude outliers (PAL-style filter);
//  4. keep only outliers whose online prediction error exceeds the
//     burstiness-adaptive expected error (FFT burst extraction around the
//     point with window Q, top TopFreqFrac frequencies, BurstPercentile of
//     the burst magnitude);
//  5. roll the selected point back to the manifestation onset by comparing
//     tangents of adjacent change points.
//
// The component's onset is the earliest abnormal onset across its metrics.
func (m *Monitor) Analyze(tv int64) ComponentReport {
	return m.analyzeWith(tv, m.cfg)
}

// AnalyzeWindow runs the analysis with an overridden look-back window; the
// master uses it to push per-fault window overrides (e.g. W=500 for slow
// manifestations) to slaves that were configured with the default.
func (m *Monitor) AnalyzeWindow(tv int64, lookBack int) ComponentReport {
	cfg := m.cfg
	if lookBack > 0 {
		cfg.LookBack = lookBack
	}
	return m.analyzeWith(tv, cfg)
}

// analyzeWith runs the analysis under an alternative configuration (used by
// the adaptive look-back retries, which widen the window), borrowing a
// pooled arena for the pass.
func (m *Monitor) analyzeWith(tv int64, cfg Config) ComponentReport {
	a := getArena()
	report := m.analyzeArena(tv, cfg, a, nil, nil, -1)
	putArena(a)
	return report
}

// analyzeArena runs the full per-component analysis on the caller's arena;
// stats, when non-nil, receives one latency observation per metric task plus
// the panic count. With a non-nil trace it opens a component:<name> span
// under parent; the span tree it builds is identical to what the parallel
// engine assembles from per-task sub-traces.
func (m *Monitor) analyzeArena(tv int64, cfg Config, a *arena, stats *PoolStats, tr *obs.Trace, parent int) ComponentReport {
	return m.analyzeBudgeted(tv, cfg, a, stats, tr, parent, nil)
}

// analyzeBudgeted is analyzeArena under an optional deadline budgeter: each
// metric task claims a degradation tier before it runs (see overload.go).
// With bd == nil every task runs the full tier and the output is exactly
// the historical analyzeArena behavior.
func (m *Monitor) analyzeBudgeted(tv int64, cfg Config, a *arena, stats *PoolStats, tr *obs.Trace, parent int, bd *budgeter) ComponentReport {
	// Never analyze behind samples the reorder buffers are still holding.
	m.FlushIngest(tv)
	comp := -1
	if tr != nil {
		comp = tr.Start(parent, "component:"+m.component)
	}
	report := ComponentReport{Component: m.component, Quality: qualityOf(m.Quality())}
	timed := stats != nil || bd != nil
	for _, k := range metric.Kinds {
		tier := bd.tier()
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		ch, ok, st := m.analyzeMetric(tv, k, cfg, a, tr, comp, tier)
		if timed {
			ns := time.Since(t0).Nanoseconds()
			bd.observe(ns, tier)
			if stats != nil {
				stats.Select.Observe(ns)
			}
		}
		accumulateMetric(&report, ch, ok, st, tier, k, stats)
	}
	finishReport(&report)
	if tr != nil {
		annotateComponentSpan(tr, comp, report)
		tr.End(comp)
	}
	return report
}

// accumulateMetric folds one metric task's outcome into the component
// report; the serial path and the parallel engine's canonical assembly both
// use it so reports stay bit-identical across worker counts.
func accumulateMetric(report *ComponentReport, ch AbnormalChange, ok bool, st metricStatus, tier AnalysisTier, k metric.Kind, stats *PoolStats) {
	if ok {
		report.Changes = append(report.Changes, ch)
	}
	if st != metricOK {
		report.Quarantined = append(report.Quarantined, k.String())
		if st == metricPanicked && stats != nil {
			stats.Panics++
		}
	}
	if tier.rank() > report.Tier.rank() {
		report.Tier = tier
		report.Truncated = true
	}
}

// finishReport computes the component onset from the accumulated changes.
func finishReport(report *ComponentReport) {
	if len(report.Changes) == 0 {
		return
	}
	report.Onset = report.Changes[0].Onset
	for _, ch := range report.Changes[1:] {
		if ch.Onset < report.Onset {
			report.Onset = ch.Onset
		}
	}
}

// annotateComponentSpan records a component span's summary attributes; the
// serial path and the parallel engine's canonical assembly both use it so
// traces stay bit-identical across worker counts.
func annotateComponentSpan(tr *obs.Trace, comp int, report ComponentReport) {
	tr.AttrInt(comp, "changes", int64(len(report.Changes)))
	if len(report.Changes) > 0 {
		tr.AttrInt(comp, "onset", report.Onset)
	}
	if report.Truncated {
		tr.Attr(comp, "tier", string(report.Tier))
	}
	if len(report.Quarantined) > 0 {
		tr.Attr(comp, "quarantined", strings.Join(report.Quarantined, ","))
	}
}

// metricStatus reports how one metric task ended beyond its selection
// outcome: ran normally, was skipped under an active quarantine, or
// panicked (and is now quarantined).
type metricStatus uint8

const (
	metricOK metricStatus = iota
	metricQuarantined
	metricPanicked
)

// analyzeMetric selects the earliest abnormal change for one metric; ok is
// false when the metric exhibits none. With a non-nil trace it opens a
// select:<metric> span under parent, with detect/filter/rollback child spans
// recording candidate change points and filter decisions; with tr == nil the
// instrumented path costs only pointer tests. tier degrades the kernel under
// deadline pressure (TierFull runs the normal pipeline); a quarantined
// stream is skipped regardless of tier, and a panicking kernel quarantines
// its stream instead of unwinding past this frame.
func (m *Monitor) analyzeMetric(tv int64, k metric.Kind, cfg Config, a *arena, tr *obs.Trace, parent int, tier AnalysisTier) (AbnormalChange, bool, metricStatus) {
	if tier == TierSkipped {
		if tr != nil {
			sel := tr.Start(parent, "select:"+k.String())
			tr.Attr(sel, "skipped", "deadline")
			tr.End(sel)
		}
		return AbnormalChange{}, false, metricOK
	}
	if m.quarantineBlocked(k, cfg.QuarantineCooldown) {
		if tr != nil {
			sel := tr.Start(parent, "select:"+k.String())
			tr.Attr(sel, "skipped", "quarantined")
			tr.End(sel)
		}
		return AbnormalChange{}, false, metricQuarantined
	}
	if tier == TierReduced {
		cfg = reducedCfg(cfg)
	}
	if tr == nil {
		return m.runKernel(tv, k, cfg, a, nil, -1, tier)
	}
	sel := tr.Start(parent, "select:"+k.String())
	if tier != TierFull {
		tr.Attr(sel, "tier", string(tier))
	}
	ch, ok, st := m.runKernel(tv, k, cfg, a, tr, sel, tier)
	if st == metricPanicked {
		tr.Attr(sel, "skipped", "panic")
	}
	tr.AttrBool(sel, "abnormal", ok)
	if ok {
		tr.AttrInt(sel, "change_at", ch.ChangeAt)
		tr.AttrInt(sel, "onset", ch.Onset)
	}
	tr.End(sel)
	return ch, ok, st
}

// runKernel dispatches to the tier's selection kernel under panic
// protection: a panic trips the stream's quarantine, discards the possibly
// inconsistent arena scratch, and surfaces as metricPanicked instead of
// unwinding the worker.
func (m *Monitor) runKernel(tv int64, k metric.Kind, cfg Config, a *arena, tr *obs.Trace, sel int, tier AnalysisTier) (ch AbnormalChange, ok bool, st metricStatus) {
	defer func() {
		if r := recover(); r != nil {
			m.tripQuarantine(k, fmt.Sprint(r))
			a.reset()
			ch, ok, st = AbnormalChange{}, false, metricPanicked
		}
	}()
	if hook := analyzeHook.Load(); hook != nil {
		(*hook)(m.component, k)
	}
	if tier == TierTrend {
		ch, ok = m.trendMetric(tv, k, cfg, a)
	} else {
		ch, ok = m.selectMetric(tv, k, cfg, a, tr, sel, tier)
	}
	return ch, ok, metricOK
}

// trendMetric is the TierTrend kernel: a cheap O(W) sustained level shift
// check — has the recent mean escaped a 3σ band around the pre-window
// context — with the first escaping sample as the onset. It fabricates no
// change-point precision it does not have (PredErr/Expected carry the shift
// against the band), but still lets a budget-starved component contribute
// "something moved here, around then" to the propagation chain.
func (m *Monitor) trendMetric(tv int64, k metric.Kind, cfg Config, a *arena) (AbnormalChange, bool) {
	sv, _ := m.materialize(k, a)
	window := sv.ViewRange(tv-int64(cfg.LookBack)+1, tv+1)
	ctx := sv.ViewRange(sv.Start(), tv-int64(cfg.LookBack))
	wv, cv := window.ValuesView(), ctx.ValuesView()
	if len(wv) < 8 || len(cv) < 8 {
		return AbnormalChange{}, false
	}
	var ctxMean float64
	for _, v := range cv {
		ctxMean += v
	}
	ctxMean /= float64(len(cv))
	ctxStd := timeseries.Std(cv)
	if ctxStd <= 0 {
		return AbnormalChange{}, false
	}
	tail := len(wv) / 4
	if tail < 4 {
		tail = 4
	}
	if tail > 10 {
		tail = 10
	}
	var recent float64
	for _, v := range wv[len(wv)-tail:] {
		recent += v
	}
	recent /= float64(tail)
	shift := recent - ctxMean
	band := 3 * ctxStd
	if math.Abs(shift) <= band {
		return AbnormalChange{}, false
	}
	onsetIdx := len(wv) - tail
	for i, v := range wv {
		if math.Abs(v-ctxMean) > band {
			onsetIdx = i
			break
		}
	}
	t := window.TimeAt(onsetIdx)
	dir := timeseries.TrendUp
	if shift < 0 {
		dir = timeseries.TrendDown
	}
	return AbnormalChange{
		Component: m.component,
		Metric:    k,
		ChangeAt:  t,
		Onset:     t,
		PredErr:   math.Abs(shift),
		Expected:  band,
		Magnitude: math.Abs(shift),
		Direction: dir,
	}, true
}

// selectMetric is the abnormal change point selection kernel behind
// analyzeMetric. All working memory comes from the caller's arena, so a
// warmed-up analysis allocates nothing; the monitor's shard lock is held only
// inside materializeStream, never across the analysis. sel is the enclosing
// select:<metric> span (-1 when untraced).
//
// Under Config.Streaming the kernel consults the shard's streaming state
// (stream.go): a whole-kernel memo hit returns the cached verdict outright,
// and a warm state answers the context percentiles in O(1) from the sorted
// multisets. Both substitutions are bit-identical to the batch arithmetic,
// so streaming changes timings, never outputs. Traced runs and active
// fault-injection hooks always execute the real kernel.
func (m *Monitor) selectMetric(tv int64, k metric.Kind, cfg Config, a *arena, tr *obs.Trace, sel int, tier AnalysisTier) (ch AbnormalChange, abnormal bool) {
	memoEligible := tr == nil && analyzeHook.Load() == nil
	sv, se, facts := m.materializeStream(tv, k, cfg, tier, a, memoEligible)
	if facts.memoHit {
		return facts.memoCh, facts.memoOK
	}
	if memoEligible {
		defer func() { m.storeMemo(k, facts, tv, tier, cfg, ch, abnormal) }()
	}
	span := cfg.LookBack + cfg.BurstWindow
	vals := sv.ViewRange(tv-int64(span)+1, tv+1)
	errsSeries := se.ViewRange(tv-int64(span)+1, tv+1)
	if vals.Len() < cfg.SmoothWindow*3 || vals.Len() < 8 {
		if tr != nil {
			tr.Attr(sel, "skipped", "short-window")
		}
		return AbnormalChange{}, false
	}
	raw := vals.ValuesView()
	smoothWindow := cfg.SmoothWindow
	if cfg.AdaptiveSmoothing {
		ctx := sv.ViewRange(sv.Start(), tv-int64(cfg.LookBack))
		smoothWindow = adaptiveSmoothWidth(ctx.ValuesView(), cfg.SmoothWindow, a)
	}
	smoothed := timeseries.SmoothInto(a.smooth, raw, smoothWindow)
	a.smooth = smoothed

	// The look-back region starts W before tv; the extra BurstWindow of
	// older samples only provides context for FFT extraction and rollback.
	lookbackStart := tv - int64(cfg.LookBack)
	det := -1
	if tr != nil {
		det = tr.Start(sel, "detect")
	}
	points := a.cp.Detect(smoothed, changepoint.Config{
		// Threshold tables instead of a per-query bootstrap: detection is a
		// pure function of the window contents — no RNG, no reseeding, the
		// same verdict whichever worker runs the task and whenever it runs.
		// That purity is what lets streaming mode memoize kernel results,
		// and it removes the dominant O(Bootstraps·n) term from every
		// batch-mode query as well.
		Thresholds: cfg.Bootstraps,
		Confidence: cfg.CPConfidence,
	})
	if len(points) == 0 {
		if tr != nil {
			tr.AttrInt(det, "points", 0)
			tr.End(det)
		}
		return AbnormalChange{}, false
	}
	outliers := a.cp.SelectOutliers(points, cfg.OutlierSigma)
	if tr != nil {
		tr.AttrInt(det, "points", int64(len(points)))
		tr.AttrInt(det, "outliers", int64(len(outliers)))
		var cands strings.Builder
		for _, p := range outliers {
			if t := vals.TimeAt(p.Index); t >= lookbackStart {
				if cands.Len() > 0 {
					cands.WriteByte(',')
				}
				cands.WriteString(strconv.FormatInt(t, 10))
			}
		}
		tr.Attr(det, "candidates", cands.String())
		tr.End(det)
	}

	// Self-calibration: all retained history before the look-back window
	// characterizes how predictable this metric was before the anomaly
	// manifested. A metric whose model already erred badly (inherently
	// hard to predict, or subject to recurring workload bursts) gets a
	// proportionally higher selection bar: an error within the ceiling the
	// model has already exhibited corresponds to fluctuation seen before.
	var contextFloor, contextValueStd float64
	ctxP99 := math.Inf(1)
	ctxP1 := math.Inf(-1)
	cvSeries := sv.ViewRange(sv.Start(), lookbackStart)
	if cv := cvSeries.ValuesView(); len(cv) >= 8 {
		contextValueStd = timeseries.Std(cv)
		if facts.fast {
			// O(1) from the sorted multiset: same multiset, same
			// interpolation, same bits as the sort below.
			ctxP99, ctxP1 = facts.p99, facts.p1
		} else {
			if p99, err := timeseries.PercentileScratch(cv, 99, &a.pctile); err == nil {
				ctxP99 = p99
			}
			if p1, err := timeseries.PercentileScratch(cv, 1, &a.pctile); err == nil {
				ctxP1 = p1
			}
		}
	}
	// Relative-magnitude floor (opt-in, MinRelMagnitude > 0): a mean shift
	// smaller than a fixed fraction of the metric's normal operating level
	// is operationally meaningless even when it is statistically
	// significant, and at mesh scale (hundreds of monitored components)
	// such shifts otherwise pollute every propagation chain.
	relFloor := 0.0
	if cfg.MinRelMagnitude > 0 {
		level := meanAbs(cvSeries.ValuesView())
		if level == 0 {
			level = meanAbs(smoothed)
		}
		relFloor = cfg.MinRelMagnitude * level
	}
	// Range escape: how long has the metric been dwelling beyond the levels
	// it historically visited only 1% of the time?
	dwellHigh, dwellLow := 0, 0
	for i := len(smoothed) - 1; i >= 0 && smoothed[i] > ctxP99; i-- {
		dwellHigh++
	}
	for i := len(smoothed) - 1; i >= 0 && smoothed[i] < ctxP1; i-- {
		dwellLow++
	}
	ctxSeries := se.ViewRange(se.Start(), lookbackStart)
	if ctx := ctxSeries.ValuesView(); len(ctx) >= 8 {
		if facts.fast {
			contextFloor = cfg.SelfCalibration * facts.p90
			if f := cfg.ContextMaxFactor * facts.maxE; f > contextFloor {
				contextFloor = f
			}
		} else {
			p90, err := timeseries.PercentileScratch(ctx, 90, &a.pctile)
			if err == nil {
				contextFloor = cfg.SelfCalibration * p90
			}
			if _, hi, err := timeseries.MinMax(ctx); err == nil {
				if f := cfg.ContextMaxFactor * hi; f > contextFloor {
					contextFloor = f
				}
			}
		}
	}

	flt := -1
	if tr != nil {
		flt = tr.Start(sel, "filter")
	}
	var (
		selected    changepoint.Point
		selectedIdx = -1
		predErr     float64
		expected    float64
	)
	for _, p := range outliers {
		t := vals.TimeAt(p.Index)
		if t < lookbackStart {
			continue // context region, not the look-back window
		}
		if relFloor > 0 && math.Abs(p.Magnitude) < relFloor {
			if tr != nil {
				tr.Attr(flt, "cand:"+strconv.FormatInt(t, 10), "sub-floor")
			}
			continue // below the relative-magnitude floor
		}
		pe := predictionErrorNear(&errsSeries, p.Index)
		var exp, fftExp float64
		if cfg.FixedThreshold > 0 {
			// Fixed-Filtering baseline: one absolute threshold for every
			// metric, every application (paper §III-A scheme 6).
			exp, fftExp = cfg.FixedThreshold, cfg.FixedThreshold
		} else {
			e, err := m.expectedErrorCached(k, raw, p.Index, vals.Start(), cfg, a)
			if err != nil {
				if tr != nil {
					tr.Attr(flt, "cand:"+strconv.FormatInt(t, 10), "fft-error")
				}
				continue
			}
			exp, fftExp = e, e
			if contextFloor > exp {
				exp = contextFloor
			}
		}
		// Abnormal when the per-step prediction error clearly exceeds the
		// expected error, or when a sustained mean shift far beyond the
		// burstiness-expected error persists through the window's end
		// (gradual manifestations: leaks, queue growth). Transient bursts
		// fail the persistence check — they have reverted by analysis
		// time.
		persists := shiftPersists(smoothed, p, cfg.PersistFraction)
		bypass := persists &&
			p.Magnitude > cfg.MagnitudeFactor*fftExp &&
			p.Magnitude > cfg.ValueStdFactor*contextValueStd
		// Range escape: the change pinned the metric beyond its historical
		// 1st/99th percentile for far longer than any workload burst.
		escaped := persists &&
			((dwellHigh >= cfg.EscapeDwell && p.After > ctxP99 && p.Index >= len(smoothed)-dwellHigh-5) ||
				(dwellLow >= cfg.EscapeDwell && p.After < ctxP1 && p.Index >= len(smoothed)-dwellLow-5))
		if cfg.FixedThreshold > 0 {
			// The Fixed-Filtering baseline is *only* the fixed prediction
			// error comparison — no adaptive paths.
			bypass, escaped = false, false
		}
		if pe <= cfg.SelectionMargin*exp && !bypass && !escaped {
			if tr != nil {
				tr.Attr(flt, "cand:"+strconv.FormatInt(t, 10), "predictable")
			}
			continue // predictable: a normal workload fluctuation
		}
		if tr != nil {
			reason := "pred-err"
			if pe <= cfg.SelectionMargin*exp {
				if bypass {
					reason = "bypass"
				} else {
					reason = "escaped"
				}
			}
			tr.Attr(flt, "cand:"+strconv.FormatInt(t, 10), reason)
		}
		if selectedIdx == -1 || p.Index < selectedIdx {
			selected = p
			selectedIdx = p.Index
			predErr = pe
			expected = exp
		}
	}
	if tr != nil {
		if selectedIdx >= 0 {
			tr.AttrInt(flt, "selected_at", vals.TimeAt(selectedIdx))
			tr.AttrFloat(flt, "pred_err", predErr)
			tr.AttrFloat(flt, "expected", expected)
		}
		tr.End(flt)
	}
	if selectedIdx == -1 {
		return AbnormalChange{}, false
	}

	// Tangent-based rollback to the manifestation onset, among all detected
	// change points (normal ones included: mid-manifestation points share
	// the fault's tangent).
	rb := -1
	if tr != nil {
		rb = tr.Start(sel, "rollback")
	}
	abnormalPos := 0
	for i, p := range points {
		if p.Index == selected.Index {
			abnormalPos = i
			break
		}
	}
	onsetIdx := selected.Index
	if !cfg.DisableRollback {
		onsetIdx = changepoint.RollbackOnset(smoothed, points, abnormalPos, cfg.TangentTol)
		onsetIdx = refineSharpOnset(raw, onsetIdx, selected.Index, selected.Magnitude, smoothWindow)
	}
	onset := vals.TimeAt(onsetIdx)
	if onset < lookbackStart {
		onset = lookbackStart
	}
	if tr != nil {
		tr.AttrInt(rb, "from", vals.TimeAt(selected.Index))
		tr.AttrInt(rb, "onset", onset)
		tr.AttrBool(rb, "disabled", cfg.DisableRollback)
		tr.End(rb)
	}

	dir := timeseries.TrendUp
	if selected.After < selected.Before {
		dir = timeseries.TrendDown
	}
	return AbnormalChange{
		Component: m.component,
		Metric:    k,
		ChangeAt:  vals.TimeAt(selected.Index),
		Onset:     onset,
		PredErr:   predErr,
		Expected:  expected,
		Magnitude: selected.Magnitude,
		Direction: dir,
	}, true
}

// adaptiveSmoothWidth picks a smoothing width from the metric's noise
// character: the ratio of sample-to-sample variation to overall variation
// is ~sqrt(2) for white noise and near 0 for a smooth signal. Metrics
// dominated by sampling noise earn a wider window; smooth ones keep the
// configured default so sharp manifestations stay sharp.
func adaptiveSmoothWidth(ctx []float64, base int, a *arena) int {
	if len(ctx) < 16 {
		return base
	}
	if cap(a.diffs) < len(ctx)-1 {
		a.diffs = make([]float64, len(ctx)-1)
	}
	diffs := a.diffs[:len(ctx)-1]
	for i := 1; i < len(ctx); i++ {
		diffs[i-1] = ctx[i] - ctx[i-1]
	}
	sd := timeseries.Std(ctx)
	if sd == 0 {
		return base
	}
	ratio := timeseries.Std(diffs) / sd
	switch {
	case ratio > 1.2: // essentially white noise
		return base + 6
	case ratio > 0.8:
		return base + 2
	default:
		return base
	}
}

// refineSharpOnset pins the onset of a sharp manifestation to the largest
// single-sample step in the raw data near the selected change point.
// Smoothing spreads a step over several samples and the tangent rollback
// can then overshoot into pre-fault fluctuation; the raw step second is
// unambiguous. Gradual manifestations (no single step close to the full
// magnitude) keep the rollback result.
func refineSharpOnset(raw []float64, onsetIdx, selectedIdx int, magnitude float64, smoothWindow int) int {
	lo := onsetIdx - smoothWindow
	if lo < 1 {
		lo = 1
	}
	hi := selectedIdx + smoothWindow
	if hi > len(raw)-1 {
		hi = len(raw) - 1
	}
	bestIdx, bestStep := -1, 0.0
	for i := lo; i <= hi; i++ {
		if step := math.Abs(raw[i] - raw[i-1]); step > bestStep {
			bestStep = step
			bestIdx = i
		}
	}
	if bestIdx >= 0 && bestStep >= 0.5*magnitude {
		return bestIdx
	}
	return onsetIdx
}

// shiftPersists reports whether the level shift of change point p holds
// from the point through the window's end: the final sample must retain the
// shift, and at least 85% of the post-change samples must sit more than
// halfway toward the shifted level. A transient burst whose change point
// predates a later (fault-induced) tail elevation fails the second
// condition — its post-change segment returned to the base level first.
func shiftPersists(smoothed []float64, p changepoint.Point, frac float64) bool {
	if len(smoothed) == 0 || p.Index >= len(smoothed) {
		return false
	}
	last := smoothed[len(smoothed)-1]
	shift := p.After - p.Before
	if shift == 0 {
		return false
	}
	if (last-p.Before)/shift < frac {
		return false
	}
	held, total := 0, 0
	for i := p.Index; i < len(smoothed); i++ {
		total++
		if (smoothed[i]-p.Before)/shift >= 0.5 {
			held++
		}
	}
	return total > 0 && float64(held) >= 0.85*float64(total)
}

// predictionErrorNear returns the largest online prediction error within a
// small neighborhood of the change point (smoothing shifts indices by a few
// samples).
func predictionErrorNear(errs *timeseries.Series, idx int) float64 {
	lo := idx - 2
	if lo < 0 {
		lo = 0
	}
	hi := idx + 3
	if hi > errs.Len() {
		hi = errs.Len()
	}
	var max float64
	for i := lo; i < hi; i++ {
		if e := errs.At(i); e > max {
			max = e
		}
	}
	return max
}

// expectedErrorAt computes the burstiness-adaptive expected prediction
// error for the change point at index idx of the raw window. The 2Q samples
// *preceding* the point are used: they capture the burstiness of the normal
// behaviour the change interrupts, without letting the fault's own shift
// inflate the expectation (for a change at the very end of the look-back
// window a symmetric surround would mostly contain the fault itself). The
// window is linearly detrended first: the expected error measures
// high-frequency variability, and a deterministic trend would otherwise
// leak across the spectrum.
func expectedErrorAt(raw []float64, idx int, cfg Config, a *arena) (float64, error) {
	lo, hi := burstBounds(idx, len(raw), cfg)
	a.detrend = detrendInto(a.detrend, raw[lo:hi])
	return fftpkg.ExpectedError(a.detrend, cfg.TopFreqFrac, cfg.BurstPercentile)
}

// burstBounds returns the [lo, hi) slice of the raw window that
// expectedErrorAt feeds the FFT for a change point at idx. Factored out so
// the streaming FFT memo can key cache entries on the exact window without
// computing it.
func burstBounds(idx, n int, cfg Config) (lo, hi int) {
	hi = idx
	lo = idx - 2*cfg.BurstWindow
	if lo < 0 {
		lo = 0
	}
	if hi-lo < cfg.BurstWindow { // too little history before the point
		hi = lo + 2*cfg.BurstWindow + 1
		if hi > n {
			hi = n
		}
	}
	return lo, hi
}

// detrend returns a copy of vals with the least-squares line removed.
func detrend(vals []float64) []float64 {
	return detrendInto(nil, vals)
}

// detrendInto is detrend writing into dst, which is grown as needed and
// returned; passing a reused buffer makes repeated detrending
// allocation-free. dst must not alias vals.
func detrendInto(dst, vals []float64) []float64 {
	n := len(vals)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	out := dst[:n]
	if n < 3 {
		copy(out, vals)
		return out
	}
	// Least squares over x = 0..n-1.
	var sumX, sumY, sumXY, sumXX float64
	for i, v := range vals {
		x := float64(i)
		sumX += x
		sumY += v
		sumXY += x * v
		sumXX += x * x
	}
	fn := float64(n)
	den := fn*sumXX - sumX*sumX
	if den == 0 {
		copy(out, vals)
		return out
	}
	slope := (fn*sumXY - sumX*sumY) / den
	intercept := (sumY - slope*sumX) / fn
	for i, v := range vals {
		out[i] = v - (intercept + slope*float64(i))
	}
	return out
}

// ExpectedErrorForWindow exposes the burstiness-adaptive expected
// prediction error computation for a standalone window — the quantity
// plotted in the paper's Fig. 4.
func ExpectedErrorForWindow(window []float64, cfg Config) (float64, error) {
	cfg = cfg.withDefaults()
	return fftpkg.ExpectedError(detrend(window), cfg.TopFreqFrac, cfg.BurstPercentile)
}

// meanAbs is the mean absolute value of vals (0 for an empty slice) — the
// "normal operating level" the MinRelMagnitude floor is relative to.
func meanAbs(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += math.Abs(v)
	}
	return s / float64(len(vals))
}
