package core

import (
	"sync"
	"time"

	"fchain/internal/metric"
	"fchain/internal/obs"
)

// This file implements the parallel analysis engine: a bounded worker pool
// that fans abnormal change point selection out as one task per
// (component, metric) pair, each worker owning a pooled arena so the
// selection kernels stay allocation-free under concurrency.
//
// Determinism contract: every task is a pure function of (monitor state at
// materialize time, tv, cfg) — change-point confidence comes from
// deterministic per-window-length threshold tables, so no task holds RNG
// state — and results are written to a
// preallocated slot indexed by task, then assembled in canonical component
// and metric order. Output is therefore bit-identical to the serial path at
// any worker count. Tracing preserves the contract: each task records into
// a private sub-trace, and assembly grafts the sub-traces in canonical
// order, so the span tree matches the serial path span for span.
//
// Single-component analyses stay serial regardless of the knob: the
// per-violation hot path (one component per call in the module benchmarks)
// would pay goroutine fan-out and result-slot allocation for at most six
// tasks, and keeping it serial keeps it allocation-free.

// analyzeSerial analyzes the monitors in order on one shared arena,
// appending to dst.
func analyzeSerial(dst []ComponentReport, monitors []*Monitor, cfgs []Config, tv int64, stats *PoolStats, tr *obs.Trace, parent int, bd *budgeter) []ComponentReport {
	a := getArena()
	for i, mon := range monitors {
		dst = append(dst, mon.analyzeBudgeted(tv, cfgs[i], a, stats, tr, parent, bd))
	}
	putArena(a)
	return dst
}

// analyzeMonitors is the engine entry point: it analyzes every monitor at
// tv under its matching config (cfgs[i] for monitors[i]), appending one
// report per monitor to dst in monitor order. workers <= 1, a single
// monitor, or no monitors run serially. With a non-nil trace, component and
// selection spans are recorded under parent. bd, when non-nil, budgets each
// task against a deadline (see overload.go); with bd == nil the output is
// deterministic and bit-identical at any worker count.
func analyzeMonitors(dst []ComponentReport, monitors []*Monitor, cfgs []Config, tv int64, workers int, stats *PoolStats, tr *obs.Trace, parent int, bd *budgeter) []ComponentReport {
	numTasks := len(monitors) * metric.NumKinds
	stats.Tasks += numTasks
	if workers > numTasks {
		workers = numTasks
	}
	if stats.Workers < 1 {
		stats.Workers = 1
	}
	if workers <= 1 || len(monitors) <= 1 {
		return analyzeSerial(dst, monitors, cfgs, tv, stats, tr, parent, bd)
	}
	if workers > stats.Workers {
		stats.Workers = workers
	}

	// Per-component prepass under no concurrency: flush the reorder buffers
	// and capture quality exactly as the serial path does before analyzing.
	qualities := make([]DataQuality, len(monitors))
	for i, mon := range monitors {
		mon.FlushIngest(tv)
		qualities[i] = qualityOf(mon.Quality())
	}

	type taskResult struct {
		ch   AbnormalChange
		ok   bool
		st   metricStatus
		tier AnalysisTier
		sub  *obs.Trace // per-task sub-trace, grafted at assembly
	}
	results := make([]taskResult, numTasks)
	tasks := make(chan int)
	var (
		wg      sync.WaitGroup
		statsMu sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := getArena()
			defer putArena(a)
			var hist LatencyHist
			for idx := range tasks {
				mon := monitors[idx/metric.NumKinds]
				k := metric.Kinds[idx%metric.NumKinds]
				var sub *obs.Trace
				if tr != nil {
					sub = obs.NewTrace("task", tv)
				}
				tier := bd.tier()
				t0 := time.Now()
				ch, ok, st := mon.analyzeMetric(tv, k, cfgs[idx/metric.NumKinds], a, sub, -1, tier)
				ns := time.Since(t0).Nanoseconds()
				bd.observe(ns, tier)
				hist.Observe(ns)
				results[idx] = taskResult{ch: ch, ok: ok, st: st, tier: tier, sub: sub}
			}
			statsMu.Lock()
			stats.Select.Merge(hist)
			statsMu.Unlock()
		}()
	}
	for i := 0; i < numTasks; i++ {
		tasks <- i
	}
	close(tasks)
	wg.Wait()

	// Canonical-order assembly: reports in monitor order, changes in metric
	// kind order, exactly like the serial loop — and sub-traces grafted in
	// the same order the serial path would have created their spans.
	for ci, mon := range monitors {
		comp := -1
		if tr != nil {
			comp = tr.Start(parent, "component:"+mon.Component())
		}
		rep := ComponentReport{Component: mon.Component(), Quality: qualities[ci]}
		for ki := 0; ki < metric.NumKinds; ki++ {
			r := results[ci*metric.NumKinds+ki]
			if tr != nil {
				tr.Graft(comp, r.sub)
			}
			accumulateMetric(&rep, r.ch, r.ok, r.st, r.tier, metric.Kinds[ki], stats)
		}
		finishReport(&rep)
		if tr != nil {
			annotateComponentSpan(tr, comp, rep)
			tr.End(comp)
		}
		dst = append(dst, rep)
	}
	return dst
}

// AnalyzeMonitors analyzes several independent monitors on one bounded
// worker pool, fanning out per (component, metric) task: the slave daemon
// uses it to answer a master's analyze request with all local components in
// flight at once. lookBack > 0 overrides each monitor's configured look-back
// window; workers follows the Config.Parallelism convention (0 =
// GOMAXPROCS, 1 = serial). Reports are returned in monitor order and are
// bit-identical to analyzing each monitor serially.
func AnalyzeMonitors(monitors []*Monitor, tv int64, lookBack, workers int) ([]ComponentReport, PoolStats) {
	reports, stats, _ := analyzeMonitorsOpts(monitors, tv, lookBack, workers, false, time.Time{})
	return reports, stats
}

// AnalyzeMonitorsTraced is AnalyzeMonitors also recording a pipeline trace:
// an analyze root span with one component:<name> span per monitor and
// select:<metric> spans beneath. The trace's span structure is identical at
// any worker count; only the timings differ.
func AnalyzeMonitorsTraced(monitors []*Monitor, tv int64, lookBack, workers int) ([]ComponentReport, PoolStats, *obs.Trace) {
	return analyzeMonitorsOpts(monitors, tv, lookBack, workers, true, time.Time{})
}

// AnalyzeMonitorsDeadline is AnalyzeMonitors budgeting the selection work
// against a wall-clock deadline: tasks degrade full → reduced-window →
// model-trend-only → skipped as the budget tightens (see overload.go), and
// degraded reports carry Tier/Truncated markers. A zero deadline disables
// budgeting entirely.
func AnalyzeMonitorsDeadline(monitors []*Monitor, tv int64, lookBack, workers int, deadline time.Time) ([]ComponentReport, PoolStats) {
	reports, stats, _ := analyzeMonitorsOpts(monitors, tv, lookBack, workers, false, deadline)
	return reports, stats
}

// AnalyzeMonitorsDeadlineTraced is AnalyzeMonitorsDeadline also recording a
// pipeline trace.
func AnalyzeMonitorsDeadlineTraced(monitors []*Monitor, tv int64, lookBack, workers int, deadline time.Time) ([]ComponentReport, PoolStats, *obs.Trace) {
	return analyzeMonitorsOpts(monitors, tv, lookBack, workers, true, deadline)
}

func analyzeMonitorsOpts(monitors []*Monitor, tv int64, lookBack, workers int, traced bool, deadline time.Time) ([]ComponentReport, PoolStats, *obs.Trace) {
	var stats PoolStats
	cfgs := make([]Config, len(monitors))
	for i, mon := range monitors {
		cfgs[i] = mon.cfg
		if lookBack > 0 {
			cfgs[i].LookBack = lookBack
		}
	}
	if workers == 0 {
		workers = Config{}.workers()
	}
	var (
		tr   *obs.Trace
		root = -1
	)
	if traced {
		tr = obs.NewTrace("analyze", tv)
		root = tr.Start(-1, "analyze")
		tr.AttrInt(root, "tasks", int64(len(monitors)*metric.NumKinds))
	}
	bd := newBudgeter(deadline, len(monitors)*metric.NumKinds)
	reports := analyzeMonitors(make([]ComponentReport, 0, len(monitors)), monitors, cfgs, tv, workers, &stats, tr, root, bd)
	tr.End(root)
	return reports, stats, tr
}
