package core

import (
	"errors"
	"testing"

	"fchain/internal/metric"
)

// fakeAdjuster simulates a system whose SLO clears only when every true
// culprit has had some resource scaled.
type fakeAdjuster struct {
	trueCulprits map[string]bool
	scaled       map[string]bool
	now          int64
	scaleErr     error
}

func newFakeAdjuster(culprits ...string) *fakeAdjuster {
	m := make(map[string]bool, len(culprits))
	for _, c := range culprits {
		m[c] = true
	}
	return &fakeAdjuster{trueCulprits: m, scaled: make(map[string]bool), now: 100}
}

func (f *fakeAdjuster) ScaleResource(component string, k metric.Kind, factor float64) error {
	if f.scaleErr != nil {
		return f.scaleErr
	}
	f.scaled[component] = true
	return nil
}

func (f *fakeAdjuster) Now() int64       { return f.now }
func (f *fakeAdjuster) RunUntil(t int64) { f.now = t }

func (f *fakeAdjuster) SLOMetric(from, to int64) float64 {
	// Latency proportional to the number of unrelieved true culprits:
	// relieving one of two concurrent faults improves the SLO partially.
	unrelieved := 0
	for c := range f.trueCulprits {
		if !f.scaled[c] {
			unrelieved++
		}
	}
	if len(f.trueCulprits) == 0 {
		return 0
	}
	return 0.05 + 5.0*float64(unrelieved)/float64(len(f.trueCulprits))
}

func diagWith(culprits ...Culprit) Diagnosis {
	return Diagnosis{Culprits: culprits}
}

// mkFactory returns a trial factory producing fresh fakes with the given
// true culprits.
func mkFactory(culprits ...string) func() (Adjuster, error) {
	return func() (Adjuster, error) { return newFakeAdjuster(culprits...), nil }
}

func TestValidateConfirmsTrueRejectsFalse(t *testing.T) {
	diag := diagWith(
		Culprit{Component: "db", Metrics: []metric.Kind{metric.CPU}},
		Culprit{Component: "web", Metrics: []metric.Kind{metric.CPU}},
	)
	results, err := Validate(mkFactory("db"), diag, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	byComp := map[string]ValidationResult{}
	for _, r := range results {
		byComp[r.Culprit.Component] = r
	}
	if !byComp["db"].Confirmed {
		t.Error("true culprit not confirmed (leaving it out should restore the violation)")
	}
	if byComp["web"].Confirmed {
		t.Error("false alarm confirmed (SLO clears without scaling it)")
	}

	filtered := ApplyValidation(diag, results)
	if len(filtered.Culprits) != 1 || filtered.Culprits[0].Component != "db" {
		t.Errorf("ApplyValidation culprits = %v, want [db]", filtered.CulpritNames())
	}
	if !filtered.Culprits[0].Validated {
		t.Error("surviving culprit should be marked validated")
	}
}

func TestValidateConcurrentCulprits(t *testing.T) {
	// Two concurrent true culprits: relieving either alone cannot clear
	// the violation, but each yields a measurable partial improvement over
	// the control, so both confirm.
	diag := diagWith(Culprit{Component: "pe3"}, Culprit{Component: "pe5"})
	results, err := Validate(mkFactory("pe3", "pe5"), diag, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Confirmed {
			t.Errorf("concurrent culprit %s should confirm", r.Culprit.Component)
		}
		if r.Inconclusive {
			t.Errorf("validation should be conclusive here: %+v", r)
		}
	}
}

func TestValidateSubstitutionErrorRemoved(t *testing.T) {
	// The true culprit ("db") was never pinpointed; relieving the falsely
	// accused components improves nothing, so both are removed. Recall in
	// such a trial is already zero — validation cannot repair it, only
	// clean up the false alarms (paper §III-D).
	diag := diagWith(Culprit{Component: "web"}, Culprit{Component: "app1"})
	results, err := Validate(mkFactory("db"), diag, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Confirmed {
			t.Errorf("non-helping culprit %s should be removed: %+v", r.Culprit.Component, r)
		}
	}
}

func TestValidateInconclusiveWithoutViolationPressure(t *testing.T) {
	// No true culprits at all: the control trial measures no violation
	// pressure, so validation keeps everything rather than judging noise.
	diag := diagWith(Culprit{Component: "web"})
	results, err := Validate(mkFactory(), diag, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Confirmed || !results[0].Inconclusive {
		t.Errorf("expected inconclusive keep: %+v", results)
	}
}

func TestValidatePropagatesErrors(t *testing.T) {
	fa := newFakeAdjuster("db")
	fa.scaleErr = errors.New("hypervisor unavailable")
	diag := diagWith(Culprit{Component: "db", Metrics: []metric.Kind{metric.CPU}})
	if _, err := Validate(func() (Adjuster, error) { return fa, nil }, diag, DefaultConfig()); err == nil {
		t.Error("scale errors must surface")
	}
	if _, err := Validate(func() (Adjuster, error) { return nil, errors.New("no clone") }, diag, DefaultConfig()); err == nil {
		t.Error("trial factory errors must surface")
	}
}

func TestValidateEmptyDiagnosis(t *testing.T) {
	results, err := Validate(mkFactory("x"), Diagnosis{}, DefaultConfig())
	if err != nil || len(results) != 0 {
		t.Errorf("empty diagnosis: results=%v err=%v", results, err)
	}
}
