package core

import "testing"

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	// Paper §III-A parameter configuration.
	if cfg.LookBack != 100 {
		t.Errorf("LookBack = %d, want 100", cfg.LookBack)
	}
	if cfg.ConcurrencyThreshold != 2 {
		t.Errorf("ConcurrencyThreshold = %d, want 2", cfg.ConcurrencyThreshold)
	}
	if cfg.BurstWindow != 20 {
		t.Errorf("BurstWindow = %d, want 20", cfg.BurstWindow)
	}
	if cfg.TopFreqFrac != 0.9 {
		t.Errorf("TopFreqFrac = %v, want 0.9", cfg.TopFreqFrac)
	}
	if cfg.BurstPercentile != 90 {
		t.Errorf("BurstPercentile = %v, want 90", cfg.BurstPercentile)
	}
	if cfg.TangentTol != 0.1 {
		t.Errorf("TangentTol = %v, want 0.1", cfg.TangentTol)
	}
	if cfg.ValidationObserve != 30 {
		t.Errorf("ValidationObserve = %d, want 30 (Table II)", cfg.ValidationObserve)
	}
}

func TestConfigDefaultsIdempotent(t *testing.T) {
	a := DefaultConfig()
	b := a.withDefaults()
	if a != b {
		t.Errorf("withDefaults is not idempotent:\n a=%+v\n b=%+v", a, b)
	}
}

func TestConfigOverridesPreserved(t *testing.T) {
	cfg := Config{
		LookBack:             500,
		ConcurrencyThreshold: 5,
		FixedThreshold:       2.5,
		AdaptiveLookBack:     true,
		DisableRollback:      true,
	}.withDefaults()
	if cfg.LookBack != 500 || cfg.ConcurrencyThreshold != 5 {
		t.Error("explicit values overwritten by defaults")
	}
	if cfg.FixedThreshold != 2.5 || !cfg.AdaptiveLookBack || !cfg.DisableRollback {
		t.Error("feature flags overwritten by defaults")
	}
	if cfg.MaxLookBack < cfg.LookBack {
		t.Errorf("MaxLookBack %d < LookBack %d", cfg.MaxLookBack, cfg.LookBack)
	}
	if cfg.RingCapacity < cfg.LookBack+2*cfg.BurstWindow {
		t.Errorf("RingCapacity %d cannot cover the look-back window", cfg.RingCapacity)
	}
}

func TestRingCapacityCoversMaxLookBack(t *testing.T) {
	// With the adaptive scheme enabled, the slave must retain enough
	// history for the widest retry window.
	cfg := Config{AdaptiveLookBack: true}.withDefaults()
	if cfg.RingCapacity < cfg.MaxLookBack+2*cfg.BurstWindow {
		t.Errorf("RingCapacity %d cannot cover MaxLookBack %d", cfg.RingCapacity, cfg.MaxLookBack)
	}
}
