package core

import (
	"fchain/internal/changepoint"
	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// Streaming selection (Config.Streaming): instead of paying the whole
// selection burst at tv — percentile sorts over ~1.3k context samples and a
// per-candidate FFT, per metric, per Localize — the shard folds a constant
// slice of that work into every Observe and the tv-time kernel assembles
// cached pieces:
//
//   - sorted context multisets: the values and prediction errors of the ring
//     positions before the look-back window are kept as incrementally
//     maintained sorted multisets, so the kernel's context percentiles
//     (p1/p99 of values, p90/max of errors) are O(1) lookups instead of
//     O(n log n) sorts. Percentile interpolation over a sorted multiset is
//     arithmetic-identical to the batch sort-then-interpolate, so the fast
//     path changes no output bit;
//   - an FFT memo: ExpectedError keyed by the burst window's absolute
//     position and the spectral knobs. Ring content for retained positions
//     is immutable, so a hit replays the exact float the batch path would
//     recompute;
//   - a kernel memo: the full per-metric verdict keyed by the ring mutation
//     sequence numbers (timeseries.Ring.Seq), tv, tier, and config, so
//     re-localizing an unchanged stream skips the kernel outright;
//   - a changepoint.Stream accumulator per metric: the O(1) incremental
//     CUSUM/Welford counterpart of the batch detector. It powers the
//     hot-stream telemetry and the incremental-vs-batch differential tests;
//     verdict bits never come from it (see changepoint.Stream).
//
// Cold fallback: the fast path is used only when the multisets provably
// cover exactly the context region the batch kernel would sort — the counts
// derived from (tv, LookBack, ring) must match the cursors. Any mismatch
// (analysis at a historical tv, an overridden look-back window, a reduced
// tier, state freshly reset by a collection gap, Restore, or Predictor.Break)
// silently takes the batch path and bumps the cold counter. Correctness
// never depends on the state being warm.

// fftKey identifies one burst-window ExpectedError computation: the window's
// absolute start time and length plus the spectral parameters. Positions map
// stably to times only while the ring is dense; streamState.dense gates the
// memo accordingly.
type fftKey struct {
	start int64
	n     int
	frac  float64
	pct   float64
}

// maxFFTMemo bounds the per-metric FFT memo; at 10k components × 6 metrics a
// runaway map would dominate slave memory. Overflow clears the map — entries
// are cheap to recompute and queries cluster on recent windows anyway.
const maxFFTMemo = 32

// selMemo caches one metric's full kernel verdict. Valid only while both
// rings' sequence numbers still match — any Push or Clear invalidates it —
// and only for the exact (tv, tier, cfg) that produced it.
type selMemo struct {
	valid bool
	seq   uint64
	eseq  uint64
	tv    int64
	tier  AnalysisTier
	cfg   Config
	ch    AbnormalChange
	ok    bool
}

// streamState is the per-(component, metric) streaming state, owned by its
// metricShard and guarded by the shard mutex.
type streamState struct {
	lookBack int

	// Sorted multisets over ring positions [0, cursor) — exactly the
	// context region [ring start, lastT−LookBack) the batch kernel sorts.
	ctxVals timeseries.SortedWindow
	ctxErrs timeseries.SortedWindow
	cursor  int // sample-ring positions folded into ctxVals
	cursorE int // error-ring positions folded into ctxErrs

	acc   *changepoint.Stream
	fft   map[fftKey]float64
	dense bool // every push so far advanced time by exactly 1
	memo  selMemo

	colds    uint64 // fast-path misses that fell back to the batch kernel
	resets   uint64 // full state resets (gap, Break, Restore)
	memoHits uint64
}

func newStreamState(cfg Config) *streamState {
	return &streamState{
		lookBack: cfg.LookBack,
		acc:      changepoint.NewStream(cfg.LookBack),
		dense:    true,
	}
}

// resetState discards everything derived from the rings. Called when the
// dense history is severed (collection gap, Clear, model Break) and by
// rebuild after Restore. Caller holds the shard lock.
func (st *streamState) resetState() {
	st.ctxVals.Reset()
	st.ctxErrs.Reset()
	st.cursor, st.cursorE = 0, 0
	st.acc.Reset()
	st.fft = nil
	st.dense = true
	st.memo = selMemo{}
	st.resets++
}

// beforePush removes the about-to-be-evicted front samples from the context
// multisets while the ring still holds them. Caller holds the shard lock.
func (st *streamState) beforePush(sh *metricShard) {
	if sh.samples.Len() == sh.samples.Cap() && st.cursor > 0 {
		_, v := sh.samples.At(0)
		st.ctxVals.Remove(v)
		st.cursor--
	}
	if sh.errs.Len() == sh.errs.Cap() && st.cursorE > 0 {
		_, e := sh.errs.At(0)
		st.ctxErrs.Remove(e)
		st.cursorE--
	}
}

// afterPush advances the context boundary to the new lastT and feeds the
// accumulator. prevLast/prevHas are the shard's lastT/hasLast from before
// the push. Caller holds the shard lock.
func (st *streamState) afterPush(sh *metricShard, v float64, prevLast int64, prevHas bool) {
	if prevHas && sh.lastT != prevLast+1 {
		// A time jump breaks the position↔time mapping the FFT memo keys
		// rely on; the positional multisets are unaffected.
		st.dense = false
		st.fft = nil
	}
	st.syncCursors(sh)
	st.acc.Push(v)
}

// syncCursors moves both context cursors to the boundary the batch kernel
// would use for an analysis at tv == lastT: position count
// (lastT − LookBack) − firstTime, clamped to the ring. Caller holds the
// shard lock.
func (st *streamState) syncCursors(sh *metricShard) {
	st.cursor = syncOne(sh.samples, &st.ctxVals, st.cursor, sh.lastT, st.lookBack)
	st.cursorE = syncOne(sh.errs, &st.ctxErrs, st.cursorE, sh.lastT, st.lookBack)
}

func syncOne(r *timeseries.Ring, w *timeseries.SortedWindow, cursor int, lastT int64, lookBack int) int {
	if r.Len() == 0 {
		return 0
	}
	first, _ := r.At(0)
	want64 := lastT - int64(lookBack) - first
	want := 0
	if want64 > 0 {
		want = int(want64)
	}
	if want > r.Len() {
		want = r.Len()
	}
	for cursor > want {
		cursor--
		_, v := r.At(cursor)
		w.Remove(v)
	}
	for cursor < want {
		_, v := r.At(cursor)
		w.Insert(v)
		cursor++
	}
	return cursor
}

// rebuild reconstructs the streaming state deterministically from the
// shard's current rings — the post-Restore path. Replaying the retained
// samples oldest-first leaves the accumulator exactly as if only those
// samples had ever been observed, so two daemons restored from the same
// checkpoint agree bit-for-bit. Caller holds the shard lock.
func (st *streamState) rebuild(sh *metricShard) {
	st.resetState()
	n := sh.samples.Len()
	dense := true
	var prev int64
	for i := 0; i < n; i++ {
		t, v := sh.samples.At(i)
		if i > 0 && t != prev+1 {
			dense = false
		}
		prev = t
		st.acc.Push(v)
	}
	st.dense = dense
	if sh.hasLast {
		st.syncCursors(sh)
	}
}

// bytes approximates the state's retained heap memory.
func (st *streamState) bytes() int64 {
	return st.ctxVals.Bytes() + st.ctxErrs.Bytes() + st.acc.Bytes() +
		int64(len(st.fft))*int64(32)
}

// streamFacts is what materializeStream extracts under the shard lock beyond
// the plain series copies: either a whole-kernel memo hit, or the O(1)
// context statistics for the percentile fast path, or neither (cold).
type streamFacts struct {
	memoHit bool
	memoCh  AbnormalChange
	memoOK  bool

	fast  bool // context multisets cover exactly [start, tv−LookBack)
	nVals int  // context value count (== batch len(cv))
	p99   float64
	p1    float64
	nErrs int // context error count (== batch len(ctx))
	p90   float64
	maxE  float64

	seq  uint64 // ring sequence numbers at materialization time,
	eseq uint64 // for storing the kernel memo afterwards
}

// materializeStream is materialize plus the streaming lookups, all under one
// shard lock acquisition. With streaming disabled (or the state cold) it
// degrades to a plain materialize; misses of a warm state count as colds.
// memoEligible is false for traced runs and active fault-injection hooks —
// both must execute the real kernel.
func (m *Monitor) materializeStream(tv int64, k metric.Kind, cfg Config, tier AnalysisTier, a *arena, memoEligible bool) (sv, se *timeseries.Series, facts streamFacts) {
	sh := &m.shards[k]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sv = sh.samples.SeriesInto(&a.vals)
	se = sh.errs.SeriesInto(&a.errs)
	st := sh.stream
	if st == nil {
		return sv, se, facts
	}
	facts.seq = sh.samples.Seq()
	facts.eseq = sh.errs.Seq()
	if memoEligible && st.memo.valid &&
		st.memo.seq == facts.seq && st.memo.eseq == facts.eseq &&
		st.memo.tv == tv && st.memo.tier == tier && st.memo.cfg == cfg {
		st.memoHits++
		facts.memoHit = true
		facts.memoCh = st.memo.ch
		facts.memoOK = st.memo.ok
		return sv, se, facts
	}
	// The multisets cover ring positions [0, cursor); the batch kernel sorts
	// positions [0, (tv−LookBack)−start). Equality of the counts is
	// sufficient: whenever they agree, the multiset holds exactly the batch
	// context multiset, whichever (tv, LookBack) maintained it.
	lookbackStart := tv - int64(cfg.LookBack)
	wantV := contextLen(sv, lookbackStart)
	wantE := contextLen(se, lookbackStart)
	if wantV != st.ctxVals.Len() || wantE != st.ctxErrs.Len() {
		st.colds++
		return sv, se, facts
	}
	facts.fast = true
	facts.nVals = wantV
	facts.nErrs = wantE
	if wantV >= minContext {
		facts.p99, _ = st.ctxVals.Percentile(99)
		facts.p1, _ = st.ctxVals.Percentile(1)
	}
	if wantE >= minContext {
		facts.p90, _ = st.ctxErrs.Percentile(90)
		facts.maxE, _ = st.ctxErrs.Max()
	}
	return sv, se, facts
}

// minContext is the batch kernel's minimum context length for the
// self-calibration statistics (select.go's len >= 8 guards).
const minContext = 8

// contextLen is the length of s.ViewRange(s.Start(), lookbackStart) without
// building the view.
func contextLen(s *timeseries.Series, lookbackStart int64) int {
	n := int(lookbackStart - s.Start())
	if n < 0 {
		n = 0
	}
	if n > s.Len() {
		n = s.Len()
	}
	return n
}

// storeMemo records a finished kernel verdict for the exact ring state it
// was computed from.
func (m *Monitor) storeMemo(k metric.Kind, facts streamFacts, tv int64, tier AnalysisTier, cfg Config, ch AbnormalChange, ok bool) {
	sh := &m.shards[k]
	sh.mu.Lock()
	if st := sh.stream; st != nil {
		st.memo = selMemo{
			valid: true,
			seq:   facts.seq, eseq: facts.eseq,
			tv: tv, tier: tier, cfg: cfg,
			ch: ch, ok: ok,
		}
	}
	sh.mu.Unlock()
}

// expectedErrorCached is expectedErrorAt behind the FFT memo. baseTime is
// the absolute time of raw[0]; a hit returns the identical float a fresh
// computation would, because ring content for retained positions never
// changes while the ring stays dense.
func (m *Monitor) expectedErrorCached(k metric.Kind, raw []float64, idx int, baseTime int64, cfg Config, a *arena) (float64, error) {
	sh := &m.shards[k]
	sh.mu.Lock()
	st := sh.stream
	if st == nil || !st.dense {
		sh.mu.Unlock()
		return expectedErrorAt(raw, idx, cfg, a)
	}
	lo, hi := burstBounds(idx, len(raw), cfg)
	key := fftKey{start: baseTime + int64(lo), n: hi - lo, frac: cfg.TopFreqFrac, pct: cfg.BurstPercentile}
	if v, ok := st.fft[key]; ok {
		sh.mu.Unlock()
		return v, nil
	}
	sh.mu.Unlock()
	v, err := expectedErrorAt(raw, idx, cfg, a)
	if err != nil {
		return v, err
	}
	sh.mu.Lock()
	if st := sh.stream; st != nil && st.dense {
		if st.fft == nil {
			st.fft = make(map[fftKey]float64, maxFFTMemo)
		} else if len(st.fft) >= maxFFTMemo {
			clear(st.fft)
		}
		st.fft[key] = v
	}
	sh.mu.Unlock()
	return v, nil
}

// StreamingStats aggregates the monitor's streaming-selection telemetry
// across metrics. All zeros when Config.Streaming is off.
type StreamingStats struct {
	// Streams is the number of metric streams carrying streaming state.
	Streams int `json:"streams,omitempty"`
	// Bytes approximates the heap retained by all streaming state.
	Bytes int64 `json:"bytes,omitempty"`
	// Colds counts analyses that found the fast path unusable (cold state,
	// historical tv, overridden window, reduced tier) and fell back to the
	// batch kernel.
	Colds uint64 `json:"colds,omitempty"`
	// Resets counts full state resets: collection gaps, model breaks,
	// checkpoint restores.
	Resets uint64 `json:"resets,omitempty"`
	// MemoHits counts whole-kernel verdicts served from the memo.
	MemoHits uint64 `json:"memo_hits,omitempty"`
	// Hot is the number of streams whose incremental CUSUM currently ranks
	// above the configured change-point confidence — the always-on "which
	// streams look abnormal right now" signal the accumulators provide
	// between Localize calls.
	Hot int `json:"hot,omitempty"`
}

// Merge folds other into s.
func (s *StreamingStats) Merge(other StreamingStats) {
	s.Streams += other.Streams
	s.Bytes += other.Bytes
	s.Colds += other.Colds
	s.Resets += other.Resets
	s.MemoHits += other.MemoHits
	s.Hot += other.Hot
}

// StreamingStats reports the component's streaming-selection telemetry.
func (m *Monitor) StreamingStats() StreamingStats {
	var out StreamingStats
	for _, k := range metric.Kinds {
		sh := &m.shards[k]
		sh.mu.Lock()
		if st := sh.stream; st != nil {
			out.Streams++
			out.Bytes += st.bytes()
			out.Colds += st.colds
			out.Resets += st.resets
			out.MemoHits += st.memoHits
			if conf, ok := st.acc.Confidence(m.cfg.Bootstraps); ok && conf >= m.cfg.CPConfidence {
				out.Hot++
			}
		}
		sh.mu.Unlock()
	}
	return out
}
