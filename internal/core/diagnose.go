package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fchain/internal/depgraph"
	"fchain/internal/metric"
	"fchain/internal/obs"
	"fchain/internal/timeseries"
)

// Culprit is one pinpointed faulty component.
type Culprit struct {
	Component string        `json:"component"`
	Onset     int64         `json:"onset"`
	Metrics   []metric.Kind `json:"metrics"` // implicated metrics, most significant first
	Reason    string        `json:"reason"`  // "source", "concurrent", or "independent"
	Validated bool          `json:"validated,omitempty"`
	// Confidence discounts the verdict by the data quality of the streams
	// it was derived from, in (0, 1]: a culprit pinpointed from heavily
	// repaired or gap-ridden data warrants re-checking once collection
	// recovers rather than immediate remediation.
	Confidence float64 `json:"confidence,omitempty"`
}

// Diagnosis is the output of the integrated fault diagnosis module.
type Diagnosis struct {
	// Culprits lists the pinpointed faulty components in onset order.
	Culprits []Culprit `json:"culprits"`
	// Chain is the abnormal change propagation chain: every abnormal
	// component sorted by manifestation onset.
	Chain []ComponentReport `json:"chain"`
	// ExternalFactor reports that the anomaly is attributed to a factor
	// outside the application (workload surge or shared-service outage)
	// because every component changed with the same trend.
	ExternalFactor bool `json:"external_factor"`
	// Trend is the shared trend direction when ExternalFactor is set.
	Trend timeseries.Trend `json:"trend,omitempty"`
}

// CulpritNames returns the pinpointed component names in onset order.
func (d Diagnosis) CulpritNames() []string {
	out := make([]string, len(d.Culprits))
	for i, c := range d.Culprits {
		out[i] = c.Component
	}
	return out
}

// String renders a compact human-readable summary.
func (d Diagnosis) String() string {
	if d.ExternalFactor {
		return fmt.Sprintf("external factor (%s trend across all components)", d.Trend)
	}
	if len(d.Culprits) == 0 {
		return "no faulty components pinpointed"
	}
	parts := make([]string, len(d.Culprits))
	for i, c := range d.Culprits {
		parts[i] = fmt.Sprintf("%s(onset=%d,%s)", c.Component, c.Onset, c.Reason)
	}
	return "culprits: " + strings.Join(parts, ", ")
}

// Diagnose runs the integrated faulty component pinpointing (paper §II-C):
//
//  1. sort abnormal components by manifestation onset into a propagation
//     chain;
//  2. pinpoint the chain's source; walk the chain and pinpoint every
//     component whose onset is within the concurrency threshold of the
//     previously pinpointed one (concurrent faults);
//  3. if *all* components are abnormal with the same up/down trend,
//     attribute the anomaly to an external factor and pinpoint nothing;
//  4. filter spurious propagation with the dependency graph: a suspicious
//     component with no interaction path from any pinpointed component
//     cannot have been reached by propagation, so it carries an
//     independent fault and is pinpointed too. When the dependency graph
//     is empty (discovery failed, e.g. stream systems), this step is
//     skipped and FChain relies on propagation order alone.
//
// totalComponents is the number of monitored components in the application
// (needed for the external-factor check); deps may be nil or empty.
func Diagnose(reports []ComponentReport, totalComponents int, deps *depgraph.Graph, cfg Config) Diagnosis {
	cfg = cfg.withDefaults()
	var chain []ComponentReport
	for _, r := range reports {
		if r.Abnormal() {
			chain = append(chain, r)
		}
	}
	sort.SliceStable(chain, func(i, j int) bool {
		if chain[i].Onset != chain[j].Onset {
			return chain[i].Onset < chain[j].Onset
		}
		return chain[i].Component < chain[j].Component
	})
	diag := Diagnosis{Chain: chain}
	if len(chain) == 0 {
		return diag
	}

	// External factor detection: all components abnormal, same trend, and
	// onsets nearly simultaneous (a workload surge reaches every tier in
	// seconds; a fault's back-pressure cascade takes much longer).
	if totalComponents > 1 && len(chain) == totalComponents {
		shared := chain[0].Direction()
		same := shared != timeseries.TrendFlat
		for _, r := range chain[1:] {
			if r.Direction() != shared {
				same = false
				break
			}
		}
		if spread := chain[len(chain)-1].Onset - chain[0].Onset; spread > cfg.ExternalSpread {
			same = false
		}
		if same {
			diag.ExternalFactor = true
			diag.Trend = shared
			return diag
		}
	}

	// Propagation-chain pinpointing.
	pinned := map[string]bool{chain[0].Component: true}
	diag.Culprits = append(diag.Culprits, culpritFrom(chain[0], "source"))
	lastPinnedOnset := chain[0].Onset
	for _, r := range chain[1:] {
		if r.Onset-lastPinnedOnset <= cfg.ConcurrencyThreshold {
			pinned[r.Component] = true
			diag.Culprits = append(diag.Culprits, culpritFrom(r, "concurrent"))
			lastPinnedOnset = r.Onset
		}
	}

	// Dependency-based filtering of spurious propagation paths.
	if deps != nil && !deps.Empty() {
		for _, r := range chain {
			if pinned[r.Component] {
				continue
			}
			reachable := false
			for p := range pinned {
				if deps.HasPath(p, r.Component) {
					reachable = true
					break
				}
			}
			if !reachable {
				pinned[r.Component] = true
				diag.Culprits = append(diag.Culprits, culpritFrom(r, "independent"))
			}
		}
	}
	sort.SliceStable(diag.Culprits, func(i, j int) bool {
		if diag.Culprits[i].Onset != diag.Culprits[j].Onset {
			return diag.Culprits[i].Onset < diag.Culprits[j].Onset
		}
		return diag.Culprits[i].Component < diag.Culprits[j].Component
	})
	return diag
}

func culpritFrom(r ComponentReport, reason string) Culprit {
	return Culprit{
		Component:  r.Component,
		Onset:      r.Onset,
		Metrics:    r.AbnormalMetrics(),
		Reason:     reason,
		Confidence: r.Quality.Confidence(),
	}
}

// Localizer bundles per-component monitors with the master-side diagnosis,
// providing the whole FChain pipeline behind two calls: Observe for every
// sample, Localize when a performance anomaly is detected.
type Localizer struct {
	cfg      Config
	monitors map[string]*Monitor
	names    []string
}

// NewLocalizer creates a localizer monitoring the given components.
func NewLocalizer(cfg Config, components []string) *Localizer {
	cfg = cfg.withDefaults()
	l := &Localizer{cfg: cfg, monitors: make(map[string]*Monitor, len(components))}
	for _, c := range components {
		l.monitors[c] = NewMonitor(c, cfg)
		l.names = append(l.names, c)
	}
	sort.Strings(l.names)
	return l
}

// Config returns the effective configuration.
func (l *Localizer) Config() Config { return l.cfg }

// Components returns the monitored component names, sorted.
func (l *Localizer) Components() []string {
	out := make([]string, len(l.names))
	copy(out, l.names)
	return out
}

// Monitor returns the monitor for one component.
func (l *Localizer) Monitor(component string) (*Monitor, bool) {
	m, ok := l.monitors[component]
	return m, ok
}

// Observe feeds one sample.
func (l *Localizer) Observe(component string, t int64, k metric.Kind, v float64) error {
	m, ok := l.monitors[component]
	if !ok {
		return fmt.Errorf("core: unknown component %q", component)
	}
	return m.Observe(t, k, v)
}

// Ingest feeds one possibly-dirty sample through the component's sanitizing
// path (see Monitor.Ingest).
func (l *Localizer) Ingest(component string, t int64, k metric.Kind, v float64) error {
	m, ok := l.monitors[component]
	if !ok {
		return fmt.Errorf("core: unknown component %q", component)
	}
	return m.Ingest(t, k, v)
}

// Quality reports the per-component data quality accumulated by the
// sanitizing ingest path.
func (l *Localizer) Quality() map[string]DataQuality {
	out := make(map[string]DataQuality, len(l.names))
	for _, name := range l.names {
		out[name] = qualityOf(l.monitors[name].Quality())
	}
	return out
}

// StreamingStats aggregates the streaming-selection telemetry across every
// monitored component. All counters are zero when Config.Streaming is off.
func (l *Localizer) StreamingStats() StreamingStats {
	var st StreamingStats
	for _, name := range l.names {
		st.Merge(l.monitors[name].StreamingStats())
	}
	return st
}

// Analyze asks every monitor for its look-back report at tv. With more than
// one component and cfg.Parallelism allowing it, the per-metric selection
// tasks run on a bounded worker pool; the reports are bit-identical to the
// serial order either way.
func (l *Localizer) Analyze(tv int64) []ComponentReport {
	reports, _ := l.analyzeAll(nil, tv, l.cfg, nil, -1)
	return reports
}

// AnalyzeInto is Analyze appending into dst (reset to length 0 first): a
// caller reusing the slice across calls makes the steady-state analysis
// path allocation-free.
func (l *Localizer) AnalyzeInto(dst []ComponentReport, tv int64) []ComponentReport {
	reports, _ := l.analyzeAll(dst, tv, l.cfg, nil, -1)
	return reports
}

// AnalyzeStats is Analyze also returning the engine's timing counters.
func (l *Localizer) AnalyzeStats(tv int64) ([]ComponentReport, PoolStats) {
	return l.analyzeAll(nil, tv, l.cfg, nil, -1)
}

// analyzeAll runs the analysis engine over every monitor under cfg. With a
// non-nil trace it opens an analyze span under parent and records the
// per-component span tree beneath it.
func (l *Localizer) analyzeAll(dst []ComponentReport, tv int64, cfg Config, tr *obs.Trace, parent int) ([]ComponentReport, PoolStats) {
	an := -1
	if tr != nil {
		an = tr.Start(parent, "analyze")
		tr.AttrInt(an, "tasks", int64(len(l.names)*metric.NumKinds))
		tr.AttrInt(an, "lookback", int64(cfg.LookBack))
	}
	if cap(dst) >= len(l.names) {
		dst = dst[:0]
	} else {
		dst = make([]ComponentReport, 0, len(l.names))
	}
	workers := cfg.workers()
	if workers <= 1 || len(l.names) <= 1 {
		// Serial fast path. serialStats is a separate variable from the
		// parallel branch's stats on purpose: the parallel engine leaks its
		// stats pointer into worker goroutines, and sharing one variable
		// would heap-allocate it on this allocation-free path too.
		var serialStats PoolStats
		serialStats.Workers = 1
		serialStats.Tasks = len(l.names) * metric.NumKinds
		a := getArena()
		for _, name := range l.names {
			dst = append(dst, l.monitors[name].analyzeArena(tv, cfg, a, &serialStats, tr, an))
		}
		putArena(a)
		tr.End(an)
		return dst, serialStats
	}
	var stats PoolStats
	monitors := make([]*Monitor, len(l.names))
	cfgs := make([]Config, len(l.names))
	for i, name := range l.names {
		monitors[i] = l.monitors[name]
		cfgs[i] = cfg
	}
	dst = analyzeMonitors(dst, monitors, cfgs, tv, workers, &stats, tr, an, nil)
	tr.End(an)
	return dst, stats
}

// Localize runs the full pipeline: per-component abnormal change point
// selection over [tv-W, tv], then integrated diagnosis with the dependency
// graph (which may be nil).
//
// With cfg.AdaptiveLookBack set and an empty first-pass chain, the analysis
// retries with progressively longer windows (up to cfg.MaxLookBack): a
// confirmed SLO violation with no abnormal change inside the window means
// the manifestation is slower than the window covers — the paper's Hadoop
// DiskHog situation, for which it manually switches from W=100 to W=500
// (§III-A, §III-F).
func (l *Localizer) Localize(tv int64, deps *depgraph.Graph) Diagnosis {
	diag, _ := l.LocalizeStats(tv, deps)
	return diag
}

// LocalizeStats is Localize also returning the engine's per-phase timing:
// selection task latencies plus one diagnosis observation per pass
// (adaptive look-back retries accumulate).
func (l *Localizer) LocalizeStats(tv int64, deps *depgraph.Graph) (Diagnosis, PoolStats) {
	return l.localize(tv, deps, nil, -1)
}

// LocalizeTraced is LocalizeStats also recording a pipeline trace: a
// localize root span with analyze and diagnose children per pass (adaptive
// look-back retries add a pass each), component:<name> spans per monitor,
// and select:<metric> spans with detect/filter/rollback beneath. The span
// structure and attributes are deterministic per (monitor state, tv, cfg);
// Normalize the trace to compare it against a golden copy.
func (l *Localizer) LocalizeTraced(tv int64, deps *depgraph.Graph) (Diagnosis, PoolStats, *obs.Trace) {
	tr := obs.NewTrace("localize", tv)
	root := tr.Start(-1, "localize")
	tr.AttrInt(root, "components", int64(len(l.names)))
	diag, stats := l.localize(tv, deps, tr, root)
	tr.Attr(root, "verdict", diag.String())
	tr.End(root)
	return diag, stats, tr
}

// localize runs the localization passes, optionally recording spans under
// parent.
func (l *Localizer) localize(tv int64, deps *depgraph.Graph, tr *obs.Trace, parent int) (Diagnosis, PoolStats) {
	reports, stats := l.analyzeAll(nil, tv, l.cfg, tr, parent)
	diag := l.diagnoseTraced(reports, deps, l.cfg, &stats, tr, parent)
	if !l.cfg.AdaptiveLookBack || len(diag.Chain) > 0 {
		return diag, stats
	}
	for w := l.cfg.LookBack * 3; w <= l.cfg.MaxLookBack*3; w *= 3 {
		window := w
		if window > l.cfg.MaxLookBack {
			window = l.cfg.MaxLookBack
		}
		wide := l.cfg
		wide.LookBack = window
		// Ring capacity stays as provisioned; monitors retain
		// RingCapacity samples, so the widened analysis sees as much of
		// the longer window as the slave kept.
		reports, st := l.analyzeAll(nil, tv, wide, tr, parent)
		stats.Merge(st)
		diag = l.diagnoseTraced(reports, deps, wide, &stats, tr, parent)
		if len(diag.Chain) > 0 || window == l.cfg.MaxLookBack {
			return diag, stats
		}
	}
	return diag, stats
}

// diagnoseTraced runs one Diagnose pass, timing it into stats and recording
// a diagnose span with the chain and verdict when tracing.
func (l *Localizer) diagnoseTraced(reports []ComponentReport, deps *depgraph.Graph, cfg Config, stats *PoolStats, tr *obs.Trace, parent int) Diagnosis {
	dg := -1
	if tr != nil {
		dg = tr.Start(parent, "diagnose")
	}
	t0 := time.Now()
	diag := Diagnose(reports, len(l.names), deps, cfg)
	stats.Diagnose.Observe(time.Since(t0).Nanoseconds())
	if tr != nil {
		tr.AttrInt(dg, "chain", int64(len(diag.Chain)))
		tr.Attr(dg, "culprits", strings.Join(diag.CulpritNames(), ","))
		tr.AttrBool(dg, "external", diag.ExternalFactor)
		tr.End(dg)
	}
	return diag
}
