package core

import (
	"fmt"

	"fchain/internal/metric"
)

// Adjuster is the dynamic resource-scaling surface that online pinpointing
// validation drives (paper §II-A, following PREPARE [20]): scale the
// implicated resources of pinpointed components, let the system run, and
// observe the impact on the SLO. cloudsim.Sim satisfies this interface; a
// production implementation would wrap the hypervisor's resource-control
// API.
type Adjuster interface {
	// ScaleResource scales the resource underlying metric kind k on the
	// component by factor.
	ScaleResource(component string, k metric.Kind, factor float64) error
	// Now returns the current time (seconds).
	Now() int64
	// RunUntil advances the system to time t.
	RunUntil(t int64)
	// SLOMetric reports the mean violation magnitude over [from, to) —
	// e.g. mean response time for a latency SLO. Validation only compares
	// it across trials, so any monotone badness measure works.
	SLOMetric(from, to int64) float64
}

// ValidationResult records the outcome of validating one culprit.
type ValidationResult struct {
	Culprit   Culprit `json:"culprit"`
	Confirmed bool    `json:"confirmed"`
	// Metric is the SLO violation magnitude observed in the trial that
	// scaled only this culprit (low = relieving it helped).
	Metric float64 `json:"metric"`
	// Inconclusive reports that the control trial showed no violation
	// pressure to measure improvements against, so every culprit is kept.
	Inconclusive bool `json:"inconclusive,omitempty"`
}

// Validate runs online pinpointing validation on the diagnosis, following
// the paper's recipe ("adjust those metrics on the faulty components ...
// observing the resource adjustment impact to the application's SLO
// violation status", §II-A) with a differential twist that handles
// concurrent faults: each culprit is judged by how much relieving *it
// alone* improves the SLO metric relative to an unscaled control trial.
// A true culprit of a concurrent pair cannot clear the violation by itself,
// but it measurably improves the SLO; a falsely accused victim changes
// nothing.
//
//  1. Control trial (nothing scaled) and full trial (every pinpointed
//     culprit scaled) bracket the achievable SLO range.
//  2. Solo trials: scale only one culprit. A culprit whose solo relief
//     improves the SLO by at least cfg.ValidationSignificance relative to
//     the control is confirmed (parallel concurrent faults each improve
//     the SLO partially on their own).
//  3. Leave-one-out trials: scale every culprit but one. When the full
//     trial improves the SLO, a culprit whose omission gives back at least
//     cfg.ValidationSignificance of that improvement is confirmed (serial
//     concurrent faults on one path improve nothing solo, but their
//     omission breaks the joint recovery).
//
// A culprit confirmed by neither test changed nothing in any trial — a
// false alarm — and is removed. When the control itself shows no violation
// pressure (the anomaly subsided), validation is inconclusive and every
// culprit is kept.
//
// Each trial needs a fresh system from mk (in simulation, a clone; in
// production, the live system with later rollback) and costs
// cfg.ValidationObserve observed seconds, matching the paper's ~30 s per
// validated component (Table II).
func Validate(mk func() (Adjuster, error), diag Diagnosis, cfg Config) ([]ValidationResult, error) {
	cfg = cfg.withDefaults()
	if len(diag.Culprits) == 0 {
		return nil, nil
	}

	// trial scales the culprits selected by pick and measures the SLO.
	trial := func(pick func(i int) bool) (float64, error) {
		sys, err := mk()
		if err != nil {
			return 0, fmt.Errorf("core: validation trial: %w", err)
		}
		for i, c := range diag.Culprits {
			if !pick(i) {
				continue
			}
			// Scale every resource of the culprit: the diagnosis names
			// the component; relieving all of its resources is the
			// strongest intervention the trial can make. (NetOut and
			// DiskWrite share hardware with NetIn and DiskRead.)
			for _, k := range []metric.Kind{metric.CPU, metric.Memory, metric.NetIn, metric.DiskRead} {
				if err := sys.ScaleResource(c.Component, k, cfg.ValidationScale); err != nil {
					return 0, fmt.Errorf("core: scale %s/%s: %w", c.Component, k, err)
				}
			}
		}
		start := sys.Now()
		end := start + int64(cfg.ValidationObserve)
		sys.RunUntil(end)
		// Allow a settling margin: queues built before scaling take a few
		// seconds to react even when the right component is relieved.
		settle := start + int64(cfg.ValidationObserve)/3
		return sys.SLOMetric(settle, end), nil
	}

	control, err := trial(func(int) bool { return false })
	if err != nil {
		return nil, err
	}
	results := make([]ValidationResult, 0, len(diag.Culprits))
	if control <= 0 {
		// No violation pressure left to measure against: inconclusive.
		for _, c := range diag.Culprits {
			results = append(results, ValidationResult{
				Culprit: c, Confirmed: true, Metric: control, Inconclusive: true,
			})
		}
		return results, nil
	}
	full, err := trial(func(int) bool { return true })
	if err != nil {
		return nil, err
	}
	fullGain := control - full
	fullImproves := fullGain/control >= cfg.ValidationSignificance
	for i, c := range diag.Culprits {
		solo, err := trial(func(j int) bool { return j == i })
		if err != nil {
			return nil, err
		}
		confirmed := (control-solo)/control >= cfg.ValidationSignificance
		if !confirmed && fullImproves && len(diag.Culprits) > 1 {
			loo, err := trial(func(j int) bool { return j != i })
			if err != nil {
				return nil, err
			}
			confirmed = (loo - full) >= cfg.ValidationSignificance*fullGain
		}
		results = append(results, ValidationResult{
			Culprit:   c,
			Confirmed: confirmed,
			Metric:    solo,
		})
	}
	return results, nil
}

// ApplyValidation returns a copy of the diagnosis retaining only confirmed
// culprits (the "FChain+VAL" configuration of Fig. 11).
func ApplyValidation(diag Diagnosis, results []ValidationResult) Diagnosis {
	confirmed := make(map[string]bool, len(results))
	for _, r := range results {
		if r.Confirmed {
			confirmed[r.Culprit.Component] = true
		}
	}
	out := diag
	out.Culprits = nil
	for _, c := range diag.Culprits {
		if confirmed[c.Component] {
			c.Validated = true
			out.Culprits = append(out.Culprits, c)
		}
	}
	return out
}
