package markov

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func trainedPredictor(seed int64, n int) *Predictor {
	rng := rand.New(rand.NewSource(seed))
	p := NewDefault()
	for i := 0; i < n; i++ {
		p.Observe(50 + 10*math.Sin(float64(i)/9) + rng.Float64()*2)
	}
	return p
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := trainedPredictor(1, 500)
	restored, err := FromSnapshot(p.Snapshot())
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	// The restored predictor must behave identically: same prediction
	// errors for the same future stream.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		v := 50 + 10*math.Sin(float64(i)/9) + rng.Float64()*2
		e1, ok1 := p.Observe(v)
		e2, ok2 := restored.Observe(v)
		if ok1 != ok2 || math.Abs(e1-e2) > 1e-12 {
			t.Fatalf("step %d diverged: (%v,%v) vs (%v,%v)", i, e1, ok1, e2, ok2)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	p := trainedPredictor(3, 300)
	raw, err := json.Marshal(p.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored, err := FromSnapshot(&s)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	e1, _ := p.Observe(55)
	e2, _ := restored.Observe(55)
	if math.Abs(e1-e2) > 1e-12 {
		t.Fatalf("diverged after JSON round trip: %v vs %v", e1, e2)
	}
}

func TestSnapshotSharesNoStorage(t *testing.T) {
	p := trainedPredictor(4, 200)
	s := p.Snapshot()
	p.Observe(1e6) // mutate the original
	restored, err := FromSnapshot(s)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	if err := restored.Validate(); err != nil {
		t.Fatalf("restored predictor invalid after source mutation: %v", err)
	}
}

func TestFromSnapshotRejectsCorruption(t *testing.T) {
	base := trainedPredictor(5, 200)
	cases := map[string]func(*Snapshot){
		"nil counts row len":  func(s *Snapshot) { s.Counts[0] = []float64{1} },
		"negative count":      func(s *Snapshot) { s.Counts[0] = make([]float64, s.Bins); s.Counts[0][0] = -1 },
		"nan count":           func(s *Snapshot) { s.Counts[0] = make([]float64, s.Bins); s.Counts[0][0] = math.NaN() },
		"bins too small":      func(s *Snapshot) { s.Bins = 1 },
		"bad decay":           func(s *Snapshot) { s.Decay = 1.5 },
		"inverted range":      func(s *Snapshot) { s.Lo, s.Hi = s.Hi, s.Lo },
		"last bin range":      func(s *Snapshot) { s.LastBin = s.Bins },
		"bad inc weight":      func(s *Snapshot) { s.IncWeight = math.NaN() },
		"negative obs":        func(s *Snapshot) { s.Observations = -1 },
		"too many count rows": func(s *Snapshot) { s.Counts = append(s.Counts, nil) },
	}
	for name, corrupt := range cases {
		s := base.Snapshot()
		corrupt(s)
		if _, err := FromSnapshot(s); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
	if _, err := FromSnapshot(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestBreakSeversChainNotKnowledge(t *testing.T) {
	p := trainedPredictor(6, 400)
	before := p.Snapshot()
	p.Break()
	after := p.Snapshot()
	if after.HasLast {
		t.Error("Break did not clear chain position")
	}
	if after.Observations != before.Observations {
		t.Error("Break discarded observation count")
	}
	// Learned transitions must survive: the first post-break observation
	// has no previous state, the second predicts from learned counts again.
	if _, ok := p.Observe(55); ok {
		t.Error("first observation after Break should have no prediction")
	}
	if _, ok := p.Observe(55); !ok {
		t.Error("second observation after Break should predict again")
	}
}
