// Package markov implements the online discrete-time Markov chain value
// predictor that FChain uses as its normal fluctuation model.
//
// Following PRESS (Gong, Gu, Wilkes, CNSM 2010 — cited as [12] in the FChain
// paper), each system metric's value range is discretized into bins and a
// transition probability matrix between bins is learned online with
// exponential decay. Change patterns caused by normal workload fluctuation
// recur and are therefore learned by the model, yielding small prediction
// errors; fault-induced fluctuations have not been seen before and yield
// large prediction errors. FChain's abnormal change point selection uses
// exactly this prediction error signal (paper §II-A/B).
package markov

import (
	"errors"
	"fmt"
	"math"
)

// Default model parameters. 40 bins balances resolution against the amount
// of history needed to populate the transition matrix; the decay keeps the
// model adaptive to slowly evolving workloads.
const (
	DefaultBins  = 40
	DefaultDecay = 0.999
)

// Predictor is an online Markov chain model over a single metric stream.
// It is not safe for concurrent use; FChain runs one predictor per
// (component, metric) pair inside a single collection goroutine.
type Predictor struct {
	bins  int
	decay float64

	lo, hi   float64 // current discretization range
	rangeSet bool

	counts  [][]float64 // decayed transition counts [from][to]
	rowSum  []float64
	lastBin int
	hasLast bool

	// incWeight implements exponential decay lazily: instead of scaling
	// every historical count down at each observation (O(bins²)), new
	// transitions are added with exponentially *growing* weight, keeping
	// all ratios identical. Counts are renormalized before the weight can
	// lose precision.
	incWeight float64

	observations int

	// Short-horizon drift state, refreshed on every Observe: exponential
	// moving averages of the signed sample-to-sample delta and its
	// magnitude, plus the precomputed classification the two imply. They
	// cost three multiply-adds per sample and give monitors an O(1)
	// "is this metric drifting" answer without touching the ring history.
	lastVal   float64
	trendEMA  float64
	absEMA    float64
	trendHint int8

	// Remap scratch: the previous transition matrix and a bin-center
	// buffer, recycled so growing the discretization range of a warm
	// predictor allocates nothing. spare is always dimensionally identical
	// to counts (bins never changes after New) and never aliases it.
	spare         [][]float64
	spareSum      []float64
	centerScratch []float64
}

// New returns a predictor with the given number of value bins and decay
// factor applied to historical transition counts at every observation.
// bins < 2 and out-of-range decay fall back to the defaults.
func New(bins int, decay float64) *Predictor {
	if bins < 2 {
		bins = DefaultBins
	}
	if decay <= 0 || decay > 1 {
		decay = DefaultDecay
	}
	p := &Predictor{bins: bins, decay: decay}
	p.reset()
	return p
}

// NewDefault returns a predictor with default parameters.
func NewDefault() *Predictor { return New(DefaultBins, DefaultDecay) }

func (p *Predictor) reset() {
	old, oldSum := p.counts, p.rowSum
	if len(p.spare) == p.bins {
		p.counts, p.rowSum = p.spare, p.spareSum
		for i := range p.counts {
			clear(p.counts[i])
		}
		clear(p.rowSum)
	} else {
		// One flat backing array for the whole matrix: 2 allocations instead
		// of bins+1, and the rows stay cache-adjacent. Full capacity slices
		// keep an append on one row from bleeding into the next.
		p.counts = make([][]float64, p.bins)
		flat := make([]float64, p.bins*p.bins)
		for i := range p.counts {
			p.counts[i] = flat[i*p.bins : (i+1)*p.bins : (i+1)*p.bins]
		}
		p.rowSum = make([]float64, p.bins)
	}
	// The matrix just replaced becomes the next reset's scratch; remapRange
	// still reads it through its own reference after this returns, which is
	// safe because the spare is only cleared at the next reset.
	p.spare, p.spareSum = old, oldSum
	p.hasLast = false
	p.incWeight = 1
}

// Observations returns the number of samples the model has consumed.
func (p *Predictor) Observations() int { return p.observations }

// Range returns the current discretization range [lo, hi].
func (p *Predictor) Range() (lo, hi float64) { return p.lo, p.hi }

// binOf maps a value to its bin index, clamping to the range edges.
func (p *Predictor) binOf(v float64) int {
	if p.hi <= p.lo {
		return 0
	}
	idx := int((v - p.lo) / (p.hi - p.lo) * float64(p.bins))
	if idx < 0 {
		idx = 0
	}
	if idx >= p.bins {
		idx = p.bins - 1
	}
	return idx
}

// binCenter returns the representative value of bin i.
func (p *Predictor) binCenter(i int) float64 {
	if p.hi <= p.lo {
		return p.lo
	}
	w := (p.hi - p.lo) / float64(p.bins)
	return p.lo + (float64(i)+0.5)*w
}

// ensureRange grows the discretization range to cover v, remapping existing
// transition counts onto the new bins (approximately, by bin centers).
func (p *Predictor) ensureRange(v float64) {
	if !p.rangeSet {
		// Seed a small symmetric range around the first value so early
		// samples land in distinct bins once fluctuation begins.
		span := math.Abs(v) * 0.5
		if span == 0 {
			span = 1
		}
		p.lo, p.hi = v-span, v+span
		p.rangeSet = true
		return
	}
	if v >= p.lo && v <= p.hi {
		return
	}
	newLo, newHi := p.lo, p.hi
	span := p.hi - p.lo
	// Grow generously to avoid frequent remaps under a trending metric.
	for v < newLo {
		newLo -= span
		span = newHi - newLo
	}
	for v > newHi {
		newHi += span
		span = newHi - newLo
	}
	p.remapRange(newLo, newHi)
}

func (p *Predictor) remapRange(newLo, newHi float64) {
	old := p.counts
	oldLo, oldHi := p.lo, p.hi
	oldBins := p.bins
	if cap(p.centerScratch) < oldBins {
		p.centerScratch = make([]float64, oldBins)
	}
	centers := p.centerScratch[:oldBins]
	w := (oldHi - oldLo) / float64(oldBins)
	for i := range centers {
		centers[i] = oldLo + (float64(i)+0.5)*w
	}
	hadLast := p.hasLast
	var lastCenter float64
	if hadLast {
		lastCenter = centers[p.lastBin]
	}
	p.lo, p.hi = newLo, newHi
	p.reset()
	for i := range old {
		for j, c := range old[i] {
			if c == 0 {
				continue
			}
			ni := p.binOf(centers[i])
			nj := p.binOf(centers[j])
			p.counts[ni][nj] += c
			p.rowSum[ni] += c
		}
	}
	// Restore the chain position under the new discretization — but only if
	// the chain had one going in. A position severed by Break must stay
	// severed: resurrecting it here would charge a phantom transition (and a
	// phantom trend delta) across the very gap Break was called for.
	if hadLast {
		p.lastBin = p.binOf(lastCenter)
	}
	p.hasLast = hadLast
}

// Predict returns the model's prediction for the *next* value given the
// current chain position: the probability-weighted mean of destination bin
// centers. ok is false until the model has a position and at least one
// learned transition from it (an unseen state).
func (p *Predictor) Predict() (v float64, ok bool) {
	if !p.hasLast {
		return 0, false
	}
	row := p.counts[p.lastBin]
	sum := p.rowSum[p.lastBin]
	if sum <= 0 {
		return 0, false
	}
	var acc float64
	for j, c := range row {
		if c > 0 {
			acc += c / sum * p.binCenter(j)
		}
	}
	return acc, true
}

// Observe consumes the next sample, returning the absolute prediction error
// for it (|predicted − actual|). When the model could not predict (cold
// start or unseen state), predicted=false and err is the model's fallback:
// the distance from the previous value (a naive last-value predictor), or 0
// on the very first sample.
func (p *Predictor) Observe(v float64) (predErr float64, predicted bool) {
	p.ensureRange(v)
	var prevCenter float64
	hadPrev := p.hasLast
	if hadPrev {
		prevCenter = p.binCenter(p.lastBin)
	}
	pred, ok := p.Predict()
	if ok {
		predErr = math.Abs(pred - v)
		predicted = true
	} else if hadPrev {
		predErr = math.Abs(prevCenter - v)
	}
	// Learn the transition prev -> current. Decay is applied lazily: new
	// counts carry exponentially growing weight instead of shrinking the
	// old ones, which preserves every probability ratio at O(1) cost.
	cur := p.binOf(v)
	if hadPrev {
		if p.decay < 1 {
			p.incWeight /= p.decay
			if p.incWeight > 1e12 {
				p.renormalize()
			}
		}
		p.counts[p.lastBin][cur] += p.incWeight
		p.rowSum[p.lastBin] += p.incWeight
		// Refresh the drift state. A severed chain (Break, gap) reaches
		// here with hadPrev=false, so no phantom cross-gap delta is ever
		// charged to the trend.
		d := v - p.lastVal
		p.trendEMA = trendAlpha*d + (1-trendAlpha)*p.trendEMA
		p.absEMA = trendAlpha*math.Abs(d) + (1-trendAlpha)*p.absEMA
	}
	p.lastVal = v
	p.refreshTrendHint()
	p.lastBin = cur
	p.hasLast = true
	p.observations++
	return predErr, predicted
}

// trendAlpha is the EMA weight of the newest delta in the drift state: an
// effective horizon of ~10 samples, short enough to flip within a look-back
// window, long enough to shrug off single-sample noise.
const trendAlpha = 0.1

// refreshTrendHint reclassifies the drift state; Observe calls it so
// TrendHint itself is a plain field read.
func (p *Predictor) refreshTrendHint() {
	p.trendHint = 0
	if p.observations < 8 || p.absEMA <= 0 {
		return
	}
	switch r := p.trendEMA / p.absEMA; {
	case r > 0.3:
		p.trendHint = 1
	case r < -0.3:
		p.trendHint = -1
	}
}

// TrendHint reports the model's precomputed short-horizon drift tier: +1
// when the metric is persistently rising, -1 falling, 0 flat relative to
// its own step-to-step noise. It is telemetry — a cheap always-fresh "which
// way is this stream moving" signal for dashboards and stream triage — and
// never feeds the selection kernel, whose verdicts stay a pure function of
// the retained history.
func (p *Predictor) TrendHint() int { return int(p.trendHint) }

// Break severs the chain position without discarding learned transitions.
// The slave calls it after a long collection gap: the pre-gap "previous
// state" is stale, so predicting the next sample from it would charge the
// model a phantom transition across the gap, but the accumulated transition
// counts remain valid knowledge of the component's normal fluctuation.
func (p *Predictor) Break() {
	p.hasLast = false
	p.lastBin = 0
}

// renormalize rescales all counts so the incremental weight returns to 1,
// preserving every ratio.
func (p *Predictor) renormalize() {
	inv := 1 / p.incWeight
	for i := range p.counts {
		if p.rowSum[i] == 0 {
			continue
		}
		p.rowSum[i] = 0
		for j := range p.counts[i] {
			p.counts[i][j] *= inv
			p.rowSum[i] += p.counts[i][j]
		}
	}
	p.incWeight = 1
}

// PredictionErrorAt replays the model against a historical window and
// returns the prediction error at each step. It trains a fresh predictor on
// the window's own history, which is how FChain's slave evaluates candidate
// change points inside the look-back window against the already-trained
// model state — see core.Selector for the online variant that reuses the
// long-lived model.
func PredictionErrorAt(vals []float64, bins int, decay float64) []float64 {
	p := New(bins, decay)
	errs := make([]float64, len(vals))
	for i, v := range vals {
		errs[i], _ = p.Observe(v)
	}
	return errs
}

// TransitionProb returns the learned probability of moving from the bin of
// value a to the bin of value b. It is primarily useful for tests and
// introspection.
func (p *Predictor) TransitionProb(a, b float64) float64 {
	if !p.rangeSet {
		return 0
	}
	i, j := p.binOf(a), p.binOf(b)
	if p.rowSum[i] <= 0 {
		return 0
	}
	return p.counts[i][j] / p.rowSum[i]
}

// RowDistribution returns the transition distribution out of the bin
// containing value v. The slice sums to 1 (or is nil for unseen states).
func (p *Predictor) RowDistribution(v float64) []float64 {
	if !p.rangeSet {
		return nil
	}
	i := p.binOf(v)
	if p.rowSum[i] <= 0 {
		return nil
	}
	out := make([]float64, p.bins)
	for j, c := range p.counts[i] {
		out[j] = c / p.rowSum[i]
	}
	return out
}

// Validate checks internal invariants; it is used by property tests.
func (p *Predictor) Validate() error {
	for i := range p.counts {
		var sum float64
		for _, c := range p.counts[i] {
			if c < 0 {
				return fmt.Errorf("markov: negative count in row %d", i)
			}
			sum += c
		}
		if math.Abs(sum-p.rowSum[i]) > 1e-6*(1+sum) {
			return fmt.Errorf("markov: row %d sum mismatch: %v vs cached %v", i, sum, p.rowSum[i])
		}
	}
	if p.rangeSet && p.hi <= p.lo {
		return errors.New("markov: inverted range")
	}
	return nil
}
