package markov

import "testing"

func feedTrend(p *Predictor, n int, f func(i int) float64) {
	for i := 0; i < n; i++ {
		p.Observe(f(i))
	}
}

func TestTrendHintClassification(t *testing.T) {
	rising := New(DefaultBins, DefaultDecay)
	feedTrend(rising, 50, func(i int) float64 { return float64(i) })
	if got := rising.TrendHint(); got != 1 {
		t.Fatalf("monotone ramp: TrendHint = %d, want +1", got)
	}

	falling := New(DefaultBins, DefaultDecay)
	feedTrend(falling, 50, func(i int) float64 { return 1000 - float64(i) })
	if got := falling.TrendHint(); got != -1 {
		t.Fatalf("monotone decline: TrendHint = %d, want -1", got)
	}

	// Alternating steps: large per-sample movement, zero net drift.
	flat := New(DefaultBins, DefaultDecay)
	feedTrend(flat, 50, func(i int) float64 { return 50 + float64(i%2)*10 })
	if got := flat.TrendHint(); got != 0 {
		t.Fatalf("oscillating series: TrendHint = %d, want 0", got)
	}
}

// TestTrendHintColdStart: the hint stays 0 until the model has seen enough
// samples to mean anything, even when those first samples trend hard.
func TestTrendHintColdStart(t *testing.T) {
	p := New(DefaultBins, DefaultDecay)
	feedTrend(p, 5, func(i int) float64 { return float64(i) * 100 })
	if got := p.TrendHint(); got != 0 {
		t.Fatalf("after 5 samples: TrendHint = %d, want 0 (still warming)", got)
	}
}

// TestTrendHintBreakSeversDelta: a collection gap (Break) must not charge the
// pre-gap → post-gap level jump to the trend. A flat metric that resumes flat
// at a different level is still flat.
func TestTrendHintBreakSeversDelta(t *testing.T) {
	p := New(DefaultBins, DefaultDecay)
	feedTrend(p, 40, func(i int) float64 { return 10 + float64(i%2) })
	p.Break()
	feedTrend(p, 40, func(i int) float64 { return 5000 + float64(i%2) })
	if got := p.TrendHint(); got != 0 {
		t.Fatalf("flat-gap-flat: TrendHint = %d, want 0 (level jump must not count)", got)
	}
}

// TestSnapshotCarriesDriftState: the drift EMAs survive a checkpoint
// round-trip, so a restarted daemon reports the same hint it reported before
// the kill without re-warming.
func TestSnapshotCarriesDriftState(t *testing.T) {
	p := New(DefaultBins, DefaultDecay)
	feedTrend(p, 50, func(i int) float64 { return float64(i) * 2 })
	if p.TrendHint() != 1 {
		t.Fatal("setup: expected rising hint")
	}
	q, err := FromSnapshot(p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if q.TrendHint() != p.TrendHint() {
		t.Fatalf("restored TrendHint = %d, want %d", q.TrendHint(), p.TrendHint())
	}
	if q.lastVal != p.lastVal || q.trendEMA != p.trendEMA || q.absEMA != p.absEMA {
		t.Fatalf("drift state not restored: got (%v, %v, %v), want (%v, %v, %v)",
			q.lastVal, q.trendEMA, q.absEMA, p.lastVal, p.trendEMA, p.absEMA)
	}
}

// TestSnapshotWithoutDriftFields: checkpoints written before the drift fields
// existed (zero values) restore cleanly with a neutral hint.
func TestSnapshotWithoutDriftFields(t *testing.T) {
	p := New(DefaultBins, DefaultDecay)
	feedTrend(p, 50, func(i int) float64 { return float64(i) })
	s := p.Snapshot()
	s.LastVal, s.TrendEMA, s.AbsEMA = 0, 0, 0
	q, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.TrendHint(); got != 0 {
		t.Fatalf("restored legacy snapshot: TrendHint = %d, want 0", got)
	}
}
