package markov

import "testing"

// TestObserveAllocFree guards the modeling hot path: once a predictor is
// warm, consuming an in-range sample must not allocate. The slave calls
// Observe for every (component, metric, second), so even one allocation here
// multiplies into steady GC pressure across a deployment.
func TestObserveAllocFree(t *testing.T) {
	p := New(DefaultBins, DefaultDecay)
	for i := 0; i < 500; i++ {
		p.Observe(50 + float64(i%17))
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		p.Observe(50 + float64(i%17))
		i++
	})
	if allocs > 0 {
		t.Fatalf("warm in-range Observe allocates %.1f per call; want 0", allocs)
	}
}

// TestRemapRangeAllocFree guards the scratch reuse in reset/remapRange: after
// the first remap has populated the spare matrix and the bin-center buffer,
// growing the discretization range of a warm predictor must be alloc-free.
// Trending metrics (a ramping memory leak, a filling disk) remap repeatedly,
// and before the scratch existed each remap rebuilt the full bins×bins matrix
// on the heap.
func TestRemapRangeAllocFree(t *testing.T) {
	p := New(DefaultBins, DefaultDecay)
	for i := 0; i < 200; i++ {
		p.Observe(50 + float64(i%10))
	}
	// Each value lands beyond the current hi, forcing a range remap.
	// AllocsPerRun's warm-up call absorbs the one-time scratch allocation.
	v := 1e4
	allocs := testing.AllocsPerRun(50, func() {
		p.Observe(v)
		v *= 3
	})
	if allocs > 0 {
		t.Fatalf("range remap allocates %.1f per Observe; scratch reuse should make it alloc-free", allocs)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
