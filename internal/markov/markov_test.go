package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDefaults(t *testing.T) {
	p := New(0, -1)
	if p.bins != DefaultBins || p.decay != DefaultDecay {
		t.Errorf("fallback params = %d,%v", p.bins, p.decay)
	}
	if p.Observations() != 0 {
		t.Error("fresh model should have 0 observations")
	}
}

func TestColdStart(t *testing.T) {
	p := NewDefault()
	if _, ok := p.Predict(); ok {
		t.Error("Predict before any observation must report !ok")
	}
	err0, predicted := p.Observe(10)
	if predicted || err0 != 0 {
		t.Errorf("first observation: err=%v predicted=%v, want 0,false", err0, predicted)
	}
}

func TestLearnsPeriodicSignal(t *testing.T) {
	// A strictly periodic signal becomes perfectly predictable once the
	// cycle has been seen: the defining property FChain relies on to
	// filter change points caused by recurring workload fluctuation.
	p := New(20, 1.0)
	// A sawtooth is deterministic for an order-1 chain: every value has a
	// unique successor.
	period := []float64{10, 20, 30, 40, 50, 60}
	var warmup, steady float64
	var steadyN int
	for rep := 0; rep < 50; rep++ {
		for _, v := range period {
			e, _ := p.Observe(v)
			if rep < 3 {
				warmup += e
			} else if rep >= 40 {
				steady += e
				steadyN++
			}
		}
	}
	steadyMean := steady / float64(steadyN)
	if steadyMean > 2.0 {
		t.Errorf("steady-state prediction error = %v, want small", steadyMean)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestUnseenJumpHasHighError(t *testing.T) {
	p := New(20, 1.0)
	for rep := 0; rep < 100; rep++ {
		p.Observe(10 + math.Sin(float64(rep))*2)
	}
	// Fault-like excursion far outside learned behaviour.
	e, _ := p.Observe(500)
	if e < 100 {
		t.Errorf("prediction error on unseen jump = %v, want large", e)
	}
}

func TestRangeExpansion(t *testing.T) {
	p := New(10, 1.0)
	p.Observe(10)
	p.Observe(11)
	lo1, hi1 := p.Range()
	p.Observe(1000)
	lo2, hi2 := p.Range()
	if !(lo2 <= lo1 && hi2 >= hi1 && hi2 >= 1000) {
		t.Errorf("range did not expand: [%v,%v] -> [%v,%v]", lo1, hi1, lo2, hi2)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRemapPreservesMass(t *testing.T) {
	p := New(10, 1.0)
	vals := []float64{1, 2, 3, 2, 1, 2, 3, 2, 1}
	for _, v := range vals {
		p.Observe(v)
	}
	var before float64
	for _, s := range p.rowSum {
		before += s
	}
	p.Observe(1e6) // force a remap
	var after float64
	for _, s := range p.rowSum {
		after += s
	}
	// The remap itself must preserve mass; the final Observe adds one
	// transition.
	if math.Abs(after-(before+1)) > 1e-6 {
		t.Errorf("transition mass after remap = %v, want %v", after, before+1)
	}
}

func TestTransitionProb(t *testing.T) {
	p := New(4, 1.0)
	// Build a range first, then a deterministic alternation.
	p.Observe(0)
	p.Observe(100)
	for i := 0; i < 20; i++ {
		p.Observe(0)
		p.Observe(100)
	}
	if got := p.TransitionProb(0, 100); got < 0.9 {
		t.Errorf("P(0->100) = %v, want ~1", got)
	}
	if got := p.TransitionProb(0, 0); got > 0.1 {
		t.Errorf("P(0->0) = %v, want ~0", got)
	}
}

func TestRowDistributionSumsToOne(t *testing.T) {
	p := New(8, 0.99)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		p.Observe(rng.Float64() * 100)
	}
	dist := p.RowDistribution(50)
	if dist == nil {
		t.Fatal("expected a distribution for a visited state")
	}
	var sum float64
	for _, d := range dist {
		if d < 0 {
			t.Fatal("negative probability")
		}
		sum += d
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("row distribution sums to %v, want 1", sum)
	}
}

func TestRowDistributionUnseen(t *testing.T) {
	p := NewDefault()
	if p.RowDistribution(5) != nil {
		t.Error("distribution for untrained model should be nil")
	}
}

func TestPredictionErrorAt(t *testing.T) {
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 50 + 10*math.Sin(float64(i)*math.Pi/10)
	}
	errs := PredictionErrorAt(vals, 20, 1.0)
	if len(errs) != len(vals) {
		t.Fatalf("length mismatch: %d vs %d", len(errs), len(vals))
	}
	head := 0.0
	for _, e := range errs[:20] {
		head += e
	}
	tail := 0.0
	for _, e := range errs[180:] {
		tail += e
	}
	if tail >= head {
		t.Errorf("prediction error should shrink with training: head=%v tail=%v", head, tail)
	}
}

func TestDecayForgetsOldBehaviour(t *testing.T) {
	// With decay, a regime change is eventually absorbed: after enough
	// samples in the new regime, its transitions dominate.
	p := New(20, 0.95)
	for i := 0; i < 200; i++ {
		p.Observe(10)
	}
	for i := 0; i < 200; i++ {
		p.Observe(90)
	}
	if got := p.TransitionProb(90, 90); got < 0.9 {
		t.Errorf("P(90->90) after regime change = %v, want ~1", got)
	}
}

// Property: the model never violates its internal invariants, for any input
// stream, and prediction errors are non-negative and finite.
func TestInvariantsProperty(t *testing.T) {
	f := func(raw []float64, binsRaw uint8) bool {
		bins := int(binsRaw%30) + 2
		p := New(bins, 0.99)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			v = math.Mod(v, 1e9)
			e, _ := p.Observe(v)
			if e < 0 || math.IsNaN(e) || math.IsInf(e, 0) {
				return false
			}
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: for a constant stream, prediction error converges to zero.
func TestConstantStreamProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := rng.Float64()*1000 - 500
		p := NewDefault()
		var last float64
		for i := 0; i < 50; i++ {
			last, _ = p.Observe(c)
		}
		return last < 1e-6*(1+math.Abs(c))+0.05*math.Abs(c)+0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
