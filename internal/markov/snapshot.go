package markov

import (
	"errors"
	"fmt"
	"math"
)

// Snapshot is the complete serializable state of a Predictor. A slave
// checkpoints its predictors through this so a restarted daemon resumes
// with its learned normal-fluctuation model instead of cold-starting
// through the self-calibration period — without the model, every change
// after the restart is "never seen before" and would be flagged abnormal.
type Snapshot struct {
	Bins         int         `json:"bins"`
	Decay        float64     `json:"decay"`
	Lo           float64     `json:"lo"`
	Hi           float64     `json:"hi"`
	RangeSet     bool        `json:"range_set"`
	Counts       [][]float64 `json:"counts,omitempty"`
	LastBin      int         `json:"last_bin"`
	HasLast      bool        `json:"has_last"`
	IncWeight    float64     `json:"inc_weight"`
	Observations int         `json:"observations"`
	// Drift state behind TrendHint. Omitted when zero so checkpoints
	// written before these fields existed restore cleanly: the trend then
	// re-warms from post-restore samples.
	LastVal  float64 `json:"last_val,omitempty"`
	TrendEMA float64 `json:"trend_ema,omitempty"`
	AbsEMA   float64 `json:"abs_ema,omitempty"`
}

// Snapshot captures the predictor's current state. The returned snapshot
// shares no storage with the predictor.
func (p *Predictor) Snapshot() *Snapshot {
	s := &Snapshot{
		Bins:         p.bins,
		Decay:        p.decay,
		Lo:           p.lo,
		Hi:           p.hi,
		RangeSet:     p.rangeSet,
		LastBin:      p.lastBin,
		HasLast:      p.hasLast,
		IncWeight:    p.incWeight,
		Observations: p.observations,
		LastVal:      p.lastVal,
		TrendEMA:     p.trendEMA,
		AbsEMA:       p.absEMA,
	}
	// Only non-empty rows are stored; a 40×40 matrix of zeros would bloat
	// every checkpoint for cold metrics. nil rows restore as zero rows.
	s.Counts = make([][]float64, p.bins)
	for i, row := range p.counts {
		if p.rowSum[i] == 0 {
			continue
		}
		s.Counts[i] = append([]float64(nil), row...)
	}
	return s
}

// FromSnapshot rebuilds a predictor from a snapshot, validating every
// invariant so a corrupted or hand-edited checkpoint cannot smuggle
// NaN/negative state into the model.
func FromSnapshot(s *Snapshot) (*Predictor, error) {
	if s == nil {
		return nil, errors.New("markov: nil snapshot")
	}
	if s.Bins < 2 {
		return nil, fmt.Errorf("markov: snapshot bins %d < 2", s.Bins)
	}
	if s.Decay <= 0 || s.Decay > 1 || math.IsNaN(s.Decay) {
		return nil, fmt.Errorf("markov: snapshot decay %v out of (0,1]", s.Decay)
	}
	if s.RangeSet && (s.Hi <= s.Lo || math.IsNaN(s.Lo) || math.IsNaN(s.Hi) || math.IsInf(s.Lo, 0) || math.IsInf(s.Hi, 0)) {
		return nil, fmt.Errorf("markov: snapshot range [%v, %v] invalid", s.Lo, s.Hi)
	}
	if s.HasLast && (s.LastBin < 0 || s.LastBin >= s.Bins) {
		return nil, fmt.Errorf("markov: snapshot last bin %d out of [0,%d)", s.LastBin, s.Bins)
	}
	if s.IncWeight <= 0 || math.IsNaN(s.IncWeight) || math.IsInf(s.IncWeight, 0) {
		return nil, fmt.Errorf("markov: snapshot incremental weight %v invalid", s.IncWeight)
	}
	if s.Observations < 0 {
		return nil, fmt.Errorf("markov: snapshot observations %d negative", s.Observations)
	}
	if len(s.Counts) > s.Bins {
		return nil, fmt.Errorf("markov: snapshot has %d rows for %d bins", len(s.Counts), s.Bins)
	}
	for _, f := range [...]struct {
		name string
		v    float64
	}{{"last_val", s.LastVal}, {"trend_ema", s.TrendEMA}, {"abs_ema", s.AbsEMA}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return nil, fmt.Errorf("markov: snapshot %s %v invalid", f.name, f.v)
		}
	}
	if s.AbsEMA < 0 {
		return nil, fmt.Errorf("markov: snapshot abs_ema %v negative", s.AbsEMA)
	}
	p := New(s.Bins, s.Decay)
	p.lo, p.hi = s.Lo, s.Hi
	p.rangeSet = s.RangeSet
	p.lastBin = s.LastBin
	p.hasLast = s.HasLast
	p.incWeight = s.IncWeight
	p.observations = s.Observations
	p.lastVal = s.LastVal
	p.trendEMA = s.TrendEMA
	p.absEMA = s.AbsEMA
	p.refreshTrendHint()
	for i, row := range s.Counts {
		if row == nil {
			continue
		}
		if len(row) != s.Bins {
			return nil, fmt.Errorf("markov: snapshot row %d has %d columns for %d bins", i, len(row), s.Bins)
		}
		var sum float64
		for j, c := range row {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("markov: snapshot count [%d][%d]=%v invalid", i, j, c)
			}
			p.counts[i][j] = c
			sum += c
		}
		p.rowSum[i] = sum
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
