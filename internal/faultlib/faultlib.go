// Package faultlib is the fault-template library for generated meshes: a
// registry of composable fault templates beyond the paper's catalog, each
// scaled automatically to the mesh it is injected into (magnitudes derive
// from the target's flow share, memory headroom, and host packing rather
// than hand-tuned constants).
//
// Three template classes exist:
//
//   - genuine faults (gray-disk, slow-leak, retry-storm, noisy-neighbor,
//     correlated-memleak): localized misbehavior with a non-empty ground
//     truth that a localizer is scored on finding,
//   - false-alarm traps (workload-surge, flash-crowd): legitimate workload
//     shifts with an *empty* ground truth — every pinpointed component is a
//     false positive, and FChain's external-factor rule is what passes them,
//   - pathological detector validators (instant-kill, everything-degrades):
//     in the spirit of reject-all/inverted-SLO chaos handlers, their only
//     purpose is proving the CUSUM/FFT detectors and SLO violation checks
//     actually fire; a silent detector regression fails with the template's
//     name.
//
// Every template declares a detection window: on a reference mesh the SLO
// violation and a non-empty changepoint onset must appear within WindowSec
// of injection (enforced by the detector-validation suite).
package faultlib

import (
	"fmt"
	"math/rand"
	"sort"

	"fchain/internal/apps"
	"fchain/internal/cloudsim"
	"fchain/internal/meshgen"
)

// MeshExternalSpread is the recommended external-factor onset-spread window
// (seconds) for generated meshes. The paper's 6 s constant is tuned to
// 4–9 component applications; a mesh-wide workload shift propagates one
// simulated second per layer, so deep meshes need a wider window before
// "everything moved together" is recognized. Wave-staggered templates are
// constructed to exceed this spread so they are NOT mistaken for external
// factors.
const MeshExternalSpread = 12

// MeshMinRelMagnitude is the recommended relative-magnitude selection floor
// (core.Config.MinRelMagnitude) for generated meshes. With hundreds of
// monitored components, statistically significant but operationally
// meaningless shifts — a few percent of a near-idle metric's level, planted
// by the workload model's own periodic drift — would otherwise appear in
// almost every run and steal the propagation chain's source slot. Genuine
// template faults shift their targets' metrics by 50%+ of the operating
// level, far above this floor; the paper's small benchmark apps keep the
// floor off (zero) to preserve the published configuration.
const MeshMinRelMagnitude = 0.12

// Template is one injectable fault pattern, scaled to a mesh at Make time.
type Template struct {
	// Name identifies the template (CLI -fault value and matrix row label).
	Name string
	// Multi marks multi-component concurrent faults.
	Multi bool
	// Trap marks false-alarm traps: ground truth is empty and the template
	// is scored on zero pinpointed culprits.
	Trap bool
	// Pathological marks detector-validation templates whose purpose is
	// proving the detectors fire, not realism.
	Pathological bool
	// LookBack overrides FChain's look-back window when non-zero (slow
	// ramps need the paper's W=500).
	LookBack int
	// WindowSec is the declared detection window: the SLO violation (and a
	// changepoint onset) must appear within this many seconds of injection
	// on a reference mesh.
	WindowSec int64
	// SustainSec overrides the SLO sustain requirement when non-zero
	// (duty-cycled faults need the alarm to fire within one on-phase).
	SustainSec int
	// Signature is the one-line failure signature (metric shape) for docs.
	Signature string
	// Make builds the concrete fault against mesh m starting at tick start,
	// drawing targets and jitter from rng.
	Make func(start int64, m *meshgen.Mesh, rng *rand.Rand) cloudsim.Fault
}

// Templates returns the full catalog in canonical (matrix row) order.
func Templates() []Template {
	return []Template{
		{
			Name:      "gray-disk",
			WindowSec: 90,
			Signature: "duty-cycled disk-read/write spikes + flapping latency; recovers between on-phases",
			Make: func(start int64, m *meshgen.Mesh, rng *rand.Rand) cloudsim.Fault {
				target := m.PickComponent(rng, 1)
				spec, _ := m.SpecOf(target)
				// Slowdown 6 drives the target far past saturation (0.35
				// util × 6 ≈ 2.1): queueing at the target breaches the
				// end-to-end SLO within the first on-phase even when the
				// target carries a small share of the mesh's flow. A
				// marginal slowdown lets the alarm drift whole duty-cycles
				// past injection, until the look-back window no longer
				// contains the onset.
				return cloudsim.NewGrayDisk(start, 0.5*spec.DiskMBps, 6, 45, 20, target)
			},
		},
		{
			Name:      "slow-leak",
			LookBack:  500,
			WindowSec: 350,
			Signature: "sub-outlier-clamp memory ramp; latency knee once the pressure model engages",
			Make: func(start int64, m *meshgen.Mesh, rng *rand.Rand) cloudsim.Fault {
				target := m.PickComponent(rng, 1)
				spec, _ := m.SpecOf(target)
				rate := (0.85*spec.MemoryMB - spec.BaseMemMB) / 180
				if rate < 0.5 {
					rate = 0.5
				}
				return cloudsim.NewMemLeak(start, rate, target)
			},
		},
		{
			Name:      "retry-storm",
			Multi:     true,
			WindowSec: 60,
			Signature: "slow root + amplified load from retrying callers: CPU/net rise along reversed dep edges",
			Make: func(start int64, m *meshgen.Mesh, rng *rand.Rand) cloudsim.Fault {
				root := m.PickComponent(rng, 1)
				ups := m.UpstreamsOf(root)
				retryRate := 0.5 * m.FlowOf(root)
				if retryRate < 1 {
					retryRate = 1
				}
				return cloudsim.NewRetryStorm(start, root, ups, 3, retryRate, 0.6, 3)
			},
		},
		{
			Name:      "noisy-neighbor",
			Multi:     true,
			WindowSec: 60,
			Signature: "co-hosted CPU steal: every tenant of one host saturates concurrently",
			Make: func(start int64, m *meshgen.Mesh, rng *rand.Rand) cloudsim.Fault {
				victims, ok := m.PickSharedHost(rng)
				if !ok {
					victims = []string{m.PickComponent(rng, 1)}
				}
				hog := cloudsim.NewCPUHog(start, 1.4, victims...)
				return &cloudsim.Named{Fault: hog, Label: "noisy-neighbor", Truth: victims}
			},
		},
		{
			Name:      "correlated-memleak",
			Multi:     true,
			LookBack:  500,
			WindowSec: 250,
			Signature: "the same leak in several unrelated components at once (shared bad deploy)",
			Make: func(start int64, m *meshgen.Mesh, rng *rand.Rand) cloudsim.Fault {
				targets := pickDistinct(m, rng, 3)
				spec, _ := m.SpecOf(targets[0])
				rate := (0.85*spec.MemoryMB - spec.BaseMemMB) / 120
				if rate < 0.5 {
					rate = 0.5
				}
				leak := cloudsim.NewMemLeak(start, rate, targets...)
				return &cloudsim.Named{Fault: leak, Label: "correlated-memleak"}
			},
		},
		{
			Name:         "instant-kill",
			Pathological: true,
			WindowSec:    30,
			Signature:    "CPU cap to ~zero: the hardest possible changepoint — a detector that misses this is broken",
			Make: func(start int64, m *meshgen.Mesh, rng *rand.Rand) cloudsim.Fault {
				target := m.PickComponent(rng, 1)
				kill := cloudsim.NewBottleneck(start, 0.002, target)
				return &cloudsim.Named{Fault: kill, Label: "instant-kill"}
			},
		},
		{
			Name:         "everything-degrades",
			Multi:        true,
			Pathological: true,
			WindowSec:    60,
			Signature:    "mesh-wide slowdown in layer waves; spread exceeds the external-factor window by construction",
			Make: func(start int64, m *meshgen.Mesh, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewDegradeWaves(start, 2.9, 6, m.Layers)
			},
		},
		{
			Name:      "workload-surge",
			Trap:      true,
			WindowSec: 60,
			Signature: "ramped legitimate traffic surge: every metric rises together, nobody is at fault",
			Make: func(start int64, m *meshgen.Mesh, rng *rand.Rand) cloudsim.Fault {
				// A short ramp keeps the mesh-wide CUSUM onsets inside the
				// external-factor spread window: a long slow rise lets
				// detection lag fan the onsets out until the surge looks
				// like a propagating fault instead of an external factor.
				return cloudsim.NewWorkloadSurge(start, 1.6*m.Params.BaseRate, 6, m.Spec.Entries...)
			},
		},
		{
			Name:      "flash-crowd",
			Trap:      true,
			WindowSec: 60,
			Signature: "step traffic surge (no ramp): a sharper external-factor trap than workload-surge",
			Make: func(start int64, m *meshgen.Mesh, rng *rand.Rand) cloudsim.Fault {
				return cloudsim.NewWorkloadSurge(start, 1.8*m.Params.BaseRate, 0, m.Spec.Entries...)
			},
		},
	}
}

// pickDistinct draws k distinct non-entry components.
func pickDistinct(m *meshgen.Mesh, rng *rand.Rand, k int) []string {
	seen := make(map[string]bool, k)
	var out []string
	for len(out) < k {
		c := m.PickComponent(rng, 1)
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Names returns the catalog's template names in canonical order.
func Names() []string {
	ts := Templates()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

// Lookup finds a template by name.
func Lookup(name string) (Template, bool) {
	for _, t := range Templates() {
		if t.Name == name {
			return t, true
		}
	}
	return Template{}, false
}

// FaultCase adapts a template bound to a mesh into the evaluation harness's
// fault-case form, so the existing parallel Campaign runs it unchanged.
func FaultCase(tpl Template, m *meshgen.Mesh) apps.FaultCase {
	return apps.FaultCase{
		Name:     tpl.Name,
		Multi:    tpl.Multi,
		LookBack: tpl.LookBack,
		Make: func(start int64, rng *rand.Rand) cloudsim.Fault {
			return tpl.Make(start, m, rng)
		},
	}
}

// MustLookup is Lookup that panics on unknown names (registry init paths).
func MustLookup(name string) Template {
	t, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("faultlib: unknown template %q", name))
	}
	return t
}
