package faultlib_test

import (
	"math/rand"
	"testing"

	"fchain/internal/cloudsim"
	"fchain/internal/core"
	"fchain/internal/depgraph"
	"fchain/internal/faultlib"
	"fchain/internal/meshgen"
	"fchain/internal/metric"
)

// referenceMesh is the fixed mesh the detector-validation suite runs on:
// small enough to simulate every template quickly, deep enough (4 layers)
// that wave staggering and external-factor spreads behave as on the matrix
// meshes.
func referenceMesh(t *testing.T) *meshgen.Mesh {
	t.Helper()
	m, err := meshgen.Generate(meshgen.Params{
		Components: 60, FanOut: 3, Depth: 4, CycleProb: 0, Hosts: 15, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTemplateCatalog pins the registry's structural contract.
func TestTemplateCatalog(t *testing.T) {
	ts := faultlib.Templates()
	if len(ts) < 8 {
		t.Fatalf("catalog has %d templates, want >= 8", len(ts))
	}
	seen := make(map[string]bool)
	traps, pathological := 0, 0
	for _, tpl := range ts {
		if tpl.Name == "" || tpl.Make == nil || tpl.WindowSec <= 0 || tpl.Signature == "" {
			t.Errorf("template %+v missing required fields", tpl.Name)
		}
		if seen[tpl.Name] {
			t.Errorf("duplicate template %q", tpl.Name)
		}
		seen[tpl.Name] = true
		if tpl.Trap {
			traps++
		}
		if tpl.Pathological {
			pathological++
		}
	}
	if traps < 2 {
		t.Errorf("catalog has %d false-alarm traps, want >= 2", traps)
	}
	if pathological < 2 {
		t.Errorf("catalog has %d pathological validators, want >= 2", pathological)
	}
	for _, name := range faultlib.Names() {
		if _, ok := faultlib.Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed for a listed name", name)
		}
	}
	if _, ok := faultlib.Lookup("no-such-template"); ok {
		t.Error("Lookup accepted an unknown name")
	}
}

// TestTemplateGroundTruth checks every template's fault classifies its
// ground truth correctly: traps empty (non-nil), genuine faults non-empty
// with every ground-truth component existing in the mesh.
func TestTemplateGroundTruth(t *testing.T) {
	m := referenceMesh(t)
	known := make(map[string]bool)
	for _, c := range m.Components() {
		known[c] = true
	}
	for _, tpl := range faultlib.Templates() {
		tpl := tpl
		t.Run(tpl.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			fault := tpl.Make(1000, m, rng)
			truth := fault.Targets()
			if gt, ok := fault.(cloudsim.GroundTruther); ok {
				truth = gt.GroundTruth()
			}
			if tpl.Trap {
				if truth == nil {
					t.Fatal("trap ground truth must be non-nil empty, got nil")
				}
				if len(truth) != 0 {
					t.Fatalf("trap ground truth = %v, want empty", truth)
				}
				return
			}
			if len(truth) == 0 {
				t.Fatal("non-trap template has empty ground truth")
			}
			for _, c := range truth {
				if !known[c] {
					t.Errorf("ground truth names unknown component %q", c)
				}
			}
			for _, c := range fault.Targets() {
				if !known[c] {
					t.Errorf("targets name unknown component %q", c)
				}
			}
		})
	}
}

// validateTemplate runs one template end to end on the reference mesh and
// returns the diagnosis plus detection timing.
func validateTemplate(t *testing.T, m *meshgen.Mesh, tpl faultlib.Template, seed int64) (core.Diagnosis, int64, int64) {
	t.Helper()
	// Past one full diurnal workload period (1800 s), so context
	// calibration has seen the generator's periodic drift.
	const inject = 2000
	sim, err := cloudsim.New(m.SpecWithTrace(seed), seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	fault := tpl.Make(inject, m, rng)
	if err := sim.Inject(fault); err != nil {
		t.Fatal(err)
	}
	sustain := tpl.SustainSec
	if sustain <= 0 {
		sustain = 8
	}
	sim.RunUntil(inject + tpl.WindowSec + 60)
	tv, found := sim.FirstViolation(inject, sustain)
	if !found {
		t.Fatalf("template %s: no SLO violation within %ds of injection", tpl.Name, tpl.WindowSec+60)
	}
	if tv-inject > tpl.WindowSec {
		t.Fatalf("template %s: SLO violation at t=%d, %ds after injection — outside the declared %ds window",
			tpl.Name, tv, tv-inject, tpl.WindowSec)
	}

	lookBack := tpl.LookBack
	if lookBack <= 0 {
		lookBack = 100
	}
	cfg := core.Config{LookBack: lookBack, ExternalSpread: faultlib.MeshExternalSpread, MinRelMagnitude: faultlib.MeshMinRelMagnitude}
	loc := core.NewLocalizer(cfg, sim.Components())
	for _, comp := range sim.Components() {
		for _, k := range metric.Kinds {
			s, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < s.Len() && s.TimeAt(i) <= tv; i++ {
				if err := loc.Observe(comp, s.TimeAt(i), k, s.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	deps := depgraph.Discover(sim.DependencyTrace(600, seed), depgraph.DiscoverConfig{})
	return loc.Localize(tv, deps), tv, inject
}

// TestTemplateDetectorValidation is the detector-validation suite: every
// template must trigger an SLO violation and a non-empty changepoint onset
// within its declared window on the reference mesh, and every false-alarm
// trap must NOT produce a culprit. One subtest per template, so a regressed
// detector fails with the template's name.
func TestTemplateDetectorValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full fault-injection simulations")
	}
	m := referenceMesh(t)
	for _, tpl := range faultlib.Templates() {
		tpl := tpl
		t.Run(tpl.Name, func(t *testing.T) {
			t.Parallel()
			diag, tv, inject := validateTemplate(t, m, tpl, 3)
			if len(diag.Chain) == 0 {
				t.Fatalf("template %s: empty propagation chain — no changepoint onset detected by tv=%d", tpl.Name, tv)
			}
			for _, r := range diag.Chain {
				if r.Onset <= 0 {
					t.Fatalf("template %s: chain entry %s has no onset", tpl.Name, r.Component)
				}
			}
			if tpl.Trap {
				if len(diag.Culprits) != 0 {
					t.Fatalf("template %s is a false-alarm trap but blamed %v (external=%v)",
						tpl.Name, diag.CulpritNames(), diag.ExternalFactor)
				}
				return
			}
			if len(diag.Culprits) == 0 {
				t.Fatalf("template %s: no culprits pinpointed (external=%v, chain=%d comps, tv-inject=%ds)",
					tpl.Name, diag.ExternalFactor, len(diag.Chain), tv-inject)
			}
		})
	}
}
