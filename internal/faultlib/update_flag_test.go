package faultlib_test

import _ "fchain/internal/golden" // registers the module-wide -update flag
