package benchjson

import (
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	in := &Report{
		Date:       "2026-08-05",
		GoMaxProcs: 4,
		Notes:      []string{"test run"},
		Results: []Result{
			{Name: "B", Iterations: 10, NsPerOp: 100, AllocsPerOp: 1, BytesPerOp: 64},
			{Name: "A", Iterations: 5, NsPerOp: 2000},
		},
	}
	in.Sort()
	if in.Results[0].Name != "A" {
		t.Fatal("Sort did not order by name")
	}
	if err := Write(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.Date != in.Date || out.Find("B") == nil {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if out.Find("missing") != nil {
		t.Error("Find on absent name should return nil")
	}
}

func TestCompare(t *testing.T) {
	base := &Report{Results: []Result{
		{Name: "fast", NsPerOp: 100_000, AllocsPerOp: 0},
		{Name: "ok", NsPerOp: 50_000, AllocsPerOp: 5},
		{Name: "gone", NsPerOp: 1000},
	}}
	cur := &Report{Results: []Result{
		// 2x slower and now allocating: two regressions.
		{Name: "fast", NsPerOp: 200_000, AllocsPerOp: 4},
		// Within threshold and alloc slack: clean.
		{Name: "ok", NsPerOp: 60_000, AllocsPerOp: 6},
	}}
	regs, missing := Compare(base, cur, 0.30)
	if len(missing) != 1 || missing[0] != "gone" {
		t.Errorf("missing = %v, want [gone]", missing)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want time+allocs for fast", regs)
	}
	for _, g := range regs {
		if g.Name != "fast" {
			t.Errorf("unexpected regression %v", g)
		}
		if g.String() == "" {
			t.Error("empty regression description")
		}
	}
	// Nanosecond-scale benchmarks get absolute slack: 10ns -> 40ns is noise.
	tiny := &Report{Results: []Result{{Name: "t", NsPerOp: 10}}}
	tinyCur := &Report{Results: []Result{{Name: "t", NsPerOp: 40}}}
	if regs, _ := Compare(tiny, tinyCur, 0.30); len(regs) != 0 {
		t.Errorf("sub-slack delta flagged: %v", regs)
	}
}
