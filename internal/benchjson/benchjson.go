// Package benchjson defines the machine-readable benchmark report that
// cmd/fchain-bench emits (BENCH_<date>.json) and the benchstat-style
// comparison the CI smoke job uses to guard against performance
// regressions: a committed baseline report is compared against a fresh
// run, and any benchmark that got more than a threshold slower — or
// started allocating where the baseline did not — fails the check.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Result is one benchmark measurement, in the same units `go test -bench`
// reports.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Report is a full benchmark run.
type Report struct {
	// Date is the YYYY-MM-DD day of the run.
	Date string `json:"date"`
	// GoMaxProcs is the worker budget the parallel benchmarks ran with.
	GoMaxProcs int `json:"gomaxprocs"`
	// Notes carries free-form context (CPU model, derived speedups).
	Notes   []string `json:"notes,omitempty"`
	Results []Result `json:"results"`
}

// Find returns the named result, or nil.
func (r *Report) Find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Sort orders results by name so reports diff cleanly.
func (r *Report) Sort() {
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Name < r.Results[j].Name })
}

// Write saves a report as indented JSON.
func Write(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: encode: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read loads a report written by Write.
func Read(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchjson: decode %s: %w", path, err)
	}
	return &r, nil
}

// Regression is one benchmark that got worse than the comparison allows.
type Regression struct {
	Name     string
	Kind     string // "time" or "allocs"
	Baseline float64
	Current  float64
}

func (g Regression) String() string {
	switch g.Kind {
	case "allocs":
		return fmt.Sprintf("%s: allocs/op %.1f -> %.1f", g.Name, g.Baseline, g.Current)
	default:
		return fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.0f%%)",
			g.Name, g.Baseline, g.Current, 100*(g.Current-g.Baseline)/g.Baseline)
	}
}

// Compare checks current against baseline. threshold is the fractional
// ns/op slowdown tolerated (0.30 = 30%); a small absolute slack absorbs
// timer noise on sub-microsecond benchmarks. Allocation counts are held to
// the same relative threshold plus a two-alloc slack (sync.Pool misses
// after a GC make steady-state counts fractionally noisy). Benchmarks in
// the baseline but absent from the current run are returned in missing —
// a silently dropped benchmark must not pass the guard.
func Compare(baseline, current *Report, threshold float64) (regressions []Regression, missing []string) {
	const nsSlack = 50 // absolute ns/op slack for nanosecond-scale benchmarks
	for _, base := range baseline.Results {
		cur := current.Find(base.Name)
		if cur == nil {
			missing = append(missing, base.Name)
			continue
		}
		if cur.NsPerOp > base.NsPerOp*(1+threshold)+nsSlack {
			regressions = append(regressions, Regression{
				Name: base.Name, Kind: "time",
				Baseline: base.NsPerOp, Current: cur.NsPerOp,
			})
		}
		allocLimit := base.AllocsPerOp*(1+threshold) + 2
		if cur.AllocsPerOp > allocLimit {
			regressions = append(regressions, Regression{
				Name: base.Name, Kind: "allocs",
				Baseline: base.AllocsPerOp, Current: cur.AllocsPerOp,
			})
		}
	}
	return regressions, missing
}
