package tenant

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestOpenNamespaceAdmitsAnyName(t *testing.T) {
	r := NewRegistry(nil, Quota{})
	for _, name := range []string{"a", "team-x", "z"} {
		if err := r.Admit(name); err != nil {
			t.Errorf("Admit(%q) in open namespace: %v", name, err)
		}
	}
	if err := r.Admit(""); !errors.Is(err, ErrUnknown) {
		t.Errorf("Admit(\"\") = %v, want ErrUnknown", err)
	}
}

func TestClosedNamespaceRejectsOutsiders(t *testing.T) {
	r := NewRegistry([]string{"alpha", "beta"}, Quota{})
	if err := r.Admit("alpha"); err != nil {
		t.Errorf("Admit(alpha): %v", err)
	}
	if err := r.Admit("mallory"); !errors.Is(err, ErrUnknown) {
		t.Errorf("Admit(mallory) = %v, want ErrUnknown", err)
	}
}

func TestQuotaBucketRefillsOverTime(t *testing.T) {
	now := time.Unix(1000, 0)
	r := NewRegistry(nil, Quota{PerMinute: 60, Burst: 2}) // 1 token/s, bucket of 2
	r.SetClock(func() time.Time { return now })

	for i := 0; i < 2; i++ {
		if err := r.Admit("t"); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	if err := r.Admit("t"); !errors.Is(err, ErrQuota) {
		t.Fatalf("bucket empty, Admit = %v, want ErrQuota", err)
	}

	now = now.Add(1 * time.Second) // refills exactly one token
	if err := r.Admit("t"); err != nil {
		t.Fatalf("after 1s refill: %v", err)
	}
	if err := r.Admit("t"); !errors.Is(err, ErrQuota) {
		t.Fatalf("token spent again, Admit = %v, want ErrQuota", err)
	}

	now = now.Add(time.Hour) // refill far past the cap
	if got := r.Tokens("t"); got > 2 {
		t.Fatalf("bucket overfilled past burst cap: %v tokens", got)
	}
}

func TestQuotaIsPerTenant(t *testing.T) {
	now := time.Unix(0, 0)
	r := NewRegistry(nil, Quota{PerMinute: 60, Burst: 1})
	r.SetClock(func() time.Time { return now })
	if err := r.Admit("loud"); err != nil {
		t.Fatal(err)
	}
	if err := r.Admit("loud"); !errors.Is(err, ErrQuota) {
		t.Fatalf("loud should be out of tokens, got %v", err)
	}
	// A different tenant's bucket is untouched by loud's spending.
	if err := r.Admit("quiet"); err != nil {
		t.Fatalf("quiet tenant sheds with loud's bucket empty: %v", err)
	}
}

func TestTenantsListsNamespaceAndSeen(t *testing.T) {
	r := NewRegistry([]string{"beta", "alpha"}, Quota{})
	_ = r.Admit("beta")
	if got, want := r.Tenants(), []string{"alpha", "beta"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Tenants() = %v, want %v", got, want)
	}
	open := NewRegistry(nil, Quota{})
	_ = open.Admit("zeta")
	_ = open.Admit("eta")
	if got, want := open.Tenants(), []string{"eta", "zeta"}; !reflect.DeepEqual(got, want) {
		t.Errorf("open Tenants() = %v, want %v", got, want)
	}
}
