// Package tenant implements the multi-tenant namespace and quota layer of
// FChain's service mode. A long-lived master serves SLO-violation streams
// from many applications owned by many tenants at once; this package decides,
// per violation, whether the submitting tenant exists and whether it still
// has quota — before any cluster fan-out spends slave budget on it.
//
// Quotas are per-tenant token buckets: each tenant refills at a configured
// violations-per-minute rate up to a burst cap, and every admitted violation
// spends one token. Buckets are independent, so shedding is fair by
// construction — a flooding tenant drains only its own bucket and a quiet
// tenant's violations keep localizing at full rate.
package tenant

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrUnknown reports a violation submitted under a tenant name outside the
// configured namespace (or an empty name).
var ErrUnknown = errors.New("tenant: unknown tenant")

// ErrQuota reports a violation shed because the tenant's token bucket is
// empty: the tenant exceeded its violations-per-minute quota.
var ErrQuota = errors.New("tenant: quota exceeded")

// Quota is one tenant's admission budget. PerMinute is the sustained
// violation rate; Burst is the bucket capacity (how many violations may
// arrive back to back after an idle stretch). Burst <= 0 defaults to
// PerMinute, and PerMinute <= 0 means unlimited.
type Quota struct {
	PerMinute float64
	Burst     float64
}

// unlimited reports whether the quota admits everything.
func (q Quota) unlimited() bool { return q.PerMinute <= 0 }

// cap returns the effective bucket capacity.
func (q Quota) cap() float64 {
	if q.Burst > 0 {
		return q.Burst
	}
	return q.PerMinute
}

// bucket is one tenant's token bucket state.
type bucket struct {
	tokens float64
	last   time.Time
}

// Registry is the tenant namespace plus per-tenant admission state. The zero
// value is unusable; construct with NewRegistry. All methods are safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	allowed map[string]bool // nil = open namespace (any non-empty name)
	quota   Quota
	clock   func() time.Time
	buckets map[string]*bucket
}

// NewRegistry builds a registry. allowed lists the tenants the service
// accepts; empty means the namespace is open and any non-empty tenant name is
// admitted (its bucket is created on first use). quota applies to every
// tenant independently.
func NewRegistry(allowed []string, quota Quota) *Registry {
	r := &Registry{
		quota:   quota,
		clock:   time.Now,
		buckets: make(map[string]*bucket),
	}
	if len(allowed) > 0 {
		r.allowed = make(map[string]bool, len(allowed))
		for _, name := range allowed {
			if name != "" {
				r.allowed[name] = true
			}
		}
	}
	return r
}

// SetClock overrides the registry's time source (tests pin it to drive
// refill deterministically).
func (r *Registry) SetClock(clock func() time.Time) {
	if clock == nil {
		return
	}
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// Admit charges one violation against tenant's bucket. It returns nil when
// admitted, ErrUnknown for a name outside the namespace, or ErrQuota when
// the bucket is empty.
func (r *Registry) Admit(tenant string) error {
	if tenant == "" {
		return fmt.Errorf("%w: empty tenant name", ErrUnknown)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.allowed != nil && !r.allowed[tenant] {
		return fmt.Errorf("%w: %q", ErrUnknown, tenant)
	}
	now := r.clock()
	b, ok := r.buckets[tenant]
	if !ok {
		// Created even under an unlimited quota, so Tenants() reports every
		// open-namespace tenant ever admitted.
		b = &bucket{tokens: r.quota.cap(), last: now}
		r.buckets[tenant] = b
	}
	if r.quota.unlimited() {
		return nil
	}
	if ok {
		if dt := now.Sub(b.last); dt > 0 {
			b.tokens += dt.Seconds() * r.quota.PerMinute / 60
			if max := r.quota.cap(); b.tokens > max {
				b.tokens = max
			}
		}
		b.last = now
	}
	if b.tokens < 1 {
		return fmt.Errorf("%w: tenant %q over %.3g/min", ErrQuota, tenant, r.quota.PerMinute)
	}
	b.tokens--
	return nil
}

// Tokens returns tenant's current bucket level without charging it (refill
// applied up to now). Unlimited quotas report +Inf-like behavior as the cap 0.
func (r *Registry) Tokens(tenant string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.quota.unlimited() {
		return 0
	}
	b, ok := r.buckets[tenant]
	if !ok {
		return r.quota.cap()
	}
	tokens := b.tokens
	if dt := r.clock().Sub(b.last); dt > 0 {
		tokens += dt.Seconds() * r.quota.PerMinute / 60
		if max := r.quota.cap(); tokens > max {
			tokens = max
		}
	}
	return tokens
}

// Tenants returns every tenant the registry has state for — the configured
// namespace plus any open-namespace tenants seen so far — sorted.
func (r *Registry) Tenants() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, len(r.allowed)+len(r.buckets))
	for name := range r.allowed {
		seen[name] = true
	}
	for name := range r.buckets {
		seen[name] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
