// Package workload generates the request-intensity traces that modulate the
// simulated benchmark applications.
//
// The paper modulates RUBiS with the NASA web server trace (July 1995) and
// System S with the ClarkNet trace (August 1995), both from the IRCache
// archive, to obtain "workloads with realistic time variations". Those
// archives are not available offline, so this package synthesizes traces
// with the same character: a diurnal baseline, multiple superimposed
// periodic components, autocorrelated noise, and heavy-tailed transient
// bursts — enough structure that an online model can learn the normal
// fluctuation, and enough burstiness that naive change-point detectors
// false-alarm (the property the evaluation depends on). A CSV replay loader
// is provided for plugging in the real traces when available.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Trace supplies a request intensity (requests per second, or tuples per
// second for stream workloads) for each second of a run.
type Trace interface {
	// Rate returns the arrival rate at second t.
	Rate(t int64) float64
}

// Profile parameterizes a synthetic trace generator.
type Profile struct {
	Name string
	// Base is the mean arrival rate.
	Base float64
	// DiurnalAmp is the relative amplitude of the day/night cycle.
	DiurnalAmp float64
	// DiurnalPeriod is the diurnal period in seconds. Runs last one hour,
	// so the period is compressed relative to a real day to expose the
	// model to full cycles (the paper's one-hour runs likewise see only a
	// slice of a day).
	DiurnalPeriod float64
	// ShortAmp / ShortPeriod add a faster periodic component
	// (e.g. batch arrivals).
	ShortAmp    float64
	ShortPeriod float64
	// NoiseFrac is the relative std of the AR(1) noise.
	NoiseFrac float64
	// NoisePhi is the AR(1) autocorrelation coefficient.
	NoisePhi float64
	// BurstRate is the per-second probability that a transient burst
	// begins; BurstAmp the relative burst height; BurstLen its mean
	// duration in seconds.
	BurstRate float64
	BurstAmp  float64
	BurstLen  int
}

// NASA returns a profile with the character of the NASA-HTTP July 1995
// trace: strong diurnal swing, moderate noise, occasional sharp bursts.
func NASA() Profile {
	return Profile{
		Name:          "nasa-jul95",
		Base:          120,
		DiurnalAmp:    0.35,
		DiurnalPeriod: 1800,
		ShortAmp:      0.12,
		ShortPeriod:   240,
		NoiseFrac:     0.08,
		NoisePhi:      0.85,
		BurstRate:     0.004,
		BurstAmp:      0.6,
		BurstLen:      12,
	}
}

// ClarkNet returns a profile with the character of the ClarkNet August 1995
// trace: a busier ISP workload with heavier short-term burstiness.
func ClarkNet() Profile {
	return Profile{
		Name:          "clarknet-aug95",
		Base:          200,
		DiurnalAmp:    0.25,
		DiurnalPeriod: 2400,
		ShortAmp:      0.18,
		ShortPeriod:   150,
		NoiseFrac:     0.12,
		NoisePhi:      0.8,
		BurstRate:     0.007,
		BurstAmp:      0.8,
		BurstLen:      8,
	}
}

// Steady returns a low-variance profile, useful for tests that need a
// predictable load.
func Steady(base float64) Profile {
	return Profile{Name: "steady", Base: base, NoiseFrac: 0.01, NoisePhi: 0.5}
}

// Synthetic is a deterministic pseudo-random trace realized from a Profile
// and a seed. Rates for every second of the horizon are materialized up
// front so that repeated queries are consistent and cheap.
type Synthetic struct {
	name  string
	rates []float64
}

var _ Trace = (*Synthetic)(nil)

// NewSynthetic realizes profile p over horizon seconds using the given seed.
func NewSynthetic(p Profile, horizon int, seed int64) *Synthetic {
	if horizon < 1 {
		horizon = 1
	}
	rng := rand.New(rand.NewSource(seed))
	rates := make([]float64, horizon)
	noise := 0.0
	burstLeft := 0
	burstHeight := 0.0
	phase := rng.Float64() * 2 * math.Pi
	phase2 := rng.Float64() * 2 * math.Pi
	for t := range rates {
		v := p.Base
		if p.DiurnalPeriod > 0 && p.DiurnalAmp > 0 {
			v += p.Base * p.DiurnalAmp * math.Sin(2*math.Pi*float64(t)/p.DiurnalPeriod+phase)
		}
		if p.ShortPeriod > 0 && p.ShortAmp > 0 {
			v += p.Base * p.ShortAmp * math.Sin(2*math.Pi*float64(t)/p.ShortPeriod+phase2)
		}
		// AR(1) noise.
		noise = p.NoisePhi*noise + rng.NormFloat64()*p.NoiseFrac*p.Base*math.Sqrt(1-p.NoisePhi*p.NoisePhi)
		v += noise
		// Transient bursts with geometric duration.
		if burstLeft == 0 && p.BurstRate > 0 && rng.Float64() < p.BurstRate {
			burstLeft = 1 + rng.Intn(2*maxInt(p.BurstLen, 1))
			burstHeight = p.Base * p.BurstAmp * (0.5 + rng.Float64())
		}
		if burstLeft > 0 {
			v += burstHeight
			burstLeft--
		}
		if v < 0 {
			v = 0
		}
		rates[t] = v
	}
	return &Synthetic{name: p.Name, rates: rates}
}

// Name returns the profile name the trace was realized from.
func (s *Synthetic) Name() string { return s.name }

// Horizon returns the number of materialized seconds.
func (s *Synthetic) Horizon() int { return len(s.rates) }

// Rate implements Trace. Queries beyond the horizon wrap around, so long
// runs remain well defined.
func (s *Synthetic) Rate(t int64) float64 {
	if len(s.rates) == 0 {
		return 0
	}
	idx := int(t) % len(s.rates)
	if idx < 0 {
		idx += len(s.rates)
	}
	return s.rates[idx]
}

// Constant is a fixed-rate trace.
type Constant float64

var _ Trace = Constant(0)

// Rate implements Trace.
func (c Constant) Rate(int64) float64 { return float64(c) }

// Scaled wraps a trace, multiplying every rate by Factor. It models
// workload-increase external factors (paper §II-C) without changing the
// trace's shape.
type Scaled struct {
	Inner  Trace
	Factor float64
	// From restricts scaling to t >= From, modelling a workload surge
	// beginning mid-run.
	From int64
}

var _ Trace = (*Scaled)(nil)

// Rate implements Trace.
func (s *Scaled) Rate(t int64) float64 {
	r := s.Inner.Rate(t)
	if t >= s.From {
		return r * s.Factor
	}
	return r
}

// Replay is a trace loaded from external data (e.g. a real IRCache-derived
// per-second request count file).
type Replay struct {
	rates []float64
}

var _ Trace = (*Replay)(nil)

// LoadCSV reads a replay trace from r. Each line holds one per-second rate
// (a single float); blank lines and lines starting with '#' are skipped.
func LoadCSV(r io.Reader) (*Replay, error) {
	sc := bufio.NewScanner(r)
	var rates []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// Tolerate "timestamp,rate" two-column form.
		if i := strings.LastIndexByte(text, ','); i >= 0 {
			text = strings.TrimSpace(text[i+1:])
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("workload: line %d: negative rate %v", line, v)
		}
		rates = append(rates, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read: %w", err)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return &Replay{rates: rates}, nil
}

// Horizon returns the number of loaded seconds.
func (r *Replay) Horizon() int { return len(r.rates) }

// Rate implements Trace, wrapping past the horizon.
func (r *Replay) Rate(t int64) float64 {
	idx := int(t) % len(r.rates)
	if idx < 0 {
		idx += len(r.rates)
	}
	return r.rates[idx]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
