package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"fchain/internal/timeseries"
)

func TestSyntheticDeterministic(t *testing.T) {
	a := NewSynthetic(NASA(), 600, 42)
	b := NewSynthetic(NASA(), 600, 42)
	for i := int64(0); i < 600; i++ {
		if a.Rate(i) != b.Rate(i) {
			t.Fatalf("trace not deterministic at t=%d", i)
		}
	}
	c := NewSynthetic(NASA(), 600, 43)
	same := true
	for i := int64(0); i < 600; i++ {
		if a.Rate(i) != c.Rate(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different traces")
	}
}

func TestSyntheticNonNegative(t *testing.T) {
	for _, p := range []Profile{NASA(), ClarkNet(), Steady(10)} {
		tr := NewSynthetic(p, 3600, 7)
		for i := int64(0); i < 3600; i++ {
			if tr.Rate(i) < 0 {
				t.Fatalf("%s: negative rate at t=%d", p.Name, i)
			}
		}
	}
}

func TestSyntheticMeanNearBase(t *testing.T) {
	p := NASA()
	tr := NewSynthetic(p, 3600, 11)
	var sum float64
	for i := int64(0); i < 3600; i++ {
		sum += tr.Rate(i)
	}
	mean := sum / 3600
	if math.Abs(mean-p.Base) > 0.3*p.Base {
		t.Errorf("mean rate = %v, want near base %v", mean, p.Base)
	}
}

func TestSyntheticHasFluctuation(t *testing.T) {
	// The whole point of the realistic traces: non-trivial variance.
	tr := NewSynthetic(ClarkNet(), 3600, 3)
	vals := make([]float64, 3600)
	for i := range vals {
		vals[i] = tr.Rate(int64(i))
	}
	cv := timeseries.Std(vals) / timeseries.Mean(vals)
	if cv < 0.05 {
		t.Errorf("coefficient of variation = %v, want fluctuating workload", cv)
	}
}

func TestSyntheticWraps(t *testing.T) {
	tr := NewSynthetic(Steady(50), 100, 1)
	if tr.Rate(0) != tr.Rate(100) {
		t.Error("rates should wrap past the horizon")
	}
	if tr.Rate(-1) < 0 {
		t.Error("negative timestamps should not panic or go negative")
	}
}

func TestSyntheticMinHorizon(t *testing.T) {
	tr := NewSynthetic(Steady(5), 0, 1)
	if tr.Horizon() != 1 {
		t.Errorf("horizon = %d, want 1", tr.Horizon())
	}
}

func TestConstant(t *testing.T) {
	var tr Trace = Constant(42)
	if tr.Rate(0) != 42 || tr.Rate(1e6) != 42 {
		t.Error("Constant should be constant")
	}
}

func TestScaled(t *testing.T) {
	tr := &Scaled{Inner: Constant(10), Factor: 3, From: 100}
	if got := tr.Rate(50); got != 10 {
		t.Errorf("pre-surge rate = %v, want 10", got)
	}
	if got := tr.Rate(100); got != 30 {
		t.Errorf("post-surge rate = %v, want 30", got)
	}
}

func TestLoadCSV(t *testing.T) {
	in := "# comment\n10\n 20.5 \n\n1630000000,30\n"
	r, err := LoadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Horizon() != 3 {
		t.Fatalf("horizon = %d, want 3", r.Horizon())
	}
	want := []float64{10, 20.5, 30}
	for i, w := range want {
		if got := r.Rate(int64(i)); got != w {
			t.Errorf("Rate(%d) = %v, want %v", i, got, w)
		}
	}
	// Wrap.
	if r.Rate(3) != 10 {
		t.Error("replay should wrap")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"garbage", "abc\n"},
		{"negative", "-5\n"},
		{"empty", "# nothing\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := LoadCSV(strings.NewReader(tt.give)); err == nil {
				t.Errorf("LoadCSV(%q) should error", tt.give)
			}
		})
	}
}

// Property: synthetic rates are finite and non-negative for any seed.
func TestSyntheticSafetyProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := NewSynthetic(ClarkNet(), 300, seed)
		for i := int64(0); i < 300; i++ {
			v := tr.Rate(i)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
