package fftpkg

import (
	"encoding/binary"
	"math"
	"testing"
)

// floatsFromBytes decodes data as little-endian float64s, keeping whatever
// bit patterns the fuzzer invents — NaN, ±Inf, subnormals included.
func floatsFromBytes(data []byte, max int) []float64 {
	n := len(data) / 8
	if n > max {
		n = max
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out
}

// allFinite reports whether every sample is an ordinary float.
func allFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// FuzzFFTRoundTrip drives FFT→IFFT with adversarial bit patterns: the pair
// must never panic, and for finite bounded signals the round trip must
// reproduce the input.
func FuzzFFTRoundTrip(f *testing.F) {
	f.Add([]byte{})
	seed := make([]byte, 0, 64*8)
	var buf [8]byte
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(math.Sin(float64(i)/3)*50+50))
		seed = append(seed, buf[:]...)
	}
	f.Add(seed)
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(math.NaN()))
	f.Add(append(append([]byte{}, buf[:]...), buf[:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		x := floatsFromBytes(data, 1024)
		freq, err := FFT(x)
		if len(x) == 0 {
			if err != ErrEmpty {
				t.Fatalf("FFT(empty) err = %v, want ErrEmpty", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("FFT: %v", err)
		}
		back, err := IFFT(freq)
		if err != nil {
			t.Fatalf("IFFT: %v", err)
		}
		if len(back) < len(x) {
			t.Fatalf("round trip shrank: %d -> %d", len(x), len(back))
		}
		if !allFinite(x) {
			return // NaN/Inf legitimately poison the spectrum; no-panic is the contract
		}
		scale := 1.0
		for _, v := range x {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if scale > 1e12 {
			return // extreme magnitudes trade precision for range; skip the equality check
		}
		for i, v := range x {
			if math.Abs(back[i]-v) > 1e-6*scale*float64(len(freq)) {
				t.Fatalf("round trip sample %d: got %v, want %v", i, back[i], v)
			}
		}
	})
}

// FuzzExpectedError hammers the burstiness pipeline with adversarial
// signals AND adversarial parameters (highFrac and pct are raw float bit
// patterns, so NaN and ±Inf are in play). It must never panic, and with a
// finite signal the result must be a finite nonnegative magnitude.
func FuzzExpectedError(f *testing.F) {
	f.Add([]byte{}, math.Float64bits(0.9), math.Float64bits(90.0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, math.Float64bits(math.NaN()), math.Float64bits(math.NaN()))
	f.Add(make([]byte, 256), math.Float64bits(-3.5), math.Float64bits(1e300))

	f.Fuzz(func(t *testing.T, data []byte, fracBits, pctBits uint64) {
		x := floatsFromBytes(data, 1024)
		highFrac := math.Float64frombits(fracBits)
		pct := math.Float64frombits(pctBits)

		burst, err := BurstSignal(x, highFrac)
		if len(x) == 0 {
			if err != ErrEmpty {
				t.Fatalf("BurstSignal(empty) err = %v, want ErrEmpty", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("BurstSignal: %v", err)
		}
		if len(burst) != len(x) {
			t.Fatalf("BurstSignal length = %d, want %d", len(burst), len(x))
		}

		got, err := ExpectedError(x, highFrac, pct)
		if err != nil {
			t.Fatalf("ExpectedError: %v", err)
		}
		scale := 0.0
		for _, v := range x {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		// Bounded finite signals cannot overflow inside the transform, so
		// the percentile must come back as an ordinary magnitude.
		if allFinite(x) && scale < 1e12 {
			if math.IsNaN(got) || got < 0 {
				t.Fatalf("ExpectedError(finite signal) = %v, want >= 0", got)
			}
		}
	})
}
