// Package fftpkg implements the fast Fourier transform primitives behind
// FChain's burstiness-adaptive prediction error threshold.
//
// FChain cannot use a fixed prediction-error threshold to separate abnormal
// change points from normal ones: bursty metrics are inherently harder to
// predict. Instead, for each candidate change point it extracts a small
// window of surrounding samples, isolates the high-frequency ("burst")
// portion of the signal with an FFT/inverse-FFT round trip, and uses a high
// percentile of the burst magnitude as the *expected* prediction error for
// that point (paper §II-B, Fig. 4).
package fftpkg

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
)

// ErrEmpty is returned when a transform is requested on an empty signal.
var ErrEmpty = errors.New("fftpkg: empty signal")

// FFT computes the discrete Fourier transform of x using an iterative
// radix-2 Cooley-Tukey algorithm. The input is zero-padded to the next power
// of two; the returned slice has that padded length.
func FFT(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	n := nextPow2(len(x))
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	transform(buf, false)
	return buf, nil
}

// IFFT computes the inverse discrete Fourier transform, returning the real
// part of the time-domain signal. The input length must be a power of two
// (as produced by FFT).
func IFFT(freq []complex128) ([]float64, error) {
	if len(freq) == 0 {
		return nil, ErrEmpty
	}
	if len(freq)&(len(freq)-1) != 0 {
		return nil, errors.New("fftpkg: IFFT input length must be a power of two")
	}
	buf := make([]complex128, len(freq))
	copy(buf, freq)
	transform(buf, true)
	out := make([]float64, len(buf))
	inv := 1 / float64(len(buf))
	for i, c := range buf {
		out[i] = real(c) * inv
	}
	return out, nil
}

// transform performs an in-place iterative radix-2 FFT. inverse selects the
// conjugate transform (without the 1/n scaling, which IFFT applies).
func transform(buf []complex128, inverse bool) {
	n := len(buf)
	if n < 2 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			buf[i], buf[j] = buf[j], buf[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := buf[start+k]
				v := buf[start+k+half] * w
				buf[start+k] = u + v
				buf[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// BurstSignal isolates the high-frequency component of x. Frequencies are
// ranked by index (distance from DC); the top highFrac fraction of the
// spectrum (e.g. 0.9 keeps the 90% highest frequencies, discarding the
// slow-moving 10%) is retained and transformed back to the time domain.
// The result has the same length as x.
func BurstSignal(x []float64, highFrac float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	// NaN survives both clamps below and would poison lowRanks through the
	// float→int conversion; treat it as "keep everything".
	if math.IsNaN(highFrac) {
		highFrac = 1
	}
	if highFrac < 0 {
		highFrac = 0
	}
	if highFrac > 1 {
		highFrac = 1
	}
	freq, err := FFT(x)
	if err != nil {
		return nil, err
	}
	n := len(freq)
	// Frequency index k and n-k represent the same physical frequency; rank
	// by min(k, n-k). DC (k=0) is the lowest frequency. We zero the lowest
	// (1-highFrac) fraction of distinct frequency ranks.
	nyquist := n / 2
	lowRanks := int(math.Round((1 - highFrac) * float64(nyquist+1)))
	for k := 0; k < n; k++ {
		rank := k
		if n-k < rank {
			rank = n - k
		}
		if rank < lowRanks {
			freq[k] = 0
		}
	}
	burst, err := IFFT(freq)
	if err != nil {
		return nil, err
	}
	return burst[:len(x)], nil
}

// ExpectedError computes FChain's burstiness-adaptive expected prediction
// error for the window x around a candidate change point: the pct-th
// percentile (e.g. 90) of the absolute burst-signal magnitude, where the
// burst signal keeps the top highFrac of frequencies (paper §II-B).
func ExpectedError(x []float64, highFrac, pct float64) (float64, error) {
	burst, err := BurstSignal(x, highFrac)
	if err != nil {
		return 0, err
	}
	mags := make([]float64, len(burst))
	for i, v := range burst {
		mags[i] = math.Abs(v)
	}
	sort.Float64s(mags)
	// A NaN pct would slip past both clamps and turn rank into NaN, whose
	// int conversion is unspecified — an out-of-range index at worst.
	if math.IsNaN(pct) {
		pct = 100
	}
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	rank := pct / 100 * float64(len(mags)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return mags[lo], nil
	}
	frac := rank - float64(lo)
	return mags[lo]*(1-frac) + mags[hi]*frac, nil
}
