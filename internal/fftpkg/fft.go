// Package fftpkg implements the fast Fourier transform primitives behind
// FChain's burstiness-adaptive prediction error threshold.
//
// FChain cannot use a fixed prediction-error threshold to separate abnormal
// change points from normal ones: bursty metrics are inherently harder to
// predict. Instead, for each candidate change point it extracts a small
// window of surrounding samples, isolates the high-frequency ("burst")
// portion of the signal with an FFT/inverse-FFT round trip, and uses a high
// percentile of the burst magnitude as the *expected* prediction error for
// that point (paper §II-B, Fig. 4).
//
// The per-violation analysis path calls ExpectedError once per candidate
// change point across every metric of every component, so the transform is
// built to be allocation-free in steady state: twiddle factors are computed
// once per padded size and cached process-wide, and the complex/float
// working buffers come from pools. The exported FFT/IFFT keep their
// allocating, caller-owns-the-result signatures.
package fftpkg

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
	"sync"
)

// ErrEmpty is returned when a transform is requested on an empty signal.
var ErrEmpty = errors.New("fftpkg: empty signal")

// plan holds the precomputed twiddle factors for one padded size. For each
// butterfly stage of length L the plan stores the L/2 powers of the stage's
// root of unity, laid out stage after stage (1 + 2 + ... + n/2 = n-1
// entries per direction). Plans are immutable once built and shared across
// goroutines.
type plan struct {
	n        int
	fwd, inv []complex128
}

// plans caches one *plan per padded size, keyed by int n. Analysis windows
// cluster around a handful of sizes (the burst window's next power of two),
// so the cache stays tiny.
var plans sync.Map

func planFor(n int) *plan {
	if p, ok := plans.Load(n); ok {
		return p.(*plan)
	}
	p := &plan{n: n}
	if n >= 2 {
		p.fwd = make([]complex128, 0, n-1)
		p.inv = make([]complex128, 0, n-1)
		for length := 2; length <= n; length <<= 1 {
			ang := 2 * math.Pi / float64(length)
			wlFwd := cmplx.Exp(complex(0, -ang))
			wlInv := cmplx.Exp(complex(0, ang))
			wf, wi := complex(1, 0), complex(1, 0)
			for k := 0; k < length/2; k++ {
				p.fwd = append(p.fwd, wf)
				p.inv = append(p.inv, wi)
				// Running product, matching the original on-the-fly
				// twiddle computation bit for bit so cached transforms
				// reproduce the exact historical outputs.
				wf *= wlFwd
				wi *= wlInv
			}
		}
	}
	actual, _ := plans.LoadOrStore(n, p)
	return actual.(*plan)
}

// scratch pools the working buffers of the allocation-free entry points.
// Buffers are stored via pointers (a plain slice in an interface would
// re-box on every Put) and grown to the largest size seen.
type scratch struct {
	cbuf []complex128
	fbuf []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (s *scratch) complexBuf(n int) []complex128 {
	if cap(s.cbuf) < n {
		s.cbuf = make([]complex128, n)
	}
	return s.cbuf[:n]
}

func (s *scratch) floatBuf(n int) []float64 {
	if cap(s.fbuf) < n {
		s.fbuf = make([]float64, n)
	}
	return s.fbuf[:n]
}

// FFT computes the discrete Fourier transform of x using an iterative
// radix-2 Cooley-Tukey algorithm. The input is zero-padded to the next power
// of two; the returned slice has that padded length.
func FFT(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	n := nextPow2(len(x))
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	transform(buf, false)
	return buf, nil
}

// IFFT computes the inverse discrete Fourier transform, returning the real
// part of the time-domain signal. The input length must be a power of two
// (as produced by FFT).
func IFFT(freq []complex128) ([]float64, error) {
	if len(freq) == 0 {
		return nil, ErrEmpty
	}
	if len(freq)&(len(freq)-1) != 0 {
		return nil, errors.New("fftpkg: IFFT input length must be a power of two")
	}
	buf := make([]complex128, len(freq))
	copy(buf, freq)
	transform(buf, true)
	out := make([]float64, len(buf))
	inv := 1 / float64(len(buf))
	for i, c := range buf {
		out[i] = real(c) * inv
	}
	return out, nil
}

// transform performs an in-place iterative radix-2 FFT using the cached
// twiddle plan for len(buf). inverse selects the conjugate transform
// (without the 1/n scaling, which IFFT applies).
func transform(buf []complex128, inverse bool) {
	n := len(buf)
	if n < 2 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			buf[i], buf[j] = buf[j], buf[i]
		}
	}
	tw := planFor(n).fwd
	if inverse {
		tw = planFor(n).inv
	}
	stage := 0
	for length := 2; length <= n; length <<= 1 {
		half := length / 2
		w := tw[stage : stage+half]
		for start := 0; start < n; start += length {
			for k := 0; k < half; k++ {
				u := buf[start+k]
				v := buf[start+k+half] * w[k]
				buf[start+k] = u + v
				buf[start+k+half] = u - v
			}
		}
		stage += half
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// burstInto computes the burst signal of x into the pooled complex buffer
// and returns it (length = padded n; the caller reads the first len(x)
// entries' real parts, already 1/n-scaled).
func burstInto(sc *scratch, x []float64, highFrac float64) []complex128 {
	// NaN survives both clamps below and would poison lowRanks through the
	// float→int conversion; treat it as "keep everything".
	if math.IsNaN(highFrac) {
		highFrac = 1
	}
	if highFrac < 0 {
		highFrac = 0
	}
	if highFrac > 1 {
		highFrac = 1
	}
	n := nextPow2(len(x))
	buf := sc.complexBuf(n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	for i := len(x); i < n; i++ {
		buf[i] = 0
	}
	transform(buf, false)
	// Frequency index k and n-k represent the same physical frequency; rank
	// by min(k, n-k). DC (k=0) is the lowest frequency. We zero the lowest
	// (1-highFrac) fraction of distinct frequency ranks.
	nyquist := n / 2
	lowRanks := int(math.Round((1 - highFrac) * float64(nyquist+1)))
	for k := 0; k < n; k++ {
		rank := k
		if n-k < rank {
			rank = n - k
		}
		if rank < lowRanks {
			buf[k] = 0
		}
	}
	transform(buf, true)
	inv := complex(1/float64(n), 0)
	for i := range buf {
		buf[i] *= inv
	}
	return buf
}

// BurstSignal isolates the high-frequency component of x. Frequencies are
// ranked by index (distance from DC); the top highFrac fraction of the
// spectrum (e.g. 0.9 keeps the 90% highest frequencies, discarding the
// slow-moving 10%) is retained and transformed back to the time domain.
// The result has the same length as x.
func BurstSignal(x []float64, highFrac float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	sc := scratchPool.Get().(*scratch)
	buf := burstInto(sc, x, highFrac)
	out := make([]float64, len(x))
	for i := range out {
		out[i] = real(buf[i])
	}
	scratchPool.Put(sc)
	return out, nil
}

// ExpectedError computes FChain's burstiness-adaptive expected prediction
// error for the window x around a candidate change point: the pct-th
// percentile (e.g. 90) of the absolute burst-signal magnitude, where the
// burst signal keeps the top highFrac of frequencies (paper §II-B). It
// allocates nothing in steady state.
func ExpectedError(x []float64, highFrac, pct float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	sc := scratchPool.Get().(*scratch)
	buf := burstInto(sc, x, highFrac)
	mags := sc.floatBuf(len(x))
	for i := range mags {
		mags[i] = math.Abs(real(buf[i]))
	}
	sort.Float64s(mags)
	// A NaN pct would slip past both clamps and turn rank into NaN, whose
	// int conversion is unspecified — an out-of-range index at worst.
	if math.IsNaN(pct) {
		pct = 100
	}
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	rank := pct / 100 * float64(len(mags)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	out := mags[lo]
	if lo != hi {
		frac := rank - float64(lo)
		out = mags[lo]*(1-frac) + mags[hi]*frac
	}
	scratchPool.Put(sc)
	return out, nil
}
