package fftpkg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTEmpty(t *testing.T) {
	if _, err := FFT(nil); err == nil {
		t.Error("FFT(nil) should error")
	}
	if _, err := IFFT(nil); err == nil {
		t.Error("IFFT(nil) should error")
	}
}

func TestIFFTRejectsNonPow2(t *testing.T) {
	if _, err := IFFT(make([]complex128, 3)); err == nil {
		t.Error("IFFT must reject non-power-of-two input")
	}
}

func TestFFTConstantSignal(t *testing.T) {
	x := []float64{3, 3, 3, 3}
	freq, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	// All energy at DC.
	if math.Abs(real(freq[0])-12) > 1e-9 {
		t.Errorf("DC component = %v, want 12", freq[0])
	}
	for k := 1; k < len(freq); k++ {
		if math.Hypot(real(freq[k]), imag(freq[k])) > 1e-9 {
			t.Errorf("freq[%d] = %v, want 0", k, freq[k])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// cos(2*pi*k0*i/n) should put energy at bins k0 and n-k0 only.
	const n, k0 = 64, 5
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * k0 * float64(i) / n)
	}
	freq, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for k := range freq {
		mag := math.Hypot(real(freq[k]), imag(freq[k]))
		if k == k0 || k == n-k0 {
			if math.Abs(mag-n/2) > 1e-6 {
				t.Errorf("bin %d magnitude = %v, want %v", k, mag, float64(n)/2)
			}
		} else if mag > 1e-6 {
			t.Errorf("bin %d magnitude = %v, want ~0", k, mag)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 7, 16, 33, 100, 128} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		freq, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := IFFT(freq)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-8 {
				t.Fatalf("n=%d: roundtrip[%d] = %v, want %v", n, i, back[i], x[i])
			}
		}
		// Zero padding must reconstruct as zeros.
		for i := n; i < len(back); i++ {
			if math.Abs(back[i]) > 1e-8 {
				t.Fatalf("n=%d: padding[%d] = %v, want 0", n, i, back[i])
			}
		}
	}
}

// Property: FFT round trip is the identity for arbitrary signals.
func TestFFTRoundTripProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = math.Mod(v, 1e6)
		}
		freq, err := FFT(x)
		if err != nil {
			return false
		}
		back, err := IFFT(freq)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Parseval's theorem — energy is conserved (within padding).
func TestFFTParsevalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = math.Mod(v, 1e4)
		}
		freq, err := FFT(x)
		if err != nil {
			return false
		}
		var timeE, freqE float64
		for _, v := range x {
			timeE += v * v
		}
		for _, c := range freq {
			freqE += real(c)*real(c) + imag(c)*imag(c)
		}
		freqE /= float64(len(freq))
		return math.Abs(timeE-freqE) <= 1e-6*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBurstSignalRemovesTrend(t *testing.T) {
	// Slow band-limited oscillation + fast oscillation: the burst signal
	// (top 90% of frequencies) should retain the fast component and drop
	// the slow one.
	const n = 128
	x := make([]float64, n)
	for i := range x {
		slow := 20 * math.Cos(2*math.Pi*1*float64(i)/n)
		fast := 5 * math.Cos(2*math.Pi*30*float64(i)/n)
		x[i] = slow + fast
	}
	burst, err := BurstSignal(x, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(burst) != n {
		t.Fatalf("burst length = %d, want %d", len(burst), n)
	}
	for i := range burst {
		fast := 5 * math.Cos(2*math.Pi*30*float64(i)/n)
		if math.Abs(burst[i]-fast) > 1e-6 {
			t.Fatalf("burst[%d] = %v, want fast component %v", i, burst[i], fast)
		}
	}
}

func TestBurstSignalAllFrequencies(t *testing.T) {
	x := []float64{1, 4, 2, 8, 5, 7, 1, 0}
	burst, err := BurstSignal(x, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(burst[i]-x[i]) > 1e-8 {
			t.Errorf("highFrac=1 should reproduce input: burst[%d]=%v want %v", i, burst[i], x[i])
		}
	}
}

func TestBurstSignalNoFrequencies(t *testing.T) {
	x := []float64{1, 4, 2, 8, 5, 7, 1, 0}
	burst, err := BurstSignal(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range burst {
		if math.Abs(burst[i]) > 1e-8 {
			t.Errorf("highFrac=0 should zero everything: burst[%d]=%v", i, burst[i])
		}
	}
}

func TestBurstSignalClampsFrac(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if _, err := BurstSignal(x, -3); err != nil {
		t.Errorf("highFrac<0 should clamp, got error %v", err)
	}
	if _, err := BurstSignal(x, 7); err != nil {
		t.Errorf("highFrac>1 should clamp, got error %v", err)
	}
}

func TestExpectedErrorBurstyVsStable(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(7))
	stable := make([]float64, n)
	bursty := make([]float64, n)
	for i := range stable {
		stable[i] = 50 + 0.2*rng.NormFloat64()
		bursty[i] = 50 + 15*rng.NormFloat64()
	}
	es, err := ExpectedError(stable, 0.9, 90)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := ExpectedError(bursty, 0.9, 90)
	if err != nil {
		t.Fatal(err)
	}
	if eb <= es {
		t.Errorf("bursty expected error (%v) should exceed stable (%v)", eb, es)
	}
	// This is the core Fig. 4 behaviour: thresholds scale with burstiness.
	if eb < 5*es {
		t.Errorf("bursty/stable expected-error ratio = %v, want clearly separated", eb/es)
	}
}

func TestExpectedErrorEmpty(t *testing.T) {
	if _, err := ExpectedError(nil, 0.9, 90); err == nil {
		t.Error("ExpectedError(nil) should error")
	}
}

// Property: expected error is non-negative and monotone-ish in percentile.
func TestExpectedErrorMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) < 2 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = math.Mod(v, 1e4)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		ea, err := ExpectedError(x, 0.9, pa)
		if err != nil {
			return false
		}
		eb, err := ExpectedError(x, 0.9, pb)
		if err != nil {
			return false
		}
		return ea >= 0 && eb >= 0 && ea <= eb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
