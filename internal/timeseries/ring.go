package timeseries

// Ring is a fixed-capacity ring buffer of timestamped samples used by the
// FChain slave daemon to retain a bounded history of each metric. The slave
// only ever needs the look-back window [tv-W, tv] plus the burst-extraction
// margin, so a small ring bounds memory to a few kilobytes per metric
// (paper §III-G reports ~3 MB per host for all VMs and metrics).
//
// The zero value is not usable; construct with NewRing.
type Ring struct {
	vals  []float64
	times []int64
	head  int // index of oldest element
	size  int
}

// NewRing returns a ring holding at most capacity samples. Capacities < 1
// are raised to 1.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{
		vals:  make([]float64, capacity),
		times: make([]int64, capacity),
	}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.vals) }

// Len returns the number of retained samples.
func (r *Ring) Len() int { return r.size }

// Push appends a sample, evicting the oldest when full.
func (r *Ring) Push(t int64, v float64) {
	idx := (r.head + r.size) % len(r.vals)
	r.vals[idx] = v
	r.times[idx] = t
	if r.size < len(r.vals) {
		r.size++
		return
	}
	r.head = (r.head + 1) % len(r.vals)
}

// Last returns the most recent sample, or ok=false when empty.
func (r *Ring) Last() (t int64, v float64, ok bool) {
	if r.size == 0 {
		return 0, 0, false
	}
	idx := (r.head + r.size - 1) % len(r.vals)
	return r.times[idx], r.vals[idx], true
}

// Series materializes the retained samples, oldest first, as a Series
// starting at the oldest retained timestamp. Gaps in timestamps are not
// reconstructed; FChain's collectors sample on a strict 1-second cadence so
// retained samples are contiguous.
func (r *Ring) Series() *Series {
	if r.size == 0 {
		return &Series{}
	}
	vals := make([]float64, r.size)
	for i := 0; i < r.size; i++ {
		vals[i] = r.vals[(r.head+i)%len(r.vals)]
	}
	return &Series{start: r.times[r.head], vals: vals}
}

// WindowBefore returns up to w samples with timestamps in (end-w, end],
// oldest first, as a Series. It is the primitive behind FChain's look-back
// window query.
func (r *Ring) WindowBefore(end int64, w int) *Series {
	s := r.Series()
	return s.Window(end-int64(w)+1, end+1)
}
