package timeseries

import "errors"

// Ring is a fixed-capacity ring buffer of timestamped samples used by the
// FChain slave daemon to retain a bounded history of each metric. The slave
// only ever needs the look-back window [tv-W, tv] plus the burst-extraction
// margin, so a small ring bounds memory to a few kilobytes per metric
// (paper §III-G reports ~3 MB per host for all VMs and metrics).
//
// The zero value is not usable; construct with NewRing.
type Ring struct {
	vals  []float64
	times []int64
	head  int // index of oldest element
	size  int
	seq   uint64 // bumped on every mutation; see Seq
}

// NewRing returns a ring holding at most capacity samples. Capacities < 1
// are raised to 1.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{
		vals:  make([]float64, capacity),
		times: make([]int64, capacity),
	}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.vals) }

// Len returns the number of retained samples.
func (r *Ring) Len() int { return r.size }

// Seq returns the ring's mutation sequence number: it advances on every
// Push and Clear, so two reads observing the same Seq are guaranteed to
// have seen identical contents. Streaming selection keys its memoized
// per-window results on it to detect when a cached result is still exact.
func (r *Ring) Seq() uint64 { return r.seq }

// At returns the i-th retained sample, oldest first. It panics if i is out
// of [0, Len()), matching slice-indexing semantics.
func (r *Ring) At(i int) (t int64, v float64) {
	if i < 0 || i >= r.size {
		panic("timeseries: ring index out of range")
	}
	idx := (r.head + i) % len(r.vals)
	return r.times[idx], r.vals[idx]
}

// Push appends a sample, evicting the oldest when full.
func (r *Ring) Push(t int64, v float64) {
	r.seq++
	idx := (r.head + r.size) % len(r.vals)
	r.vals[idx] = v
	r.times[idx] = t
	if r.size < len(r.vals) {
		r.size++
		return
	}
	r.head = (r.head + 1) % len(r.vals)
}

// Last returns the most recent sample, or ok=false when empty.
func (r *Ring) Last() (t int64, v float64, ok bool) {
	if r.size == 0 {
		return 0, 0, false
	}
	idx := (r.head + r.size - 1) % len(r.vals)
	return r.times[idx], r.vals[idx], true
}

// Series materializes the retained samples, oldest first, as a Series
// starting at the oldest retained timestamp. Gaps in timestamps are not
// reconstructed; the ingest sanitizer keeps retained samples contiguous
// (short gaps filled, long gaps severed by Clear).
func (r *Ring) Series() *Series {
	if r.size == 0 {
		return &Series{}
	}
	vals := make([]float64, r.size)
	for i := 0; i < r.size; i++ {
		vals[i] = r.vals[(r.head+i)%len(r.vals)]
	}
	return &Series{start: r.times[r.head], vals: vals}
}

// SeriesInto materializes the retained samples like Series but reuses dst's
// backing storage, growing it only when the ring holds more samples than
// dst's capacity. It is the allocation-free primitive behind the hot
// localize path; the returned series is dst, and any previously returned
// views into dst are invalidated.
func (r *Ring) SeriesInto(dst *Series) *Series {
	if dst == nil {
		return r.Series()
	}
	if r.size == 0 {
		dst.start = 0
		dst.vals = dst.vals[:0]
		return dst
	}
	if cap(dst.vals) < r.size {
		dst.vals = make([]float64, r.size)
	}
	dst.vals = dst.vals[:r.size]
	for i := 0; i < r.size; i++ {
		dst.vals[i] = r.vals[(r.head+i)%len(r.vals)]
	}
	dst.start = r.times[r.head]
	return dst
}

// WindowBefore returns up to w samples with timestamps in (end-w, end],
// oldest first, as a Series. It is the primitive behind FChain's look-back
// window query.
func (r *Ring) WindowBefore(end int64, w int) *Series {
	s := r.Series()
	return s.Window(end-int64(w)+1, end+1)
}

// Clear discards every retained sample. The slave severs a metric's dense
// history this way after a long collection gap: the pre-gap samples would
// otherwise be misaligned with the post-gap dense indexing.
func (r *Ring) Clear() {
	r.seq++
	r.head = 0
	r.size = 0
}

// RingSnapshot is the serializable state of a Ring: the retained samples,
// oldest first, plus the capacity to rebuild it.
type RingSnapshot struct {
	Cap   int       `json:"cap"`
	Times []int64   `json:"times,omitempty"`
	Vals  []float64 `json:"vals,omitempty"`
}

// Snapshot captures the ring's retained samples for checkpointing.
func (r *Ring) Snapshot() RingSnapshot {
	s := RingSnapshot{Cap: len(r.vals)}
	if r.size == 0 {
		return s
	}
	s.Times = make([]int64, r.size)
	s.Vals = make([]float64, r.size)
	for i := 0; i < r.size; i++ {
		idx := (r.head + i) % len(r.vals)
		s.Times[i] = r.times[idx]
		s.Vals[i] = r.vals[idx]
	}
	return s
}

// RingFromSnapshot rebuilds a ring from a snapshot, validating its shape.
// A snapshot holding more samples than its capacity keeps only the newest.
func RingFromSnapshot(s RingSnapshot) (*Ring, error) {
	if len(s.Times) != len(s.Vals) {
		return nil, errors.New("timeseries: ring snapshot times/vals length mismatch")
	}
	r := NewRing(s.Cap)
	for i := range s.Vals {
		r.Push(s.Times[i], s.Vals[i])
	}
	return r, nil
}
