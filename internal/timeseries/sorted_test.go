package timeseries

import (
	"math/rand"
	"testing"
)

// TestSortedWindowMatchesPercentileScratch is the bit-equality contract
// behind the streaming fast path: an incrementally maintained sorted window
// must answer every percentile with exactly the bits a from-scratch
// PercentileScratch over the same multiset produces.
func TestSortedWindowMatchesPercentileScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var w SortedWindow
		var live []float64
		var scratch []float64
		steps := 200 + rng.Intn(400)
		for i := 0; i < steps; i++ {
			// Mixed workload: mostly inserts, some removals of the oldest
			// live value (mirroring ring eviction), with duplicate-prone
			// quantized values so equal keys are exercised.
			if len(live) > 0 && rng.Float64() < 0.3 {
				v := live[0]
				live = live[1:]
				if !w.Remove(v) {
					t.Fatalf("trial %d: Remove(%v) found nothing", trial, v)
				}
			} else {
				v := float64(rng.Intn(40)) + rng.Float64()
				if rng.Intn(4) == 0 {
					v = float64(rng.Intn(10)) // exact duplicates
				}
				live = append(live, v)
				w.Insert(v)
			}
			if w.Len() != len(live) {
				t.Fatalf("trial %d: len %d != %d", trial, w.Len(), len(live))
			}
			if len(live) == 0 {
				continue
			}
			for _, p := range []float64{0, 1, 50, 90, 99, 100} {
				want, err := PercentileScratch(live, p, &scratch)
				if err != nil {
					t.Fatal(err)
				}
				got, err := w.Percentile(p)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d step %d: p%v = %v, batch %v", trial, i, p, got, want)
				}
			}
		}
	}
}

func TestSortedWindowRemoveMissing(t *testing.T) {
	var w SortedWindow
	w.Insert(1)
	w.Insert(3)
	if w.Remove(2) {
		t.Fatal("removed a value that was never inserted")
	}
	if !w.Remove(3) || !w.Remove(1) || w.Len() != 0 {
		t.Fatal("remove of present values failed")
	}
	if _, err := w.Percentile(50); err == nil {
		t.Fatal("empty window percentile should error")
	}
}

func TestRingSeqAndAt(t *testing.T) {
	r := NewRing(4)
	if r.Seq() != 0 {
		t.Fatal("fresh ring should start at seq 0")
	}
	for i := int64(0); i < 6; i++ {
		before := r.Seq()
		r.Push(i, float64(i)*2)
		if r.Seq() != before+1 {
			t.Fatalf("push %d did not advance seq", i)
		}
	}
	// Capacity 4, pushed 6: retains t=2..5 oldest-first.
	for i := 0; i < r.Len(); i++ {
		ts, v := r.At(i)
		if want := int64(2 + i); ts != want || v != float64(want)*2 {
			t.Fatalf("At(%d) = (%d, %v), want (%d, %v)", i, ts, v, want, float64(want)*2)
		}
	}
	seq := r.Seq()
	r.Clear()
	if r.Seq() != seq+1 {
		t.Fatal("Clear did not advance seq")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range should panic")
		}
	}()
	r.At(0)
}
