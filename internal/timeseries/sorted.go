package timeseries

import "sort"

// SortedWindow is an incrementally maintained multiset of float64 samples
// kept in ascending order. It exists for streaming selection: the context
// percentiles that batch analysis obtains by sorting a fresh copy of the
// look-back context on every query are instead maintained sample-by-sample
// on the ingest path, so a query only interpolates into an already-sorted
// slice.
//
// The bit-equality contract with the batch path is structural: a sorted
// sequence is fully determined by the multiset of values it holds, so as
// long as Insert/Remove mirror exactly the samples entering and leaving the
// context region, Percentile returns the same bits PercentileScratch would
// have produced from scratch. Inserting into a dense slice costs a binary
// search plus a memmove — a few hundred nanoseconds at the window sizes
// FChain retains (~1.4k samples), far below one per-query sort.
//
// The zero value is ready to use. Not safe for concurrent use; callers
// guard it with the owning shard's lock. Values must not be NaN (both the
// strict and sanitizing ingest paths already reject non-finite samples).
type SortedWindow struct {
	vals []float64
}

// Len returns the number of retained values.
func (w *SortedWindow) Len() int { return len(w.vals) }

// Insert adds v, keeping the slice sorted.
func (w *SortedWindow) Insert(v float64) {
	i := sort.SearchFloat64s(w.vals, v)
	w.vals = append(w.vals, 0)
	copy(w.vals[i+1:], w.vals[i:])
	w.vals[i] = v
}

// Remove deletes one instance of v, reporting whether it was present.
func (w *SortedWindow) Remove(v float64) bool {
	i := sort.SearchFloat64s(w.vals, v)
	if i >= len(w.vals) || w.vals[i] != v {
		return false
	}
	copy(w.vals[i:], w.vals[i+1:])
	w.vals = w.vals[:len(w.vals)-1]
	return true
}

// Reset discards all values, keeping the backing storage.
func (w *SortedWindow) Reset() { w.vals = w.vals[:0] }

// AppendTo appends the sorted values to dst and returns it. Callers on the
// analysis path copy the window out under the shard lock this way, so the
// kernel never reads state the ingest goroutine is still mutating.
func (w *SortedWindow) AppendTo(dst []float64) []float64 {
	return append(dst, w.vals...)
}

// Percentile returns the p-th percentile of the retained values using the
// same linear interpolation as PercentileScratch; given the same multiset
// of values the two are bit-identical. It returns ErrEmpty when no values
// are retained.
func (w *SortedWindow) Percentile(p float64) (float64, error) {
	return SortedPercentile(w.vals, p)
}

// Max returns the largest retained value; ok is false when empty. Because
// the maximum of a multiset does not depend on visit order, it is
// bit-identical to what a MinMax scan over the same values reports.
func (w *SortedWindow) Max() (float64, bool) {
	if len(w.vals) == 0 {
		return 0, false
	}
	return w.vals[len(w.vals)-1], true
}

// Bytes reports the approximate heap memory retained by the window.
func (w *SortedWindow) Bytes() int64 { return int64(cap(w.vals)) * 8 }

// SortedPercentile interpolates the p-th percentile of an ascending-sorted
// slice — PercentileScratch minus the sort. It is the query half of the
// SortedWindow contract and must stay arithmetic-identical to
// PercentileScratch's interpolation.
func SortedPercentile(sorted []float64, p float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if frac == 0 {
		return sorted[lo], nil
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac, nil
}
