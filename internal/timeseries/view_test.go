package timeseries

import (
	"encoding/json"
	"testing"
)

func TestWindowViewMatchesWindow(t *testing.T) {
	s := FromFunc(100, 50, func(i int) float64 { return float64(i * i) })
	cases := [][2]int64{{100, 150}, {110, 120}, {90, 200}, {120, 120}, {149, 150}, {200, 300}}
	for _, c := range cases {
		w := s.Window(c[0], c[1])
		v := s.WindowView(c[0], c[1])
		if w.Start() != v.Start() || w.Len() != v.Len() {
			t.Fatalf("window [%d,%d): view start/len (%d,%d) != copy (%d,%d)",
				c[0], c[1], v.Start(), v.Len(), w.Start(), w.Len())
		}
		for i := 0; i < w.Len(); i++ {
			if w.At(i) != v.At(i) {
				t.Fatalf("window [%d,%d) idx %d: %v != %v", c[0], c[1], i, v.At(i), w.At(i))
			}
		}
	}
}

func TestTailViewMatchesTail(t *testing.T) {
	s := FromFunc(7, 20, func(i int) float64 { return float64(i) })
	for _, n := range []int{0, 1, 5, 20, 100} {
		w := s.Tail(n)
		v := s.TailView(n)
		if w.Start() != v.Start() || w.Len() != v.Len() {
			t.Fatalf("tail %d: view (%d,%d) != copy (%d,%d)", n, v.Start(), v.Len(), w.Start(), w.Len())
		}
		for i := 0; i < w.Len(); i++ {
			if w.At(i) != v.At(i) {
				t.Fatalf("tail %d idx %d mismatch", n, i)
			}
		}
	}
}

func TestViewSharesStorage(t *testing.T) {
	s := FromFunc(0, 10, func(i int) float64 { return float64(i) })
	v := s.WindowView(2, 8)
	s.vals[2] = 99
	if v.At(0) != 99 {
		t.Error("WindowView copied storage; expected aliasing")
	}
	if got := s.ValuesView(); &got[0] != &s.vals[0] {
		t.Error("ValuesView copied storage")
	}
}

func TestViewsAllocationFree(t *testing.T) {
	s := FromFunc(0, 1000, func(i int) float64 { return float64(i) })
	r := NewRing(512)
	for i := 0; i < 600; i++ {
		r.Push(int64(i), float64(i))
	}
	scratch := &Series{}
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		m := r.SeriesInto(scratch)
		w := m.WindowView(200, 400)
		tl := w.TailView(50)
		for _, v := range tl.ValuesView() {
			sink += v
		}
		_ = s.WindowView(10, 900)
	})
	if sink == 0 {
		t.Fatal("sink untouched")
	}
	// WindowView/TailView return a new *Series header (1 small alloc each);
	// the guard is that no O(n) value copies happen per iteration.
	if allocs > 4 {
		t.Errorf("hot path allocates %v objects per run, want <= 4 headers", allocs)
	}
}

func TestSeriesIntoReuseAndEdgeCases(t *testing.T) {
	r := NewRing(8)
	scratch := &Series{}
	if got := r.SeriesInto(scratch); got.Len() != 0 {
		t.Fatalf("empty ring produced %d samples", got.Len())
	}
	for i := 0; i < 12; i++ { // wraps the ring
		r.Push(int64(i), float64(i))
	}
	got := r.SeriesInto(scratch)
	want := r.Series()
	if got.Start() != want.Start() || got.Len() != want.Len() {
		t.Fatalf("SeriesInto (%d,%d) != Series (%d,%d)", got.Start(), got.Len(), want.Start(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("idx %d: %v != %v", i, got.At(i), want.At(i))
		}
	}
	if nil2 := r.SeriesInto(nil); nil2.Len() != want.Len() {
		t.Errorf("nil dst fallback broken")
	}
}

func TestRingClear(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Push(int64(i), float64(i))
	}
	r.Clear()
	if r.Len() != 0 {
		t.Fatalf("Len after Clear = %d", r.Len())
	}
	if _, _, ok := r.Last(); ok {
		t.Fatal("Last returned a sample after Clear")
	}
	r.Push(100, 1)
	s := r.Series()
	if s.Len() != 1 || s.Start() != 100 {
		t.Fatalf("post-Clear push broken: %v", s)
	}
}

func TestRingSnapshotRoundTrip(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 25; i++ { // wrap
		r.Push(int64(i), float64(i)*1.5)
	}
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var snap RingSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored, err := RingFromSnapshot(snap)
	if err != nil {
		t.Fatalf("RingFromSnapshot: %v", err)
	}
	a, b := r.Series(), restored.Series()
	if a.Start() != b.Start() || a.Len() != b.Len() {
		t.Fatalf("restored (%d,%d) != original (%d,%d)", b.Start(), b.Len(), a.Start(), a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("idx %d: %v != %v", i, b.At(i), a.At(i))
		}
	}
	if restored.Cap() != r.Cap() {
		t.Errorf("cap %d != %d", restored.Cap(), r.Cap())
	}
}

func TestRingSnapshotRejectsMismatch(t *testing.T) {
	if _, err := RingFromSnapshot(RingSnapshot{Cap: 4, Times: []int64{1}, Vals: nil}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Empty snapshot restores an empty usable ring.
	r, err := RingFromSnapshot(RingSnapshot{Cap: 4})
	if err != nil || r.Len() != 0 || r.Cap() != 4 {
		t.Errorf("empty snapshot: r=%v err=%v", r, err)
	}
}
