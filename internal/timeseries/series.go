// Package timeseries provides the fixed-interval time series containers and
// statistics used throughout FChain.
//
// Every FChain metric stream is sampled at a fixed interval (1 second in the
// paper), so a series is represented compactly as a start timestamp plus a
// dense slice of values. The package also provides the smoothing, slope, and
// trend primitives that the abnormal change point selection stage relies on.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty series.
var ErrEmpty = errors.New("timeseries: empty series")

// Series is a fixed-interval (1 sample per second) time series.
// The zero value is an empty series starting at time 0.
type Series struct {
	start int64 // timestamp (seconds) of vals[0]
	vals  []float64
}

// New returns a series beginning at start with the given values.
// The values slice is copied.
func New(start int64, values []float64) *Series {
	s := &Series{start: start, vals: make([]float64, len(values))}
	copy(s.vals, values)
	return s
}

// FromFunc builds a series of n samples starting at start, with the i-th
// value produced by f(i).
func FromFunc(start int64, n int, f func(i int) float64) *Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = f(i)
	}
	return &Series{start: start, vals: vals}
}

// Start returns the timestamp of the first sample.
func (s *Series) Start() int64 { return s.start }

// End returns the timestamp just past the last sample (start + len).
func (s *Series) End() int64 { return s.start + int64(len(s.vals)) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.vals) }

// At returns the i-th value. It panics if i is out of range, matching
// slice-indexing semantics.
func (s *Series) At(i int) float64 { return s.vals[i] }

// TimeAt returns the timestamp of the i-th sample.
func (s *Series) TimeAt(i int) int64 { return s.start + int64(i) }

// IndexOf returns the sample index holding timestamp t, and whether t lies
// within the series.
func (s *Series) IndexOf(t int64) (int, bool) {
	if t < s.start || t >= s.End() {
		return 0, false
	}
	return int(t - s.start), true
}

// ValueAt returns the value recorded at timestamp t.
func (s *Series) ValueAt(t int64) (float64, bool) {
	i, ok := s.IndexOf(t)
	if !ok {
		return 0, false
	}
	return s.vals[i], true
}

// Append adds a value at the end of the series.
func (s *Series) Append(v float64) { s.vals = append(s.vals, v) }

// Values returns a copy of the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Window returns the sub-series covering timestamps [from, to). Timestamps
// outside the series are clamped. The returned series shares no storage with
// the receiver.
func (s *Series) Window(from, to int64) *Series {
	if from < s.start {
		from = s.start
	}
	if to > s.End() {
		to = s.End()
	}
	if to <= from {
		return &Series{start: from}
	}
	lo := int(from - s.start)
	hi := int(to - s.start)
	return New(from, s.vals[lo:hi])
}

// WindowView is Window without the copy: the returned sub-series shares the
// receiver's storage. It is the allocation-free variant used on the hot
// localize path; the view is invalidated by any mutation of the receiver
// (Append, or rematerialization of a reused backing series).
func (s *Series) WindowView(from, to int64) *Series {
	if from < s.start {
		from = s.start
	}
	if to > s.End() {
		to = s.End()
	}
	if to <= from {
		return &Series{start: from}
	}
	lo := int(from - s.start)
	hi := int(to - s.start)
	return &Series{start: from, vals: s.vals[lo:hi:hi]}
}

// ViewRange is WindowView returning the sub-series by value: hot paths that
// take many short-lived window views per call use it to keep the views on
// the stack instead of allocating a *Series each. The same aliasing and
// invalidation caveats as WindowView apply.
func (s *Series) ViewRange(from, to int64) Series {
	if from < s.start {
		from = s.start
	}
	if to > s.End() {
		to = s.End()
	}
	if to <= from {
		return Series{start: from}
	}
	lo := int(from - s.start)
	hi := int(to - s.start)
	return Series{start: from, vals: s.vals[lo:hi:hi]}
}

// Tail returns a sub-series holding the last n samples (or the whole series
// when it is shorter than n).
func (s *Series) Tail(n int) *Series {
	if n >= len(s.vals) {
		return New(s.start, s.vals)
	}
	lo := len(s.vals) - n
	return New(s.start+int64(lo), s.vals[lo:])
}

// TailView is Tail without the copy: the returned sub-series shares the
// receiver's storage, with the same invalidation caveat as WindowView.
func (s *Series) TailView(n int) *Series {
	if n >= len(s.vals) {
		return &Series{start: s.start, vals: s.vals}
	}
	lo := len(s.vals) - n
	return &Series{start: s.start + int64(lo), vals: s.vals[lo:]}
}

// ValuesView returns the sample values without copying. The caller must
// treat the slice as read-only; it aliases the series' storage.
func (s *Series) ValuesView() []float64 { return s.vals }

// String implements fmt.Stringer with a compact summary.
func (s *Series) String() string {
	return fmt.Sprintf("series[start=%d len=%d]", s.start, len(s.vals))
}

// Mean returns the arithmetic mean of the values.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Std returns the population standard deviation of the values.
func Std(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := Mean(vals)
	ss := 0.0
	for _, v := range vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vals)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the values using
// nearest-rank interpolation. It returns ErrEmpty for empty input.
func Percentile(vals []float64, p float64) (float64, error) {
	var scratch []float64
	return PercentileScratch(vals, p, &scratch)
}

// PercentileScratch is Percentile with a caller-owned sort buffer: vals is
// copied into *scratch (grown as needed and written back), so a reused
// scratch makes repeated percentile queries allocation-free. The input is
// never mutated.
func PercentileScratch(vals []float64, p float64, scratch *[]float64) (float64, error) {
	if len(vals) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append((*scratch)[:0], vals...)
	*scratch = sorted
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MinMax returns the smallest and largest values. It returns ErrEmpty for
// empty input.
func MinMax(vals []float64) (lo, hi float64, err error) {
	if len(vals) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, nil
}

// Smooth returns a centered moving average of vals with the given window
// width (an odd width is recommended; width <= 1 returns a copy). Edges use
// the available partial window, so the output has the same length as the
// input. FChain smooths raw monitoring data before change point detection to
// remove sampling noise (paper §II-B, following PAL).
func Smooth(vals []float64, width int) []float64 {
	return SmoothInto(nil, vals, width)
}

// SmoothInto is Smooth writing into dst, which is grown as needed and
// returned; passing a reused buffer makes repeated smoothing
// allocation-free. dst must not alias vals.
func SmoothInto(dst []float64, vals []float64, width int) []float64 {
	if cap(dst) < len(vals) {
		dst = make([]float64, len(vals))
	}
	out := dst[:len(vals)]
	if width <= 1 {
		copy(out, vals)
		return out
	}
	half := width / 2
	for i := range vals {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(vals) {
			hi = len(vals)
		}
		out[i] = Mean(vals[lo:hi])
	}
	return out
}

// SlopeAt estimates the tangent (first derivative per sample step) of vals at
// index i using a symmetric difference over a window of the given half-width.
// The window is clamped at the series edges. halfWidth < 1 is treated as 1.
func SlopeAt(vals []float64, i, halfWidth int) float64 {
	if len(vals) < 2 {
		return 0
	}
	if halfWidth < 1 {
		halfWidth = 1
	}
	lo := i - halfWidth
	if lo < 0 {
		lo = 0
	}
	hi := i + halfWidth
	if hi > len(vals)-1 {
		hi = len(vals) - 1
	}
	if hi == lo {
		return 0
	}
	return (vals[hi] - vals[lo]) / float64(hi-lo)
}

// Trend classifies the overall direction of a series window.
type Trend int

// Trend directions. FChain uses the shared trend of all components to
// recognize external factors: a common upward trend suggests a workload
// surge, a common downward trend suggests e.g. an external (NFS) outage
// (paper §II-C).
const (
	TrendFlat Trend = iota
	TrendUp
	TrendDown
)

// String returns "flat", "up", or "down".
func (t Trend) String() string {
	switch t {
	case TrendUp:
		return "up"
	case TrendDown:
		return "down"
	default:
		return "flat"
	}
}

// TrendOf classifies the direction of vals by comparing the means of its
// first and last thirds against the series' noise level. A difference below
// noiseFrac (fraction of the standard deviation, e.g. 0.5) is flat.
func TrendOf(vals []float64, noiseFrac float64) Trend {
	if len(vals) < 3 {
		return TrendFlat
	}
	third := len(vals) / 3
	head := Mean(vals[:third])
	tail := Mean(vals[len(vals)-third:])
	sd := Std(vals)
	if sd == 0 {
		sd = math.Abs(head)
		if sd == 0 {
			sd = 1
		}
	}
	diff := tail - head
	if math.Abs(diff) < noiseFrac*sd {
		return TrendFlat
	}
	if diff > 0 {
		return TrendUp
	}
	return TrendDown
}
