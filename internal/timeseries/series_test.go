package timeseries

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSeriesBasics(t *testing.T) {
	s := New(100, []float64{1, 2, 3, 4})
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := s.Start(); got != 100 {
		t.Errorf("Start = %d, want 100", got)
	}
	if got := s.End(); got != 104 {
		t.Errorf("End = %d, want 104", got)
	}
	if got := s.At(2); got != 3 {
		t.Errorf("At(2) = %v, want 3", got)
	}
	if got := s.TimeAt(3); got != 103 {
		t.Errorf("TimeAt(3) = %d, want 103", got)
	}
}

func TestSeriesCopiesInput(t *testing.T) {
	in := []float64{1, 2, 3}
	s := New(0, in)
	in[0] = 99
	if s.At(0) != 1 {
		t.Error("New must copy its input slice")
	}
	out := s.Values()
	out[1] = 99
	if s.At(1) != 2 {
		t.Error("Values must return a copy")
	}
}

func TestSeriesIndexOf(t *testing.T) {
	s := New(10, []float64{5, 6, 7})
	tests := []struct {
		give   int64
		want   int
		wantOK bool
	}{
		{10, 0, true},
		{12, 2, true},
		{9, 0, false},
		{13, 0, false},
	}
	for _, tt := range tests {
		got, ok := s.IndexOf(tt.give)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("IndexOf(%d) = %d,%v, want %d,%v", tt.give, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestSeriesValueAt(t *testing.T) {
	s := New(10, []float64{5, 6, 7})
	if v, ok := s.ValueAt(11); !ok || v != 6 {
		t.Errorf("ValueAt(11) = %v,%v, want 6,true", v, ok)
	}
	if _, ok := s.ValueAt(100); ok {
		t.Error("ValueAt(100) should report not found")
	}
}

func TestSeriesWindow(t *testing.T) {
	s := New(0, []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	w := s.Window(3, 6)
	if w.Len() != 3 || w.Start() != 3 || w.At(0) != 3 || w.At(2) != 5 {
		t.Fatalf("Window(3,6) wrong: %+v values=%v", w, w.Values())
	}
	// Clamping.
	w = s.Window(-5, 100)
	if w.Len() != 10 || w.Start() != 0 {
		t.Errorf("clamped window wrong: len=%d start=%d", w.Len(), w.Start())
	}
	// Empty when inverted.
	w = s.Window(8, 3)
	if w.Len() != 0 {
		t.Errorf("inverted window should be empty, got len %d", w.Len())
	}
}

func TestSeriesTail(t *testing.T) {
	s := New(0, []float64{0, 1, 2, 3, 4})
	tl := s.Tail(2)
	if tl.Len() != 2 || tl.Start() != 3 || tl.At(0) != 3 {
		t.Errorf("Tail(2) wrong: start=%d values=%v", tl.Start(), tl.Values())
	}
	if got := s.Tail(100); got.Len() != 5 {
		t.Errorf("Tail(100) should return whole series, got %d", got.Len())
	}
}

func TestSeriesAppend(t *testing.T) {
	var s Series
	s.Append(1)
	s.Append(2)
	if s.Len() != 2 || s.At(1) != 2 {
		t.Errorf("append on zero value failed: %v", s.Values())
	}
}

func TestMeanStd(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vals); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Std(vals); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Std = %v, want 2", got)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Error("Mean/Std of empty input should be 0")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {90, 4.6},
	}
	for _, tt := range tests {
		got, err := Percentile(vals, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile of empty input should error")
	}
}

func TestPercentileClampsP(t *testing.T) {
	vals := []float64{3, 1, 2}
	lo, err := Percentile(vals, -10)
	if err != nil || lo != 1 {
		t.Errorf("Percentile(-10) = %v,%v, want 1", lo, err)
	}
	hi, err := Percentile(vals, 200)
	if err != nil || hi != 3 {
		t.Errorf("Percentile(200) = %v,%v, want 3", hi, err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v,%v,%v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax of empty input should error")
	}
}

func TestSmoothPreservesConstant(t *testing.T) {
	vals := []float64{5, 5, 5, 5, 5}
	got := Smooth(vals, 3)
	for i, v := range got {
		if !almostEqual(v, 5, 1e-12) {
			t.Errorf("Smooth[%d] = %v, want 5", i, v)
		}
	}
}

func TestSmoothReducesVariance(t *testing.T) {
	// Alternating signal: smoothing must reduce spread.
	vals := make([]float64, 50)
	for i := range vals {
		if i%2 == 0 {
			vals[i] = 10
		}
	}
	sm := Smooth(vals, 5)
	if Std(sm) >= Std(vals) {
		t.Errorf("smoothing did not reduce variance: %v >= %v", Std(sm), Std(vals))
	}
	if len(sm) != len(vals) {
		t.Errorf("smoothing changed length: %d != %d", len(sm), len(vals))
	}
}

func TestSmoothWidthOne(t *testing.T) {
	vals := []float64{1, 2, 3}
	got := Smooth(vals, 1)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("Smooth width 1 should copy, got %v", got)
		}
	}
}

func TestSlopeAtLinear(t *testing.T) {
	// Slope of 2*i is 2 everywhere, regardless of window clamping.
	vals := FromFunc(0, 20, func(i int) float64 { return 2 * float64(i) }).Values()
	for _, i := range []int{0, 1, 10, 19} {
		if got := SlopeAt(vals, i, 3); !almostEqual(got, 2, 1e-12) {
			t.Errorf("SlopeAt(%d) = %v, want 2", i, got)
		}
	}
}

func TestSlopeAtDegenerate(t *testing.T) {
	if got := SlopeAt([]float64{1}, 0, 2); got != 0 {
		t.Errorf("SlopeAt on single point = %v, want 0", got)
	}
}

func TestTrendOf(t *testing.T) {
	up := FromFunc(0, 60, func(i int) float64 { return float64(i) }).Values()
	down := FromFunc(0, 60, func(i int) float64 { return -float64(i) }).Values()
	flat := make([]float64, 60)
	for i := range flat {
		flat[i] = 5
	}
	if got := TrendOf(up, 0.5); got != TrendUp {
		t.Errorf("up trend = %v", got)
	}
	if got := TrendOf(down, 0.5); got != TrendDown {
		t.Errorf("down trend = %v", got)
	}
	if got := TrendOf(flat, 0.5); got != TrendFlat {
		t.Errorf("flat trend = %v", got)
	}
	if got := TrendOf(nil, 0.5); got != TrendFlat {
		t.Errorf("empty trend = %v", got)
	}
}

func TestTrendString(t *testing.T) {
	if TrendUp.String() != "up" || TrendDown.String() != "down" || TrendFlat.String() != "flat" {
		t.Error("Trend.String mismatch")
	}
}

func TestRingBasics(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("fresh ring cap=%d len=%d", r.Cap(), r.Len())
	}
	if _, _, ok := r.Last(); ok {
		t.Error("Last on empty ring should report !ok")
	}
	r.Push(1, 10)
	r.Push(2, 20)
	if tm, v, ok := r.Last(); !ok || tm != 2 || v != 20 {
		t.Errorf("Last = %d,%v,%v", tm, v, ok)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := int64(0); i < 5; i++ {
		r.Push(i, float64(i)*10)
	}
	s := r.Series()
	if s.Len() != 3 || s.Start() != 2 {
		t.Fatalf("ring series start=%d len=%d, want 2,3", s.Start(), s.Len())
	}
	want := []float64{20, 30, 40}
	for i, w := range want {
		if s.At(i) != w {
			t.Errorf("ring[%d] = %v, want %v", i, s.At(i), w)
		}
	}
}

func TestRingWindowBefore(t *testing.T) {
	r := NewRing(100)
	for i := int64(0); i < 50; i++ {
		r.Push(i, float64(i))
	}
	w := r.WindowBefore(49, 10)
	if w.Len() != 10 || w.Start() != 40 || w.At(9) != 49 {
		t.Errorf("WindowBefore wrong: start=%d len=%d last=%v", w.Start(), w.Len(), w.At(w.Len()-1))
	}
}

func TestRingMinCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Errorf("NewRing(0) cap = %d, want 1", r.Cap())
	}
	r.Push(1, 1)
	r.Push(2, 2)
	if r.Len() != 1 {
		t.Errorf("len = %d, want 1", r.Len())
	}
}

// Property: Smooth never widens the [min,max] range of its input.
func TestSmoothBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			// Constrain to a sane range to avoid inf/NaN artifacts.
			vals[i] = math.Mod(v, 1e6)
			if math.IsNaN(vals[i]) {
				vals[i] = 0
			}
		}
		lo, hi, _ := MinMax(vals)
		sm := Smooth(vals, 5)
		slo, shi, _ := MinMax(sm)
		return slo >= lo-1e-9 && shi <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0
			}
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, _ := Percentile(raw, pa)
		vb, _ := Percentile(raw, pb)
		return va <= vb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ring retains exactly the most recent min(n, cap) pushes in order.
func TestRingRetentionProperty(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		r := NewRing(capacity)
		total := int(n)
		for i := 0; i < total; i++ {
			r.Push(int64(i), float64(i))
		}
		s := r.Series()
		want := total
		if want > capacity {
			want = capacity
		}
		if s.Len() != want {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			expect := float64(total - want + i)
			if s.At(i) != expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
