package cloudsim

import (
	"testing"

	"fchain/internal/metric"
	"fchain/internal/workload"
)

// batchApp builds src -> sink where src flushes its output every `every`
// seconds.
func batchApp(every, phase int64, outCap int) AppSpec {
	return AppSpec{
		Name: "test-batch",
		Components: []ComponentSpec{
			{
				Name: "src", CPUCores: 2, MemoryMB: 2048, NetMBps: 200, DiskMBps: 100,
				CPUCostPerReq: 0.004, MemPerReq: 0.5, NetOutPerReq: 0.05,
				BaseMemMB: 200, ServiceTime: 0.002, QueueCap: 500,
				DispatchEvery: every, DispatchPhase: phase, OutBufCap: outCap,
				Downstream: []Edge{{To: "sink", Kind: EdgeAll}},
			},
			{
				Name: "sink", CPUCores: 2, MemoryMB: 2048, NetMBps: 200, DiskMBps: 100,
				CPUCostPerReq: 0.004, NetInPerReq: 0.05, BaseMemMB: 200,
				ServiceTime: 0.002, QueueCap: 5000,
			},
		},
		Entries:          []string{"src"},
		Style:            RequestReply,
		SLO:              SLOSpec{Kind: SLOLatency, Threshold: 10},
		Trace:            workload.Constant(30),
		MeasurementNoise: 0.0001,
	}
}

func TestBatchedDispatchWaves(t *testing.T) {
	sim, err := New(batchApp(10, 0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(100)
	// The sink's net_in must be spiky: zero between flushes, large bursts
	// on flush ticks.
	in, err := sim.Series("sink", metric.NetIn)
	if err != nil {
		t.Fatal(err)
	}
	var zeros, spikes int
	for i := 20; i < 100; i++ {
		v := in.At(i)
		switch {
		case v < 0.5:
			zeros++
		case v > 5:
			spikes++
		}
	}
	if spikes < 6 || spikes > 10 {
		t.Errorf("expected ~8 flush spikes in 80s at a 10s cadence, got %d", spikes)
	}
	if zeros < 60 {
		t.Errorf("expected mostly-zero inter-wave traffic, got %d zero ticks", zeros)
	}
	// Conservation: everything produced eventually reaches the sink.
	progress := sim.ProgressSeries()
	total := progress.At(progress.Len() - 1)
	if total < 30*80 {
		t.Errorf("completed %v work units, want >= %v", total, 30*80)
	}
}

func TestBatchedDispatchPhase(t *testing.T) {
	a, err := New(batchApp(10, 0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(batchApp(10, 5, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Step(60)
	b.Step(60)
	ain, _ := a.Series("sink", metric.NetIn)
	bin, _ := b.Series("sink", metric.NetIn)
	// Flush ticks must be offset by the phase.
	spikeTicks := func(s interface{ At(int) float64 }) map[int]bool {
		out := map[int]bool{}
		for i := 20; i < 60; i++ {
			if s.At(i) > 5 {
				out[i%10] = true
			}
		}
		return out
	}
	sa, sb := spikeTicks(ain), spikeTicks(bin)
	for k := range sa {
		if sb[k] {
			t.Fatalf("phase-shifted flushes collide on tick offset %d", k)
		}
	}
}

func TestOutBufCapThrottles(t *testing.T) {
	// A tiny output buffer must throttle processing between flushes — and
	// the default (4x queue cap) must not.
	tiny, err := New(batchApp(18, 0, 60), 1)
	if err != nil {
		t.Fatal(err)
	}
	tiny.Step(200)
	c, _ := tiny.Component("src")
	if c.Queue < 100 {
		t.Errorf("tiny OutBufCap should throttle src (queue=%v)", c.Queue)
	}
	roomy, err := New(batchApp(18, 0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	roomy.Step(200)
	r, _ := roomy.Component("src")
	if r.Queue > 100 {
		t.Errorf("default OutBufCap should not throttle src (queue=%v)", r.Queue)
	}
}

func TestSLOMetricLatency(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(60)), 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewCPUHog(100, 1.9, "db")); err != nil {
		t.Fatal(err)
	}
	sim.Step(300)
	healthy := sim.SLOMetric(40, 90)
	broken := sim.SLOMetric(200, 290)
	if broken <= healthy*2 {
		t.Errorf("SLO metric should grow under the fault: healthy=%v broken=%v", healthy, broken)
	}
}

func TestSLOMetricProgress(t *testing.T) {
	spec := threeTier(workload.Constant(60))
	spec.SLO = SLOSpec{Kind: SLOProgress, StallWindow: 30, StallFraction: 0.1}
	sim, err := New(spec, 31)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewCPUHog(200, 1.998, "web")); err != nil {
		t.Fatal(err)
	}
	sim.Step(400)
	healthy := sim.SLOMetric(100, 190)
	stalled := sim.SLOMetric(300, 390)
	if healthy > 0.2 {
		t.Errorf("healthy progress shortfall = %v, want ~0", healthy)
	}
	if stalled < 0.8 {
		t.Errorf("stalled progress shortfall = %v, want ~1", stalled)
	}
}

func TestSLOMetricEmptyWindow(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(10)), 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(10)
	if got := sim.SLOMetric(100, 200); got != 0 {
		t.Errorf("out-of-range window should yield 0, got %v", got)
	}
}
