package cloudsim

import (
	"math"
	"testing"

	"fchain/internal/depgraph"
	"fchain/internal/metric"
	"fchain/internal/workload"
)

// threeTier builds a small web -> {app1, app2} -> db application sized so
// that the steady workload runs at moderate utilization.
func threeTier(trace workload.Trace) AppSpec {
	return AppSpec{
		Name: "test-3tier",
		Components: []ComponentSpec{
			{
				Name: "web", CPUCores: 2, MemoryMB: 2048, NetMBps: 100, DiskMBps: 50,
				CPUCostPerReq: 0.004, MemPerReq: 0.5, NetInPerReq: 0.02, NetOutPerReq: 0.02,
				BaseMemMB: 300, ServiceTime: 0.002, QueueCap: 600,
				Downstream: []Edge{
					{To: "app1", Kind: EdgeBalanced, Weight: 1},
					{To: "app2", Kind: EdgeBalanced, Weight: 1},
				},
			},
			{
				Name: "app1", CPUCores: 2, MemoryMB: 2048, NetMBps: 100, DiskMBps: 50,
				CPUCostPerReq: 0.008, MemPerReq: 0.8, NetInPerReq: 0.01, NetOutPerReq: 0.01,
				BaseMemMB: 500, ServiceTime: 0.01, QueueCap: 400,
				Downstream: []Edge{{To: "db", Kind: EdgeBalanced, Weight: 1}},
			},
			{
				Name: "app2", CPUCores: 2, MemoryMB: 2048, NetMBps: 100, DiskMBps: 50,
				CPUCostPerReq: 0.008, MemPerReq: 0.8, NetInPerReq: 0.01, NetOutPerReq: 0.01,
				BaseMemMB: 500, ServiceTime: 0.01, QueueCap: 400,
				Downstream: []Edge{{To: "db", Kind: EdgeBalanced, Weight: 1}},
			},
			{
				Name: "db", CPUCores: 2, MemoryMB: 3072, NetMBps: 100, DiskMBps: 60,
				CPUCostPerReq: 0.010, MemPerReq: 1.0, NetInPerReq: 0.005, NetOutPerReq: 0.01,
				DiskReadPerReq: 0.05, DiskWritePerReq: 0.02,
				BaseMemMB: 800, ServiceTime: 0.02, QueueCap: 500,
			},
		},
		Entries: []string{"web"},
		Style:   RequestReply,
		SLO:     SLOSpec{Kind: SLOLatency, Threshold: 0.1},
		Trace:   trace,
	}
}

func TestValidateSpec(t *testing.T) {
	good := threeTier(workload.Constant(50))
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*AppSpec)
	}{
		{"no components", func(a *AppSpec) { a.Components = nil }},
		{"dup name", func(a *AppSpec) { a.Components = append(a.Components, ComponentSpec{Name: "web"}) }},
		{"unknown edge", func(a *AppSpec) {
			a.Components[0].Downstream = append(a.Components[0].Downstream, Edge{To: "ghost"})
		}},
		{"self edge", func(a *AppSpec) {
			a.Components[0].Downstream = append(a.Components[0].Downstream, Edge{To: "web"})
		}},
		{"no entries", func(a *AppSpec) { a.Entries = nil }},
		{"bad entry", func(a *AppSpec) { a.Entries = []string{"ghost"} }},
		{"no trace", func(a *AppSpec) { a.Trace = nil }},
		{"unnamed", func(a *AppSpec) { a.Components[0].Name = "" }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := threeTier(workload.Constant(50))
			tt.mutate(&spec)
			if err := spec.Validate(); err == nil {
				t.Error("invalid spec accepted")
			}
		})
	}
}

func TestSteadyStateHealthy(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(60)), 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(300)
	if _, found := sim.FirstViolation(30, 3); found {
		lat := sim.LatencySeries()
		t.Fatalf("healthy system violated SLO; final latency=%v", lat.At(lat.Len()-1))
	}
	// Queues must stay bounded.
	for _, name := range sim.Components() {
		c, _ := sim.Component(name)
		if c.Queue > float64(c.Spec.QueueCap)/2 {
			t.Errorf("%s queue grew to %v in steady state", name, c.Queue)
		}
	}
	// Metrics recorded for every tick.
	s, err := sim.Series("db", metric.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 300 {
		t.Errorf("history length = %d, want 300", s.Len())
	}
}

func TestWorkloadDrivesMetrics(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(30)), 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(100)
	low, _ := sim.Series("web", metric.NetIn)
	sim2, err := New(threeTier(workload.Constant(90)), 1)
	if err != nil {
		t.Fatal(err)
	}
	sim2.Step(100)
	high, _ := sim2.Series("web", metric.NetIn)
	lm := mean(low.Values()[50:])
	hm := mean(high.Values()[50:])
	if hm <= lm*1.5 {
		t.Errorf("net_in should scale with workload: low=%v high=%v", lm, hm)
	}
}

func mean(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func TestCPUHogCausesViolationAndBackPressure(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(60)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewCPUHog(120, 1.9, "db")); err != nil {
		t.Fatal(err)
	}
	sim.Step(400)
	tv, found := sim.FirstViolation(120, 3)
	if !found {
		t.Fatal("CPU hog at db should violate the SLO")
	}
	if tv < 120 {
		t.Fatalf("violation at %d, before injection", tv)
	}
	// The db CPU metric must jump right at injection.
	dbCPU, _ := sim.Series("db", metric.CPU)
	before := mean(dbCPU.Values()[60:110])
	after := mean(dbCPU.Values()[125:175])
	if after < before+20 {
		t.Errorf("db CPU should jump under hog: before=%v after=%v", before, after)
	}
	// Back-pressure: the app tier's queues (memory metric) must rise after
	// injection, i.e. the anomaly propagates upstream.
	appMem, _ := sim.Series("app1", metric.Memory)
	bm := mean(appMem.Values()[60:110])
	am := mean(appMem.Values()[200:300])
	if am < bm*1.1 {
		t.Errorf("app1 memory should grow via back-pressure: before=%v after=%v", bm, am)
	}
}

func TestBackPressureTiming(t *testing.T) {
	// The db's own symptom must precede the upstream symptom by at least a
	// couple of seconds — the ordering FChain's localization depends on.
	sim, err := New(threeTier(workload.Constant(60)), 3)
	if err != nil {
		t.Fatal(err)
	}
	const inject = 100
	if err := sim.Inject(NewCPUHog(inject, 1.9, "db")); err != nil {
		t.Fatal(err)
	}
	sim.Step(300)
	dbCPU, _ := sim.Series("db", metric.CPU)
	webMem, _ := sim.Series("web", metric.Memory)
	dbOnset := firstExceed(dbCPU.Values(), inject, mean(dbCPU.Values()[40:90])+15)
	webOnset := firstExceed(webMem.Values(), inject, mean(webMem.Values()[40:90])*1.10)
	if dbOnset < 0 || webOnset < 0 {
		t.Fatalf("onsets not found: db=%d web=%d", dbOnset, webOnset)
	}
	if webOnset <= dbOnset {
		t.Errorf("web symptom (%d) should lag db symptom (%d)", webOnset, dbOnset)
	}
}

// firstExceed returns the first index >= from where vals exceeds thresh.
func firstExceed(vals []float64, from int, thresh float64) int {
	for i := from; i < len(vals); i++ {
		if vals[i] > thresh {
			return i
		}
	}
	return -1
}

func TestMemLeakGradualManifestation(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(60)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewMemLeak(100, 20, "db")); err != nil {
		t.Fatal(err)
	}
	sim.Step(600)
	tv, found := sim.FirstViolation(100, 3)
	if !found {
		t.Fatal("memory leak should eventually violate the SLO")
	}
	if tv < 130 {
		t.Errorf("memleak manifested at %d; should be gradual (>= 30s after injection)", tv)
	}
	memS, _ := sim.Series("db", metric.Memory)
	if memS.At(550) <= memS.At(90)*1.5 {
		t.Error("db memory metric should grow substantially under the leak")
	}
}

func TestNetHogLimitsEntry(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(60)), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewNetHog(100, 99.5, "web")); err != nil {
		t.Fatal(err)
	}
	sim.Step(300)
	if _, found := sim.FirstViolation(100, 3); !found {
		t.Fatal("net hog at web should violate the SLO")
	}
	webIn, _ := sim.Series("web", metric.NetIn)
	if mean(webIn.Values()[120:160]) < mean(webIn.Values()[40:90])*2 {
		t.Error("web net_in should spike under the hog")
	}
	// Downstream tiers see *less* traffic (downward change).
	dbCPU, _ := sim.Series("db", metric.CPU)
	if mean(dbCPU.Values()[150:250]) >= mean(dbCPU.Values()[40:90]) {
		t.Error("db CPU should drop when web is choked")
	}
}

func TestBottleneckFault(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(60)), 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewBottleneck(100, 0.05, "app1")); err != nil {
		t.Fatal(err)
	}
	sim.Step(300)
	if _, found := sim.FirstViolation(100, 3); !found {
		t.Error("bottleneck cap should violate the SLO")
	}
}

func TestLBBugSkewsLoad(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(60)), 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewLBBug(100, "web", map[string]float64{"app1": 0.95, "app2": 0.05}, 0)); err != nil {
		t.Fatal(err)
	}
	sim.Step(400)
	a1, _ := sim.Series("app1", metric.CPU)
	a2, _ := sim.Series("app2", metric.CPU)
	if mean(a1.Values()[150:250]) < mean(a2.Values()[150:250])*2 {
		t.Errorf("app1 should be far busier than app2 under the LB bug: %v vs %v",
			mean(a1.Values()[150:250]), mean(a2.Values()[150:250]))
	}
}

func TestInjectUnknownTarget(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(10)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewCPUHog(0, 1, "ghost")); err == nil {
		t.Error("injecting into unknown component should error")
	}
}

func TestScaleResourceValidation(t *testing.T) {
	// The online-validation primitive: scaling the right resource on the
	// true culprit relieves the violation; scaling an innocent component
	// does not.
	build := func() *Sim {
		sim, err := New(threeTier(workload.Constant(60)), 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Inject(NewCPUHog(100, 1.9, "db")); err != nil {
			t.Fatal(err)
		}
		sim.Step(200)
		return sim
	}

	culprit := build().Clone()
	if err := culprit.ScaleResource("db", metric.CPU, 3); err != nil {
		t.Fatal(err)
	}
	culprit.RunUntil(260)
	if r := culprit.ViolationRatio(230, 260); r > 0.3 {
		t.Errorf("scaling the culprit's CPU should clear the violation; ratio=%v", r)
	}

	innocent := build().Clone()
	if err := innocent.ScaleResource("web", metric.CPU, 3); err != nil {
		t.Fatal(err)
	}
	innocent.RunUntil(260)
	if r := innocent.ViolationRatio(230, 260); r < 0.7 {
		t.Errorf("scaling an innocent component should not clear the violation; ratio=%v", r)
	}
}

func TestScaleResourceErrors(t *testing.T) {
	sim, _ := New(threeTier(workload.Constant(10)), 1)
	if err := sim.ScaleResource("ghost", metric.CPU, 2); err == nil {
		t.Error("unknown component should error")
	}
	if err := sim.ScaleResource("db", metric.Kind(99), 2); err == nil {
		t.Error("invalid kind should error")
	}
	if err := sim.ScaleResource("db", metric.CPU, 0); err == nil {
		t.Error("zero factor should error")
	}
	if err := sim.ResetScaling("ghost"); err == nil {
		t.Error("reset on unknown component should error")
	}
}

func TestCloneIndependence(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(60)), 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewCPUHog(50, 1.9, "db")); err != nil {
		t.Fatal(err)
	}
	sim.Step(100)
	clone := sim.Clone()
	if err := clone.ScaleResource("db", metric.CPU, 4); err != nil {
		t.Fatal(err)
	}
	clone.Step(100)
	sim.Step(100)
	// The original must still be degraded, the clone recovered.
	if r := sim.ViolationRatio(150, 200); r < 0.5 {
		t.Errorf("original sim should remain violated, ratio=%v", r)
	}
	if r := clone.ViolationRatio(150, 200); r > 0.3 {
		t.Errorf("scaled clone should recover, ratio=%v", r)
	}
	// Histories diverge only after the clone point.
	a, _ := sim.Series("db", metric.CPU)
	b, _ := clone.Series("db", metric.CPU)
	for i := 0; i < 100; i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("pre-clone history differs at %d", i)
		}
	}
}

func TestSeriesErrors(t *testing.T) {
	sim, _ := New(threeTier(workload.Constant(10)), 1)
	if _, err := sim.Series("ghost", metric.CPU); err == nil {
		t.Error("unknown component should error")
	}
	if _, err := sim.Series("db", metric.Kind(0)); err == nil {
		t.Error("invalid kind should error")
	}
}

func TestDependencyTraceRequestReply(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(60)), 10)
	if err != nil {
		t.Fatal(err)
	}
	pkts := sim.DependencyTrace(300, 1)
	g := depgraph.Discover(pkts, depgraph.DiscoverConfig{})
	for _, e := range [][2]string{{"web", "app1"}, {"web", "app2"}, {"app1", "db"}, {"app2", "db"}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("discovery missed edge %s->%s; graph: %s", e[0], e[1], g)
		}
	}
}

func TestDependencyTraceStreaming(t *testing.T) {
	spec := threeTier(workload.Constant(60))
	spec.Style = Streaming
	sim, err := New(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	pkts := sim.DependencyTrace(120, 1)
	g := depgraph.Discover(pkts, depgraph.DiscoverConfig{})
	if !g.Empty() {
		t.Errorf("streaming trace should defeat discovery; graph: %s", g)
	}
}

func TestTopologyGraph(t *testing.T) {
	sim, _ := New(threeTier(workload.Constant(10)), 1)
	g := sim.TopologyGraph()
	if !g.HasEdge("web", "app1") || !g.HasEdge("app1", "db") {
		t.Errorf("topology graph wrong: %s", g)
	}
	if g.HasEdge("db", "app1") {
		t.Error("topology graph should be directed")
	}
}

func TestReverseTopoOrder(t *testing.T) {
	sim, _ := New(threeTier(workload.Constant(10)), 1)
	pos := make(map[string]int)
	for i, n := range sim.order {
		pos[n] = i
	}
	// Every component must appear after its downstream targets.
	for _, n := range sim.Components() {
		c, _ := sim.Component(n)
		for _, e := range c.Spec.Downstream {
			if pos[e.To] > pos[n] {
				t.Errorf("%s processed before its downstream %s", n, e.To)
			}
		}
	}
}

func TestProgressSLO(t *testing.T) {
	spec := threeTier(workload.Constant(60))
	spec.SLO = SLOSpec{Kind: SLOProgress, StallWindow: 30, StallFraction: 0.05}
	sim, err := New(spec, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewCPUHog(200, 1.998, "web")); err != nil {
		t.Fatal(err)
	}
	sim.Step(500)
	if _, found := sim.FirstViolation(0, 1); !found {
		t.Error("a hard stall should violate the progress SLO")
	}
	if tv, found := sim.FirstViolation(0, 1); found && tv < 200 {
		t.Errorf("progress violation at %d precedes the fault", tv)
	}
}

func TestMetricsNonNegativeAndFinite(t *testing.T) {
	sim, err := New(threeTier(workload.NewSynthetic(workload.NASA(), 600, 3)), 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewMemLeak(100, 30, "db")); err != nil {
		t.Fatal(err)
	}
	sim.Step(600)
	for _, name := range sim.Components() {
		for _, k := range metric.Kinds {
			s, err := sim.Series(name, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < s.Len(); i++ {
				v := s.At(i)
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s/%s[%d] = %v", name, k, i, v)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		sim, err := New(threeTier(workload.NewSynthetic(workload.NASA(), 400, 5)), 21)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Inject(NewCPUHog(100, 1.5, "db")); err != nil {
			t.Fatal(err)
		}
		sim.Step(400)
		s, _ := sim.Series("db", metric.CPU)
		return s.Values()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("simulation not deterministic at tick %d", i)
		}
	}
}

// joinApp builds src1 -> a -> j, src2 -> j, j -> sink with j a stream join.
func joinApp(trace workload.Trace) AppSpec {
	mk := func(name string, cost float64, down ...Edge) ComponentSpec {
		return ComponentSpec{
			Name: name, CPUCores: 2, MemoryMB: 2048, NetMBps: 200, DiskMBps: 100,
			CPUCostPerReq: cost, MemPerReq: 0.2, NetInPerReq: 0.002, NetOutPerReq: 0.002,
			BaseMemMB: 200, ServiceTime: 0.002, QueueCap: 300, Downstream: down,
		}
	}
	j := mk("j", 0.004, Edge{To: "sink", Kind: EdgeAll})
	j.Join = true
	return AppSpec{
		Name: "test-join",
		Components: []ComponentSpec{
			mk("src1", 0.003, Edge{To: "a", Kind: EdgeAll}),
			mk("a", 0.004, Edge{To: "j", Kind: EdgeAll}),
			mk("src2", 0.003, Edge{To: "j", Kind: EdgeAll}),
			j,
			mk("sink", 0.002),
		},
		Entries: []string{"src1", "src2"},
		Style:   Streaming,
		SLO:     SLOSpec{Kind: SLOLatency, Threshold: 0.1},
		Trace:   trace,
	}
}

func TestJoinStarvationBackPressure(t *testing.T) {
	// Slowing "a" starves the join's a-input; tuples from src2 pile up in
	// the join, eventually back-pressuring src2 — the Fig. 2 mechanism
	// (PE3 -> PE6 -> PE2).
	sim, err := New(joinApp(workload.Constant(100)), 14)
	if err != nil {
		t.Fatal(err)
	}
	const inject = 100
	if err := sim.Inject(NewCPUHog(inject, 1.95, "a")); err != nil {
		t.Fatal(err)
	}
	sim.Step(400)
	// The join's queue (src2 side) must fill.
	j, _ := sim.Component("j")
	if j.SrcQueue["src2"] < 100 {
		t.Errorf("join src2 queue = %v, want large (starved join)", j.SrcQueue["src2"])
	}
	// src2's queue must eventually grow via back-pressure.
	src2, _ := sim.Component("src2")
	if src2.Queue < 50 {
		t.Errorf("src2 queue = %v, want back-pressured", src2.Queue)
	}
	// Ordering: a's CPU symptom precedes src2's memory symptom.
	aCPU, _ := sim.Series("a", metric.CPU)
	src2Mem, _ := sim.Series("src2", metric.Memory)
	aOnset := firstExceed(aCPU.Values(), inject, mean(aCPU.Values()[40:90])+20)
	s2Onset := firstExceed(src2Mem.Values(), inject, mean(src2Mem.Values()[40:90])*1.1)
	if aOnset < 0 || s2Onset < 0 {
		t.Fatalf("onsets not found: a=%d src2=%d", aOnset, s2Onset)
	}
	if s2Onset <= aOnset+1 {
		t.Errorf("src2 symptom (%d) should clearly lag a's (%d)", s2Onset, aOnset)
	}
}

func TestJoinHealthySteadyState(t *testing.T) {
	sim, err := New(joinApp(workload.Constant(100)), 15)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(300)
	if _, found := sim.FirstViolation(30, 3); found {
		t.Error("balanced join inputs should not violate the SLO")
	}
	j, _ := sim.Component("j")
	if j.Queue > 150 {
		t.Errorf("join queue grew to %v in steady state", j.Queue)
	}
}
