package cloudsim

import (
	"testing"

	"fchain/internal/metric"
	"fchain/internal/workload"
)

func TestDiskHogRampIsGradual(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(60)), 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewDiskHog(100, 50, 200, "db")); err != nil {
		t.Fatal(err)
	}
	sim.Step(400)
	dw, _ := sim.Series("db", metric.DiskWrite)
	early := mean(dw.Values()[110:130]) // 10-30s into a 200s ramp
	late := mean(dw.Values()[320:380])  // past the ramp
	base := mean(dw.Values()[40:90])
	if early > base+0.3*(late-base) {
		t.Errorf("ramp should still be shallow early on: base=%v early=%v late=%v", base, early, late)
	}
	if late < base+20 {
		t.Errorf("ramp should reach its peak: base=%v late=%v", base, late)
	}
}

func TestDiskHogRampDefault(t *testing.T) {
	f := NewDiskHog(0, 10, 0, "x")
	if f.RampSec <= 0 {
		t.Error("non-positive ramp must be defaulted")
	}
}

func TestOffloadBugAsymmetry(t *testing.T) {
	sim, err := New(threeTier(workload.Constant(60)), 41)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Inject(NewOffloadBug(100, "app1", "app2", 0.05)); err != nil {
		t.Fatal(err)
	}
	sim.Step(300)
	a1, _ := sim.Series("app1", metric.CPU)
	a2, _ := sim.Series("app2", metric.CPU)
	a1Before, a1After := mean(a1.Values()[40:90]), mean(a1.Values()[150:250])
	a2Before, a2After := mean(a2.Values()[40:90]), mean(a2.Values()[150:250])
	if a1After <= a1Before {
		t.Errorf("overloaded server CPU should rise: %v -> %v", a1Before, a1After)
	}
	if a2After >= a2Before {
		t.Errorf("idle server CPU should drop: %v -> %v", a2Before, a2After)
	}
}

func TestLBBugGroundTruth(t *testing.T) {
	f := NewLBBug(0, "web", map[string]float64{"app1": 0.9, "app2": 0.1}, 2)
	truth := f.GroundTruth()
	if len(truth) != 2 || truth[0] != "app1" || truth[1] != "app2" {
		t.Errorf("GroundTruth = %v, want sorted backends", truth)
	}
	// Perturbation targets include the balancer and the overloaded backend.
	targets := f.Targets()
	hasWeb, hasApp1 := false, false
	for _, c := range targets {
		if c == "web" {
			hasWeb = true
		}
		if c == "app1" {
			hasApp1 = true
		}
	}
	if !hasWeb || !hasApp1 {
		t.Errorf("Targets = %v, want balancer + overloaded backend", targets)
	}
	// Without a slowdown only the balancer is perturbed.
	plain := NewLBBug(0, "web", map[string]float64{"a": 1, "b": 1}, 0)
	if len(plain.Targets()) != 1 {
		t.Errorf("plain LBBug targets = %v, want just the balancer", plain.Targets())
	}
}

func TestConcurrentName(t *testing.T) {
	if got := ConcurrentName("memleak"); got != "concurrent-memleak" {
		t.Errorf("ConcurrentName = %q", got)
	}
	if got := ConcurrentName("concurrent-memleak"); got != "concurrent-memleak" {
		t.Errorf("ConcurrentName should be idempotent, got %q", got)
	}
}

func TestFaultAccessors(t *testing.T) {
	f := NewMemLeak(42, 10, "a", "b")
	if f.Name() != "memleak" || f.Start() != 42 {
		t.Errorf("accessors wrong: %s %d", f.Name(), f.Start())
	}
	targets := f.Targets()
	targets[0] = "mutated"
	if f.Targets()[0] != "a" {
		t.Error("Targets must return a copy")
	}
}
