package cloudsim

import (
	"math"
	"sort"
	"strings"
)

// baseFault carries the common fault fields. Faults are stateless: every
// perturbation is a pure function of (tick, component state), so Sim.Clone
// stays cheap and exact.
type baseFault struct {
	name    string
	targets []string
	start   int64
}

func (b baseFault) Name() string      { return b.name }
func (b baseFault) Targets() []string { return append([]string(nil), b.targets...) }
func (b baseFault) Start() int64      { return b.start }

// MemLeak models a memory-leak bug: the target's resident memory grows by
// RateMB every second. Manifestation is gradual — once usage approaches the
// VM's memory capacity the simulator's pressure model slows service down
// (paper: RUBiS MemLeak at the database, System S MemLeak in a PE, Hadoop
// concurrent MemLeak in all map tasks).
type MemLeak struct {
	baseFault
	RateMB float64
}

// NewMemLeak injects a memory leak of rateMB MB/s into the targets at tick
// start.
func NewMemLeak(start int64, rateMB float64, targets ...string) *MemLeak {
	return &MemLeak{baseFault: baseFault{name: "memleak", targets: targets, start: start}, RateMB: rateMB}
}

// Apply implements Fault.
func (f *MemLeak) Apply(t int64, c *Comp) {
	c.LeakMB += f.RateMB
}

// CPUHog models a CPU-bound co-located program (or an infinite-loop bug)
// competing for the target's cores. Manifestation is immediate.
type CPUHog struct {
	baseFault
	Cores float64
}

// NewCPUHog injects a hog consuming the given cores on each target.
func NewCPUHog(start int64, cores float64, targets ...string) *CPUHog {
	return &CPUHog{baseFault: baseFault{name: "cpuhog", targets: targets, start: start}, Cores: cores}
}

// Apply implements Fault.
func (f *CPUHog) Apply(t int64, c *Comp) {
	c.HogCPU += f.Cores
}

// NetHog models an httperf-style flood of requests at the target,
// saturating its inbound network bandwidth.
type NetHog struct {
	baseFault
	MBps float64
}

// NewNetHog injects hostile inbound traffic of mbps MB/s.
func NewNetHog(start int64, mbps float64, targets ...string) *NetHog {
	return &NetHog{baseFault: baseFault{name: "nethog", targets: targets, start: start}, MBps: mbps}
}

// Apply implements Fault.
func (f *NetHog) Apply(t int64, c *Comp) {
	c.HogNetIn += f.MBps
}

// DiskHog models a disk-I/O-intensive program in the host's Domain 0
// stealing disk bandwidth from the target VM. It ramps up slowly, which is
// why the paper needs a longer look-back window (500 s) for this fault.
type DiskHog struct {
	baseFault
	MBps    float64 // peak stolen bandwidth
	RampSec float64 // seconds to reach the peak
}

// NewDiskHog injects a disk hog reaching mbps MB/s after rampSec seconds.
func NewDiskHog(start int64, mbps, rampSec float64, targets ...string) *DiskHog {
	if rampSec <= 0 {
		rampSec = 1
	}
	return &DiskHog{baseFault: baseFault{name: "diskhog", targets: targets, start: start}, MBps: mbps, RampSec: rampSec}
}

// Apply implements Fault.
func (f *DiskHog) Apply(t int64, c *Comp) {
	frac := float64(t-f.start) / f.RampSec
	if frac > 1 {
		frac = 1
	}
	amount := f.MBps * frac
	c.HogDiskRead += amount * 0.3
	c.HogDiskWrite += amount * 0.7
}

// Bottleneck models an operator error that sets a low CPU cap on the target
// VM (paper: System S bottleneck fault via a low CPU cap over a PE).
type Bottleneck struct {
	baseFault
	CapFraction float64 // remaining fraction of CPU, e.g. 0.3
}

// NewBottleneck caps the targets' CPU at capFraction of nominal.
func NewBottleneck(start int64, capFraction float64, targets ...string) *Bottleneck {
	if capFraction <= 0 {
		capFraction = 0.3
	}
	return &Bottleneck{baseFault: baseFault{name: "bottleneck", targets: targets, start: start}, CapFraction: capFraction}
}

// Apply implements Fault.
func (f *Bottleneck) Apply(t int64, c *Comp) {
	c.CPUCapFactor = math.Min(c.CPUCapFactor, f.CapFraction)
}

// GroundTruther lets a fault report a ground-truth faulty set that differs
// from the components it perturbs: the LB bug is applied at the balancer,
// but the components manifesting the concurrent fault — and the ones the
// paper scores against — are the unevenly loaded backends.
type GroundTruther interface {
	GroundTruth() []string
}

// LBBug models the mod_jk 1.2.30 load-balancing bug: the web tier
// dispatches requests unevenly across the application servers. The paper
// classifies it as a multi-component concurrent fault: both application
// servers manifest it together (one overloaded, one starved), so they form
// the ground-truth faulty set while the perturbation is applied at the
// balancer.
type LBBug struct {
	baseFault
	// Weights overrides the balanced-edge weights (target -> weight).
	Weights map[string]float64
	// OverloadSlowdown is the service-time multiplier suffered by the
	// backend that receives the skewed majority of the traffic (mod_jk
	// 1.2.30 additionally caused retry churn on the overloaded worker);
	// 0 disables it.
	OverloadSlowdown float64
	balancer         string
	heaviest         string
}

var _ GroundTruther = (*LBBug)(nil)

// NewLBBug skews the balancer's edge weights from tick start and slows the
// majority-share backend down by overloadSlowdown (1 or 0 = no slowdown).
func NewLBBug(start int64, balancer string, weights map[string]float64, overloadSlowdown float64) *LBBug {
	w := make(map[string]float64, len(weights))
	heaviest, best := "", -1.0
	for k, v := range weights {
		w[k] = v
		if v > best {
			heaviest, best = k, v
		}
	}
	targets := []string{balancer}
	if overloadSlowdown > 1 && heaviest != "" {
		targets = append(targets, heaviest)
	}
	return &LBBug{
		baseFault:        baseFault{name: "lbbug", targets: targets, start: start},
		Weights:          w,
		OverloadSlowdown: overloadSlowdown,
		balancer:         balancer,
		heaviest:         heaviest,
	}
}

// GroundTruth implements GroundTruther: the backends whose load the bug
// skews.
func (f *LBBug) GroundTruth() []string {
	out := make([]string, 0, len(f.Weights))
	for k := range f.Weights {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Apply implements Fault.
func (f *LBBug) Apply(t int64, c *Comp) {
	switch c.Spec.Name {
	case f.balancer:
		if c.WeightOverride == nil {
			c.WeightOverride = make(map[string]float64, len(f.Weights))
		}
		for k, v := range f.Weights {
			c.WeightOverride[k] = v
		}
	case f.heaviest:
		if f.OverloadSlowdown > 1 {
			c.Slowdown *= f.OverloadSlowdown
		}
	}
}

// OffloadBug models JBoss bug JIRA #JBAS-1442: application server 1 tries
// to offload EJBs to application server 2, but the remote lookup returns
// the local binding, so the work stays on server 1 (which overloads) while
// server 2 sits anomalously idle. Both application servers manifest
// abnormal behaviour concurrently, so the paper treats it as a
// multi-component fault.
type OffloadBug struct {
	baseFault
	// ExtraCPUPerReq is the added per-request cost on the overloaded
	// server (the failed remote lookups and duplicated EJB work).
	ExtraCPUPerReq float64
	overloaded     string
	idle           string
}

// NewOffloadBug injects the bug: overloaded keeps all the work (with extra
// per-request cost), idle receives (almost) none.
func NewOffloadBug(start int64, overloaded, idle string, extraCPUPerReq float64) *OffloadBug {
	return &OffloadBug{
		baseFault:      baseFault{name: "offloadbug", targets: []string{overloaded, idle}, start: start},
		ExtraCPUPerReq: extraCPUPerReq,
		overloaded:     overloaded,
		idle:           idle,
	}
}

// Apply implements Fault.
func (f *OffloadBug) Apply(t int64, c *Comp) {
	if c.Spec.Name == f.overloaded {
		c.ExtraCPUPerReq += f.ExtraCPUPerReq
	}
	// The idle server's perturbation is indirect: the balancer keeps
	// routing to it, but the overloaded server's misdirected EJB work is
	// modelled as the extra cost above. To surface the paper's "both app
	// servers abnormal" symptom, the idle server sheds its share: requests
	// routed to it bounce to the overloaded server. We model this by
	// making the idle server forward-heavy and cheap, via a service
	// speedup (its real work left with server 1).
	if c.Spec.Name == f.idle {
		c.Slowdown *= 0.25 // anomalously fast/idle: a distinct metric drop
		c.ExtraCPUPerReq -= c.Spec.CPUCostPerReq * 0.8
	}
}

// GrayDisk models a gray failure: a disk that is intermittently slow. The
// fault duty-cycles — during on-phases it steals disk bandwidth and inflates
// service time (I/O waits), during off-phases the component fully recovers —
// so the SLO violation flaps and naive detectors that expect a persistent
// shift miss it.
type GrayDisk struct {
	baseFault
	MBps      float64 // stolen disk bandwidth during on-phases
	Slowdown  float64 // service-time multiplier during on-phases
	PeriodSec int64   // duty cycle length
	OnSec     int64   // slow-phase length within each cycle
}

// NewGrayDisk injects an intermittently slow disk: every periodSec, the
// targets spend onSec with mbps of disk bandwidth stolen and service slowed
// by slowdown.
func NewGrayDisk(start int64, mbps, slowdown float64, periodSec, onSec int64, targets ...string) *GrayDisk {
	if periodSec < 2 {
		periodSec = 2
	}
	if onSec < 1 {
		onSec = 1
	}
	if onSec > periodSec {
		onSec = periodSec
	}
	return &GrayDisk{
		baseFault: baseFault{name: "gray-disk", targets: targets, start: start},
		MBps:      mbps, Slowdown: slowdown, PeriodSec: periodSec, OnSec: onSec,
	}
}

// Apply implements Fault.
func (f *GrayDisk) Apply(t int64, c *Comp) {
	if (t-f.start)%f.PeriodSec >= f.OnSec {
		return
	}
	c.HogDiskRead += 0.6 * f.MBps
	c.HogDiskWrite += 0.4 * f.MBps
	if f.Slowdown > 1 {
		c.Slowdown *= f.Slowdown
	}
}

// RetryStorm models a cascading retry storm: a slowdown at one component
// whose callers retry timed-out requests, amplifying the load on the
// already-slow component and burning CPU (and network chatter) on the retry
// bookkeeping upstream — load amplification travelling along reversed
// dependency edges. The ground truth is the slow root plus its retrying
// callers, all of which genuinely manifest the fault.
type RetryStorm struct {
	baseFault
	RootSlowdown float64 // service-time multiplier at the slow root
	RetryRate    float64 // extra retried requests per second landing on the root
	RetryCPUFrac float64 // upstream per-request CPU inflation (fraction of its own cost)
	RetryNetMBps float64 // upstream retry chatter (inbound MB/s)
	root         string
}

// NewRetryStorm injects a slowdown at root; each upstream caller
// retransmits, adding retryRate req/s onto the root and inflating every
// upstream's per-request CPU cost by retryCPUFrac of its own cost.
func NewRetryStorm(start int64, root string, upstreams []string, rootSlowdown, retryRate, retryCPUFrac, retryNetMBps float64) *RetryStorm {
	targets := append([]string{root}, upstreams...)
	return &RetryStorm{
		baseFault:    baseFault{name: "retry-storm", targets: targets, start: start},
		RootSlowdown: rootSlowdown,
		RetryRate:    retryRate,
		RetryCPUFrac: retryCPUFrac,
		RetryNetMBps: retryNetMBps,
		root:         root,
	}
}

// Apply implements Fault.
func (f *RetryStorm) Apply(t int64, c *Comp) {
	if c.Spec.Name == f.root {
		if f.RootSlowdown > 1 {
			c.Slowdown *= f.RootSlowdown
		}
		// Retries are genuine requests: they arrive like external load and
		// are merged into the queue (subject to capacity) this tick.
		c.arrivals += f.RetryRate
		return
	}
	c.ExtraCPUPerReq += f.RetryCPUFrac * c.Spec.CPUCostPerReq
	c.HogNetIn += f.RetryNetMBps
}

// WorkloadSurge is a false-alarm trap, not a fault: a legitimate traffic
// surge at the entry components. Every component works harder and the SLO
// may be violated, but no component misbehaves — the ground truth is empty,
// and a localizer is scored on *not* blaming anyone (FChain's external-
// factor rule, paper §II-C).
type WorkloadSurge struct {
	baseFault
	ExtraRate float64 // added external arrivals per second, split over targets
	RampSec   int64   // seconds to reach the full surge (0 = instant)
}

var _ GroundTruther = (*WorkloadSurge)(nil)

// NewWorkloadSurge adds extraRate req/s of legitimate traffic at the entry
// components, ramping linearly over rampSec.
func NewWorkloadSurge(start int64, extraRate float64, rampSec int64, entries ...string) *WorkloadSurge {
	return &WorkloadSurge{
		baseFault: baseFault{name: "workload-surge", targets: entries, start: start},
		ExtraRate: extraRate,
		RampSec:   rampSec,
	}
}

// GroundTruth implements GroundTruther: nobody is at fault.
func (f *WorkloadSurge) GroundTruth() []string { return []string{} }

// Apply implements Fault.
func (f *WorkloadSurge) Apply(t int64, c *Comp) {
	frac := 1.0
	if f.RampSec > 0 {
		frac = float64(t-f.start+1) / float64(f.RampSec)
		if frac > 1 {
			frac = 1
		}
	}
	c.arrivals += f.ExtraRate * frac / float64(len(f.targets))
}

// DegradeWaves is a pathological detector-validation fault in the spirit of
// a reject-all handler: every component degrades, in staggered waves, so a
// localization pipeline must (a) detect changepoints everywhere and (b) not
// collapse the diagnosis into the external-factor verdict — the onset spread
// across waves exceeds the external-factor window by construction.
type DegradeWaves struct {
	baseFault
	Slowdown   float64 // service-time multiplier once a component's wave starts
	StaggerSec int64   // delay between consecutive waves
	waveOf     map[string]int64
}

// NewDegradeWaves degrades every component in waves: waves[i] starts at
// start + i*staggerSec with the given slowdown.
func NewDegradeWaves(start int64, slowdown float64, staggerSec int64, waves [][]string) *DegradeWaves {
	var targets []string
	waveOf := make(map[string]int64)
	for i, wave := range waves {
		for _, name := range wave {
			targets = append(targets, name)
			waveOf[name] = int64(i)
		}
	}
	if staggerSec < 1 {
		staggerSec = 1
	}
	return &DegradeWaves{
		baseFault:  baseFault{name: "everything-degrades", targets: targets, start: start},
		Slowdown:   slowdown,
		StaggerSec: staggerSec,
		waveOf:     waveOf,
	}
}

// Apply implements Fault.
func (f *DegradeWaves) Apply(t int64, c *Comp) {
	if t >= f.start+f.waveOf[c.Spec.Name]*f.StaggerSec {
		c.Slowdown *= f.Slowdown
	}
}

// Named wraps a fault with a different label and (optionally) an explicit
// ground truth, so one fault primitive can back several catalog templates
// (e.g. a CPUHog across a host's tenants reported as "noisy-neighbor" with
// all co-hosted components as ground truth).
type Named struct {
	Fault
	Label string
	Truth []string // nil = defer to the wrapped fault
}

var _ GroundTruther = (*Named)(nil)

// Name implements Fault.
func (n *Named) Name() string { return n.Label }

// GroundTruth implements GroundTruther, deferring to the wrapped fault when
// no explicit truth is set.
func (n *Named) GroundTruth() []string {
	if n.Truth != nil {
		return append([]string(nil), n.Truth...)
	}
	if gt, ok := n.Fault.(GroundTruther); ok {
		return gt.GroundTruth()
	}
	return n.Fault.Targets()
}

// ConcurrentName builds the conventional "concurrent-<fault>" label used in
// the evaluation for multi-target variants.
func ConcurrentName(name string) string {
	if strings.HasPrefix(name, "concurrent-") {
		return name
	}
	return "concurrent-" + name
}
