package cloudsim

import (
	"math"
	"sort"
	"strings"
)

// baseFault carries the common fault fields. Faults are stateless: every
// perturbation is a pure function of (tick, component state), so Sim.Clone
// stays cheap and exact.
type baseFault struct {
	name    string
	targets []string
	start   int64
}

func (b baseFault) Name() string      { return b.name }
func (b baseFault) Targets() []string { return append([]string(nil), b.targets...) }
func (b baseFault) Start() int64      { return b.start }

// MemLeak models a memory-leak bug: the target's resident memory grows by
// RateMB every second. Manifestation is gradual — once usage approaches the
// VM's memory capacity the simulator's pressure model slows service down
// (paper: RUBiS MemLeak at the database, System S MemLeak in a PE, Hadoop
// concurrent MemLeak in all map tasks).
type MemLeak struct {
	baseFault
	RateMB float64
}

// NewMemLeak injects a memory leak of rateMB MB/s into the targets at tick
// start.
func NewMemLeak(start int64, rateMB float64, targets ...string) *MemLeak {
	return &MemLeak{baseFault: baseFault{name: "memleak", targets: targets, start: start}, RateMB: rateMB}
}

// Apply implements Fault.
func (f *MemLeak) Apply(t int64, c *Comp) {
	c.LeakMB += f.RateMB
}

// CPUHog models a CPU-bound co-located program (or an infinite-loop bug)
// competing for the target's cores. Manifestation is immediate.
type CPUHog struct {
	baseFault
	Cores float64
}

// NewCPUHog injects a hog consuming the given cores on each target.
func NewCPUHog(start int64, cores float64, targets ...string) *CPUHog {
	return &CPUHog{baseFault: baseFault{name: "cpuhog", targets: targets, start: start}, Cores: cores}
}

// Apply implements Fault.
func (f *CPUHog) Apply(t int64, c *Comp) {
	c.HogCPU += f.Cores
}

// NetHog models an httperf-style flood of requests at the target,
// saturating its inbound network bandwidth.
type NetHog struct {
	baseFault
	MBps float64
}

// NewNetHog injects hostile inbound traffic of mbps MB/s.
func NewNetHog(start int64, mbps float64, targets ...string) *NetHog {
	return &NetHog{baseFault: baseFault{name: "nethog", targets: targets, start: start}, MBps: mbps}
}

// Apply implements Fault.
func (f *NetHog) Apply(t int64, c *Comp) {
	c.HogNetIn += f.MBps
}

// DiskHog models a disk-I/O-intensive program in the host's Domain 0
// stealing disk bandwidth from the target VM. It ramps up slowly, which is
// why the paper needs a longer look-back window (500 s) for this fault.
type DiskHog struct {
	baseFault
	MBps    float64 // peak stolen bandwidth
	RampSec float64 // seconds to reach the peak
}

// NewDiskHog injects a disk hog reaching mbps MB/s after rampSec seconds.
func NewDiskHog(start int64, mbps, rampSec float64, targets ...string) *DiskHog {
	if rampSec <= 0 {
		rampSec = 1
	}
	return &DiskHog{baseFault: baseFault{name: "diskhog", targets: targets, start: start}, MBps: mbps, RampSec: rampSec}
}

// Apply implements Fault.
func (f *DiskHog) Apply(t int64, c *Comp) {
	frac := float64(t-f.start) / f.RampSec
	if frac > 1 {
		frac = 1
	}
	amount := f.MBps * frac
	c.HogDiskRead += amount * 0.3
	c.HogDiskWrite += amount * 0.7
}

// Bottleneck models an operator error that sets a low CPU cap on the target
// VM (paper: System S bottleneck fault via a low CPU cap over a PE).
type Bottleneck struct {
	baseFault
	CapFraction float64 // remaining fraction of CPU, e.g. 0.3
}

// NewBottleneck caps the targets' CPU at capFraction of nominal.
func NewBottleneck(start int64, capFraction float64, targets ...string) *Bottleneck {
	if capFraction <= 0 {
		capFraction = 0.3
	}
	return &Bottleneck{baseFault: baseFault{name: "bottleneck", targets: targets, start: start}, CapFraction: capFraction}
}

// Apply implements Fault.
func (f *Bottleneck) Apply(t int64, c *Comp) {
	c.CPUCapFactor = math.Min(c.CPUCapFactor, f.CapFraction)
}

// GroundTruther lets a fault report a ground-truth faulty set that differs
// from the components it perturbs: the LB bug is applied at the balancer,
// but the components manifesting the concurrent fault — and the ones the
// paper scores against — are the unevenly loaded backends.
type GroundTruther interface {
	GroundTruth() []string
}

// LBBug models the mod_jk 1.2.30 load-balancing bug: the web tier
// dispatches requests unevenly across the application servers. The paper
// classifies it as a multi-component concurrent fault: both application
// servers manifest it together (one overloaded, one starved), so they form
// the ground-truth faulty set while the perturbation is applied at the
// balancer.
type LBBug struct {
	baseFault
	// Weights overrides the balanced-edge weights (target -> weight).
	Weights map[string]float64
	// OverloadSlowdown is the service-time multiplier suffered by the
	// backend that receives the skewed majority of the traffic (mod_jk
	// 1.2.30 additionally caused retry churn on the overloaded worker);
	// 0 disables it.
	OverloadSlowdown float64
	balancer         string
	heaviest         string
}

var _ GroundTruther = (*LBBug)(nil)

// NewLBBug skews the balancer's edge weights from tick start and slows the
// majority-share backend down by overloadSlowdown (1 or 0 = no slowdown).
func NewLBBug(start int64, balancer string, weights map[string]float64, overloadSlowdown float64) *LBBug {
	w := make(map[string]float64, len(weights))
	heaviest, best := "", -1.0
	for k, v := range weights {
		w[k] = v
		if v > best {
			heaviest, best = k, v
		}
	}
	targets := []string{balancer}
	if overloadSlowdown > 1 && heaviest != "" {
		targets = append(targets, heaviest)
	}
	return &LBBug{
		baseFault:        baseFault{name: "lbbug", targets: targets, start: start},
		Weights:          w,
		OverloadSlowdown: overloadSlowdown,
		balancer:         balancer,
		heaviest:         heaviest,
	}
}

// GroundTruth implements GroundTruther: the backends whose load the bug
// skews.
func (f *LBBug) GroundTruth() []string {
	out := make([]string, 0, len(f.Weights))
	for k := range f.Weights {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Apply implements Fault.
func (f *LBBug) Apply(t int64, c *Comp) {
	switch c.Spec.Name {
	case f.balancer:
		if c.WeightOverride == nil {
			c.WeightOverride = make(map[string]float64, len(f.Weights))
		}
		for k, v := range f.Weights {
			c.WeightOverride[k] = v
		}
	case f.heaviest:
		if f.OverloadSlowdown > 1 {
			c.Slowdown *= f.OverloadSlowdown
		}
	}
}

// OffloadBug models JBoss bug JIRA #JBAS-1442: application server 1 tries
// to offload EJBs to application server 2, but the remote lookup returns
// the local binding, so the work stays on server 1 (which overloads) while
// server 2 sits anomalously idle. Both application servers manifest
// abnormal behaviour concurrently, so the paper treats it as a
// multi-component fault.
type OffloadBug struct {
	baseFault
	// ExtraCPUPerReq is the added per-request cost on the overloaded
	// server (the failed remote lookups and duplicated EJB work).
	ExtraCPUPerReq float64
	overloaded     string
	idle           string
}

// NewOffloadBug injects the bug: overloaded keeps all the work (with extra
// per-request cost), idle receives (almost) none.
func NewOffloadBug(start int64, overloaded, idle string, extraCPUPerReq float64) *OffloadBug {
	return &OffloadBug{
		baseFault:      baseFault{name: "offloadbug", targets: []string{overloaded, idle}, start: start},
		ExtraCPUPerReq: extraCPUPerReq,
		overloaded:     overloaded,
		idle:           idle,
	}
}

// Apply implements Fault.
func (f *OffloadBug) Apply(t int64, c *Comp) {
	if c.Spec.Name == f.overloaded {
		c.ExtraCPUPerReq += f.ExtraCPUPerReq
	}
	// The idle server's perturbation is indirect: the balancer keeps
	// routing to it, but the overloaded server's misdirected EJB work is
	// modelled as the extra cost above. To surface the paper's "both app
	// servers abnormal" symptom, the idle server sheds its share: requests
	// routed to it bounce to the overloaded server. We model this by
	// making the idle server forward-heavy and cheap, via a service
	// speedup (its real work left with server 1).
	if c.Spec.Name == f.idle {
		c.Slowdown *= 0.25 // anomalously fast/idle: a distinct metric drop
		c.ExtraCPUPerReq -= c.Spec.CPUCostPerReq * 0.8
	}
}

// ConcurrentName builds the conventional "concurrent-<fault>" label used in
// the evaluation for multi-target variants.
func ConcurrentName(name string) string {
	if strings.HasPrefix(name, "concurrent-") {
		return name
	}
	return "concurrent-" + name
}
