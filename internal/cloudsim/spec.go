// Package cloudsim is a discrete-time simulator of distributed applications
// running in guest VMs on a shared cloud, standing in for the paper's
// Xen/VCL testbed.
//
// FChain is a black-box system: it consumes only the six per-VM system
// metrics (CPU, memory, net in/out, disk read/write) sampled at 1 s. The
// simulator therefore has one job — produce those metric streams with the
// dynamics that matter to fault localization:
//
//   - workload-driven normal fluctuation (from a workload trace),
//   - utilization-dependent service latency and queueing,
//   - inter-component request propagation along an application topology,
//   - back-pressure: a saturated or slowed component fills its queue and
//     stalls its *upstream* callers, so anomalies also propagate against
//     the request direction (paper §II-C),
//   - injectable faults (memory leak, CPU hog, net hog, disk hog,
//     bottleneck caps, misrouting bugs),
//   - per-component resource scaling, which the online pinpointing
//     validation uses to confirm or refute a culprit.
//
// Time advances in 1-second ticks; each tick every component consumes
// requests from its queue subject to its effective resources and the free
// queue space of its downstream components, then dispatches derived
// requests downstream (visible the next tick, so each hop adds at least one
// second of propagation delay, consistent with the paper's observation that
// anomaly propagation between dependent components takes at least several
// seconds).
package cloudsim

import (
	"fmt"

	"fchain/internal/workload"
)

// EdgeKind selects how a component forwards derived requests downstream.
type EdgeKind int

const (
	// EdgeBalanced distributes requests among this component's balanced
	// downstream targets proportionally to their weights (a load
	// balancer / router).
	EdgeBalanced EdgeKind = iota + 1
	// EdgeAll sends a derived request to every EdgeAll downstream target
	// (fan-out, e.g. a stream operator feeding several consumers).
	EdgeAll
)

// Edge is a directed link from one component to a downstream component.
type Edge struct {
	To     string
	Kind   EdgeKind
	Weight float64 // relative share for EdgeBalanced (default 1)
	// Fanout is the number of derived downstream requests per processed
	// request on this edge (default 1). Values < 1 model sampling.
	Fanout float64
}

// ComponentSpec describes one application component (one guest VM).
type ComponentSpec struct {
	Name string

	// Physical resources of the VM.
	CPUCores float64 // e.g. 2.0
	MemoryMB float64
	NetMBps  float64
	DiskMBps float64

	// Per-request costs.
	CPUCostPerReq   float64 // core-seconds consumed per request
	MemPerReq       float64 // MB held per queued request
	NetInPerReq     float64 // MB received per request
	NetOutPerReq    float64 // MB sent per dispatched request
	DiskReadPerReq  float64 // MB read per request
	DiskWritePerReq float64 // MB written per request

	BaseMemMB   float64 // idle memory footprint
	ServiceTime float64 // base service latency (seconds) at low load

	QueueCap int // max queued requests; 0 means a generous default

	// DispatchEvery batches the component's output: processed work
	// accumulates in an output buffer that is flushed downstream only
	// every DispatchEvery seconds (0 or 1 = continuous dispatch). This
	// models wave-style data movement such as Hadoop's shuffle, whose
	// spiky transfer pattern is a defining trait of the paper's "much
	// more dynamic" Hadoop metrics.
	DispatchEvery int64
	// DispatchPhase offsets the flush schedule so co-located components
	// do not flush in lockstep.
	DispatchPhase int64
	// OutBufCap bounds the batched output buffer (default 4×QueueCap). It
	// must exceed one wave's volume or the component throttles itself
	// between flushes.
	OutBufCap int

	// Join makes the component a stream join: one unit of work consumes
	// one queued tuple from *each* distinct upstream source, so starving
	// one input stalls the component and back-pressures its other inputs
	// (how a System S join PE behaves — the mechanism behind the paper's
	// Fig. 2 PE6→PE2 back-pressure propagation).
	Join bool

	Downstream []Edge
}

func (c ComponentSpec) withDefaults() ComponentSpec {
	if c.CPUCores <= 0 {
		c.CPUCores = 2
	}
	if c.MemoryMB <= 0 {
		c.MemoryMB = 4096
	}
	if c.NetMBps <= 0 {
		c.NetMBps = 120
	}
	if c.DiskMBps <= 0 {
		c.DiskMBps = 80
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 2000
	}
	if c.OutBufCap <= 0 {
		c.OutBufCap = 4 * c.QueueCap
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 0.005
	}
	return c
}

// TrafficStyle describes the application's network traffic pattern, which
// determines whether black-box dependency discovery can extract flows.
type TrafficStyle int

const (
	// RequestReply traffic has think-time gaps between exchanges; the
	// gap-based flow extraction works (RUBiS, Hadoop control traffic).
	RequestReply TrafficStyle = iota + 1
	// Streaming traffic is continuous with no inter-packet gaps; flow
	// extraction fails and dependency discovery returns an empty graph
	// (IBM System S), per the paper's §II-C observation.
	Streaming
)

// SLOKind selects how the application's service level objective is judged.
type SLOKind int

const (
	// SLOLatency marks a violation when the mean end-to-end latency
	// exceeds Threshold seconds (RUBiS: 100 ms; System S per-tuple: 20 ms).
	SLOLatency SLOKind = iota + 1
	// SLOProgress marks a violation when job progress stalls: completed
	// work over the last StallWindow seconds falls below StallFraction of
	// the pre-fault baseline throughput (Hadoop: no progress for > 30 s).
	SLOProgress
)

// SLOSpec configures SLO judgement.
type SLOSpec struct {
	Kind          SLOKind
	Threshold     float64 // seconds, for SLOLatency
	StallWindow   int     // seconds, for SLOProgress (default 30)
	StallFraction float64 // fraction of baseline throughput (default 0.05)
}

func (s SLOSpec) withDefaults() SLOSpec {
	if s.Kind == 0 {
		s.Kind = SLOLatency
	}
	if s.Threshold <= 0 {
		s.Threshold = 0.1
	}
	if s.StallWindow <= 0 {
		s.StallWindow = 30
	}
	if s.StallFraction <= 0 {
		s.StallFraction = 0.05
	}
	return s
}

// AppSpec describes a complete simulated application.
type AppSpec struct {
	Name       string
	Components []ComponentSpec
	// Entries are the components that receive external arrivals; the
	// workload trace rate is split evenly among them.
	Entries []string
	Style   TrafficStyle
	SLO     SLOSpec
	Trace   workload.Trace
	// MeasurementNoise is the relative std-dev of per-sample metric
	// measurement noise (default 0.02).
	MeasurementNoise float64
}

// Validate checks the spec for structural errors: unknown edge targets,
// duplicate names, missing entries.
func (a AppSpec) Validate() error {
	if len(a.Components) == 0 {
		return fmt.Errorf("cloudsim: app %q has no components", a.Name)
	}
	byName := make(map[string]bool, len(a.Components))
	for _, c := range a.Components {
		if c.Name == "" {
			return fmt.Errorf("cloudsim: app %q has a component without a name", a.Name)
		}
		if byName[c.Name] {
			return fmt.Errorf("cloudsim: app %q: duplicate component %q", a.Name, c.Name)
		}
		byName[c.Name] = true
	}
	for _, c := range a.Components {
		for _, e := range c.Downstream {
			if !byName[e.To] {
				return fmt.Errorf("cloudsim: app %q: component %q has edge to unknown %q", a.Name, c.Name, e.To)
			}
			if e.To == c.Name {
				return fmt.Errorf("cloudsim: app %q: component %q has a self edge", a.Name, c.Name)
			}
		}
	}
	if len(a.Entries) == 0 {
		return fmt.Errorf("cloudsim: app %q has no entry components", a.Name)
	}
	for _, e := range a.Entries {
		if !byName[e] {
			return fmt.Errorf("cloudsim: app %q: unknown entry %q", a.Name, e)
		}
	}
	if a.Trace == nil {
		return fmt.Errorf("cloudsim: app %q has no workload trace", a.Name)
	}
	return nil
}
