package cloudsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fchain/internal/metric"
	"fchain/internal/timeseries"
)

// Comp is the runtime state of one simulated component (guest VM). Fault
// implementations receive it each tick to perturb resources; everything else
// should treat it as read-only.
type Comp struct {
	Spec ComponentSpec

	// Queue is the number of requests waiting for service (fluid model).
	// For join components it mirrors the sum of SrcQueue.
	Queue float64

	// SrcQueue tracks queued tuples per upstream source for join
	// components (nil otherwise).
	SrcQueue map[string]float64

	// OutBuf holds processed-but-not-yet-dispatched work for components
	// with batched dispatch (DispatchEvery > 1).
	OutBuf float64

	// Persistent fault state.
	LeakMB float64 // accumulated leaked memory

	// Per-tick fault overlays, reset at the start of every tick.
	HogCPU         float64            // cores consumed by a co-located hog
	HogNetIn       float64            // MB/s of hostile inbound traffic
	HogDiskRead    float64            // MB/s of hostile disk reads
	HogDiskWrite   float64            // MB/s of hostile disk writes
	CPUCapFactor   float64            // cap multiplier (1 = uncapped)
	Slowdown       float64            // service-time multiplier (1 = none)
	ExtraCPUPerReq float64            // added core-seconds per request
	WeightOverride map[string]float64 // balanced-edge weight overrides

	// Validation-time resource scaling (1 = unscaled).
	ScaleCPU, ScaleMem, ScaleNet, ScaleDisk float64

	// Per-tick accounting (outputs of the last tick).
	arrivals     float64            // merged into Queue at tick start
	inboxNext    float64            // requests dispatched to us this tick
	inboxBySrc   map[string]float64 // per-source inbox for join components
	netInboundMB float64            // network received from upstream this tick
	processed    float64
	dispatched   float64
	dropped      float64
	latency      float64 // this component's local response-time estimate
	memUsedMB    float64
	netInMB      float64
	netOutMB     float64
	diskReadMB   float64
	diskWrite    float64
	cpuPct       float64
}

func (c *Comp) resetOverlays() {
	c.HogCPU = 0
	c.HogNetIn = 0
	c.HogDiskRead = 0
	c.HogDiskWrite = 0
	c.CPUCapFactor = 1
	c.Slowdown = 1
	c.ExtraCPUPerReq = 0
	c.WeightOverride = nil
}

// Fault perturbs one or more components each tick. Implementations must be
// stateless: all mutable state lives in Comp so that Sim.Clone produces an
// independent but identical world.
type Fault interface {
	// Name identifies the fault type (e.g. "memleak").
	Name() string
	// Targets lists the ground-truth faulty components.
	Targets() []string
	// Start is the injection time (tick).
	Start() int64
	// Apply perturbs target component c at tick t (only called for
	// t >= Start and c in Targets).
	Apply(t int64, c *Comp)
}

// Sim is the discrete-time simulation of one application.
type Sim struct {
	spec  AppSpec
	comps map[string]*Comp
	order []string // reverse-topological processing order
	names []string // stable component order

	faults []Fault
	now    int64
	seed   int64
	rng    *rand.Rand

	history  map[string]*[metric.NumKinds + 1]*timeseries.Series
	latency  *timeseries.Series // end-to-end latency per tick
	progress *timeseries.Series // cumulative completed work per tick
	violated *timeseries.Series // 1 when the SLO was violated at the tick

	completedRecent []float64 // ring of per-tick completions for progress SLO
	baselineRate    float64   // learned pre-fault throughput
	baselineN       int
}

// New constructs a simulator for the given application spec.
func New(spec AppSpec, seed int64) (*Sim, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec.SLO = spec.SLO.withDefaults()
	if spec.MeasurementNoise <= 0 {
		spec.MeasurementNoise = 0.02
	}
	s := &Sim{
		spec:    spec,
		comps:   make(map[string]*Comp, len(spec.Components)),
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
		history: make(map[string]*[metric.NumKinds + 1]*timeseries.Series),
	}
	for _, cs := range spec.Components {
		cs = cs.withDefaults()
		c := &Comp{Spec: cs, CPUCapFactor: 1, Slowdown: 1, ScaleCPU: 1, ScaleMem: 1, ScaleNet: 1, ScaleDisk: 1}
		if cs.Join {
			c.SrcQueue = make(map[string]float64)
			c.inboxBySrc = make(map[string]float64)
		}
		s.comps[cs.Name] = c
		s.names = append(s.names, cs.Name)
		var hist [metric.NumKinds + 1]*timeseries.Series
		for _, k := range metric.Kinds {
			hist[k] = timeseries.New(0, nil)
		}
		s.history[cs.Name] = &hist
	}
	sort.Strings(s.names)
	s.order = s.reverseTopoOrder()
	s.latency = timeseries.New(0, nil)
	s.progress = timeseries.New(0, nil)
	s.violated = timeseries.New(0, nil)
	return s, nil
}

// reverseTopoOrder sorts components so that every component appears after
// all of its downstream targets (sinks first). Cycles, which the specs do
// not produce, fall back to insertion order.
func (s *Sim) reverseTopoOrder() []string {
	state := make(map[string]int, len(s.comps)) // 0=unseen 1=visiting 2=done
	var order []string
	var visit func(name string)
	visit = func(name string) {
		if state[name] != 0 {
			return
		}
		state[name] = 1
		for _, e := range s.comps[name].Spec.Downstream {
			if state[e.To] == 0 {
				visit(e.To)
			}
		}
		state[name] = 2
		order = append(order, name)
	}
	for _, n := range s.names {
		visit(n)
	}
	return order
}

// Spec returns the application spec the simulation was built from.
func (s *Sim) Spec() AppSpec { return s.spec }

// Now returns the current simulation time (seconds since start).
func (s *Sim) Now() int64 { return s.now }

// Components returns the component names in sorted order.
func (s *Sim) Components() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Component exposes the runtime state of a component, primarily for faults
// and tests.
func (s *Sim) Component(name string) (*Comp, bool) {
	c, ok := s.comps[name]
	return c, ok
}

// Inject registers a fault. Faults may be injected at any time before their
// start tick.
func (s *Sim) Inject(f Fault) error {
	for _, tgt := range f.Targets() {
		if _, ok := s.comps[tgt]; !ok {
			return fmt.Errorf("cloudsim: fault %q targets unknown component %q", f.Name(), tgt)
		}
	}
	s.faults = append(s.faults, f)
	return nil
}

// Faults returns the registered faults.
func (s *Sim) Faults() []Fault {
	out := make([]Fault, len(s.faults))
	copy(out, s.faults)
	return out
}

// Step advances the simulation by n ticks.
func (s *Sim) Step(n int) {
	for i := 0; i < n; i++ {
		s.tick()
	}
}

// RunUntil advances the simulation until Now() reaches t.
func (s *Sim) RunUntil(t int64) {
	for s.now < t {
		s.tick()
	}
}

func (s *Sim) tick() {
	t := s.now

	// 1. External arrivals.
	rate := s.spec.Trace.Rate(t)
	share := rate / float64(len(s.spec.Entries))
	for _, e := range s.spec.Entries {
		s.comps[e].arrivals += share
	}

	// 2. Fault perturbation (and per-tick counters).
	for _, c := range s.comps {
		c.resetOverlays()
		c.netInboundMB = 0
	}
	for _, f := range s.faults {
		if t < f.Start() {
			continue
		}
		for _, tgt := range f.Targets() {
			f.Apply(t, s.comps[tgt])
		}
	}

	// 3. Process components, sinks first, so downstream free space reflects
	// this tick's drain and each hop of propagation costs one tick.
	var completed float64
	for _, name := range s.order {
		completed += s.processComponent(name)
	}

	// 4. Move dispatched requests into queues for the next tick.
	for _, c := range s.comps {
		c.Queue += c.inboxNext
		c.inboxNext = 0
		c.arrivals = 0
		if c.Spec.Join {
			for src, amt := range c.inboxBySrc {
				c.SrcQueue[src] += amt
				delete(c.inboxBySrc, src)
			}
		}
	}

	// 5. Metrics, end-to-end latency, progress, SLO.
	s.recordMetrics(t)
	e2e := s.endToEndLatency()
	s.latency.Append(e2e)
	var prevProgress float64
	if s.progress.Len() > 0 {
		prevProgress = s.progress.At(s.progress.Len() - 1)
	}
	s.progress.Append(prevProgress + completed)
	s.recordSLO(t, e2e, completed)

	s.now++
}

// processComponent runs one tick of request service for a component and
// returns the completed work units it finalized (work completed at sinks).
func (s *Sim) processComponent(name string) float64 {
	c := s.comps[name]
	sp := c.Spec

	// Merge this tick's external arrivals; drop on overflow.
	free := float64(sp.QueueCap) - c.Queue
	if free < 0 {
		free = 0
	}
	accepted := math.Min(c.arrivals, free)
	c.dropped = c.arrivals - accepted
	c.Queue += accepted
	if sp.Join && accepted > 0 {
		c.SrcQueue["external"] += accepted
	}
	c.netInMB = accepted*sp.NetInPerReq + c.HogNetIn

	// Memory pressure from leak + queue + buffered output.
	memCap := sp.MemoryMB * c.ScaleMem
	c.memUsedMB = sp.BaseMemMB + (c.Queue+c.OutBuf)*sp.MemPerReq + c.LeakMB
	pressure := 0.0
	if memCap > 0 {
		pressure = (c.memUsedMB/memCap - 0.85) / 0.15
	}
	if pressure < 0 {
		pressure = 0
	}
	effSlow := c.Slowdown * (1 + 6*pressure*pressure)

	// Capacity: the most constrained resource bounds request service.
	capReq := math.Inf(1)
	cpuCost := (sp.CPUCostPerReq + c.ExtraCPUPerReq) * effSlow
	effCPU := sp.CPUCores*c.ScaleCPU*c.CPUCapFactor - c.HogCPU
	if effCPU < 0.001 {
		effCPU = 0.001 // a starved VM still makes negligible progress
	}
	if cpuCost > 0 {
		capReq = math.Min(capReq, effCPU/cpuCost)
	}
	if sp.NetInPerReq > 0 {
		effNet := sp.NetMBps*c.ScaleNet - c.HogNetIn
		if effNet < 0.1 {
			effNet = 0.1
		}
		capReq = math.Min(capReq, effNet/sp.NetInPerReq)
	}
	diskPerReq := sp.DiskReadPerReq + sp.DiskWritePerReq
	if diskPerReq > 0 {
		effDisk := sp.DiskMBps*c.ScaleDisk - c.HogDiskRead - c.HogDiskWrite
		if effDisk < 0.1 {
			effDisk = 0.1
		}
		capReq = math.Min(capReq, effDisk/diskPerReq)
	}
	if math.IsInf(capReq, 1) {
		capReq = c.Queue // no resource model: drain freely
	}

	// Back-pressure: processing cannot exceed downstream free queue space
	// (continuous dispatch) or remaining output-buffer capacity (batched
	// dispatch).
	limit := capReq
	batched := sp.DispatchEvery > 1
	if batched {
		limit = math.Min(limit, float64(sp.OutBufCap)-c.OutBuf)
	} else {
		limit = math.Min(limit, s.downstreamSpace(c))
	}

	// A join component can only process matched tuple sets: one tuple from
	// every known upstream source per unit of work.
	available := c.Queue
	var joinSources int
	if sp.Join {
		joinSources = len(c.SrcQueue)
		matched := math.Inf(1)
		for _, q := range c.SrcQueue {
			matched = math.Min(matched, q)
		}
		if joinSources == 0 || math.IsInf(matched, 1) {
			matched = 0
		}
		available = matched
	}

	if limit < 0 {
		limit = 0
	}
	processed := math.Min(available, limit)
	if sp.Join {
		for src := range c.SrcQueue {
			c.SrcQueue[src] -= processed
			if c.SrcQueue[src] < 0 {
				c.SrcQueue[src] = 0
			}
		}
		c.Queue -= processed * float64(joinSources)
		if c.Queue < 0 {
			c.Queue = 0
		}
	} else {
		c.Queue -= processed
	}
	c.processed = processed

	// Dispatch downstream (visible next tick). Batched components flush
	// their buffered output on their wave schedule, subject to downstream
	// space; the remainder stays buffered.
	toSend := processed
	if batched {
		c.OutBuf += processed
		toSend = 0
		if (s.now+sp.DispatchPhase)%sp.DispatchEvery == 0 {
			toSend = math.Min(c.OutBuf, s.downstreamSpace(c))
			if toSend < 0 {
				toSend = 0
			}
			c.OutBuf -= toSend
		}
	}
	var dispatched float64
	if toSend > 0 {
		// Balanced edges: waterfill by weight, capped by free space.
		var balanced []Edge
		for _, e := range c.Spec.Downstream {
			fan := e.Fanout
			if fan <= 0 {
				fan = 1
			}
			if e.Kind == EdgeAll {
				d := s.comps[e.To]
				amount := toSend * fan
				d.inboxNext += amount
				d.netInboundMB += amount * d.Spec.NetInPerReq
				if d.Spec.Join {
					d.inboxBySrc[c.Spec.Name] += amount
				}
				dispatched += amount
				continue
			}
			balanced = append(balanced, e)
		}
		if len(balanced) > 0 {
			dispatched += s.dispatchBalanced(c, balanced, toSend)
		}
	}
	c.dispatched = dispatched

	// Local latency estimate: service time inflated by load, plus queueing
	// delay at the current drain rate.
	svcUtil := 0.0
	if capReq > 0 {
		svcUtil = processed / capReq
	}
	if svcUtil > 0.98 {
		svcUtil = 0.98
	}
	wait := 0.0
	drain := math.Max(processed, 1)
	wait = c.Queue / drain
	c.latency = sp.ServiceTime*effSlow/(1-svcUtil) + wait

	// Resource accounting for metrics.
	c.cpuPct = 100 * math.Min(1, (processed*cpuCost+c.HogCPU)/sp.CPUCores)
	c.netOutMB = dispatched * sp.NetOutPerReq
	c.diskReadMB = processed*sp.DiskReadPerReq + c.HogDiskRead
	c.diskWrite = processed*sp.DiskWritePerReq + c.HogDiskWrite

	if len(c.Spec.Downstream) == 0 {
		return processed // work finished at a sink
	}
	return 0
}

// downstreamSpace returns how many units c could dispatch right now given
// its downstream components' free queue space.
func (s *Sim) downstreamSpace(c *Comp) float64 {
	space := math.Inf(1)
	var balancedFree float64
	hasBalanced := false
	for _, e := range c.Spec.Downstream {
		d := s.comps[e.To]
		dfree := freeSpace(d, c.Spec.Name)
		fan := e.Fanout
		if fan <= 0 {
			fan = 1
		}
		switch e.Kind {
		case EdgeAll:
			space = math.Min(space, dfree/fan)
		default:
			hasBalanced = true
			balancedFree += dfree / fan
		}
	}
	if hasBalanced {
		space = math.Min(space, balancedFree)
	}
	if math.IsInf(space, 1) {
		return math.MaxFloat64 / 4
	}
	return space
}

// freeSpace returns the queue space component d can still accept from
// source src. Join components maintain one buffer per input stream (each
// with the spec's QueueCap), so one over-full input does not block the
// others — but a starved join still back-pressures the inputs that keep
// producing, which is how anomalies travel upstream through stream joins.
func freeSpace(d *Comp, src string) float64 {
	var f float64
	if d.Spec.Join {
		f = float64(d.Spec.QueueCap) - d.SrcQueue[src] - d.inboxBySrc[src]
	} else {
		f = float64(d.Spec.QueueCap) - d.Queue - d.inboxNext
	}
	if f < 0 {
		f = 0
	}
	return f
}

// dispatchBalanced distributes processed requests among balanced downstream
// edges proportionally to their (possibly overridden) weights, spilling to
// edges with remaining space when a preferred target is full. Returns the
// dispatched amount.
func (s *Sim) dispatchBalanced(c *Comp, edges []Edge, processed float64) float64 {
	type slot struct {
		d      *Comp
		weight float64
		fanout float64
		free   float64
	}
	slots := make([]slot, 0, len(edges))
	var totalW float64
	for _, e := range edges {
		d := s.comps[e.To]
		w := e.Weight
		if w <= 0 {
			w = 1
		}
		if ov, ok := c.WeightOverride[e.To]; ok {
			w = ov
		}
		fan := e.Fanout
		if fan <= 0 {
			fan = 1
		}
		dfree := freeSpace(d, c.Spec.Name)
		slots = append(slots, slot{d: d, weight: w, fanout: fan, free: dfree / fan})
		totalW += w
	}
	if totalW == 0 {
		return 0
	}
	remaining := processed
	var dispatched float64
	// Two passes: proportional, then spill.
	for pass := 0; pass < 2 && remaining > 1e-9; pass++ {
		var passW float64
		for _, sl := range slots {
			if sl.free > 1e-9 {
				passW += sl.weight
			}
		}
		if passW == 0 {
			break
		}
		budget := remaining
		for i := range slots {
			sl := &slots[i]
			if sl.free <= 1e-9 {
				continue
			}
			want := budget * sl.weight / passW
			give := math.Min(want, sl.free)
			sl.d.inboxNext += give * sl.fanout
			sl.d.netInboundMB += give * sl.fanout * sl.d.Spec.NetInPerReq
			if sl.d.Spec.Join {
				sl.d.inboxBySrc[c.Spec.Name] += give * sl.fanout
			}
			sl.free -= give
			remaining -= give
			dispatched += give * sl.fanout
		}
	}
	return dispatched
}

// endToEndLatency estimates the application's response time this tick: the
// average over entry components of the latency accumulated along the
// downstream paths (balanced edges contribute the weighted mean of their
// targets, fan-out edges the maximum).
func (s *Sim) endToEndLatency() float64 {
	memo := make(map[string]float64, len(s.comps))
	var walk func(name string, depth int) float64
	walk = func(name string, depth int) float64 {
		if v, ok := memo[name]; ok {
			return v
		}
		if depth > len(s.comps)+1 { // cycle guard
			return 0
		}
		c := s.comps[name]
		total := c.latency
		var balancedSum, balancedW, allMax float64
		for _, e := range c.Spec.Downstream {
			child := walk(e.To, depth+1)
			if e.Kind == EdgeAll {
				if child > allMax {
					allMax = child
				}
				continue
			}
			w := e.Weight
			if w <= 0 {
				w = 1
			}
			if ov, ok := c.WeightOverride[e.To]; ok {
				w = ov
			}
			balancedSum += child * w
			balancedW += w
		}
		if balancedW > 0 {
			total += balancedSum / balancedW
		}
		total += allMax
		memo[name] = total
		return total
	}
	var sum float64
	for _, e := range s.spec.Entries {
		sum += walk(e, 0)
	}
	return sum / float64(len(s.spec.Entries))
}

// recordMetrics appends this tick's noisy metric samples to the history.
func (s *Sim) recordMetrics(t int64) {
	noise := func(v float64) float64 {
		if v < 0 {
			v = 0
		}
		n := v * s.spec.MeasurementNoise * s.rng.NormFloat64()
		out := v + n
		if out < 0 {
			out = 0
		}
		return out
	}
	for _, name := range s.names {
		c := s.comps[name]
		h := s.history[name]
		h[metric.CPU].Append(noise(c.cpuPct))
		h[metric.Memory].Append(noise(c.memUsedMB))
		h[metric.NetIn].Append(noise(c.netInMB + c.netInboundMB))
		h[metric.NetOut].Append(noise(c.netOutMB))
		h[metric.DiskRead].Append(noise(c.diskReadMB))
		h[metric.DiskWrite].Append(noise(c.diskWrite))
	}
	_ = t
}

// recordSLO judges the SLO for this tick.
func (s *Sim) recordSLO(t int64, e2e, completed float64) {
	violated := 0.0
	switch s.spec.SLO.Kind {
	case SLOProgress:
		s.completedRecent = append(s.completedRecent, completed)
		w := s.spec.SLO.StallWindow
		if len(s.completedRecent) > w {
			s.completedRecent = s.completedRecent[len(s.completedRecent)-w:]
		}
		// Learn the baseline throughput from the warm, pre-fault phase.
		if t >= 30 && t < s.firstFaultStart() {
			s.baselineRate += completed
			s.baselineN++
		}
		if len(s.completedRecent) == w && s.baselineN > 0 {
			var recent float64
			for _, v := range s.completedRecent {
				recent += v
			}
			base := s.baselineRate / float64(s.baselineN)
			if recent < s.spec.SLO.StallFraction*base*float64(w) {
				violated = 1
			}
		}
	default: // SLOLatency
		if e2e > s.spec.SLO.Threshold {
			violated = 1
		}
	}
	s.violated.Append(violated)
}

func (s *Sim) firstFaultStart() int64 {
	first := int64(math.MaxInt64)
	for _, f := range s.faults {
		if f.Start() < first {
			first = f.Start()
		}
	}
	return first
}

// Series returns the recorded history for one component metric. The
// returned series is a snapshot copy.
func (s *Sim) Series(component string, k metric.Kind) (*timeseries.Series, error) {
	h, ok := s.history[component]
	if !ok {
		return nil, fmt.Errorf("cloudsim: unknown component %q", component)
	}
	if !k.Valid() {
		return nil, fmt.Errorf("cloudsim: invalid metric kind %v", k)
	}
	src := h[k]
	return timeseries.New(src.Start(), src.Values()), nil
}

// LatencySeries returns the end-to-end latency per tick.
func (s *Sim) LatencySeries() *timeseries.Series {
	return timeseries.New(s.latency.Start(), s.latency.Values())
}

// ProgressSeries returns cumulative completed work per tick.
func (s *Sim) ProgressSeries() *timeseries.Series {
	return timeseries.New(s.progress.Start(), s.progress.Values())
}

// FirstViolation returns the first tick >= after at which the SLO was
// violated for minSustain consecutive ticks, or ok=false.
func (s *Sim) FirstViolation(after int64, minSustain int) (int64, bool) {
	if minSustain < 1 {
		minSustain = 1
	}
	run := 0
	for i := 0; i < s.violated.Len(); i++ {
		if s.violated.TimeAt(i) < after {
			continue
		}
		if s.violated.At(i) > 0 {
			run++
			if run >= minSustain {
				return s.violated.TimeAt(i), true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}

// SLOMetric returns the mean violation magnitude over [from, to): the mean
// end-to-end latency for latency SLOs, or the mean progress shortfall
// (1 − observed/baseline throughput, clamped at 0) for progress SLOs.
// Online validation compares this quantity across trials.
func (s *Sim) SLOMetric(from, to int64) float64 {
	if s.spec.SLO.Kind == SLOProgress {
		w := s.progress.Window(from, to)
		if w.Len() < 2 || s.baselineN == 0 {
			return 0
		}
		rate := (w.At(w.Len()-1) - w.At(0)) / float64(w.Len()-1)
		base := s.baselineRate / float64(s.baselineN)
		if base <= 0 {
			return 0
		}
		short := 1 - rate/base
		if short < 0 {
			short = 0
		}
		return short
	}
	w := s.latency.Window(from, to)
	if w.Len() == 0 {
		return 0
	}
	return timeseries.Mean(w.Values())
}

// ViolationRatio returns the fraction of ticks in [from, to) with a
// violated SLO.
func (s *Sim) ViolationRatio(from, to int64) float64 {
	w := s.violated.Window(from, to)
	if w.Len() == 0 {
		return 0
	}
	var n float64
	for i := 0; i < w.Len(); i++ {
		n += w.At(i)
	}
	return n / float64(w.Len())
}

// ScaleResource adjusts a component's capacity for the resource underlying
// metric kind k by the given factor (>1 scales up). This is the hook used
// by FChain's online pinpointing validation (paper §II-A): scaling the
// implicated resource on a true culprit relieves the SLO violation.
func (s *Sim) ScaleResource(component string, k metric.Kind, factor float64) error {
	c, ok := s.comps[component]
	if !ok {
		return fmt.Errorf("cloudsim: unknown component %q", component)
	}
	if factor <= 0 {
		return fmt.Errorf("cloudsim: non-positive scale factor %v", factor)
	}
	switch k {
	case metric.CPU:
		c.ScaleCPU *= factor
	case metric.Memory:
		c.ScaleMem *= factor
	case metric.NetIn, metric.NetOut:
		c.ScaleNet *= factor
	case metric.DiskRead, metric.DiskWrite:
		c.ScaleDisk *= factor
	default:
		return fmt.Errorf("cloudsim: invalid metric kind %v", k)
	}
	return nil
}

// ResetScaling reverts all validation-time scaling on a component.
func (s *Sim) ResetScaling(component string) error {
	c, ok := s.comps[component]
	if !ok {
		return fmt.Errorf("cloudsim: unknown component %q", component)
	}
	c.ScaleCPU, c.ScaleMem, c.ScaleNet, c.ScaleDisk = 1, 1, 1, 1
	return nil
}

// Clone returns an independent deep copy of the simulation, used by online
// validation to trial resource adjustments without disturbing the primary
// timeline. The clone's RNG is reseeded deterministically from the original
// seed and current tick.
func (s *Sim) Clone() *Sim {
	out := &Sim{
		spec:         s.spec,
		comps:        make(map[string]*Comp, len(s.comps)),
		order:        append([]string(nil), s.order...),
		names:        append([]string(nil), s.names...),
		faults:       append([]Fault(nil), s.faults...),
		now:          s.now,
		seed:         s.seed,
		rng:          rand.New(rand.NewSource(s.seed*1000003 + s.now)),
		history:      make(map[string]*[metric.NumKinds + 1]*timeseries.Series, len(s.history)),
		latency:      timeseries.New(s.latency.Start(), s.latency.Values()),
		progress:     timeseries.New(s.progress.Start(), s.progress.Values()),
		violated:     timeseries.New(s.violated.Start(), s.violated.Values()),
		baselineRate: s.baselineRate,
		baselineN:    s.baselineN,
	}
	out.completedRecent = append([]float64(nil), s.completedRecent...)
	for name, c := range s.comps {
		cp := *c
		if c.WeightOverride != nil {
			cp.WeightOverride = make(map[string]float64, len(c.WeightOverride))
			for k, v := range c.WeightOverride {
				cp.WeightOverride[k] = v
			}
		}
		if c.SrcQueue != nil {
			cp.SrcQueue = make(map[string]float64, len(c.SrcQueue))
			for k, v := range c.SrcQueue {
				cp.SrcQueue[k] = v
			}
		}
		if c.inboxBySrc != nil {
			cp.inboxBySrc = make(map[string]float64, len(c.inboxBySrc))
			for k, v := range c.inboxBySrc {
				cp.inboxBySrc[k] = v
			}
		}
		out.comps[name] = &cp
	}
	for name, h := range s.history {
		var hist [metric.NumKinds + 1]*timeseries.Series
		for _, k := range metric.Kinds {
			hist[k] = timeseries.New(h[k].Start(), h[k].Values())
		}
		out.history[name] = &hist
	}
	return out
}
