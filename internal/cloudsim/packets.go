package cloudsim

import (
	"math/rand"

	"fchain/internal/depgraph"
)

// DependencyTrace synthesizes the passive packet capture that FChain's
// offline dependency discovery consumes (paper §II-C fn. 3: discovery is
// performed offline over accumulated trace data and cached).
//
// For request/reply applications the capture contains sampled request
// journeys: an external request enters an entry component, walks the
// topology (balanced edges pick a weighted random target, fan-out edges
// visit every target) with a small per-hop delay, and the next sampled
// request follows after a think-time gap — exactly the structure gap-based
// flow extraction needs.
//
// For streaming applications the capture is continuous tuple traffic on
// every edge with sub-gap inter-packet spacing, so flow extraction sees one
// endless flow per edge and discovery fails, reproducing the paper's
// System S result.
func (s *Sim) DependencyTrace(durationSec int, seed int64) []depgraph.Packet {
	rng := rand.New(rand.NewSource(seed))
	if s.spec.Style == Streaming {
		return s.streamingTrace(durationSec)
	}
	return s.requestReplyTrace(durationSec, rng)
}

func (s *Sim) requestReplyTrace(durationSec int, rng *rand.Rand) []depgraph.Packet {
	var pkts []depgraph.Packet
	t := 0.0
	const client = "external-client"
	for t < float64(durationSec) {
		t += 0.8 + rng.Float64() // think time well above the gap threshold
		entry := s.spec.Entries[rng.Intn(len(s.spec.Entries))]
		now := t
		pkts = append(pkts, depgraph.Packet{Time: now, Src: client, Dst: entry})
		now += 0.005
		pkts = s.walkRequest(entry, now, rng, pkts, 0)
	}
	return pkts
}

// walkRequest emits the downstream packets of one sampled request.
func (s *Sim) walkRequest(name string, now float64, rng *rand.Rand, pkts []depgraph.Packet, depth int) []depgraph.Packet {
	if depth > len(s.comps) {
		return pkts
	}
	c := s.comps[name]
	var balanced []Edge
	var totalW float64
	for _, e := range c.Spec.Downstream {
		if e.Kind == EdgeAll {
			pkts = append(pkts, depgraph.Packet{Time: now, Src: name, Dst: e.To})
			pkts = s.walkRequest(e.To, now+0.01, rng, pkts, depth+1)
			// Reply packet.
			pkts = append(pkts, depgraph.Packet{Time: now + 0.03, Src: e.To, Dst: name})
			continue
		}
		w := e.Weight
		if w <= 0 {
			w = 1
		}
		if ov, ok := c.WeightOverride[e.To]; ok {
			w = ov
		}
		balanced = append(balanced, e)
		totalW += w
	}
	if len(balanced) > 0 && totalW > 0 {
		pick := rng.Float64() * totalW
		var acc float64
		chosen := balanced[len(balanced)-1]
		for _, e := range balanced {
			w := e.Weight
			if w <= 0 {
				w = 1
			}
			if ov, ok := c.WeightOverride[e.To]; ok {
				w = ov
			}
			acc += w
			if pick <= acc {
				chosen = e
				break
			}
		}
		pkts = append(pkts, depgraph.Packet{Time: now, Src: name, Dst: chosen.To})
		pkts = s.walkRequest(chosen.To, now+0.01, rng, pkts, depth+1)
		pkts = append(pkts, depgraph.Packet{Time: now + 0.03, Src: chosen.To, Dst: name})
	}
	return pkts
}

// streamingTrace emits continuous tuple traffic: a packet on every edge
// every 50 ms for the whole capture, leaving no gaps for flow extraction.
func (s *Sim) streamingTrace(durationSec int) []depgraph.Packet {
	var pkts []depgraph.Packet
	const interval = 0.05
	steps := int(float64(durationSec) / interval)
	for i := 0; i < steps; i++ {
		now := float64(i) * interval
		for _, name := range s.names {
			for _, e := range s.comps[name].Spec.Downstream {
				pkts = append(pkts, depgraph.Packet{Time: now, Src: name, Dst: e.To})
			}
		}
	}
	return pkts
}

// TopologyGraph returns the ground-truth application topology as a
// dependency graph (edge X→Y when X calls Y). The Topology baseline assumes
// this knowledge; FChain itself never uses it.
func (s *Sim) TopologyGraph() *depgraph.Graph {
	g := depgraph.NewGraph()
	for _, name := range s.names {
		g.AddNode(name)
		for _, e := range s.comps[name].Spec.Downstream {
			g.AddEdge(name, e.To, 1)
		}
	}
	return g
}
