package changepoint

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzSeries decodes data as little-endian float64s (arbitrary bit
// patterns, NaN/Inf included), capped so the bootstrap stays cheap.
func fuzzSeries(data []byte, max int) []float64 {
	n := len(data) / 8
	if n > max {
		n = max
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out
}

// FuzzDetect runs the whole change-point pipeline — Detect, SelectOutliers,
// RollbackOnset — on adversarial series and parameters. The contract under
// garbage input is: no panic, indices in range, output sorted, and the
// rollback result a valid sample index at or before its change point.
func FuzzDetect(f *testing.F) {
	f.Add([]byte{}, 1.5, 0.1)
	step := make([]byte, 0, 60*8)
	var buf [8]byte
	for i := 0; i < 60; i++ {
		v := 10.0
		if i >= 30 {
			v = 90.0
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		step = append(step, buf[:]...)
	}
	f.Add(step, 1.0, 0.1)
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(math.Inf(1)))
	f.Add(append(append([]byte{}, buf[:]...), step[:80]...), math.NaN(), -1.0)

	f.Fuzz(func(t *testing.T, data []byte, sigma, tol float64) {
		vals := fuzzSeries(data, 256)
		pts := Detect(vals, Config{Bootstraps: 25})

		// Table mode shares the pipeline contract: same index/ordering
		// invariants, no panic, confidence in range, on arbitrary input.
		for _, p := range Detect(vals, Config{Thresholds: 25}) {
			if p.Index <= 0 || p.Index >= len(vals) {
				t.Fatalf("table-mode index %d out of range (n=%d)", p.Index, len(vals))
			}
			if p.Confidence < 0 || p.Confidence > 1 {
				t.Fatalf("table-mode confidence %v outside [0,1]", p.Confidence)
			}
		}

		last := -1
		for _, p := range pts {
			if p.Index <= 0 || p.Index >= len(vals) {
				t.Fatalf("change point index %d out of range (n=%d)", p.Index, len(vals))
			}
			if p.Index <= last {
				t.Fatalf("change points not strictly increasing: %d after %d", p.Index, last)
			}
			last = p.Index
			if p.Confidence < 0 || p.Confidence > 1 {
				t.Fatalf("confidence %v outside [0,1]", p.Confidence)
			}
		}

		sel := SelectOutliers(pts, sigma)
		if len(pts) > 0 && len(sel) > len(pts) {
			t.Fatalf("SelectOutliers grew the set: %d -> %d", len(pts), len(sel))
		}

		// Roll back from every detected point, plus deliberately bogus
		// indices, which must degrade to onset 0 rather than panic.
		for i := range pts {
			onset := RollbackOnset(vals, pts, i, tol)
			if onset < 0 || onset > pts[i].Index {
				t.Fatalf("onset %d outside [0, %d]", onset, pts[i].Index)
			}
		}
		for _, bogus := range []int{-1, len(pts), len(pts) + 7} {
			if onset := RollbackOnset(vals, pts, bogus, tol); onset != 0 {
				t.Fatalf("RollbackOnset(bogus %d) = %d, want 0", bogus, onset)
			}
		}
	})
}

// FuzzStream feeds adversarial bit patterns through the streaming
// accumulator. Contract: no panic ever; on finite input the deque-maintained
// window extrema agree exactly with a direct scan, and confidence stays in
// [0,1].
func FuzzStream(f *testing.F) {
	f.Add([]byte{}, uint8(8))
	step := make([]byte, 0, 40*8)
	var buf [8]byte
	for i := 0; i < 40; i++ {
		v := 5.0
		if i >= 20 {
			v = 50.0
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		step = append(step, buf[:]...)
	}
	f.Add(step, uint8(10))
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(math.NaN()))
	f.Add(append(append([]byte{}, buf[:]...), step...), uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, window uint8) {
		vals := fuzzSeries(data, 256)
		finite := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
				break
			}
		}
		s := NewStream(int(window))
		w := s.Window()
		for i, v := range vals {
			s.Push(v)
			if conf, ok := s.Confidence(25); ok && finite && (conf < 0 || conf > 1) {
				t.Fatalf("step %d: confidence %v outside [0,1]", i, conf)
			}
			if !finite {
				continue // NaN poisons comparisons; no-panic is the contract
			}
			lo := i + 1 - w
			if lo < 0 {
				lo = 0
			}
			win := vals[lo : i+1]
			wantLo, wantHi := win[0], win[0]
			for _, x := range win[1:] {
				wantLo = math.Min(wantLo, x)
				wantHi = math.Max(wantHi, x)
			}
			gotLo, gotHi, ok := s.WindowMinMax()
			if !ok || gotLo != wantLo || gotHi != wantHi {
				t.Fatalf("step %d: min/max (%v,%v) want (%v,%v)", i, gotLo, gotHi, wantLo, wantHi)
			}
		}
		s.Rebase()
		s.Push(1)
		s.Reset()
		if s.Count() != 0 {
			t.Fatal("reset left samples behind")
		}
	})
}
