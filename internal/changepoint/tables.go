package changepoint

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"fchain/internal/timeseries"
)

// Threshold tables: the precomputed alternative to per-query bootstrapping.
//
// The bootstrap estimates, for every analyzed segment, the null distribution
// of the CUSUM range by reshuffling the segment's own values a few hundred
// times — ~200 × O(n) work per segment, per metric, per query, and by far
// the dominant cost of the selection kernel. But the statistic it shuffles
// for is a pivot: under the exchangeable null the CUSUM range scales
// linearly with the segment's standard deviation and grows like √n, so the
// normalized statistic
//
//	x = (maxS − minS) / (σ̂ · √n)
//
// has a null distribution that depends only on the segment length. That
// distribution is simulated once per (length, resamples) pair from standard
// normal sequences with a fixed seed, sorted, and cached process-wide;
// afterwards every detection query is a closed-form normalization plus one
// binary search — no RNG, no resampling, identical across goroutines,
// processes, and query times. This is what makes streaming selection
// possible at all: the legacy bootstrap reseeded per (component, metric,
// tv), so no per-query work could ever be hoisted to ingest time.
//
// The resample count stays in the key so a deadline-reduced tier (a lighter
// table) and the full tier never share quantiles, and so confidence retains
// the same 1/k granularity the bootstrap had.

type tableKey struct {
	n int // segment length
	k int // null-distribution sample count
}

// nullTables caches sorted null samples per key. Tables are immutable once
// stored; LoadOrStore makes concurrent builders converge on one copy.
var nullTables sync.Map // tableKey -> []float64

// nullTableSeed mixes the key into a fixed, documented seed. Changing it
// changes every detection verdict at the margin — treat it like a golden.
func nullTableSeed(n, k int) int64 {
	return 0x5eed<<32 ^ int64(n)*1_000_003 ^ int64(k)*7_368_787
}

// nullTable returns the sorted null distribution of the normalized CUSUM
// range for segments of length n, simulated from k fixed-seed standard
// normal sequences. Cost is O(k·n) once per key (~50 µs at the default
// n≈120, k=200), then a map load.
func nullTable(n, k int) []float64 {
	key := tableKey{n, k}
	if v, ok := nullTables.Load(key); ok {
		return v.([]float64)
	}
	rng := rand.New(rand.NewSource(nullTableSeed(n, k)))
	samples := make([]float64, k)
	vals := make([]float64, n)
	scale := math.Sqrt(float64(n))
	for b := range samples {
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		_, sdiff := cusumPeak(vals)
		if sd := timeseries.Std(vals); sd > 0 {
			samples[b] = sdiff / (sd * scale)
		}
	}
	sort.Float64s(samples)
	stored, _ := nullTables.LoadOrStore(key, samples)
	return stored.([]float64)
}

// tableConfidence is the table-driven counterpart of bootstrapConfidence:
// the fraction of null samples whose normalized CUSUM range falls below the
// observed one. Degenerate segments (zero range or zero variance) report
// zero confidence, matching the bootstrap's observed==0 short-circuit.
func tableConfidence(vals []float64, sdiff float64, k int) float64 {
	if sdiff == 0 {
		return 0
	}
	sd := timeseries.Std(vals)
	if sd == 0 {
		return 0
	}
	x := sdiff / (sd * math.Sqrt(float64(len(vals))))
	tbl := nullTable(len(vals), k)
	below := sort.SearchFloat64s(tbl, x) // entries strictly below x
	return float64(below) / float64(len(tbl))
}
