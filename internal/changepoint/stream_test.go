package changepoint

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// shadowStream replays Stream's exact arithmetic from plain slices, so the
// deque-based sliding extrema can be checked for bit-equality against a
// direct scan over the same floats.
type shadowStream struct {
	window int
	count  int64
	mean   float64
	m2     float64
	vals   []float64
	cusum  []float64 // reference CUSUM value at each index (once frozen)
	ref    float64
	refSet bool
	cum    float64
}

func (sh *shadowStream) push(v float64) {
	sh.count++
	d := v - sh.mean
	sh.mean += d / float64(sh.count)
	sh.m2 += d * (v - sh.mean)
	sh.vals = append(sh.vals, v)
	if !sh.refSet {
		sh.cusum = append(sh.cusum, math.NaN())
		if len(sh.vals) >= sh.window {
			sh.ref = sh.mean
			sh.refSet = true
			sh.cum = 0
		}
		return
	}
	sh.cum += v - sh.ref
	sh.cusum = append(sh.cusum, sh.cum)
}

// TestStreamMatchesBatchScan is the incremental-vs-batch differential test:
// after every push, the stream's O(1)-maintained window min/max and CUSUM
// extrema must equal a from-scratch scan over the same values — exactly,
// since both sides compare the identical floats.
func TestStreamMatchesBatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, window := range []int{2, 7, 32, 120} {
		s := NewStream(window)
		sh := &shadowStream{window: window}
		for i := 0; i < 5*window+37; i++ {
			var v float64
			switch rng.Intn(4) {
			case 0:
				v = rng.NormFloat64() * 10
			case 1:
				v = float64(rng.Intn(5)) // duplicates
			case 2:
				v = 50 + rng.Float64() // level shift region
			default:
				v = -v0(rng)
			}
			s.Push(v)
			sh.push(v)

			lo := len(sh.vals) - window
			if lo < 0 {
				lo = 0
			}
			win := sh.vals[lo:]
			wantLo, wantHi := win[0], win[0]
			for _, w := range win[1:] {
				wantLo = math.Min(wantLo, w)
				wantHi = math.Max(wantHi, w)
			}
			gotLo, gotHi, ok := s.WindowMinMax()
			if !ok || gotLo != wantLo || gotHi != wantHi {
				t.Fatalf("window=%d step=%d: min/max (%v,%v) want (%v,%v)", window, i, gotLo, gotHi, wantLo, wantHi)
			}

			if s.Mean() != sh.mean || s.Count() != sh.count {
				t.Fatalf("window=%d step=%d: welford mean %v want %v", window, i, s.Mean(), sh.mean)
			}

			got, gok := s.CusumRange()
			if !sh.refSet {
				if gok {
					t.Fatalf("window=%d step=%d: CusumRange ready before reference froze", window, i)
				}
				continue
			}
			cwin := sh.cusum[lo:]
			var cmax, cmin float64
			have := false
			for _, c := range cwin {
				if math.IsNaN(c) {
					continue // pre-freeze index still in window
				}
				if !have {
					cmax, cmin, have = c, c, true
					continue
				}
				cmax = math.Max(cmax, c)
				cmin = math.Min(cmin, c)
			}
			if !have {
				continue
			}
			if !gok || got != cmax-cmin {
				t.Fatalf("window=%d step=%d: cusum range %v want %v", window, i, got, cmax-cmin)
			}
		}
	}
}

func v0(rng *rand.Rand) float64 { return rng.Float64() * 3 }

// TestStreamConfidenceDetectsShift checks the streaming detector verdict:
// near-zero confidence while the stream holds steady noise, high confidence
// once a sustained level shift crosses the window.
func TestStreamConfidenceDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewStream(100)
	for i := 0; i < 300; i++ {
		s.Push(40 + rng.NormFloat64())
	}
	conf, ok := s.Confidence(200)
	if !ok {
		t.Fatal("confidence unavailable on a warm stream")
	}
	if conf >= 0.99 {
		t.Fatalf("steady noise scored confidence %v", conf)
	}
	for i := 0; i < 60; i++ {
		s.Push(90 + rng.NormFloat64())
	}
	conf, ok = s.Confidence(200)
	if !ok || conf < 0.95 {
		t.Fatalf("sustained shift scored confidence %v (ok=%v), want >= 0.95", conf, ok)
	}
	if r, ok := s.CusumRange(); !ok || r <= 0 {
		t.Fatalf("cusum range %v after shift", r)
	}
}

func TestStreamResetAndRebase(t *testing.T) {
	s := NewStream(10)
	for i := 0; i < 40; i++ {
		s.Push(float64(i))
	}
	if s.Count() != 40 || s.WindowLen() != 10 {
		t.Fatalf("count=%d windowLen=%d", s.Count(), s.WindowLen())
	}
	s.Rebase()
	if _, ok := s.CusumRange(); ok {
		t.Fatal("cusum range should be empty right after rebase")
	}
	s.Push(100)
	if _, ok := s.CusumRange(); !ok {
		t.Fatal("cusum range should resume after rebase + push")
	}
	s.Reset()
	if s.Count() != 0 || s.WindowLen() != 0 {
		t.Fatal("reset left state behind")
	}
	if _, _, ok := s.WindowMinMax(); ok {
		t.Fatal("min/max should be empty after reset")
	}
	if s.Bytes() <= 0 {
		t.Fatal("reset should keep buffers, so Bytes stays positive")
	}
}

// TestDetectThresholdsDeterministic: table-driven detection is a pure
// function of the window — identical across calls and across goroutines
// racing to build the shared tables.
func TestDetectThresholdsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 120)
	for i := range vals {
		vals[i] = 10 + rng.NormFloat64()
		if i >= 60 {
			vals[i] += 25
		}
	}
	cfg := Config{Thresholds: 200, Confidence: 0.95}
	want := Detect(vals, cfg)
	if len(want) == 0 {
		t.Fatal("table-driven detection missed a 25-sigma step")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := Detect(vals, cfg)
			if len(got) != len(want) {
				t.Errorf("goroutine saw %d points, want %d", len(got), len(want))
				return
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("point %d differs: %+v vs %+v", i, got[i], want[i])
				}
			}
		}()
	}
	wg.Wait()
}

// TestDetectThresholdsAgreesWithBootstrap: on an unambiguous step the two
// significance tests must select the same change point, and on constant
// input both must stay silent.
func TestDetectThresholdsAgreesWithBootstrap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 20 + rng.NormFloat64()*0.5
		if i >= 50 {
			vals[i] += 30
		}
	}
	boot := Detect(vals, Config{Bootstraps: 200, Rand: rand.New(rand.NewSource(1))})
	tbl := Detect(vals, Config{Thresholds: 200})
	if len(boot) == 0 || len(tbl) == 0 {
		t.Fatalf("step missed: bootstrap=%d table=%d points", len(boot), len(tbl))
	}
	if boot[0].Index != tbl[0].Index {
		// Both must land on the step; secondary points may differ at the
		// significance margin.
		t.Fatalf("primary point differs: bootstrap idx %d, table idx %d", boot[0].Index, tbl[0].Index)
	}
	flat := make([]float64, 60)
	for i := range flat {
		flat[i] = 7
	}
	if pts := Detect(flat, Config{Thresholds: 200}); len(pts) != 0 {
		t.Fatalf("constant series produced %d table-mode points", len(pts))
	}
}

// TestTableFalsePositiveRate: at confidence 0.95 the table test should pass
// white noise through quietly — well under a 15% top-level trip rate over
// seeded trials (the bootstrap's own behavior on iid input).
func TestTableFalsePositiveRate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	trips := 0
	const trials = 200
	vals := make([]float64, 80)
	for trial := 0; trial < trials; trial++ {
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		idx, sdiff := cusumPeak(vals)
		if idx <= 0 || idx >= len(vals)-1 {
			continue
		}
		if tableConfidence(vals, sdiff, 200) >= 0.95 {
			trips++
		}
	}
	if trips > trials*15/100 {
		t.Fatalf("table test tripped on %d/%d white-noise windows", trips, trials)
	}
}
