package changepoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func stepSeries(n, at int, before, after, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		base := before
		if i >= at {
			base = after
		}
		vals[i] = base + noise*rng.NormFloat64()
	}
	return vals
}

func TestDetectSingleStep(t *testing.T) {
	vals := stepSeries(100, 60, 10, 30, 0.5, 1)
	points := Detect(vals, Config{})
	if len(points) == 0 {
		t.Fatal("no change point detected on a clear step")
	}
	found := false
	for _, p := range points {
		if p.Index >= 55 && p.Index <= 65 {
			found = true
			if p.Confidence < 0.95 {
				t.Errorf("low confidence %v at clear step", p.Confidence)
			}
			if math.Abs(p.Magnitude-20) > 3 {
				t.Errorf("magnitude = %v, want ~20", p.Magnitude)
			}
		}
	}
	if !found {
		t.Errorf("step at 60 not found; points = %+v", points)
	}
}

func TestDetectNoChangeOnStationaryNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 120)
	for i := range vals {
		vals[i] = 50 + rng.NormFloat64()
	}
	points := Detect(vals, Config{Confidence: 0.99})
	// Stationary noise should produce few, low-magnitude points.
	for _, p := range points {
		if p.Magnitude > 2.5 {
			t.Errorf("spurious large change point: %+v", p)
		}
	}
}

func TestDetectMultipleSteps(t *testing.T) {
	vals := make([]float64, 150)
	rng := rand.New(rand.NewSource(2))
	for i := range vals {
		base := 10.0
		if i >= 50 {
			base = 25
		}
		if i >= 100 {
			base = 45
		}
		vals[i] = base + 0.5*rng.NormFloat64()
	}
	points := Detect(vals, Config{})
	var near50, near100 bool
	for _, p := range points {
		if p.Index >= 45 && p.Index <= 55 {
			near50 = true
		}
		if p.Index >= 95 && p.Index <= 105 {
			near100 = true
		}
	}
	if !near50 || !near100 {
		t.Errorf("steps not found: near50=%v near100=%v points=%+v", near50, near100, points)
	}
}

func TestDetectOrdering(t *testing.T) {
	vals := stepSeries(200, 80, 0, 40, 1, 3)
	points := Detect(vals, Config{})
	for i := 1; i < len(points); i++ {
		if points[i].Index <= points[i-1].Index {
			t.Fatalf("points not strictly ordered: %+v", points)
		}
	}
}

func TestDetectShortInput(t *testing.T) {
	if got := Detect([]float64{1, 2}, Config{}); len(got) != 0 {
		t.Errorf("short input should yield no points, got %+v", got)
	}
	if got := Detect(nil, Config{}); len(got) != 0 {
		t.Errorf("nil input should yield no points, got %+v", got)
	}
}

func TestSelectOutliersKeepsLargest(t *testing.T) {
	points := []Point{
		{Index: 10, Magnitude: 1},
		{Index: 20, Magnitude: 1.2},
		{Index: 30, Magnitude: 0.9},
		{Index: 40, Magnitude: 1.1},
		{Index: 50, Magnitude: 25}, // the abnormal one
	}
	out := SelectOutliers(points, 1.5)
	if len(out) != 1 || out[0].Index != 50 {
		t.Errorf("SelectOutliers = %+v, want only index 50", out)
	}
}

func TestSelectOutliersFewCandidates(t *testing.T) {
	points := []Point{{Index: 1, Magnitude: 3}, {Index: 2, Magnitude: 4}}
	out := SelectOutliers(points, 1.5)
	if len(out) != 2 {
		t.Errorf("with <3 candidates all should be kept, got %+v", out)
	}
}

func TestSelectOutliersUniformFallsBackToLargest(t *testing.T) {
	points := []Point{
		{Index: 1, Magnitude: 5},
		{Index: 2, Magnitude: 5},
		{Index: 3, Magnitude: 5.0001},
		{Index: 4, Magnitude: 5},
	}
	out := SelectOutliers(points, 1.5)
	if len(out) != 1 || out[0].Index != 3 {
		t.Errorf("uniform magnitudes should keep the single largest, got %+v", out)
	}
}

func TestSelectOutliersDoesNotMutateInput(t *testing.T) {
	points := []Point{{Index: 1, Magnitude: 1}, {Index: 2, Magnitude: 2}}
	_ = SelectOutliers(points, 1.5)
	if points[0].Index != 1 || points[1].Index != 2 {
		t.Error("input mutated")
	}
}

func TestRollbackOnsetGradualRamp(t *testing.T) {
	// Gradual fault: ramp starts at 100; detector may fire mid-ramp. The
	// rollback should walk to the earliest change point on the ramp, since
	// all ramp points share the same tangent.
	n := 200
	vals := make([]float64, n)
	for i := range vals {
		if i >= 100 {
			vals[i] = float64(i-100) * 2
		}
	}
	points := []Point{
		{Index: 105},
		{Index: 120},
		{Index: 140}, // selected abnormal point, mid-manifestation
	}
	onset := RollbackOnset(vals, points, 2, 0.1)
	// The sample-level refinement walks past the earliest detected change
	// point to the true ramp foot at 100.
	if onset < 98 || onset > 105 {
		t.Errorf("onset = %d, want the ramp foot (~100)", onset)
	}
}

func TestRollbackOnsetStopsAtDistinctTangent(t *testing.T) {
	// Flat, then ramp: a pre-fault change point on the flat part has a
	// distinct tangent, so rollback must stop at the first ramp point.
	n := 200
	vals := make([]float64, n)
	for i := range vals {
		if i >= 100 {
			vals[i] = float64(i-100) * 5
		}
	}
	points := []Point{
		{Index: 40},  // normal fluctuation on the flat region
		{Index: 110}, // fault onset
		{Index: 150}, // selected abnormal point
	}
	onset := RollbackOnset(vals, points, 2, 0.1)
	// Rollback must not cross into the flat region (the change point at 40
	// has a distinct tangent); the refinement lands at the ramp foot.
	if onset < 98 || onset > 110 {
		t.Errorf("onset = %d, want the ramp foot (~100)", onset)
	}
}

func TestRollbackOnsetBounds(t *testing.T) {
	vals := []float64{1, 2, 3}
	if got := RollbackOnset(vals, nil, 0, 0.1); got != 0 {
		t.Errorf("empty points should yield 0, got %d", got)
	}
	points := []Point{{Index: 1}}
	if got := RollbackOnset(vals, points, 5, 0.1); got != 0 {
		t.Errorf("out-of-range abnormalIdx should yield 0, got %d", got)
	}
	// vals is a pure ramp, so the sample-level refinement walks to 0.
	if got := RollbackOnset(vals, points, 0, 0.1); got != 0 {
		t.Errorf("single point rollback on a pure ramp = %d, want 0", got)
	}
}

// Property: bootstrap confidence is always within [0,1] and indices within
// bounds, for arbitrary inputs.
func TestDetectInvariantsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = math.Mod(v, 1e6)
		}
		points := Detect(vals, Config{Bootstraps: 30})
		for _, p := range points {
			if p.Confidence < 0 || p.Confidence > 1 {
				return false
			}
			if p.Index <= 0 || p.Index >= len(vals) {
				return false
			}
			if p.Magnitude < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: detection is deterministic for a fixed config seed.
func TestDetectDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 80)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		a := Detect(vals, Config{Rand: rand.New(rand.NewSource(9))})
		b := Detect(vals, Config{Rand: rand.New(rand.NewSource(9))})
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
