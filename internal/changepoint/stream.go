package changepoint

import (
	"math"
	"sort"
)

// Stream maintains change-point statistics over a metric stream with O(1)
// amortized work per sample — the Hunter-style incremental counterpart of
// the batch detector. Every Push updates:
//
//   - a Welford mean/variance over the whole stream since the last Reset
//     (the long-run "normal level" estimate);
//   - windowed sum and sum-of-squares over the last `window` samples;
//   - exact sliding-window min/max via monotonic deques;
//   - exact sliding-window extrema of the reference CUSUM
//     s_j = Σ_{i≤j} (v_i − μref), the textbook streaming CUSUM against a
//     frozen reference mean, also via monotonic deques.
//
// μref is frozen the first time the window fills (and re-frozen by Rebase),
// because a mean that moved with every sample would invalidate previously
// enqueued CUSUM values — the fixed-reference form is what makes the
// extrema maintainable in O(1) rather than O(window) per sample.
//
// Stream is the per-sample half of streaming selection: the shard updates
// one per metric on every Observe, exposing the warm-state statistics that
// /metrics and StreamingStats report and giving the differential tests an
// incremental CUSUM to pit against the batch scan. The selection kernel's
// verdict bits never depend on it — byte-equality between streaming and
// batch mode is anchored on the sorted context windows and the threshold
// tables, both of which are arithmetic-identical to the batch path, while
// the accumulator's floating point (windowed sums maintained by
// subtraction) is only telemetry-grade.
//
// The zero value is unusable; construct with NewStream. Not safe for
// concurrent use.
type Stream struct {
	window int

	// Whole-stream Welford.
	count int64
	mean  float64
	m2    float64

	// Window ring of raw values.
	ring []float64
	head int
	n    int

	// Windowed moments, maintained by add/subtract.
	winSum   float64
	winSumSq float64

	// Reference CUSUM state.
	idx     int64 // global index of the last pushed sample (1-based)
	ref     float64
	refSet  bool
	cusum   float64 // s_idx against ref
	csMax   deque   // (j, s_j) decreasing s
	csMin   deque   // (j, s_j) increasing s
	valMax  deque   // (j, v_j) decreasing v
	valMin  deque   // (j, v_j) increasing v
	rebases int
}

// deque is a monotonic index/value deque over the sliding window.
type deque struct {
	idx  []int64
	vals []float64
}

func (d *deque) reset() {
	d.idx = d.idx[:0]
	d.vals = d.vals[:0]
}

// push appends (j, v), first popping entries the new value dominates.
// better(a, b) reports whether a should outlive b (e.g. a >= b for a
// max-deque).
func (d *deque) push(j int64, v float64, better func(a, b float64) bool) {
	for len(d.vals) > 0 && better(v, d.vals[len(d.vals)-1]) {
		d.idx = d.idx[:len(d.idx)-1]
		d.vals = d.vals[:len(d.vals)-1]
	}
	d.idx = append(d.idx, j)
	d.vals = append(d.vals, v)
}

// expire drops front entries with index <= cutoff. Slicing off the front
// keeps it O(1) per dropped entry; append's occasional reallocation copies
// at most the live window, so pushes stay amortized O(1).
func (d *deque) expire(cutoff int64) {
	for len(d.idx) > 0 && d.idx[0] <= cutoff {
		d.idx = d.idx[1:]
		d.vals = d.vals[1:]
	}
}

func (d *deque) front() (float64, bool) {
	if len(d.vals) == 0 {
		return 0, false
	}
	return d.vals[0], true
}

func geq(a, b float64) bool { return a >= b }
func leq(a, b float64) bool { return a <= b }

// NewStream returns a stream tracking the last `window` samples (window < 2
// is raised to 2).
func NewStream(window int) *Stream {
	if window < 2 {
		window = 2
	}
	return &Stream{window: window, ring: make([]float64, window)}
}

// Window returns the configured window length.
func (s *Stream) Window() int { return s.window }

// Count returns the number of samples pushed since the last Reset.
func (s *Stream) Count() int64 { return s.count }

// Push consumes the next sample in O(1) amortized time.
func (s *Stream) Push(v float64) {
	// Whole-stream Welford.
	s.count++
	d := v - s.mean
	s.mean += d / float64(s.count)
	s.m2 += d * (v - s.mean)

	// Window ring + moments.
	if s.n == s.window {
		old := s.ring[s.head]
		s.winSum -= old
		s.winSumSq -= old * old
		s.head = (s.head + 1) % s.window
		s.n--
	}
	s.ring[(s.head+s.n)%s.window] = v
	s.n++
	s.winSum += v
	s.winSumSq += v * v

	s.idx++
	cutoff := s.idx - int64(s.window)
	s.valMax.push(s.idx, v, geq)
	s.valMin.push(s.idx, v, leq)
	s.valMax.expire(cutoff)
	s.valMin.expire(cutoff)

	// Freeze the reference the first time the window fills; until then the
	// CUSUM deques idle (their extrema would mix pre-reference samples).
	if !s.refSet {
		if s.n == s.window {
			s.ref = s.mean
			s.refSet = true
			s.cusum = 0
			s.csMax.reset()
			s.csMin.reset()
		}
		return
	}
	s.cusum += v - s.ref
	s.csMax.push(s.idx, s.cusum, geq)
	s.csMin.push(s.idx, s.cusum, leq)
	s.csMax.expire(cutoff)
	s.csMin.expire(cutoff)
}

// Rebase re-freezes the CUSUM reference at the current whole-stream mean
// and restarts the reference CUSUM. Long-lived streams call it when the
// workload's normal level drifts far from the frozen reference.
func (s *Stream) Rebase() {
	s.ref = s.mean
	s.refSet = s.n == s.window
	s.cusum = 0
	s.csMax.reset()
	s.csMin.reset()
	s.rebases++
}

// Reset discards all state, keeping the allocated buffers.
func (s *Stream) Reset() {
	s.count, s.mean, s.m2 = 0, 0, 0
	s.head, s.n = 0, 0
	s.winSum, s.winSumSq = 0, 0
	s.idx, s.cusum, s.ref = 0, 0, 0
	s.refSet = false
	s.csMax.reset()
	s.csMin.reset()
	s.valMax.reset()
	s.valMin.reset()
}

// Mean returns the whole-stream running mean.
func (s *Stream) Mean() float64 { return s.mean }

// Std returns the whole-stream running population standard deviation.
func (s *Stream) Std() float64 {
	if s.count == 0 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.count))
}

// WindowLen returns how many samples currently sit in the window.
func (s *Stream) WindowLen() int { return s.n }

// WindowMean returns the mean over the current window contents.
func (s *Stream) WindowMean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.winSum / float64(s.n)
}

// WindowStd returns the population standard deviation over the window.
func (s *Stream) WindowStd() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.winSum / float64(s.n)
	v := s.winSumSq/float64(s.n) - m*m
	if v < 0 { // subtraction rounding on near-constant streams
		v = 0
	}
	return math.Sqrt(v)
}

// WindowMinMax returns the exact min and max over the current window.
func (s *Stream) WindowMinMax() (lo, hi float64, ok bool) {
	lo, okLo := s.valMin.front()
	hi, okHi := s.valMax.front()
	return lo, hi, okLo && okHi
}

// CusumRange returns the range (max − min) of the reference CUSUM over the
// current window, and whether the reference has been frozen yet. It is the
// streaming analogue of the batch detector's maxS − minS statistic.
func (s *Stream) CusumRange() (float64, bool) {
	if !s.refSet {
		return 0, false
	}
	hi, okHi := s.csMax.front()
	lo, okLo := s.csMin.front()
	if !okHi || !okLo {
		return 0, false
	}
	return hi - lo, true
}

// Confidence ranks the current CUSUM range against the precomputed null
// table for the window length (tables.go), returning the same
// fraction-below score the batch detector computes for a segment. k is the
// table's resample count (e.g. Config.Thresholds).
func (s *Stream) Confidence(k int) (float64, bool) {
	r, ok := s.CusumRange()
	if !ok || s.n < s.window || k <= 0 {
		return 0, false
	}
	sd := s.WindowStd()
	if sd == 0 || r == 0 {
		return 0, true
	}
	x := r / (sd * math.Sqrt(float64(s.n)))
	tbl := nullTable(s.n, k)
	below := sort.SearchFloat64s(tbl, x)
	return float64(below) / float64(len(tbl)), true
}

// Bytes reports the approximate heap memory retained by the stream.
func (s *Stream) Bytes() int64 {
	b := int64(cap(s.ring)) * 8
	for _, d := range []*deque{&s.csMax, &s.csMin, &s.valMax, &s.valMin} {
		b += int64(cap(d.idx))*8 + int64(cap(d.vals))*8
	}
	return b
}
