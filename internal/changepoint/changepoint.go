// Package changepoint implements the change point detection machinery used
// by FChain and by the PAL-style baselines.
//
// The detector is the classic "CUSUM + Bootstrap" scheme (Basseville &
// Nikiforov; Taylor's change-point analysis, cited as [21] in the paper):
// a segment's cumulative sums of deviations from the mean peak at a change
// point, and a bootstrap over shuffled copies of the segment estimates the
// confidence that the observed peak is not random. Detected segments are
// split recursively. On top of the raw detector the package provides the
// magnitude-outlier filter (from PAL [13]) and the tangent-based rollback
// that FChain uses to locate the precise onset of an abnormal change
// (paper §II-B).
package changepoint

import (
	"math"
	"math/rand"

	"fchain/internal/timeseries"
)

// Point is a detected change point.
type Point struct {
	Index      int     // sample index within the analyzed window
	Confidence float64 // bootstrap confidence in [0,1]
	Magnitude  float64 // |mean after − mean before|
	Before     float64 // mean of the segment before the point
	After      float64 // mean of the segment after the point
}

// Config controls detection.
type Config struct {
	// Bootstraps is the number of bootstrap reshuffles per segment
	// (default 200).
	Bootstraps int
	// Confidence is the minimum bootstrap confidence to accept a change
	// point (default 0.95).
	Confidence float64
	// MinSegment is the smallest segment (in samples) that is still
	// searched for further change points (default 5).
	MinSegment int
	// Rand supplies the bootstrap shuffles; a deterministic source is used
	// when nil. Ignored when Thresholds is set.
	Rand *rand.Rand
	// Thresholds, when positive, replaces the per-query bootstrap with the
	// precomputed null-distribution tables (tables.go): the observed CUSUM
	// range is normalized by σ̂√n and ranked against Thresholds fixed-seed
	// simulated null samples for the segment's length. Detection then does
	// no resampling and no RNG draws at query time — it is a pure function
	// of the window contents, which is the property streaming selection
	// relies on — at the same 1/Thresholds confidence granularity the
	// bootstrap had. Zero keeps the classic bootstrap (the PAL/CUSUM
	// baselines stay on it so the paper-faithful comparison schemes are
	// untouched).
	Thresholds int
}

func (c Config) withDefaults() Config {
	if c.Bootstraps <= 0 {
		c.Bootstraps = 200
	}
	if c.Confidence <= 0 || c.Confidence > 1 {
		c.Confidence = 0.95
	}
	if c.MinSegment < 3 {
		c.MinSegment = 5
	}
	if c.Rand == nil && c.Thresholds <= 0 {
		c.Rand = rand.New(rand.NewSource(1))
	}
	return c
}

// Scratch holds the reusable working memory of one detection caller: the
// bootstrap shuffle buffer and the detected/filtered point slices. A zero
// Scratch is ready to use; after the first few calls warm its buffers,
// detection and outlier filtering allocate nothing. A Scratch is owned by
// one goroutine at a time — the parallel analysis engine keeps one per
// worker. Slices returned by the scratch-based methods alias the scratch
// and are invalidated by its next use.
type Scratch struct {
	shuffled []float64
	points   []Point
	outliers []Point
	mags     []float64
}

// Detect finds change points in vals using CUSUM + bootstrap with recursive
// segmentation, returning them in increasing index order.
func Detect(vals []float64, cfg Config) []Point {
	var sc Scratch
	return sc.Detect(vals, cfg)
}

// Detect is the scratch-reusing variant of the package-level Detect: the
// returned slice is backed by the scratch and only valid until its next
// Detect call.
func (sc *Scratch) Detect(vals []float64, cfg Config) []Point {
	cfg = cfg.withDefaults()
	if cfg.Thresholds <= 0 && cap(sc.shuffled) < len(vals) {
		sc.shuffled = make([]float64, len(vals))
	}
	sc.points = sc.points[:0]
	sc.detectSegment(vals, 0, cfg)
	out := sc.points
	// Insertion sort: point counts are small, indices are unique (segments
	// are disjoint), and sort.Slice would box its argument — the only
	// allocation left on the hot detection path.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Index < out[j-1].Index; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (sc *Scratch) detectSegment(vals []float64, offset int, cfg Config) {
	if len(vals) < cfg.MinSegment {
		return
	}
	idx, sdiff := cusumPeak(vals)
	if idx <= 0 || idx >= len(vals)-1 {
		return
	}
	var conf float64
	if cfg.Thresholds > 0 {
		conf = tableConfidence(vals, sdiff, cfg.Thresholds)
	} else {
		conf = bootstrapConfidence(vals, sdiff, cfg, sc.shuffled[:len(vals)])
	}
	if conf < cfg.Confidence {
		return
	}
	before := timeseries.Mean(vals[:idx])
	after := timeseries.Mean(vals[idx:])
	sc.points = append(sc.points, Point{
		Index:      offset + idx,
		Confidence: conf,
		Magnitude:  math.Abs(after - before),
		Before:     before,
		After:      after,
	})
	sc.detectSegment(vals[:idx], offset, cfg)
	sc.detectSegment(vals[idx:], offset+idx, cfg)
}

// cusumPeak returns the index of the maximum |CUSUM| and the CUSUM range
// (max − min), the statistic bootstrapped for significance.
func cusumPeak(vals []float64) (idx int, sdiff float64) {
	m := timeseries.Mean(vals)
	var (
		s        float64
		maxS     = math.Inf(-1)
		minS     = math.Inf(1)
		maxAbs   float64
		maxAbsAt int
	)
	for i, v := range vals {
		s += v - m
		if s > maxS {
			maxS = s
		}
		if s < minS {
			minS = s
		}
		if a := math.Abs(s); a > maxAbs {
			maxAbs = a
			maxAbsAt = i + 1 // change occurs after sample i
		}
	}
	return maxAbsAt, maxS - minS
}

// bootstrapConfidence estimates the fraction of random reorderings of vals
// whose CUSUM range falls below the observed one. shuffled is a
// caller-provided resampling buffer of len(vals).
func bootstrapConfidence(vals []float64, observed float64, cfg Config, shuffled []float64) float64 {
	if observed == 0 {
		return 0
	}
	copy(shuffled, vals)
	below := 0
	for b := 0; b < cfg.Bootstraps; b++ {
		cfg.Rand.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		if _, sd := cusumPeak(shuffled); sd < observed {
			below++
		}
	}
	return float64(below) / float64(cfg.Bootstraps)
}

// SelectOutliers keeps only change points whose magnitude is an outlier
// among all detected change points of the window: magnitude > mean +
// sigma*stddev of the magnitudes (PAL's magnitude-based filter; sigma is
// typically 1.0–2.0). With fewer than 3 candidates all are kept, since no
// meaningful outlier statistics exist.
func SelectOutliers(points []Point, sigma float64) []Point {
	var sc Scratch
	return sc.SelectOutliers(points, sigma)
}

// SelectOutliers is the scratch-reusing variant of the package-level
// SelectOutliers: the returned slice is backed by the scratch and only valid
// until its next SelectOutliers call.
func (sc *Scratch) SelectOutliers(points []Point, sigma float64) []Point {
	if len(points) < 3 {
		out := append(sc.outliers[:0], points...)
		sc.outliers = out
		return out
	}
	mags := sc.mags[:0]
	for _, p := range points {
		mags = append(mags, p.Magnitude)
	}
	sc.mags = mags
	mean := timeseries.Mean(mags)
	sd := timeseries.Std(mags)
	thresh := mean + sigma*sd
	out := sc.outliers[:0]
	for _, p := range points {
		if p.Magnitude > thresh {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		// Degenerate distribution (all magnitudes similar): fall back to
		// the largest.
		best := points[0]
		for _, p := range points[1:] {
			if p.Magnitude > best.Magnitude {
				best = p
			}
		}
		out = append(out, best)
	}
	sc.outliers = out
	return out
}

// RollbackOnset walks an abnormal change point backwards to the beginning of
// the fault manifestation (paper §II-B): starting from the abnormal point,
// compare the tangent (local slope of the smoothed series) at the current
// point with the tangent at its preceding change point; while they are close
// (difference < tol, e.g. 0.1, relative to the local value scale), roll back
// to the preceding point. Returns the sample index of the manifestation
// onset.
//
// vals is the (smoothed) window; points are all detected change points in
// increasing index order; abnormalIdx is the index *within points* of the
// selected abnormal change point.
func RollbackOnset(vals []float64, points []Point, abnormalIdx int, tol float64) int {
	if abnormalIdx < 0 || abnormalIdx >= len(points) {
		return 0
	}
	if tol <= 0 {
		tol = 0.1
	}
	cur := abnormalIdx
	for cur > 0 {
		prev := cur - 1
		tanCur := timeseries.SlopeAt(vals, points[cur].Index, 2)
		tanPrev := timeseries.SlopeAt(vals, points[prev].Index, 2)
		// Compare tangents relative to their own scale, so tol is unit-free
		// across metrics (bytes/s vs percent).
		scale := math.Max(math.Abs(tanCur), math.Abs(tanPrev))
		if scale == 0 {
			scale = 1
		}
		if math.Abs(tanCur-tanPrev)/scale >= tol {
			break
		}
		cur = prev
	}
	// Refine to the sample level: recursive CUSUM segmentation rarely
	// leaves a change point exactly at the foot of a gradual ramp, so walk
	// backwards while the local slope keeps the onset's direction and a
	// substantial share of its steepness.
	idx := points[cur].Index
	ref := timeseries.SlopeAt(vals, idx, 2)
	base := points[cur].Before
	shift := points[cur].After - base
	if ref != 0 {
		for idx > 0 {
			if timeseries.SlopeAt(vals, idx-1, 2)/ref < 0.3 {
				break
			}
			// The onset cannot precede the point where the metric left its
			// pre-change level: without this, a workload rise of similar
			// slope just before the fault would absorb the walk.
			if shift != 0 && (vals[idx-1]-base)/shift < 0.03 {
				break
			}
			idx--
		}
	}
	return idx
}
