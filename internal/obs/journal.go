package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Event is one journal entry: a monotonically increasing sequence number, a
// wall-clock timestamp, an event type, and an arbitrary JSON payload.
// Events are appended as single JSONL lines, so the journal can be tailed,
// grepped, and replayed with standard tools.
type Event struct {
	Seq  int64           `json:"seq"`
	TS   int64           `json:"ts_unix_ns"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Journal is an append-only JSONL event log: the machine-readable record of
// what the pipeline did and why (which components were analyzed, what was
// selected, what the verdict was). Records are flushed per event, so a
// crash loses at most the entry being written — and a partial final line is
// exactly what ReadJournal tolerates. A nil *Journal discards everything.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	seq   int64
	clock func() int64
	path  string
}

// OpenJournal opens (creating if needed) an append-mode JSONL journal at
// path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open journal: %w", err)
	}
	return &Journal{
		f:     f,
		w:     bufio.NewWriter(f),
		clock: func() int64 { return time.Now().UnixNano() },
		path:  path,
	}, nil
}

// SetClock overrides the journal's timestamp source (tests pin it for
// deterministic journals).
func (j *Journal) SetClock(clock func() int64) {
	if j == nil || clock == nil {
		return
	}
	j.mu.Lock()
	j.clock = clock
	j.mu.Unlock()
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Record appends one event, marshaling data as its payload, and flushes it
// to the OS. On a nil journal it is a no-op.
func (j *Journal) Record(eventType string, data any) error {
	if j == nil {
		return nil
	}
	var payload json.RawMessage
	if data != nil {
		raw, err := json.Marshal(data)
		if err != nil {
			return fmt.Errorf("obs: marshal journal event %q: %w", eventType, err)
		}
		payload = raw
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	line, err := json.Marshal(Event{Seq: j.seq, TS: j.clock(), Type: eventType, Data: payload})
	if err != nil {
		return fmt.Errorf("obs: marshal journal event %q: %w", eventType, err)
	}
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("obs: append journal: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("obs: append journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("obs: flush journal: %w", err)
	}
	return nil
}

// Sync flushes buffered events and fsyncs the journal file.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	flushErr := j.w.Flush()
	closeErr := j.f.Close()
	j.f = nil
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// ReadJournal parses every complete event line of a journal file, returning
// the events in order. A malformed complete line is an error; a trailing
// partial line (a write cut off by a crash) is tolerated and discarded,
// mirroring how the checkpoint loader treats torn files.
func ReadJournal(path string) ([]Event, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var events []Event
	start := 0
	for i := 0; i < len(raw); i++ {
		if raw[i] != '\n' {
			continue
		}
		line := raw[start:i]
		start = i + 1
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return events, fmt.Errorf("obs: journal %s: malformed event at byte %d: %w", path, start, err)
		}
		events = append(events, ev)
	}
	return events, nil
}

// WriteFileAtomic writes data to path via a same-directory temp file, fsync,
// and rename — the checkpoint pattern — so readers never observe a torn
// file. The debug server's persisted traces and the golden-file updater use
// it for the same reason checkpoints do: a crash mid-write must leave
// either the old content or the new, never a mix.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("obs: atomic write temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	return nil
}
