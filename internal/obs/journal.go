package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Event is one journal entry: a monotonically increasing sequence number, a
// wall-clock timestamp, an event type, and an arbitrary JSON payload.
// Events are appended as single JSONL lines, so the journal can be tailed,
// grepped, and replayed with standard tools.
type Event struct {
	Seq  int64           `json:"seq"`
	TS   int64           `json:"ts_unix_ns"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Journal is an append-only JSONL event log: the machine-readable record of
// what the pipeline did and why (which components were analyzed, what was
// selected, what the verdict was). Records are flushed per event, so a
// crash loses at most the entry being written — and a partial final line is
// exactly what ReadJournal tolerates. A nil *Journal discards everything.
//
// Sequence numbers survive restarts: opening a journal resumes numbering
// after the highest sequence already on disk (across rotated generations),
// so service-mode replay can match accepted violations to served verdicts
// without collisions between runs.
//
// With a byte cap set (OpenJournalRotating) the journal rotates: when an
// append pushes the current file past the cap, it is renamed to path.1
// (shifting older generations to path.2, path.3, ... and dropping the ones
// past the keep count) and a fresh file is started. Long-lived service
// deployments thus hold disk usage near cap*(keep+1) instead of leaking.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	seq   int64
	clock func() int64
	path  string

	maxBytes int64 // rotate when the current file exceeds this; 0 = never
	keep     int   // rotated generations retained
	size     int64 // bytes in the current file
}

// OpenJournal opens (creating if needed) an append-mode JSONL journal at
// path. The journal never rotates; use OpenJournalRotating for long-lived
// service deployments.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalRotating(path, 0, 0)
}

// OpenJournalRotating is OpenJournal with a size cap: once an append pushes
// the current file past maxBytes, the file is rotated to path.1 (older
// generations shift up; at most keep rotated files are retained) and a fresh
// file is started. maxBytes <= 0 disables rotation; keep < 0 is treated as 0
// (rotation truncates without retaining generations).
func OpenJournalRotating(path string, maxBytes int64, keep int) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open journal: %w", err)
	}
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	if keep < 0 {
		keep = 0
	}
	return &Journal{
		f:        f,
		w:        bufio.NewWriter(f),
		seq:      lastSeq(path, keep),
		clock:    func() int64 { return time.Now().UnixNano() },
		path:     path,
		maxBytes: maxBytes,
		keep:     keep,
		size:     size,
	}, nil
}

// lastSeq returns the highest sequence number already recorded at path
// (scanning rotated generations newest-first until one holds events), so a
// reopened journal continues numbering instead of reusing sequence numbers.
func lastSeq(path string, keep int) int64 {
	for _, p := range append([]string{path}, generationPaths(path, keep)...) {
		events, err := ReadJournalFile(p)
		if err != nil && len(events) == 0 {
			continue
		}
		if len(events) > 0 {
			max := int64(0)
			for _, ev := range events {
				if ev.Seq > max {
					max = ev.Seq
				}
			}
			return max
		}
	}
	return 0
}

// generationPaths lists the rotated generation files newest-first, capped at
// keep when keep > 0 and otherwise scanning until the first gap.
func generationPaths(path string, keep int) []string {
	var out []string
	for i := 1; ; i++ {
		if keep > 0 && i > keep {
			break
		}
		p := fmt.Sprintf("%s.%d", path, i)
		if _, err := os.Stat(p); err != nil {
			break
		}
		out = append(out, p)
	}
	return out
}

// SetClock overrides the journal's timestamp source (tests pin it for
// deterministic journals).
func (j *Journal) SetClock(clock func() int64) {
	if j == nil || clock == nil {
		return
	}
	j.mu.Lock()
	j.clock = clock
	j.mu.Unlock()
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Record appends one event, marshaling data as its payload, and flushes it
// to the OS. On a nil journal it is a no-op.
func (j *Journal) Record(eventType string, data any) error {
	_, err := j.RecordSeq(eventType, data)
	return err
}

// RecordSeq is Record also returning the appended event's sequence number
// (0 on a nil journal). Service-mode write-ahead records use the sequence to
// correlate a violation's acceptance with the verdict that later served it.
func (j *Journal) RecordSeq(eventType string, data any) (int64, error) {
	if j == nil {
		return 0, nil
	}
	var payload json.RawMessage
	if data != nil {
		raw, err := json.Marshal(data)
		if err != nil {
			return 0, fmt.Errorf("obs: marshal journal event %q: %w", eventType, err)
		}
		payload = raw
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	line, err := json.Marshal(Event{Seq: j.seq, TS: j.clock(), Type: eventType, Data: payload})
	if err != nil {
		return 0, fmt.Errorf("obs: marshal journal event %q: %w", eventType, err)
	}
	if _, err := j.w.Write(line); err != nil {
		return 0, fmt.Errorf("obs: append journal: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return 0, fmt.Errorf("obs: append journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return 0, fmt.Errorf("obs: flush journal: %w", err)
	}
	j.size += int64(len(line)) + 1
	if j.maxBytes > 0 && j.size > j.maxBytes {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return j.seq, nil
}

// rotateLocked closes the current file, shifts the retained generations up
// one slot (path -> path.1 -> path.2 -> ...), and starts a fresh file. The
// caller holds j.mu.
func (j *Journal) rotateLocked() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("obs: rotate journal: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("obs: rotate journal: %w", err)
	}
	if j.keep == 0 {
		// No generations retained: rotation just truncates.
		if err := os.Remove(j.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("obs: rotate journal: %w", err)
		}
	} else {
		os.Remove(fmt.Sprintf("%s.%d", j.path, j.keep)) // oldest falls off
		for i := j.keep - 1; i >= 1; i-- {
			from := fmt.Sprintf("%s.%d", j.path, i)
			if _, err := os.Stat(from); err != nil {
				continue
			}
			if err := os.Rename(from, fmt.Sprintf("%s.%d", j.path, i+1)); err != nil {
				return fmt.Errorf("obs: rotate journal: %w", err)
			}
		}
		if err := os.Rename(j.path, j.path+".1"); err != nil {
			return fmt.Errorf("obs: rotate journal: %w", err)
		}
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: rotate journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.size = 0
	return nil
}

// Sync flushes buffered events and fsyncs the journal file.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	flushErr := j.w.Flush()
	closeErr := j.f.Close()
	j.f = nil
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// ReadJournal parses every complete event line of a journal, returning the
// events in order. Rotated generations (path.N oldest ... path.1 newest) are
// read before the current file, so a rotated service journal replays as one
// contiguous stream. A malformed complete line is an error; a trailing
// partial line (a write cut off by a crash) is tolerated and discarded,
// mirroring how the checkpoint loader treats torn files.
func ReadJournal(path string) ([]Event, error) {
	gens := generationPaths(path, 0)
	var events []Event
	for i := len(gens) - 1; i >= 0; i-- { // oldest generation first
		evs, err := ReadJournalFile(gens[i])
		if err != nil {
			return events, err
		}
		events = append(events, evs...)
	}
	evs, err := ReadJournalFile(path)
	if err != nil {
		// The current file must exist unless generations do: keep the
		// original not-found error shape when nothing was readable.
		if len(events) == 0 {
			return nil, err
		}
		if !os.IsNotExist(err) {
			return events, err
		}
	}
	return append(events, evs...), nil
}

// ReadJournalFile parses one journal file (no generation stitching),
// tolerating a torn trailing line exactly like ReadJournal.
func ReadJournalFile(path string) ([]Event, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var events []Event
	start := 0
	for i := 0; i < len(raw); i++ {
		if raw[i] != '\n' {
			continue
		}
		line := raw[start:i]
		start = i + 1
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return events, fmt.Errorf("obs: journal %s: malformed event at byte %d: %w", path, start, err)
		}
		events = append(events, ev)
	}
	return events, nil
}

// WriteFileAtomic writes data to path via a same-directory temp file, fsync,
// and rename — the checkpoint pattern — so readers never observe a torn
// file. The debug server's persisted traces and the golden-file updater use
// it for the same reason checkpoints do: a crash mid-write must leave
// either the old content or the new, never a mix.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("obs: atomic write temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	return nil
}
