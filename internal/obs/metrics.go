package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// HistBuckets is the number of log2 histogram buckets, matching
// core.LatencyHist: bucket i counts durations in [2^i, 2^(i+1)) ns, so 40
// buckets span 1 ns to ~18 minutes. Keeping the layouts identical lets the
// analysis engine's per-call PoolStats histograms merge straight into the
// registry without rebucketing.
const HistBuckets = 40

// Counter is a monotonically increasing metric. The zero value is ready;
// every method on a nil *Counter is a no-op, so uninstrumented paths cost a
// pointer test.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (stored as a float64).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a log2-bucketed nanosecond histogram with the same bucket
// layout as core.LatencyHist. It is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets [HistBuckets]int64
	count   int64
	sumNS   int64
	maxNS   int64
}

// log2Bucket returns the bucket index for a nanosecond duration.
func log2Bucket(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	b := 0
	for v := uint64(ns); v > 1; v >>= 1 {
		b++
	}
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	b := log2Bucket(ns)
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.sumNS += ns
	if ns > h.maxNS {
		h.maxNS = ns
	}
	h.mu.Unlock()
}

// MergeLog2 folds an externally accumulated log2 histogram (e.g. a
// core.LatencyHist's fields) into h. buckets longer than HistBuckets are
// folded into the overflow bucket; shorter ones align from bucket 0.
func (h *Histogram) MergeLog2(buckets []int64, count, sumNS, maxNS int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	for i, c := range buckets {
		j := i
		if j >= HistBuckets {
			j = HistBuckets - 1
		}
		h.buckets[j] += c
	}
	h.count += count
	h.sumNS += sumNS
	if maxNS > h.maxNS {
		h.maxNS = maxNS
	}
	h.mu.Unlock()
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// snapshot copies the histogram state under the lock.
func (h *Histogram) snapshot() (buckets [HistBuckets]int64, count, sumNS int64) {
	h.mu.Lock()
	buckets = h.buckets
	count = h.count
	sumNS = h.sumNS
	h.mu.Unlock()
	return buckets, count, sumNS
}

// metricKind tags a registered family for the Prometheus TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is one metric family: a name, help text, and its labeled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]any // label signature -> *Counter | *Gauge | *Histogram
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Get-or-create accessors make wiring idempotent:
// instrumented code asks for its metric by name each time and the registry
// hands back the same instance. A nil *Registry returns nil metrics, whose
// methods no-op, so a daemon run without -debug-addr records nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSignature renders labels deterministically: {k1="v1",k2="v2"} with
// keys sorted, or "" for no labels.
func labelSignature(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the metric instance for (name, labels), creating the
// family and series on first use. A kind clash panics: that is a
// programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind metricKind, labels map[string]string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]any)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
	}
	sig := labelSignature(labels)
	m, ok := f.series[sig]
	if !ok {
		m = mk()
		f.series[sig] = m
	}
	return m
}

// Counter returns the named unlabeled counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help, nil)
}

// CounterWith returns the named counter for one label set.
func (r *Registry) CounterWith(name, help string, labels map[string]string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the named unlabeled gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help, nil)
}

// GaugeWith returns the named gauge for one label set.
func (r *Registry) GaugeWith(name, help string, labels map[string]string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the named unlabeled histogram, creating it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.HistogramWith(name, help, nil)
}

// HistogramWith returns the named histogram for one label set.
func (r *Registry) HistogramWith(name, help string, labels map[string]string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, labels, func() any { return &Histogram{} }).(*Histogram)
}

// WriteProm renders every registered metric in Prometheus text exposition
// format, families and series sorted by name so output is deterministic.
// Histogram durations are exposed in seconds, per Prometheus convention.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		typ := "counter"
		switch f.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			if err := writeSeries(w, f, sig); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one labeled series of a family.
func writeSeries(w io.Writer, f *family, sig string) error {
	switch m := f.series[sig].(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, sig, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %g\n", f.name, sig, m.Value())
		return err
	case *Histogram:
		buckets, count, sumNS := m.snapshot()
		cum := int64(0)
		for i, c := range buckets {
			cum += c
			if c == 0 && i < HistBuckets-1 {
				// Keep the exposition compact: emit only buckets that
				// change the cumulative count, plus the final bucket.
				continue
			}
			le := float64(uint64(1)<<(i+1)) / 1e9
			if err := writeBucket(w, f.name, sig, fmt.Sprintf("%g", le), cum); err != nil {
				return err
			}
		}
		if err := writeBucket(w, f.name, sig, "+Inf", count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name, sig, float64(sumNS)/1e9); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, sig, count)
		return err
	}
	return nil
}

// writeBucket renders one cumulative histogram bucket line, splicing the
// le label into an existing label signature when present.
func writeBucket(w io.Writer, name, sig, le string, cum int64) error {
	if sig == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		return err
	}
	inner := sig[1 : len(sig)-1]
	_, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, inner, le, cum)
	return err
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format (the debug server mounts it at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}
