package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Sink bundles the observability outputs a daemon writes to. Every field is
// optional: nil components discard their input for free, so one Sink value
// threads through the cluster code regardless of which -debug/-journal
// flags the operator set. A nil *Sink behaves like a Sink of nils.
type Sink struct {
	Log     *Logger
	Metrics *Registry
	Traces  *TraceRing
	Journal *Journal
}

// NewSink builds the standard daemon sink: a leveled key=value logger on
// w, a fresh metrics registry, a small ring of recent traces, and — when
// journalPath is non-empty — a JSONL event journal at that path.
func NewSink(w io.Writer, level string, journalPath string) (*Sink, error) {
	return NewSinkRotating(w, level, journalPath, 0, 0)
}

// NewSinkRotating is NewSink with a journal size cap: the journal rotates to
// journalPath.1, .2, ... (keeping at most keep generations) once an append
// pushes it past maxBytes. maxBytes <= 0 never rotates. Long-lived
// service-mode masters use it so the write-ahead journal cannot grow without
// bound.
func NewSinkRotating(w io.Writer, level string, journalPath string, maxBytes int64, keep int) (*Sink, error) {
	s := &Sink{
		Log:     NewLogger(w, ParseLevel(level)),
		Metrics: NewRegistry(),
		Traces:  NewTraceRing(16),
	}
	if journalPath != "" {
		j, err := OpenJournalRotating(journalPath, maxBytes, keep)
		if err != nil {
			return nil, err
		}
		s.Journal = j
	}
	return s, nil
}

// Logger returns the sink's logger (nil-safe).
func (s *Sink) Logger() *Logger {
	if s == nil {
		return nil
	}
	return s.Log
}

// Registry returns the sink's metrics registry (nil-safe).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.Metrics
}

// TraceRing returns the sink's trace ring (nil-safe).
func (s *Sink) TraceRing() *TraceRing {
	if s == nil {
		return nil
	}
	return s.Traces
}

// EventJournal returns the sink's journal (nil-safe).
func (s *Sink) EventJournal() *Journal {
	if s == nil {
		return nil
	}
	return s.Journal
}

// DebugConfig wires a debug server's endpoints.
type DebugConfig struct {
	// Registry backs /metrics (Prometheus text format); nil serves an
	// empty exposition.
	Registry *Registry
	// Traces backs /trace/last and /trace/all; nil serves 404.
	Traces *TraceRing
	// Health, when non-nil, contributes extra fields to /healthz's JSON
	// body (e.g. the master's per-slave liveness map).
	Health func() any
	// History, when non-nil, backs /history (e.g. the master's past
	// localizations, tenant/app-tagged in service mode); nil serves 404.
	History func() any
}

// DebugServer is the opt-in HTTP introspection endpoint a daemon exposes
// with -debug-addr: Prometheus metrics, a health probe, pprof, and the most
// recent pipeline traces.
type DebugServer struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// StartDebug listens on addr (e.g. "127.0.0.1:9090", or ":0" for an
// ephemeral port) and serves:
//
//	/metrics        Prometheus text exposition of cfg.Registry
//	/healthz        {"status":"ok","uptime_s":...} plus cfg.Health() fields
//	/history        cfg.History() as JSON (e.g. past localizations)
//	/trace/last     most recent pipeline trace, as JSON
//	/trace/all      every retained trace, oldest first
//	/debug/pprof/*  the standard pprof handlers
//
// It returns once the listener is ready; requests are served in the
// background until Close.
func StartDebug(addr string, cfg DebugConfig) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	s := &DebugServer{ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.Handle("/metrics", cfg.Registry.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		body := map[string]any{
			"status":   "ok",
			"uptime_s": int64(time.Since(s.start).Seconds()),
		}
		if cfg.Health != nil {
			body["detail"] = cfg.Health()
		}
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, req *http.Request) {
		if cfg.History == nil {
			http.Error(w, "no history source configured", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, cfg.History())
	})
	mux.HandleFunc("/trace/last", func(w http.ResponseWriter, req *http.Request) {
		t := cfg.Traces.Last()
		if t == nil {
			http.Error(w, "no trace recorded yet", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, t)
	})
	mux.HandleFunc("/trace/all", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, cfg.Traces.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the server's listening address.
func (s *DebugServer) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down.
func (s *DebugServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
