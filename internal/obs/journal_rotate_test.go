package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// rotatingJournal opens a journal in a temp dir with the given cap and keep.
func rotatingJournal(t *testing.T, maxBytes int64, keep int) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournalRotating(path, maxBytes, keep)
	if err != nil {
		t.Fatal(err)
	}
	j.SetClock(func() int64 { return 42 })
	return j, path
}

func TestJournalRotatesAtSizeCap(t *testing.T) {
	// Each event line is ~70 bytes; a 200-byte cap forces a rotation every
	// few events.
	j, path := rotatingJournal(t, 200, 2)
	for i := 0; i < 20; i++ {
		if err := j.Record("tick", map[string]any{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	for _, gen := range []string{path + ".1", path + ".2"} {
		if _, err := os.Stat(gen); err != nil {
			t.Errorf("generation %s missing: %v", gen, err)
		}
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Errorf("generation past keep=2 retained: %v", err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() > 400 {
		t.Errorf("current file not fresh after rotation: size=%v err=%v", st.Size(), err)
	}
}

func TestReadJournalStitchesGenerations(t *testing.T) {
	j, path := rotatingJournal(t, 150, 3)
	const n = 30
	for i := 0; i < n; i++ {
		if err := j.Record("tick", map[string]any{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// With keep=3 the oldest generations fell off: the tail must be
	// contiguous and ordered, ending at seq n.
	if len(events) == 0 || len(events) >= n {
		t.Fatalf("stitched %d events, want a proper retained tail of %d", len(events), n)
	}
	for i, ev := range events {
		if want := events[0].Seq + int64(i); ev.Seq != want {
			t.Fatalf("event %d out of order: seq=%d want %d", i, ev.Seq, want)
		}
	}
	if events[len(events)-1].Seq != int64(n) {
		t.Errorf("last stitched seq = %d, want %d", events[len(events)-1].Seq, n)
	}
}

func TestJournalSeqContinuesAcrossReopen(t *testing.T) {
	j, path := rotatingJournal(t, 0, 0)
	for i := 0; i < 3; i++ {
		if err := j.Record("tick", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	seq, err := j2.RecordSeq("tick", nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Errorf("seq after reopen = %d, want 4 (numbering must not restart)", seq)
	}
}

func TestJournalSeqContinuesAcrossRotatedReopen(t *testing.T) {
	j, path := rotatingJournal(t, 150, 2)
	var last int64
	for i := 0; i < 20; i++ {
		seq, err := j.RecordSeq("tick", map[string]any{"i": i})
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The current file may be empty right after a rotation: reopening must
	// look into the generations for the highest seq.
	j2, err := OpenJournalRotating(path, 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	seq, err := j2.RecordSeq("tick", nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != last+1 {
		t.Errorf("seq after rotated reopen = %d, want %d", seq, last+1)
	}
}

func TestReadJournalToleratesTornTailAcrossGenerations(t *testing.T) {
	j, path := rotatingJournal(t, 150, 2)
	for i := 0; i < 12; i++ {
		if err := j.Record("tick", map[string]any{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn partial line at the tail of the
	// current file must be discarded without losing the complete events.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"seq":999,"type":"torn`)
	f.Close()
	after, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(after) != len(before) {
		t.Errorf("torn tail changed event count: %d -> %d", len(before), len(after))
	}
}

func TestJournalRotationKeepZeroTruncates(t *testing.T) {
	j, path := rotatingJournal(t, 120, 0)
	for i := 0; i < 10; i++ {
		if err := j.Record("tick", map[string]any{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Errorf("keep=0 must not retain generations: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("current file missing after truncate rotation: %v", err)
	}
}
