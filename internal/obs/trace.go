// Package obs is FChain's observability layer: a lightweight span tracer
// with a ring-buffered in-memory exporter, a counter/gauge/histogram
// registry rendered in Prometheus text format, a JSONL event journal, a
// leveled key=value logger, and an opt-in HTTP debug server that exposes
// all of them.
//
// The package is designed around two constraints:
//
//   - Disabled must be free. Every recording type is nil-receiver safe, so
//     instrumented code passes nil sinks on the hot path and pays only a
//     pointer test — the analysis kernels stay allocation-free and within
//     the benchmark regression budget when observability is off.
//   - Traces must be deterministic in structure. The parallel analysis
//     engine records each task into a private sub-trace and grafts them in
//     canonical order, so the span tree (names, parents, attributes) is
//     bit-identical to the serial path at any worker count; only the
//     timings differ, and Normalize zeroes those for golden comparisons.
package obs

import (
	"fmt"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are stored as strings
// so a marshaled trace is deterministic and diffable.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// Span is one timed operation in a pipeline trace. IDs are indices into the
// owning trace's span slice; Parent is -1 for a root span.
type Span struct {
	ID      int    `json:"id"`
	Parent  int    `json:"parent"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"` // offset from the trace's start
	DurNS   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute and whether it is present.
func (s *Span) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// Trace is one pipeline execution's span tree. It is built by exactly one
// goroutine at a time (the parallel engine gives each worker its own trace
// and grafts them afterwards); a nil *Trace disables every method, which is
// how instrumented code runs untraced for free.
type Trace struct {
	// Name identifies the traced operation ("localize", "analyze", ...).
	Name string `json:"name"`
	// TV is the SLO-violation time the pipeline ran for.
	TV int64 `json:"tv"`
	// Spans holds the span tree in creation order; a span's ID is its index.
	Spans []Span `json:"spans"`

	start time.Time
}

// NewTrace starts a trace for the named operation at violation time tv.
func NewTrace(name string, tv int64) *Trace {
	return &Trace{Name: name, TV: tv, start: time.Now()}
}

// Start opens a child span of parent (-1 for a root span) and returns its
// ID. On a nil trace it returns -1, which every other method accepts.
func (t *Trace) Start(parent int, name string) int {
	if t == nil {
		return -1
	}
	id := len(t.Spans)
	t.Spans = append(t.Spans, Span{
		ID:      id,
		Parent:  parent,
		Name:    name,
		StartNS: time.Since(t.start).Nanoseconds(),
	})
	return id
}

// End closes span id, recording its duration.
func (t *Trace) End(id int) {
	if t == nil || id < 0 || id >= len(t.Spans) {
		return
	}
	t.Spans[id].DurNS = time.Since(t.start).Nanoseconds() - t.Spans[id].StartNS
}

// Attr annotates span id with a string value.
func (t *Trace) Attr(id int, key, val string) {
	if t == nil || id < 0 || id >= len(t.Spans) {
		return
	}
	t.Spans[id].Attrs = append(t.Spans[id].Attrs, Attr{Key: key, Val: val})
}

// AttrInt annotates span id with an integer value.
func (t *Trace) AttrInt(id int, key string, v int64) {
	t.Attr(id, key, strconv.FormatInt(v, 10))
}

// AttrFloat annotates span id with a float value (shortest round-trip
// formatting, so identical floats produce identical traces).
func (t *Trace) AttrFloat(id int, key string, v float64) {
	t.Attr(id, key, strconv.FormatFloat(v, 'g', -1, 64))
}

// AttrBool annotates span id with a boolean value.
func (t *Trace) AttrBool(id int, key string, v bool) {
	t.Attr(id, key, strconv.FormatBool(v))
}

// Graft appends sub's spans under parent, remapping IDs and shifting start
// offsets onto t's clock. Sub-trace root spans (Parent == -1) become
// children of parent. The engine uses this to assemble per-task traces in
// canonical order regardless of which worker ran them. Grafting onto or
// from nil is a no-op.
func (t *Trace) Graft(parent int, sub *Trace) {
	if t == nil || sub == nil {
		return
	}
	base := len(t.Spans)
	shift := sub.start.Sub(t.start).Nanoseconds()
	for _, s := range sub.Spans {
		s.ID += base
		if s.Parent < 0 {
			s.Parent = parent
		} else {
			s.Parent += base
		}
		s.StartNS += shift
		t.Spans = append(t.Spans, s)
	}
}

// SpanCount returns the number of recorded spans (0 for a nil trace).
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	return len(t.Spans)
}

// Find returns the first span with the given name, or nil.
func (t *Trace) Find(name string) *Span {
	if t == nil {
		return nil
	}
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			return &t.Spans[i]
		}
	}
	return nil
}

// FindAll returns every span with the given name, in creation order.
func (t *Trace) FindAll(name string) []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			out = append(out, &t.Spans[i])
		}
	}
	return out
}

// Normalize zeroes every span's timing in place and returns t. Golden tests
// compare normalized traces: the span tree and its attributes are
// deterministic per (input, tv), the wall-clock timings are not.
func (t *Trace) Normalize() *Trace {
	if t == nil {
		return nil
	}
	for i := range t.Spans {
		t.Spans[i].StartNS = 0
		t.Spans[i].DurNS = 0
	}
	return t
}

// String renders a compact one-line summary, e.g.
// "localize(tv=1713): 34 spans".
func (t *Trace) String() string {
	if t == nil {
		return "<no trace>"
	}
	return fmt.Sprintf("%s(tv=%d): %d spans", t.Name, t.TV, len(t.Spans))
}

// TraceRing is a fixed-size ring of recent traces: the in-memory exporter
// behind the debug server's /trace/last. It is safe for concurrent use; a
// nil ring discards everything.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	n    int
}

// NewTraceRing returns a ring retaining the last n traces (n < 1 is
// clamped to 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]*Trace, n)}
}

// Add records a trace, evicting the oldest when full. Nil rings and nil
// traces are ignored.
func (r *TraceRing) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Last returns the most recently added trace, or nil.
func (r *TraceRing) Last() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return nil
	}
	return r.buf[(r.next-1+len(r.buf))%len(r.buf)]
}

// Snapshot returns the retained traces, oldest first.
func (r *TraceRing) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.next-r.n+i+len(r.buf))%len(r.buf)])
	}
	return out
}
