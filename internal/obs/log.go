package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel maps a level name ("debug", "info", "warn", "error") to its
// Level, defaulting to info for anything unrecognized.
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Logger writes leveled, structured key=value lines:
//
//	ts=2026-08-05T12:00:00.000Z level=info msg="slave registered" slave=host1
//
// It replaces the ad-hoc fmt.Fprintf/log.Printf calls in the daemons so
// operational output is grep- and machine-friendly. A nil *Logger discards
// everything, which is how library code carries an optional logger without
// branching.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	level  Level
	clock  func() time.Time
	fields []Attr
}

// NewLogger returns a logger writing lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level, clock: time.Now}
}

// SetClock overrides the timestamp source (tests pin it for deterministic
// output).
func (l *Logger) SetClock(clock func() time.Time) {
	if l == nil || clock == nil {
		return
	}
	l.mu.Lock()
	l.clock = clock
	l.mu.Unlock()
}

// With returns a logger that appends the given key/value pairs to every
// line (e.g. slave name). The receiver is unchanged.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	child := &Logger{w: l.w, level: l.level, clock: l.clock}
	child.fields = append(append([]Attr(nil), l.fields...), pairs(kv)...)
	return child
}

// Enabled reports whether lines at the given level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug logs a debug-level line; kv is alternating keys and values.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs an info-level line.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs a warn-level line.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs an error-level line.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if l == nil || level < l.level {
		return
	}
	var b strings.Builder
	l.mu.Lock()
	defer l.mu.Unlock()
	b.WriteString("ts=")
	b.WriteString(l.clock().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	for _, f := range l.fields {
		writePair(&b, f.Key, f.Val)
	}
	for _, f := range pairs(kv) {
		writePair(&b, f.Key, f.Val)
	}
	b.WriteByte('\n')
	_, _ = io.WriteString(l.w, b.String())
}

// pairs folds alternating key/value arguments into attributes; a dangling
// key gets an empty value rather than being dropped.
func pairs(kv []any) []Attr {
	if len(kv) == 0 {
		return nil
	}
	out := make([]Attr, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprint(kv[i])
		val := ""
		if i+1 < len(kv) {
			val = formatValue(kv[i+1])
		}
		out = append(out, Attr{Key: key, Val: val})
	}
	return out
}

func writePair(b *strings.Builder, key, val string) {
	b.WriteByte(' ')
	b.WriteString(key)
	b.WriteByte('=')
	b.WriteString(quoteValue(val))
}

// formatValue renders a logged value compactly.
func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		return x.Error()
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case time.Duration:
		return x.String()
	default:
		return fmt.Sprint(v)
	}
}

// quoteValue quotes a value only when it needs it (spaces, quotes, equals,
// or control characters), keeping the common case readable.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	for _, r := range s {
		if r == ' ' || r == '"' || r == '=' || r < ' ' {
			return strconv.Quote(s)
		}
	}
	return s
}
