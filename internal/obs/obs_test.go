package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansAndAttrs(t *testing.T) {
	tr := NewTrace("localize", 1700)
	root := tr.Start(-1, "localize")
	child := tr.Start(root, "analyze")
	tr.AttrInt(child, "tasks", 6)
	tr.AttrFloat(child, "score", 0.25)
	tr.AttrBool(child, "parallel", true)
	tr.Attr(child, "mode", "serial")
	tr.End(child)
	tr.End(root)

	if got := tr.SpanCount(); got != 2 {
		t.Fatalf("SpanCount = %d, want 2", got)
	}
	s := tr.Find("analyze")
	if s == nil {
		t.Fatal("Find(analyze) = nil")
	}
	if s.Parent != root {
		t.Errorf("analyze parent = %d, want %d", s.Parent, root)
	}
	for _, tc := range []struct{ key, want string }{
		{"tasks", "6"}, {"score", "0.25"}, {"parallel", "true"}, {"mode", "serial"},
	} {
		if got, ok := s.Attr(tc.key); !ok || got != tc.want {
			t.Errorf("Attr(%s) = %q,%v want %q", tc.key, got, ok, tc.want)
		}
	}
	if _, ok := s.Attr("missing"); ok {
		t.Error("Attr(missing) reported present")
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	id := tr.Start(-1, "x")
	if id != -1 {
		t.Fatalf("nil Start = %d, want -1", id)
	}
	tr.End(id)
	tr.Attr(id, "k", "v")
	tr.AttrInt(id, "k", 1)
	tr.Graft(0, NewTrace("sub", 0))
	if tr.SpanCount() != 0 || tr.Find("x") != nil || tr.FindAll("x") != nil {
		t.Error("nil trace reported content")
	}
	if tr.Normalize() != nil {
		t.Error("nil Normalize != nil")
	}
	if got := tr.String(); got != "<no trace>" {
		t.Errorf("nil String = %q", got)
	}
}

func TestTraceGraftRemapsIDs(t *testing.T) {
	main := NewTrace("localize", 10)
	root := main.Start(-1, "localize")
	comp := main.Start(root, "component:web")

	sub := NewTrace("task", 10)
	sel := sub.Start(-1, "select:cpu")
	det := sub.Start(sel, "detect")
	sub.AttrInt(det, "points", 3)
	sub.End(det)
	sub.End(sel)

	main.Graft(comp, sub)
	main.End(comp)
	main.End(root)

	if got := main.SpanCount(); got != 4 {
		t.Fatalf("SpanCount = %d, want 4", got)
	}
	selSpan := main.Find("select:cpu")
	if selSpan == nil || selSpan.Parent != comp {
		t.Fatalf("select:cpu parent = %+v, want parent %d", selSpan, comp)
	}
	detSpan := main.Find("detect")
	if detSpan == nil || detSpan.Parent != selSpan.ID {
		t.Fatalf("detect parent = %+v, want parent %d", detSpan, selSpan.ID)
	}
	if detSpan.ID != detSpan.ID || main.Spans[detSpan.ID].Name != "detect" {
		t.Error("span ID is not its index")
	}
}

func TestTraceNormalizeZeroesTimings(t *testing.T) {
	tr := NewTrace("x", 1)
	id := tr.Start(-1, "op")
	time.Sleep(time.Millisecond)
	tr.End(id)
	if tr.Spans[id].DurNS == 0 {
		t.Skip("clock did not advance")
	}
	tr.Normalize()
	for _, s := range tr.Spans {
		if s.StartNS != 0 || s.DurNS != 0 {
			t.Fatalf("normalized span has timing: %+v", s)
		}
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(2)
	if r.Last() != nil {
		t.Fatal("empty ring Last != nil")
	}
	a, b, c := NewTrace("a", 1), NewTrace("b", 2), NewTrace("c", 3)
	r.Add(a)
	r.Add(b)
	r.Add(c) // evicts a
	if got := r.Last(); got != c {
		t.Fatalf("Last = %v, want c", got)
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0] != b || snap[1] != c {
		t.Fatalf("Snapshot = %v, want [b c]", snap)
	}
	var nilRing *TraceRing
	nilRing.Add(a)
	if nilRing.Last() != nil || nilRing.Snapshot() != nil {
		t.Error("nil ring reported content")
	}
}

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter non-zero")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Error("nil gauge non-zero")
	}
	real := &Counter{}
	real.Inc()
	real.Add(2)
	real.Add(-7) // negative ignored
	if got := real.Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
}

func TestHistogramObserveAndMerge(t *testing.T) {
	h := &Histogram{}
	h.Observe(1)    // bucket 0
	h.Observe(1000) // bucket 9
	h.Observe(-5)   // clamped to 0 -> bucket 0
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	ext := make([]int64, 45) // longer than HistBuckets: tail folds into overflow
	ext[2] = 4
	ext[44] = 1
	h.MergeLog2(ext, 5, 12345, 99999)
	buckets, count, _ := h.snapshot()
	if count != 8 {
		t.Fatalf("merged count = %d, want 8", count)
	}
	if buckets[2] != 4 || buckets[HistBuckets-1] != 1 {
		t.Fatalf("merge misplaced buckets: b2=%d overflow=%d", buckets[2], buckets[HistBuckets-1])
	}
	var nilH *Histogram
	nilH.Observe(1)
	nilH.MergeLog2(ext, 1, 1, 1)
	if nilH.Count() != 0 {
		t.Error("nil histogram non-zero")
	}
}

func TestLog2Bucket(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
		{-1, 0}, {1 << 50, HistBuckets - 1},
	} {
		if got := log2Bucket(tc.ns); got != tc.want {
			t.Errorf("log2Bucket(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}
}

// TestMetricsEndpoint is the acceptance test for the /metrics surface: an
// httptest request against the registry handler must expose the pipeline's
// ingest/selection/diagnose counters and latency histograms in Prometheus
// text format.
func TestMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fchain_ingest_samples_total", "Samples ingested.").Add(42)
	reg.Counter("fchain_selection_runs_total", "Change-point selection passes.").Inc()
	reg.Counter("fchain_diagnose_total", "Diagnosis passes.").Inc()
	reg.CounterWith("fchain_localize_total", "Localize calls by outcome.",
		map[string]string{"outcome": "ok"}).Add(3)
	reg.Gauge("fchain_slaves_alive", "Live slaves.").Set(2)
	reg.Histogram("fchain_selection_latency_ns", "Selection latency.").Observe(1500)
	reg.HistogramWith("fchain_localize_latency_ns", "Localize latency.",
		map[string]string{"phase": "diagnose"}).Observe(3000)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE fchain_ingest_samples_total counter",
		"fchain_ingest_samples_total 42",
		"fchain_selection_runs_total 1",
		"fchain_diagnose_total 1",
		`fchain_localize_total{outcome="ok"} 3`,
		"# TYPE fchain_slaves_alive gauge",
		"fchain_slaves_alive 2",
		"# TYPE fchain_selection_latency_ns histogram",
		"fchain_selection_latency_ns_count 1",
		`fchain_localize_latency_ns_bucket{phase="diagnose",le="+Inf"} 1`,
		"fchain_localize_latency_ns_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Deterministic output: two renders must be identical.
	var a, c bytes.Buffer
	if err := reg.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteProm(&c); err != nil {
		t.Fatal(err)
	}
	if a.String() != c.String() {
		t.Error("WriteProm output differs between renders")
	}
}

func TestRegistryIdempotentAndNil(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("x_total", "")
	c2 := reg.Counter("x_total", "")
	if c1 != c2 {
		t.Error("Counter not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	var nilReg *Registry
	if nilReg.Counter("a", "") != nil || nilReg.Gauge("b", "") != nil || nilReg.Histogram("c", "") != nil {
		t.Error("nil registry returned non-nil metric")
	}
	if err := nilReg.WriteProm(io.Discard); err != nil {
		t.Error(err)
	}
	reg.Gauge("x_total", "") // panics: registered as counter
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				reg.Counter("conc_total", "").Inc()
				reg.Histogram("conc_ns", "").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("conc_total", "").Value(); got != 800 {
		t.Errorf("concurrent counter = %d, want 800", got)
	}
	if got := reg.Histogram("conc_ns", "").Count(); got != 800 {
		t.Errorf("concurrent histogram count = %d, want 800", got)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var now int64 = 1000
	j.SetClock(func() int64 { now++; return now })
	if err := j.Record("localize_start", map[string]int64{"tv": 1700}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("verdict", map[string]string{"culprit": "web1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("note", nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("read %d events, want 3", len(events))
	}
	if events[0].Seq != 1 || events[1].Seq != 2 || events[2].Seq != 3 {
		t.Errorf("bad sequence: %+v", events)
	}
	if events[0].Type != "localize_start" || events[0].TS != 1001 {
		t.Errorf("event 0 = %+v", events[0])
	}
	var payload struct {
		TV int64 `json:"tv"`
	}
	if err := json.Unmarshal(events[0].Data, &payload); err != nil || payload.TV != 1700 {
		t.Errorf("payload = %+v err=%v", payload, err)
	}
	if len(events[2].Data) != 0 {
		t.Errorf("nil payload marshaled as %q", events[2].Data)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("ok", nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append a partial line with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"ts_unix`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(events) != 1 || events[0].Type != "ok" {
		t.Fatalf("events = %+v, want the one complete event", events)
	}
}

func TestJournalMalformedCompleteLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("malformed complete line did not error")
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if err := j.Record("x", nil); err != nil {
		t.Error(err)
	}
	if err := j.Sync(); err != nil {
		t.Error(err)
	}
	if err := j.Close(); err != nil {
		t.Error(err)
	}
	if j.Path() != "" {
		t.Error("nil journal has a path")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q, want second", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestLoggerFormatAndLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	fixed := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return fixed })
	l.Debug("hidden")
	l.Info("slave registered", "slave", "host1", "lag", 250*time.Millisecond)
	l.Warn("needs quoting", "err", "connection refused")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug line emitted at info level")
	}
	wantInfo := `ts=2026-08-05T12:00:00.000Z level=info msg="slave registered" slave=host1 lag=250ms`
	if !strings.Contains(out, wantInfo) {
		t.Errorf("info line missing\nwant %q\ngot  %q", wantInfo, out)
	}
	if !strings.Contains(out, `err="connection refused"`) {
		t.Errorf("value with space not quoted: %q", out)
	}
	if !l.Enabled(LevelWarn) || l.Enabled(LevelDebug) {
		t.Error("Enabled wrong")
	}
}

func TestLoggerWithFields(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	fixed := time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return fixed })
	child := l.With("slave", "host2")
	child.Info("up")
	if !strings.Contains(buf.String(), "slave=host2") {
		t.Errorf("With field missing: %q", buf.String())
	}
	buf.Reset()
	l.Info("plain")
	if strings.Contains(buf.String(), "slave=") {
		t.Error("With mutated the parent logger")
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", "k", "v")
	l.Warn("x")
	l.Error("x")
	l.SetClock(time.Now)
	if l.With("k", "v") != nil {
		t.Error("nil With != nil")
	}
	if l.Enabled(LevelError) {
		t.Error("nil logger enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Level
	}{
		{"debug", LevelDebug}, {"INFO", LevelInfo}, {"warn", LevelWarn},
		{"warning", LevelWarn}, {"error", LevelError}, {"bogus", LevelInfo}, {"", LevelInfo},
	} {
		if got := ParseLevel(tc.in); got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fchain_ingest_samples_total", "Samples.").Add(7)
	ring := NewTraceRing(4)
	srv, err := StartDebug("127.0.0.1:0", DebugConfig{
		Registry: reg,
		Traces:   ring,
		Health:   func() any { return map[string]int{"slaves": 2} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "fchain_ingest_samples_total 7") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != http.StatusOK ||
		!strings.Contains(body, `"status": "ok"`) || !strings.Contains(body, `"slaves": 2`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/trace/last"); code != http.StatusNotFound {
		t.Errorf("/trace/last before any trace = %d, want 404", code)
	}
	tr := NewTrace("localize", 1700)
	id := tr.Start(-1, "localize")
	tr.End(id)
	ring.Add(tr)
	if code, body := get("/trace/last"); code != http.StatusOK || !strings.Contains(body, `"name": "localize"`) {
		t.Errorf("/trace/last = %d %q", code, body)
	}
	if code, body := get("/trace/all"); code != http.StatusOK || !strings.Contains(body, `"tv": 1700`) {
		t.Errorf("/trace/all = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestSinkNilSafe(t *testing.T) {
	var s *Sink
	if s.Logger() != nil || s.Registry() != nil || s.TraceRing() != nil || s.EventJournal() != nil {
		t.Error("nil sink returned non-nil component")
	}
	full := &Sink{Log: NewLogger(io.Discard, LevelInfo), Metrics: NewRegistry(), Traces: NewTraceRing(1)}
	if full.Logger() == nil || full.Registry() == nil || full.TraceRing() == nil {
		t.Error("sink dropped components")
	}
	if full.EventJournal() != nil {
		t.Error("sink invented a journal")
	}
}
