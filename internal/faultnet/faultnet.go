// Package faultnet provides deterministic network fault injection for
// testing distributed components under degraded conditions: wrappers around
// net.Conn and net.Listener that inject latency, silent frame drops, partial
// (chunked) writes, and connection resets, all driven by a seeded PRNG so a
// failing chaos test replays byte-for-byte. A severable TCP proxy simulates
// network partitions between two real endpoints.
//
// The package is test infrastructure for internal/cluster's chaos suite but
// is deliberately free of cluster types so cloudsim (or any other network
// consumer) can reuse it.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrReset is returned by a wrapped connection when an injected reset fires;
// the underlying connection is closed so the peer observes a real drop.
var ErrReset = errors.New("faultnet: injected connection reset")

// Config selects which faults a wrapped connection injects. The zero value
// injects nothing and is a transparent pass-through.
type Config struct {
	// Seed drives every probabilistic decision. Two connections wrapped
	// with the same seed make identical drop/partial/reset choices for the
	// same operation sequence.
	Seed int64

	// Latency is added to every Read and Write. Jitter adds a uniform
	// extra delay in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration

	// DropProb silently discards a whole Write (reported as successful):
	// the bytes never reach the peer, as with a lossy link.
	DropProb float64

	// PartialProb splits a Write into ChunkSize-byte underlying writes,
	// yielding the scheduler between chunks so concurrent writers to the
	// same connection interleave — the exact condition that corrupts a
	// framed protocol without per-connection write serialization.
	PartialProb float64
	// ChunkSize bounds each underlying write when a partial write fires
	// (default 8 bytes).
	ChunkSize int

	// ResetProb closes the connection mid-operation and returns ErrReset.
	ResetProb float64
}

// Conn wraps a net.Conn with fault injection per Config.
type Conn struct {
	net.Conn
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
}

// Wrap returns c with fault injection applied. The PRNG is seeded from
// cfg.Seed, so the fault sequence is a pure function of the operation
// sequence.
func Wrap(c net.Conn, cfg Config) *Conn {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 8
	}
	return &Conn{Conn: c, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// roll draws one uniform [0,1) sample; all draws are serialized so the
// sequence is deterministic even under concurrent use.
func (c *Conn) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

func (c *Conn) delay() {
	if c.cfg.Latency <= 0 && c.cfg.Jitter <= 0 {
		return
	}
	d := c.cfg.Latency
	if c.cfg.Jitter > 0 {
		d += time.Duration(c.roll() * float64(c.cfg.Jitter))
	}
	time.Sleep(d)
}

// Read injects latency and resets, then delegates.
func (c *Conn) Read(p []byte) (int, error) {
	c.delay()
	if c.cfg.ResetProb > 0 && c.roll() < c.cfg.ResetProb {
		c.Conn.Close()
		return 0, ErrReset
	}
	return c.Conn.Read(p)
}

// Write injects latency, silent drops, partial (chunked) writes, and resets.
func (c *Conn) Write(p []byte) (int, error) {
	c.delay()
	if c.cfg.ResetProb > 0 && c.roll() < c.cfg.ResetProb {
		c.Conn.Close()
		return 0, ErrReset
	}
	if c.cfg.DropProb > 0 && c.roll() < c.cfg.DropProb {
		return len(p), nil // lost on the wire, caller none the wiser
	}
	if c.cfg.PartialProb > 0 && c.roll() < c.cfg.PartialProb {
		return c.writeChunked(p)
	}
	return c.Conn.Write(p)
}

// writeChunked issues the write in ChunkSize pieces with scheduler yields in
// between, giving any concurrent writer the chance to interleave its bytes.
func (c *Conn) writeChunked(p []byte) (int, error) {
	total := 0
	for total < len(p) {
		end := total + c.cfg.ChunkSize
		if end > len(p) {
			end = len(p)
		}
		n, err := c.Conn.Write(p[total:end])
		total += n
		if err != nil {
			return total, err
		}
		time.Sleep(50 * time.Microsecond)
	}
	return total, nil
}

// Listener wraps a net.Listener so every accepted connection is fault
// injected. Connection i is seeded with cfg.Seed+i, so the whole accept
// sequence is deterministic.
type Listener struct {
	net.Listener
	cfg Config
	n   atomic.Int64
}

// WrapListener returns ln with fault injection applied to accepted
// connections.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Listen opens a TCP listener on addr with fault injection applied to
// accepted connections.
func Listen(addr string, cfg Config) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	return WrapListener(ln, cfg), nil
}

// Accept wraps the next accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	cfg := l.cfg
	cfg.Seed += l.n.Add(1) - 1
	return Wrap(conn, cfg), nil
}

// Dialer returns a dial function that connects to addr and wraps the result;
// dial i is seeded cfg.Seed+i. The signature matches the cluster slave's
// dialer override.
func Dialer(cfg Config) func(addr string) (net.Conn, error) {
	var n atomic.Int64
	return func(addr string) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Seed += n.Add(1) - 1
		return Wrap(conn, c), nil
	}
}
