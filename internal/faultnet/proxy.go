package faultnet

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// Proxy is a TCP relay between clients and a fixed target whose links can be
// severed on demand, simulating a network partition between two live
// processes (e.g. an FChain slave and its master). Traffic on both legs of
// every relayed connection passes through fault-injecting Conn wrappers.
type Proxy struct {
	ln     net.Listener
	target string
	cfg    Config

	mu       sync.Mutex
	links    map[int]*link
	nextLink int
	blackout bool
	closed   bool

	wg sync.WaitGroup
}

// link is one client<->target relay pair.
type link struct {
	client, upstream net.Conn
}

func (l *link) close() {
	l.client.Close()
	l.upstream.Close()
}

// NewProxy starts a proxy on a loopback port relaying to target with the
// given fault config applied to both legs of every connection.
func NewProxy(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, cfg: cfg, links: make(map[int]*link)}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening address; clients dial this instead of
// the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	seed := p.cfg.Seed
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		refuse := p.blackout || p.closed
		p.mu.Unlock()
		if refuse {
			client.Close()
			continue
		}
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		cfg := p.cfg
		cfg.Seed = seed
		seed++
		l := &link{client: Wrap(client, cfg), upstream: Wrap(upstream, cfg)}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			l.close()
			return
		}
		id := p.nextLink
		p.nextLink++
		p.links[id] = l
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(id, l, l.client, l.upstream)
		go p.pipe(id, l, l.upstream, l.client)
	}
}

func (p *Proxy) pipe(id int, l *link, dst, src net.Conn) {
	defer p.wg.Done()
	_, _ = io.Copy(dst, src)
	l.close()
	p.mu.Lock()
	if p.links[id] == l {
		delete(p.links, id)
	}
	p.mu.Unlock()
}

// Sever kills every live relayed connection. New connections are still
// accepted, so a reconnecting client gets through — use SetBlackout to keep
// the partition up.
func (p *Proxy) Sever() {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for _, l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	for _, l := range links {
		l.close()
	}
}

// SetBlackout toggles refusing new connections; combined with Sever it holds
// a full partition until lifted.
func (p *Proxy) SetBlackout(on bool) {
	p.mu.Lock()
	p.blackout = on
	p.mu.Unlock()
}

// Close shuts the proxy down and severs every live link.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.Sever()
	p.wg.Wait()
	return err
}
