package faultnet

import "sync"

// Fabric names the proxied links of a test topology so chaos tests can
// partition whole groups of processes at once instead of juggling individual
// proxies: register each Proxy with the names of the two endpoints it
// connects, then Partition the fabric into two sides — every link crossing
// the cut is blacked out (new connections refused) and severed (live
// connections killed) until Heal lifts the blackouts.
type Fabric struct {
	mu    sync.Mutex
	links []fabricLink
}

// fabricLink is one registered endpoint pair and the proxy carrying it.
type fabricLink struct {
	a, b  string
	proxy *Proxy
}

// NewFabric returns an empty fabric.
func NewFabric() *Fabric { return &Fabric{} }

// Link registers proxy as the connection between endpoints a and b (order
// does not matter).
func (f *Fabric) Link(a, b string, proxy *Proxy) {
	f.mu.Lock()
	f.links = append(f.links, fabricLink{a: a, b: b, proxy: proxy})
	f.mu.Unlock()
}

// Partition cuts the fabric between the two endpoint groups: every
// registered link with one endpoint in as and the other in bs is blacked out
// and severed. Links inside either group — or touching endpoints in neither
// — are untouched. Partitions compose; Heal lifts them all.
func (f *Fabric) Partition(as, bs []string) {
	inA := make(map[string]bool, len(as))
	for _, name := range as {
		inA[name] = true
	}
	inB := make(map[string]bool, len(bs))
	for _, name := range bs {
		inB[name] = true
	}
	for _, p := range f.crossing(inA, inB) {
		p.SetBlackout(true)
		p.Sever()
	}
}

// Heal lifts every blackout on the fabric, letting reconnecting clients
// through again (their backoff loops re-establish the links).
func (f *Fabric) Heal() {
	f.mu.Lock()
	proxies := make([]*Proxy, len(f.links))
	for i, l := range f.links {
		proxies[i] = l.proxy
	}
	f.mu.Unlock()
	for _, p := range proxies {
		p.SetBlackout(false)
	}
}

// crossing returns the proxies of links straddling the two groups.
func (f *Fabric) crossing(inA, inB map[string]bool) []*Proxy {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []*Proxy
	for _, l := range f.links {
		if (inA[l.a] && inB[l.b]) || (inA[l.b] && inB[l.a]) {
			out = append(out, l.proxy)
		}
	}
	return out
}
