package faultnet

import (
	"net"
	"testing"
	"time"
)

// echoServer starts a TCP echo target and returns its address.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					c.Write(buf[:n])
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

// echoes reports whether a fresh connection through addr round-trips a
// payload within the deadline.
func echoes(t *testing.T, addr string) bool {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return false
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		return false
	}
	buf := make([]byte, 4)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, err = io_readFull(conn, buf)
	return err == nil && string(buf) == "ping"
}

// TestFabricPartitionAndHeal pins the chaos helper's contract: Partition
// kills the live connections crossing the cut and refuses new ones, links
// not crossing the cut keep working, and Heal lets fresh connections
// through again.
func TestFabricPartitionAndHeal(t *testing.T) {
	target := echoServer(t)

	mkProxy := func() *Proxy {
		p, err := NewProxy(target, Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	crossing := mkProxy() // master <-> slave-a: crosses the cut
	inside := mkProxy()   // slave-a <-> slave-b: same side, untouched

	fab := NewFabric()
	fab.Link("master", "slave-a", crossing)
	fab.Link("slave-a", "slave-b", inside)

	// Hold a live connection over the crossing link so Sever has a victim.
	live, err := net.Dial("tcp", crossing.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if _, err := live.Write([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	live.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io_readFull(live, buf); err != nil {
		t.Fatalf("echo before partition: %v", err)
	}

	fab.Partition([]string{"master"}, []string{"slave-a", "slave-b"})

	// The live crossing connection must die.
	live.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := live.Read(buf); err == nil {
		t.Error("live connection survived the partition")
	}
	// New connections across the cut are refused for as long as the
	// partition holds.
	if echoes(t, crossing.Addr()) {
		t.Error("new connection crossed the partition")
	}
	// The same-side link is untouched.
	if !echoes(t, inside.Addr()) {
		t.Error("partition severed a link inside one group")
	}

	fab.Heal()
	if !echoes(t, crossing.Addr()) {
		t.Error("healed link still refuses connections")
	}
}

// TestFabricPartitionScopesToNamedGroups pins that links touching endpoints
// in neither group are left alone even when partitions compose.
func TestFabricPartitionScopesToNamedGroups(t *testing.T) {
	target := echoServer(t)
	other, err := NewProxy(target, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { other.Close() })

	fab := NewFabric()
	fab.Link("agg-a", "slave-x", other)
	fab.Partition([]string{"master"}, []string{"agg-b"})
	if !echoes(t, other.Addr()) {
		t.Error("partition of unrelated groups severed a bystander link")
	}
}
