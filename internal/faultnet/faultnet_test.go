package faultnet

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"
)

// pair returns two ends of an in-memory TCP connection.
func pair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.conn.Close() })
	return client, r.conn
}

func TestDeterministicDrops(t *testing.T) {
	// Same seed, same operation sequence -> identical drop decisions.
	cfg := Config{Seed: 42, DropProb: 0.5}
	a := Wrap(&net.TCPConn{}, cfg)
	b := Wrap(&net.TCPConn{}, cfg)
	for i := 0; i < 64; i++ {
		ra := a.roll() < cfg.DropProb
		rb := b.roll() < cfg.DropProb
		if ra != rb {
			t.Fatalf("decision %d diverged: %v vs %v", i, ra, rb)
		}
	}
}

func TestPartialWriteChunks(t *testing.T) {
	client, server := pair(t)
	w := Wrap(client, Config{Seed: 1, PartialProb: 1, ChunkSize: 3})
	msg := []byte("abcdefghij")
	go func() {
		if _, err := w.Write(msg); err != nil {
			t.Error(err)
		}
		client.Close()
	}()
	var got bytes.Buffer
	buf := make([]byte, 1024)
	for {
		n, err := server.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if got.String() != string(msg) {
		t.Errorf("chunked write delivered %q, want %q", got.String(), msg)
	}
}

func TestDropLosesBytes(t *testing.T) {
	client, server := pair(t)
	w := Wrap(client, Config{Seed: 7, DropProb: 1})
	if n, err := w.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("dropped write reported (%d, %v), want (4, nil)", n, err)
	}
	server.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := server.Read(buf); err == nil {
		t.Errorf("peer received %d bytes from a dropped write", n)
	}
}

func TestResetClosesConn(t *testing.T) {
	client, _ := pair(t)
	w := Wrap(client, Config{Seed: 3, ResetProb: 1})
	if _, err := w.Write([]byte("x")); err != ErrReset {
		t.Fatalf("write on reset conn = %v, want ErrReset", err)
	}
	// The underlying conn must really be closed.
	if _, err := client.Write([]byte("y")); err == nil {
		t.Error("underlying conn still writable after injected reset")
	}
}

func TestLatencyInjection(t *testing.T) {
	client, server := pair(t)
	w := Wrap(client, Config{Latency: 30 * time.Millisecond})
	go server.Write([]byte("pong"))
	start := time.Now()
	buf := make([]byte, 4)
	if _, err := w.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("read returned after %v, want >= ~30ms latency", d)
	}
}

func TestProxyRelaysAndSevers(t *testing.T) {
	// Echo target.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					c.Write(buf[:n])
				}
			}(c)
		}
	}()

	p, err := NewProxy(ln.Addr().String(), Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io_readFull(conn, buf); err != nil {
		t.Fatalf("echo through proxy: %v", err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echoed %q", buf)
	}

	// Sever: the live link must die...
	p.Sever()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("read succeeded after Sever")
	}
	// ...but a fresh connection gets through again.
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.Write([]byte("again"))
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io_readFull(conn2, buf); err != nil {
		t.Fatalf("echo after Sever: %v", err)
	}

	// Blackout: new connections die immediately.
	p.SetBlackout(true)
	conn3, err := net.Dial("tcp", p.Addr())
	if err == nil {
		defer conn3.Close()
		conn3.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn3.Read(buf); err == nil {
			t.Error("blackout proxy relayed a new connection")
		}
	}
}

// io_readFull avoids importing io just for ReadFull in this file's hot path.
func io_readFull(c net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func TestDialerWrapsConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	dial := Dialer(Config{Seed: 5, ResetProb: 1})
	conn, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, ok := conn.(*Conn); !ok {
		t.Fatalf("dialer returned %T, want *faultnet.Conn", conn)
	}
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Error("reset-configured dialer conn should fail writes")
	}
	if !strings.Contains(ErrReset.Error(), "reset") {
		t.Error("ErrReset message should mention reset")
	}
}
