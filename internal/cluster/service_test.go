package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fchain/internal/core"
	"fchain/internal/obs"
	"fchain/internal/tenant"
)

// serviceHarness is a Service over a journaling sink with the cluster
// fan-out replaced by a controllable fake, so service-layer behavior
// (coalescing, caching, quotas, replay) is tested without a slave fleet.
type serviceHarness struct {
	svc     *Service
	master  *Master
	sink    *obs.Sink
	journal string
	calls   atomic.Int64 // fake localizations started
}

func newServiceHarness(t *testing.T, journalPath string, cfg ServiceConfig) *serviceHarness {
	t.Helper()
	if journalPath == "" {
		journalPath = filepath.Join(t.TempDir(), "journal.jsonl")
	}
	sink, err := obs.NewSink(io.Discard, "error", journalPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sink.EventJournal().Close() })
	h := &serviceHarness{
		master:  NewMaster(core.Config{}, nil, WithMasterObs(sink)),
		sink:    sink,
		journal: journalPath,
	}
	h.svc = NewService(h.master, cfg)
	h.svc.localizeFn = h.fakeLocalize
	return h
}

// fakeLocalize produces a deterministic diagnosis derived from tv, so tests
// can assert byte-identical re-serving.
func (h *serviceHarness) fakeLocalize(ctx context.Context, tv int64, tenantName, app string) (core.LocalizeResult, error) {
	h.calls.Add(1)
	return core.LocalizeResult{
		Diagnosis: core.Diagnosis{Culprits: []core.Culprit{{
			Component: "db", Onset: tv - 3, Reason: "source", Confidence: 1,
		}}},
	}, nil
}

// journalCount tallies service journal events for one tenant, optionally
// filtered by verdict source.
func (h *serviceHarness) journalCount(t *testing.T, eventType, tenantName, source string) int {
	t.Helper()
	events, err := obs.ReadJournal(h.journal)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ev := range events {
		if ev.Type != eventType {
			continue
		}
		var data struct {
			Tenant string `json:"tenant"`
			Source string `json:"source"`
		}
		if json.Unmarshal(ev.Data, &data) != nil {
			continue
		}
		if data.Tenant == tenantName && (source == "" || data.Source == source) {
			n++
		}
	}
	return n
}

// TestServiceCoalescingBoundaries drives the coalescing decision through its
// tv-window boundaries: a follower joins an in-flight localization only for
// the same (tenant, app) and a tv within the coalesce window of the leader.
func TestServiceCoalescingBoundaries(t *testing.T) {
	const window = int64(30)
	cases := []struct {
		name     string
		tenant2  string
		app2     string
		tvDelta  int64
		coalesce bool
	}{
		{"same tv", "t1", "shop", 0, true},
		{"inside window", "t1", "shop", window - 1, true},
		{"exactly at window", "t1", "shop", window, true},
		{"one past window", "t1", "shop", window + 1, false},
		{"different app", "t1", "billing", 0, false},
		{"different tenant", "t2", "shop", 0, false},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newServiceHarness(t, "", ServiceConfig{CoalesceWindow: window, CacheSize: -1})
			block := make(chan struct{})
			started := make(chan struct{}, 4)
			h.svc.localizeFn = func(ctx context.Context, tv int64, tenantName, app string) (core.LocalizeResult, error) {
				started <- struct{}{}
				<-block
				return h.fakeLocalize(ctx, tv, tenantName, app)
			}
			// Fresh tv range per case so nothing carries across subtests.
			leaderTV := int64(10000 * (i + 1))
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()

			type outcome struct {
				v   *Verdict
				err error
			}
			leadCh := make(chan outcome, 1)
			go func() {
				v, err := h.svc.Submit(ctx, "t1", "shop", leaderTV)
				leadCh <- outcome{v, err}
			}()
			<-started // leader's localization is in flight

			followCh := make(chan outcome, 1)
			go func() {
				v, err := h.svc.Submit(ctx, tc.tenant2, tc.app2, leaderTV+tc.tvDelta)
				followCh <- outcome{v, err}
			}()
			if tc.coalesce {
				select {
				case <-started:
					t.Error("follower started its own localization, want coalesced")
				case <-time.After(100 * time.Millisecond):
				}
			} else {
				select {
				case <-started:
				case <-time.After(2 * time.Second):
					t.Error("follower never started its own localization")
				}
			}
			close(block)
			lead, follow := <-leadCh, <-followCh
			if lead.err != nil || follow.err != nil {
				t.Fatalf("submit errors: leader=%v follower=%v", lead.err, follow.err)
			}
			if lead.v.Source != "live" {
				t.Errorf("leader source = %q, want live", lead.v.Source)
			}
			if tc.coalesce {
				if follow.v.Source != "coalesced" {
					t.Errorf("follower source = %q, want coalesced", follow.v.Source)
				}
				if follow.v.TV != leaderTV {
					t.Errorf("coalesced verdict tv = %d, want leader's %d", follow.v.TV, leaderTV)
				}
				if !bytes.Equal(follow.v.Diagnosis, lead.v.Diagnosis) {
					t.Error("coalesced diagnosis differs from leader's")
				}
				if got := h.calls.Load(); got != 1 {
					t.Errorf("localizations = %d, want 1 (shared)", got)
				}
			} else {
				if follow.v.Source != "live" {
					t.Errorf("follower source = %q, want live", follow.v.Source)
				}
				if got := h.calls.Load(); got != 2 {
					t.Errorf("localizations = %d, want 2 (independent)", got)
				}
			}
		})
	}
}

// TestServiceWaiterCancellation cancels a coalesced waiter mid-flight: the
// waiter unblocks with its context error, the leader's localization keeps
// running, and its verdict_served journal record still covers the canceled
// waiter's accepted sequence number.
func TestServiceWaiterCancellation(t *testing.T) {
	h := newServiceHarness(t, "", ServiceConfig{CoalesceWindow: 30})
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	h.svc.localizeFn = func(ctx context.Context, tv int64, tenantName, app string) (core.LocalizeResult, error) {
		started <- struct{}{}
		<-block
		return h.fakeLocalize(ctx, tv, tenantName, app)
	}
	leadCh := make(chan error, 1)
	go func() {
		_, err := h.svc.Submit(context.Background(), "t1", "shop", 1000)
		leadCh <- err
	}()
	<-started

	waitCtx, cancelWaiter := context.WithCancel(context.Background())
	waitCh := make(chan error, 1)
	go func() {
		_, err := h.svc.Submit(waitCtx, "t1", "shop", 1005)
		waitCh <- err
	}()
	// The waiter must be coalesced (no second localization) before we
	// cancel it.
	select {
	case <-started:
		t.Fatal("waiter was not coalesced")
	case <-time.After(100 * time.Millisecond):
	}
	cancelWaiter()
	select {
	case err := <-waitCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("canceled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter did not unblock")
	}

	close(block)
	if err := <-leadCh; err != nil {
		t.Fatalf("leader failed: %v", err)
	}
	// The leader's verdict record still covers both accepted seqs, so a
	// replay would not re-run the canceled waiter's violation.
	events, err := obs.ReadJournal(h.journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Type != "verdict_served" {
			continue
		}
		var rec servedRecord
		if err := json.Unmarshal(ev.Data, &rec); err != nil {
			t.Fatal(err)
		}
		if len(rec.AcceptSeqs) != 2 {
			t.Errorf("verdict_served covers %v, want both accepted seqs", rec.AcceptSeqs)
		}
		return
	}
	t.Error("no verdict_served event journaled")
}

// TestServiceVerdictCacheTTL exercises the LRU verdict cache: a same-bucket
// violation re-serves the cached verdict byte-identically, and advancing the
// clock past the TTL expires it.
func TestServiceVerdictCacheTTL(t *testing.T) {
	h := newServiceHarness(t, "", ServiceConfig{CoalesceWindow: 30, CacheTTL: 5 * time.Minute})
	now := time.Unix(50_000, 0)
	h.svc.SetClock(func() time.Time { return now })
	ctx := context.Background()

	first, err := h.svc.Submit(ctx, "t1", "shop", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != "live" {
		t.Fatalf("first verdict source = %q, want live", first.Source)
	}
	// tv 1015 lands in the same 30s bucket as 1000 (1000/30 == 1015/30 == 33).
	cached, err := h.svc.Submit(ctx, "t1", "shop", 1015)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Source != "cache" {
		t.Errorf("second verdict source = %q, want cache", cached.Source)
	}
	if !bytes.Equal(cached.Diagnosis, first.Diagnosis) {
		t.Errorf("cached diagnosis not byte-identical:\n%s\n%s", first.Diagnosis, cached.Diagnosis)
	}
	if cached.TV != first.TV {
		t.Errorf("cached verdict tv = %d, want original %d", cached.TV, first.TV)
	}
	if got := h.calls.Load(); got != 1 {
		t.Errorf("localizations = %d, want 1", got)
	}

	now = now.Add(5*time.Minute + time.Second) // past the TTL
	fresh, err := h.svc.Submit(ctx, "t1", "shop", 1010)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Source != "live" {
		t.Errorf("post-TTL verdict source = %q, want live", fresh.Source)
	}
	if got := h.calls.Load(); got != 2 {
		t.Errorf("localizations after TTL = %d, want 2", got)
	}
	if got := h.svc.counter("t1", "cached").Value(); got != 1 {
		t.Errorf("cached counter = %d, want 1", got)
	}
}

// TestServiceCacheLRUEviction fills the cache past its capacity and checks
// the oldest bucket was evicted.
func TestServiceCacheLRUEviction(t *testing.T) {
	h := newServiceHarness(t, "", ServiceConfig{CoalesceWindow: 30, CacheSize: 2})
	ctx := context.Background()
	for i := int64(0); i < 3; i++ {
		if _, err := h.svc.Submit(ctx, "t1", "shop", 1000+100*i); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.svc.cache.len(); got != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", got)
	}
	// The first bucket (tv 1000) was evicted: same-bucket resubmit localizes.
	before := h.calls.Load()
	v, err := h.svc.Submit(ctx, "t1", "shop", 1001)
	if err != nil {
		t.Fatal(err)
	}
	if v.Source != "live" || h.calls.Load() != before+1 {
		t.Errorf("evicted bucket served source=%q calls=%d, want a fresh localization", v.Source, h.calls.Load()-before)
	}
}

// TestServiceQuotaFairness floods one tenant and drips another: the flooder
// is shed down to its token bucket, the quiet tenant succeeds at p100.
func TestServiceQuotaFairness(t *testing.T) {
	h := newServiceHarness(t, "", ServiceConfig{
		Tenants:        []string{"loud", "quiet"},
		QuotaPerMinute: 60,
		QuotaBurst:     5,
		CacheSize:      -1,
		CoalesceWindow: 1, // effectively no coalescing for spaced tvs
	})
	now := time.Unix(90_000, 0)
	h.svc.SetClock(func() time.Time { return now }) // static: no refill
	ctx := context.Background()

	admitted, shed := 0, 0
	for i := int64(0); i < 50; i++ {
		_, err := h.svc.Submit(ctx, "loud", "shop", 1000+100*i)
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, tenant.ErrQuota):
			shed++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if admitted != 5 || shed != 45 {
		t.Errorf("loud tenant: admitted=%d shed=%d, want 5/45", admitted, shed)
	}
	for i := int64(0); i < 5; i++ {
		if _, err := h.svc.Submit(ctx, "quiet", "web", 2000+100*i); err != nil {
			t.Errorf("quiet tenant violation %d shed while flooder saturated: %v", i, err)
		}
	}
	if got := h.svc.counter("quiet", "shed").Value(); got != 0 {
		t.Errorf("quiet shed counter = %d, want 0", got)
	}
	if got := h.svc.counter("loud", "shed").Value(); got != 45 {
		t.Errorf("loud shed counter = %d, want 45", got)
	}
	if _, err := h.svc.Submit(ctx, "stranger", "web", 1); !errors.Is(err, tenant.ErrUnknown) {
		t.Errorf("outsider tenant error = %v, want ErrUnknown", err)
	}
}

// TestServiceReplay crashes a service after one served verdict and one
// accepted-but-failed violation, then replays the journal in a fresh
// process: the served verdict is re-served byte-identically from the rebuilt
// cache, the failed violation is re-run, and history is restored.
func TestServiceReplay(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "journal.jsonl")
	clock := time.Unix(70_000, 0)

	// First life: appA serves, appB's localization dies before a verdict.
	h1 := newServiceHarness(t, journalPath, ServiceConfig{CoalesceWindow: 30})
	h1.svc.SetClock(func() time.Time { return clock })
	served, err := h1.svc.Submit(context.Background(), "t1", "appA", 1000)
	if err != nil {
		t.Fatal(err)
	}
	h1.svc.localizeFn = func(ctx context.Context, tv int64, tenantName, app string) (core.LocalizeResult, error) {
		return core.LocalizeResult{}, errors.New("slave fleet lost")
	}
	if _, err := h1.svc.Submit(context.Background(), "t1", "appB", 2000); err == nil {
		t.Fatal("appB submit should have failed")
	}
	if err := h1.sink.EventJournal().Close(); err != nil { // "crash"
		t.Fatal(err)
	}

	// Second life over the same journal.
	h2 := newServiceHarness(t, journalPath, ServiceConfig{CoalesceWindow: 30})
	h2.svc.SetClock(func() time.Time { return clock.Add(time.Minute) }) // within TTL
	stats, err := h2.svc.Replay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheRestored != 1 {
		t.Errorf("CacheRestored = %d, want 1", stats.CacheRestored)
	}
	if stats.Rerun != 1 || stats.RerunFailed != 0 {
		t.Errorf("Rerun = %d (failed %d), want 1 rerun of appB", stats.Rerun, stats.RerunFailed)
	}
	if stats.HistoryRestored != 1 {
		t.Errorf("HistoryRestored = %d, want 1", stats.HistoryRestored)
	}
	hist := h2.master.History()
	if len(hist) != 1 || hist[0].App != "appA" || hist[0].Tenant != "t1" {
		t.Errorf("restored history = %+v, want appA record", hist)
	}

	// The pre-crash verdict re-serves byte-identically from the cache.
	again, err := h2.svc.Submit(context.Background(), "t1", "appA", 1010)
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != "cache" {
		t.Errorf("re-served source = %q, want cache", again.Source)
	}
	if !bytes.Equal(again.Diagnosis, served.Diagnosis) {
		t.Errorf("re-served diagnosis not byte-identical:\n%s\n%s", served.Diagnosis, again.Diagnosis)
	}
	if h2.calls.Load() != 1 { // only appB's re-run localized
		t.Errorf("second life localizations = %d, want 1", h2.calls.Load())
	}
	// appB's re-run was journaled as a replay-sourced verdict, so a third
	// replay would find nothing pending.
	if got := h2.journalCount(t, "verdict_served", "t1", "replay"); got != 1 {
		t.Errorf("replay-sourced verdict_served events = %d, want 1", got)
	}

	// A second replay in the same process re-runs nothing and must not
	// duplicate history.
	stats2, err := h2.svc.Replay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Rerun != 0 || stats2.RerunFailed != 0 {
		t.Errorf("second replay re-ran %d (+%d failed), want 0", stats2.Rerun, stats2.RerunFailed)
	}
	if got := len(h2.master.History()); got != 1 {
		t.Errorf("history after double replay = %d records, want 1", got)
	}
}

// TestServiceWireProtocol drives the violate/verdict frames over real TCP:
// verdicts round-trip, and namespace/quota/drain rejections map back to the
// service sentinels through errors.Is.
func TestServiceWireProtocol(t *testing.T) {
	h := newServiceHarness(t, "", ServiceConfig{
		Tenants:        []string{"t1"},
		QuotaPerMinute: 60,
		QuotaBurst:     2,
	})
	now := time.Unix(80_000, 0)
	h.svc.SetClock(func() time.Time { return now })
	if err := h.master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer h.master.Close()
	client, err := DialService(h.master.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	v, err := client.Violate(ctx, "t1", "shop", 1000)
	if err != nil {
		t.Fatalf("violate: %v", err)
	}
	if v.Source != "live" || v.Tenant != "t1" || v.App != "shop" {
		t.Errorf("verdict = %+v, want live t1/shop", v)
	}
	if d, err := v.Decode(); err != nil || len(d.Culprits) != 1 || d.Culprits[0].Component != "db" {
		t.Errorf("decoded diagnosis = %+v (err %v), want db culprit", d, err)
	}

	if _, err := client.Violate(ctx, "nobody", "shop", 1000); !errors.Is(err, tenant.ErrUnknown) {
		t.Errorf("unknown tenant error = %v, want ErrUnknown", err)
	}
	// Bucket of 2: one token left, then quota.
	if _, err := client.Violate(ctx, "t1", "shop", 5000); err != nil {
		t.Fatalf("second violation: %v", err)
	}
	if _, err := client.Violate(ctx, "t1", "shop", 9000); !errors.Is(err, tenant.ErrQuota) {
		t.Errorf("over-quota error = %v, want ErrQuota", err)
	}
	if left := h.svc.Drain(time.Second); left != 0 {
		t.Errorf("drain left %d in flight", left)
	}
	now = now.Add(time.Hour) // refill tokens: rejection must be the drain, not quota
	if _, err := client.Violate(ctx, "t1", "shop", 13000); !errors.Is(err, ErrDraining) {
		t.Errorf("draining error = %v, want ErrDraining", err)
	}
}

// TestMasterWithoutServiceRejectsViolations checks the wire answer when no
// Service is attached.
func TestMasterWithoutServiceRejectsViolations(t *testing.T) {
	m := NewMaster(core.Config{}, nil)
	if err := m.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	client, err := DialService(m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := client.Violate(ctx, "t1", "shop", 1000); !errors.Is(err, ErrNoService) {
		t.Errorf("no-service error = %v, want ErrNoService", err)
	}
}

// TestServiceSoak hammers the service from 12 tenants concurrently (flooding
// and quiet mixed), then reconciles the per-tenant counters against the
// write-ahead journal exactly: every accepted violation is covered by
// exactly one verdict, shed/coalesced/cached counts match their journal
// events one for one, and no goroutines leak. Run with -race.
func TestServiceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	baseline := runtime.NumGoroutine()
	h := newServiceHarness(t, "", ServiceConfig{
		QuotaPerMinute: 60,
		QuotaBurst:     10,
		CoalesceWindow: 30,
		CacheTTL:       time.Hour,
	})
	now := time.Unix(100_000, 0)
	h.svc.SetClock(func() time.Time { return now }) // static: quota = burst exactly
	h.svc.localizeFn = func(ctx context.Context, tv int64, tenantName, app string) (core.LocalizeResult, error) {
		time.Sleep(time.Millisecond) // keep flights overlapping
		return h.fakeLocalize(ctx, tv, tenantName, app)
	}

	const tenants = 12
	apps := []string{"shop", "billing", "search"}
	var wg sync.WaitGroup
	var unexpected atomic.Int64
	submissions := make([]int, tenants)
	for ti := 0; ti < tenants; ti++ {
		n := 30
		if ti == tenants-1 {
			n = 5 // the quiet tenant stays under its burst
		}
		submissions[ti] = n
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(ti, i int) {
				defer wg.Done()
				tenantName := fmt.Sprintf("tenant-%02d", ti)
				app := apps[i%len(apps)]
				tv := int64(1000 + 10*i)
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				_, err := h.svc.Submit(ctx, tenantName, app, tv)
				if err != nil && !errors.Is(err, tenant.ErrQuota) {
					t.Errorf("tenant %s violation %d: %v", tenantName, i, err)
					unexpected.Add(1)
				}
			}(ti, i)
		}
	}
	wg.Wait()

	events, err := obs.ReadJournal(h.journal)
	if err != nil {
		t.Fatal(err)
	}
	type tally struct{ accepted, shed, coalesced, cached, servedSeqs int }
	byTenant := make(map[string]*tally)
	get := func(name string) *tally {
		if byTenant[name] == nil {
			byTenant[name] = &tally{}
		}
		return byTenant[name]
	}
	seqOwner := make(map[int64]string) // accepted seq -> tenant
	coveredSeqs := make(map[int64]int) // accepted seq -> times served
	for _, ev := range events {
		var data struct {
			Tenant     string  `json:"tenant"`
			Source     string  `json:"source"`
			AcceptSeqs []int64 `json:"accept_seqs"`
		}
		if err := json.Unmarshal(ev.Data, &data); err != nil {
			continue
		}
		switch ev.Type {
		case "violation_accepted":
			get(data.Tenant).accepted++
			seqOwner[ev.Seq] = data.Tenant
		case "violation_shed":
			get(data.Tenant).shed++
		case "violation_coalesced":
			get(data.Tenant).coalesced++
		case "verdict_served":
			if data.Source == "cache" {
				get(data.Tenant).cached++
			}
			for _, seq := range data.AcceptSeqs {
				coveredSeqs[seq]++
				get(seqOwner[seq]).servedSeqs++
			}
		case "verdict_failed":
			t.Errorf("unexpected verdict_failed event: %s", ev.Data)
		}
	}

	total := 0
	for ti := 0; ti < tenants; ti++ {
		name := fmt.Sprintf("tenant-%02d", ti)
		tl := get(name)
		total += submissions[ti]
		// Counters must reconcile with the journal exactly.
		for outcome, journaled := range map[string]int{
			"accepted":  tl.accepted,
			"shed":      tl.shed,
			"coalesced": tl.coalesced,
			"cached":    tl.cached,
		} {
			if got := h.svc.counter(name, outcome).Value(); got != int64(journaled) {
				t.Errorf("%s: counter %s = %d, journal says %d", name, outcome, got, journaled)
			}
		}
		if tl.accepted+tl.shed != submissions[ti] {
			t.Errorf("%s: accepted %d + shed %d != %d submitted", name, tl.accepted, tl.shed, submissions[ti])
		}
		if tl.servedSeqs != tl.accepted {
			t.Errorf("%s: %d accepted seqs but %d covered by verdicts", name, tl.accepted, tl.servedSeqs)
		}
		// Fair shedding: the static clock makes each bucket exactly its
		// burst, so flooders shed all but 10 and the quiet tenant sheds 0.
		wantShed := submissions[ti] - 10
		if wantShed < 0 {
			wantShed = 0
		}
		if tl.shed != wantShed {
			t.Errorf("%s: shed %d of %d, want %d", name, tl.shed, submissions[ti], wantShed)
		}
	}
	for seq, n := range coveredSeqs {
		if n != 1 {
			t.Errorf("accepted seq %d covered by %d verdicts, want exactly 1", seq, n)
		}
	}
	if unexpected.Load() > 0 {
		t.Fatalf("%d unexpected submit errors", unexpected.Load())
	}

	// Every Submit returned; the service holds no goroutines of its own.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > baseline+2 {
		t.Errorf("goroutines leaked: baseline=%d after=%d", baseline, after)
	}
	if left := h.svc.Drain(time.Second); left != 0 {
		t.Errorf("drain left %d in flight after soak", left)
	}
}
