package cluster

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fchain/internal/apps"
	"fchain/internal/core"
	"fchain/internal/faultnet"
	"fchain/internal/metric"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fakeSlave registers name/components over a raw connection and hands the
// connection to the caller for scripted (mis)behavior.
func fakeSlave(t *testing.T, addr, name string, components []string) (net.Conn, *connWriter) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	w := newConnWriter(conn)
	reg := &envelope{Type: typeRegister, Slave: name, Components: components}
	if err := w.write(reg, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	return conn, w
}

// stateRecorder captures the slave's connection-state transitions.
type stateRecorder struct {
	mu     sync.Mutex
	states []ConnState
}

func (r *stateRecorder) record(s ConnState, err error) {
	r.mu.Lock()
	r.states = append(r.states, s)
	r.mu.Unlock()
}

func (r *stateRecorder) has(want ConnState) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.states {
		if s == want {
			return true
		}
	}
	return false
}

// TestSlaveReconnectsAfterDrop severs the master link of one slave mid-run
// and verifies the slave re-dials with backoff, re-registers, and a
// subsequent Localize succeeds with full coverage.
func TestSlaveReconnectsAfterDrop(t *testing.T) {
	sim, tv, deps := faultScenario(t, 1)
	master := NewMaster(core.Config{}, deps)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })

	// The db slave connects through a severable proxy; the rest directly.
	proxy, err := faultnet.NewProxy(master.Addr(), faultnet.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	rec := &stateRecorder{}
	total := len(sim.Components())
	for _, comp := range sim.Components() {
		opts := []SlaveOption{WithBackoff(20*time.Millisecond, 200*time.Millisecond)}
		addr := master.Addr()
		if comp == apps.DB {
			opts = append(opts, WithStateCallback(rec.record))
			addr = proxy.Addr()
		}
		sl := NewSlave("host-"+comp, []string{comp}, core.Config{}, opts...)
		for _, k := range metric.Kinds {
			series, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := sl.Observe(comp, series.TimeAt(i), k, series.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sl.Connect(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sl.Close() })
	}
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == total }, "registrations")

	// Partition: kill the db slave's link mid-run.
	proxy.Sever()
	waitFor(t, 2*time.Second, func() bool { return rec.has(StateDisconnected) }, "disconnect detection")
	waitFor(t, 5*time.Second, func() bool {
		return rec.has(StateReconnecting) && len(master.Slaves()) == total
	}, "reconnect + re-registration")

	res, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Errorf("post-reconnect localize degraded: %+v errors=%v", res, res.Errors)
	}
	if res.SlavesAnswered != total || res.ComponentsReported != total {
		t.Errorf("coverage %d/%d slaves %d/%d components, want full",
			res.SlavesAnswered, res.SlavesTotal, res.ComponentsReported, res.ComponentsKnown)
	}
	if names := res.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Errorf("diagnosis after reconnect = %v, want [db]", names)
	}
}

// TestPermanentSlaveLossDegradesCoverage drops one slave for good and checks
// the LocalizeResult reports partial coverage with Degraded=true while still
// producing the right diagnosis.
func TestPermanentSlaveLossDegradesCoverage(t *testing.T) {
	sim, tv, deps := faultScenario(t, 1)
	master := NewMaster(core.Config{}, deps)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	total := len(sim.Components())
	var lost *Slave
	for _, comp := range sim.Components() {
		sl := NewSlave("host-"+comp, []string{comp}, core.Config{}, WithReconnect(false))
		for _, k := range metric.Kinds {
			series, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := sl.Observe(comp, series.TimeAt(i), k, series.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sl.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sl.Close() })
		if comp == apps.App2 {
			lost = sl
		}
	}
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == total }, "registrations")

	lost.Close()
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == total-1 }, "eviction")

	res, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("localize with a lost slave must report Degraded")
	}
	if res.SlavesTotal != total-1 || res.SlavesAnswered != total-1 {
		t.Errorf("slaves %d/%d, want %d/%d", res.SlavesAnswered, res.SlavesTotal, total-1, total-1)
	}
	// The lost component still counts in the application size.
	if res.ComponentsKnown != total || res.ComponentsReported != total-1 {
		t.Errorf("components %d/%d, want %d/%d", res.ComponentsReported, res.ComponentsKnown, total-1, total)
	}
	if cov := res.Coverage(); cov >= 1 {
		t.Errorf("coverage = %v, want < 1", cov)
	}
	if names := res.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Errorf("degraded diagnosis = %v, want [db]", names)
	}
	if h := master.Health(); h["host-"+apps.App2].State != Dead {
		t.Errorf("lost slave health = %+v, want dead", h["host-"+apps.App2])
	}
}

// TestHeartbeatEvictsDeadSlave registers a peer that never answers pings and
// checks the heartbeat loop evicts it.
func TestHeartbeatEvictsDeadSlave(t *testing.T) {
	master := NewMaster(core.Config{}, nil, WithHeartbeat(25*time.Millisecond, 2))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	fakeSlave(t, master.Addr(), "zombie", []string{"z"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")
	// The zombie never reads nor pongs: misses accumulate and it is evicted.
	waitFor(t, 3*time.Second, func() bool { return len(master.Slaves()) == 0 }, "heartbeat eviction")
	if h := master.Health(); h["zombie"].State != Dead {
		t.Errorf("zombie health = %+v, want dead", h["zombie"])
	}
}

// TestHeartbeatKeepsLiveSlave verifies a real slave answers master pings and
// stays registered and healthy.
func TestHeartbeatKeepsLiveSlave(t *testing.T) {
	master := NewMaster(core.Config{}, nil, WithHeartbeat(20*time.Millisecond, 2))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	sl := NewSlave("h", []string{"a"}, core.Config{})
	if err := sl.Connect(master.Addr()); err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")
	time.Sleep(200 * time.Millisecond) // many heartbeat rounds
	if got := master.Slaves(); len(got) != 1 {
		t.Fatalf("live slave evicted: %v", got)
	}
	if h := master.Health(); h["h"].State != Healthy {
		t.Errorf("live slave health = %+v, want healthy", h["h"])
	}
}

// TestLocalizeRetrySucceeds exercises the per-slave retry budget: the slave
// ignores the first analyze request and answers the second.
func TestLocalizeRetrySucceeds(t *testing.T) {
	master := NewMaster(core.Config{}, nil,
		WithLocalizeRetries(1), WithLocalizeTimeout(4*time.Second))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	conn, w := fakeSlave(t, master.Addr(), "flaky", []string{"a"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")

	go func() {
		r := newReader(conn)
		analyzes := 0
		for {
			env, err := readFrame(r)
			if err != nil {
				return
			}
			if env.Type != typeAnalyze {
				continue
			}
			analyzes++
			if analyzes == 1 {
				continue // swallow the first request: force a retry
			}
			resp := &envelope{Type: typeReports, ID: env.ID,
				Reports: []core.ComponentReport{{Component: "a"}}}
			if err := w.write(resp, 2*time.Second); err != nil {
				return
			}
		}
	}()

	res, err := master.Localize(context.Background(), 100)
	if err != nil {
		t.Fatalf("localize with retry budget failed: %v", err)
	}
	if res.Retries < 1 {
		t.Errorf("retries = %d, want >= 1", res.Retries)
	}
	if res.SlavesAnswered != 1 || res.Degraded {
		t.Errorf("retry result = %+v, want full coverage", res)
	}
}

// TestLocalizeFailureReportsPartialCoverage: a slave that never answers
// exhausts its retries and the result carries the miss.
func TestLocalizeFailureReportsPartialCoverage(t *testing.T) {
	master := NewMaster(core.Config{}, nil,
		WithLocalizeRetries(1), WithLocalizeTimeout(time.Second), WithBreaker(0, 0))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	fakeSlave(t, master.Addr(), "mute", []string{"m"})
	conn, w := fakeSlave(t, master.Addr(), "good", []string{"g"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 2 }, "registrations")
	go answerAnalyzes(conn, w, "g")

	res, err := master.Localize(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.SlavesAnswered != 1 || res.SlavesTotal != 2 {
		t.Errorf("result = %+v, want degraded 1/2", res)
	}
	if len(res.Errors) != 1 || !strings.Contains(res.Errors[0], "mute") {
		t.Errorf("errors = %v, want one mentioning mute", res.Errors)
	}
}

// answerAnalyzes serves every analyze request with a single-component report.
func answerAnalyzes(conn net.Conn, w *connWriter, component string) {
	r := newReader(conn)
	for {
		env, err := readFrame(r)
		if err != nil {
			return
		}
		switch env.Type {
		case typeAnalyze:
			resp := &envelope{Type: typeReports, ID: env.ID,
				Reports: []core.ComponentReport{{Component: component}}}
			if err := w.write(resp, 2*time.Second); err != nil {
				return
			}
		case typePing:
			if err := w.write(&envelope{Type: typePong, ID: env.ID}, 2*time.Second); err != nil {
				return
			}
		}
	}
}

// TestBreakerSkipsRepeatedlyFailingSlave: after threshold consecutive
// failures the breaker opens and subsequent Localize calls skip the slave
// without burning their deadline on it.
func TestBreakerSkipsRepeatedlyFailingSlave(t *testing.T) {
	master := NewMaster(core.Config{}, nil,
		WithLocalizeRetries(0), WithLocalizeTimeout(300*time.Millisecond),
		WithBreaker(1, time.Minute))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	fakeSlave(t, master.Addr(), "mute", []string{"m"})
	conn, w := fakeSlave(t, master.Addr(), "good", []string{"g"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 2 }, "registrations")
	go answerAnalyzes(conn, w, "g")

	// First call: mute times out, tripping its breaker.
	if _, err := master.Localize(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	// Second call: the open breaker skips mute outright.
	start := time.Now()
	res, err := master.Localize(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("breaker did not short-circuit: localize took %v", elapsed)
	}
	if len(res.Errors) != 1 || !strings.Contains(res.Errors[0], "circuit open") {
		t.Errorf("errors = %v, want circuit-open skip", res.Errors)
	}
	if h := master.Health(); h["mute"].State != Degraded || !h["mute"].BreakerOpen {
		t.Errorf("mute health = %+v, want degraded with open breaker", h["mute"])
	}
}

// TestPendingFailFastOnDisconnect: a slave that dies mid-request must fail
// the in-flight Localize immediately, not after the full timeout.
func TestPendingFailFastOnDisconnect(t *testing.T) {
	master := NewMaster(core.Config{}, nil, WithLocalizeTimeout(30*time.Second))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	conn, _ := fakeSlave(t, master.Addr(), "dying", []string{"d"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")
	go func() {
		r := newReader(conn)
		if _, err := readFrame(r); err == nil { // first analyze request
			conn.Close() // die with the request in flight
		}
	}()
	start := time.Now()
	_, err := master.Localize(context.Background(), 100)
	if err == nil {
		t.Fatal("localize against a dying slave should fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("disconnect burned %v before failing, want fail-fast", elapsed)
	}
}

// TestDuplicateRegistrationEvictsOld: re-registering a name closes the stale
// connection instead of leaking it, and the new connection serves.
func TestDuplicateRegistrationEvictsOld(t *testing.T) {
	master := NewMaster(core.Config{}, nil)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	oldConn, _ := fakeSlave(t, master.Addr(), "dup", []string{"c"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "first registration")
	newConn, newW := fakeSlave(t, master.Addr(), "dup", []string{"c"})

	// The stale connection must be closed by the master.
	oldConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := oldConn.Read(buf); err == nil {
		t.Error("stale duplicate connection still open")
	}
	if got := master.Slaves(); len(got) != 1 || got[0] != "dup" {
		t.Fatalf("slaves after duplicate registration = %v", got)
	}
	// The replacement connection is the live one: ping it.
	if err := newW.write(&envelope{Type: typePing, ID: 9}, time.Second); err != nil {
		t.Fatal(err)
	}
	r := newReader(newConn)
	newConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := readFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != typePong || resp.ID != 9 {
		t.Errorf("replacement conn got %+v, want pong 9", resp)
	}
}

// TestConcurrentWritesSurvivePartialWrites is the regression test for the
// interleaved-frame write bug: with every write split into tiny chunks (so
// unserialized concurrent writers WOULD interleave frames mid-JSON), a ping
// flood racing analyze fan-out must not corrupt either direction of the
// stream. Run with -race to also catch memory-level races on the shared
// connection state.
func TestConcurrentWritesSurvivePartialWrites(t *testing.T) {
	chunky := faultnet.Config{PartialProb: 1, ChunkSize: 5}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	master := NewMaster(core.Config{}, nil, WithLocalizeRetries(0))
	master.Serve(faultnet.WrapListener(ln, chunky))
	defer master.Close()

	sl := NewSlave("h", []string{"a"}, core.Config{}, WithDialer(faultnet.Dialer(chunky)))
	for ts := int64(0); ts < 200; ts++ {
		for _, k := range metric.Kinds {
			if err := sl.Observe("a", ts, k, float64(ts%17)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sl.Connect(master.Addr()); err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")

	// Ping flood (slave->master ping frames + master->slave pong frames)
	// racing analyze fan-out (master->slave analyze + slave->master report
	// frames) over the same two connections.
	done := make(chan struct{})
	var pingErrs int
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if err := sl.Ping(2 * time.Second); err != nil {
				pingErrs++
			}
		}
	}()
	for i := 0; i < 10; i++ {
		res, err := master.Localize(context.Background(), 150)
		if err != nil {
			t.Fatalf("localize %d under write contention: %v", i, err)
		}
		if res.Degraded {
			t.Fatalf("localize %d degraded under write contention: %v", i, res.Errors)
		}
	}
	<-done
	if pingErrs > 0 {
		t.Errorf("%d pings failed under write contention", pingErrs)
	}
	if got := master.Slaves(); len(got) != 1 {
		t.Errorf("connection corrupted: slaves = %v", got)
	}
}

// TestLocalizeHonorsContextCancel: canceling the context aborts the fan-out
// promptly.
func TestLocalizeHonorsContextCancel(t *testing.T) {
	master := NewMaster(core.Config{}, nil, WithLocalizeRetries(3), WithLocalizeTimeout(time.Minute))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	fakeSlave(t, master.Addr(), "mute", []string{"m"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := master.Localize(ctx, 100); err == nil {
		t.Fatal("localize should fail when canceled")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancel took %v to propagate", elapsed)
	}
}

// TestSlaveObservesAcrossOutage: samples fed while the link is down are
// available to analyze after reconnecting.
func TestSlaveObservesAcrossOutage(t *testing.T) {
	master := NewMaster(core.Config{}, nil)
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	proxy, err := faultnet.NewProxy(master.Addr(), faultnet.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	rec := &stateRecorder{}
	sl := NewSlave("h", []string{"a"}, core.Config{},
		WithBackoff(15*time.Millisecond, 120*time.Millisecond), WithStateCallback(rec.record))
	if err := sl.Connect(proxy.Addr()); err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")

	var ts int64
	feed := func(n int64) {
		for i := int64(0); i < n; i++ {
			for _, k := range metric.Kinds {
				if err := sl.Observe("a", ts, k, float64(ts%13)); err != nil {
					t.Fatal(err)
				}
			}
			ts++
		}
	}
	feed(100)
	proxy.Sever()
	waitFor(t, 2*time.Second, func() bool { return rec.has(StateDisconnected) }, "disconnect")
	feed(100) // collection continues locally through the outage
	waitFor(t, 5*time.Second, func() bool {
		return sl.Connected() && len(master.Slaves()) == 1
	}, "reconnect")

	res, err := master.Localize(context.Background(), ts-1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.ComponentsReported != 1 {
		t.Errorf("post-outage result = %+v, want full single-component coverage", res)
	}
}
