package cluster

import (
	"encoding/json"
	"io"
	"path/filepath"
	"testing"

	"fchain/internal/core"
	"fchain/internal/metric"
	"fchain/internal/obs"
)

// TestSlaveStreamingMetrics: a streaming slave exports the streaming-state
// gauges and the cold-fallback counter, and the journal's analyze records
// reconcile with the registry — the last journaled snapshot matches the
// gauges exactly and the counter equals the last journaled monotone total.
func TestSlaveStreamingMetrics(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "journal.jsonl")
	sink, err := obs.NewSink(io.Discard, "error", journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.EventJournal().Close()

	cfg := core.DefaultConfig()
	cfg.Streaming = true
	sl := NewSlave("h", []string{"a", "b"}, cfg, WithSlaveObs(sink))
	defer sl.Close()
	feed := func(from, to int64) {
		for ts := from; ts <= to; ts++ {
			for _, comp := range []string{"a", "b"} {
				for _, k := range metric.Kinds {
					if err := sl.Observe(comp, ts, k, float64(40+ts%13)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	feed(1, 400)
	sl.Analyze(400)
	// A historical analysis is a guaranteed cold fallback per warm stream.
	sl.analyzeWithWindow(300, 0)
	feed(401, 450)
	sl.Analyze(450)

	reg := sink.Registry()
	bytesGauge := reg.Gauge("fchain_streaming_bytes", "").Value()
	if bytesGauge <= 0 {
		t.Fatalf("fchain_streaming_bytes = %v, want > 0", bytesGauge)
	}
	colds := reg.Counter("fchain_streaming_cold_total", "").Value()
	if colds == 0 {
		t.Fatal("fchain_streaming_cold_total = 0, want > 0 after historical analysis")
	}

	// Reconcile against the journal: every analyze record carries the
	// streaming snapshot that was exported with it.
	events, err := obs.ReadJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	var lastBytes, lastColds float64
	analyzed := 0
	for _, ev := range events {
		if ev.Type != "analyze" {
			continue
		}
		var data map[string]any
		if err := json.Unmarshal(ev.Data, &data); err != nil {
			t.Fatal(err)
		}
		b, okB := data["streaming_bytes"].(float64)
		c, okC := data["streaming_cold_total"].(float64)
		if !okB || !okC {
			t.Fatalf("analyze record missing streaming fields: %s", ev.Data)
		}
		if c < lastColds {
			t.Fatalf("journaled streaming_cold_total regressed: %v -> %v", lastColds, c)
		}
		lastBytes, lastColds = b, c
		analyzed++
	}
	if analyzed != 3 {
		t.Fatalf("journal has %d analyze records, want 3", analyzed)
	}
	if lastBytes != bytesGauge {
		t.Fatalf("journal streaming_bytes %v != gauge %v", lastBytes, bytesGauge)
	}
	if float64(colds) != lastColds {
		t.Fatalf("counter %d != journaled monotone total %v", colds, lastColds)
	}
}

// TestSlaveStreamingMetricsOff: without Config.Streaming the streaming
// metrics are never registered and analyze records carry no streaming fields.
func TestSlaveStreamingMetricsOff(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "journal.jsonl")
	sink, err := obs.NewSink(io.Discard, "error", journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.EventJournal().Close()

	sl := NewSlave("h", []string{"a"}, core.DefaultConfig(), WithSlaveObs(sink))
	defer sl.Close()
	for ts := int64(1); ts <= 300; ts++ {
		for _, k := range metric.Kinds {
			if err := sl.Observe("a", ts, k, float64(40+ts%13)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sl.Analyze(300)
	events, err := obs.ReadJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Type != "analyze" {
			continue
		}
		var data map[string]any
		if err := json.Unmarshal(ev.Data, &data); err != nil {
			t.Fatal(err)
		}
		if _, ok := data["streaming_bytes"]; ok {
			t.Fatalf("non-streaming analyze record carries streaming fields: %s", ev.Data)
		}
	}
}
