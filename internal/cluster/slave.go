package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fchain/internal/core"
	"fchain/internal/metric"
	"fchain/internal/obs"
)

// ConnState describes the slave's link to the master, reported through the
// WithStateCallback option.
type ConnState int

const (
	// StateConnected: registered with the master and serving requests.
	StateConnected ConnState = iota
	// StateDisconnected: the connection dropped (or a reconnect attempt
	// failed); the callback's error carries the cause.
	StateDisconnected
	// StateReconnecting: about to re-dial after a backoff delay.
	StateReconnecting
	// StateClosed: Close was called (or the reconnect context was
	// canceled); no further attempts will be made.
	StateClosed
)

// String returns the state name.
func (s ConnState) String() string {
	switch s {
	case StateConnected:
		return "connected"
	case StateDisconnected:
		return "disconnected"
	case StateReconnecting:
		return "reconnecting"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("ConnState(%d)", int(s))
	}
}

// Default reconnect backoff bounds: first retry after ~backoffInitial,
// doubling per failure up to backoffMax, each delay jittered ±50% so a
// recovering master is not hit by synchronized re-registration storms.
const (
	defaultBackoffInitial = 500 * time.Millisecond
	defaultBackoffMax     = 15 * time.Second
)

// Slave is the FChain slave daemon for one host: it runs the normal
// fluctuation models for the components (guest VMs) on that host and
// answers the master's analyze requests with abnormal change point reports
// (paper Fig. 1: the slave modules run inside Domain 0 of each cloud node).
//
// The slave survives master outages: metric collection is purely local, so
// models keep learning while the link is down, and the connection manager
// re-dials and re-registers with capped exponential backoff until Close (or
// the Connect context) stops it. After a reconnect the slave can answer
// analyze requests over its full retained ring — an outage costs the master
// nothing but the time it lasted.
type Slave struct {
	name string
	cfg  core.Config

	// skew simulates this host's clock error relative to the master: every
	// recorded sample timestamp is shifted by skew seconds. The paper
	// relies on NTP (sub-5 ms error) and notes FChain tolerates small
	// skews because propagation delays between components are seconds.
	skew int64

	dial           func(addr string) (net.Conn, error)
	backoffInitial time.Duration
	backoffMax     time.Duration
	reconnect      bool
	onState        func(ConnState, error)

	// Observability sink plus pre-resolved hot-path metrics: the per-sample
	// ingest counters are looked up once at construction so feeding a sample
	// costs one atomic increment (or nothing, without a sink).
	obs           *obs.Sink
	ingestSamples *obs.Counter
	ingestErrors  *obs.Counter

	// streamColds holds the last exported value of the monotone streaming
	// cold-fallback total, so concurrent analyzes each export only their own
	// delta into the registry counter.
	streamColds atomic.Uint64

	// Crash-safe model persistence: with a checkpoint directory set, the
	// slave restores each monitor from its last checkpoint at construction
	// and re-checkpoints every checkpointInterval until Close.
	checkpointDir      string
	checkpointInterval time.Duration
	restored           []string // components restored from checkpoints
	stopCkpt           chan struct{}

	// Monitor state needs no slave-level lock: core.Monitor shards its
	// state per metric, so collection (Observe/Ingest), analysis, and
	// checkpoint snapshots running on different goroutines synchronize on
	// the shard mutexes and contend only per metric touched.

	// Warm-standby replication (primary side): with replInterval > 0 the
	// slave ships every owned component's state delta upstream each tick; the
	// master relays each frame to the component's standby. replFloors holds,
	// per component, the last-shipped timestamp per metric (the incremental
	// delta extraction floor; a missing component entry forces a full
	// snapshot), and replSeq the per-component frame sequence. Floors advance
	// optimistically on send — a NAK (codeReplFull) from the relay deletes
	// the component's floors so the next tick resends the full snapshot.
	replInterval time.Duration
	stopRepl     chan struct{}
	replID       atomic.Uint64 // frame IDs for slave-originated replicate frames
	replMu       sync.Mutex
	replFloors   map[string]map[string]int64
	replSeq      map[string]uint64

	// analyzeGate bounds concurrent analyze work; nil admits everything.
	analyzeGate *gate

	// via names the aggregator this slave also answers through; it rides on
	// every register frame so the master can group the slave into that
	// aggregator's subtree while keeping the direct link for fallback asks.
	via string

	mu       sync.Mutex
	monitors map[string]*core.Monitor
	// shadows are the warm-standby monitors this slave keeps for components
	// owned elsewhere: built purely from relayed replication deltas, never
	// from the checkpoint dir (the primary owns that file), and promoted to
	// live monitors in place when an assign push hands the component over.
	shadows map[string]*core.Monitor
	ups      []*upstream // every Connect call adds one managed upstream
	closed   bool
	wg       sync.WaitGroup

	pingMu      sync.Mutex
	pingCounter uint64
	pingWaiters map[uint64]chan struct{}
}

// upstream is one managed connection (to the master, or in tree mode also to
// an aggregator): a slave in a hierarchical topology answers analyze
// requests on every upstream identically, so the master can fall back to the
// direct link when the aggregator dies mid-localization.
type upstream struct {
	addr   string
	cancel context.CancelFunc
	w      *connWriter // guarded by the slave's mu; nil while disconnected
}

// SlaveOption configures a Slave.
type SlaveOption interface {
	apply(*Slave)
}

type slaveOptionFunc func(*Slave)

func (f slaveOptionFunc) apply(s *Slave) { f(s) }

// WithClockSkew sets a simulated clock skew (in seconds) for the slave's
// sample timestamps.
func WithClockSkew(seconds int64) SlaveOption {
	return slaveOptionFunc(func(s *Slave) { s.skew = seconds })
}

// WithBackoff overrides the reconnect backoff bounds: the first retry waits
// ~initial (jittered), doubling per consecutive failure up to max.
func WithBackoff(initial, max time.Duration) SlaveOption {
	return slaveOptionFunc(func(s *Slave) {
		if initial > 0 {
			s.backoffInitial = initial
		}
		if max > 0 {
			s.backoffMax = max
		}
	})
}

// WithReconnect toggles automatic reconnection (default on). With reconnect
// off, a dropped connection leaves the slave collecting locally until
// Connect is called again.
func WithReconnect(on bool) SlaveOption {
	return slaveOptionFunc(func(s *Slave) { s.reconnect = on })
}

// WithStateCallback registers a connection-state observer. The callback runs
// on the connection manager goroutine — keep it fast and do not call back
// into the Slave from it. err is non-nil for StateDisconnected.
func WithStateCallback(fn func(state ConnState, err error)) SlaveOption {
	return slaveOptionFunc(func(s *Slave) { s.onState = fn })
}

// WithDialer overrides how the slave dials the master; chaos tests inject
// fault-wrapped connections through this.
func WithDialer(dial func(addr string) (net.Conn, error)) SlaveOption {
	return slaveOptionFunc(func(s *Slave) { s.dial = dial })
}

// WithCheckpointDir enables crash-safe model persistence: the slave restores
// each monitor from dir at construction (unreadable or corrupted checkpoints
// cold-start that component) and periodically checkpoints the learned models
// and retained ring tails back to it. Losing a slave's models otherwise
// costs the whole self-calibration history: the restarted daemon would flag
// every workload fluctuation as "never seen before" until it relearns.
func WithCheckpointDir(dir string) SlaveOption {
	return slaveOptionFunc(func(s *Slave) { s.checkpointDir = dir })
}

// WithCheckpointInterval overrides how often the periodic checkpoint runs
// (default 30s; meaningful only together with WithCheckpointDir).
func WithCheckpointInterval(d time.Duration) SlaveOption {
	return slaveOptionFunc(func(s *Slave) {
		if d > 0 {
			s.checkpointInterval = d
		}
	})
}

// WithReplication enables warm-standby replication: every interval the slave
// ships each owned component's state delta upstream (a full snapshot first,
// incremental sample replays after), and the master relays each frame to the
// component's standby. Replication reads monitor state only at tick time —
// the per-sample Observe/Ingest hot path is untouched (the fchain-bench
// -check replication guard holds it to ≤5% overhead). d <= 0 (the default)
// disables replication.
func WithReplication(interval time.Duration) SlaveOption {
	return slaveOptionFunc(func(s *Slave) {
		if interval > 0 {
			s.replInterval = interval
		}
	})
}

// WithSlaveAdmission bounds concurrent analyze work on the slave: at most
// limit requests analyze at once, at most queue more wait (LIFO — the
// request with the freshest deadline budget is served first; an overflowing
// queue sheds its oldest waiter). Shed or deadline-expired requests are
// answered with a structured "overloaded" error frame so the master can
// fail fast instead of burning its budget. limit <= 0 (the default) admits
// everything.
func WithSlaveAdmission(limit, queue int) SlaveOption {
	return slaveOptionFunc(func(s *Slave) { s.analyzeGate = newGate(limit, queue) })
}

// WithVia tags the slave's registrations with the name of the aggregator it
// also answers through: the master groups tagged slaves into that
// aggregator's analyze subtree and uses this direct connection only for
// fallback asks. The tag is advisory — an unknown or dead aggregator name
// simply leaves the slave on the master's direct fan-out path.
func WithVia(aggregator string) SlaveOption {
	return slaveOptionFunc(func(s *Slave) { s.via = aggregator })
}

// WithSlaveObs attaches an observability sink: ingest and analyze counters
// plus selection latency histograms land in its registry, each analyze
// request's trace in its trace ring, events in its journal, and connection
// state transitions in its logger. A nil sink (the default) disables
// everything.
func WithSlaveObs(sink *obs.Sink) SlaveOption {
	return slaveOptionFunc(func(s *Slave) { s.obs = sink })
}

// NewSlave creates a slave monitoring the given components.
func NewSlave(name string, components []string, cfg core.Config, opts ...SlaveOption) *Slave {
	s := &Slave{
		name: name,
		cfg:  cfg,
		dial: func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 10*time.Second)
		},
		backoffInitial: defaultBackoffInitial,
		backoffMax:     defaultBackoffMax,
		reconnect:      true,
		monitors:       make(map[string]*core.Monitor, len(components)),
		shadows:        make(map[string]*core.Monitor),
		pingWaiters:    make(map[uint64]chan struct{}),

		checkpointInterval: 30 * time.Second,
		stopCkpt:           make(chan struct{}),
		stopRepl:           make(chan struct{}),
		replFloors:         make(map[string]map[string]int64),
		replSeq:            make(map[string]uint64),
	}
	for _, c := range components {
		s.monitors[c] = core.NewMonitor(c, cfg)
	}
	for _, o := range opts {
		o.apply(s)
	}
	s.ingestSamples = s.obs.Registry().Counter("fchain_ingest_samples_total",
		"Metric samples fed into the slave's models.")
	s.ingestErrors = s.obs.Registry().Counter("fchain_ingest_errors_total",
		"Samples rejected by the ingest path.")
	if s.checkpointDir != "" {
		s.restoreCheckpoints()
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	if s.replInterval > 0 {
		s.wg.Add(1)
		go s.replLoop()
	}
	return s
}

// checkpointPath names one component's checkpoint file; the component name
// is path-escaped so arbitrary names (e.g. "tenant/db") stay one file.
func (s *Slave) checkpointPath(component string) string {
	return filepath.Join(s.checkpointDir, url.PathEscape(component)+".ckpt")
}

// restoreCheckpoints loads whatever usable checkpoints the directory holds.
// Any per-component failure (missing file, bad checksum, wrong version,
// invalid state) cold-starts that component; restore is best-effort by
// design, because a slave that refuses to start over a stale checkpoint is
// worse than one that relearns.
func (s *Slave) restoreCheckpoints() {
	for comp, mon := range s.monitors {
		var snap core.MonitorSnapshot
		if err := core.LoadCheckpoint(s.checkpointPath(comp), &snap); err != nil {
			continue
		}
		if err := mon.Restore(&snap); err != nil {
			continue
		}
		s.restored = append(s.restored, comp)
	}
}

// RestoredComponents returns the components whose state was successfully
// restored from checkpoints at construction.
func (s *Slave) RestoredComponents() []string {
	return append([]string(nil), s.restored...)
}

// CheckpointNow snapshots every monitor and writes the checkpoints
// atomically, returning the first error encountered (the remaining
// components are still attempted).
func (s *Slave) CheckpointNow() error {
	if s.checkpointDir == "" {
		return fmt.Errorf("cluster: slave %s has no checkpoint directory", s.name)
	}
	if err := os.MkdirAll(s.checkpointDir, 0o755); err != nil {
		return fmt.Errorf("cluster: checkpoint dir: %w", err)
	}
	s.mu.Lock()
	monitors := make(map[string]*core.Monitor, len(s.monitors))
	for comp, mon := range s.monitors {
		monitors[comp] = mon
	}
	s.mu.Unlock()
	snaps := make(map[string]*core.MonitorSnapshot, len(monitors))
	for comp, mon := range monitors {
		snaps[comp] = mon.Snapshot()
	}
	var firstErr error
	for comp, snap := range snaps {
		if err := core.SaveCheckpoint(s.checkpointPath(comp), snap); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// checkpointLoop re-checkpoints the models periodically until Close.
func (s *Slave) checkpointLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.checkpointInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCkpt:
			return
		case <-ticker.C:
			_ = s.CheckpointNow()
		}
	}
}

// replLoop ships replication deltas for every owned component each interval
// until Close. The extraction buffer is reused across ticks so steady-state
// replication allocates only the frames it actually sends.
func (s *Slave) replLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.replInterval)
	defer ticker.Stop()
	var buf core.ReplDelta
	for {
		select {
		case <-s.stopRepl:
			return
		case <-ticker.C:
			s.replicateOnce(&buf)
		}
	}
}

// replicateOnce runs one replication tick: for each owned component it ships
// either an incremental delta (samples since the shipped floors) or a full
// snapshot (first ship, or after a gap/NAK), then a clean-tick marker frame
// so the master can bound this slave's replication lag. Floors advance
// optimistically after each successful write; the master's per-frame
// response only matters when it is a codeReplFull NAK, which serveLoop
// answers by deleting the component's floors.
func (s *Slave) replicateOnce(buf *core.ReplDelta) {
	s.mu.Lock()
	var w *connWriter
	for _, up := range s.ups {
		if up.w != nil {
			w = up.w
			break
		}
	}
	monitors := make(map[string]*core.Monitor, len(s.monitors))
	for comp, mon := range s.monitors {
		monitors[comp] = mon
	}
	s.mu.Unlock()
	if w == nil {
		return
	}
	// Forget floors for components that moved away since the last tick.
	s.replMu.Lock()
	for comp := range s.replFloors {
		if _, owned := monitors[comp]; !owned {
			delete(s.replFloors, comp)
			delete(s.replSeq, comp)
		}
	}
	s.replMu.Unlock()
	names := make([]string, 0, len(monitors))
	for comp := range monitors {
		names = append(names, comp)
	}
	sort.Strings(names)
	for _, comp := range names {
		mon := monitors[comp]
		s.replMu.Lock()
		floors := s.replFloors[comp]
		seq := s.replSeq[comp] + 1
		s.replMu.Unlock()
		var (
			payload  []byte
			err      error
			fullLast map[string]int64
		)
		changed, incremental := mon.DeltaInto(buf, floors)
		switch {
		case incremental && !changed:
			continue // nothing new this tick
		case incremental:
			payload, err = json.Marshal(buf)
		default:
			snap := mon.Snapshot()
			payload, err = json.Marshal(&core.ReplDelta{Component: comp, Full: snap})
			fullLast = snap.LastT
		}
		if err != nil {
			s.obs.Logger().Warn("replication delta marshal failed", "slave", s.name, "component", comp, "err", err)
			continue
		}
		frame := &envelope{Type: typeReplicate, ID: s.replID.Add(1), Slave: s.name,
			Component: comp, Seq: seq, State: payload}
		if err := w.write(frame, 10*time.Second); err != nil {
			return // connection trouble; next tick retries on whatever link is up
		}
		s.replMu.Lock()
		s.replSeq[comp] = seq
		if fullLast != nil {
			s.replFloors[comp] = fullLast
		} else if floors != nil {
			for name, samples := range buf.Samples {
				if len(samples) > 0 {
					floors[name] = samples[len(samples)-1].T
				}
			}
		}
		s.replMu.Unlock()
	}
	_ = w.write(&envelope{Type: typeReplicate, ID: s.replID.Add(1), Slave: s.name}, 10*time.Second)
}

// handleReplicate applies one relayed replication delta to this slave's
// shadow monitor for the component (standby side). A delta for a component
// without a shadow needs a Full frame to bootstrap one; an incremental frame
// whose Base precondition fails — missing samples between primary and shadow
// — is refused with codeReplFull so the relay NAKs the primary into a full
// resend. Called inline from serveLoop: per-connection ordering is what
// keeps one component's deltas applying in ship order.
func (s *Slave) handleReplicate(w *connWriter, env *envelope) {
	var delta core.ReplDelta
	if err := json.Unmarshal(env.State, &delta); err != nil {
		_ = w.write(&envelope{Type: typeError, ID: env.ID, Component: env.Component, Code: codeReplFull,
			Err: fmt.Sprintf("slave %s: replicate %q: %v", s.name, env.Component, err)}, 10*time.Second)
		return
	}
	comp := env.Component
	s.mu.Lock()
	_, owned := s.monitors[comp]
	mon := s.shadows[comp]
	s.mu.Unlock()
	if owned {
		// A stale relay from a placement we already own; drop it quietly (the
		// ack keeps the primary from resending, and the next rebalance stops
		// pointing its replication at us).
		_ = w.write(&envelope{Type: typeAck, ID: env.ID, Component: comp, Seq: env.Seq}, 10*time.Second)
		return
	}
	if mon == nil {
		if delta.Full == nil {
			_ = w.write(&envelope{Type: typeError, ID: env.ID, Component: comp, Code: codeReplFull,
				Err: fmt.Sprintf("slave %s: no shadow for %q", s.name, comp)}, 10*time.Second)
			return
		}
		mon = core.NewMonitor(comp, s.cfg)
	}
	if err := mon.ApplyDelta(&delta); err != nil {
		_ = w.write(&envelope{Type: typeError, ID: env.ID, Component: comp, Code: codeReplFull,
			Err: fmt.Sprintf("slave %s: replicate %q: %v", s.name, comp, err)}, 10*time.Second)
		return
	}
	s.mu.Lock()
	if _, nowOwned := s.monitors[comp]; !nowOwned {
		s.shadows[comp] = mon
	}
	s.mu.Unlock()
	_ = w.write(&envelope{Type: typeAck, ID: env.ID, Component: comp, Seq: env.Seq}, 10*time.Second)
}

// Shadowed returns the components this slave currently keeps warm-standby
// shadow monitors for, sorted.
func (s *Slave) Shadowed() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.shadows))
	for comp := range s.shadows {
		out = append(out, comp)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Name returns the slave's registration name.
func (s *Slave) Name() string { return s.name }

// Monitored returns the components this slave currently monitors, sorted.
// In sharded mode the set follows the master's assignment pushes.
func (s *Slave) Monitored() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.monitors))
	for comp := range s.monitors {
		out = append(out, comp)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Observe feeds one metric sample into the slave's models through the
// strict path (finite values, strictly advancing timestamps — see
// core.Monitor.Observe). It may be called before, after, or between
// connections; collection is local and continuous, so models keep learning
// through master outages.
func (s *Slave) Observe(component string, t int64, k metric.Kind, v float64) error {
	s.mu.Lock()
	mon, ok := s.monitors[component]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: slave %s does not monitor %q", s.name, component)
	}
	err := mon.Observe(t+s.skew, k, v)
	if err != nil {
		s.ingestErrors.Inc()
	} else {
		s.ingestSamples.Inc()
	}
	return err
}

// Ingest feeds one possibly-dirty metric sample through the component's
// sanitizing path (see core.Monitor.Ingest): garbage is dropped, bounded
// out-of-order arrival reordered, short gaps interpolated, and the damage
// accounted in the quality counters carried by every report.
func (s *Slave) Ingest(component string, t int64, k metric.Kind, v float64) error {
	s.mu.Lock()
	mon, ok := s.monitors[component]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: slave %s does not monitor %q", s.name, component)
	}
	err := mon.Ingest(t+s.skew, k, v)
	if err != nil {
		s.ingestErrors.Inc()
	} else {
		s.ingestSamples.Inc()
	}
	return err
}

// Quality reports per-component data quality accumulated by the sanitizing
// ingest path (components fed only through Observe score 1).
func (s *Slave) Quality() map[string]core.DataQuality {
	s.mu.Lock()
	monitors := make(map[string]*core.Monitor, len(s.monitors))
	for comp, mon := range s.monitors {
		monitors[comp] = mon
	}
	s.mu.Unlock()
	out := make(map[string]core.DataQuality, len(monitors))
	for comp, mon := range monitors {
		st := mon.Quality()
		out[comp] = core.DataQuality{Score: st.Score(), Stats: st}
	}
	return out
}

// Analyze runs abnormal change point selection locally for every monitored
// component (exported for in-process use and tests; the master normally
// triggers it over the wire).
func (s *Slave) Analyze(tv int64) []core.ComponentReport {
	return s.analyzeWithWindow(tv, 0)
}

// Connected reports whether the slave currently holds at least one live
// registered upstream connection.
func (s *Slave) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, up := range s.ups {
		if up.w != nil {
			return true
		}
	}
	return false
}

// Connect dials an upstream (the master — or, in a tree topology, also an
// aggregator: each Connect call adds an independently managed link, and the
// slave answers analyze requests identically on all of them), registers, and
// starts serving in the background. The initial dial is synchronous so
// callers learn about a bad address immediately; afterwards a dropped
// connection is re-dialed with capped exponential backoff until Close.
func (s *Slave) Connect(addr string) error {
	return s.ConnectContext(context.Background(), addr)
}

// ConnectContext is Connect with a lifetime: canceling ctx stops this
// upstream's connection manager (including any in-progress backoff wait)
// exactly like Close, while leaving local collection and other upstreams
// running.
func (s *Slave) ConnectContext(ctx context.Context, addr string) error {
	w, err := s.dialRegister(addr)
	if err != nil {
		return err
	}
	cctx, cancel := context.WithCancel(ctx)
	up := &upstream{addr: addr, cancel: cancel, w: w}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		w.conn.Close()
		return fmt.Errorf("cluster: slave %s is closed", s.name)
	}
	s.ups = append(s.ups, up)
	s.mu.Unlock()
	s.notify(StateConnected, nil)
	s.wg.Add(1)
	go s.manageConn(cctx, up, w)
	return nil
}

// dialRegister performs one dial + register handshake.
func (s *Slave) dialRegister(addr string) (*connWriter, error) {
	conn, err := s.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: slave dial: %w", err)
	}
	s.mu.Lock()
	components := make([]string, 0, len(s.monitors))
	for c := range s.monitors {
		components = append(components, c)
	}
	s.mu.Unlock()
	w := newConnWriter(conn)
	reg := &envelope{Type: typeRegister, Slave: s.name, Components: components, Via: s.via}
	if err := w.write(reg, 10*time.Second); err != nil {
		conn.Close()
		return nil, err
	}
	return w, nil
}

func (s *Slave) notify(state ConnState, err error) {
	if log := s.obs.Logger(); log != nil {
		switch state {
		case StateDisconnected:
			log.Warn("master connection lost", "slave", s.name, "err", err)
		case StateReconnecting:
			log.Debug("reconnecting to master", "slave", s.name)
		default:
			log.Info("connection state changed", "slave", s.name, "state", state.String())
		}
	}
	_ = s.obs.EventJournal().Record("conn_state", map[string]any{"slave": s.name, "state": state.String()})
	if s.onState != nil {
		s.onState(state, err)
	}
}

// manageConn serves one upstream's current connection and, when it drops,
// re-dials with capped exponential backoff and ±50% jitter until ctx is
// canceled or Close is called.
func (s *Slave) manageConn(ctx context.Context, up *upstream, w *connWriter) {
	defer s.wg.Done()
	for {
		err := s.serveLoop(w)
		w.conn.Close()
		s.mu.Lock()
		if up.w == w {
			up.w = nil
		}
		closed := s.closed
		s.mu.Unlock()
		if closed || ctx.Err() != nil {
			s.notify(StateClosed, nil)
			return
		}
		s.notify(StateDisconnected, err)
		if !s.reconnect {
			return
		}
		next, ok := s.redial(ctx, up.addr)
		if !ok {
			s.notify(StateClosed, nil)
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			next.conn.Close()
			s.notify(StateClosed, nil)
			return
		}
		up.w = next
		s.mu.Unlock()
		w = next
		s.notify(StateConnected, nil)
	}
}

// redial retries dial+register with backoff until success or cancellation.
func (s *Slave) redial(ctx context.Context, addr string) (*connWriter, bool) {
	delay := s.backoffInitial
	for {
		s.notify(StateReconnecting, nil)
		select {
		case <-ctx.Done():
			return nil, false
		case <-time.After(jitter(delay)):
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil, false
		}
		w, err := s.dialRegister(addr)
		if err == nil {
			return w, true
		}
		s.notify(StateDisconnected, err)
		delay *= 2
		if delay > s.backoffMax {
			delay = s.backoffMax
		}
	}
}

// jitter spreads d uniformly over [d/2, 3d/2] to avoid reconnect storms.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// serveLoop answers the master's requests until the connection fails; it
// returns the read error that ended it.
func (s *Slave) serveLoop(w *connWriter) error {
	r := newReader(w.conn)
	for {
		env, err := readFrame(r)
		if err != nil {
			return err
		}
		switch env.Type {
		case typeAnalyze:
			// Analysis runs on its own goroutine so a long selection pass
			// cannot block pings (and get the slave evicted for missed
			// heartbeats) or serialize overlapping masters' requests.
			// serveLoop itself runs inside a wg-counted goroutine, so the
			// counter cannot hit zero while this Add races Close's Wait.
			s.wg.Add(1)
			go s.handleAnalyze(w, env)
		case typeAssign:
			s.wg.Add(1)
			go s.handleAssign(w, env)
		case typeExport:
			s.wg.Add(1)
			go s.handleExport(w, env)
		case typeRestore:
			s.wg.Add(1)
			go s.handleRestore(w, env)
		case typeReplicate:
			// Inline, not a goroutine: per-connection ordering is the only
			// thing serializing one component's deltas, and applying a few
			// replayed samples is far cheaper than an analyze pass.
			s.handleReplicate(w, env)
		case typeAck:
			// Relay ack for a replicate frame; floors already advanced
			// optimistically on send, so there is nothing to do.
		case typeError:
			// The only correlated requests a slave originates are replicate
			// frames; a codeReplFull response means the standby needs a full
			// resend, which forgetting the floors arranges next tick.
			if env.Code == codeReplFull && env.Component != "" {
				s.replMu.Lock()
				delete(s.replFloors, env.Component)
				s.replMu.Unlock()
			}
		case typePing:
			// Master-initiated liveness probe.
			if err := w.write(&envelope{Type: typePong, ID: env.ID}, 5*time.Second); err != nil {
				return err
			}
		case typePong:
			s.pingMu.Lock()
			if ch, ok := s.pingWaiters[env.ID]; ok {
				delete(s.pingWaiters, env.ID)
				close(ch)
			}
			s.pingMu.Unlock()
		default:
			resp := &envelope{Type: typeError, ID: env.ID, Err: fmt.Sprintf("unknown request %q", env.Type)}
			if err := w.write(resp, 10*time.Second); err != nil {
				return err
			}
		}
	}
}

// handleAssign installs the master's authoritative owned-component set: the
// sharded control plane decides placement centrally, and the slave follows —
// monitors appear for newly assigned components and disappear for components
// that moved away, which is what enforces per-slave ownership at Observe
// (feeding an unowned component errors with "does not monitor").
//
// A newly assigned component cold-starts unless state arrives first: a live
// handoff restore (typeRestore precedes the assign on this connection) wins,
// and otherwise the slave tries the component's checkpoint file — checkpoint
// names are per-component, not per-slave, so on shared checkpoint storage a
// dead donor's last checkpoint still follows its components to the new
// owner (the cold-start fallback of the handoff protocol).
func (s *Slave) handleAssign(w *connWriter, env *envelope) {
	defer s.wg.Done()
	desired := make(map[string]bool, len(env.Components))
	for _, comp := range env.Components {
		desired[comp] = true
	}
	var added, removed, promoted []string
	adopt := make(map[string]*core.Monitor)
	for comp := range desired {
		s.mu.Lock()
		_, have := s.monitors[comp]
		shadow := s.shadows[comp]
		if !have && shadow != nil {
			// Warm promotion: the shadow monitor already holds the dead
			// owner's replicated state, so the component goes live in place —
			// no checkpoint read, no handoff round-trip.
			delete(s.shadows, comp)
		}
		s.mu.Unlock()
		if have {
			continue
		}
		if shadow != nil {
			adopt[comp] = shadow
			added = append(added, comp)
			promoted = append(promoted, comp)
			continue
		}
		mon := core.NewMonitor(comp, s.cfg)
		if s.checkpointDir != "" {
			var snap core.MonitorSnapshot
			if err := core.LoadCheckpoint(s.checkpointPath(comp), &snap); err == nil {
				_ = mon.Restore(&snap) // best-effort; a bad checkpoint cold-starts
			}
		}
		adopt[comp] = mon
		added = append(added, comp)
	}
	shadowSet := make(map[string]bool, len(env.Shadow))
	for _, comp := range env.Shadow {
		shadowSet[comp] = true
	}
	s.mu.Lock()
	for comp, mon := range adopt {
		// A handoff restore that raced ahead of us holds fresher state than
		// the checkpoint fallback; keep it.
		if _, have := s.monitors[comp]; !have {
			s.monitors[comp] = mon
		}
	}
	for comp := range s.monitors {
		if !desired[comp] {
			delete(s.monitors, comp)
			removed = append(removed, comp)
		}
	}
	// The shadow list is as authoritative as the owned list: shadows for
	// components we no longer stand by for — or now own — are dropped. New
	// shadow components need no monitor yet; the first relayed full snapshot
	// bootstraps one.
	for comp := range s.shadows {
		if !shadowSet[comp] || desired[comp] {
			delete(s.shadows, comp)
		}
	}
	total := len(s.monitors)
	s.mu.Unlock()
	if len(env.ReplReset) > 0 {
		// These components' standbys changed (or we just reconnected):
		// forgetting the floors makes the next replication tick re-ship a
		// full snapshot even when no new samples have arrived, which is the
		// only way a quiet component's new standby ever warms up.
		s.replMu.Lock()
		for _, comp := range env.ReplReset {
			delete(s.replFloors, comp)
		}
		s.replMu.Unlock()
	}
	sort.Strings(added)
	sort.Strings(removed)
	sort.Strings(promoted)
	for _, comp := range promoted {
		_ = s.obs.EventJournal().Record("replica_promoted", map[string]any{
			"slave": s.name, "component": comp})
	}
	if len(promoted) > 0 {
		s.obs.Registry().Counter("fchain_replica_promotions_total",
			"Shadow monitors promoted to live ownership.").Add(int64(len(promoted)))
	}
	if len(added) > 0 || len(removed) > 0 {
		s.obs.Logger().Info("assignment updated", "slave", s.name,
			"added", len(added), "removed", len(removed), "promoted", len(promoted), "total", total)
		_ = s.obs.EventJournal().Record("assign", map[string]any{
			"slave": s.name, "added": added, "removed": removed, "total": total})
	}
	_ = w.write(&envelope{Type: typeAck, ID: env.ID}, 10*time.Second)
}

// handleExport answers a handoff export: the donor side of a rebalance
// snapshots the component's full model state (Markov matrices, ring tails,
// quality counters — the same MonitorSnapshot the checkpoint files hold) for
// the master to restore on the new owner.
func (s *Slave) handleExport(w *connWriter, env *envelope) {
	defer s.wg.Done()
	s.mu.Lock()
	mon := s.monitors[env.Component]
	s.mu.Unlock()
	if mon == nil {
		_ = w.write(&envelope{Type: typeError, ID: env.ID,
			Err: fmt.Sprintf("slave %s does not monitor %q", s.name, env.Component)}, 10*time.Second)
		return
	}
	data, err := json.Marshal(mon.Snapshot())
	if err != nil {
		_ = w.write(&envelope{Type: typeError, ID: env.ID,
			Err: fmt.Sprintf("slave %s: export %q: %v", s.name, env.Component, err)}, 10*time.Second)
		return
	}
	_ = s.obs.EventJournal().Record("handoff_export", map[string]any{
		"slave": s.name, "component": env.Component, "bytes": len(data)})
	_ = w.write(&envelope{Type: typeState, ID: env.ID, Component: env.Component, State: data}, 30*time.Second)
}

// handleRestore installs an exported snapshot as this slave's monitor for the
// component — the recipient side of a handoff. An invalid snapshot is
// refused (the master falls back to cold start); a duplicate restore simply
// overwrites, so master-side retries are idempotent.
func (s *Slave) handleRestore(w *connWriter, env *envelope) {
	defer s.wg.Done()
	var snap core.MonitorSnapshot
	if err := json.Unmarshal(env.State, &snap); err != nil {
		_ = w.write(&envelope{Type: typeError, ID: env.ID,
			Err: fmt.Sprintf("slave %s: restore %q: %v", s.name, env.Component, err)}, 10*time.Second)
		return
	}
	mon := core.NewMonitor(env.Component, s.cfg)
	if err := mon.Restore(&snap); err != nil {
		_ = w.write(&envelope{Type: typeError, ID: env.ID,
			Err: fmt.Sprintf("slave %s: restore %q: %v", s.name, env.Component, err)}, 10*time.Second)
		return
	}
	s.mu.Lock()
	s.monitors[env.Component] = mon
	s.mu.Unlock()
	_ = s.obs.EventJournal().Record("handoff_restore", map[string]any{
		"slave": s.name, "component": env.Component})
	_ = w.write(&envelope{Type: typeAck, ID: env.ID, Component: env.Component}, 10*time.Second)
}

// slaveAnalyzeHook, when set, runs inside handleAnalyze after admission and
// before analysis. Tests inject panics here to exercise the handler-level
// recovery (kernel-level panics are injected via core.SetAnalyzeHook).
var slaveAnalyzeHook atomic.Pointer[func(slave string, tv int64)]

// handleAnalyze serves one analyze request: admission, budgeted analysis,
// reports frame. A panic anywhere in the handler is recovered into a
// structured error frame — one poisoned request must not take the daemon's
// connection (or the daemon) down.
func (s *Slave) handleAnalyze(w *connWriter, env *envelope) {
	defer s.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			s.obs.Logger().Error("analyze handler panicked", "slave", s.name, "tv", env.TV, "panic", fmt.Sprint(r))
			s.obs.Registry().Counter("fchain_analyze_panics_total",
				"Analyze handlers that recovered a panic.").Inc()
			_ = s.obs.EventJournal().Record("analyze_panic", map[string]any{
				"slave": s.name, "tv": env.TV, "panic": fmt.Sprint(r)})
			_ = w.write(&envelope{Type: typeError, ID: env.ID, Code: codePanic,
				Err: fmt.Sprintf("slave %s: analyze panicked: %v", s.name, r)}, 10*time.Second)
		}
	}()

	// The master's BudgetMS restates its remaining deadline relative to this
	// frame's arrival, which lands the deadline in the slave's clock without
	// any offset arithmetic.
	var deadline time.Time
	if env.BudgetMS > 0 {
		deadline = time.Now().Add(time.Duration(env.BudgetMS) * time.Millisecond)
	}
	if s.analyzeGate != nil {
		ctx := context.Background()
		if !deadline.IsZero() {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, deadline)
			defer cancel()
		}
		if err := s.analyzeGate.acquire(ctx); err != nil {
			s.obs.Registry().Counter("fchain_analyze_shed_total",
				"Analyze requests shed by slave admission control.").Inc()
			_ = s.obs.EventJournal().Record("analyze_shed", map[string]any{"slave": s.name, "tv": env.TV})
			hint := s.analyzeGate.retryAfterHint(30 * time.Second)
			_ = w.write(&envelope{Type: typeError, ID: env.ID, Code: codeOverloaded,
				Err:          fmt.Sprintf("slave %s overloaded", s.name),
				RetryAfterMS: hint.Milliseconds()}, 10*time.Second)
			return
		}
		defer s.analyzeGate.release()
	}
	if hook := slaveAnalyzeHook.Load(); hook != nil {
		(*hook)(s.name, env.TV)
	}
	reports := s.analyzeBudget(env.TV, env.LookBack, deadline)
	// UsedTV tells the master which clock the reported onsets are in, so it
	// can normalize them back to its own.
	resp := &envelope{Type: typeReports, ID: env.ID, Reports: reports, UsedTV: env.TV + s.skew}
	_ = w.write(resp, 30*time.Second)
}

// analyzeWithWindow honors the master's per-request look-back override: the
// monitors retain RingCapacity samples, so any window up to that bound can
// be analyzed regardless of the slave's configured default. The per-metric
// selection tasks of all local components run on one bounded worker pool
// (cfg.Parallelism; collection keeps flowing meanwhile — analysis only
// briefly locks each metric shard while copying its history).
func (s *Slave) analyzeWithWindow(tv int64, lookBack int) []core.ComponentReport {
	return s.analyzeBudget(tv, lookBack, time.Time{})
}

// analyzeBudget is analyzeWithWindow under a wall-clock deadline: selection
// degrades full → reduced-window → trend-only → skipped as the budget runs
// out (zero deadline disables budgeting), and the degradation is accounted
// in the obs sink.
func (s *Slave) analyzeBudget(tv int64, lookBack int, deadline time.Time) []core.ComponentReport {
	s.mu.Lock()
	names := make([]string, 0, len(s.monitors))
	for name := range s.monitors {
		names = append(names, name)
	}
	sort.Strings(names)
	monitors := make([]*core.Monitor, len(names))
	for i, name := range names {
		monitors[i] = s.monitors[name]
	}
	s.mu.Unlock()
	var (
		reports []core.ComponentReport
		stats   core.PoolStats
	)
	if s.obs.TraceRing() != nil {
		var tr *obs.Trace
		reports, stats, tr = core.AnalyzeMonitorsDeadlineTraced(monitors, tv+s.skew, lookBack, s.cfg.Parallelism, deadline)
		s.obs.TraceRing().Add(tr)
	} else {
		reports, stats = core.AnalyzeMonitorsDeadline(monitors, tv+s.skew, lookBack, s.cfg.Parallelism, deadline)
	}
	truncated := 0
	for _, rep := range reports {
		if rep.Truncated {
			truncated++
		}
	}
	var sst core.StreamingStats
	if s.cfg.Streaming {
		for _, m := range monitors {
			sst.Merge(m.StreamingStats())
		}
	}
	if reg := s.obs.Registry(); reg != nil {
		reg.Counter("fchain_analyze_requests_total", "Analyze requests served.").Inc()
		reg.Counter("fchain_selection_tasks_total", "Per-metric selection tasks executed.").
			Add(int64(stats.Tasks))
		sel := stats.Select
		reg.Histogram("fchain_selection_latency_ns", "Abnormal change point selection latency.").
			MergeLog2(sel.Buckets[:], sel.Count, sel.SumNS, sel.MaxNS)
		if truncated > 0 {
			reg.Counter("fchain_analyze_truncated_total",
				"Component analyses truncated by the deadline budget.").Add(int64(truncated))
		}
		if stats.Panics > 0 {
			reg.Counter("fchain_quarantine_trips_total",
				"Metric streams quarantined after selection kernel panics.").Add(int64(stats.Panics))
		}
		if s.cfg.Streaming {
			reg.Gauge("fchain_streaming_bytes",
				"Resident bytes of streaming-selection state across all streams.").
				Set(float64(sst.Bytes))
			reg.Gauge("fchain_streaming_hot",
				"Streams whose change-point accumulator currently sees a confident shift.").
				Set(float64(sst.Hot))
			// Colds is a monotone total inside core; export the delta so the
			// registry counter stays a counter across overlapping analyzes.
			if prev := s.streamColds.Swap(sst.Colds); sst.Colds > prev {
				reg.Counter("fchain_streaming_cold_total",
					"Analyses that fell back to the batch kernel on cold streaming state.").
					Add(int64(sst.Colds - prev))
			}
		}
	}
	if stats.Panics > 0 {
		streams := make(map[string]any)
		for _, rep := range reports {
			if len(rep.Quarantined) > 0 {
				streams[rep.Component] = rep.Quarantined
			}
		}
		_ = s.obs.EventJournal().Record("quarantine", map[string]any{
			"slave": s.name, "tv": tv, "panics": stats.Panics, "streams": streams,
		})
	}
	ev := map[string]any{
		"slave": s.name, "tv": tv, "lookback": lookBack, "reports": len(reports),
	}
	if truncated > 0 {
		ev["truncated"] = truncated
	}
	if s.cfg.Streaming {
		// Journaled alongside the registry export so the two can be
		// reconciled after the fact.
		ev["streaming_bytes"] = sst.Bytes
		ev["streaming_cold_total"] = sst.Colds
	}
	_ = s.obs.EventJournal().Record("analyze", ev)
	return reports
}

// Ping verifies the master connection is alive: it sends a heartbeat and
// waits up to timeout for the response.
func (s *Slave) Ping(timeout time.Duration) error {
	s.mu.Lock()
	var w *connWriter
	for _, up := range s.ups {
		if up.w != nil {
			w = up.w
			break
		}
	}
	s.mu.Unlock()
	if w == nil {
		return fmt.Errorf("cluster: slave %s is not connected", s.name)
	}
	s.pingMu.Lock()
	s.pingCounter++
	id := s.pingCounter
	ch := make(chan struct{})
	s.pingWaiters[id] = ch
	s.pingMu.Unlock()
	if err := w.write(&envelope{Type: typePing, ID: id}, timeout); err != nil {
		s.pingMu.Lock()
		delete(s.pingWaiters, id)
		s.pingMu.Unlock()
		return err
	}
	select {
	case <-ch:
		return nil
	case <-time.After(timeout):
		s.pingMu.Lock()
		delete(s.pingWaiters, id)
		s.pingMu.Unlock()
		return fmt.Errorf("cluster: ping to master timed out after %v", timeout)
	}
}

// Close terminates the slave's connection, stops reconnection and the
// checkpoint loop (after one final checkpoint), and waits for its
// goroutines.
func (s *Slave) Close() error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	var cancels []context.CancelFunc
	var writers []*connWriter
	for _, up := range s.ups {
		if up.cancel != nil {
			cancels = append(cancels, up.cancel)
		}
		if up.w != nil {
			writers = append(writers, up.w)
			up.w = nil
		}
	}
	s.ups = nil
	s.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	for _, w := range writers {
		_ = w.conn.Close()
	}
	if !alreadyClosed {
		close(s.stopCkpt)
		close(s.stopRepl)
		if s.checkpointDir != "" {
			_ = s.CheckpointNow()
		}
	}
	s.wg.Wait()
	return nil
}
