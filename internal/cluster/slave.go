package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"fchain/internal/core"
	"fchain/internal/metric"
)

// Slave is the FChain slave daemon for one host: it runs the normal
// fluctuation models for the components (guest VMs) on that host and
// answers the master's analyze requests with abnormal change point reports
// (paper Fig. 1: the slave modules run inside Domain 0 of each cloud node).
type Slave struct {
	name string
	cfg  core.Config

	// skew simulates this host's clock error relative to the master: every
	// recorded sample timestamp is shifted by skew seconds. The paper
	// relies on NTP (sub-5 ms error) and notes FChain tolerates small
	// skews because propagation delays between components are seconds.
	skew int64

	mu       sync.Mutex
	monitors map[string]*core.Monitor
	conn     net.Conn
	wg       sync.WaitGroup

	pingMu      sync.Mutex
	pingCounter uint64
	pingWaiters map[uint64]chan struct{}
}

// SlaveOption configures a Slave.
type SlaveOption interface {
	apply(*Slave)
}

type skewOption int64

func (o skewOption) apply(s *Slave) { s.skew = int64(o) }

// WithClockSkew sets a simulated clock skew (in seconds) for the slave's
// sample timestamps.
func WithClockSkew(seconds int64) SlaveOption { return skewOption(seconds) }

// NewSlave creates a slave monitoring the given components.
func NewSlave(name string, components []string, cfg core.Config, opts ...SlaveOption) *Slave {
	s := &Slave{
		name:        name,
		cfg:         cfg,
		monitors:    make(map[string]*core.Monitor, len(components)),
		pingWaiters: make(map[uint64]chan struct{}),
	}
	for _, c := range components {
		s.monitors[c] = core.NewMonitor(c, cfg)
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Name returns the slave's registration name.
func (s *Slave) Name() string { return s.name }

// Observe feeds one metric sample into the slave's models. It may be called
// before or after Connect; collection is local and continuous.
func (s *Slave) Observe(component string, t int64, k metric.Kind, v float64) error {
	s.mu.Lock()
	mon, ok := s.monitors[component]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: slave %s does not monitor %q", s.name, component)
	}
	return mon.Observe(t+s.skew, k, v)
}

// Analyze runs abnormal change point selection locally for every monitored
// component (exported for in-process use and tests; the master normally
// triggers it over the wire).
func (s *Slave) Analyze(tv int64) []core.ComponentReport {
	s.mu.Lock()
	monitors := make([]*core.Monitor, 0, len(s.monitors))
	for _, mon := range s.monitors {
		monitors = append(monitors, mon)
	}
	s.mu.Unlock()
	reports := make([]core.ComponentReport, 0, len(monitors))
	for _, mon := range monitors {
		reports = append(reports, mon.Analyze(tv+s.skew))
	}
	return reports
}

// Connect dials the master, registers, and starts answering analyze
// requests in the background until Close is called or the connection drops.
func (s *Slave) Connect(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("cluster: slave dial: %w", err)
	}
	s.mu.Lock()
	components := make([]string, 0, len(s.monitors))
	for c := range s.monitors {
		components = append(components, c)
	}
	s.conn = conn
	s.mu.Unlock()
	reg := &envelope{Type: typeRegister, Slave: s.name, Components: components}
	if err := writeFrame(conn, reg, 10*time.Second); err != nil {
		conn.Close()
		return err
	}
	s.wg.Add(1)
	go s.serveLoop(conn)
	return nil
}

func (s *Slave) serveLoop(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	r := newReader(conn)
	for {
		env, err := readFrame(r)
		if err != nil {
			return
		}
		switch env.Type {
		case typeAnalyze:
			reports := s.analyzeWithWindow(env.TV, env.LookBack)
			resp := &envelope{Type: typeReports, ID: env.ID, Reports: reports}
			if err := writeFrame(conn, resp, 30*time.Second); err != nil {
				return
			}
		case typePong:
			s.pingMu.Lock()
			if ch, ok := s.pingWaiters[env.ID]; ok {
				delete(s.pingWaiters, env.ID)
				close(ch)
			}
			s.pingMu.Unlock()
		default:
			resp := &envelope{Type: typeError, ID: env.ID, Err: fmt.Sprintf("unknown request %q", env.Type)}
			if err := writeFrame(conn, resp, 10*time.Second); err != nil {
				return
			}
		}
	}
}

// analyzeWithWindow honors the master's per-request look-back override: the
// monitors retain RingCapacity samples, so any window up to that bound can
// be analyzed regardless of the slave's configured default.
func (s *Slave) analyzeWithWindow(tv int64, lookBack int) []core.ComponentReport {
	s.mu.Lock()
	monitors := make([]*core.Monitor, 0, len(s.monitors))
	for _, mon := range s.monitors {
		monitors = append(monitors, mon)
	}
	s.mu.Unlock()
	reports := make([]core.ComponentReport, 0, len(monitors))
	for _, mon := range monitors {
		reports = append(reports, mon.AnalyzeWindow(tv+s.skew, lookBack))
	}
	return reports
}

// Ping verifies the master connection is alive: it sends a heartbeat and
// waits up to timeout for the response.
func (s *Slave) Ping(timeout time.Duration) error {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("cluster: slave %s is not connected", s.name)
	}
	s.pingMu.Lock()
	s.pingCounter++
	id := s.pingCounter
	ch := make(chan struct{})
	s.pingWaiters[id] = ch
	s.pingMu.Unlock()
	if err := writeFrame(conn, &envelope{Type: typePing, ID: id}, timeout); err != nil {
		s.pingMu.Lock()
		delete(s.pingWaiters, id)
		s.pingMu.Unlock()
		return err
	}
	select {
	case <-ch:
		return nil
	case <-time.After(timeout):
		s.pingMu.Lock()
		delete(s.pingWaiters, id)
		s.pingMu.Unlock()
		return fmt.Errorf("cluster: ping to master timed out after %v", timeout)
	}
}

// Close terminates the slave's connection and waits for its goroutine.
func (s *Slave) Close() error {
	s.mu.Lock()
	conn := s.conn
	s.conn = nil
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	s.wg.Wait()
	return nil
}
