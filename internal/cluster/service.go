package cluster

import (
	"bufio"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"fchain/internal/core"
	"fchain/internal/obs"
	"fchain/internal/tenant"
)

// Service is the long-lived multi-tenant violation intake on top of a
// Master: instead of one ad-hoc Localize call per operator command, it
// accepts a continuous stream of SLO-violation events tagged (tenant, app,
// tv) — over the wire (violate frames) or in process (Submit) — and turns
// them into localizations durably and frugally:
//
//   - Per-tenant namespaces and token-bucket quotas (internal/tenant) shed a
//     flooding tenant's excess before any slave budget is spent, so a noisy
//     tenant cannot starve a quiet one. This layers on the PR 5 LIFO
//     admission gates, which still bound the master's total concurrency.
//   - Concurrent violations for the same (tenant, app) whose tv falls within
//     the coalesce window of an in-flight localization join it as waiters:
//     one cluster fan-out serves them all, and the verdict fans back out.
//   - Served verdicts land in an LRU cache keyed (tenant, app, tv-bucket)
//     with a TTL, so repeat violations re-serve the cached verdict without
//     re-asking the slaves.
//   - Every accepted violation is write-ahead recorded in the obs journal
//     (violation_accepted), and every served verdict carries the sequence
//     numbers it covered (verdict_served). Replay reads the journal back
//     after a restart: recent verdicts are re-served byte-identically from
//     the rebuilt cache, and accepted-but-unserved violations are re-run.
type Service struct {
	m       *Master
	tenants *tenant.Registry

	coalesceWindow int64
	cacheTTL       time.Duration

	clock func() time.Time

	// localizeFn runs one cluster localization; tests override it to pin
	// timing and outcomes without a live slave fleet.
	localizeFn func(ctx context.Context, tv int64, tenantName, app string) (core.LocalizeResult, error)

	mu       sync.Mutex
	flights  map[string]*flight // key: tenant + "\x00" + app
	cache    *verdictCache
	draining bool
	inflight int  // flights currently running (drain waits for zero)
	restored bool // history already rebuilt by a Replay this process
}

// ServiceConfig tunes a Service; zero values take the documented defaults.
type ServiceConfig struct {
	// Tenants lists the tenant names the service accepts. Empty leaves the
	// namespace open: any non-empty tenant name is admitted.
	Tenants []string
	// QuotaPerMinute is each tenant's sustained violation budget
	// (violations per minute, token bucket); <= 0 is unlimited.
	QuotaPerMinute float64
	// QuotaBurst is the bucket capacity (back-to-back violations after an
	// idle stretch); <= 0 defaults to QuotaPerMinute.
	QuotaBurst float64
	// CoalesceWindow is the tv-space span (seconds) within which concurrent
	// violations for the same (tenant, app) share one localization, and the
	// bucket size of the verdict cache key; <= 0 defaults to 30.
	CoalesceWindow int64
	// CacheSize bounds the verdict LRU cache (entries); 0 defaults to 256,
	// negative disables caching.
	CacheSize int
	// CacheTTL is how long a cached verdict stays servable; <= 0 defaults
	// to 5 minutes.
	CacheTTL time.Duration
}

// Service-mode defaults.
const (
	defaultCoalesceWindow = int64(30)
	defaultCacheSize      = 256
	defaultCacheTTL       = 5 * time.Minute
)

// Sentinel errors surfaced by the service-mode intake. Use errors.Is; the
// tenant-layer sentinels (tenant.ErrUnknown, tenant.ErrQuota) pass through
// Submit unwrapped for the same purpose.
var (
	// ErrDraining: the service is shutting down and no longer admits
	// violations; in-flight localizations are still completing.
	ErrDraining = errors.New("cluster: service draining, violation rejected")
	// ErrNoService: the master has no service-mode intake attached (wire
	// clients only; Submit cannot return it).
	ErrNoService = errors.New("cluster: master has no violation service")
)

// NewService builds the service layer over master and attaches it, so
// violate frames arriving on the master's listener are routed to it. The
// master's observability sink supplies the journal (write-ahead record),
// metrics registry (per-tenant counters), and logger.
func NewService(m *Master, cfg ServiceConfig) *Service {
	if cfg.CoalesceWindow <= 0 {
		cfg.CoalesceWindow = defaultCoalesceWindow
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = defaultCacheSize
	}
	if cfg.CacheTTL <= 0 {
		cfg.CacheTTL = defaultCacheTTL
	}
	s := &Service{
		m:              m,
		tenants:        tenant.NewRegistry(cfg.Tenants, tenant.Quota{PerMinute: cfg.QuotaPerMinute, Burst: cfg.QuotaBurst}),
		coalesceWindow: cfg.CoalesceWindow,
		cacheTTL:       cfg.CacheTTL,
		clock:          time.Now,
		flights:        make(map[string]*flight),
		cache:          newVerdictCache(cfg.CacheSize),
	}
	s.localizeFn = s.m.localize
	m.attachService(s)
	return s
}

// SetClock overrides the service's time source (cache TTL and quota refill);
// tests pin it. It also pins the tenant registry's clock.
func (s *Service) SetClock(clock func() time.Time) {
	if clock == nil {
		return
	}
	s.mu.Lock()
	s.clock = clock
	s.mu.Unlock()
	s.tenants.SetClock(clock)
}

// Verdict is one served localization verdict. Diagnosis is the canonical
// JSON encoding of the core.Diagnosis — kept raw so a verdict re-served from
// the cache or from journal replay is byte-identical to the original.
type Verdict struct {
	Tenant string `json:"tenant"`
	App    string `json:"app"`
	// TV is the violation time actually localized: for coalesced and cached
	// verdicts this is the leader's tv, which may differ from the submitted
	// tv by up to the coalesce window.
	TV     int64 `json:"tv"`
	Bucket int64 `json:"bucket"`
	// Seq is the journal sequence number of the verdict_served record.
	Seq int64 `json:"seq,omitempty"`
	// Source tells how the verdict was produced: "live" (a fresh cluster
	// localization led by this violation), "coalesced" (joined another
	// violation's in-flight localization), "cache" (re-served from the LRU
	// cache), or "replay" (served during journal replay after a restart).
	Source    string          `json:"source"`
	Degraded  bool            `json:"degraded,omitempty"`
	Diagnosis json.RawMessage `json:"diagnosis"`
}

// Decode unmarshals the verdict's raw diagnosis.
func (v *Verdict) Decode() (core.Diagnosis, error) {
	var d core.Diagnosis
	err := json.Unmarshal(v.Diagnosis, &d)
	return d, err
}

// String renders the verdict compactly for console output.
func (v *Verdict) String() string {
	d, err := v.Decode()
	if err != nil {
		return fmt.Sprintf("verdict %s/%s tv=%d [%s] <undecodable: %v>", v.Tenant, v.App, v.TV, v.Source, err)
	}
	mark := ""
	if v.Degraded {
		mark = " (degraded)"
	}
	return fmt.Sprintf("verdict %s/%s tv=%d [%s] %s%s", v.Tenant, v.App, v.TV, v.Source, d.String(), mark)
}

// flight is one in-progress localization that concurrent violations for the
// same (tenant, app) can join.
type flight struct {
	tv      int64
	accepts []int64 // journal seqs of every violation this flight serves
	done    chan struct{}
	verdict *Verdict // set before done closes
	err     error
}

// flightKey namespaces in-flight localizations per (tenant, app).
func flightKey(tenantName, app string) string { return tenantName + "\x00" + app }

// bucketOf maps a violation time to its cache bucket.
func (s *Service) bucketOf(tv int64) int64 { return tv / s.coalesceWindow }

// counter returns the per-tenant outcome counter; outcomes: accepted,
// coalesced, cached, shed, replayed.
func (s *Service) counter(tenantName, outcome string) *obs.Counter {
	return s.m.obs.Registry().CounterWith("fchain_service_violations_total",
		"Service-mode violations by tenant and outcome.",
		map[string]string{"tenant": tenantName, "outcome": outcome})
}

// Submit feeds one SLO-violation event through the service: tenant admission
// (namespace + quota), write-ahead journaling, verdict cache, coalescing,
// and — when this violation leads — a cluster localization. It blocks until
// the verdict is available or ctx expires. A canceled waiter returns
// ctx.Err() while the localization it joined keeps running (and still serves
// its journal record).
func (s *Service) Submit(ctx context.Context, tenantName, app string, tv int64) (*Verdict, error) {
	if app == "" {
		return nil, fmt.Errorf("cluster: violation needs an app name")
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.shed(tenantName, app, tv, "draining")
		return nil, ErrDraining
	}
	if err := s.tenants.Admit(tenantName); err != nil {
		switch {
		case errors.Is(err, tenant.ErrQuota):
			s.shed(tenantName, app, tv, "quota")
		default:
			s.shed(tenantName, app, tv, "unknown_tenant")
		}
		return nil, err
	}

	// Write-ahead record: from here on the violation is the service's
	// responsibility — a crash before its verdict_served record makes
	// replay re-run it.
	seq, err := s.m.obs.EventJournal().RecordSeq("violation_accepted",
		map[string]any{"tenant": tenantName, "app": app, "tv": tv})
	if err != nil {
		return nil, fmt.Errorf("cluster: journal violation: %w", err)
	}
	s.counter(tenantName, "accepted").Inc()

	bucket := s.bucketOf(tv)
	key := flightKey(tenantName, app)
	s.mu.Lock()
	if ent, ok := s.cache.get(cacheKey(tenantName, app, bucket), s.clock()); ok {
		s.mu.Unlock()
		return s.serveFromCache(tenantName, app, tv, seq, ent, "cache")
	}
	if f, ok := s.flights[key]; ok && absDiff(tv, f.tv) <= s.coalesceWindow {
		f.accepts = append(f.accepts, seq)
		s.mu.Unlock()
		s.counter(tenantName, "coalesced").Inc()
		_ = s.m.obs.EventJournal().Record("violation_coalesced",
			map[string]any{"tenant": tenantName, "app": app, "tv": tv, "leader_tv": f.tv, "seq": seq})
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			v := *f.verdict
			v.Source = "coalesced"
			return &v, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// This violation leads a fresh localization.
	f := &flight{tv: tv, accepts: []int64{seq}, done: make(chan struct{})}
	s.flights[key] = f
	s.inflight++
	s.mu.Unlock()
	return s.lead(ctx, f, tenantName, app, tv, bucket, "live")
}

// lead runs the localization for a flight and fans the outcome out: to the
// flight's waiters, the verdict cache, the journal, and the caller.
func (s *Service) lead(ctx context.Context, f *flight, tenantName, app string, tv, bucket int64, source string) (*Verdict, error) {
	res, err := s.localizeFn(ctx, tv, tenantName, app)

	s.mu.Lock()
	if s.flights[flightKey(tenantName, app)] == f {
		delete(s.flights, flightKey(tenantName, app))
	}
	s.inflight--
	accepts := append([]int64(nil), f.accepts...)
	s.mu.Unlock()
	sort.Slice(accepts, func(i, j int) bool { return accepts[i] < accepts[j] })

	if err != nil {
		_ = s.m.obs.EventJournal().Record("verdict_failed", map[string]any{
			"tenant": tenantName, "app": app, "tv": tv, "accept_seqs": accepts, "err": err.Error()})
		s.m.obs.Logger().Warn("service localization failed", "tenant", tenantName, "app", app, "tv", tv, "err", err)
		f.err = err
		close(f.done)
		return nil, err
	}

	raw, merr := json.Marshal(res.Diagnosis)
	if merr != nil {
		f.err = merr
		close(f.done)
		return nil, fmt.Errorf("cluster: marshal diagnosis: %w", merr)
	}
	served, jerr := s.m.obs.EventJournal().RecordSeq("verdict_served", map[string]any{
		"tenant": tenantName, "app": app, "tv": tv, "bucket": bucket,
		"source": source, "degraded": res.Degraded, "accept_seqs": accepts,
		"diagnosis": json.RawMessage(raw)})
	if jerr != nil {
		s.m.obs.Logger().Error("service verdict not journaled", "tenant", tenantName, "app", app, "err", jerr)
	}
	v := &Verdict{
		Tenant: tenantName, App: app, TV: tv, Bucket: bucket, Seq: served,
		Source: source, Degraded: res.Degraded, Diagnosis: raw,
	}
	s.mu.Lock()
	s.cache.put(cacheKey(tenantName, app, bucket), &cacheEntry{
		tv: tv, seq: served, degraded: res.Degraded, raw: raw,
		expires: s.clock().Add(s.cacheTTL),
	})
	s.mu.Unlock()
	f.verdict = v
	close(f.done)
	return v, nil
}

// serveFromCache re-serves a cached verdict for one accepted violation,
// journaling a fresh verdict_served record (source "cache" or "replay") so
// accounting and replay stay exact.
func (s *Service) serveFromCache(tenantName, app string, tv, seq int64, ent *cacheEntry, source string) (*Verdict, error) {
	outcome := "cached"
	if source == "replay" {
		outcome = "replayed"
	}
	s.counter(tenantName, outcome).Inc()
	served, _ := s.m.obs.EventJournal().RecordSeq("verdict_served", map[string]any{
		"tenant": tenantName, "app": app, "tv": ent.tv, "bucket": s.bucketOf(ent.tv),
		"source": source, "degraded": ent.degraded, "accept_seqs": []int64{seq},
		"diagnosis": json.RawMessage(ent.raw)})
	return &Verdict{
		Tenant: tenantName, App: app, TV: ent.tv, Bucket: s.bucketOf(ent.tv), Seq: served,
		Source: source, Degraded: ent.degraded, Diagnosis: ent.raw,
	}, nil
}

// shed records one rejected violation (quota, unknown tenant, or draining).
func (s *Service) shed(tenantName, app string, tv int64, reason string) {
	s.counter(tenantName, "shed").Inc()
	_ = s.m.obs.EventJournal().Record("violation_shed",
		map[string]any{"tenant": tenantName, "app": app, "tv": tv, "reason": reason})
	s.m.obs.Logger().Warn("violation shed", "tenant", tenantName, "app", app, "tv", tv, "reason", reason)
}

// Drain stops admitting violations and waits up to timeout for in-flight
// localizations to complete, returning the number still running when it
// gave up (0 on a clean drain).
func (s *Service) Drain(timeout time.Duration) int {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		left := s.inflight
		s.mu.Unlock()
		if left == 0 || time.Now().After(deadline) {
			return left
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Tenants exposes the tenant registry state (sorted names).
func (s *Service) Tenants() []string { return s.tenants.Tenants() }

// ReplayStats summarizes one journal replay.
type ReplayStats struct {
	// Events is how many journal events were scanned.
	Events int
	// CacheRestored counts verdicts whose TTL had not lapsed and that were
	// put back in the cache, ready to re-serve byte-identically.
	CacheRestored int
	// HistoryRestored counts DiagnosisRecords rebuilt into Master.History.
	HistoryRestored int
	// Rerun counts accepted-but-unserved violations localized again.
	Rerun int
	// RerunFailed counts re-runs that failed (they stay pending: the next
	// replay retries them).
	RerunFailed int
}

// servedRecord is the verdict_served journal payload.
type servedRecord struct {
	Tenant     string          `json:"tenant"`
	App        string          `json:"app"`
	TV         int64           `json:"tv"`
	Bucket     int64           `json:"bucket"`
	Source     string          `json:"source"`
	Degraded   bool            `json:"degraded"`
	AcceptSeqs []int64         `json:"accept_seqs"`
	Diagnosis  json.RawMessage `json:"diagnosis"`
}

// acceptedRecord is the violation_accepted journal payload.
type acceptedRecord struct {
	Tenant string `json:"tenant"`
	App    string `json:"app"`
	TV     int64  `json:"tv"`
}

// Replay rebuilds service state from the journal after a restart: verdicts
// served before the crash repopulate the cache (TTL honored against their
// journal timestamps) and the master's history; violations that were
// accepted but never served are re-run now, under ctx, in acceptance order.
// Re-runs need registered slaves — a re-run that fails stays pending and is
// retried by the next replay.
func (s *Service) Replay(ctx context.Context) (ReplayStats, error) {
	var stats ReplayStats
	j := s.m.obs.EventJournal()
	if j.Path() == "" {
		return stats, fmt.Errorf("cluster: replay needs a journal")
	}
	events, err := obs.ReadJournal(j.Path())
	if err != nil && len(events) == 0 {
		return stats, fmt.Errorf("cluster: replay read journal: %w", err)
	}
	stats.Events = len(events)

	type pendingViolation struct {
		seq int64
		acceptedRecord
	}
	var pending []pendingViolation
	pendingIdx := make(map[int64]int) // seq -> pending index (-1 once served)
	var history []DiagnosisRecord
	now := s.clock()
	for _, ev := range events {
		switch ev.Type {
		case "violation_accepted":
			var rec acceptedRecord
			if json.Unmarshal(ev.Data, &rec) != nil {
				continue
			}
			pendingIdx[ev.Seq] = len(pending)
			pending = append(pending, pendingViolation{seq: ev.Seq, acceptedRecord: rec})
		case "verdict_served":
			var rec servedRecord
			if json.Unmarshal(ev.Data, &rec) != nil {
				continue
			}
			for _, seq := range rec.AcceptSeqs {
				if i, ok := pendingIdx[seq]; ok && i >= 0 {
					pendingIdx[seq] = -1
				}
			}
			var diag core.Diagnosis
			if json.Unmarshal(rec.Diagnosis, &diag) == nil {
				history = append(history, DiagnosisRecord{
					TV: rec.TV, Tenant: rec.Tenant, App: rec.App,
					Diagnosis: diag, Degraded: rec.Degraded,
				})
			}
			expires := time.Unix(0, ev.TS).Add(s.cacheTTL)
			if expires.After(now) {
				s.mu.Lock()
				s.cache.put(cacheKey(rec.Tenant, rec.App, rec.Bucket), &cacheEntry{
					tv: rec.TV, seq: ev.Seq, degraded: rec.Degraded,
					raw: rec.Diagnosis, expires: expires,
				})
				s.mu.Unlock()
				stats.CacheRestored++
			}
		}
	}
	if len(history) > historyLimit {
		history = history[len(history)-historyLimit:]
	}
	// Only the first replay of a process rebuilds history: a later `replay`
	// command (say, after slaves re-registered) must not duplicate records.
	s.mu.Lock()
	restored := s.restored
	s.restored = true
	s.mu.Unlock()
	if !restored {
		s.m.restoreHistory(history)
		stats.HistoryRestored = len(history)
	}

	// Re-run what was accepted but never served, oldest first. Each re-run
	// first checks the cache: an entry restored above (or produced by an
	// earlier re-run) may already cover the violation's bucket.
	for _, p := range pending {
		if pendingIdx[p.seq] < 0 {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		bucket := s.bucketOf(p.TV)
		s.mu.Lock()
		ent, ok := s.cache.get(cacheKey(p.Tenant, p.App, bucket), s.clock())
		s.mu.Unlock()
		if ok {
			if _, err := s.serveFromCache(p.Tenant, p.App, p.TV, p.seq, ent, "replay"); err == nil {
				stats.Rerun++
				continue
			}
		}
		s.mu.Lock()
		f := &flight{tv: p.TV, accepts: []int64{p.seq}, done: make(chan struct{})}
		s.flights[flightKey(p.Tenant, p.App)] = f
		s.inflight++
		s.mu.Unlock()
		if _, err := s.lead(ctx, f, p.Tenant, p.App, p.TV, bucket, "replay"); err != nil {
			stats.RerunFailed++
			continue
		}
		s.counter(p.Tenant, "replayed").Inc()
		stats.Rerun++
	}
	s.m.obs.Logger().Info("service replay complete",
		"events", stats.Events, "cache_restored", stats.CacheRestored,
		"history_restored", stats.HistoryRestored, "rerun", stats.Rerun, "rerun_failed", stats.RerunFailed)
	return stats, nil
}

// absDiff is |a-b| without overflow drama for realistic tvs.
func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// cacheKey renders the LRU key for (tenant, app, tv-bucket).
func cacheKey(tenantName, app string, bucket int64) string {
	return fmt.Sprintf("%s\x00%s\x00%d", tenantName, app, bucket)
}

// cacheEntry is one cached verdict.
type cacheEntry struct {
	tv       int64
	seq      int64
	degraded bool
	raw      json.RawMessage
	expires  time.Time
}

// verdictCache is a TTL'd LRU of served verdicts. Callers synchronize (the
// service guards it with its own mutex).
type verdictCache struct {
	cap     int
	order   *list.List // front = most recent
	entries map[string]*list.Element
}

type cacheItem struct {
	key string
	ent *cacheEntry
}

// newVerdictCache returns a cache holding up to cap entries; cap < 0
// disables caching (every get misses, every put is dropped).
func newVerdictCache(cap int) *verdictCache {
	if cap < 0 {
		return &verdictCache{cap: -1}
	}
	return &verdictCache{cap: cap, order: list.New(), entries: make(map[string]*list.Element)}
}

func (c *verdictCache) get(key string, now time.Time) (*cacheEntry, bool) {
	if c.cap < 0 {
		return nil, false
	}
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	item := el.Value.(*cacheItem)
	if !item.ent.expires.After(now) {
		c.order.Remove(el)
		delete(c.entries, key)
		return nil, false
	}
	c.order.MoveToFront(el)
	return item.ent, true
}

func (c *verdictCache) put(key string, ent *cacheEntry) {
	if c.cap < 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).ent = ent
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheItem{key: key, ent: ent})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheItem).key)
	}
}

// len reports live entries (expired ones count until evicted by get).
func (c *verdictCache) len() int {
	if c.cap < 0 {
		return 0
	}
	return c.order.Len()
}

// serveViolationConn serves one violation-client connection: the peer opened
// with a violate frame and streams more; each is answered by a verdict frame
// (or a structured error) correlated by ID. Requests are handled on their
// own goroutines so a slow localization does not serialize the stream.
func (m *Master) serveViolationConn(conn net.Conn, r *bufio.Reader, first *envelope) {
	w := newConnWriter(conn)
	m.obs.Logger().Debug("violation client connected", "remote", conn.RemoteAddr().String())
	env := first
	for {
		if env.Type == typeViolate {
			// Safe against Close's Wait for the same reason the slave's
			// analyze handler is: serveConn itself runs wg-counted.
			m.wg.Add(1)
			go func(env *envelope) {
				defer m.wg.Done()
				m.handleViolate(w, env)
			}(env)
		}
		var err error
		env, err = readFrame(r)
		if err != nil {
			return
		}
	}
}

// handleViolate answers one violate frame through the attached service.
func (m *Master) handleViolate(w *connWriter, env *envelope) {
	svc := m.service()
	if svc == nil {
		_ = w.write(&envelope{Type: typeError, ID: env.ID, Code: codeNoService,
			Err: ErrNoService.Error()}, 10*time.Second)
		return
	}
	timeout := m.localizeTO
	if env.BudgetMS > 0 {
		timeout = time.Duration(env.BudgetMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	v, err := svc.Submit(ctx, env.Tenant, env.App, env.TV)
	if err != nil {
		code := ""
		var retryAfterMS int64
		switch {
		case errors.Is(err, tenant.ErrUnknown):
			code = codeUnknownTenant
		case errors.Is(err, tenant.ErrQuota):
			code = codeQuota
		case errors.Is(err, ErrDraining):
			code = codeDraining
		case errors.Is(err, ErrOverloaded):
			code = codeOverloaded
			var oe *OverloadedError
			if errors.As(err, &oe) {
				retryAfterMS = oe.RetryAfter.Milliseconds()
			}
		}
		_ = w.write(&envelope{Type: typeError, ID: env.ID, Code: code, Err: err.Error(),
			RetryAfterMS: retryAfterMS}, 10*time.Second)
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		_ = w.write(&envelope{Type: typeError, ID: env.ID, Err: err.Error()}, 10*time.Second)
		return
	}
	_ = w.write(&envelope{Type: typeVerdict, ID: env.ID, Verdict: raw}, 30*time.Second)
}

// ServiceClient is the wire client for the service-mode intake: an SLO
// detector dials the master once and streams violate frames; responses are
// correlated by request ID, so Violate is safe to call concurrently.
type ServiceClient struct {
	w *connWriter

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *envelope
	closed  bool
}

// DialService connects a violation client to a master.
func DialService(addr string) (*ServiceClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial service: %w", err)
	}
	c := &ServiceClient{w: newConnWriter(conn), pending: make(map[uint64]chan *envelope)}
	go c.readLoop(newReader(conn))
	return c, nil
}

func (c *ServiceClient) readLoop(r *bufio.Reader) {
	for {
		env, err := readFrame(r)
		if err != nil {
			c.mu.Lock()
			pending := c.pending
			c.pending = make(map[uint64]chan *envelope)
			c.closed = true
			c.mu.Unlock()
			for _, ch := range pending {
				ch <- &envelope{Type: typeError, Err: "cluster: service connection lost"}
			}
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[env.ID]
		if ok {
			delete(c.pending, env.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- env
		}
	}
}

// Violate submits one SLO violation and waits for its verdict. The caller's
// ctx deadline (when set) is shipped to the master as the localization
// budget. Structured error frames map back to the service sentinels:
// tenant.ErrUnknown, tenant.ErrQuota, ErrDraining, ErrOverloaded.
func (c *ServiceClient) Violate(ctx context.Context, tenantName, app string, tv int64) (*Verdict, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: service client closed")
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *envelope, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	budgetMS := int64(0)
	if dl, ok := ctx.Deadline(); ok {
		budgetMS = time.Until(dl).Milliseconds()
		if budgetMS < 1 {
			budgetMS = 1
		}
	}
	req := &envelope{Type: typeViolate, ID: id, Tenant: tenantName, App: app, TV: tv, BudgetMS: budgetMS}
	if err := c.w.write(req, 10*time.Second); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case env := <-ch:
		if env.Type == typeError {
			return nil, errorForCode(env.Code, env.Err, env.RetryAfterMS)
		}
		var v Verdict
		if err := json.Unmarshal(env.Verdict, &v); err != nil {
			return nil, fmt.Errorf("cluster: malformed verdict: %w", err)
		}
		return &v, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// errorForCode maps a structured error frame back to a sentinel the caller
// can errors.Is against; an overload shed keeps its Retry-After hint, so
// errors.As(err, **OverloadedError) recovers the backoff duration.
func errorForCode(code, msg string, retryAfterMS int64) error {
	switch code {
	case codeUnknownTenant:
		return fmt.Errorf("%w: %s", tenant.ErrUnknown, msg)
	case codeQuota:
		return fmt.Errorf("%w: %s", tenant.ErrQuota, msg)
	case codeDraining:
		return fmt.Errorf("%w: %s", ErrDraining, msg)
	case codeOverloaded:
		if retryAfterMS > 0 {
			return &OverloadedError{RetryAfter: time.Duration(retryAfterMS) * time.Millisecond}
		}
		return fmt.Errorf("%w: %s", ErrOverloaded, msg)
	case codeNoService:
		return fmt.Errorf("%w: %s", ErrNoService, msg)
	}
	return errors.New(msg)
}

// Close tears the client connection down; in-flight Violate calls fail.
func (c *ServiceClient) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.w.conn.Close()
}
