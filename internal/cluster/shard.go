package cluster

// Sharded placement and self-healing rebalancing. With WithSharding enabled
// the master owns the component → slave placement: every known component is
// assigned to exactly one registered slave by a consistent-hash ring
// (ring.go), and membership changes move only the components whose owner
// changed. A move carries the component's model state with it — export the
// donor's MonitorSnapshot, restore it on the recipient, then cut the owner
// map over and push each slave its authoritative owned set — so a freshly
// moved component keeps its learned normal-fluctuation model instead of
// restarting the paper's training window from scratch.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// sharded reports whether the master owns component placement.
func (m *Master) sharded() bool { return m.shardVnodes > 0 }

// RegisterComponents declares components the master should place on the
// ring. In sharded mode slaves typically register with no components of
// their own; the component universe comes from discovery (or tests) through
// this call, which triggers a rebalance. Idempotent.
func (m *Master) RegisterComponents(comps ...string) {
	m.mu.Lock()
	for _, comp := range comps {
		m.known[comp] = true
	}
	m.mu.Unlock()
	if m.sharded() {
		m.triggerRebalance()
	}
}

// RegisteredComponents reports the size of the component registry: every
// component ever registered or observed, whether or not a slave currently
// covers it. Contrast Components, which lists only covered components.
func (m *Master) RegisteredComponents() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.known)
}

// Assignments returns the current placement as owner → sorted components
// (empty outside sharded mode).
func (m *Master) Assignments() map[string][]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]string)
	for comp, own := range m.owner {
		out[own] = append(out[own], comp)
	}
	for _, comps := range out {
		sort.Strings(comps)
	}
	return out
}

// Owner returns the slave currently owning comp; ok is false when comp has
// not been placed (non-sharded mode, or no slave has ever been registered).
func (m *Master) Owner(comp string) (owner string, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	owner, ok = m.owner[comp]
	return owner, ok
}

// triggerRebalance requests an asynchronous rebalance pass; with
// auto-rebalance disabled it is a no-op (tests drive Rebalance directly).
func (m *Master) triggerRebalance() {
	if !m.autoRebalance {
		return
	}
	select {
	case m.rebalanceReq <- struct{}{}:
	default: // a pass is already requested; it will see the latest state
	}
}

// rebalanceDebounce lets a burst of membership changes (a flapping slave, a
// staggered fleet restart) settle into one rebalance pass instead of one per
// event.
const rebalanceDebounce = 50 * time.Millisecond

// rebalanceLoop runs requested rebalance passes until the master closes.
func (m *Master) rebalanceLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case <-m.rebalanceReq:
		}
		timer := time.NewTimer(rebalanceDebounce)
		select {
		case <-m.stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		if _, err := m.Rebalance(); err != nil {
			m.obs.Logger().Warn("rebalance pass failed", "err", err)
		}
	}
}

// Rebalance recomputes the placement over the currently registered slaves
// and moves every component whose owner changed, handing each moved
// component's model state from donor to recipient (cold-starting it on the
// recipient when the donor is dead or the transfer keeps failing). It
// returns how many components moved. Passes are serialized; concurrent
// callers run one after another, each over fresh membership.
func (m *Master) Rebalance() (moved int, err error) {
	if !m.sharded() {
		return 0, errors.New("cluster: master is not sharded")
	}
	m.rebalanceMu.Lock()
	defer m.rebalanceMu.Unlock()
	return m.rebalanceOnce()
}

// rebalanceMove is one component changing owner ("" from = first placement).
type rebalanceMove struct {
	comp, from, to string
}

func (m *Master) rebalanceOnce() (int, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, errors.New("cluster: master closed")
	}
	members := make([]string, 0, len(m.slaves))
	conns := make(map[string]*slaveConn, len(m.slaves))
	for name, sc := range m.slaves {
		members = append(members, name)
		conns[name] = sc
	}
	comps := make([]string, 0, len(m.known))
	for comp := range m.known {
		comps = append(comps, comp)
	}
	oldOwner := make(map[string]string, len(m.owner))
	for comp, own := range m.owner {
		oldOwner[comp] = own
	}
	m.mu.Unlock()
	if len(members) == 0 || len(comps) == 0 {
		// Total-eviction window (or nothing to place yet): keep the last
		// placement so the next joining slave restores it from checkpoints.
		return 0, nil
	}
	sort.Strings(members)
	sort.Strings(comps)

	ring := NewRing(m.shardVnodes)
	for _, name := range members {
		ring.Add(name)
	}
	want := ring.AssignBounded(comps, BalanceBound)

	// Warm-standby failover: a component leaving a dead donor is promoted in
	// place on its caught-up standby instead of moving to the ring's choice.
	// The standby's shadow monitor already holds the donor's replicated state,
	// so phase 1 has nothing to transfer and the slave's handleAssign adopts
	// the shadow without touching the checkpoint directory. A missing, dead,
	// or lagging standby falls back to the existing cold path.
	promoted := make(map[string]bool)
	if m.standbyOn {
		m.replMu.Lock()
		standbyOf := make(map[string]string, len(m.standbyOf))
		for comp, st := range m.standbyOf {
			standbyOf[comp] = st
		}
		replSent := make(map[string]uint64, len(m.replSent))
		for comp, seq := range m.replSent {
			replSent[comp] = seq
		}
		replAcked := make(map[string]uint64, len(m.replAcked))
		for comp, seq := range m.replAcked {
			replAcked[comp] = seq
		}
		replTickAt := make(map[string]time.Time, len(m.replTickAt))
		for slave, at := range m.replTickAt {
			replTickAt[slave] = at
		}
		m.replMu.Unlock()
		now := time.Now()
		for _, comp := range comps {
			from := oldOwner[comp]
			if from == "" || from == want[comp] {
				continue
			}
			if donor := conns[from]; donor != nil && !donor.isDead() {
				continue // live donor: a plain move, phase 1 carries the state
			}
			st := standbyOf[comp]
			stConn := conns[st]
			stLive := st != "" && stConn != nil && !stConn.isDead()
			caughtUp := replSent[comp] > 0 && replAcked[comp] == replSent[comp]
			fresh := m.replMaxLag <= 0 || now.Sub(replTickAt[from]) <= m.replMaxLag
			if stLive && caughtUp && fresh {
				want[comp] = st
				promoted[comp] = true
				m.obs.Registry().CounterWith("fchain_failover_total",
					"Dead-owner failovers by recovery mode.", map[string]string{"mode": "warm"}).Inc()
				_ = m.obs.EventJournal().Record("failover", map[string]any{
					"component": comp, "from": from, "to": st, "mode": "warm"})
				continue
			}
			if stLive && caughtUp && !fresh {
				_ = m.obs.EventJournal().Record("replica_lagging", map[string]any{
					"component": comp, "standby": st, "primary": from,
					"lag_seconds": now.Sub(replTickAt[from]).Seconds()})
			}
			m.obs.Registry().CounterWith("fchain_failover_total",
				"Dead-owner failovers by recovery mode.", map[string]string{"mode": "cold"}).Inc()
			_ = m.obs.EventJournal().Record("failover", map[string]any{
				"component": comp, "from": from, "to": want[comp], "mode": "cold"})
		}
	}

	// Recompute standby placement over the post-failover primaries, and the
	// per-slave shadow lists phase 2 will push. A promoted component's shadow
	// was consumed by its promotion, and a moved primary restarts its
	// replication sequence, so both cases reset the sent/acked bookkeeping —
	// the warm gate must not trust acks addressed to a previous placement.
	var newStandby map[string]string
	shadowOf := make(map[string][]string)
	resetComps := make(map[string]bool)
	standbyChanged := false
	if m.standbyOn {
		newStandby = ring.AssignStandby(comps, want, BalanceBound)
		for comp, st := range newStandby {
			shadowOf[st] = append(shadowOf[st], comp)
		}
		for _, comps := range shadowOf {
			sort.Strings(comps)
		}
		m.replMu.Lock()
		if len(newStandby) != len(m.standbyOf) {
			standbyChanged = true
		} else {
			for comp, st := range newStandby {
				if m.standbyOf[comp] != st {
					standbyChanged = true
					break
				}
			}
		}
		m.replMu.Unlock()
	}

	var moves []rebalanceMove
	for _, comp := range comps {
		to := want[comp]
		if from := oldOwner[comp]; from != to {
			moves = append(moves, rebalanceMove{comp: comp, from: from, to: to})
		}
	}
	if len(moves) == 0 && !standbyChanged {
		return 0, nil
	}
	_ = m.obs.EventJournal().Record("rebalance_started", map[string]any{
		"members": len(members), "moves": len(moves)})
	m.obs.Logger().Info("rebalance started", "members", len(members), "moves", len(moves))

	// Phase 1 — state transfer, before any ownership changes: donors still
	// own (and keep feeding) their components while copies move, so a
	// localization racing the rebalance still sees every component answered
	// by its pre-move owner.
	handoffs := 0
	for _, mv := range moves {
		if promoted[mv.comp] {
			continue // the standby's shadow is the state; nothing to transfer
		}
		if m.handoff(mv, conns) {
			handoffs++
		}
	}

	// Phase 2 — batch cutover: flip the owner map in one critical section,
	// then push every slave its authoritative owned set. handleAssign keeps
	// a monitor restored by phase 1 (or falls back to the shared-checkpoint
	// copy when the donor died before exporting) and drops what moved away.
	if m.standbyOn {
		// Reset replication bookkeeping before the cutover so acks addressed
		// to the old placement can never satisfy the warm gate: any component
		// whose primary or standby changed starts from sequence zero and must
		// be re-warmed by its (new) primary's next full ship. The same set
		// rides the assign pushes as ReplReset so quiet owners (no new
		// samples) forget their floors and actually re-ship.
		m.replMu.Lock()
		for comp := range m.replSent {
			if _, ok := newStandby[comp]; !ok {
				delete(m.replSent, comp)
				delete(m.replAcked, comp)
			}
		}
		for comp, st := range newStandby {
			if m.standbyOf[comp] != st || oldOwner[comp] != want[comp] {
				resetComps[comp] = true
				delete(m.replSent, comp)
				delete(m.replAcked, comp)
			}
		}
		m.standbyOf = newStandby
		m.replMu.Unlock()
	}
	m.mu.Lock()
	for comp, to := range want {
		m.owner[comp] = to
	}
	assign := make(map[string][]string, len(m.slaves))
	replReset := make(map[string][]string)
	push := make(map[string]*slaveConn, len(m.slaves))
	for name, sc := range m.slaves {
		assign[name] = nil // a slave owning nothing still needs the empty push
		push[name] = sc
	}
	for comp, own := range m.owner {
		if _, ok := push[own]; ok {
			assign[own] = append(assign[own], comp)
			if resetComps[comp] {
				replReset[own] = append(replReset[own], comp)
			}
		}
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for name, sc := range push {
		owned := assign[name]
		sort.Strings(owned)
		sort.Strings(replReset[name])
		wg.Add(1)
		go func(sc *slaveConn, owned, shadow, reset []string) {
			defer wg.Done()
			if _, err := m.call(sc, &envelope{Type: typeAssign, Components: owned, Shadow: shadow, ReplReset: reset}, m.handoffTimeout); err != nil {
				m.obs.Logger().Warn("assignment push failed", "slave", sc.name, "err", err)
			}
		}(sc, owned, shadowOf[name], replReset[name])
	}
	wg.Wait()

	m.obs.Registry().Counter("fchain_rebalance_components_total",
		"Components moved to a new owner by rebalancing.").Add(int64(len(moves)))
	_ = m.obs.EventJournal().Record("rebalance_done", map[string]any{
		"moved": len(moves), "handoffs": handoffs})
	m.obs.Logger().Info("rebalance done", "moved", len(moves), "handoffs", handoffs)
	return len(moves), nil
}

// handoff moves one component's model state from donor to recipient with
// bounded retries, reporting whether the warm transfer landed. Any failure
// path leaves the recipient to cold-start (or restore the shared checkpoint)
// when its assignment push arrives — the rebalance never wedges on a dead
// donor.
func (m *Master) handoff(mv rebalanceMove, conns map[string]*slaveConn) bool {
	if hook := m.handoffHook.Load(); hook != nil {
		(*hook)(mv.comp, mv.from, mv.to) // chaos tests kill peers mid-handoff here
	}
	recip := conns[mv.to]
	if recip == nil || recip.isDead() {
		return false
	}
	donor := conns[mv.from]
	if mv.from == "" || donor == nil || donor.isDead() {
		_ = m.obs.EventJournal().Record("handoff_cold", map[string]any{
			"component": mv.comp, "from": mv.from, "to": mv.to})
		return false
	}
	var lastErr error
	for attempt := 0; attempt <= m.handoffRetries; attempt++ {
		if donor.isDead() || recip.isDead() {
			break
		}
		state, err := m.call(donor, &envelope{Type: typeExport, Component: mv.comp}, m.handoffTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if _, err := m.call(recip, &envelope{Type: typeRestore, Component: mv.comp, State: state.State}, m.handoffTimeout); err != nil {
			lastErr = err
			continue
		}
		_ = m.obs.EventJournal().Record("handoff", map[string]any{
			"component": mv.comp, "from": mv.from, "to": mv.to, "attempt": attempt})
		return true
	}
	m.obs.Logger().Warn("handoff failed; recipient will cold-start",
		"component", mv.comp, "from", mv.from, "to", mv.to, "err", lastErr)
	_ = m.obs.EventJournal().Record("handoff_cold", map[string]any{
		"component": mv.comp, "from": mv.from, "to": mv.to})
	return false
}

// call sends one correlated request to a peer and waits for its response
// (ack, state, or error) within timeout.
func (m *Master) call(sc *slaveConn, req *envelope, timeout time.Duration) (*envelope, error) {
	id := m.reqCounter.Add(1)
	req.ID = id
	ch := make(chan *envelope, 1)
	if !sc.addPending(id, ch) {
		return nil, fmt.Errorf("cluster: %s disconnected", sc.name)
	}
	if err := sc.w.write(req, timeout); err != nil {
		sc.removePending(id)
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case env := <-ch:
		if env.Type == typeError {
			return env, fmt.Errorf("cluster: %s: %s", sc.name, env.Err)
		}
		return env, nil
	case <-timer.C:
		sc.removePending(id)
		return nil, fmt.Errorf("cluster: %s: %s timed out", sc.name, req.Type)
	case <-m.stop:
		sc.removePending(id)
		return nil, errors.New("cluster: master closed")
	}
}
