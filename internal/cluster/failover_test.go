package cluster

// Warm-standby failover tests: the kill-mid-localize chaos paths for the
// replication channel. The tentpole property is byte-identity — a component
// promoted onto its warm standby must reproduce the dead owner's control
// onset and diagnosis JSON exactly, with no checkpoint-directory read on the
// warm path (the tests prove it by running without any checkpoint dir).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"fchain/internal/apps"
	"fchain/internal/core"
	"fchain/internal/faultnet"
	"fchain/internal/metric"
	"fchain/internal/obs"
)

// shadowMatches reports whether standby's shadow monitor for comp is
// byte-identical to owner's live monitor — the replication channel has fully
// caught up and a promotion right now would be exact.
func shadowMatches(t *testing.T, owner, standby *Slave, comp string) bool {
	t.Helper()
	owner.mu.Lock()
	pm := owner.monitors[comp]
	owner.mu.Unlock()
	standby.mu.Lock()
	sm := standby.shadows[comp]
	standby.mu.Unlock()
	if pm == nil || sm == nil {
		return false
	}
	a, err := json.Marshal(pm.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(sm.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(a, b)
}

// waitReplicated blocks until every registered component has a caught-up
// standby whose shadow state matches its owner byte-for-byte.
func waitReplicated(t *testing.T, master *Master, slaves map[string]*Slave, comps []string) {
	t.Helper()
	waitFor(t, 10*time.Second, func() bool {
		for _, comp := range comps {
			owner, ok := master.Owner(comp)
			if !ok {
				return false
			}
			st, ok := master.Standby(comp)
			if !ok || !master.StandbyCaughtUp(comp) {
				return false
			}
			if !shadowMatches(t, slaves[owner], slaves[st], comp) {
				return false
			}
		}
		return true
	}, "replication to catch up on every component")
}

// journalEvents reads and buckets the journal written at path.
func journalEvents(t *testing.T, path string) map[string][]map[string]any {
	t.Helper()
	events, err := obs.ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]map[string]any)
	for _, ev := range events {
		var data map[string]any
		if len(ev.Data) > 0 {
			if err := json.Unmarshal(ev.Data, &data); err != nil {
				t.Fatalf("malformed %s event: %v", ev.Type, err)
			}
		}
		out[ev.Type] = append(out[ev.Type], data)
	}
	return out
}

// TestWarmFailoverReproducesDiagnosisExactly is the kill-mid-localize
// acceptance path for warm failover: with replication on and NO checkpoint
// directory anywhere, killing the owner of the culprit component and
// rebalancing must promote every orphan onto its standby's shadow monitor and
// reproduce the control diagnosis byte-identically. A cold start would leave
// empty monitors (there is no checkpoint to fall back to), so byte-identity
// is also the proof that the warm path never touched a checkpoint.
func TestWarmFailoverReproducesDiagnosisExactly(t *testing.T) {
	journalPath := t.TempDir() + "/failover.journal"
	journal, err := obs.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sink := &obs.Sink{Metrics: reg, Journal: journal}

	// Master and slaves share the sink so failover, relay, and promotion
	// events land in one journal and reconcile against one registry.
	master, slaves, tv := shardedScenarioCluster(t, 5, 3,
		[]SlaveOption{WithReplication(20 * time.Millisecond), WithReconnect(false), WithSlaveObs(sink)},
		WithStandby(true), WithMasterObs(sink))

	comps := make([]string, 0)
	for _, owned := range master.Assignments() {
		comps = append(comps, owned...)
	}
	waitReplicated(t, master, slaves, comps)

	want, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if names := want.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Fatalf("control diagnosis = %v, want [db]", names)
	}

	victimName, ok := master.Owner(apps.DB)
	if !ok {
		t.Fatal("db not placed")
	}
	victimOwned := append([]string(nil), master.Assignments()[victimName]...)
	wantOwner := make(map[string]string, len(victimOwned))
	for _, comp := range victimOwned {
		st, ok := master.Standby(comp)
		if !ok {
			t.Fatalf("component %s has no standby", comp)
		}
		wantOwner[comp] = st
	}

	if err := slaves[victimName].Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 2 }, "victim eviction")
	moved, err := master.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved < len(victimOwned) {
		t.Fatalf("recovery rebalance moved %d components, want at least the victim's %d", moved, len(victimOwned))
	}
	for comp, st := range wantOwner {
		if owner, _ := master.Owner(comp); owner != st {
			t.Errorf("component %s promoted onto %s, want its standby %s", comp, owner, st)
		}
	}

	got, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coverage() != 1 {
		t.Fatalf("post-failover coverage = %v (missing %v), want 1", got.Coverage(), got.MissingComponents)
	}
	if a, b := diagnosisJSON(t, want), diagnosisJSON(t, got); !bytes.Equal(a, b) {
		t.Errorf("diagnosis changed across warm failover:\n before: %s\n after:  %s", a, b)
	}

	if err := master.Close(); err != nil {
		t.Fatal(err)
	}
	for _, sl := range slaves {
		sl.Close()
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	events := journalEvents(t, journalPath)

	warm := make(map[string]bool)
	for _, ev := range events["failover"] {
		if ev["mode"] != "warm" {
			t.Errorf("failover event not warm: %v", ev)
			continue
		}
		warm[ev["component"].(string)] = true
	}
	if len(warm) != len(victimOwned) {
		t.Errorf("journal has warm failovers for %d components, want %d", len(warm), len(victimOwned))
	}
	for _, comp := range victimOwned {
		if !warm[comp] {
			t.Errorf("no warm failover event for %s", comp)
		}
	}
	promoted := make(map[string]bool)
	for _, ev := range events["replica_promoted"] {
		promoted[ev["component"].(string)] = true
	}
	for _, comp := range victimOwned {
		if !promoted[comp] {
			t.Errorf("no replica_promoted event for %s", comp)
		}
	}
	// The warm path must never fall back to checkpoints: handoff_cold with a
	// named donor is the cold-start marker (from == "" is first placement).
	for _, ev := range events["handoff_cold"] {
		if from, _ := ev["from"].(string); from != "" {
			t.Errorf("cold handoff during warm failover: %v", ev)
		}
	}
	if n := reg.CounterWith("fchain_failover_total", "", map[string]string{"mode": "warm"}).Value(); n != int64(len(victimOwned)) {
		t.Errorf("fchain_failover_total{mode=warm} = %d, want %d", n, len(victimOwned))
	}
	if n := reg.CounterWith("fchain_failover_total", "", map[string]string{"mode": "cold"}).Value(); n != 0 {
		t.Errorf("fchain_failover_total{mode=cold} = %d, want 0", n)
	}
}

// TestDoubleFailureFallsBackCold kills a component's primary AND standby
// between replication ticks: with nowhere warm to go, the rebalance must fall
// back to the shared-checkpoint cold path, keep coverage accounting exact
// through the outage, journal the failover as mode=cold, and still reproduce
// the control diagnosis byte-identically from the checkpoint files.
func TestDoubleFailureFallsBackCold(t *testing.T) {
	journalPath := t.TempDir() + "/double.journal"
	journal, err := obs.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	sink := &obs.Sink{Metrics: obs.NewRegistry(), Journal: journal}

	// Every slave reaches the master only through a severable faultnet proxy,
	// so both deaths are abrupt network kills, not clean shutdowns: the only
	// recoverable state is the last explicit checkpoint.
	shared := t.TempDir()
	sim, tv, deps := faultScenario(t, 5)
	master := NewMaster(core.Config{}, deps, WithSharding(0), WithAutoRebalance(false),
		WithStandby(true), WithMasterObs(sink))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })

	fab := faultnet.NewFabric()
	slaves := make(map[string]*Slave, 4)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("shard-%d", i)
		proxy, err := faultnet.NewProxy(master.Addr(), faultnet.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { proxy.Close() })
		fab.Link("master", name, proxy)
		sl := NewSlave(name, nil, core.Config{},
			WithReplication(20*time.Millisecond), WithReconnect(false),
			WithCheckpointDir(shared))
		if err := sl.Connect(proxy.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sl.Close() })
		slaves[name] = sl
	}
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 4 }, "slaves to register")
	master.RegisterComponents(sim.Components()...)
	if _, err := master.Rebalance(); err != nil {
		t.Fatal(err)
	}
	for _, comp := range sim.Components() {
		owner, ok := master.Owner(comp)
		if !ok {
			t.Fatalf("component %s not placed", comp)
		}
		for _, k := range metric.Kinds {
			series, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := slaves[owner].Observe(comp, series.TimeAt(i), k, series.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	waitReplicated(t, master, slaves, sim.Components())

	want, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if names := want.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Fatalf("control diagnosis = %v, want [db]", names)
	}

	// Checkpoint everything, then kill db's primary and standby abruptly in
	// the inter-tick window.
	for _, sl := range slaves {
		if err := sl.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	primary, _ := master.Owner(apps.DB)
	standby, ok := master.Standby(apps.DB)
	if !ok || standby == primary {
		t.Fatalf("db standby = %q (primary %q), want a distinct standby", standby, primary)
	}
	lostComps := make(map[string]bool)
	for _, name := range []string{primary, standby} {
		for _, comp := range master.Assignments()[name] {
			lostComps[comp] = true
		}
	}
	fab.Partition([]string{primary, standby}, []string{"master"})
	waitFor(t, 5*time.Second, func() bool { return len(master.Slaves()) == 2 }, "double eviction")

	// Exact coverage accounting through the outage: the missing set is
	// exactly the union of the two dead slaves' assignments.
	degraded, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if !degraded.Degraded {
		t.Error("double-failure localize not marked degraded")
	}
	if len(degraded.MissingComponents) != len(lostComps) {
		t.Fatalf("missing %v, want exactly the dead slaves' %d components", degraded.MissingComponents, len(lostComps))
	}
	for _, comp := range degraded.MissingComponents {
		if !lostComps[comp] {
			t.Fatalf("component %s reported missing but its owner is alive", comp)
		}
	}

	if _, err := master.Rebalance(); err != nil {
		t.Fatal(err)
	}
	got, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coverage() != 1 {
		t.Fatalf("post-recovery coverage = %v (missing %v), want 1", got.Coverage(), got.MissingComponents)
	}
	if a, b := diagnosisJSON(t, want), diagnosisJSON(t, got); !bytes.Equal(a, b) {
		t.Errorf("diagnosis changed across double-failure cold recovery:\n before: %s\n after:  %s", a, b)
	}

	if err := master.Close(); err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	events := journalEvents(t, journalPath)
	dbMode := ""
	for _, ev := range events["failover"] {
		if ev["component"] == apps.DB {
			dbMode, _ = ev["mode"].(string)
		}
	}
	if dbMode != "cold" {
		t.Errorf("db failover mode = %q, want cold (its standby died too)", dbMode)
	}
}

// TestLaggingStandbyFallsBackCold pins the -repl-max-lag gate: a standby that
// is otherwise caught up but whose primary's last clean replication tick is
// older than the bound must NOT be promoted — the master journals
// replica_lagging and takes the cold path instead, which the shared
// checkpoint keeps byte-exact.
func TestLaggingStandbyFallsBackCold(t *testing.T) {
	journalPath := t.TempDir() + "/lagging.journal"
	journal, err := obs.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	sink := &obs.Sink{Metrics: obs.NewRegistry(), Journal: journal}

	shared := t.TempDir()
	// A nanosecond bound makes every standby "lagging" by the time the
	// rebalance evaluates the gate, whatever the test host's timing.
	master, slaves, tv := shardedScenarioCluster(t, 5, 3,
		[]SlaveOption{WithReplication(20 * time.Millisecond), WithReconnect(false),
			WithCheckpointDir(shared)},
		WithStandby(true), WithReplMaxLag(time.Nanosecond), WithMasterObs(sink))

	comps := make([]string, 0)
	for _, owned := range master.Assignments() {
		comps = append(comps, owned...)
	}
	waitReplicated(t, master, slaves, comps)
	want, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}

	victimName, _ := master.Owner(apps.DB)
	victimOwned := append([]string(nil), master.Assignments()[victimName]...)
	if err := slaves[victimName].Close(); err != nil { // clean close: final checkpoints land
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 2 }, "victim eviction")
	if _, err := master.Rebalance(); err != nil {
		t.Fatal(err)
	}

	got, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coverage() != 1 {
		t.Fatalf("post-failover coverage = %v, want 1", got.Coverage())
	}
	if a, b := diagnosisJSON(t, want), diagnosisJSON(t, got); !bytes.Equal(a, b) {
		t.Errorf("diagnosis changed across lag-gated cold failover:\n before: %s\n after:  %s", a, b)
	}

	if err := master.Close(); err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	events := journalEvents(t, journalPath)
	cold := make(map[string]bool)
	for _, ev := range events["failover"] {
		if ev["mode"] == "warm" {
			t.Errorf("lag-gated failover promoted warm: %v", ev)
			continue
		}
		cold[ev["component"].(string)] = true
	}
	for _, comp := range victimOwned {
		if !cold[comp] {
			t.Errorf("no cold failover event for %s", comp)
		}
	}
	lagging := make(map[string]bool)
	for _, ev := range events["replica_lagging"] {
		lagging[ev["component"].(string)] = true
	}
	for _, comp := range victimOwned {
		if !lagging[comp] {
			t.Errorf("no replica_lagging event for %s", comp)
		}
	}
}

// TestReplicationMetricsJournalReconcile churns membership under replication
// and reconciles the registry against the journal exactly: failover counters
// against failover events by mode, promotion counters against
// replica_promoted events, relayed bytes against the repl_relay byte sum, and
// the per-slave lag gauge against the slave's last repl_tick event.
func TestReplicationMetricsJournalReconcile(t *testing.T) {
	journalPath := t.TempDir() + "/repl.journal"
	journal, err := obs.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sink := &obs.Sink{Metrics: reg, Journal: journal}

	master := NewMaster(core.Config{}, nil, WithSharding(0), WithAutoRebalance(false),
		WithStandby(true), WithMasterObs(sink))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	slaveOpts := []SlaveOption{WithReplication(20 * time.Millisecond), WithReconnect(false), WithSlaveObs(sink)}
	slaves := startShardedSlaves(t, master, 3, slaveOpts...)

	var comps []string
	for i := 0; i < 12; i++ {
		comps = append(comps, fmt.Sprintf("r%02d", i))
	}
	master.RegisterComponents(comps...)
	if _, err := master.Rebalance(); err != nil {
		t.Fatal(err)
	}
	for _, comp := range comps {
		owner, _ := master.Owner(comp)
		for ts := int64(1); ts <= 40; ts++ {
			for _, k := range metric.Kinds {
				if err := slaves[owner].Observe(comp, ts, k, float64((ts*int64(k))%11)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	waitReplicated(t, master, slaves, comps)

	// Churn: one eviction (warm failovers), then one join (standby movement).
	slaves["shard-0"].Close()
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 2 }, "eviction")
	if _, err := master.Rebalance(); err != nil {
		t.Fatal(err)
	}
	late := NewSlave("shard-late", nil, core.Config{}, slaveOpts...)
	if err := late.Connect(master.Addr()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { late.Close() })
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 3 }, "late join")
	if _, err := master.Rebalance(); err != nil {
		t.Fatal(err)
	}
	slaves["shard-late"] = late
	delete(slaves, "shard-0")
	waitReplicated(t, master, slaves, comps)

	// Quiesce every writer before reading the journal back.
	if err := master.Close(); err != nil {
		t.Fatal(err)
	}
	for _, sl := range slaves {
		sl.Close()
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	events := journalEvents(t, journalPath)

	modes := map[string]int64{}
	for _, ev := range events["failover"] {
		modes[ev["mode"].(string)]++
	}
	for _, mode := range []string{"warm", "cold"} {
		if got := reg.CounterWith("fchain_failover_total", "", map[string]string{"mode": mode}).Value(); got != modes[mode] {
			t.Errorf("fchain_failover_total{mode=%s} = %d, journal says %d", mode, got, modes[mode])
		}
	}
	if modes["warm"] == 0 {
		t.Error("churn produced no warm failovers; the reconciliation is vacuous")
	}
	if got := reg.Counter("fchain_replica_promotions_total", "").Value(); got != int64(len(events["replica_promoted"])) {
		t.Errorf("fchain_replica_promotions_total = %d, journal has %d replica_promoted events",
			got, len(events["replica_promoted"]))
	}
	var relayBytes int64
	for _, ev := range events["repl_relay"] {
		relayBytes += int64(ev["bytes"].(float64))
	}
	if relayBytes == 0 {
		t.Error("journal records no relayed bytes")
	}
	if got := reg.Counter("fchain_repl_bytes_total", "").Value(); got != relayBytes {
		t.Errorf("fchain_repl_bytes_total = %d, journal repl_relay sum = %d", got, relayBytes)
	}
	lastLag := map[string]float64{}
	for _, ev := range events["repl_tick"] {
		lastLag[ev["slave"].(string)] = ev["lag_seconds"].(float64)
	}
	if len(lastLag) == 0 {
		t.Fatal("journal records no replication ticks")
	}
	for slave, lag := range lastLag {
		if got := reg.GaugeWith("fchain_repl_lag_seconds", "", map[string]string{"slave": slave}).Value(); got != lag {
			t.Errorf("fchain_repl_lag_seconds{slave=%s} = %v, last repl_tick says %v", slave, got, lag)
		}
	}
}
