package cluster

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"fchain/internal/core"
	"fchain/internal/faultnet"
	"fchain/internal/obs"
)

// TestScaleTenThousandComponents drives the issue's headline number: a
// 10,000-component application sharded over 8 slaves behind 2 aggregators
// must localize inside a 2-second deadline, report exact coverage, degrade to
// the exact missing set when faultnet kills a slave mid-flight, and — with
// warm-standby replication on — recover full coverage through standby
// promotion alone: no cold starts, and the promoting rebalance bounded under
// 500ms because it moves no state.
func TestScaleTenThousandComponents(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-component fleet: skipped in short mode")
	}
	if raceEnabled {
		t.Skip("10k-component fleet is impractically slow under the race detector")
	}

	// Small per-monitor footprint: 10,000 monitors at the default ring and
	// bootstrap sizes would need gigabytes and tens of seconds.
	cfg := core.Config{LookBack: 30, BurstWindow: 5, RingCapacity: 64, MarkovBins: 6, Bootstraps: 20}

	reg := obs.NewRegistry()
	master := NewMaster(cfg, nil,
		WithSharding(0), WithAutoRebalance(false), WithLocalizeRetries(0),
		WithHandoffTimeout(500*time.Millisecond), WithHandoffRetries(0),
		WithStandby(true), WithMasterObs(&obs.Sink{Metrics: reg}))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })

	const nAggs, nSlaves = 2, 8
	aggs := make([]*Aggregator, nAggs)
	for i := range aggs {
		agg := NewAggregator(aggName(i))
		if err := agg.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		if err := agg.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { agg.Close() })
		aggs[i] = agg
	}
	waitFor(t, 2*time.Second, func() bool {
		master.mu.Lock()
		defer master.mu.Unlock()
		return len(master.aggs) == nAggs
	}, "aggregators to register")

	// The victim reaches both its upstreams only through severable proxies,
	// so its death is a network event injected by faultnet, not a clean
	// shutdown with final checkpoints.
	const victim = "shard-7"
	fab := faultnet.NewFabric()
	for i := 0; i < nSlaves; i++ {
		name := fmt.Sprintf("shard-%d", i)
		agg := aggs[i%nAggs]
		sl := NewSlave(name, nil, cfg, WithVia(agg.name), WithReconnect(false),
			WithReplication(100*time.Millisecond))
		masterAddr, aggAddr := master.Addr(), agg.Addr()
		if name == victim {
			pm, err := faultnet.NewProxy(master.Addr(), faultnet.Config{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { pm.Close() })
			pa, err := faultnet.NewProxy(agg.Addr(), faultnet.Config{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { pa.Close() })
			fab.Link("master", name, pm)
			fab.Link(agg.name, name, pa)
			masterAddr, aggAddr = pm.Addr(), pa.Addr()
		}
		if err := sl.Connect(masterAddr); err != nil {
			t.Fatal(err)
		}
		if err := sl.Connect(aggAddr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sl.Close() })
	}
	waitFor(t, 5*time.Second, func() bool { return len(master.Slaves()) == nSlaves }, "slaves to register")
	for _, agg := range aggs {
		agg := agg
		waitFor(t, 5*time.Second, func() bool { return len(agg.Slaves()) == nSlaves/nAggs }, "subtree registrations")
	}

	const nComps = 10000
	comps := make([]string, nComps)
	for i := range comps {
		comps[i] = fmt.Sprintf("comp-%05d", i)
	}
	master.RegisterComponents(comps...)
	moved, err := master.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved != nComps {
		t.Fatalf("initial placement moved %d components, want %d", moved, nComps)
	}

	const tv = 1700
	localize := func(label string) core.LocalizeResult {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		start := time.Now()
		res, err := master.Localize(ctx, tv)
		if err != nil {
			t.Fatalf("%s localize: %v", label, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("%s localize took %v, want < 2s", label, elapsed)
		}
		return res
	}

	res := localize("pre-kill")
	if res.Coverage() != 1 || res.ComponentsReported != nComps || res.SlavesAnswered != nSlaves {
		t.Fatalf("pre-kill coverage %.4f (%d/%d components, %d/%d slaves), want full",
			res.Coverage(), res.ComponentsReported, res.ComponentsKnown, res.SlavesAnswered, res.SlavesTotal)
	}

	// Kill the victim: its exact assignment must surface as the missing set.
	victimOwned := append([]string(nil), master.Assignments()[victim]...)
	if len(victimOwned) == 0 {
		t.Fatalf("victim %s owns nothing", victim)
	}
	// Wait for replication to warm every victim component's standby, and pin
	// the promotion targets so the recovery can be checked to be pure
	// promotion.
	waitFor(t, 15*time.Second, func() bool {
		for _, comp := range victimOwned {
			if !master.StandbyCaughtUp(comp) {
				return false
			}
		}
		return true
	}, "victim components' standbys to catch up")
	standbyOf := make(map[string]string, len(victimOwned))
	for _, comp := range victimOwned {
		st, ok := master.Standby(comp)
		if !ok || st == victim {
			t.Fatalf("component %s standby = %q, want a live standby", comp, st)
		}
		standbyOf[comp] = st
	}
	fab.Partition([]string{victim}, []string{"master", aggs[1%nAggs].name})
	waitFor(t, 5*time.Second, func() bool { return len(master.Slaves()) == nSlaves-1 }, "victim eviction")

	degraded := localize("post-kill")
	if !degraded.Degraded {
		t.Error("post-kill result not marked degraded")
	}
	sort.Strings(victimOwned)
	if got := degraded.MissingComponents; len(got) != len(victimOwned) {
		t.Fatalf("post-kill missing %d components, want exactly the victim's %d", len(got), len(victimOwned))
	} else {
		for i := range got {
			if got[i] != victimOwned[i] {
				t.Fatalf("missing[%d] = %s, want %s (victim's assignment)", i, got[i], victimOwned[i])
			}
		}
	}
	wantCov := float64(nComps-len(victimOwned)) / float64(nComps)
	if degraded.Coverage() != wantCov {
		t.Errorf("post-kill coverage %.6f, want exactly %.6f", degraded.Coverage(), wantCov)
	}

	// Rebalancing promotes every orphan onto its warm standby in place: no
	// handoffs, no checkpoint reads, so the pass itself is bounded — well
	// under the 500ms failover budget to restored coverage.
	start := time.Now()
	moved, err = master.Rebalance()
	failover := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if moved != len(victimOwned) {
		t.Errorf("recovery rebalance moved %d components, want %d", moved, len(victimOwned))
	}
	if failover >= 500*time.Millisecond {
		t.Errorf("promoting rebalance took %v, want < 500ms", failover)
	}
	for _, comp := range victimOwned {
		if owner, _ := master.Owner(comp); owner != standbyOf[comp] {
			t.Fatalf("component %s recovered onto %s, want its standby %s", comp, owner, standbyOf[comp])
		}
	}
	if warm := reg.CounterWith("fchain_failover_total", "", map[string]string{"mode": "warm"}).Value(); warm != int64(len(victimOwned)) {
		t.Errorf("fchain_failover_total{mode=warm} = %d, want %d", warm, len(victimOwned))
	}
	if cold := reg.CounterWith("fchain_failover_total", "", map[string]string{"mode": "cold"}).Value(); cold != 0 {
		t.Errorf("fchain_failover_total{mode=cold} = %d, want 0 (no cold starts)", cold)
	}
	healed := localize("post-rebalance")
	if healed.Coverage() != 1 || healed.ComponentsReported != nComps {
		t.Fatalf("post-rebalance coverage %.4f (%d/%d), want full",
			healed.Coverage(), healed.ComponentsReported, healed.ComponentsKnown)
	}
}
