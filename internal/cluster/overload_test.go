package cluster

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"fchain/internal/apps"
	"fchain/internal/core"
	"fchain/internal/faultnet"
	"fchain/internal/metric"
	"fchain/internal/obs"
)

// setSlaveAnalyzeHook installs (or, with nil, removes) the handler-level
// fault-injection hook for the duration of a test.
func setSlaveAnalyzeHook(fn func(slave string, tv int64)) {
	if fn == nil {
		slaveAnalyzeHook.Store(nil)
		return
	}
	slaveAnalyzeHook.Store(&fn)
}

// overloadCluster boots the RUBiS fault scenario with real slaves for every
// component except the excluded ones, which the caller scripts separately.
func overloadCluster(t *testing.T, master *Master, exclude map[string]bool) (tv int64) {
	t.Helper()
	sim, tv, deps := faultScenario(t, 1)
	master.deps = deps
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	for _, comp := range sim.Components() {
		if exclude[comp] {
			continue
		}
		sl := NewSlave("host-"+comp, []string{comp}, core.Config{})
		for _, k := range metric.Kinds {
			series, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := sl.Observe(comp, series.TimeAt(i), k, series.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sl.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sl.Close() })
	}
	return tv
}

// TestQuorumDegradedWithinDeadline is the ISSUE's acceptance scenario: one
// slave of four is registered but never answers; with a 0.75 quorum a 2 s
// Localize must return well within its deadline, flag the partial view, name
// the missing component, and still produce the right culprit.
func TestQuorumDegradedWithinDeadline(t *testing.T) {
	master := NewMaster(core.Config{}, nil, WithQuorum(0.75), WithLocalizeRetries(0))
	tv := overloadCluster(t, master, map[string]bool{apps.App2: true})
	// app2's slave registers and then goes mute: it stalls, it does not die.
	fakeSlave(t, master.Addr(), "host-"+apps.App2, []string{apps.App2})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 4 }, "registrations")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	res, err := master.Localize(ctx, tv)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("quorum localize failed: %v", err)
	}
	if elapsed >= 2*time.Second {
		t.Errorf("localize took %v, want within the 2s deadline", elapsed)
	}
	if !res.Degraded {
		t.Error("stalled slave must degrade the result")
	}
	if res.SlavesAnswered != 3 || res.SlavesTotal != 4 {
		t.Errorf("slaves %d/%d, want 3/4", res.SlavesAnswered, res.SlavesTotal)
	}
	if cov := res.Coverage(); cov != 0.75 {
		t.Errorf("coverage = %v, want 0.75", cov)
	}
	if len(res.MissingComponents) != 1 || res.MissingComponents[0] != apps.App2 {
		t.Errorf("missing components = %v, want [app2]", res.MissingComponents)
	}
	if names := res.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Errorf("quorum-degraded diagnosis = %v, want [db]", names)
	}
	if len(res.Errors) != 1 || !strings.Contains(res.Errors[0], apps.App2) {
		t.Errorf("errors = %v, want one naming the stalled slave", res.Errors)
	}
}

// TestQuorumSlowSlaveFaultnet is the chaos variant: the stalled slave is not
// mute but behind a faultnet link slow enough that its answer cannot land
// inside the 2 s budget. Quorum must release the call on the fast slaves.
func TestQuorumSlowSlaveFaultnet(t *testing.T) {
	sim, tv, deps := faultScenario(t, 1)
	master := NewMaster(core.Config{}, deps, WithQuorum(0.75), WithLocalizeRetries(0))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	// app2 connects through a 1.5 s-latency proxy: a round trip costs >= 3 s,
	// so its analyze answer can never beat the 2 s deadline.
	proxy, err := faultnet.NewProxy(master.Addr(), faultnet.Config{Seed: 7, Latency: 1500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	for _, comp := range sim.Components() {
		addr := master.Addr()
		if comp == apps.App2 {
			addr = proxy.Addr()
		}
		sl := NewSlave("host-"+comp, []string{comp}, core.Config{})
		for _, k := range metric.Kinds {
			series, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := sl.Observe(comp, series.TimeAt(i), k, series.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sl.Connect(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sl.Close() })
	}
	// The slow link also delays registration; give it room.
	waitFor(t, 8*time.Second, func() bool { return len(master.Slaves()) == 4 }, "registrations")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	res, err := master.Localize(ctx, tv)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("localize with a slow slave failed: %v", err)
	}
	if elapsed >= 2*time.Second {
		t.Errorf("localize took %v, want within the 2s deadline", elapsed)
	}
	if !res.Degraded || res.SlavesAnswered != 3 {
		t.Errorf("result = %+v, want degraded 3/4", res)
	}
	if len(res.MissingComponents) != 1 || res.MissingComponents[0] != apps.App2 {
		t.Errorf("missing components = %v, want [app2]", res.MissingComponents)
	}
	if names := res.Diagnosis.CulpritNames(); len(names) != 1 || names[0] != apps.DB {
		t.Errorf("diagnosis = %v, want [db]", names)
	}
}

// TestQuorumNotMetRefuses: below quorum the master refuses to diagnose
// instead of shipping a verdict from too thin a view.
func TestQuorumNotMetRefuses(t *testing.T) {
	master := NewMaster(core.Config{}, nil,
		WithQuorum(1.0), WithLocalizeRetries(0), WithLocalizeTimeout(700*time.Millisecond))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	fakeSlave(t, master.Addr(), "mute", []string{"m"})
	conn, w := fakeSlave(t, master.Addr(), "good", []string{"g"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 2 }, "registrations")
	go answerAnalyzes(conn, w, "g")

	res, err := master.Localize(context.Background(), 100)
	if !errors.Is(err, ErrQuorumNotMet) {
		t.Fatalf("localize below quorum = %v, want ErrQuorumNotMet", err)
	}
	// The refusal still carries the coverage picture for the caller.
	if res.SlavesAnswered != 1 || res.SlavesTotal != 2 || !res.Degraded {
		t.Errorf("refusal coverage = %+v, want degraded 1/2", res)
	}
}

// TestMasterAdmissionSheds: with one Localize slot and no queue, concurrent
// calls are fast-rejected with ErrOverloaded and a flagged result.
func TestMasterAdmissionSheds(t *testing.T) {
	master := NewMaster(core.Config{}, nil,
		WithAdmission(1, 0), WithLocalizeRetries(0))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	conn, w := fakeSlave(t, master.Addr(), "slow", []string{"s"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")
	// The scripted slave answers each analyze after 300 ms, keeping the
	// admitted Localize inside the gate while the others arrive.
	go func() {
		r := newReader(conn)
		for {
			env, err := readFrame(r)
			if err != nil {
				return
			}
			if env.Type != typeAnalyze {
				continue
			}
			go func(id uint64) {
				time.Sleep(300 * time.Millisecond)
				_ = w.write(&envelope{Type: typeReports, ID: id,
					Reports: []core.ComponentReport{{Component: "s"}}}, 2*time.Second)
			}(env.ID)
		}
	}()

	const calls = 3
	type outcome struct {
		res core.LocalizeResult
		err error
	}
	results := make(chan outcome, calls)
	for i := 0; i < calls; i++ {
		go func() {
			res, err := master.Localize(context.Background(), 100)
			results <- outcome{res, err}
		}()
	}
	var ok, shed int
	for i := 0; i < calls; i++ {
		o := <-results
		switch {
		case o.err == nil:
			ok++
		case errors.Is(o.err, ErrOverloaded):
			shed++
			if !o.res.Overloaded {
				t.Error("shed result must set Overloaded")
			}
		default:
			t.Errorf("unexpected Localize error: %v", o.err)
		}
	}
	if ok == 0 || shed == 0 {
		t.Errorf("outcomes ok=%d shed=%d, want at least one of each", ok, shed)
	}
}

// TestSlaveAdmissionSheds: the slave-side gate sheds overlapping analyze
// requests with a structured overloaded error frame the master counts.
func TestSlaveAdmissionSheds(t *testing.T) {
	sink := &obs.Sink{Log: obs.NewLogger(io.Discard, obs.LevelError), Metrics: obs.NewRegistry()}
	master := NewMaster(core.Config{}, nil, WithLocalizeRetries(0), WithMasterObs(sink))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	sl := NewSlave("h", []string{"a"}, core.Config{}, WithSlaveAdmission(1, 0))
	for ts := int64(0); ts < 300; ts++ {
		for _, k := range metric.Kinds {
			if err := sl.Observe("a", ts, k, float64(40+ts%13)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sl.Connect(master.Addr()); err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")

	// The hook runs after admission, so the sleeping holder keeps the gate
	// closed while the concurrent requests arrive and are shed.
	setSlaveAnalyzeHook(func(slave string, tv int64) { time.Sleep(300 * time.Millisecond) })
	defer setSlaveAnalyzeHook(nil)

	const calls = 4
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		go func() {
			_, err := master.Localize(context.Background(), 299)
			errs <- err
		}()
	}
	var ok, shed int
	for i := 0; i < calls; i++ {
		err := <-errs
		switch {
		case err == nil:
			ok++
		case strings.Contains(err.Error(), "overloaded"):
			shed++
		default:
			t.Errorf("unexpected Localize error: %v", err)
		}
	}
	if ok == 0 || shed == 0 {
		t.Errorf("outcomes ok=%d shed=%d, want at least one of each", ok, shed)
	}
	if n := sink.Registry().Counter("fchain_slave_overloaded_total", "").Value(); n != int64(shed) {
		t.Errorf("fchain_slave_overloaded_total = %d, want %d", n, shed)
	}
}

// TestSlaveInflightCapFailsFast: a slave already at the master's per-slave
// in-flight cap fails the extra caller immediately instead of queueing it
// behind a saturated peer.
func TestSlaveInflightCapFailsFast(t *testing.T) {
	master := NewMaster(core.Config{}, nil,
		WithSlaveInflight(1), WithLocalizeRetries(0))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	conn, w := fakeSlave(t, master.Addr(), "busy", []string{"b"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")
	go func() {
		r := newReader(conn)
		for {
			env, err := readFrame(r)
			if err != nil {
				return
			}
			if env.Type != typeAnalyze {
				continue
			}
			go func(id uint64) {
				time.Sleep(300 * time.Millisecond)
				_ = w.write(&envelope{Type: typeReports, ID: id,
					Reports: []core.ComponentReport{{Component: "b"}}}, 2*time.Second)
			}(env.ID)
		}
	}()

	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := master.Localize(context.Background(), 100)
			errs <- err
		}()
	}
	var ok, capped int
	start := time.Now()
	for i := 0; i < 2; i++ {
		err := <-errs
		switch {
		case err == nil:
			ok++
		case strings.Contains(err.Error(), "in-flight cap"):
			capped++
		default:
			t.Errorf("unexpected Localize error: %v", err)
		}
	}
	if ok != 1 || capped != 1 {
		t.Errorf("outcomes ok=%d capped=%d, want 1/1", ok, capped)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("capped call took %v, want fail-fast", elapsed)
	}
}

// TestSlaveAnalyzePanicRecovery: a panic inside the analyze handler is
// recovered into a structured error frame; the daemon and its connection
// survive, and the next request (fault cleared) succeeds.
func TestSlaveAnalyzePanicRecovery(t *testing.T) {
	sink := &obs.Sink{Log: obs.NewLogger(io.Discard, obs.LevelError), Metrics: obs.NewRegistry()}
	master := NewMaster(core.Config{}, nil, WithLocalizeRetries(0))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	sl := NewSlave("h", []string{"a"}, core.Config{}, WithSlaveObs(sink))
	for ts := int64(0); ts < 300; ts++ {
		for _, k := range metric.Kinds {
			if err := sl.Observe("a", ts, k, float64(40+ts%13)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sl.Connect(master.Addr()); err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")

	setSlaveAnalyzeHook(func(slave string, tv int64) { panic("injected handler fault") })
	_, err := master.Localize(context.Background(), 299)
	setSlaveAnalyzeHook(nil)
	if err == nil || !strings.Contains(err.Error(), "analyze panicked") {
		t.Fatalf("localize against a panicking handler = %v, want structured panic error", err)
	}
	if n := sink.Registry().Counter("fchain_analyze_panics_total", "").Value(); n != 1 {
		t.Errorf("fchain_analyze_panics_total = %d, want 1", n)
	}
	// The daemon survived: still connected, still registered, and once the
	// fault clears it serves normally.
	if !sl.Connected() {
		t.Fatal("slave connection died with the handler panic")
	}
	if got := master.Slaves(); len(got) != 1 {
		t.Fatalf("slave deregistered after handler panic: %v", got)
	}
	res, err := master.Localize(context.Background(), 299)
	if err != nil {
		t.Fatalf("localize after fault cleared: %v", err)
	}
	if res.Degraded {
		t.Errorf("post-recovery result degraded: %+v", res)
	}
}

// TestClusterPanicQuarantineReAdmission drives the kernel-level quarantine
// end to end over the wire: a panicking selection kernel quarantines only its
// own stream (flagged in the LocalizeResult), the daemon stays up, and after
// the cooldown the stream is re-admitted.
func TestClusterPanicQuarantineReAdmission(t *testing.T) {
	master := NewMaster(core.Config{}, nil, WithLocalizeRetries(0))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	sl := NewSlave("h", []string{"a", "b"}, core.Config{QuarantineCooldown: 100 * time.Millisecond})
	for ts := int64(0); ts < 300; ts++ {
		for _, comp := range []string{"a", "b"} {
			for _, k := range metric.Kinds {
				if err := sl.Observe(comp, ts, k, float64(40+ts%13)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := sl.Connect(master.Addr()); err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")

	core.SetAnalyzeHook(func(component string, k metric.Kind) {
		if component == "a" && k == metric.CPU {
			panic("poisoned stream")
		}
	})
	defer core.SetAnalyzeHook(nil)
	res, err := master.Localize(context.Background(), 299)
	if err != nil {
		t.Fatalf("localize with a poisoned stream: %v", err)
	}
	if got := res.Quarantined["a"]; len(got) != 1 || got[0] != metric.CPU.String() {
		t.Errorf("quarantined streams = %v, want a:[cpu]", res.Quarantined)
	}
	if len(res.Quarantined["b"]) != 0 {
		t.Errorf("panic leaked past its stream: %v", res.Quarantined)
	}
	if res.Degraded {
		t.Error("one quarantined stream must not degrade component coverage")
	}

	// Clear the fault and wait out the cooldown: the probe re-admits.
	core.SetAnalyzeHook(nil)
	time.Sleep(120 * time.Millisecond)
	res, err = master.Localize(context.Background(), 299)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Errorf("stream not re-admitted after cooldown: %v", res.Quarantined)
	}
}

// TestBudgetTruncatesSlaveAnalysis exercises deadline propagation at the
// wire: a fake master sends an analyze with a 1 ms budget (already spent by
// the time the handler gets past the stalling hook), and the slave answers
// with skipped, Truncated reports instead of blowing through the deadline.
func TestBudgetTruncatesSlaveAnalysis(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	sl := NewSlave("h", []string{"a", "b"}, core.Config{})
	for ts := int64(0); ts < 300; ts++ {
		for _, comp := range []string{"a", "b"} {
			for _, k := range metric.Kinds {
				if err := sl.Observe(comp, ts, k, float64(40+ts%13)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	errCh := make(chan error, 1)
	go func() { errCh <- sl.Connect(ln.Addr().String()) }()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	r := newReader(conn)
	if _, err := readFrame(r); err != nil { // registration
		t.Fatal(err)
	}

	// The hook stalls past the 1 ms budget deterministically, so every
	// selection task sees an expired deadline and is skipped.
	setSlaveAnalyzeHook(func(slave string, tv int64) { time.Sleep(20 * time.Millisecond) })
	defer setSlaveAnalyzeHook(nil)
	if err := writeFrame(conn, &envelope{Type: typeAnalyze, ID: 11, TV: 299, BudgetMS: 1}, time.Second); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := readFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != typeReports || resp.ID != 11 {
		t.Fatalf("response = %+v, want reports for id 11", resp)
	}
	if len(resp.Reports) != 2 {
		t.Fatalf("got %d reports, want 2 (a truncated answer, not nothing)", len(resp.Reports))
	}
	for _, rep := range resp.Reports {
		if !rep.Truncated || rep.Tier != core.TierSkipped {
			t.Errorf("component %s: Tier=%q Truncated=%v, want skipped+truncated", rep.Component, rep.Tier, rep.Truncated)
		}
		if len(rep.Changes) != 0 {
			t.Errorf("component %s reported changes from a skipped analysis", rep.Component)
		}
	}
}

// TestMasterPropagatesTruncationAndQuarantine: the degradation markers a
// slave reports must surface on the LocalizeResult (and its String).
func TestMasterPropagatesTruncationAndQuarantine(t *testing.T) {
	master := NewMaster(core.Config{}, nil, WithLocalizeRetries(0))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	conn, w := fakeSlave(t, master.Addr(), "q", []string{"qc"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")
	go func() {
		r := newReader(conn)
		for {
			env, err := readFrame(r)
			if err != nil {
				return
			}
			if env.Type != typeAnalyze {
				continue
			}
			rep := core.ComponentReport{
				Component:   "qc",
				Tier:        core.TierTrend,
				Truncated:   true,
				Quarantined: []string{"cpu", "memory"},
			}
			_ = w.write(&envelope{Type: typeReports, ID: env.ID,
				Reports: []core.ComponentReport{rep}}, 2*time.Second)
		}
	}()

	res, err := master.Localize(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("truncated slave report must set LocalizeResult.Truncated")
	}
	if got := res.Quarantined["qc"]; len(got) != 2 || got[0] != "cpu" || got[1] != "memory" {
		t.Errorf("quarantined streams = %v, want qc:[cpu memory]", res.Quarantined)
	}
	if s := res.String(); !strings.Contains(s, "TRUNCATED") {
		t.Errorf("result string %q does not mark truncation", s)
	}
}

// TestLocalizeShedsWhileQueuedDeadlineExpires: a Localize waiting in the
// admission queue whose context dies returns that context error (not a hang,
// not a leaked slot).
func TestLocalizeShedsWhileQueuedDeadlineExpires(t *testing.T) {
	master := NewMaster(core.Config{}, nil,
		WithAdmission(1, 2), WithLocalizeRetries(0))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	conn, w := fakeSlave(t, master.Addr(), "slow", []string{"s"})
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 1 }, "registration")
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	go func() {
		r := newReader(conn)
		for {
			env, err := readFrame(r)
			if err != nil {
				return
			}
			if env.Type != typeAnalyze {
				continue
			}
			started <- struct{}{}
			go func(id uint64) {
				<-release
				_ = w.write(&envelope{Type: typeReports, ID: id,
					Reports: []core.ComponentReport{{Component: "s"}}}, 2*time.Second)
			}(env.ID)
		}
	}()

	// First call occupies the slot until we release the scripted slave; only
	// issue the second once the first is provably past admission (its analyze
	// request reached the slave).
	first := make(chan error, 1)
	go func() {
		_, err := master.Localize(context.Background(), 100)
		first <- err
	}()
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("first localize never reached the slave")
	}
	// Second call queues behind it with a context that expires in the queue.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := master.Localize(ctx, 100)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued localize = %v, want DeadlineExceeded", err)
	}
	if !res.Overloaded {
		t.Error("queue-expired result must set Overloaded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("queued call held for %v past its deadline", elapsed)
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("admitted localize failed: %v", err)
	}
	// The expired waiter must not have leaked the slot.
	res2, err := master.Localize(context.Background(), 100)
	if err != nil || res2.SlavesAnswered != 1 {
		t.Fatalf("post-expiry localize = %+v, %v; want clean success", res2, err)
	}
}
