package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"fchain/internal/apps"
	"fchain/internal/core"
	"fchain/internal/golden"
	"fchain/internal/metric"
	"fchain/internal/obs"
)

// overloadGoldenReport is the committed JSON shape for the degraded-mode
// golden: the verdict, the full coverage/degradation picture, and the
// normalized master trace.
type overloadGoldenReport struct {
	TV                 int64               `json:"tv"`
	Verdict            string              `json:"verdict"`
	Culprits           []string            `json:"culprits"`
	External           bool                `json:"external"`
	SlavesAnswered     int                 `json:"slaves_answered"`
	SlavesTotal        int                 `json:"slaves_total"`
	ComponentsReported int                 `json:"components_reported"`
	ComponentsKnown    int                 `json:"components_known"`
	Degraded           bool                `json:"degraded"`
	Truncated          bool                `json:"truncated"`
	MissingComponents  []string            `json:"missing_components"`
	Quarantined        map[string][]string `json:"quarantined_streams"`
	Errors             []string            `json:"errors"`
	Trace              *obs.Trace          `json:"trace"`
}

// runOverloadGoldenScenario replays the canonical degraded localization: the
// RUBiS CPU-hog cluster where one slave stalls forever (charged to coverage
// by the quorum) and one answers with a deadline-truncated, quarantined
// report. Every degraded input is scripted, so the entire result — including
// the per-slave error strings and the trace — is a pure function of the
// scenario, which is what lets serial and parallel runs be byte-compared.
func runOverloadGoldenScenario(t *testing.T, parallelism int) []byte {
	t.Helper()
	sim, tv, deps := faultScenario(t, 1)
	master := NewMaster(core.Config{}, deps,
		WithQuorum(0.75), WithLocalizeRetries(0), WithLocalizeTimeout(2*time.Second))
	if err := master.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })

	for _, comp := range sim.Components() {
		if comp == apps.App2 {
			continue
		}
		sl := NewSlave("host-"+comp, []string{comp}, core.Config{Parallelism: parallelism})
		for _, k := range metric.Kinds {
			series, err := sim.Series(comp, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < series.Len() && series.TimeAt(i) <= tv; i++ {
				if err := sl.Observe(comp, series.TimeAt(i), k, series.At(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sl.Connect(master.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sl.Close() })
	}
	// app2's slave registers, then stalls forever: the quorum charges it to
	// coverage with a deterministic deadline error.
	fakeSlave(t, master.Addr(), "host-"+apps.App2, []string{apps.App2})
	// The cache slave answers instantly with a fixed deadline-truncated,
	// quarantined report, standing in for a slave that ran out of budget.
	cacheConn, cacheW := fakeSlave(t, master.Addr(), "host-cache", []string{"cache"})
	go func() {
		r := newReader(cacheConn)
		for {
			env, err := readFrame(r)
			if err != nil {
				return
			}
			if env.Type != typeAnalyze {
				continue
			}
			rep := core.ComponentReport{
				Component:   "cache",
				Tier:        core.TierSkipped,
				Truncated:   true,
				Quarantined: []string{"cpu"},
			}
			_ = cacheW.write(&envelope{Type: typeReports, ID: env.ID,
				Reports: []core.ComponentReport{rep}}, 2*time.Second)
		}
	}()
	waitFor(t, 2*time.Second, func() bool { return len(master.Slaves()) == 5 }, "registrations")

	// Quorum: ceil(0.75 * 5) = 4 of 5 — exactly the answering set, so the
	// call returns as soon as the four answers are in, never waiting out the
	// stalled slave's share of the deadline.
	res, err := master.Localize(context.Background(), tv)
	if err != nil {
		t.Fatalf("golden scenario localize: %v", err)
	}
	report := overloadGoldenReport{
		TV:                 tv,
		Verdict:            res.String(),
		Culprits:           res.Diagnosis.CulpritNames(),
		External:           res.Diagnosis.ExternalFactor,
		SlavesAnswered:     res.SlavesAnswered,
		SlavesTotal:        res.SlavesTotal,
		ComponentsReported: res.ComponentsReported,
		ComponentsKnown:    res.ComponentsKnown,
		Degraded:           res.Degraded,
		Truncated:          res.Truncated,
		MissingComponents:  res.MissingComponents,
		Quarantined:        res.Quarantined,
		Errors:             res.Errors,
		Trace:              res.Trace.Normalize(),
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, '\n')
}

// TestGoldenQuorumDegradedLocalization pins the degraded-mode contract: a
// deadline-truncated, quorum-degraded localization must reproduce its
// committed verdict, coverage attribution, and normalized trace exactly,
// with serial and 4-way-parallel slave analysis byte-identical. Regenerate
// with `go test ./... -update` after an intentional pipeline change.
func TestGoldenQuorumDegradedLocalization(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full fault-injection simulations")
	}
	serial := runOverloadGoldenScenario(t, 1)
	parallel := runOverloadGoldenScenario(t, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("parallel degraded report differs from serial: determinism contract broken")
	}
	golden.Assert(t, golden.Path("quorum-degraded.json"), serial)
}
